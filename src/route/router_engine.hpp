#pragma once
// Pluggable routing backends over one GlobalRouter.
//
// GlobalRouter::route(net, pins, RouteRequest) answers "route THIS net";
// a RouterEngine answers "route ALL the nets" — net ordering, windowed
// batching, and global congestion negotiation live here, selected the same
// way FlowEngine::run(FlowMode) selects a flow (PR 5's consolidation
// pattern). Four sibling backends:
//
//   kClassic      serial net order, classic heap Dijkstra, widened-layer
//                 fallback per net. Byte-identical to the historic serial
//                 router — the default-mode goldens pin this trajectory.
//   kFast         same serial orchestration, but each net runs the fast
//                 core (pattern candidates, bucket-queue A*/bidirectional
//                 search). Same greedy quality characteristics, much less
//                 work per net; its own golden.
//   kPartitioned  dependency-partitioned concurrent batches over disjoint
//                 windows (route/parallel.hpp), classic core per window,
//                 serial fallback cleanup. Bit-identical at every thread
//                 count; its own golden.
//   kNegotiated   PathFinder-style rip-up-and-reroute on the fast core:
//                 every edge carries an accumulated history cost plus a
//                 present-congestion factor that grows each iteration, so
//                 persistent overflow becomes unaffordable and nets
//                 negotiate detours instead of piling onto the same edges.
//                 Deterministic net order per iteration, bounded
//                 iterations, best-so-far (min overflow, then wirelength)
//                 salvage under Budget. The only backend that can DRIVE
//                 OVERFLOW TO ZERO on workloads where greedy net-order
//                 routing cannot.
//
// Selection: FlowOptions::router, or OLP_ROUTER=classic|fast|partitioned|
// negotiated at FlowEngine construction (util/env precedence). Budget and
// diagnostics flow through the GlobalRouter the engine wraps.

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "route/global_router.hpp"
#include "route/parallel.hpp"

namespace olp {
class TaskPool;
}

namespace olp::route {

enum class RouterBackend {
  kClassic,
  kFast,
  kPartitioned,
  kNegotiated,
};

/// Stable lowercase name ("classic", "fast", "partitioned", "negotiated") —
/// the OLP_ROUTER vocabulary and the BENCH_route.json backend key.
const char* router_backend_name(RouterBackend backend);

/// Inverse of router_backend_name; empty for unknown names.
std::optional<RouterBackend> parse_router_backend(std::string_view name);

struct RouterEngineOptions {
  RouterBackend backend = RouterBackend::kClassic;
  /// Worker pool for the partitioned backend's batches (not owned, may be
  /// null: batches then run inline — that IS the partitioned golden).
  TaskPool* pool = nullptr;
  /// Negotiated backend: max rip-up-and-reroute passes after the initial
  /// greedy pass. The loop exits early the moment overflow reaches zero.
  int negotiation_iterations = 16;
  /// Negotiated backend: growth of the present-congestion factor per
  /// iteration, and its cap (the cap keeps quantized edge costs bounded).
  double present_growth = 1.6;
  double present_cap = 64.0;
};

/// One routing backend bound to a GlobalRouter. Engines are cheap to build
/// (the grid lives in the router); construct per routing stage.
class RouterEngine {
 public:
  virtual ~RouterEngine() = default;
  virtual RouterBackend backend() const = 0;
  /// Routes all nets (in net order where the backend is serial) and
  /// returns one NetRoute per net, index-aligned with `nets`. Unroutable
  /// or budget-skipped nets come back routed=false; the caller decides how
  /// to degrade them.
  virtual std::vector<NetRoute> route_nets(
      const std::vector<NetPins>& nets) = 0;
};

/// Builds the backend selected by `options.backend`.
std::unique_ptr<RouterEngine> make_router_engine(
    GlobalRouter& router, RouterEngineOptions options = {});

}  // namespace olp::route

#pragma once
// Parasitic extraction / netlist back-annotation.
//
// Turns a generated primitive layout into simulator devices:
//   * each primitive net gets a port node "<prefix><net>" and, in extracted
//     mode, an internal node "<prefix><net>.x" behind the strap resistance,
//     with the strap capacitance split half/half (pi model),
//   * each MOSFET carries its sharing-aware junction geometry and LDE
//     annotations (delta_vth / mobility multiplier),
//   * in schematic mode no wire parasitics or LDEs are added and junction
//     geometry takes nominal fully-shared values, reproducing what the
//     schematic designer simulates against.
//
// The number of parallel strap wires per net (primitive tuning, paper
// Sec. III-A2) and per-port external route RC (port optimization, Sec. III-B)
// are inputs here.

#include <map>
#include <set>
#include <string>

#include "pcell/primitive.hpp"
#include "spice/circuit.hpp"
#include "tech/technology.hpp"

namespace olp::extract {

/// Parallel-wire count per primitive net (absent = 1).
using TuningMap = std::map<std::string, int>;

/// How to annotate a primitive into a circuit.
struct AnnotateOptions {
  /// Schematic mode: no wire parasitics, no LDE, nominal junctions.
  bool ideal = false;
  /// Net -> parallel wires on the internal strap.
  TuningMap tuning;
  /// Model indices in the destination circuit.
  int nmos_model = 0;
  int pmos_model = 0;
  /// Bulk nodes (NMOS bulk usually ground, PMOS bulk the supply).
  spice::NodeId nmos_bulk = spice::kGround;
  spice::NodeId pmos_bulk = spice::kGround;
  /// Optional pre-existing circuit nodes to use for specific ports instead
  /// of creating "<prefix><net>" (used when wiring primitives into a larger
  /// circuit without intervening elements).
  std::map<std::string, spice::NodeId> port_mapping;
  /// Additional per-device threshold shifts (keyed by LogicalDevice::name),
  /// applied on top of the LDE annotations. Used for Monte Carlo mismatch
  /// sampling.
  std::map<std::string, double> extra_dvth;
  /// Primitive nets whose strap is lumped (capacitance kept at the port, the
  /// small series resistance dropped, no internal node created). Used for
  /// supply/bias nets in full-circuit builds to bound the MNA size.
  std::set<std::string> lump_nets;
};

/// Instantiates the primitive into `ckt` with node names "<prefix><net>".
/// Returns the map from primitive net name to its port node.
std::map<std::string, spice::NodeId> annotate_primitive(
    spice::Circuit& ckt, const pcell::PrimitiveLayout& layout,
    const tech::Technology& t, const std::string& prefix,
    const AnnotateOptions& options);

/// A lumped wire: series R with total C split at both ends (pi model).
struct WireRc {
  double resistance = 0.0;   ///< [ohm]
  double capacitance = 0.0;  ///< [F]
};

/// Adds a pi-model wire between two existing nodes. A zero-resistance wire
/// degenerates to a small bridging resistance to keep MNA well-posed.
void add_wire_pi(spice::Circuit& ckt, const std::string& name,
                 spice::NodeId a, spice::NodeId b, const WireRc& rc);

/// RC of a routed segment on a metal layer with `parallel` tracks.
WireRc wire_rc(const tech::Technology& t, tech::Layer layer, double length,
               int parallel = 1);

/// Combines wire segments in series (R adds, C adds).
WireRc series(const WireRc& a, const WireRc& b);

}  // namespace olp::extract

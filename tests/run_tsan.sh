#!/usr/bin/env bash
# ThreadSanitizer smoke run: build the OTA flow example with
# -fsanitize=thread and drive it through the parallel + cached code path
# (8 worker threads, eval cache on), then drive the batch example the same
# way — concurrent jobs racing over the shared worker pool and cross-job
# eval cache. TSan aborts the process on the first data race
# (-fno-sanitize-recover=all), so the assertions are simply:
#
#   - each sanitized run exits 0;
#   - no "ThreadSanitizer" report appears on stdout/stderr.
#
# Usage: tests/run_tsan.sh [<source-dir> [<build-dir>]]
# (ctest passes both; defaults allow running it by hand from the repo root.)
set -euo pipefail

script_dir="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
src_dir="${1:-$(dirname "${script_dir}")}"
build_dir="${2:-${src_dir}/build-tsan}"

# A compiler may lack TSan support (or be unable to link its runtime); probe
# first and skip — exit 0 with a loud note — rather than fail the suite on
# a toolchain limitation.
probe="$(mktemp -d)"
trap 'rm -rf "${probe}"' EXIT
cat > "${probe}/probe.cpp" <<'EOF'
int main() { return 0; }
EOF
if ! c++ -fsanitize=thread "${probe}/probe.cpp" -o "${probe}/probe" \
    2> "${probe}/probe.err"; then
  echo "tsan smoke: toolchain cannot build with -fsanitize=thread; skipping"
  cat "${probe}/probe.err"
  exit 0
fi

cmake -S "${src_dir}" -B "${build_dir}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DOLP_SANITIZE=thread \
  -DOLP_BUILD_TESTS=OFF \
  -DOLP_BUILD_BENCH=OFF \
  -DOLP_BUILD_EXAMPLES=ON > /dev/null
cmake --build "${build_dir}" --target ota_layout_flow batch_flows \
  olp_serviced eval_cache_stress -j "$(nproc)" > /dev/null

tmp="$(mktemp -d)"
trap 'rm -rf "${probe}" "${tmp}"' EXIT
out="${tmp}/stdout.txt"

# One targeted suppression: libstdc++'s std::atomic<std::shared_ptr>
# (_Sp_atomic, the eval cache's published-index pointer) guards its plain
# _M_ptr accesses with a spinlock bit inside the refcount word but unlocks
# the READER side with a relaxed RMW — correct on hardware (RMW coherence
# on the lock word gives mutual exclusion), invisible to TSan's
# happens-before analysis (GCC PR 104602). Suppressing the primitive, not
# our code: races in the cache logic itself still fire.
supp="${tmp}/tsan.supp"
cat > "${supp}" <<'SUPP'
race:_Sp_atomic
SUPP
tsan_opts="halt_on_error=1 suppressions=${supp}"

# The eval-cache stress: 8 lock-free readers against 2 snapshot-publishing
# writers, plus the bounded-capacity phase where CLOCK eviction retires
# entries while readers still hold older snapshots. Built gtest-free
# precisely so it can run here (this tree has no GTest).
stress_out="${tmp}/stress_stdout.txt"
TSAN_OPTIONS="${tsan_opts}" \
  "${build_dir}/eval_cache_stress" > "${stress_out}" 2>&1
echo "tsan smoke: sanitized eval-cache stress reconciled exactly"

if grep -q "ThreadSanitizer" "${stress_out}"; then
  echo "tsan smoke: ThreadSanitizer reported a race in the eval cache" >&2
  cat "${stress_out}" >&2
  exit 1
fi

# A modest testbench budget keeps the (TSan-slowed) run bounded while still
# exercising every stage; the budget path itself is part of what is raced.
OLP_THREADS=8 OLP_EVAL_CACHE=1 OLP_TESTBENCH_BUDGET=600 \
  OLP_TRACE_DIR="${tmp}" TSAN_OPTIONS="${tsan_opts}" \
  "${build_dir}/examples/ota_layout_flow" > "${out}" 2>&1
echo "tsan smoke: sanitized flow exited 0 at 8 threads with the cache on"

if grep -q "ThreadSanitizer" "${out}"; then
  echo "tsan smoke: ThreadSanitizer reported a race" >&2
  cat "${out}" >&2
  exit 1
fi

# The same flow with BOTH opt-in parallel intra-job stages enabled: the
# parallel-moves placer fanning K=4 candidate evaluations per anneal step
# onto the work-stealing pool, and the partitioned router backend running
# disjoint-window searches concurrently over the shared congestion grid.
stage_out="${tmp}/stage_stdout.txt"
OLP_THREADS=8 OLP_EVAL_CACHE=1 OLP_TESTBENCH_BUDGET=600 \
  OLP_PLACER_MOVES=4 OLP_ROUTER=partitioned \
  OLP_TRACE_DIR="${tmp}" TSAN_OPTIONS="${tsan_opts}" \
  "${build_dir}/examples/ota_layout_flow" > "${stage_out}" 2>&1
echo "tsan smoke: sanitized flow exited 0 with parallel placer + routing"

if grep -q "ThreadSanitizer" "${stage_out}"; then
  echo "tsan smoke: ThreadSanitizer reported a race in parallel stages" >&2
  cat "${stage_out}" >&2
  exit 1
fi

# The negotiated router backend under the same pooled flow: rip-up-and-
# reroute mutates the congestion grid and history arrays between passes
# while pooled placer candidates run — the serial-router invariants the
# negotiation relies on must hold when a worker pool exists.
nego_out="${tmp}/nego_stdout.txt"
OLP_THREADS=8 OLP_EVAL_CACHE=1 OLP_TESTBENCH_BUDGET=600 \
  OLP_PLACER_MOVES=4 OLP_ROUTER=negotiated \
  OLP_TRACE_DIR="${tmp}" TSAN_OPTIONS="${tsan_opts}" \
  "${build_dir}/examples/ota_layout_flow" > "${nego_out}" 2>&1
echo "tsan smoke: sanitized flow exited 0 with the negotiated router"

if grep -q "ThreadSanitizer" "${nego_out}"; then
  echo "tsan smoke: ThreadSanitizer reported a race in negotiated routing" >&2
  cat "${nego_out}" >&2
  exit 1
fi

# The batch service: 7 jobs racing across 8 workers through the shared
# pool, the scope-sharded cross-job cache, and per-job budget handles.
# OLP_BATCH_CLAMP=0 defeats the oversubscription guard so even a small
# machine runs 8 real threads — the interleavings are the point here.
batch_out="${tmp}/batch_stdout.txt"
OLP_THREADS=8 OLP_TESTBENCH_BUDGET=2000 OLP_BATCH_CLAMP=0 \
  TSAN_OPTIONS="${tsan_opts}" \
  "${build_dir}/examples/batch_flows" > "${batch_out}" 2>&1
echo "tsan smoke: sanitized batch exited 0 at 8 workers with cache sharing"

if grep -q "ThreadSanitizer" "${batch_out}"; then
  echo "tsan smoke: ThreadSanitizer reported a race in the batch" >&2
  cat "${batch_out}" >&2
  exit 1
fi

# The resident service: a JSONL session with 4 workers racing over the
# admission queue, the shared pool, the cache pool, a snapshot save under
# load, and the graceful EOF drain (which joins every worker). Closing
# stdin after the burst is the drain trigger.
service_out="${tmp}/service_stdout.txt"
OLP_SERVICE_WORKERS=4 OLP_SERVICE_SNAPSHOT="${tmp}/tsan_cache.snap" \
  OLP_SERVICE_SNAPSHOT_EVERY=0 TSAN_OPTIONS="${tsan_opts}" \
  "${build_dir}/examples/olp_serviced" > "${service_out}" 2>&1 <<'EOF'
{"op":"ping"}
{"op":"submit","id":"s0","client":"a","circuit":"vco","mode":"conventional","seed":1}
{"op":"submit","id":"s1","client":"b","circuit":"vco","mode":"conventional","seed":2}
{"op":"submit","id":"s2","client":"c","circuit":"vco","mode":"conventional","seed":3}
{"op":"submit","id":"s3","client":"a","circuit":"ota5t","mode":"conventional","seed":4}
{"op":"submit","id":"s4","client":"b","circuit":"strongarm","mode":"conventional","seed":5}
{"op":"submit","id":"s5","client":"c","circuit":"vco","mode":"conventional","seed":6}
{"op":"submit","id":"s6","client":"a","circuit":"vco","mode":"conventional","seed":7}
{"op":"submit","id":"s7","client":"b","circuit":"ota5t","mode":"conventional","seed":8}
{"op":"snapshot"}
{"op":"submit","id":"s8","client":"c","circuit":"vco","mode":"conventional","seed":9}
{"op":"submit","id":"s9","client":"a","circuit":"strongarm","mode":"conventional","seed":10}
{"op":"stats"}
EOF
echo "tsan smoke: sanitized service drained 10 jobs across 4 workers"

if grep -q "ThreadSanitizer" "${service_out}"; then
  echo "tsan smoke: ThreadSanitizer reported a race in the service" >&2
  cat "${service_out}" >&2
  exit 1
fi

# The network transport: three concurrent TCP clients race keyed submits
# through the poll supervisor while stdin stays open — connection emits vs.
# worker threads, journal appends under the accept path, a SIGHUP reload
# against live traffic, and the cross-thread drain at the end.
tcp_out="${tmp}/tcp_stdout.txt"
mkfifo "${tmp}/tcp_in"
OLP_SERVICE_WORKERS=4 OLP_SERVICE_TCP=0 \
  OLP_SERVICE_JOURNAL="${tmp}/tsan_requests.journal" \
  OLP_SERVICE_SNAPSHOT_EVERY=0 TSAN_OPTIONS="${tsan_opts}" \
  "${build_dir}/examples/olp_serviced" < "${tmp}/tcp_in" > "${tcp_out}" 2>&1 &
service_pid=$!
exec 3> "${tmp}/tcp_in"

deadline=$((SECONDS + 120))
port=""
while [[ -z "${port}" ]]; do
  if ((SECONDS >= deadline)); then
    echo "tsan smoke: sanitized service never announced a TCP port" >&2
    cat "${tcp_out}" >&2
    exit 1
  fi
  port="$(sed -n 's/.*"transport":"tcp","port":\([0-9][0-9]*\).*/\1/p' \
    "${tcp_out}" 2>/dev/null | head -n1)"
  [[ -n "${port}" ]] || sleep 0.2
done

tcp_client() {
  local name=$1 seed=$2 i got=0 line
  exec 9<>"/dev/tcp/127.0.0.1/${port}"
  for i in 0 1 2; do
    printf '{"op":"submit","id":"%s-%s","client":"%s","circuit":"vco","mode":"conventional","seed":%s,"key":"%s-%s"}\n' \
      "${name}" "${i}" "${name}" "$((seed + i))" "${name}" "${i}" >&9
  done
  while ((got < 3)) && read -r -t 300 -u 9 line; do
    case "${line}" in
      *'"event":"done"'* | *'"event":"duplicate"'*) got=$((got + 1)) ;;
    esac
  done
  exec 9>&-
}
tcp_client ta 100 & c1=$!
tcp_client tb 200 & c2=$!
tcp_client tc 300 & c3=$!
kill -HUP "${service_pid}"  # reload races the in-flight traffic
wait "${c1}" "${c2}" "${c3}"
echo '{"op":"drain"}' >&3
exec 3>&-
rc=0
wait "${service_pid}" || rc=$?
if [[ "${rc}" -ne 0 ]]; then
  echo "tsan smoke: sanitized service exited ${rc} after the TCP session" >&2
  cat "${tcp_out}" >&2
  exit 1
fi
echo "tsan smoke: sanitized transport served 3 concurrent clients cleanly"

if grep -q "ThreadSanitizer" "${tcp_out}"; then
  echo "tsan smoke: ThreadSanitizer reported a race in the transport" >&2
  cat "${tcp_out}" >&2
  exit 1
fi

echo "tsan smoke run passed"

#!/usr/bin/env bash
# Service smoke run: drive the olp_serviced daemon through its whole
# robustness story, end to end, over the real JSONL stdin/stdout transport:
#
#   1. crash     start with a snapshot path, warm the cache with an optimize
#                job, checkpoint, then kill -9 mid-load — the snapshot on
#                disk must survive the crash;
#   2. warm      restart from that snapshot, rerun the same job, SIGTERM
#                while it is in flight — the drain must finish the job,
#                exit 0, and the final stats must prove a warm start
#                (snapshot_loaded, nonzero restored_hits);
#   3. corrupt   flip a byte in the snapshot and restart — the daemon must
#                fall back to a cold start (snapshot_loaded:false) and keep
#                serving instead of aborting;
#   4. tcp       serve FOUR concurrent TCP clients through the poll-based
#                transport, survive a fifth client killed mid-frame, apply a
#                SIGHUP config reload (new queue bound from the
#                OLP_SERVICE_CONFIG file) WITHOUT dropping the open
#                connections, and prove it all from the transport_stats line;
#   5. journal   accept keyed work into the durable request journal, kill -9
#                with jobs still queued, restart on the same journal — every
#                accepted job must replay exactly once (zero lost), and
#                resubmitting the same idempotency keys must be answered from
#                the journal without re-running (zero duplicated).
#
# Usage: OLP_SERVICE_BIN=<path-to-olp_serviced> tests/run_service_smoke.sh
# (ctest sets OLP_SERVICE_BIN; a default build-tree location is the fallback.)
set -euo pipefail

script_dir="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
src_dir="$(dirname "${script_dir}")"
bin="${OLP_SERVICE_BIN:-${src_dir}/build/examples/olp_serviced}"

if [[ ! -x "${bin}" ]]; then
  echo "service smoke: daemon binary not found at ${bin}" >&2
  exit 1
fi

tmp="$(mktemp -d)"
trap 'rm -rf "${tmp}"' EXIT
snapshot="${tmp}/cache.snap"

# Polls for a fixed string in a growing output file. The daemon flushes one
# JSON event per line, so a plain fixed-string grep is race-free.
wait_for() {
  local needle=$1 file=$2 timeout_s=${3:-120}
  local deadline=$((SECONDS + timeout_s))
  until grep -qF -- "${needle}" "${file}" 2>/dev/null; do
    if ((SECONDS >= deadline)); then
      echo "service smoke: timed out waiting for ${needle} in ${file}" >&2
      [[ -f "${file}" ]] && cat "${file}" >&2
      return 1
    fi
    sleep 0.1
  done
}

# ---- phase 1: warm, checkpoint, crash --------------------------------------
mkfifo "${tmp}/in1"
OLP_SERVICE_SNAPSHOT="${snapshot}" OLP_SERVICE_SNAPSHOT_EVERY=0 \
  "${bin}" < "${tmp}/in1" > "${tmp}/out1" 2> "${tmp}/err1" &
pid=$!
exec 3> "${tmp}/in1"  # hold the write end open across multiple requests

echo '{"op":"ping"}' >&3
wait_for '"event":"pong"' "${tmp}/out1" 30
echo '{"op":"submit","id":"seed","client":"smoke","circuit":"vco","mode":"optimize","seed":11}' >&3
wait_for '{"id":"seed","event":"done"' "${tmp}/out1" 600
echo '{"op":"snapshot"}' >&3
wait_for '"event":"snapshot","ok":true' "${tmp}/out1" 60

# A second job goes in flight, then the process dies hard mid-load.
echo '{"op":"submit","id":"victim","client":"smoke","circuit":"strongarm","mode":"optimize","seed":12}' >&3
wait_for '{"id":"victim","event":"accepted"' "${tmp}/out1" 30
kill -9 "${pid}"
wait "${pid}" 2>/dev/null || true
exec 3>&-

[[ -s "${snapshot}" ]] || {
  echo "service smoke: snapshot missing or empty after kill -9" >&2
  exit 1
}
echo "service smoke: snapshot survived kill -9 mid-load"

# ---- phase 2: warm restart, SIGTERM drains the in-flight job ---------------
mkfifo "${tmp}/in2"
OLP_SERVICE_SNAPSHOT="${snapshot}" OLP_SERVICE_SNAPSHOT_EVERY=0 \
  "${bin}" < "${tmp}/in2" > "${tmp}/out2" 2> "${tmp}/err2" &
pid=$!
exec 3> "${tmp}/in2"

echo '{"op":"submit","id":"warm","client":"smoke","circuit":"vco","mode":"optimize","seed":11}' >&3
wait_for '{"id":"warm","event":"accepted"' "${tmp}/out2" 30
kill -TERM "${pid}"
rc=0
wait "${pid}" || rc=$?
exec 3>&-
if [[ "${rc}" -ne 0 ]]; then
  echo "service smoke: daemon exited ${rc} on SIGTERM drain" >&2
  cat "${tmp}/err2" >&2
  exit 1
fi
grep -qF '{"id":"warm","event":"done"' "${tmp}/out2" || {
  echo "service smoke: SIGTERM drain dropped the in-flight job" >&2
  cat "${tmp}/out2" >&2
  exit 1
}
echo "service smoke: SIGTERM drain finished the in-flight job and exited 0"

# The daemon prints final stats JSON on stderr; they must prove a warm start.
grep -qF '"snapshot_loaded":true' "${tmp}/err2" || {
  echo "service smoke: restart did not load the snapshot" >&2
  cat "${tmp}/err2" >&2
  exit 1
}
restored="$(sed -n 's/.*"restored_hits":\([0-9][0-9]*\).*/\1/p' "${tmp}/err2")"
if [[ -z "${restored}" || "${restored}" -eq 0 ]]; then
  echo "service smoke: warm restart served zero restored-entry hits" >&2
  cat "${tmp}/err2" >&2
  exit 1
fi
echo "service smoke: warm restart served ${restored} hits from restored entries"

# ---- phase 3: corrupt snapshot falls back to a cold start ------------------
printf 'X' | dd of="${snapshot}" bs=1 seek=12 conv=notrunc 2>/dev/null

mkfifo "${tmp}/in3"
OLP_SERVICE_SNAPSHOT="${snapshot}" OLP_SERVICE_SNAPSHOT_EVERY=0 \
  "${bin}" < "${tmp}/in3" > "${tmp}/out3" 2> "${tmp}/err3" &
pid=$!
exec 3> "${tmp}/in3"

echo '{"op":"stats"}' >&3
wait_for '"event":"stats"' "${tmp}/out3" 30
grep -qF '"snapshot_loaded":false' "${tmp}/out3" || {
  echo "service smoke: corrupt snapshot was not rejected" >&2
  cat "${tmp}/out3" >&2
  exit 1
}
echo '{"op":"ping"}' >&3
wait_for '"event":"pong"' "${tmp}/out3" 30
echo '{"op":"shutdown"}' >&3
wait_for '"event":"drained"' "${tmp}/out3" 60
rc=0
wait "${pid}" || rc=$?
exec 3>&-
if [[ "${rc}" -ne 0 ]]; then
  echo "service smoke: daemon exited ${rc} after a corrupt snapshot" >&2
  cat "${tmp}/err3" >&2
  exit 1
fi
echo "service smoke: corrupt snapshot fell back to a cold start cleanly"

# ---- phase 4: concurrent TCP clients, mid-frame kill, SIGHUP reload --------
# Reads lines from a connected TCP fd until a fixed string shows up. Every
# line read is appended to a log so a timeout dumps the whole exchange.
tcp_expect() {
  local fd=$1 needle=$2 timeout_s=${3:-60} line
  local deadline=$((SECONDS + timeout_s))
  while ((SECONDS < deadline)); do
    if read -r -t 1 -u "${fd}" line; then
      printf '%s\n' "${line}" >> "${tmp}/tcp_log"
      [[ "${line}" == *"${needle}"* ]] && return 0
    fi
  done
  echo "service smoke: timed out waiting for ${needle} on tcp fd ${fd}" >&2
  [[ -f "${tmp}/tcp_log" ]] && cat "${tmp}/tcp_log" >&2
  return 1
}

reload_conf="${tmp}/reload.conf"
mkfifo "${tmp}/in4"
OLP_SERVICE_TCP=0 OLP_SERVICE_WORKERS=2 OLP_SERVICE_SNAPSHOT_EVERY=0 \
  OLP_SERVICE_CONFIG="${reload_conf}" \
  "${bin}" < "${tmp}/in4" > "${tmp}/out4" 2> "${tmp}/err4" &
pid=$!
exec 3> "${tmp}/in4"

wait_for '"event":"listening","transport":"tcp"' "${tmp}/out4" 30
port="$(sed -n 's/.*"transport":"tcp","port":\([0-9][0-9]*\).*/\1/p' "${tmp}/out4")"
if [[ -z "${port}" ]]; then
  echo "service smoke: daemon did not announce a TCP port" >&2
  cat "${tmp}/out4" >&2
  exit 1
fi

# Four clients connect and stay open simultaneously; each gets its own pong.
exec 4<>"/dev/tcp/127.0.0.1/${port}"
exec 5<>"/dev/tcp/127.0.0.1/${port}"
exec 6<>"/dev/tcp/127.0.0.1/${port}"
exec 7<>"/dev/tcp/127.0.0.1/${port}"
for fd in 4 5 6 7; do
  echo '{"op":"ping"}' >&${fd}
  tcp_expect "${fd}" '"event":"pong"' 30
done
echo "service smoke: 4 concurrent TCP clients served"

# A fifth client dies mid-frame: half a line, no newline, hard close. The
# torn frame must be discarded, never dispatched as a request.
exec 8<>"/dev/tcp/127.0.0.1/${port}"
printf '{"op":"sub' >&8
exec 8>&-
exec 8<&-

# SIGHUP reload: a new queue bound lands in the config file, the signal
# applies it, and the ALREADY-OPEN connections must keep working. The empty
# reload verb echoes the effective config, proving the bound took effect.
printf 'OLP_SERVICE_QUEUE_DEPTH=33\n' > "${reload_conf}"
kill -HUP "${pid}"
wait_for '"event":"reloaded"' "${tmp}/err4" 30
echo '{"op":"reload"}' >&4
tcp_expect 4 '"queue_depth":33' 30
echo "service smoke: SIGHUP applied queue_depth=33 without dropping connections"

# The veteran connection still does real work after the reload.
echo '{"op":"submit","id":"t1","client":"tcp-smoke","circuit":"vco","mode":"conventional","key":"tcp-key"}' >&4
tcp_expect 4 '{"id":"t1","event":"done"' 120

for fd in 4 5 6 7; do
  eval "exec ${fd}>&-"
  eval "exec ${fd}<&-"
done
echo '{"op":"drain"}' >&3
wait_for '"event":"drained"' "${tmp}/out4" 120
rc=0
wait "${pid}" || rc=$?
exec 3>&-
if [[ "${rc}" -ne 0 ]]; then
  echo "service smoke: daemon exited ${rc} after the TCP phase" >&2
  cat "${tmp}/err4" >&2
  exit 1
fi

grep -qF '"event":"transport_stats"' "${tmp}/err4" || {
  echo "service smoke: no transport_stats line on stderr" >&2
  cat "${tmp}/err4" >&2
  exit 1
}
max_active="$(sed -n 's/.*"max_active":\([0-9][0-9]*\).*/\1/p' "${tmp}/err4")"
torn="$(sed -n 's/.*"torn_frames_discarded":\([0-9][0-9]*\).*/\1/p' "${tmp}/err4")"
if [[ -z "${max_active}" || "${max_active}" -lt 4 ]]; then
  echo "service smoke: expected >=4 concurrent connections, saw '${max_active}'" >&2
  cat "${tmp}/err4" >&2
  exit 1
fi
if [[ -z "${torn}" || "${torn}" -lt 1 ]]; then
  echo "service smoke: mid-frame kill did not register a torn frame" >&2
  cat "${tmp}/err4" >&2
  exit 1
fi
echo "service smoke: transport peaked at ${max_active} connections, discarded ${torn} torn frame(s)"

# ---- phase 5: kill -9 with queued keyed work; journal replays, dedups ------
journal="${tmp}/requests.journal"
mkfifo "${tmp}/in5"
OLP_SERVICE_JOURNAL="${journal}" OLP_SERVICE_WORKERS=1 \
  OLP_SERVICE_SNAPSHOT_EVERY=0 \
  "${bin}" < "${tmp}/in5" > "${tmp}/out5" 2> "${tmp}/err5" &
pid=$!
exec 3> "${tmp}/in5"

# One slow job holds the single worker; three keyed jobs queue behind it.
# Every accept is journaled before the event is emitted, so once the accepts
# are visible the work is durable — kill -9 cannot lose it.
echo '{"op":"submit","id":"hold","client":"smoke","circuit":"vco","mode":"optimize","seed":21,"deadline_ms":4000,"key":"hold-key"}' >&3
wait_for '{"id":"hold","event":"accepted"' "${tmp}/out5" 30
echo '{"op":"submit","id":"r1","client":"smoke","circuit":"vco","mode":"conventional","key":"key-1"}' >&3
echo '{"op":"submit","id":"r2","client":"smoke","circuit":"vco","mode":"conventional","key":"key-2"}' >&3
echo '{"op":"submit","id":"r3","client":"smoke","circuit":"vco","mode":"conventional","key":"key-3"}' >&3
wait_for '{"id":"r3","event":"accepted"' "${tmp}/out5" 30
kill -9 "${pid}"
wait "${pid}" 2>/dev/null || true
exec 3>&-

[[ -s "${journal}" ]] || {
  echo "service smoke: journal missing or empty after kill -9" >&2
  exit 1
}
echo "service smoke: journal survived kill -9 with keyed work queued"

mkfifo "${tmp}/in6"
OLP_SERVICE_JOURNAL="${journal}" OLP_SERVICE_WORKERS=1 \
  OLP_SERVICE_SNAPSHOT_EVERY=0 \
  "${bin}" < "${tmp}/in6" > "${tmp}/out6" 2> "${tmp}/err6" &
pid=$!
exec 3> "${tmp}/in6"

# Replay runs at-least-once: poll stats until every replayed entry has
# completed and nothing is left pending in the journal.
deadline=$((SECONDS + 300))
until grep -qF '"pending":0' "${tmp}/out6" 2>/dev/null; do
  if ((SECONDS >= deadline)); then
    echo "service smoke: journal replay did not finish" >&2
    cat "${tmp}/out6" >&2
    exit 1
  fi
  echo '{"op":"stats"}' >&3
  sleep 0.5
done
replayed="$(sed -n 's/.*"replayed":\([0-9][0-9]*\).*/\1/p' "${tmp}/out6" | tail -n1)"
if [[ -z "${replayed}" || "${replayed}" -lt 3 ]]; then
  echo "service smoke: expected >=3 replayed journal entries, saw '${replayed}'" >&2
  cat "${tmp}/out6" >&2
  exit 1
fi
echo "service smoke: restart replayed ${replayed} journaled job(s)"

# Resubmitting the same idempotency keys must answer from the journal
# record — a duplicate event with the recorded status, not a re-run.
for k in 1 2 3; do
  echo "{\"op\":\"submit\",\"id\":\"dup${k}\",\"client\":\"smoke\",\"circuit\":\"vco\",\"mode\":\"conventional\",\"key\":\"key-${k}\"}" >&3
  wait_for "{\"id\":\"dup${k}\",\"event\":\"duplicate\",\"key\":\"key-${k}\"" "${tmp}/out6" 30
done

echo '{"op":"drain"}' >&3
wait_for '"event":"drained"' "${tmp}/out6" 120
rc=0
wait "${pid}" || rc=$?
exec 3>&-
if [[ "${rc}" -ne 0 ]]; then
  echo "service smoke: daemon exited ${rc} after journal replay" >&2
  cat "${tmp}/err6" >&2
  exit 1
fi

# Zero lost, zero duplicated: everything completed this run came from the
# replay (the dup resubmits were answered, not executed), so completed must
# equal replayed and the duplicate shed counter must be exactly 3.
completed="$(sed -n 's/.*"completed":\([0-9][0-9]*\).*/\1/p' "${tmp}/err6" | tail -n1)"
if [[ -z "${completed}" || "${completed}" != "${replayed}" ]]; then
  echo "service smoke: completed (${completed}) != replayed (${replayed}) — lost or double-ran work" >&2
  cat "${tmp}/err6" >&2
  exit 1
fi
grep -qF '"duplicate":3' "${tmp}/err6" || {
  echo "service smoke: keyed resubmits were not all deduplicated" >&2
  cat "${tmp}/err6" >&2
  exit 1
}
echo "service smoke: zero lost, zero duplicated — ${completed} completed, 3 keys deduped"

echo "service smoke run passed"

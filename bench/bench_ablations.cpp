// Ablation studies for the design choices DESIGN.md calls out. Not a paper
// table — these quantify how much each ingredient of the methodology
// contributes on the 5T OTA:
//
//   A1: number of aspect-ratio bins handed to the placer (n = 1..4)
//   A2: primitive tuning on/off (Algorithm 1 step 2)
//   A3: port optimization on/off (Algorithm 2)
//   A4: edge dummies on/off in the optimized configurations
//
// Output: UGF and supply current of the final OTA per ablation, against the
// schematic target.

#include <iostream>

#include "circuits/flow.hpp"
#include "circuits/ota5t.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

namespace {

using namespace olp;

struct Row {
  std::string label;
  std::map<std::string, double> metrics;
};

Row run(const std::string& label, const tech::Technology& t,
        circuits::Ota5T& ota, const circuits::FlowOptions& options,
        bool strip_tuning, bool strip_port_wires) {
  circuits::FlowEngine engine(t, options);
  circuits::FlowReport report;
  circuits::Realization real =
      engine.run(circuits::FlowMode::kOptimize, ota.instances(), ota.routed_nets(), &report);
  if (strip_tuning) {
    for (auto& [inst, tuning] : real.tunings) {
      (void)inst;
      tuning.clear();
    }
  }
  if (strip_port_wires) {
    // Revert every net to a single route (what the flow would emit with
    // Algorithm 2 disabled).
    for (auto& [net, rc] : real.net_wires) {
      const auto rit = report.routes.find(net);
      if (rit != report.routes.end() && rit->second.routed) {
        rc = core::route_wire_rc(t, rit->second, 1);
      }
    }
  }
  return Row{label, ota.measure(real)};
}

}  // namespace

int main() {
  set_log_level(log_level_from_env("OLP_LOG_LEVEL", LogLevel::kError));
  const tech::Technology t = tech::make_default_finfet_tech();
  circuits::Ota5T ota(t);
  if (!ota.prepare()) {
    std::cerr << "preparation failed\n";
    return 1;
  }

  std::vector<Row> rows;
  rows.push_back(
      Row{"schematic (target)",
          ota.measure(circuits::schematic_realization(ota.instances(), t))});

  // A1: bin count.
  for (int bins : {1, 2, 3, 4}) {
    circuits::FlowOptions o;
    o.bins = bins;
    rows.push_back(run("full flow, bins = " + std::to_string(bins), t, ota,
                       o, false, false));
  }

  // A2: tuning disabled.
  rows.push_back(run("no primitive tuning", t, ota, {}, true, false));

  // A3: port optimization disabled.
  rows.push_back(run("no port optimization", t, ota, {}, false, true));

  // A4: both disabled (selection only).
  rows.push_back(run("selection only", t, ota, {}, true, true));

  // Conventional baseline for reference.
  {
    circuits::FlowEngine engine(t, {});
    rows.push_back(Row{
        "conventional baseline",
        ota.measure(engine.run(circuits::FlowMode::kConventional, ota.instances(), ota.routed_nets()))});
  }

  TextTable table(
      "Ablations on the 5T OTA: contribution of each methodology step");
  table.set_header({"configuration", "current (uA)", "UGF (GHz)",
                    "gain (dB)", "3-dB (MHz)"});
  for (const Row& r : rows) {
    auto val = [&](const char* key, int dec) {
      const auto it = r.metrics.find(key);
      return it == r.metrics.end() ? std::string("-")
                                   : fixed(it->second, dec);
    };
    table.add_row({r.label, val("current_ua", 0), val("ugf_ghz", 2),
                   val("gain_db", 1), val("f3db_mhz", 0)});
  }
  std::cout << table;
  std::cout << "\nReading guide: port optimization carries most of the win\n"
               "(the single-track tail route otherwise starves the OTA);\n"
               "primitive tuning adds the last few percent of current/UGF;\n"
               "more bins give the placer aspect-ratio freedom at little\n"
               "performance cost. 'Selection only' is still better than the\n"
               "conventional baseline once its wider default routes are\n"
               "accounted for.\n";
  return 0;
}

#include "util/diag.hpp"

#include "util/logging.hpp"
#include "util/obs.hpp"

namespace olp {

const char* diag_severity_name(DiagSeverity severity) {
  switch (severity) {
    case DiagSeverity::kInfo:
      return "info";
    case DiagSeverity::kWarning:
      return "warning";
    case DiagSeverity::kError:
      return "error";
  }
  return "unknown";
}

std::string Diagnostic::to_string() const {
  std::string out = std::string("[") + diag_severity_name(severity) + "] " +
                    stage + "/" + subject + ": " + message;
  if (!span.empty()) out += " (span " + span + ")";
  return out;
}

void DiagnosticsSink::report(DiagSeverity severity, std::string stage,
                             std::string subject, std::string message) {
  Diagnostic d;
  d.severity = severity;
  d.stage = std::move(stage);
  d.subject = std::move(subject);
  d.message = std::move(message);
  if (obs::enabled()) d.span = obs::Registry::global().span_path();
  // Mirror into the logger at debug level so interactive runs can watch the
  // recovery ladder without changing default output.
  OLP_DEBUG << d.to_string();
  static constexpr obs::LockSite kDiagLock{
      "obs.contention.diag.contended", "obs.contention.diag.wait_us"};
  const auto lock = obs::timed_lock(mu_, kDiagLock);
  records_.push_back(std::move(d));
}

std::size_t DiagnosticsSink::count(const std::string& stage) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const Diagnostic& d : records_) {
    if (d.stage == stage) ++n;
  }
  return n;
}

std::size_t DiagnosticsSink::count(const std::string& stage,
                                   const std::string& subject) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const Diagnostic& d : records_) {
    if (d.stage == stage && d.subject == subject) ++n;
  }
  return n;
}

bool DiagnosticsSink::has_at_least(DiagSeverity severity) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Diagnostic& d : records_) {
    if (static_cast<int>(d.severity) >= static_cast<int>(severity)) return true;
  }
  return false;
}

std::vector<Diagnostic> DiagnosticsSink::take() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Diagnostic> out = std::move(records_);
  records_.clear();
  return out;
}

}  // namespace olp

#include "service/service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <utility>

#include "circuits/ota5t.hpp"
#include "circuits/strongarm.hpp"
#include "circuits/vco.hpp"
#include "util/env.hpp"
#include "util/faults.hpp"
#include "util/jsonl.hpp"
#include "util/obs.hpp"
#include "util/table.hpp"
#include "util/trace_export.hpp"

namespace olp::service {

namespace {

long env_long(const char* name, long base) {
  const long v = env::integer(name, base);
  return v >= 0 ? v : base;
}

/// How many completed idempotency keys the service remembers in memory
/// (mirrors RequestJournal::kKeyHistoryCap for journal-less operation).
constexpr std::size_t kKeyHistoryCap = RequestJournal::kKeyHistoryCap;

/// Past this many distinct identities the token-bucket map is reset rather
/// than grown — a deliberate coarse bound so an identity-churning client
/// cannot leak memory (fresh buckets start full, so a reset only ever
/// forgives, never over-penalizes).
constexpr std::size_t kMaxBuckets = 4096;

}  // namespace

/// Budget registration of one running job, shared between the worker that
/// owns the run and drain(), which may cancel it concurrently.
struct LayoutService::Inflight {
  Budget budget;
  explicit Inflight(const BudgetOptions& limits) : budget(limits) {}
};

std::string ServiceStats::to_json() const {
  std::string out = "{\"uptime_s\":" + fixed(uptime_s, 3);
  out += ",\"draining\":" + std::string(draining ? "true" : "false");
  out += ",\"queue_depth\":" + std::to_string(queue_depth);
  out += ",\"inflight\":" + std::to_string(inflight);
  out += ",\"max_inflight\":" + std::to_string(max_inflight);
  out += ",\"workers\":" + std::to_string(workers);
  out += ",\"admitted\":" + std::to_string(admitted);
  out += ",\"completed\":" + std::to_string(completed);
  out += ",\"succeeded\":" + std::to_string(succeeded);
  out += ",\"degraded\":" + std::to_string(degraded);
  out += ",\"failed\":" + std::to_string(failed);
  out += ",\"retries\":" + std::to_string(retries);
  out += ",\"shed_queue_full\":" + std::to_string(shed_queue_full);
  out += ",\"shed_client_quota\":" + std::to_string(shed_client_quota);
  out += ",\"shed_draining\":" + std::to_string(shed_draining);
  out += ",\"parse_rejects\":" + std::to_string(parse_rejects);
  out += ",\"reloads\":" + std::to_string(reloads);
  // Per-RejectReason shed breakdown, nested so new reasons extend it
  // without growing the flat namespace.
  out += ",\"shed\":{\"queue_full\":" + std::to_string(shed_queue_full);
  out += ",\"client_quota\":" + std::to_string(shed_client_quota);
  out += ",\"draining\":" + std::to_string(shed_draining);
  out += ",\"rate_limited\":" + std::to_string(shed_rate_limited);
  out += ",\"duplicate\":" + std::to_string(duplicates);
  out += ",\"parse_error\":" + std::to_string(parse_rejects) + "}";
  out += ",\"p50_ms\":" + fixed(p50_ms, 3);
  out += ",\"p99_ms\":" + fixed(p99_ms, 3);
  out += ",\"p999_ms\":" + fixed(p999_ms, 3);
  out += ",\"latency_ms\":" + obs::histogram_json(latency);
  out += ",\"cache_hits\":" + std::to_string(cache.hits);
  out += ",\"cache_misses\":" + std::to_string(cache.misses);
  out += ",\"cache_entries\":" + std::to_string(cache.entries);
  out += ",\"cache_evictions\":" + std::to_string(cache.evictions);
  out += ",\"cache_capacity\":" + std::to_string(cache.capacity);
  out += ",\"cross_client_hits\":" + std::to_string(cache.cross_client_hits);
  out += ",\"restored_hits\":" + std::to_string(cache.restored_hits);
  out += ",\"cache_scopes\":" + std::to_string(cache_scopes);
  out += ",\"snapshot_loaded\":" +
         std::string(snapshot_loaded ? "true" : "false");
  if (!snapshot_error.empty()) {
    out += ",\"snapshot_error\":\"" + jsonl::escape(snapshot_error) + "\"";
  }
  out += ",\"snapshots_saved\":" + std::to_string(snapshots_saved);
  out += ",\"journal\":{\"enabled\":" +
         std::string(journal.enabled ? "true" : "false");
  out += ",\"pending\":" + std::to_string(journal.pending);
  out += ",\"appended\":" + std::to_string(journal.appended);
  out += ",\"append_failures\":" + std::to_string(journal.append_failures);
  out += ",\"compactions\":" + std::to_string(journal.compactions);
  out += ",\"torn_tail_recovered\":" +
         std::string(journal.torn_tail_recovered ? "true" : "false");
  out += ",\"key_history\":" + std::to_string(journal.key_history);
  out += ",\"replayed\":" + std::to_string(journal_replayed);
  out += ",\"deduped\":" + std::to_string(journal_deduped);
  if (!journal.last_error.empty()) {
    out += ",\"last_error\":\"" + jsonl::escape(journal.last_error) + "\"";
  }
  out += "}";
  if (obs::enabled()) {
    const obs::Snapshot snap = obs::Registry::global().snapshot();
    out += ",\"counters\":{";
    bool first = true;
    for (const auto& [name, value] : snap.counters) {
      if (!first) out += ",";
      first = false;
      out += "\"" + jsonl::escape(name) + "\":" + std::to_string(value);
    }
    out += "}";
  }
  out += "}";
  return out;
}

namespace {

/// Environment-resolved copy of the caller's options (applied once, at
/// construction — same convention as FlowEngine/BatchRunner).
ServiceOptions resolve_options(ServiceOptions options) {
  options.workers =
      static_cast<int>(env_long("OLP_SERVICE_WORKERS", options.workers));
  if (options.workers < 1) options.workers = 1;
  options.pool_threads = threads_from_env(options.pool_threads);
  options.queue.max_depth = static_cast<std::size_t>(
      env_long("OLP_SERVICE_QUEUE_DEPTH",
               static_cast<long>(options.queue.max_depth)));
  options.queue.max_per_client = static_cast<std::size_t>(
      env_long("OLP_SERVICE_CLIENT_QUEUE",
               static_cast<long>(options.queue.max_per_client)));
  const long cap = env::integer("OLP_CACHE_MAX_ENTRIES",
                                static_cast<long>(options.cache_max_entries));
  options.cache_max_entries = cap > 0 ? static_cast<std::size_t>(cap) : 0;
  options.max_retries =
      static_cast<int>(env_long("OLP_SERVICE_RETRIES", options.max_retries));
  options.snapshot_path =
      env::str("OLP_SERVICE_SNAPSHOT", options.snapshot_path);
  options.snapshot_every =
      env_long("OLP_SERVICE_SNAPSHOT_EVERY", options.snapshot_every);
  options.journal_path = env::str("OLP_SERVICE_JOURNAL", options.journal_path);
  options.rate_per_s = env::number("OLP_SERVICE_RATE", options.rate_per_s);
  options.rate_burst =
      env::number("OLP_SERVICE_RATE_BURST", options.rate_burst);
  options.observability = env::flag("OLP_OBS", options.observability);
  options.metrics_path = env::str("OLP_METRICS_PATH", options.metrics_path);
  options.metrics_every = env_long("OLP_METRICS_EVERY", options.metrics_every);
  return options;
}

}  // namespace

LayoutService::LayoutService(const tech::Technology& technology,
                             ServiceOptions options)
    : tech_(technology),
      options_(resolve_options(std::move(options))),
      queue_(options_.queue),
      caches_(options_.cache_max_entries) {
  snapshot_every_.store(options_.snapshot_every);
  metrics_every_.store(options_.metrics_every);
  max_retries_.store(options_.max_retries);
  rate_per_s_.store(options_.rate_per_s);
  rate_burst_.store(options_.rate_burst);
  desired_workers_.store(options_.workers);
}

LayoutService::~LayoutService() { drain(/*cancel_inflight=*/true); }

std::vector<std::string> LayoutService::known_circuits() {
  return {"ota5t", "strongarm", "vco"};
}

void LayoutService::start() {
  bool expected = false;
  if (!started_.compare_exchange_strong(expected, true)) return;

  // The service owns observability when asked to: live-metrics families
  // (obs.pool.*, obs.contention.*) start collecting from here.
  if (options_.observability) obs::Registry::global().enable();

  if (!options_.snapshot_path.empty()) {
    std::string error;
    if (caches_.load_snapshot(options_.snapshot_path, &error)) {
      std::lock_guard<std::mutex> lock(state_mu_);
      snapshot_loaded_ = true;
    } else {
      // Cold start: the pool is untouched (all-or-nothing restore). Record
      // why, keep going — a bad snapshot must never keep the service down.
      std::lock_guard<std::mutex> lock(state_mu_);
      snapshot_loaded_ = false;
      snapshot_error_ = error;
      obs::counter_add("service.snapshot_load_failed");
    }
  }

  if (!options_.journal_path.empty()) {
    journal_ = std::make_unique<RequestJournal>(options_.journal_path);
    std::string error;
    if (!journal_->open(&error)) {
      // Durability degrades (counted in stats), the service stays up.
      obs::counter_add("service.journal_open_failed");
    }
  }

  pool_ = std::make_unique<TaskPool>(options_.pool_threads);

  // Replay BEFORE workers spawn: the queue is filled while nothing drains
  // it, so recovered work keeps its original acceptance order.
  replay_journal();

  std::lock_guard<std::mutex> lock(workers_mu_);
  spawn_workers_locked(desired_workers_.load());
}

void LayoutService::spawn_workers_locked(int count) {
  const std::uint64_t epoch = worker_epoch_.load();
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this, i, epoch] { worker_loop(i, epoch); });
  }
}

void LayoutService::resize_workers(int target) {
  if (target < 1) target = 1;
  std::lock_guard<std::mutex> lock(workers_mu_);
  if (desired_workers_.load() == target && !workers_.empty()) return;
  desired_workers_.store(target);
  if (!started_.load()) return;  // start() will spawn the right count
  // Retire the whole current fleet (each worker exits after its current
  // job — briefly over-committed on grow, never abandoned) and spawn a
  // fresh one under the new epoch. Retired threads join at drain.
  worker_epoch_.fetch_add(1);
  for (std::thread& t : workers_) retired_.push_back(std::move(t));
  workers_.clear();
  spawn_workers_locked(target);
  queue_.wake();  // stale-epoch workers re-check their stop condition now
  obs::counter_add("service.worker_resizes");
}

void LayoutService::replay_journal() {
  if (!journal_) return;
  std::vector<JournalEntry> pending = journal_->take_pending();
  if (pending.empty()) return;

  // This work was admitted once already — bounds were paid then. Lift them
  // for the replay, restore afterwards.
  const QueueOptions bounds = queue_.options();
  queue_.set_options(QueueOptions{0, 0});

  for (JournalEntry& entry : pending) {
    circuits::JobStatus prior = circuits::JobStatus::kFailed;
    if (!entry.request.key.empty() &&
        journal_->completed_key(entry.request.key, &prior)) {
      // The key finished in a previous life; void this entry so it never
      // replays again, and never re-run it.
      journal_->append_completed(entry.seq, "", prior);
      std::lock_guard<std::mutex> lock(state_mu_);
      ++journal_deduped_;
      continue;
    }
    QueuedJob job;
    job.request = std::move(entry.request);
    job.ticket = next_ticket_.fetch_add(1, std::memory_order_relaxed);
    job.admitted_s = clock_.seconds();
    job.journal_seq = entry.seq;
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      if (!job.request.key.empty()) active_keys_.insert(job.request.key);
      // Replayed outcomes have no living submitter; account them so the
      // stats (and the smoke test) can prove zero loss.
      done_[job.ticket] = [](const RequestOutcome&) {};
      ++journal_replayed_;
    }
    queue_.offer(std::move(job));
  }
  queue_.set_options(bounds);
  obs::counter_add("service.journal_replayed");
}

bool LayoutService::take_token(const std::string& identity) {
  const double rate = rate_per_s_.load();
  if (rate <= 0.0) return true;
  double burst = rate_burst_.load();
  if (burst < 1.0) burst = std::max(rate, 1.0);
  const double now = clock_.seconds();
  std::lock_guard<std::mutex> lock(state_mu_);
  if (buckets_.size() >= kMaxBuckets && buckets_.count(identity) == 0) {
    buckets_.clear();
  }
  Bucket& b = buckets_[identity];
  if (b.tokens < 0.0) {
    b.tokens = burst;  // fresh bucket starts full
  } else {
    b.tokens = std::min(burst, b.tokens + (now - b.last_s) * rate);
  }
  b.last_s = now;
  if (b.tokens < 1.0) return false;
  b.tokens -= 1.0;
  return true;
}

RejectReason LayoutService::submit(const ServiceRequest& request,
                                   OutcomeFn done) {
  const std::vector<std::string> known = known_circuits();
  if (std::find(known.begin(), known.end(), request.circuit) == known.end()) {
    return RejectReason::kUnknownCircuit;
  }
  // Token bucket in front of the queue, keyed by the connection-stable
  // identity (self-reported client only for trusted direct callers).
  if (!take_token(queue_key(request))) {
    std::lock_guard<std::mutex> lock(state_mu_);
    ++rate_limited_;
    return RejectReason::kRateLimited;
  }
  // Idempotency: a key that is in flight or already completed is answered
  // without re-running (duplicate_status() has the recorded outcome).
  if (!request.key.empty()) {
    std::lock_guard<std::mutex> lock(state_mu_);
    const bool known_key = active_keys_.count(request.key) != 0 ||
                           completed_keys_.count(request.key) != 0 ||
                           (journal_ && journal_->completed_key(request.key));
    if (known_key) {
      ++duplicates_;
      return RejectReason::kDuplicate;
    }
    active_keys_.insert(request.key);
  }

  QueuedJob job;
  job.request = request;
  job.ticket = next_ticket_.fetch_add(1, std::memory_order_relaxed);
  job.admitted_s = clock_.seconds();
  // Durability barrier: the journal record must be on disk before the
  // caller is told "accepted" (submit returning kNone IS that promise).
  if (journal_) {
    job.journal_seq = journal_->append_accepted(request);
  }
  // Register the callback BEFORE offering: a worker may pick the job up
  // and finish it before offer() even returns.
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    done_[job.ticket] = std::move(done);
  }
  const std::uint64_t ticket = job.ticket;
  const std::uint64_t journal_seq = job.journal_seq;
  const RejectReason reason = queue_.offer(std::move(job));
  if (reason != RejectReason::kNone) {
    std::lock_guard<std::mutex> lock(state_mu_);
    done_.erase(ticket);
    if (!request.key.empty()) active_keys_.erase(request.key);
    // Already journaled but never admitted: void the entry (empty key —
    // the idempotency key is NOT burned by a shed) so it cannot replay.
    if (journal_ && journal_seq != 0) {
      journal_->append_completed(journal_seq, "",
                                 circuits::JobStatus::kFailed);
    }
  }
  return reason;
}

bool LayoutService::duplicate_status(const std::string& key,
                                     circuits::JobStatus* status) const {
  if (key.empty()) return false;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    const auto it = completed_keys_.find(key);
    if (it != completed_keys_.end()) {
      if (status != nullptr) *status = it->second;
      return true;
    }
  }
  return journal_ && journal_->completed_key(key, status);
}

void LayoutService::reload(const std::map<std::string, double>& values) {
  const auto get = [&values](const char* key, double* out) {
    const auto it = values.find(key);
    if (it == values.end()) return false;
    *out = it->second;
    return true;
  };
  double v = 0.0;
  QueueOptions bounds = queue_.options();
  bool bounds_changed = false;
  if (get("queue_depth", &v)) {
    bounds.max_depth = static_cast<std::size_t>(v);
    bounds_changed = true;
  }
  if (get("client_queue", &v)) {
    bounds.max_per_client = static_cast<std::size_t>(v);
    bounds_changed = true;
  }
  if (bounds_changed) queue_.set_options(bounds);
  if (get("workers", &v)) resize_workers(static_cast<int>(v));
  if (get("snapshot_every", &v)) snapshot_every_.store(static_cast<long>(v));
  if (get("retries", &v)) max_retries_.store(static_cast<int>(v));
  if (get("metrics_every", &v)) metrics_every_.store(static_cast<long>(v));
  if (get("rate", &v)) rate_per_s_.store(v);
  if (get("burst", &v)) rate_burst_.store(v);
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    ++reloads_;
  }
  obs::counter_add("service.reloads");
}

void LayoutService::worker_loop(int worker_index, std::uint64_t epoch) {
  obs::set_thread_name("service/worker-" + std::to_string(worker_index));
  QueuedJob job;
  const auto retired = [this, epoch] {
    return worker_epoch_.load(std::memory_order_relaxed) != epoch;
  };
  while (queue_.take(&job, retired)) run_one(std::move(job));
}

void LayoutService::run_one(QueuedJob job) {
  const double picked_s = clock_.seconds();
  RequestOutcome outcome;
  outcome.id = job.request.id;
  outcome.client = job.request.client;
  outcome.queued_s = picked_s - job.admitted_s;

  // Per-request budget: deadline + testbench cap ride the existing Budget
  // machinery, registered so drain(cancel) can cancel it mid-run.
  BudgetOptions limits;
  const double deadline_ms = job.request.deadline_ms > 0.0
                                 ? job.request.deadline_ms
                                 : options_.default_deadline_ms;
  if (deadline_ms > 0.0) limits.deadline_s = deadline_ms / 1000.0;
  limits.max_testbenches = job.request.max_testbenches;
  auto inflight = std::make_shared<Inflight>(limits);
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    inflight_[job.ticket] = inflight;
    if (static_cast<long>(inflight_.size()) > max_inflight_) {
      max_inflight_ = static_cast<long>(inflight_.size());
    }
  }

  circuits::FlowJob flow_job;
  flow_job.name = job.request.id;
  flow_job.mode = job.request.mode;
  flow_job.options.seed = job.request.seed;
  flow_job.options.budget = &inflight->budget;

  std::string circuit_error;
  const bool circuit_ok =
      circuit_spec(job.request.circuit, &flow_job.instances,
                   &flow_job.routed_nets, &circuit_error);

  const int retries =
      job.request.retries >= 0 ? job.request.retries : max_retries_.load();
  circuits::JobResult result;
  int attempts = 0;
  if (!circuit_ok) {
    result.status = circuits::JobStatus::kFailed;
    result.error = circuit_error;
    attempts = 1;
  } else {
    for (attempts = 1; attempts <= retries + 1; ++attempts) {
      if (attempts > 1) {
        // Exponential backoff before each re-attempt. A cancelled budget
        // skips the wait — drain(cancel) must not sit out the backoff.
        const double backoff_ms =
            options_.retry_backoff_ms * static_cast<double>(1 << (attempts - 2));
        if (!inflight->budget.exhausted()) {
          std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
              backoff_ms));
        }
        {
          std::lock_guard<std::mutex> lock(state_mu_);
          ++retries_;
        }
        obs::counter_add("service.retries");
      }
      if (FaultInjector::global().enabled() &&
          FaultInjector::global().should_fail(FaultSite::kJobTransient)) {
        // Injected transient: this attempt failed before doing any work.
        result = circuits::JobResult{};
        result.status = circuits::JobStatus::kFailed;
        result.error = "injected transient fault";
        obs::counter_add("service.transient_faults");
        continue;
      }
      result = circuits::run_flow_job(flow_job, tech_, pool_.get(),
                                      caches_.cache_for(tech_),
                                      client_id(job.request.client));
      if (result.status != circuits::JobStatus::kFailed) break;
      // A budget-exhausted failure is NOT transient — retrying a request
      // whose deadline already passed only burns a worker.
      if (inflight->budget.exhausted()) break;
    }
    if (attempts > retries + 1) attempts = retries + 1;
  }

  outcome.status = result.status;
  outcome.error = result.error;
  outcome.attempts = attempts;
  outcome.run_s = clock_.seconds() - picked_s;
  outcome.testbenches = result.report.testbenches;
  outcome.degraded = result.report.degraded;
  outcome.budget_exhausted = result.report.budget.exhausted;

  // Completion is durable before it is visible: the journal record lands
  // before the callback (and any "done" line) fires.
  if (journal_ && job.journal_seq != 0) {
    journal_->append_completed(job.journal_seq, job.request.key,
                               outcome.status);
  }

  OutcomeFn done;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    inflight_.erase(job.ticket);
    const auto it = done_.find(job.ticket);
    if (it != done_.end()) {
      done = std::move(it->second);
      done_.erase(it);
    }
    if (!job.request.key.empty()) {
      active_keys_.erase(job.request.key);
      if (completed_keys_.emplace(job.request.key, outcome.status).second) {
        completed_key_order_.push_back(job.request.key);
        if (completed_key_order_.size() > kKeyHistoryCap) {
          completed_keys_.erase(completed_key_order_.front());
          completed_key_order_.erase(completed_key_order_.begin());
        }
      }
    }
    ++completed_;
    switch (outcome.status) {
      case circuits::JobStatus::kSucceeded:
        ++succeeded_;
        break;
      case circuits::JobStatus::kDegraded:
        ++degraded_;
        break;
      case circuits::JobStatus::kFailed:
        ++failed_;
        break;
    }
    latency_hist_.record((outcome.queued_s + outcome.run_s) * 1000.0);
  }
  obs::counter_add("service.completed");
  if (done) done(outcome);
  maybe_periodic_snapshot();
  maybe_periodic_metrics(/*force=*/false);
}

void LayoutService::maybe_periodic_snapshot() {
  const long every = snapshot_every_.load();
  if (options_.snapshot_path.empty() || every <= 0) return;
  bool due = false;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    due = completed_ % every == 0;
  }
  if (due) save_snapshot(nullptr);
}

void LayoutService::maybe_periodic_metrics(bool force) {
  if (options_.metrics_path.empty()) return;
  if (!force) {
    const long every = metrics_every_.load();
    if (every <= 0) return;
    std::lock_guard<std::mutex> lock(state_mu_);
    if (completed_ == 0 || completed_ % every != 0) return;
  }
  // Build the line before taking the append lock (metrics_json snapshots
  // the registry); append failures are recorded, never fatal.
  const std::string line = metrics_json();
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    std::ofstream out(options_.metrics_path, std::ios::app);
    if (out) {
      out << line << "\n";
    } else {
      obs::counter_add("service.metrics_write_failed");
    }
  }
  // When the service owns the registry, each emitted line closes its
  // interval: the rebase clears spans (bounding resident memory) and
  // restarts the obs counter/histogram families, so successive lines are
  // per-interval deltas. The service's own gauges (completed, latency
  // histogram, shed counts) stay cumulative.
  if (options_.observability) obs::Registry::global().rebase();
}

bool LayoutService::save_snapshot(std::string* error) {
  if (options_.snapshot_path.empty()) {
    if (error != nullptr) *error = "no snapshot path configured";
    return false;
  }
  std::lock_guard<std::mutex> snap_lock(snapshot_mu_);
  std::string local;
  if (!caches_.save_snapshot(options_.snapshot_path, &local)) {
    std::lock_guard<std::mutex> lock(state_mu_);
    snapshot_error_ = local;
    if (error != nullptr) *error = local;
    obs::counter_add("service.snapshot_save_failed");
    return false;
  }
  std::lock_guard<std::mutex> lock(state_mu_);
  ++snapshots_saved_;
  obs::counter_add("service.snapshots_saved");
  return true;
}

int LayoutService::client_id(const std::string& client) {
  std::lock_guard<std::mutex> lock(state_mu_);
  const auto it = client_ids_.find(client);
  if (it != client_ids_.end()) return it->second;
  const int id = static_cast<int>(client_ids_.size());
  client_ids_[client] = id;
  return id;
}

bool LayoutService::circuit_spec(
    const std::string& name, std::vector<circuits::InstanceSpec>* instances,
    std::vector<std::string>* routed_nets, std::string* error) {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    const auto it = circuits_.find(name);
    if (it != circuits_.end()) {
      *instances = it->second.first;
      *routed_nets = it->second.second;
      return true;
    }
  }
  // Prepare outside the lock (sizing runs testbenches); a racing duplicate
  // preparation is wasted work, not an error — last writer wins with an
  // identical value (preparation is deterministic).
  std::vector<circuits::InstanceSpec> inst;
  std::vector<std::string> nets;
  try {
    if (name == "ota5t") {
      circuits::Ota5T c(tech_);
      if (!c.prepare()) {
        if (error != nullptr) *error = "ota5t preparation failed";
        return false;
      }
      inst = c.instances();
      nets = c.routed_nets();
    } else if (name == "strongarm") {
      circuits::StrongArmComparator c(tech_);
      if (!c.prepare()) {
        if (error != nullptr) *error = "strongarm preparation failed";
        return false;
      }
      inst = c.instances();
      nets = c.routed_nets();
    } else if (name == "vco") {
      circuits::RoVco c(tech_);
      if (!c.prepare()) {
        if (error != nullptr) *error = "vco preparation failed";
        return false;
      }
      inst = c.instances();
      nets = c.routed_nets();
    } else {
      if (error != nullptr) *error = "unknown circuit \"" + name + "\"";
      return false;
    }
  } catch (const std::exception& e) {
    if (error != nullptr) {
      *error = "circuit preparation threw: " + std::string(e.what());
    }
    return false;
  }
  std::lock_guard<std::mutex> lock(state_mu_);
  circuits_[name] = {inst, nets};
  *instances = std::move(inst);
  *routed_nets = std::move(nets);
  return true;
}

bool LayoutService::draining() const {
  return draining_.load(std::memory_order_relaxed);
}

void LayoutService::drain(bool cancel_inflight) {
  std::lock_guard<std::mutex> drain_lock(drain_mu_);
  if (!started_.load(std::memory_order_relaxed)) return;
  draining_.store(true, std::memory_order_relaxed);
  queue_.close();
  if (cancel_inflight) {
    // Drop what never started, cancel what did. Dropped jobs still owe
    // their submitters an outcome — deliver a cancelled failure. Their
    // journal entries stay pending on purpose: accepted work that was
    // cancelled by a fast shutdown replays on the next start.
    std::vector<OutcomeFn> cancelled;
    std::vector<RequestOutcome> outcomes;
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      // Every registered callback whose ticket is NOT in flight belongs to
      // a queued (or about-to-be-taken) job.
      for (auto it = done_.begin(); it != done_.end();) {
        if (inflight_.find(it->first) == inflight_.end()) {
          RequestOutcome o;
          o.status = circuits::JobStatus::kFailed;
          o.error = "cancelled by shutdown";
          cancelled.push_back(std::move(it->second));
          outcomes.push_back(std::move(o));
          it = done_.erase(it);
          ++failed_;
          ++completed_;
        } else {
          ++it;
        }
      }
      for (auto& [ticket, inflight] : inflight_) inflight->budget.cancel();
    }
    queue_.clear();
    for (std::size_t i = 0; i < cancelled.size(); ++i) {
      if (cancelled[i]) cancelled[i](outcomes[i]);
    }
  }
  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    for (std::thread& w : workers_) {
      if (w.joinable()) w.join();
    }
    workers_.clear();
    for (std::thread& w : retired_) {
      if (w.joinable()) w.join();
    }
    retired_.clear();
  }
  if (!options_.snapshot_path.empty()) save_snapshot(nullptr);
  if (journal_) journal_->compact(nullptr);  // shrink to live state
  maybe_periodic_metrics(/*force=*/true);  // final metrics line
  obs::counter_add("service.drains");
}

ServiceStats LayoutService::stats() const {
  ServiceStats s;
  s.uptime_s = clock_.seconds();
  s.draining = draining();
  s.queue_depth = queue_.depth();
  s.workers = desired_workers_.load();
  s.admitted = queue_.admitted();
  s.shed_queue_full = queue_.shed(RejectReason::kQueueFull);
  s.shed_client_quota = queue_.shed(RejectReason::kClientQuota);
  s.shed_draining = queue_.shed(RejectReason::kDraining);
  s.cache = caches_.stats();
  s.cache_scopes = caches_.scopes();
  if (journal_) s.journal = journal_->stats();
  std::lock_guard<std::mutex> lock(state_mu_);
  s.inflight = static_cast<long>(inflight_.size());
  s.max_inflight = max_inflight_;
  s.completed = completed_;
  s.succeeded = succeeded_;
  s.degraded = degraded_;
  s.failed = failed_;
  s.retries = retries_;
  s.parse_rejects = parse_rejects_;
  s.shed_rate_limited = rate_limited_;
  s.duplicates = duplicates_;
  s.reloads = reloads_;
  s.journal_replayed = journal_replayed_;
  s.journal_deduped = journal_deduped_;
  s.latency = latency_hist_.stats();
  s.p50_ms = s.latency.p50;
  s.p99_ms = s.latency.p99;
  s.p999_ms = s.latency.p999;
  s.snapshot_loaded = snapshot_loaded_;
  s.snapshot_error = snapshot_error_;
  s.snapshots_saved = snapshots_saved_;
  return s;
}

std::string LayoutService::metrics_json() const {
  const ServiceStats s = stats();
  std::string out = "{\"uptime_s\":" + fixed(s.uptime_s, 3);
  out += ",\"queue_depth\":" + std::to_string(s.queue_depth);
  out += ",\"inflight\":" + std::to_string(s.inflight);
  out += ",\"max_inflight\":" + std::to_string(s.max_inflight);
  out += ",\"workers\":" + std::to_string(s.workers);
  out += ",\"admitted\":" + std::to_string(s.admitted);
  out += ",\"completed\":" + std::to_string(s.completed);
  out += ",\"succeeded\":" + std::to_string(s.succeeded);
  out += ",\"degraded\":" + std::to_string(s.degraded);
  out += ",\"failed\":" + std::to_string(s.failed);
  out += ",\"retries\":" + std::to_string(s.retries);
  out += ",\"reloads\":" + std::to_string(s.reloads);
  out += ",\"shed\":{\"queue_full\":" + std::to_string(s.shed_queue_full);
  out += ",\"client_quota\":" + std::to_string(s.shed_client_quota);
  out += ",\"draining\":" + std::to_string(s.shed_draining);
  out += ",\"rate_limited\":" + std::to_string(s.shed_rate_limited);
  out += ",\"duplicate\":" + std::to_string(s.duplicates);
  out += ",\"parse_error\":" + std::to_string(s.parse_rejects) + "}";
  out += ",\"journal\":{\"enabled\":" +
         std::string(s.journal.enabled ? "true" : "false");
  out += ",\"pending\":" + std::to_string(s.journal.pending);
  out += ",\"append_failures\":" + std::to_string(s.journal.append_failures);
  out += ",\"replayed\":" + std::to_string(s.journal_replayed);
  out += ",\"deduped\":" + std::to_string(s.journal_deduped) + "}";
  out += ",\"latency_ms\":" + obs::histogram_json(s.latency);
  out += ",\"cache\":{\"hits\":" + std::to_string(s.cache.hits);
  out += ",\"misses\":" + std::to_string(s.cache.misses);
  out += ",\"entries\":" + std::to_string(s.cache.entries);
  out += ",\"evictions\":" + std::to_string(s.cache.evictions) + "}";
  // The obs families (one registry snapshot): lock-wait and pool metrics
  // live here as obs.contention.* / obs.pool.* counters and histograms.
  out += ",\"obs_enabled\":";
  out += obs::enabled() ? "true" : "false";
  out += ",\"counters\":{";
  if (obs::enabled()) {
    const obs::Snapshot snap = obs::Registry::global().snapshot();
    bool first = true;
    for (const auto& [name, value] : snap.counters) {
      if (!first) out += ',';
      first = false;
      out += "\"" + jsonl::escape(name) + "\":" + std::to_string(value);
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& [name, h] : snap.histograms) {
      if (!first) out += ',';
      first = false;
      out += "\"" + jsonl::escape(name) + "\":" + obs::histogram_json(h);
    }
  } else {
    out += "},\"histograms\":{";
  }
  out += "}}";
  return out;
}

bool LayoutService::handle_line(const std::string& identity,
                                const std::string& line, const EmitFn& emit) {
  if (line.empty()) return true;
  ServiceRequest request;
  std::string error;
  const RejectReason parsed = parse_request(line, &request, &error);
  if (parsed != RejectReason::kNone) {
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      ++parse_rejects_;
    }
    obs::counter_add("service.parse_rejects");
    emit("{\"event\":\"rejected\",\"reason\":\"" +
         std::string(reject_reason_name(parsed)) + "\",\"error\":\"" +
         jsonl::escape(error) + "\"}");
    return true;
  }
  // The transport's identity overrides anything the line could claim
  // (parse_request rejects an "identity" member outright).
  request.identity = identity;
  switch (request.op) {
    case RequestOp::kSubmit: {
      if (request.id.empty()) {
        request.id =
            "r" + std::to_string(next_auto_id_.fetch_add(1,
                                                         std::memory_order_relaxed) +
                                 1);
      }
      const std::string id = request.id;
      const RejectReason reason =
          submit(request, [emit, id](const RequestOutcome& o) {
            std::string msg = "{\"id\":\"" + jsonl::escape(id) + "\"";
            msg += ",\"event\":\"done\",\"status\":\"" +
                   std::string(circuits::job_status_name(o.status)) + "\"";
            if (!o.error.empty()) {
              msg += ",\"error\":\"" + jsonl::escape(o.error) + "\"";
            }
            msg += ",\"attempts\":" + std::to_string(o.attempts);
            msg += ",\"queued_s\":" + fixed(o.queued_s, 4);
            msg += ",\"run_s\":" + fixed(o.run_s, 4);
            msg += ",\"testbenches\":" + std::to_string(o.testbenches);
            msg += ",\"degraded\":" +
                   std::string(o.degraded ? "true" : "false");
            msg += ",\"budget_exhausted\":" +
                   std::string(o.budget_exhausted ? "true" : "false");
            msg += "}";
            emit(msg);
          });
      if (reason == RejectReason::kNone) {
        emit("{\"id\":\"" + jsonl::escape(id) +
             "\",\"event\":\"accepted\",\"queue_depth\":" +
             std::to_string(queue_.depth()) + "}");
      } else if (reason == RejectReason::kDuplicate) {
        // Answer with what the key already produced (or "pending" while the
        // original is still running) — never run the job twice.
        circuits::JobStatus prior = circuits::JobStatus::kFailed;
        const bool completed = duplicate_status(request.key, &prior);
        std::string msg = "{\"id\":\"" + jsonl::escape(id) +
                          "\",\"event\":\"duplicate\",\"key\":\"" +
                          jsonl::escape(request.key) + "\",\"status\":\"";
        msg += completed ? circuits::job_status_name(prior) : "pending";
        msg += "\"}";
        emit(msg);
      } else {
        emit("{\"id\":\"" + jsonl::escape(id) +
             "\",\"event\":\"rejected\",\"reason\":\"" +
             std::string(reject_reason_name(reason)) + "\"}");
      }
      break;
    }
    case RequestOp::kStats:
      emit("{\"event\":\"stats\",\"stats\":" + stats().to_json() + "}");
      break;
    case RequestOp::kMetrics:
      emit("{\"event\":\"metrics\",\"metrics\":" + metrics_json() + "}");
      break;
    case RequestOp::kSnapshot: {
      std::string snap_error;
      const bool ok = save_snapshot(&snap_error);
      std::string msg = "{\"event\":\"snapshot\",\"ok\":";
      msg += ok ? "true" : "false";
      if (!ok) msg += ",\"error\":\"" + jsonl::escape(snap_error) + "\"";
      msg += "}";
      emit(msg);
      break;
    }
    case RequestOp::kReload: {
      reload(request.reload_values);
      const QueueOptions bounds = queue_.options();
      std::string msg = "{\"event\":\"reloaded\",\"queue_depth\":" +
                        std::to_string(bounds.max_depth);
      msg += ",\"client_queue\":" + std::to_string(bounds.max_per_client);
      msg += ",\"workers\":" + std::to_string(desired_workers_.load());
      msg += ",\"snapshot_every\":" + std::to_string(snapshot_every_.load());
      msg += ",\"retries\":" + std::to_string(max_retries_.load());
      msg += ",\"metrics_every\":" + std::to_string(metrics_every_.load());
      msg += ",\"rate\":" + fixed(rate_per_s_.load(), 3);
      msg += ",\"burst\":" + fixed(rate_burst_.load(), 3);
      msg += "}";
      emit(msg);
      break;
    }
    case RequestOp::kDrain:
      drain(/*cancel_inflight=*/false);
      emit("{\"event\":\"drained\",\"cancelled\":false}");
      return false;
    case RequestOp::kShutdown:
      drain(/*cancel_inflight=*/true);
      emit("{\"event\":\"drained\",\"cancelled\":true}");
      return false;
    case RequestOp::kPing:
      emit("{\"event\":\"pong\"}");
      break;
  }
  return true;
}

void LayoutService::serve(std::istream& in, std::ostream& out,
                          const std::function<bool()>& on_interrupt) {
  start();
  obs::set_thread_name("service/intake");
  auto out_mu = std::make_shared<std::mutex>();
  const EmitFn emit = [&out, out_mu](const std::string& line) {
    std::lock_guard<std::mutex> lock(*out_mu);
    out << line << "\n" << std::flush;
  };

  std::string line;
  bool stop = false;
  while (!stop) {
    if (!std::getline(in, line)) {
      // A signal without SA_RESTART (SIGHUP reload) interrupts the read;
      // the hook decides whether to absorb it and keep serving. Do NOT
      // gate on eof(): with stdio-synced streams an EINTR'd read is
      // indistinguishable from end-of-file at this layer (both set
      // eofbit), so the hook — which knows whether a signal actually
      // arrived — is the only reliable discriminator. On true EOF it
      // returns false and the loop falls through to the drain.
      if (on_interrupt && on_interrupt()) {
        in.clear();
        continue;
      }
      break;
    }
    // stdin is a trusted direct caller: no transport identity, quotas key
    // on the self-reported client name (see request.hpp).
    stop = !handle_line(std::string(), line, emit);
  }
  // EOF (or SIGTERM interrupting the read): graceful drain — finish queued
  // and in-flight work, flush the snapshot.
  if (!stop) drain(/*cancel_inflight=*/false);
}

}  // namespace olp::service

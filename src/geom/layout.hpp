#pragma once
// Layout database: shapes on layers, pins, and the cell abstract handed to
// the placer.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "geom/geometry.hpp"
#include "tech/technology.hpp"

namespace olp::geom {

/// One rectangle of geometry on a layer, optionally tagged with its net.
struct Shape {
  tech::Layer layer = tech::Layer::kM1;
  Rect rect;
  std::string net;  ///< empty for unconnected geometry (fins, dummies)
};

/// An externally connectable terminal of a cell.
struct Pin {
  std::string name;  ///< port name, e.g. "d1", "s", "gate_a"
  tech::Layer layer = tech::Layer::kM1;
  Rect rect;
};

/// A flat layout: geometry plus pins. Primitive generators produce one of
/// these per configuration; the placer works on its abstract.
class Layout {
 public:
  explicit Layout(std::string name = "") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  void add_shape(tech::Layer layer, Rect rect, std::string net = "") {
    shapes_.push_back(Shape{layer, rect, std::move(net)});
  }
  void add_pin(std::string pin_name, tech::Layer layer, Rect rect) {
    pins_.push_back(Pin{std::move(pin_name), layer, rect});
  }

  const std::vector<Shape>& shapes() const { return shapes_; }
  const std::vector<Pin>& pins() const { return pins_; }

  /// Finds a pin by name; throws when absent.
  const Pin& pin(const std::string& pin_name) const;
  bool has_pin(const std::string& pin_name) const;

  /// Bounding box of all shapes (pins included); throws when empty.
  Rect bounding_box() const;
  /// Bounding-box aspect ratio (width / height).
  double aspect_ratio() const { return bounding_box().aspect_ratio(); }

  /// Merges another layout translated by (dx, dy); pins are prefixed with
  /// `pin_prefix` when non-empty (used when assembling blocks).
  void merge(const Layout& other, Coord dx, Coord dy,
             const std::string& pin_prefix = "");

 private:
  std::string name_;
  std::vector<Shape> shapes_;
  std::vector<Pin> pins_;
};

/// Placement-time view of a cell: footprint plus pin locations.
struct CellAbstract {
  std::string name;
  Rect bbox;
  std::vector<Pin> pins;
};

/// Builds the abstract of a layout (bbox normalized to origin).
CellAbstract make_abstract(const Layout& layout);

}  // namespace olp::geom

// Reproduces Table VIII: runtime of the full methodology per circuit
// (primitive cell generation + layout optimization, placement, global
// routing, and primitive port optimization).
//
// The paper reports 80 / 85 / 135 s with 10-second external SPICE jobs run
// in parallel. Our simulator is in-process and far faster, so the absolute
// numbers are smaller; the comparable part is the *relative* cost per
// circuit (the VCO costs the most, the OTA the least) and the simulation
// counts, which mirror the paper's Table V structure.

#include <iostream>

#include "circuits/experiments.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

int main() {
  using namespace olp;
  set_log_level(log_level_from_env("OLP_LOG_LEVEL", LogLevel::kError));
  const tech::Technology t = tech::make_default_finfet_tech();
  circuits::FlowOptions options;

  const circuits::CircuitExperiment ota =
      circuits::run_ota(t, options, /*with_manual=*/false);
  const circuits::CircuitExperiment sa =
      circuits::run_strongarm(t, options, /*with_manual=*/false);
  const circuits::CircuitExperiment vco = circuits::run_vco(t, options);

  TextTable table(
      "Table VIII: Runtime of the flow for the evaluation circuits\n"
      "(paper: 80 s OTA, 85 s StrongARM, 135 s RO-VCO with 10 s parallel\n"
      " SPICE jobs; the in-process simulator shifts the absolute scale)");
  table.set_header({"circuit", "flow runtime (s)", "testbench simulations"});
  table.add_row({"High-frequency 5T OTA",
                 fixed(ota.optimized_report.runtime_s, 3),
                 std::to_string(ota.optimized_report.testbenches)});
  table.add_row({"StrongARM comparator",
                 fixed(sa.optimized_report.runtime_s, 3),
                 std::to_string(sa.optimized_report.testbenches)});
  table.add_row({"RO-VCO", fixed(vco.optimized_report.runtime_s, 3),
                 std::to_string(vco.optimized_report.testbenches)});
  std::cout << table;

  std::cout << "\nIncluded steps: primitive generation + Algorithm 1 "
               "(selection, tuning), placement, global routing, Algorithm 2 "
               "(port optimization).\n";
  return 0;
}

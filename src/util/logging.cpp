#include "util/logging.hpp"

#include <atomic>
#include <iostream>

namespace olp {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {
void log_message(LogLevel level, const std::string& msg) {
  std::cerr << "[olp " << level_name(level) << "] " << msg << '\n';
}
}  // namespace detail

}  // namespace olp

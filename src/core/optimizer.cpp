#include "core/optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/budget.hpp"
#include "util/curvature.hpp"
#include "util/diag.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/obs.hpp"
#include "util/task_pool.hpp"

namespace olp::core {

std::vector<int> assign_aspect_bins(const std::vector<double>& aspect_ratios,
                                    int bins) {
  OLP_CHECK(bins >= 1, "need at least one bin");
  OLP_CHECK(!aspect_ratios.empty(), "no aspect ratios to bin");
  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  for (double ar : aspect_ratios) {
    OLP_CHECK(ar > 0, "aspect ratio must be positive");
    lo = std::min(lo, std::log(ar));
    hi = std::max(hi, std::log(ar));
  }
  std::vector<int> out(aspect_ratios.size(), 0);
  if (hi - lo < 1e-12) return out;  // all identical -> single bin
  for (std::size_t i = 0; i < aspect_ratios.size(); ++i) {
    const double frac = (std::log(aspect_ratios[i]) - lo) / (hi - lo);
    out[i] = std::min(bins - 1, static_cast<int>(frac * bins));
  }
  return out;
}

MetricValues PrimitiveOptimizer::schematic_reference(
    const pcell::PrimitiveNetlist& netlist, int fins_per_device) const {
  // Any configuration works in ideal mode (parasitics/LDE ignored); use a
  // canonical mid-size one.
  const std::vector<pcell::LayoutConfig> configs =
      pcell::PrimitiveGenerator::enumerate_configs(
          fins_per_device, {pcell::PlacementPattern::kABBA});
  OLP_CHECK(!configs.empty(), "no layout configuration for the device size");
  const pcell::PrimitiveLayout layout =
      generator_.generate(netlist, configs[configs.size() / 2]);
  EvalCondition cond;
  cond.ideal = true;
  return evaluator_.evaluate(layout, cond);
}

double PrimitiveOptimizer::offset_spec(
    const pcell::PrimitiveLayout& layout) const {
  return 0.1 * evaluator_.random_offset_sigma(layout);
}

CostBreakdown PrimitiveOptimizer::cost_of(
    const pcell::PrimitiveLayout& layout, const extract::TuningMap& tuning,
    const MetricValues& reference, MetricValues* values_out) const {
  EvalCondition cond;
  cond.ideal = false;
  cond.tuning = tuning;
  EvalOutcome outcome;
  const MetricValues values = evaluator_.evaluate(layout, cond, &outcome);
  if (values_out != nullptr) *values_out = values;
  const MetricLibraryEntry lib = metric_library(layout.netlist.type);
  CostBreakdown cb =
      compute_cost(lib.metrics, reference, values, offset_spec(layout));
  // Quarantine clamp: an evaluation that sanitized a non-finite metric (or a
  // cost that is itself non-finite, e.g. a zero schematic reference) gets a
  // large-but-finite penalty so it loses cleanly instead of poisoning sorts.
  // The per-call outcome (not a stats() delta) attributes the quarantine to
  // this evaluation even when other evaluations run concurrently.
  if (outcome.quarantined > 0 || !std::isfinite(cb.total)) {
    cb.total = kQuarantineCost;
  }
  return cb;
}

std::vector<LayoutCandidate> PrimitiveOptimizer::evaluate_all(
    const pcell::PrimitiveNetlist& netlist, int fins_per_device,
    const OptimizerOptions& options) const {
  std::vector<pcell::LayoutConfig> configs = options.configs;
  if (configs.empty()) {
    const bool matched = netlist.devices.size() > 1 &&
                         netlist.devices.front().match_group >= 0;
    configs = pcell::PrimitiveGenerator::enumerate_configs(
        fins_per_device,
        matched ? std::vector<pcell::PlacementPattern>{
                      pcell::PlacementPattern::kABBA,
                      pcell::PlacementPattern::kABAB,
                      pcell::PlacementPattern::kAABB}
                : std::vector<pcell::PlacementPattern>{
                      pcell::PlacementPattern::kABBA});
  }
  OLP_CHECK(!configs.empty(), "no layout configurations to evaluate");
  obs::Span span("optimizer.evaluate_all", [&] { return netlist.name; });
  obs::counter_add("optimizer.candidates",
                   static_cast<long>(configs.size()));

  // Budget-bounded enumeration: exhaustion stops further claims, keeping
  // every candidate evaluated so far. When the budget is gone before even the
  // schematic reference, the reference evaluation is skipped too.
  bool truncated = budget_ != nullptr && budget_->check();
  MetricValues reference;
  if (!truncated) reference = schematic_reference(netlist, fins_per_device);

  // Ordered reduction: each task fills its index-addressed slot; the merge
  // below walks the slots in submission order and keeps the contiguous
  // evaluated prefix, so a budget trip yields the same truncation point the
  // serial loop would have produced.
  std::vector<LayoutCandidate> slots(configs.size());
  std::vector<char> have(configs.size(), 0);
  if (!truncated) {
    run_indexed(pool_, configs.size(), [&](std::size_t i) {
      if (budget_ != nullptr && budget_->check()) return false;
      LayoutCandidate cand;
      cand.layout = generator_.generate(netlist, configs[i]);
      cand.cost = cost_of(cand.layout, {}, reference, &cand.values);
      cand.quarantined = cand.cost.total >= kQuarantineCost;
      slots[i] = std::move(cand);
      have[i] = 1;
      return true;
    });
  }
  std::vector<LayoutCandidate> candidates;
  std::vector<double> aspects;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    if (!have[i]) {
      truncated = true;
      break;
    }
    if (slots[i].quarantined) obs::counter_add("optimizer.quarantined");
    aspects.push_back(slots[i].layout.aspect_ratio());
    candidates.push_back(std::move(slots[i]));
  }
  if (truncated) {
    obs::counter_add("budget.truncations");
    if (diag_) {
      diag_->report(DiagSeverity::kWarning, "optimizer", netlist.name,
                    budget_->description() + "; evaluated " +
                        std::to_string(candidates.size()) + " of " +
                        std::to_string(configs.size()) + " configurations");
    }
  }
  if (candidates.empty()) {
    // Exhausted before the first evaluation: salvage the first configuration
    // unevaluated (generation is pure geometry, no simulation). It carries
    // the quarantine cost so it loses against any evaluated candidate.
    LayoutCandidate cand;
    cand.layout = generator_.generate(netlist, configs[0]);
    cand.cost.total = kQuarantineCost;
    cand.quarantined = true;
    cand.bin = 0;
    candidates.push_back(std::move(cand));
    return candidates;
  }
  const std::vector<int> bins = assign_aspect_bins(aspects, options.bins);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    candidates[i].bin = bins[i];
  }
  return candidates;
}

void PrimitiveOptimizer::tune(LayoutCandidate& candidate,
                              int max_wires) const {
  const MetricLibraryEntry lib = metric_library(candidate.layout.netlist.type);
  if (lib.tuning_terminals.empty()) return;
  obs::Span span("optimizer.tune",
                 [&] { return candidate.layout.config.to_string(); });
  const MetricValues reference = schematic_reference(
      candidate.layout.netlist, candidate.layout.config.fins_per_device());

  auto cost_at = [&](const extract::TuningMap& tuning) {
    MetricValues values;
    const CostBreakdown cb =
        cost_of(candidate.layout, tuning, reference, &values);
    return std::pair<double, MetricValues>(cb.total, values);
  };

  // Budget-bounded tuning: a trip mid-sweep reverts to the entry tuning so
  // (tuning, values, cost) stay mutually consistent without spending further
  // testbenches on the final refresh. The candidate survives untuned. Under
  // a pool the trip shows up as an unfilled slot in the ordered reduction —
  // same outcome, same diagnostic.
  const extract::TuningMap entry_tuning = candidate.tuning;
  auto revert_to_entry = [&]() {
    candidate.tuning = entry_tuning;
    obs::counter_add("budget.truncations");
    if (diag_) {
      diag_->report(DiagSeverity::kWarning, "optimizer",
                    candidate.layout.netlist.name,
                    budget_->description() +
                        "; tuning sweep abandoned, keeping entry tuning");
    }
  };

  if (!lib.terminals_correlated || lib.tuning_terminals.size() == 1) {
    // Optimize terminals separately (Algorithm 1 line 10). The sweep points
    // of one terminal are independent, so they evaluate in parallel;
    // terminals stay sequential because each sweep starts from the previous
    // terminal's chosen tuning.
    for (const std::string& terminal : lib.tuning_terminals) {
      const std::size_t n = static_cast<std::size_t>(max_wires);
      std::vector<double> costs(n, 0.0);
      std::vector<char> have(n, 0);
      run_indexed(pool_, n, [&](std::size_t k) {
        if (budget_ != nullptr && budget_->check()) return false;
        extract::TuningMap tuning = candidate.tuning;
        tuning[terminal] = static_cast<int>(k) + 1;
        costs[k] = cost_at(tuning).first;
        have[k] = 1;
        return true;
      });
      std::vector<double> curve;
      for (std::size_t k = 0; k < n; ++k) {
        if (!have[k]) {
          revert_to_entry();
          return;
        }
        curve.push_back(costs[k]);
      }
      const std::size_t stop = tuning_stop_index(curve);
      candidate.tuning[terminal] = static_cast<int>(stop) + 1;
    }
  } else {
    // Correlated terminals: enumerate combinations (Algorithm 1 line 12).
    // Practically at most two terminals are correlated (paper Sec. III-A3).
    // The pairs are flattened w0-major so the strict-< argmin scan below
    // visits them in exactly the serial nested-loop order.
    OLP_CHECK(lib.tuning_terminals.size() == 2,
              "joint tuning supports exactly two correlated terminals");
    const std::size_t n =
        static_cast<std::size_t>(max_wires) * static_cast<std::size_t>(max_wires);
    std::vector<double> costs(n, 0.0);
    std::vector<char> have(n, 0);
    run_indexed(pool_, n, [&](std::size_t k) {
      if (budget_ != nullptr && budget_->check()) return false;
      extract::TuningMap tuning = candidate.tuning;
      tuning[lib.tuning_terminals[0]] =
          static_cast<int>(k) / max_wires + 1;
      tuning[lib.tuning_terminals[1]] =
          static_cast<int>(k) % max_wires + 1;
      costs[k] = cost_at(tuning).first;
      have[k] = 1;
      return true;
    });
    double best = std::numeric_limits<double>::infinity();
    extract::TuningMap best_tuning = candidate.tuning;
    for (std::size_t k = 0; k < n; ++k) {
      if (!have[k]) {
        revert_to_entry();
        return;
      }
      if (costs[k] < best) {
        best = costs[k];
        best_tuning = candidate.tuning;
        best_tuning[lib.tuning_terminals[0]] =
            static_cast<int>(k) / max_wires + 1;
        best_tuning[lib.tuning_terminals[1]] =
            static_cast<int>(k) % max_wires + 1;
      }
    }
    candidate.tuning = best_tuning;
  }

  // Refresh the candidate's measured values and cost at the final tuning.
  // Uses cost_of directly so the quarantine clamp survives into the stored
  // cost (recomputing from the raw values would lose it).
  MetricValues final_values;
  const CostBreakdown final_cost =
      cost_of(candidate.layout, candidate.tuning, reference, &final_values);
  candidate.values = final_values;
  candidate.cost = final_cost;
  candidate.quarantined = final_cost.total >= kQuarantineCost;
}

std::vector<LayoutCandidate> PrimitiveOptimizer::optimize(
    const pcell::PrimitiveNetlist& netlist, int fins_per_device,
    const OptimizerOptions& options) const {
  std::vector<LayoutCandidate> all =
      evaluate_all(netlist, fins_per_device, options);

  // Select the cheapest healthy candidate per bin (Algorithm 1 lines 6-7);
  // quarantined candidates never win a bin.
  std::vector<int> best_in_bin(static_cast<std::size_t>(options.bins), -1);
  std::vector<int> bin_total(static_cast<std::size_t>(options.bins), 0);
  std::vector<int> bin_quarantined(static_cast<std::size_t>(options.bins), 0);
  for (std::size_t i = 0; i < all.size(); ++i) {
    const std::size_t b = static_cast<std::size_t>(all[i].bin);
    ++bin_total[b];
    if (all[i].quarantined) {
      ++bin_quarantined[b];
      continue;
    }
    int& best = best_in_bin[b];
    if (best < 0 ||
        all[i].cost.total < all[static_cast<std::size_t>(best)].cost.total) {
      best = static_cast<int>(i);
    }
  }
  for (std::size_t b = 0; b < best_in_bin.size(); ++b) {
    if (bin_total[b] > 0 && bin_quarantined[b] == bin_total[b]) {
      obs::counter_add("optimizer.bins_dropped");
      if (diag_) {
        diag_->report(DiagSeverity::kWarning, "optimizer", netlist.name,
                      "all " + std::to_string(bin_total[b]) +
                          " candidates in aspect bin " + std::to_string(b) +
                          " quarantined; bin dropped");
      }
    }
  }
  std::vector<LayoutCandidate> selected;
  for (int idx : best_in_bin) {
    if (idx >= 0) selected.push_back(all[static_cast<std::size_t>(idx)]);
  }

  obs::counter_add("optimizer.selected", static_cast<long>(selected.size()));
  if (selected.empty()) {
    obs::counter_add("optimizer.minarea_fallbacks");
    // Graceful degradation: every candidate was quarantined. Hand back the
    // minimum-area configuration untuned so the flow can still place and
    // route something structurally valid.
    std::size_t best_area = 0;
    for (std::size_t i = 1; i < all.size(); ++i) {
      if (all[i].layout.area() < all[best_area].layout.area()) best_area = i;
    }
    if (diag_) {
      diag_->report(DiagSeverity::kWarning, "optimizer", netlist.name,
                    "all candidates failed evaluation; falling back to the "
                    "min-area configuration " +
                        all[best_area].layout.config.to_string());
    }
    OLP_WARN << "optimizer: all candidates for " << netlist.name
             << " quarantined; min-area fallback";
    return {all[best_area]};
  }

  // Tune each selected candidate (Algorithm 1 lines 8-15). On budget
  // exhaustion the remaining candidates keep their untuned selection result —
  // still evaluated, still valid options for placement.
  for (std::size_t k = 0; k < selected.size(); ++k) {
    if (budget_ != nullptr && budget_->check()) {
      obs::counter_add("budget.truncations");
      if (diag_) {
        diag_->report(DiagSeverity::kWarning, "optimizer", netlist.name,
                      budget_->description() + "; tuned " + std::to_string(k) +
                          " of " + std::to_string(selected.size()) +
                          " selected candidates");
      }
      break;
    }
    tune(selected[k], options.max_tuning_wires);
  }
  std::sort(selected.begin(), selected.end(),
            [](const LayoutCandidate& a, const LayoutCandidate& b) {
              return a.cost.total < b.cost.total;
            });
  return selected;
}

}  // namespace olp::core

#include "util/units.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace olp::units {

std::string eng(double value, const std::string& unit, int digits) {
  if (value == 0.0 || !std::isfinite(value)) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*g%s", digits, value, unit.c_str());
    return buf;
  }
  struct Prefix {
    double scale;
    const char* symbol;
  };
  static constexpr std::array<Prefix, 11> kPrefixes = {{
      {1e12, "T"},
      {1e9, "G"},
      {1e6, "M"},
      {1e3, "k"},
      {1.0, ""},
      {1e-3, "m"},
      {1e-6, "u"},
      {1e-9, "n"},
      {1e-12, "p"},
      {1e-15, "f"},
      {1e-18, "a"},
  }};
  const double mag = std::fabs(value);
  const Prefix* chosen = &kPrefixes.back();
  for (const Prefix& prefix : kPrefixes) {
    if (mag >= prefix.scale) {
      chosen = &prefix;
      break;
    }
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g%s%s", digits, value / chosen->scale,
                chosen->symbol, unit.c_str());
  return buf;
}

}  // namespace olp::units

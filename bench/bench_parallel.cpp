// Parallel evaluation + eval-cache benchmark: Algorithm 1's hot loops
// (evaluate_all over the configuration sweep, then terminal tuning on the
// bin-best candidate) at 1/2/4/8 worker threads with the memoizing eval
// cache off and on, for the OTA's differential pair and the StrongARM
// comparator's latch pair.
//
// Cache-off rows measure the cold regime (every condition simulated).
// Cache-on rows measure the steady-state regime the flow actually lives in:
// selection, tuning and port sweeps repeatedly re-evaluate identical
// conditions (most expensively the schematic references), so the cache is
// warmed by one untimed pass and the timed pass measures re-evaluation.
// Speedups are reported against the 1-thread cache-off baseline; the
// harness exits nonzero unless the 4-thread cached configuration reaches
// 2x on evaluate_all with a non-zero hit rate, and every configuration's
// costs are verified bit-identical to the baseline's.

#include <chrono>
#include <cstring>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "circuits/common.hpp"
#include "core/eval_cache.hpp"
#include "core/optimizer.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"
#include "util/trace_export.hpp"
#include "util/task_pool.hpp"

namespace {

using namespace olp;

struct Workload {
  std::string name;
  pcell::PrimitiveNetlist netlist;
  int fins = 0;
  core::BiasContext bias;
  core::OptimizerOptions opts;
};

Workload ota_diff_pair(const tech::Technology& t) {
  Workload w;
  w.name = "OTA diff pair";
  w.netlist = pcell::make_diff_pair();
  w.fins = 960;  // the paper's W/L = 46 um / 14 nm input pair
  w.bias.vdd = t.vdd;
  w.bias.bias_current = 706e-6;
  w.bias.port_voltage = {
      {"ga", 0.5}, {"gb", 0.5}, {"da", 0.5}, {"db", 0.5}, {"s", 0.2}};
  w.bias.port_load_cap = {{"da", 25e-15}, {"db", 25e-15}};
  const int shapes[][3] = {{8, 20, 6},  {8, 24, 5},  {8, 30, 4}, {8, 40, 3},
                           {12, 20, 4}, {12, 16, 5}, {16, 12, 5}, {16, 20, 3},
                           {24, 20, 2}, {24, 10, 4}};
  for (const auto& s : shapes) {
    pcell::LayoutConfig c;
    c.nfin = s[0];
    c.nf = s[1];
    c.m = s[2];
    w.opts.configs.push_back(c);
  }
  return w;
}

Workload strongarm_latch_pair(const tech::Technology& t) {
  Workload w;
  w.name = "StrongARM latch pair";
  w.netlist = pcell::make_latch_pair();
  w.fins = 64;
  w.bias.vdd = t.vdd;
  w.bias.bias_current = 200e-6;
  w.bias.port_voltage = {{"da", 0.5}, {"db", 0.5}, {"sa", 0.1}, {"sb", 0.1}};
  w.bias.port_load_cap = {{"da", 5e-15}, {"db", 5e-15}};
  const int shapes[][3] = {{8, 4, 2}, {8, 8, 1}, {4, 8, 2}, {16, 4, 1},
                           {4, 4, 4}, {2, 8, 4}, {16, 2, 2}, {8, 2, 4}};
  for (const auto& s : shapes) {
    pcell::LayoutConfig c;
    c.nfin = s[0];
    c.nf = s[1];
    c.m = s[2];
    w.opts.configs.push_back(c);
  }
  return w;
}

/// Min-of-repeats wall clock of `fn`, in milliseconds.
template <typename F>
double measure_ms(F&& fn, int repeats) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (ms < best) best = ms;
  }
  return best;
}

struct Row {
  int threads = 1;
  bool cached = false;
  double eval_ms = 0.0;
  double tune_ms = 0.0;
  double eval_speedup = 1.0;
  double hit_rate = 0.0;
  bool identical = true;  ///< costs bit-identical to the baseline run
};

/// The bin-best (cheapest non-quarantined) candidate of a sweep.
std::size_t best_index(const std::vector<core::LayoutCandidate>& cands) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < cands.size(); ++i) {
    if (cands[i].cost.total < cands[best].cost.total) best = i;
  }
  return best;
}

Row run_config(const tech::Technology& t, const Workload& w, int threads,
               bool cached, const std::vector<core::LayoutCandidate>* baseline,
               std::vector<core::LayoutCandidate>* baseline_out) {
  const pcell::PrimitiveGenerator generator(t);
  core::PrimitiveEvaluator evaluator(
      t, circuits::default_nmos(), circuits::default_pmos(), w.bias);
  core::EvalCache cache;
  if (cached) evaluator.set_cache(&cache);
  std::unique_ptr<TaskPool> pool;
  if (threads > 1) pool = std::make_unique<TaskPool>(threads);
  const core::PrimitiveOptimizer optimizer(generator, evaluator, nullptr,
                                           nullptr, pool.get());

  std::vector<core::LayoutCandidate> cands;
  auto sweep = [&] { cands = optimizer.evaluate_all(w.netlist, w.fins, w.opts); };
  if (cached) sweep();  // warm pass: populate, untimed (steady-state regime)

  Row row;
  row.threads = threads;
  row.cached = cached;
  row.eval_ms = measure_ms(sweep, 3);

  const core::LayoutCandidate& best = cands[best_index(cands)];
  row.tune_ms = measure_ms(
      [&] {
        core::LayoutCandidate tuned = best;  // tune() mutates in place
        optimizer.tune(tuned, 8);
      },
      3);

  if (cached) {
    const core::EvalCacheStats s = cache.stats();
    row.hit_rate = s.hits + s.misses > 0
                       ? static_cast<double>(s.hits) /
                             static_cast<double>(s.hits + s.misses)
                       : 0.0;
  }
  if (baseline != nullptr) {
    row.identical = cands.size() == baseline->size();
    for (std::size_t i = 0; row.identical && i < cands.size(); ++i) {
      row.identical = std::memcmp(&cands[i].cost.total,
                                  &(*baseline)[i].cost.total,
                                  sizeof(double)) == 0 &&
                      cands[i].bin == (*baseline)[i].bin;
    }
  }
  if (baseline_out != nullptr) *baseline_out = cands;
  return row;
}

}  // namespace

int main() {
  using namespace olp;
  set_log_level(log_level_from_env("OLP_LOG_LEVEL", LogLevel::kError));
  const tech::Technology t = tech::make_default_finfet_tech();

  const int kThreads[] = {1, 2, 4, 8};
  bool pass = true;
  double gate_speedup = 0.0;  // evaluate_all speedup at 4 threads, cache on
  double gate_hit_rate = 0.0;
  std::string json = "{\n  \"workloads\": [\n";

  bool first_workload = true;
  for (const Workload& w : {ota_diff_pair(t), strongarm_latch_pair(t)}) {
    std::vector<core::LayoutCandidate> baseline;
    std::vector<Row> rows;
    for (const int threads : kThreads) {
      for (const bool cached : {false, true}) {
        const bool is_baseline = threads == 1 && !cached;
        rows.push_back(run_config(t, w, threads, cached,
                                  is_baseline ? nullptr : &baseline,
                                  is_baseline ? &baseline : nullptr));
      }
    }
    const double base_eval = rows.front().eval_ms;
    for (Row& r : rows) r.eval_speedup = base_eval / r.eval_ms;

    TextTable table(w.name + ": evaluate_all + tune, " +
                    std::to_string(w.opts.configs.size()) +
                    " configs (speedup vs 1 thread, cache off)");
    table.set_header({"threads", "cache", "eval [ms]", "tune [ms]", "speedup",
                      "hit rate", "identical"});
    for (const Row& r : rows) {
      table.add_row({std::to_string(r.threads), r.cached ? "on" : "off",
                     fixed(r.eval_ms, 2), fixed(r.tune_ms, 2),
                     fixed(r.eval_speedup, 2) + "x",
                     r.cached ? fixed(100.0 * r.hit_rate, 1) + " %" : "-",
                     r.identical ? "yes" : "NO"});
      pass = pass && r.identical;
      if (r.threads == 4 && r.cached) {
        // The acceptance gate is evaluated on the OTA workload (first);
        // track the worst over workloads so both must clear it.
        if (first_workload || r.eval_speedup < gate_speedup) {
          gate_speedup = r.eval_speedup;
        }
        if (first_workload || r.hit_rate < gate_hit_rate) {
          gate_hit_rate = r.hit_rate;
        }
      }
    }
    std::cout << table << "\n";

    if (!first_workload) json += ",\n";
    first_workload = false;
    json += "    {\"name\": \"" + w.name + "\", \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      json += std::string("      {\"threads\": ") + std::to_string(r.threads) +
              ", \"cache\": " + (r.cached ? "true" : "false") +
              ", \"eval_ms\": " + fixed(r.eval_ms, 3) +
              ", \"tune_ms\": " + fixed(r.tune_ms, 3) +
              ", \"eval_speedup\": " + fixed(r.eval_speedup, 3) +
              ", \"hit_rate\": " + fixed(r.hit_rate, 4) +
              ", \"identical\": " + (r.identical ? "true" : "false") + "}" +
              (i + 1 < rows.size() ? "," : "") + "\n";
    }
    json += "    ]}";
  }

  const bool gate = gate_speedup >= 2.0 && gate_hit_rate > 0.0;
  pass = pass && gate;
  std::cout << "Gate (4 threads, cache on): evaluate_all speedup "
            << fixed(gate_speedup, 2) << "x (need >= 2x), hit rate "
            << fixed(100.0 * gate_hit_rate, 1) << " % (need > 0) -> "
            << (pass ? "PASS" : "FAIL") << "\n";

  json += "\n  ],\n";
  json += "  \"speedup_eval_4t_cached\": " + fixed(gate_speedup, 3) + ",\n";
  json += "  \"hit_rate_4t_cached\": " + fixed(gate_hit_rate, 4) + ",\n";
  json += std::string("  \"pass\": ") + (pass ? "true" : "false") + "\n";
  json += "}\n";
  std::string err;
  if (!obs::json_well_formed(json, &err)) {
    std::cerr << "internal error: BENCH_parallel.json malformed: " << err
              << "\n";
    return 1;
  }
  obs::write_text_file("BENCH_parallel.json", json);
  std::cout << "Wrote BENCH_parallel.json\n";
  return pass ? 0 : 1;
}

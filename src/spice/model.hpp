#pragma once
// Compact transistor model: a smooth source-referenced EKV-style FinFET model.
//
// The paper's methodology explicitly does not depend on any particular
// compact model ("the equations are never directly used in our methodology:
// we analyze performance through cheap SPICE simulations"). What it does
// require of the simulator is that primitive metrics respond continuously and
// realistically to bias, parasitic RC, and LDE-induced Vth/mobility shifts.
// This model provides exactly that:
//
//   u_f  = (Vgs - Vth) / (n Vt)
//   u_r  = (Vgs - Vth - n Vds) / (n Vt)
//   F(u) = ln^2(1 + exp(u / 2))              (smooth weak->strong inversion)
//   Id   = Ispec (F(u_f) - F(u_r)) (1 + lambda_eff Vds)
//   Ispec = 2 n kp Vt^2 (W / L)
//
// It is smooth across cutoff/triode/saturation, symmetric under source/drain
// swap, and exposes gm / gds analytically for the Newton and AC stamps.
// LDE effects enter as per-instance delta_vth and mobility_mult (Sec. III-A
// of the paper: LOD and WPE shift threshold voltage and mobility).

#include <cmath>
#include <string>

namespace olp::spice {

enum class MosType { kNmos, kPmos };

/// Technology-level model card shared by all devices of one flavor.
struct MosModel {
  std::string name = "nfet";
  MosType type = MosType::kNmos;

  double vth0 = 0.30;    ///< zero-LDE threshold voltage [V]
  double nslope = 1.25;  ///< subthreshold slope factor
  double kp = 400e-6;    ///< mobility * Cox [A/V^2]
  double lambda = 0.08;  ///< channel-length modulation [1/V] at l = lref
  double lref = 14e-9;   ///< reference channel length for lambda scaling [m]
  double vt_thermal = 0.02585;  ///< kT/q at 300 K [V]

  // Linearized capacitance parameters (per total gate area / width).
  double cox = 0.030;   ///< gate oxide capacitance [F/m^2]
  double cov = 0.25e-9; ///< gate-S/D overlap capacitance [F/m]
  double cj = 0.9e-3;   ///< junction area capacitance [F/m^2]
  double cjsw = 0.08e-9; ///< junction sidewall capacitance [F/m]

  /// Pelgrom threshold-mismatch coefficient [V*m]; sigma(dVth) = avt/sqrt(WL).
  double avt = 1.2e-9;
};

/// Evaluated large-signal state of one MOSFET at a bias point.
struct MosEval {
  double id = 0.0;   ///< drain current, D -> S for NMOS convention [A]
  double gm = 0.0;   ///< d Id / d Vgs [S]
  double gds = 0.0;  ///< d Id / d Vds [S]
};

/// Smooth EKV interpolation function F(u) = ln^2(1 + exp(u/2)).
inline double ekv_f(double u) {
  // Guard against overflow for strongly forward-biased inputs.
  const double half = 0.5 * u;
  const double l = half > 30.0 ? half : std::log1p(std::exp(half));
  return l * l;
}

/// dF/du = ln(1 + exp(u/2)) * sigmoid(u/2).
inline double ekv_df(double u) {
  const double half = 0.5 * u;
  const double l = half > 30.0 ? half : std::log1p(std::exp(half));
  const double sig = half > 30.0 ? 1.0 : std::exp(half) / (1.0 + std::exp(half));
  return l * sig;
}

/// Evaluates the drain current and small-signal parameters.
///
/// `vgs`/`vds` are NMOS-convention voltages (for PMOS the caller passes the
/// negated values and negates `id` back). `w`/`l` are effective channel
/// dimensions [m]. `delta_vth` (additive, NMOS convention) and
/// `mobility_mult` carry the layout-dependent effects.
MosEval mos_eval(const MosModel& model, double vgs, double vds, double w,
                 double l, double delta_vth, double mobility_mult);

}  // namespace olp::spice

#include "circuits/common.hpp"

#include "util/error.hpp"

namespace olp::circuits {

spice::MosModel default_nmos() {
  spice::MosModel m;
  m.name = "nfet12";
  m.type = spice::MosType::kNmos;
  m.vth0 = 0.28;
  m.nslope = 1.25;
  m.kp = 380e-6;
  m.lambda = 0.30;  // short-channel FinFET at L = lref: low intrinsic gain
  m.lref = 14e-9;
  m.cox = 0.030;
  m.cov = 0.25e-9;
  m.cj = 0.9e-3;
  m.cjsw = 0.08e-9;
  m.avt = 1.2e-9;
  return m;
}

spice::MosModel default_pmos() {
  spice::MosModel m;
  m.name = "pfet12";
  m.type = spice::MosType::kPmos;
  m.vth0 = 0.26;
  m.nslope = 1.3;
  m.kp = 300e-6;  // FinFET PMOS drive is close to NMOS
  m.lambda = 0.32;
  m.lref = 14e-9;
  m.cox = 0.030;
  m.cov = 0.25e-9;
  m.cj = 1.0e-3;
  m.cjsw = 0.09e-9;
  m.avt = 1.4e-9;
  return m;
}

const char* corner_name(Corner corner) {
  switch (corner) {
    case Corner::kTT: return "TT";
    case Corner::kSS: return "SS";
    case Corner::kFF: return "FF";
    case Corner::kSF: return "SF";
    case Corner::kFS: return "FS";
  }
  return "?";
}

namespace {
/// Applies a slow (+1) / fast (-1) skew: +-25 mV of Vth and -+6% mobility.
spice::MosModel skew(spice::MosModel m, int direction) {
  m.vth0 += 25e-3 * direction;
  m.kp *= 1.0 - 0.06 * direction;
  return m;
}

int nmos_skew(Corner c) {
  switch (c) {
    case Corner::kSS: case Corner::kSF: return 1;
    case Corner::kFF: case Corner::kFS: return -1;
    case Corner::kTT: return 0;
  }
  return 0;
}

int pmos_skew(Corner c) {
  switch (c) {
    case Corner::kSS: case Corner::kFS: return 1;
    case Corner::kFF: case Corner::kSF: return -1;
    case Corner::kTT: return 0;
  }
  return 0;
}
}  // namespace

spice::MosModel corner_nmos(Corner corner) {
  return skew(default_nmos(), nmos_skew(corner));
}

spice::MosModel corner_pmos(Corner corner) {
  return skew(default_pmos(), pmos_skew(corner));
}

BuildContext make_build_context(Corner corner) {
  BuildContext bc;
  bc.nmos_model = bc.ckt.add_model(corner_nmos(corner));
  bc.pmos_model = bc.ckt.add_model(corner_pmos(corner));
  return bc;
}

std::map<std::string, int> net_pin_counts(
    const std::vector<InstanceSpec>& instances) {
  std::map<std::string, int> counts;
  for (const InstanceSpec& inst : instances) {
    for (const auto& [port, net] : inst.port_nets) {
      (void)port;
      counts[net] += 1;
    }
  }
  return counts;
}

void instantiate(BuildContext& bc, const std::vector<InstanceSpec>& instances,
                 const Realization& realization, const tech::Technology& tech,
                 const std::string& nmos_bulk_net,
                 const std::string& pmos_bulk_net,
                 const std::set<std::string>& lump_circuit_nets) {
  const std::map<std::string, int> pins = net_pin_counts(instances);
  const spice::NodeId nmos_bulk =
      nmos_bulk_net == "0" ? spice::kGround : bc.net(nmos_bulk_net);
  const spice::NodeId pmos_bulk = bc.net(pmos_bulk_net);

  for (const InstanceSpec& inst : instances) {
    const auto lit = realization.layouts.find(inst.name);
    OLP_CHECK(lit != realization.layouts.end(),
              "realization missing layout for instance " + inst.name);

    extract::AnnotateOptions opt;
    opt.ideal = realization.ideal;
    opt.nmos_model = bc.nmos_model;
    opt.pmos_model = bc.pmos_model;
    opt.nmos_bulk = nmos_bulk;
    opt.pmos_bulk = pmos_bulk;
    if (auto tit = realization.tunings.find(inst.name);
        tit != realization.tunings.end()) {
      opt.tuning = tit->second;
    }

    // Decide per port: direct bind to the circuit net, or a dedicated port
    // node connected through its share of the net wire.
    std::map<std::string, extract::WireRc> port_wires;
    for (const auto& [port, net] : inst.port_nets) {
      if (lump_circuit_nets.count(net)) opt.lump_nets.insert(port);
    }
    for (const auto& [port, net] : inst.port_nets) {
      const auto wit = realization.net_wires.find(net);
      if (wit == realization.net_wires.end() || realization.ideal) {
        opt.port_mapping[port] = bc.net(net);
      } else {
        const int n = std::max(1, pins.at(net));
        extract::WireRc share = wit->second;
        share.resistance /= static_cast<double>(n);
        share.capacitance /= static_cast<double>(n);
        port_wires[port] = share;
      }
    }

    const std::map<std::string, spice::NodeId> port_nodes =
        annotate_primitive(bc.ckt, lit->second, tech, inst.name + ".", opt);

    for (const auto& [port, wire] : port_wires) {
      const auto pit = port_nodes.find(port);
      OLP_CHECK(pit != port_nodes.end(),
                "primitive has no port " + port + " on " + inst.name);
      extract::add_wire_pi(bc.ckt, inst.name + ".Wnet." + port, pit->second,
                           bc.net(inst.port_nets.at(port)), wire);
    }
  }
}

Realization schematic_realization(const std::vector<InstanceSpec>& instances,
                                  const tech::Technology& tech) {
  Realization real;
  real.ideal = true;
  const pcell::PrimitiveGenerator gen(tech);
  for (const InstanceSpec& inst : instances) {
    const std::vector<pcell::LayoutConfig> configs =
        pcell::PrimitiveGenerator::enumerate_configs(
            inst.fins, {pcell::PlacementPattern::kABBA});
    OLP_CHECK(!configs.empty(),
              "no layout configuration for instance " + inst.name);
    real.layouts[inst.name] =
        gen.generate(inst.netlist, configs[configs.size() / 2]);
  }
  return real;
}

}  // namespace olp::circuits

// Batch flow service demo: a mixed set of jobs — the 5T OTA, the StrongARM
// comparator and the ring VCO, across flow modes and placer seeds — executed
// concurrently on one shared worker pool with one cross-job evaluation
// cache. Prints the per-job status table and the pooled cache statistics,
// and exports the machine-readable report as JSONL.
//
//   OLP_THREADS=8 ./batch_flows            # 8 workers for the whole batch
//   OLP_BATCH_JSONL=batch.jsonl ./batch_flows

#include <iostream>

#include <olp/olp.hpp>

int main() {
  using namespace olp;
  set_log_level(log_level_from_env("OLP_LOG_LEVEL", LogLevel::kError));
  const tech::Technology t = tech::make_default_finfet_tech();
  obs::Registry::global().enable();

  circuits::Ota5T ota(t);
  circuits::StrongArmComparator comparator(t);
  circuits::RoVco vco(t);
  if (!ota.prepare() || !comparator.prepare() || !vco.prepare()) {
    std::cerr << "schematic preparation failed\n";
    return 1;
  }

  std::vector<circuits::FlowJob> jobs;
  const auto add = [&jobs](std::string name, circuits::FlowMode mode,
                           const std::vector<circuits::InstanceSpec>& insts,
                           const std::vector<std::string>& nets,
                           std::uint64_t seed) {
    circuits::FlowJob job;
    job.name = std::move(name);
    job.mode = mode;
    job.instances = insts;
    job.routed_nets = nets;
    job.options.seed = seed;
    jobs.push_back(std::move(job));
  };
  // Same-circuit jobs with different placer seeds share every primitive
  // evaluation through the batch cache (the seed only steers placement), so
  // the seed sweeps are nearly free after the first job of each circuit.
  add("ota/opt/s1", circuits::FlowMode::kOptimize, ota.instances(),
      ota.routed_nets(), 1);
  add("ota/opt/s2", circuits::FlowMode::kOptimize, ota.instances(),
      ota.routed_nets(), 2);
  add("ota/conv", circuits::FlowMode::kConventional, ota.instances(),
      ota.routed_nets(), 1);
  add("strongarm/opt/s1", circuits::FlowMode::kOptimize,
      comparator.instances(), comparator.routed_nets(), 1);
  add("strongarm/opt/s2", circuits::FlowMode::kOptimize,
      comparator.instances(), comparator.routed_nets(), 2);
  add("vco/opt", circuits::FlowMode::kOptimize, vco.instances(),
      vco.routed_nets(), 1);
  add("vco/conv", circuits::FlowMode::kConventional, vco.instances(),
      vco.routed_nets(), 1);

  circuits::BatchOptions bopt;
  bopt.workers = 0;  // one per core; OLP_THREADS overrides
  const circuits::BatchRunner runner(t, bopt);
  const circuits::BatchReport report = runner.run(jobs);

  std::cout << report.summary_table() << "\n";
  std::cout << "cache: " << report.cache_hits << " hits / "
            << report.cache_misses << " misses across "
            << report.cache_scopes << " scope(s); " << report.cross_job_hits
            << " testbenches saved by cross-job sharing\n";
  if (report.telemetry.enabled) {
    std::cout << "\n" << obs::summary_table(report.telemetry);
  }

  const std::string jsonl_path = env::str("OLP_BATCH_JSONL");
  if (!jsonl_path.empty()) {
    report.write_jsonl(jsonl_path);
    std::cout << "wrote " << jsonl_path << "\n";
  }
  return report.failed() == 0 ? 0 : 1;
}

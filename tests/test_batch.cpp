// Batch flow service tests: the multi-job scheduler must be a pure
// throughput optimization — every job's report byte-identical to running
// that job alone on the serial uncached path (tests/flow_golden.hpp does the
// comparison), with per-job budget/cancel isolation and observable cross-job
// cache sharing.

#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>

#include "circuits/batch.hpp"
#include "circuits/ota5t.hpp"
#include "circuits/strongarm.hpp"
#include "flow_golden.hpp"
#include "util/logging.hpp"

namespace olp::circuits {
namespace {

const tech::Technology& t() {
  static const tech::Technology tech = tech::make_default_finfet_tech();
  return tech;
}

/// Shared fixture: prepare the circuits once and cache each job's solo
/// serial uncached golden (one per distinct job configuration).
class BatchFlow : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    set_log_level(LogLevel::kError);
    // Batch plumbing and goldens are both configured explicitly here; a
    // stray value from the calling shell must not redefine either.
    unsetenv("OLP_THREADS");
    unsetenv("OLP_EVAL_CACHE");
    unsetenv("OLP_DEADLINE_MS");
    unsetenv("OLP_TESTBENCH_BUDGET");
    ota_ = new Ota5T(t());
    ASSERT_TRUE(ota_->prepare());
    comparator_ = new StrongArmComparator(t());
    ASSERT_TRUE(comparator_->prepare());
  }
  static void TearDownTestSuite() {
    delete comparator_;
    delete ota_;
  }

  /// The mixed 6-job workload: two circuits x {optimize seeds, baseline
  /// modes}. Seed-only variations share every primitive evaluation, which
  /// is what makes cross-job hits inevitable.
  static std::vector<FlowJob> mixed_jobs() {
    std::vector<FlowJob> jobs;
    const auto add = [&jobs](const char* name, FlowMode mode,
                             const std::vector<InstanceSpec>& instances,
                             const std::vector<std::string>& nets,
                             std::uint64_t seed) {
      FlowJob job;
      job.name = name;
      job.mode = mode;
      job.instances = instances;
      job.routed_nets = nets;
      job.options.seed = seed;
      jobs.push_back(std::move(job));
    };
    add("ota/opt/s1", FlowMode::kOptimize, ota_->instances(),
        ota_->routed_nets(), 1);
    add("ota/opt/s2", FlowMode::kOptimize, ota_->instances(),
        ota_->routed_nets(), 2);
    add("ota/conv", FlowMode::kConventional, ota_->instances(),
        ota_->routed_nets(), 1);
    add("sa/opt/s1", FlowMode::kOptimize, comparator_->instances(),
        comparator_->routed_nets(), 1);
    add("sa/opt/s2", FlowMode::kOptimize, comparator_->instances(),
        comparator_->routed_nets(), 2);
    add("sa/oracle", FlowMode::kManualOracle, comparator_->instances(),
        comparator_->routed_nets(), 1);
    return jobs;
  }

  /// Solo golden for one job: serial, uncached, fresh engine.
  static Realization solo(const FlowJob& job, FlowReport* report) {
    FlowOptions opts = job.options;
    opts.num_threads = 1;
    opts.eval_cache = false;
    const FlowEngine engine(t(), opts);
    return engine.run(job.mode, job.instances, job.routed_nets, report);
  }

  static Ota5T* ota_;
  static StrongArmComparator* comparator_;
};

Ota5T* BatchFlow::ota_ = nullptr;
StrongArmComparator* BatchFlow::comparator_ = nullptr;

// The tentpole guarantee: an 8-worker batch with cross-job cache sharing
// reproduces every job's solo serial uncached result byte for byte.
TEST_F(BatchFlow, EightWorkerSharedCacheBatchMatchesSoloSerialRuns) {
  const std::vector<FlowJob> jobs = mixed_jobs();
  BatchOptions bopt;
  bopt.workers = 8;
  const BatchRunner runner(t(), bopt);
  const BatchReport batch = runner.run(jobs);

  ASSERT_EQ(batch.jobs.size(), jobs.size());
  EXPECT_EQ(batch.failed(), 0u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    SCOPED_TRACE(jobs[i].name);
    FlowReport want_report;
    const Realization want_real = solo(jobs[i], &want_report);
    expect_same_flow_result(batch.jobs[i].report, want_report,
                            batch.jobs[i].realization, want_real);
  }
}

// Serial batch execution (workers = 1) is the same contract at the other
// extreme: the scheduler adds nothing but a loop.
TEST_F(BatchFlow, SerialBatchMatchesSoloRuns) {
  const std::vector<FlowJob> jobs = mixed_jobs();
  BatchOptions bopt;
  bopt.workers = 1;
  const BatchRunner runner(t(), bopt);
  const BatchReport batch = runner.run(jobs);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    SCOPED_TRACE(jobs[i].name);
    FlowReport want_report;
    const Realization want_real = solo(jobs[i], &want_report);
    expect_same_flow_result(batch.jobs[i].report, want_report,
                            batch.jobs[i].realization, want_real);
  }
}

// Cross-job sharing must actually happen — seed-only job variations hit the
// entries their sibling inserted — and be attributed in the report.
TEST_F(BatchFlow, SharedCacheProducesCrossJobHits) {
  BatchOptions bopt;
  bopt.workers = 2;
  const BatchRunner runner(t(), bopt);
  const BatchReport batch = runner.run(mixed_jobs());
  EXPECT_GT(batch.cross_job_hits, 0);
  EXPECT_GT(batch.cache_hits, 0);
  EXPECT_EQ(batch.cache_scopes, 1u);  // one technology, one model card pair
  // Sharing saves simulations: the batch total must undercut the solo sum.
  long solo_sum = 0;
  for (const FlowJob& job : mixed_jobs()) {
    FlowReport report;
    (void)solo(job, &report);
    solo_sum += report.testbenches;
  }
  EXPECT_LT(batch.total_testbenches, solo_sum);
}

// Budget exhaustion of one job stays inside that job: the starved job
// reports exhaustion and degraded salvage, its siblings stay pristine.
TEST_F(BatchFlow, PerJobBudgetExhaustionIsIsolated) {
  std::vector<FlowJob> jobs = mixed_jobs();
  jobs[0].options.budget_limits.max_testbenches = 0;
  BatchOptions bopt;
  bopt.workers = 4;
  const BatchRunner runner(t(), bopt);
  const BatchReport batch = runner.run(jobs);

  EXPECT_TRUE(batch.jobs[0].report.budget.exhausted);
  EXPECT_EQ(batch.jobs[0].status, JobStatus::kDegraded);
  for (std::size_t i = 1; i < batch.jobs.size(); ++i) {
    SCOPED_TRACE(batch.jobs[i].name);
    EXPECT_FALSE(batch.jobs[i].report.budget.exhausted);
    EXPECT_NE(batch.jobs[i].status, JobStatus::kFailed);
  }
  // And the starved job still matches ITS solo run — budget trips are part
  // of the deterministic contract, not an escape from it.
  FlowReport want_report;
  const Realization want_real = solo(jobs[0], &want_report);
  expect_same_flow_result(batch.jobs[0].report, want_report,
                          batch.jobs[0].realization, want_real);
}

// A caller-owned Budget handle cancels exactly its job. Cancelling before
// the batch starts makes the outcome deterministic regardless of worker
// scheduling: the cancelled job salvages a degraded skeleton, siblings run
// to completion.
TEST_F(BatchFlow, BudgetCancelStopsOnlyItsJob) {
  std::vector<FlowJob> jobs = mixed_jobs();
  Budget cancel_handle(BudgetOptions{});
  jobs[1].options.budget = &cancel_handle;
  cancel_handle.cancel();
  BatchOptions bopt;
  bopt.workers = 4;
  const BatchRunner runner(t(), bopt);
  const BatchReport batch = runner.run(jobs);

  EXPECT_TRUE(batch.jobs[1].report.budget.exhausted);
  EXPECT_EQ(batch.jobs[1].report.budget.tripped, BudgetKind::kCancelled);
  EXPECT_EQ(batch.jobs[1].status, JobStatus::kDegraded);
  for (std::size_t i = 0; i < batch.jobs.size(); ++i) {
    if (i == 1) continue;
    SCOPED_TRACE(batch.jobs[i].name);
    EXPECT_FALSE(batch.jobs[i].report.budget.exhausted);
  }
}

// Report plumbing: names, modes, lookup, the JSONL export and the summary
// table all reflect the jobs that ran.
TEST_F(BatchFlow, ReportCarriesJobIdentityAndExports) {
  std::vector<FlowJob> jobs = mixed_jobs();
  jobs.resize(2);
  jobs[1].name.clear();  // exercises the job<i> default
  BatchOptions bopt;
  bopt.workers = 2;
  const BatchRunner runner(t(), bopt);
  const BatchReport batch = runner.run(jobs);

  ASSERT_EQ(batch.jobs.size(), 2u);
  EXPECT_EQ(batch.jobs[0].name, "ota/opt/s1");
  EXPECT_EQ(batch.jobs[1].name, "job1");
  EXPECT_EQ(batch.find("ota/opt/s1"), &batch.jobs[0]);
  EXPECT_EQ(batch.find("nope"), nullptr);
  EXPECT_EQ(batch.workers, 2);
  EXPECT_GT(batch.wall_s, 0.0);

  const std::string jsonl = batch.to_jsonl();
  // One line per job plus the batch summary line, each well-formed JSON.
  std::size_t lines = 0;
  std::size_t start = 0;
  while (start < jsonl.size()) {
    const std::size_t end = jsonl.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    std::string err;
    EXPECT_TRUE(
        obs::json_well_formed(jsonl.substr(start, end - start), &err))
        << err;
    ++lines;
    start = end + 1;
  }
  EXPECT_EQ(lines, 3u);
  EXPECT_NE(jsonl.find("\"job\":\"ota/opt/s1\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"batch\":"), std::string::npos);
  EXPECT_FALSE(batch.summary_table().empty());
}

// A throwing job is recorded as failed with its message; siblings complete.
TEST_F(BatchFlow, FailingJobNeverStopsTheBatch) {
  std::vector<FlowJob> jobs = mixed_jobs();
  jobs.resize(3);
  jobs[1].instances.clear();  // conventional flow asserts on empty circuits
  jobs[1].mode = FlowMode::kConventional;
  jobs[1].instances.push_back(ota_->instances().front());
  jobs[1].instances[0].fins = -1;  // no valid layout configuration
  BatchOptions bopt;
  bopt.workers = 2;
  const BatchRunner runner(t(), bopt);
  const BatchReport batch = runner.run(jobs);

  EXPECT_EQ(batch.jobs[1].status, JobStatus::kFailed);
  EXPECT_FALSE(batch.jobs[1].error.empty());
  EXPECT_EQ(batch.failed(), 1u);
  EXPECT_NE(batch.jobs[0].status, JobStatus::kFailed);
  EXPECT_NE(batch.jobs[2].status, JobStatus::kFailed);
}

// The deprecated per-mode entry points are exact aliases of run(FlowMode).
TEST_F(BatchFlow, DeprecatedWrappersMatchRun) {
  FlowOptions opts;
  const FlowEngine engine(t(), opts);
  FlowReport run_report, legacy_report;
  const Realization run_real = engine.run(
      FlowMode::kOptimize, ota_->instances(), ota_->routed_nets(), &run_report);
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const Realization legacy_real =
      engine.optimize(ota_->instances(), ota_->routed_nets(), &legacy_report);
#pragma GCC diagnostic pop
  expect_same_flow_result(legacy_report, run_report, legacy_real, run_real);
}

}  // namespace
}  // namespace olp::circuits

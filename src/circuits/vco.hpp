#pragma once
// Eight-stage differential ring-oscillator VCO (paper Table VII).
//
// Each stage is a pseudo-differential pair of current-starved inverters with
// a weak cross-coupled latch (NMOS + PMOS pairs) holding the two phases in
// antiphase. The ring closes with one polarity twist. The starve devices are
// driven by the control voltage (NMOS side) and its complement (PMOS side);
// bias generation is outside the scope, as in the paper where the VCO's
// control circuitry is supplied externally.
//
// All stages are identical, so primitive optimization runs on one
// representative stage and the result is replicated — exactly the paper's
// usage ("the primitive (current starved inverter) and its ports are
// optimized for delay and current").

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "circuits/common.hpp"

namespace olp::circuits {

class RoVco {
 public:
  explicit RoVco(const tech::Technology& technology, int stages = 8);

  bool prepare();

  /// Representative instances: "inv" (one current-starved inverter, used for
  /// all 2*stages inverters), "nlatch"/"platch" (per-stage latches).
  const std::vector<InstanceSpec>& instances() const { return instances_; }
  std::vector<InstanceSpec>& instances() { return instances_; }

  /// Oscillation frequency at a control voltage; nullopt when the ring does
  /// not oscillate within the simulation window (the basis of the paper's
  /// "voltage range" row).
  std::optional<double> frequency(const Realization& realization,
                                  double vctrl) const;

  /// Table VII metrics over a control sweep: "fmax_ghz", "fmin_ghz",
  /// "vrange_lo", "vrange_hi" (the lowest/highest control voltage at which
  /// oscillation is observed).
  std::map<std::string, double> measure(const Realization& realization,
                                        const std::vector<double>& vctrls) const;

  /// Default control sweep (0 to 0.5 V).
  static std::vector<double> default_sweep();

  std::vector<std::string> routed_nets() const { return {"stage_out"}; }

  int stages() const { return stages_; }
  const tech::Technology& technology() const { return tech_; }

 private:
  spice::Circuit build(const Realization& realization, double vctrl) const;

  const tech::Technology& tech_;
  int stages_;
  std::vector<InstanceSpec> instances_;
};

}  // namespace olp::circuits

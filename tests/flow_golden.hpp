#pragma once
// Bitwise golden comparison of flow results, for determinism tests.
//
// expect_same_flow_result() asserts that two (FlowReport, Realization) pairs
// are byte-identical in every decision-bearing field: candidate options and
// costs, chosen options, placement coordinates, routes, port constraints and
// wire decisions, realized tunings and net RCs. Doubles are compared by bit
// pattern (memcmp), not by tolerance — "deterministic" here means the
// parallel/cached run reproduces the serial uncached run exactly.
//
// Deliberately excluded, because they measure *how* the result was obtained
// rather than *what* it is: runtime_s (wall clock), testbenches and the
// budget consumption counters (cache hits skip simulation), and telemetry
// (span timings, thread-dependent counters). Diagnostics are compared as a
// sorted multiset of (severity, stage, subject, message) tuples: concurrent
// reporters interleave records in nondeterministic order, but the same set
// of records must always be produced. The span path is excluded from the
// tuple for the same reason.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <tuple>
#include <vector>

#include "circuits/flow.hpp"

namespace olp {

inline bool double_bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

inline void expect_bits(double got, double want, const std::string& what) {
  EXPECT_TRUE(double_bits_equal(got, want))
      << what << ": " << got << " != " << want;
}

inline void expect_same_metric_values(const core::MetricValues& got,
                                      const core::MetricValues& want,
                                      const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  auto gi = got.begin();
  auto wi = want.begin();
  for (; gi != got.end(); ++gi, ++wi) {
    EXPECT_EQ(gi->first, wi->first) << what;
    expect_bits(gi->second, wi->second,
                what + "/" + core::metric_name(gi->first));
  }
}

inline void expect_same_tuning(const extract::TuningMap& got,
                               const extract::TuningMap& want,
                               const std::string& what) {
  EXPECT_EQ(got, want) << what;
}

inline void expect_same_candidate(const core::LayoutCandidate& got,
                                  const core::LayoutCandidate& want,
                                  const std::string& what) {
  EXPECT_EQ(got.layout.config.to_string(), want.layout.config.to_string())
      << what;
  expect_same_tuning(got.tuning, want.tuning, what + "/tuning");
  expect_same_metric_values(got.values, want.values, what + "/values");
  expect_bits(got.cost.total, want.cost.total, what + "/cost");
  ASSERT_EQ(got.cost.terms.size(), want.cost.terms.size()) << what;
  for (std::size_t i = 0; i < got.cost.terms.size(); ++i) {
    expect_bits(got.cost.terms[i].deviation, want.cost.terms[i].deviation,
                what + "/term" + std::to_string(i));
  }
  EXPECT_EQ(got.bin, want.bin) << what;
  EXPECT_EQ(got.quarantined, want.quarantined) << what;
}

inline void expect_same_routes(
    const std::map<std::string, route::NetRoute>& got,
    const std::map<std::string, route::NetRoute>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (const auto& [net, w] : want) {
    ASSERT_TRUE(got.count(net)) << net;
    const route::NetRoute& g = got.at(net);
    EXPECT_EQ(g.net, w.net) << net;
    EXPECT_EQ(g.routed, w.routed) << net;
    EXPECT_EQ(g.vias, w.vias) << net;
    ASSERT_EQ(g.segments.size(), w.segments.size()) << net;
    for (std::size_t i = 0; i < g.segments.size(); ++i) {
      EXPECT_EQ(g.segments[i].layer, w.segments[i].layer) << net;
      EXPECT_TRUE(g.segments[i].a == w.segments[i].a) << net;
      EXPECT_TRUE(g.segments[i].b == w.segments[i].b) << net;
    }
  }
}

/// Diagnostics as an order-insensitive multiset (span paths excluded: the
/// interleaving — and therefore the open-span stack a worker reports under —
/// is scheduling-dependent; the record *set* is not).
inline std::vector<std::tuple<int, std::string, std::string, std::string>>
diag_multiset(const std::vector<Diagnostic>& diags) {
  std::vector<std::tuple<int, std::string, std::string, std::string>> out;
  out.reserve(diags.size());
  for (const Diagnostic& d : diags) {
    out.emplace_back(static_cast<int>(d.severity), d.stage, d.subject,
                     d.message);
  }
  std::sort(out.begin(), out.end());
  return out;
}

inline void expect_same_flow_result(const circuits::FlowReport& got,
                                    const circuits::FlowReport& want,
                                    const circuits::Realization& got_real,
                                    const circuits::Realization& want_real) {
  // Step A: per-instance candidate options.
  ASSERT_EQ(got.options.size(), want.options.size());
  for (const auto& [name, wopts] : want.options) {
    ASSERT_TRUE(got.options.count(name)) << name;
    const auto& gopts = got.options.at(name);
    ASSERT_EQ(gopts.size(), wopts.size()) << name;
    for (std::size_t i = 0; i < gopts.size(); ++i) {
      expect_same_candidate(gopts[i], wopts[i],
                            name + "[" + std::to_string(i) + "]");
    }
  }
  EXPECT_EQ(got.chosen_option, want.chosen_option);

  // Step C: placement and routing.
  EXPECT_EQ(got.placed_instances, want.placed_instances);
  ASSERT_EQ(got.placement.blocks.size(), want.placement.blocks.size());
  for (std::size_t i = 0; i < got.placement.blocks.size(); ++i) {
    const std::string what = "block" + std::to_string(i);
    expect_bits(got.placement.blocks[i].x, want.placement.blocks[i].x,
                what + ".x");
    expect_bits(got.placement.blocks[i].y, want.placement.blocks[i].y,
                what + ".y");
    EXPECT_EQ(got.placement.blocks[i].mirrored,
              want.placement.blocks[i].mirrored)
        << what;
  }
  expect_bits(got.placement.width, want.placement.width, "placement.width");
  expect_bits(got.placement.height, want.placement.height, "placement.height");
  expect_bits(got.placement.hpwl, want.placement.hpwl, "placement.hpwl");
  EXPECT_EQ(got.placement.legal, want.placement.legal);
  expect_same_routes(got.routes, want.routes);

  // Step D: port optimization.
  ASSERT_EQ(got.constraints.size(), want.constraints.size());
  for (std::size_t i = 0; i < got.constraints.size(); ++i) {
    const core::PortConstraint& g = got.constraints[i];
    const core::PortConstraint& w = want.constraints[i];
    const std::string what = g.instance + "/" + g.circuit_net;
    EXPECT_EQ(g.instance, w.instance) << what;
    EXPECT_EQ(g.circuit_net, w.circuit_net) << what;
    EXPECT_EQ(g.interval.lo, w.interval.lo) << what;
    EXPECT_EQ(g.interval.hi, w.interval.hi) << what;
    ASSERT_EQ(g.cost_curve.size(), w.cost_curve.size()) << what;
    for (std::size_t k = 0; k < g.cost_curve.size(); ++k) {
      expect_bits(g.cost_curve[k], w.cost_curve[k],
                  what + "/curve" + std::to_string(k));
    }
  }
  ASSERT_EQ(got.decisions.size(), want.decisions.size());
  for (std::size_t i = 0; i < got.decisions.size(); ++i) {
    EXPECT_EQ(got.decisions[i].circuit_net, want.decisions[i].circuit_net);
    EXPECT_EQ(got.decisions[i].parallel_routes,
              want.decisions[i].parallel_routes)
        << got.decisions[i].circuit_net;
    EXPECT_EQ(got.decisions[i].from_overlap, want.decisions[i].from_overlap)
        << got.decisions[i].circuit_net;
  }

  // Degradation state and the diagnostic record set.
  EXPECT_EQ(got.degraded, want.degraded);
  EXPECT_EQ(got.budget.exhausted, want.budget.exhausted);
  EXPECT_EQ(got.budget.tripped, want.budget.tripped);
  EXPECT_EQ(diag_multiset(got.diagnostics), diag_multiset(want.diagnostics));

  // The realization handed to downstream measurement.
  ASSERT_EQ(got_real.layouts.size(), want_real.layouts.size());
  for (const auto& [name, wlay] : want_real.layouts) {
    ASSERT_TRUE(got_real.layouts.count(name)) << name;
    EXPECT_EQ(got_real.layouts.at(name).config.to_string(),
              wlay.config.to_string())
        << name;
  }
  EXPECT_EQ(got_real.tunings, want_real.tunings);
  ASSERT_EQ(got_real.net_wires.size(), want_real.net_wires.size());
  for (const auto& [net, wrc] : want_real.net_wires) {
    ASSERT_TRUE(got_real.net_wires.count(net)) << net;
    expect_bits(got_real.net_wires.at(net).resistance, wrc.resistance,
                net + ".r");
    expect_bits(got_real.net_wires.at(net).capacitance, wrc.capacitance,
                net + ".c");
  }
}

}  // namespace olp

// Unit tests for the SPICE-dialect netlist parser.

#include <gtest/gtest.h>

#include "spice/parser.hpp"

namespace olp::spice {
namespace {

TEST(SpiceNumber, PlainAndScientific) {
  EXPECT_DOUBLE_EQ(parse_spice_number("42"), 42.0);
  EXPECT_DOUBLE_EQ(parse_spice_number("-1.5e-9"), -1.5e-9);
  EXPECT_DOUBLE_EQ(parse_spice_number("3.3"), 3.3);
}

TEST(SpiceNumber, EngineeringSuffixes) {
  EXPECT_DOUBLE_EQ(parse_spice_number("10k"), 10e3);
  EXPECT_DOUBLE_EQ(parse_spice_number("1meg"), 1e6);
  EXPECT_DOUBLE_EQ(parse_spice_number("2.2u"), 2.2e-6);
  EXPECT_DOUBLE_EQ(parse_spice_number("5n"), 5e-9);
  EXPECT_DOUBLE_EQ(parse_spice_number("100p"), 100e-12);
  EXPECT_DOUBLE_EQ(parse_spice_number("3f"), 3e-15);
  EXPECT_DOUBLE_EQ(parse_spice_number("7m"), 7e-3);
  EXPECT_DOUBLE_EQ(parse_spice_number("1g"), 1e9);
  EXPECT_DOUBLE_EQ(parse_spice_number("2t"), 2e12);
}

TEST(SpiceNumber, UnitDecorationIgnored) {
  EXPECT_DOUBLE_EQ(parse_spice_number("10pF"), 10e-12);
  EXPECT_DOUBLE_EQ(parse_spice_number("5kohm"), 5e3);
}

TEST(SpiceNumber, RejectsNonNumbers) {
  EXPECT_THROW(parse_spice_number("abc"), InvalidArgumentError);
  EXPECT_THROW(parse_spice_number(""), InvalidArgumentError);
}

TEST(Parser, ResistorDivider) {
  const Circuit c = parse_netlist(R"(
* simple divider
V1 in 0 DC 1.0
R1 in mid 1k
R2 mid 0 1k
.end
)");
  EXPECT_EQ(c.resistors().size(), 2u);
  EXPECT_EQ(c.vsources().size(), 1u);
  EXPECT_DOUBLE_EQ(c.resistors()[0].r, 1000.0);
  EXPECT_TRUE(c.has_node("mid"));
}

TEST(Parser, CapacitorWithInitialCondition) {
  const Circuit c = parse_netlist("C1 a 0 10f ic=0.5\n");
  ASSERT_EQ(c.capacitors().size(), 1u);
  EXPECT_TRUE(c.capacitors()[0].use_ic);
  EXPECT_DOUBLE_EQ(c.capacitors()[0].ic, 0.5);
  EXPECT_DOUBLE_EQ(c.capacitors()[0].c, 10e-15);
}

TEST(Parser, PulseSource) {
  const Circuit c =
      parse_netlist("Vclk clk 0 PULSE(0 0.8 1n 0.02n 0.02n 0.5n 1n)\n");
  ASSERT_EQ(c.vsources().size(), 1u);
  const Waveform& w = c.vsources()[0].wave;
  EXPECT_DOUBLE_EQ(w.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(w.value(1.3e-9), 0.8);
  EXPECT_DOUBLE_EQ(w.value(1.8e-9), 0.0);
}

TEST(Parser, SinSourceWithDelay) {
  const Circuit c = parse_netlist("vs a 0 SIN(0.4 0.1 1g 2n)\n");
  const Waveform& w = c.vsources()[0].wave;
  EXPECT_DOUBLE_EQ(w.value(1e-9), 0.4);
  EXPECT_NEAR(w.value(2e-9 + 0.25e-9), 0.5, 1e-9);
}

TEST(Parser, AcMagnitudeAndPhase) {
  const Circuit c = parse_netlist("V1 in 0 DC 0.5 AC 1.0 90\n");
  EXPECT_DOUBLE_EQ(c.vsources()[0].ac_mag, 1.0);
  EXPECT_NEAR(c.vsources()[0].ac_phase, M_PI / 2, 1e-12);
}

TEST(Parser, PwlSource) {
  const Circuit c = parse_netlist("I1 a 0 PWL(0 0 1n 1u 2n 0)\n");
  ASSERT_EQ(c.isources().size(), 1u);
  EXPECT_NEAR(c.isources()[0].wave.value(0.5e-9), 0.5e-6, 1e-15);
}

TEST(Parser, BareValueIsDc) {
  const Circuit c = parse_netlist("V1 a 0 0.8\n");
  EXPECT_DOUBLE_EQ(c.vsources()[0].wave.dc_value(), 0.8);
}

TEST(Parser, ControlledSources) {
  const Circuit c = parse_netlist(R"(
E1 out 0 inp inn 10
G1 out 0 inp inn 2m
)");
  ASSERT_EQ(c.vcvs().size(), 1u);
  ASSERT_EQ(c.vccs().size(), 1u);
  EXPECT_DOUBLE_EQ(c.vcvs()[0].gain, 10.0);
  EXPECT_DOUBLE_EQ(c.vccs()[0].gm, 2e-3);
}

TEST(Parser, MosfetWithModelAndGeometry) {
  const Circuit c = parse_netlist(R"(
.model nfet nmos vth0=0.3 kp=400u
M1 d g s 0 nfet w=2u l=14n as=0.1p ad=0.1p dvth=5m mob=0.98
)");
  ASSERT_EQ(c.mosfets().size(), 1u);
  const Mosfet& m = c.mosfets()[0];
  EXPECT_DOUBLE_EQ(m.w, 2e-6);
  EXPECT_DOUBLE_EQ(m.l, 14e-9);
  EXPECT_DOUBLE_EQ(m.delta_vth, 5e-3);
  EXPECT_DOUBLE_EQ(m.mobility_mult, 0.98);
  EXPECT_DOUBLE_EQ(c.model(m.model).vth0, 0.3);
}

TEST(Parser, PmosModel) {
  const Circuit c = parse_netlist(R"(
.model pfet pmos vth0=0.25
M1 d g s b pfet w=1u l=14n
)");
  EXPECT_EQ(c.model(c.mosfets()[0].model).type, MosType::kPmos);
}

TEST(Parser, ContinuationLines) {
  const Circuit c = parse_netlist(
      "Vclk clk 0 PULSE(0 0.8\n+ 1n 0.02n 0.02n\n+ 0.5n 1n)\n");
  EXPECT_DOUBLE_EQ(c.vsources()[0].wave.value(1.3e-9), 0.8);
}

TEST(Parser, CommentsAndBlankLines) {
  const Circuit c = parse_netlist(R"(
* header comment
R1 a b 1k ; trailing comment

* another
R2 b 0 2k
)");
  EXPECT_EQ(c.resistors().size(), 2u);
}

TEST(Parser, InitialConditions) {
  const Circuit c = parse_netlist(".ic v(osc)=0.8\nR1 osc 0 1k\n");
  EXPECT_EQ(c.initial_conditions().size(), 1u);
}

TEST(Parser, GroundAliases) {
  const Circuit c = parse_netlist("R1 a gnd 1k\nR2 a 0 1k\n");
  EXPECT_EQ(c.resistors()[0].b, kGround);
  EXPECT_EQ(c.resistors()[1].b, kGround);
}

TEST(Parser, UnknownModelThrows) {
  EXPECT_THROW(parse_netlist("M1 d g s 0 nosuch w=1u l=14n\n"), ParseError);
}

TEST(Parser, UnknownElementThrows) {
  EXPECT_THROW(parse_netlist("X1 a b c\n"), ParseError);
}

TEST(Parser, UnsupportedDirectiveThrows) {
  EXPECT_THROW(parse_netlist(".tran 1n 10n\n"), ParseError);
}

TEST(Parser, ErrorCarriesLineNumber) {
  try {
    parse_netlist("R1 a b 1k\nR2 a\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

TEST(Parser, DotEndStopsParsing) {
  const Circuit c = parse_netlist("R1 a 0 1k\n.end\nR2 b 0 2k\n");
  EXPECT_EQ(c.resistors().size(), 1u);
}

TEST(Parser, NegativeResistanceRejected) {
  EXPECT_THROW(parse_netlist("R1 a 0 -5\n"), InvalidArgumentError);
}

}  // namespace
}  // namespace olp::spice

#pragma once
// Batch flow service: many flow jobs over ONE worker pool and ONE shared
// evaluation cache.
//
// A FlowJob names a circuit (instances + nets), a FlowMode and per-job
// FlowOptions; BatchRunner::run() executes a vector of them concurrently on
// a single TaskPool. Jobs are claimed in submission order (the pool's FIFO
// fairness), and every parallel stage inside every job runs on the same
// fixed worker set — worker count bounds the whole batch, not each job.
//
// Cross-job cache sharing: evaluation results are memoized in caches keyed
// by core::EvalCache::scope_key(technology, nmos, pmos) — one cache per
// distinct technology/model-card combination, so only jobs whose
// evaluations are interchangeable ever share (sharing across scopes would
// be unsound: the cache key does not cover the technology). Each job
// presents its index as the cache client id; hits on entries another job
// inserted are tallied as cross-job hits — testbenches the batch saved
// versus running every job alone.
//
// Isolation and determinism: each job gets its own Budget (its
// FlowOptions::budget_limits / budget handle apply verbatim — exhaustion or
// Budget::cancel() of one job never touches a sibling), its own
// DiagnosticsSink, and its own FlowReport. A job that throws is recorded as
// failed (with the error text) and the rest of the batch proceeds. Cached
// values are bit-identical to freshly computed ones by construction, and
// per-batch ordered reduction keeps every job's decisions independent of
// scheduling — so each job's report is bit-identical to running that job
// alone (tests/test_batch.cpp proves it against the serial uncached run).
//
// Telemetry: concurrent jobs cannot each own the process-wide obs registry
// (a per-job rebase would clobber the siblings), so every job runs with
// FlowOptions::own_telemetry = false and the runner attaches ONE pooled
// snapshot — counters and spans of the whole batch — to the BatchReport.

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "circuits/flow.hpp"
#include "core/eval_cache.hpp"

namespace olp::circuits {

/// One unit of batch work: a circuit, the flow to run on it, and per-job
/// option overrides (seed, budget limits or a caller-owned Budget handle for
/// cancellation, trace artifacts, ...). The runner overwrites the options'
/// pool/cache/telemetry plumbing fields; everything else applies verbatim.
struct FlowJob {
  std::string name;  ///< report key; defaults to "job<i>" when empty
  FlowMode mode = FlowMode::kOptimize;
  std::vector<InstanceSpec> instances;
  std::vector<std::string> routed_nets;
  FlowOptions options;
  /// Technology override (not owned, must outlive the run); null = the
  /// runner's technology. Jobs only share cached evaluations when their
  /// technologies (and model cards) fingerprint identically.
  const tech::Technology* technology = nullptr;
};

enum class JobStatus {
  kSucceeded,  ///< completed with no warning-or-worse diagnostics
  kDegraded,   ///< completed, but some subsystem fell back or was budget-cut
  kFailed,     ///< threw; error holds the message, report/realization partial
};

/// Stable lowercase name: "succeeded", "degraded", "failed".
const char* job_status_name(JobStatus status);

struct JobResult {
  std::string name;
  FlowMode mode = FlowMode::kOptimize;
  JobStatus status = JobStatus::kSucceeded;
  std::string error;  ///< nonempty iff status == kFailed
  FlowReport report;
  Realization realization;
  double queued_s = 0.0;  ///< batch start -> job start (FIFO queue wait)
  double run_s = 0.0;     ///< job start -> job end
};

struct BatchOptions {
  /// Worker threads (including the caller) for the whole batch: jobs AND
  /// their inner parallel stages. 1 = strictly serial (the determinism
  /// reference), 0 = one per hardware core. OLP_THREADS overrides at
  /// runner construction.
  int workers = 1;
  /// Oversubscription guard (default on): the batch pool never spawns more
  /// threads than hardware cores — worker counts beyond that cannot add
  /// throughput, only context-switch and lock-handoff overhead (measured
  /// -15% jobs/min at 8 requested workers on one core). Results are
  /// bit-identical either way. OLP_BATCH_CLAMP=0/1 overrides at runner
  /// construction; the TSan harness disables it so small machines still
  /// exercise real cross-thread interleavings.
  bool clamp_workers = true;
  /// Share one evaluation cache among same-scope jobs (see file comment).
  /// Off = every job runs with exactly its own FlowOptions cache settings.
  bool share_cache = true;
  /// Capacity bound per scope cache (0 = unbounded, the deterministic
  /// default). OLP_CACHE_MAX_ENTRIES overrides at runner construction.
  std::size_t cache_max_entries = 0;
  /// Bench-only A/B switch: run every shared scope cache with the legacy
  /// mutex-striped read path (core::EvalCacheOptions::locked_reads) instead
  /// of the lock-free published-index reads. Results are bit-identical
  /// either way; only the contention telemetry differs. Used by
  /// bench/bench_stage_scaling.cpp to separate the cache-contention win
  /// from the worker-scaling win.
  bool cache_locked_reads = false;
};

/// The set of shared evaluation caches behind a batch or the resident
/// service: one core::EvalCache per evaluation scope
/// (core::EvalCache::scope_key), created on first use. BatchRunner builds a
/// pool per run; the layout service owns ONE for its whole lifetime, so
/// caches stay warm across requests and can be checkpointed to disk
/// (core::save_cache_snapshot format) and restored after a restart.
class CachePool {
 public:
  /// Every cache created by this pool is bounded to `max_entries_per_cache`
  /// entries (0 = unbounded). `locked_reads` selects the legacy mutex-read
  /// cache path for every cache created (bench A/B only, see BatchOptions).
  explicit CachePool(std::size_t max_entries_per_cache = 0,
                     bool locked_reads = false);

  CachePool(const CachePool&) = delete;
  CachePool& operator=(const CachePool&) = delete;

  /// The cache serving `scope`, created (empty) on first use. Thread-safe;
  /// the returned cache lives as long as the pool.
  core::EvalCache* cache_for_scope(const std::string& scope);

  /// Convenience: scope computed from the job's technology + model cards.
  core::EvalCache* cache_for(const tech::Technology& technology);

  std::size_t scopes() const;
  /// Pooled statistics summed over every scope cache.
  core::EvalCacheStats stats() const;
  /// Drops every entry (scope caches remain allocated).
  void clear();

  /// Checkpoints every scope cache to `path` (atomic write-then-rename; see
  /// core::save_cache_snapshot). Returns false on I/O failure — the
  /// previous snapshot, if any, is left intact.
  bool save_snapshot(const std::string& path,
                     std::string* error = nullptr) const;
  /// Warm-starts the pool from a snapshot written by save_snapshot().
  /// Missing, truncated, or corrupt snapshots return false and leave the
  /// pool untouched (cold start) — never throw, never partially restore.
  bool load_snapshot(const std::string& path, std::string* error = nullptr);

 private:
  const std::size_t max_entries_;
  const bool locked_reads_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<core::EvalCache>> caches_;
};

/// Executes ONE FlowJob with the standard batch plumbing overrides (shared
/// pool, pooled telemetry, optional shared scope cache with client id
/// `client`) and per-job isolation: a throwing job is recorded as
/// JobStatus::kFailed with its message, never rethrown. `pool` and `cache`
/// may be null (serial / uncached). Fills name (from `job.name` or
/// "job<client>"), status, error, report, realization and run_s; queued_s is
/// the caller's to set. This is the execution core shared by BatchRunner and
/// the resident layout service.
JobResult run_flow_job(const FlowJob& job, const tech::Technology& technology,
                       TaskPool* pool, core::EvalCache* cache, int client);

struct BatchReport {
  std::vector<JobResult> jobs;
  double wall_s = 0.0;
  int workers = 1;
  long total_testbenches = 0;  ///< across all jobs (simulations actually run)
  /// Pooled shared-cache statistics (zero when sharing is off).
  long cache_hits = 0;
  long cache_misses = 0;
  long cache_entries = 0;
  /// Hits on entries a DIFFERENT job inserted: testbenches saved by
  /// cross-job sharing (1 evaluation == 1 testbench).
  long cross_job_hits = 0;
  std::size_t cache_scopes = 0;  ///< distinct tech/model-card scopes
  /// One pooled snapshot over the whole batch (counters, spans, stage
  /// timings of every job interleaved). Populated when obs::Registry is
  /// enabled during the run.
  obs::FlowTelemetry telemetry;

  std::size_t succeeded() const;
  std::size_t degraded() const;
  std::size_t failed() const;
  /// The named job's result, or null.
  const JobResult* find(const std::string& name) const;
  /// Human-readable per-job status table.
  std::string summary_table() const;
  /// One JSON object per line: one line per job, then one "batch" summary
  /// line. Machine-readable companion of summary_table().
  std::string to_jsonl() const;
  /// Writes to_jsonl() to `path` (throws on I/O failure).
  void write_jsonl(const std::string& path) const;
};

class BatchRunner {
 public:
  /// `technology` is the default for jobs without an override; not owned,
  /// must outlive run() calls.
  explicit BatchRunner(const tech::Technology& technology,
                       BatchOptions options = {});

  /// Runs every job (failures included — a throwing job is recorded, never
  /// rethrown) and returns the aggregated report. jobs[i] maps to
  /// report.jobs[i].
  BatchReport run(const std::vector<FlowJob>& jobs) const;

  const BatchOptions& options() const { return options_; }

 private:
  const tech::Technology& tech_;
  BatchOptions options_;
};

}  // namespace olp::circuits

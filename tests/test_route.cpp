// Tests for the g-cell global router and the pluggable routing backends.

#include <gtest/gtest.h>

#include "route/global_router.hpp"
#include "route/router_engine.hpp"
#include "util/budget.hpp"
#include "util/rng.hpp"

namespace olp::route {
namespace {

const tech::Technology& t() {
  static const tech::Technology tech = tech::make_default_finfet_tech();
  return tech;
}

geom::Rect region(double microns) {
  return geom::Rect{0, 0, geom::to_nm(microns * 1e-6),
                    geom::to_nm(microns * 1e-6)};
}

TEST(Router, TwoPinRouteSucceeds) {
  GlobalRouter router(t(), region(10), {});
  const NetRoute nr = router.route(
      "n", {geom::Point{0, 0}, geom::Point{geom::to_nm(5e-6), 0}}, {});
  ASSERT_TRUE(nr.routed);
  EXPECT_FALSE(nr.segments.empty());
  EXPECT_GT(nr.vias, 0);  // pin via stacks
}

TEST(Router, RouteLengthAtLeastManhattan) {
  GlobalRouter router(t(), region(10), {});
  const geom::Point a{0, 0};
  const geom::Point b{geom::to_nm(4e-6), geom::to_nm(3e-6)};
  const NetRoute nr = router.route("n", {a, b}, {});
  ASSERT_TRUE(nr.routed);
  EXPECT_GE(nr.total_length(), geom::to_meters(geom::manhattan(a, b)) - 1e-9);
  // And not wildly longer on an empty grid.
  EXPECT_LE(nr.total_length(),
            2.0 * geom::to_meters(geom::manhattan(a, b)) + 1e-6);
}

TEST(Router, StraightRouteUsesPreferredDirection) {
  RouterOptions opt;
  opt.min_layer = 2;  // M3 horizontal, M4 vertical
  GlobalRouter router(t(), region(10), opt);
  const NetRoute nr = router.route(
      "n", {geom::Point{0, 0}, geom::Point{geom::to_nm(5e-6), 0}}, {});
  ASSERT_TRUE(nr.routed);
  // A purely horizontal connection stays on the horizontal layer.
  EXPECT_GT(nr.length_on(tech::Layer::kM3), 4e-6);
  EXPECT_NEAR(nr.length_on(tech::Layer::kM4), 0.0, 1e-9);
}

TEST(Router, LShapeUsesBothDirections) {
  RouterOptions opt;
  opt.min_layer = 2;
  GlobalRouter router(t(), region(10), opt);
  const NetRoute nr = router.route(
      "n", {geom::Point{0, 0},
            geom::Point{geom::to_nm(4e-6), geom::to_nm(4e-6)}}, {});
  ASSERT_TRUE(nr.routed);
  EXPECT_GT(nr.length_on(tech::Layer::kM3), 3e-6);
  EXPECT_GT(nr.length_on(tech::Layer::kM4), 3e-6);
  EXPECT_GE(nr.vias, 3);  // at least one layer change plus pin stacks
}

TEST(Router, MultiPinBuildsSteinerTree) {
  GlobalRouter router(t(), region(10), {});
  // Three pins in an L: a shared trunk should keep total length below the
  // sum of the two independent two-pin routes.
  const geom::Point a{0, 0};
  const geom::Point b{geom::to_nm(6e-6), 0};
  const geom::Point c{geom::to_nm(6e-6), geom::to_nm(6e-6)};
  const NetRoute nr = router.route("n", {a, b, c}, {});
  ASSERT_TRUE(nr.routed);
  EXPECT_LT(nr.total_length(), 13e-6);
  EXPECT_GE(nr.total_length(), 11.9e-6);
}

TEST(Router, SteinerSharingBeatsStar) {
  GlobalRouter router(t(), region(20), {});
  // Pins on a line: the tree should be ~ the line length, not 2x.
  const NetRoute nr = router.route(
      "n", {geom::Point{0, 0}, geom::Point{geom::to_nm(10e-6), 0},
            geom::Point{geom::to_nm(5e-6), 0}}, {});
  ASSERT_TRUE(nr.routed);
  EXPECT_LT(nr.total_length(), 11e-6);
}

TEST(Router, CongestionPushesSecondNetAside) {
  RouterOptions opt;
  opt.edge_capacity = 1;
  opt.congestion_cost = 50.0;
  GlobalRouter router(t(), region(10), opt);
  const geom::Point a{0, geom::to_nm(5e-6)};
  const geom::Point b{geom::to_nm(9e-6), geom::to_nm(5e-6)};
  const NetRoute first = router.route("n1", {a, b}, {});
  const NetRoute second = router.route("n2", {a, b}, {});
  ASSERT_TRUE(first.routed);
  ASSERT_TRUE(second.routed);
  // The second net detours (or changes layer): strictly more wire+via cost.
  EXPECT_GT(second.total_length() + 0.2e-6 * second.vias,
            first.total_length() + 0.2e-6 * first.vias - 1e-9);
  EXPECT_GT(router.congestion_ratio(), 0.0);
}

TEST(Router, PinsOutsideRegionAreClamped) {
  GlobalRouter router(t(), region(5), {});
  const NetRoute nr = router.route(
      "n", {geom::Point{-geom::to_nm(1e-6), 0},
            geom::Point{geom::to_nm(20e-6), geom::to_nm(20e-6)}}, {});
  EXPECT_TRUE(nr.routed);
}

TEST(Router, SinglePinThrows) {
  GlobalRouter router(t(), region(5), {});
  EXPECT_THROW(router.route("n", {geom::Point{0, 0}}, {}),
               InvalidArgumentError);
}

TEST(Router, BadLayerRangeThrows) {
  RouterOptions opt;
  opt.min_layer = 4;
  opt.max_layer = 2;
  EXPECT_THROW(GlobalRouter(t(), region(5), opt), InvalidArgumentError);
}

TEST(NetRoute, DominantLayerAndLengths) {
  NetRoute nr;
  nr.segments.push_back(
      {tech::Layer::kM3, {0, 0}, {geom::to_nm(3e-6), 0}});
  nr.segments.push_back(
      {tech::Layer::kM4, {0, 0}, {0, geom::to_nm(1e-6)}});
  EXPECT_NEAR(nr.length_on(tech::Layer::kM3), 3e-6, 1e-12);
  EXPECT_NEAR(nr.total_length(), 4e-6, 1e-12);
  EXPECT_EQ(nr.dominant_layer(), tech::Layer::kM3);
}

// Property: random pin sets always route on an empty grid, and the segments
// plus pin stacks form a connected tree (every segment endpoint appears at
// least twice or is a pin gcell).
class RouterRandom : public ::testing::TestWithParam<int> {};

TEST_P(RouterRandom, RandomPinsRoute) {
  Rng rng(static_cast<std::uint64_t>(50 + GetParam()));
  GlobalRouter router(t(), region(15), {});
  const int pins = 2 + GetParam() % 4;
  std::vector<geom::Point> pts;
  for (int p = 0; p < pins; ++p) {
    pts.push_back(geom::Point{geom::to_nm(rng.uniform(0, 15e-6)),
                              geom::to_nm(rng.uniform(0, 15e-6))});
  }
  const NetRoute nr = router.route("n", pts, {});
  EXPECT_TRUE(nr.routed);
  EXPECT_GT(nr.total_length() + 1e-9, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouterRandom, ::testing::Range(1, 17));

// ---------------------------------------------------------------------------
// The redesigned request API: one entry point, deprecated wrappers that
// forward verbatim, and the shared detour-margin helper.

void expect_same_route(const NetRoute& a, const NetRoute& b) {
  ASSERT_EQ(a.routed, b.routed);
  ASSERT_EQ(a.segments.size(), b.segments.size());
  EXPECT_EQ(a.vias, b.vias);
  for (std::size_t i = 0; i < a.segments.size(); ++i) {
    EXPECT_EQ(a.segments[i].layer, b.segments[i].layer);
    EXPECT_EQ(a.segments[i].a.x, b.segments[i].a.x);
    EXPECT_EQ(a.segments[i].a.y, b.segments[i].a.y);
    EXPECT_EQ(a.segments[i].b.x, b.segments[i].b.x);
    EXPECT_EQ(a.segments[i].b.y, b.segments[i].b.y);
  }
}

TEST(RouteRequest, DeprecatedWrappersForwardVerbatim) {
  const std::vector<geom::Point> pins{
      geom::Point{0, 0},
      geom::Point{geom::to_nm(4e-6), geom::to_nm(3e-6)}};
  // Fresh routers per call: routing mutates the congestion grid, so the
  // wrapper and the request form must start from identical state.
  GlobalRouter via_request(t(), region(10), {});
  GlobalRouter via_wrapper(t(), region(10), {});
  const NetRoute a = via_request.route("n", pins, RouteRequest{});
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const NetRoute b = via_wrapper.route("n", pins);
#pragma GCC diagnostic pop
  ASSERT_TRUE(a.routed);
  expect_same_route(a, b);

  GlobalRouter via_request_w(t(), region(10), {});
  GlobalRouter via_wrapper_w(t(), region(10), {});
  RouteRequest windowed;
  windowed.window = via_request_w.detour_window(pins);
  const NetRoute c = via_request_w.route("n", pins, windowed);
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const NetRoute d = via_wrapper_w.route_in_window(
      "n", pins, via_wrapper_w.detour_window(pins));
#pragma GCC diagnostic pop
  ASSERT_TRUE(c.routed);
  expect_same_route(c, d);

  GlobalRouter via_request_f(t(), region(10), {});
  GlobalRouter via_wrapper_f(t(), region(10), {});
  RouteRequest with_fallback;
  with_fallback.with_fallback = true;
  const NetRoute e = via_request_f.route("n", pins, with_fallback);
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const NetRoute f = via_wrapper_f.route_with_fallback("n", pins);
#pragma GCC diagnostic pop
  ASSERT_TRUE(e.routed);
  expect_same_route(e, f);
}

TEST(RouteRequest, DetourWindowPinsMarginSixBehavior) {
  // The canonical margin is part of the partitioned-routing contract: the
  // batch coloring and window-confined searches must agree on it.
  EXPECT_EQ(kDetourMarginCells, 6);
  GlobalRouter router(t(), region(20), {});
  // One gcell of halo shifts the origin by one cell: a pin at 2 um on a
  // 200 nm grid snaps to gcell 11, so the margin-6 window is [5, 17].
  const std::vector<geom::Point> pins{
      geom::Point{geom::to_nm(2e-6), geom::to_nm(2e-6)},
      geom::Point{geom::to_nm(2e-6), geom::to_nm(2e-6)}};
  const GridWindow w = router.detour_window(pins);
  EXPECT_EQ(w.x_lo, 5);
  EXPECT_EQ(w.y_lo, 5);
  EXPECT_EQ(w.x_hi, 17);
  EXPECT_EQ(w.y_hi, 17);
  const GridWindow manual = router.window_for(pins, 6);
  EXPECT_EQ(w.x_lo, manual.x_lo);
  EXPECT_EQ(w.y_lo, manual.y_lo);
  EXPECT_EQ(w.x_hi, manual.x_hi);
  EXPECT_EQ(w.y_hi, manual.y_hi);
  // And the partition plan uses the same helper by default.
  const PartitionPlan plan =
      partition_nets(router, {NetPins{"n", pins}});
  ASSERT_EQ(plan.windows.size(), 1u);
  EXPECT_EQ(plan.windows[0].x_lo, w.x_lo);
  EXPECT_EQ(plan.windows[0].x_hi, w.x_hi);
  EXPECT_EQ(plan.windows[0].y_lo, w.y_lo);
  EXPECT_EQ(plan.windows[0].y_hi, w.y_hi);
}

TEST(Router, RipUpRestoresCongestionState) {
  RouterOptions opt;
  opt.edge_capacity = 1;
  GlobalRouter router(t(), region(10), opt);
  const geom::Point a{0, geom::to_nm(5e-6)};
  const geom::Point b{geom::to_nm(4e-6), geom::to_nm(5e-6)};
  const NetRoute first = router.route("n1", {a, b}, {});
  ASSERT_TRUE(first.routed);
  const double ratio_after_first = router.congestion_ratio();
  const long overflow_after_first = router.total_overflow();
  const NetRoute second = router.route("n2", {a, b}, {});
  ASSERT_TRUE(second.routed);
  EXPECT_GE(router.congestion_ratio(), ratio_after_first);

  router.rip_up(second);
  EXPECT_EQ(router.congestion_ratio(), ratio_after_first);
  EXPECT_EQ(router.total_overflow(), overflow_after_first);
  router.commit(second);
  router.rip_up(second);
  router.rip_up(first);
  EXPECT_EQ(router.congestion_ratio(), 0.0);
  EXPECT_EQ(router.total_overflow(), 0);
}

// ---------------------------------------------------------------------------
// The fast core: pattern candidates must match the classic full search
// exactly on congestion-free two-pin connections (they are accepted only
// when provably optimal), and the backends must agree on route quality.

TEST(FastCore, PatternsMatchFullSearchOnCleanTwoPinNets) {
  const std::vector<std::vector<geom::Point>> cases = {
      // Straight horizontal, straight vertical, two L orientations.
      {geom::Point{0, 0}, geom::Point{geom::to_nm(5e-6), 0}},
      {geom::Point{0, 0}, geom::Point{0, geom::to_nm(5e-6)}},
      {geom::Point{0, 0}, geom::Point{geom::to_nm(4e-6), geom::to_nm(3e-6)}},
      {geom::Point{geom::to_nm(6e-6), 0},
       geom::Point{0, geom::to_nm(2e-6)}},
  };
  for (const auto& pins : cases) {
    GlobalRouter classic(t(), region(10), {});
    GlobalRouter fast(t(), region(10), {});
    const NetRoute a = classic.route("n", pins, {});
    RouteRequest request;
    request.fast = true;
    const NetRoute b = fast.route("n", pins, request);
    ASSERT_TRUE(a.routed);
    ASSERT_TRUE(b.routed);
    // Pattern candidates are only accepted at the provable lower bound, so
    // length and via count must match the full search exactly (segment
    // granularity differs: patterns emit per-leg segments).
    EXPECT_NEAR(a.total_length(), b.total_length(), 1e-12);
    EXPECT_EQ(a.vias, b.vias);
  }
}

TEST(FastCore, SearchFallbackMatchesClassicOptimum) {
  // Patterns disabled: the bucket-queue bidirectional/A* search alone must
  // still find a route of the same cost as the classic heap Dijkstra.
  for (bool patterns : {true, false}) {
    GlobalRouter classic(t(), region(10), {});
    GlobalRouter fast(t(), region(10), {});
    const std::vector<geom::Point> pins{
        geom::Point{geom::to_nm(1e-6), geom::to_nm(7e-6)},
        geom::Point{geom::to_nm(8e-6), geom::to_nm(2e-6)}};
    const NetRoute a = classic.route("n", pins, {});
    RouteRequest request;
    request.fast = true;
    request.patterns = patterns;
    const NetRoute b = fast.route("n", pins, request);
    ASSERT_TRUE(a.routed);
    ASSERT_TRUE(b.routed);
    EXPECT_NEAR(a.total_length(), b.total_length(), 1e-12);
    EXPECT_EQ(a.vias, b.vias);
  }
}

TEST(FastCore, MultiPinFastRoutesAreSteinerQuality) {
  GlobalRouter fast(t(), region(10), {});
  const geom::Point a{0, 0};
  const geom::Point b{geom::to_nm(6e-6), 0};
  const geom::Point c{geom::to_nm(6e-6), geom::to_nm(6e-6)};
  RouteRequest request;
  request.fast = true;
  const NetRoute nr = fast.route("n", {a, b, c}, request);
  ASSERT_TRUE(nr.routed);
  // Same Steiner-sharing bound the classic core satisfies.
  EXPECT_LT(nr.total_length(), 13e-6);
  EXPECT_GE(nr.total_length(), 11.9e-6);
}

TEST(FastCore, FastCoreIsDeterministic) {
  std::vector<NetRoute> runs;
  for (int run = 0; run < 2; ++run) {
    GlobalRouter fast(t(), region(15), {});
    RouteRequest request;
    request.fast = true;
    Rng rng(7);
    NetRoute last;
    for (int n = 0; n < 6; ++n) {
      std::vector<geom::Point> pts;
      for (int p = 0; p < 3; ++p) {
        pts.push_back(geom::Point{geom::to_nm(rng.uniform(0, 15e-6)),
                                  geom::to_nm(rng.uniform(0, 15e-6))});
      }
      last = fast.route("n" + std::to_string(n), pts, request);
      EXPECT_TRUE(last.routed);
    }
    runs.push_back(last);
  }
  expect_same_route(runs[0], runs[1]);
}

// ---------------------------------------------------------------------------
// Router engines: the backend registry and the negotiated mode's global
// congestion resolution.

TEST(RouterEngineApi, BackendNamesRoundTrip) {
  for (RouterBackend b :
       {RouterBackend::kClassic, RouterBackend::kFast,
        RouterBackend::kPartitioned, RouterBackend::kNegotiated}) {
    const auto parsed = parse_router_backend(router_backend_name(b));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, b);
    auto engine = make_router_engine(
        *std::make_unique<GlobalRouter>(t(), region(5), RouterOptions{}),
        RouterEngineOptions{b});
  }
  EXPECT_FALSE(parse_router_backend("bogus").has_value());
  EXPECT_FALSE(parse_router_backend("").has_value());
}

std::vector<NetPins> three_nets() {
  std::vector<NetPins> nets;
  for (int n = 0; n < 3; ++n) {
    const geom::Coord y = geom::to_nm(2e-6 + 2e-6 * n);
    nets.push_back(NetPins{
        "net" + std::to_string(n),
        {geom::Point{geom::to_nm(1e-6), y},
         geom::Point{geom::to_nm(8e-6), y}}});
  }
  return nets;
}

TEST(RouterEngineApi, ClassicEngineMatchesHistoricSerialLoop) {
  const std::vector<NetPins> nets = three_nets();
  GlobalRouter engine_router(t(), region(10), {});
  RouterEngineOptions eopt;
  eopt.backend = RouterBackend::kClassic;
  const auto engine = make_router_engine(engine_router, eopt);
  const std::vector<NetRoute> via_engine = engine->route_nets(nets);

  GlobalRouter loop_router(t(), region(10), {});
  std::vector<NetRoute> via_loop;
  for (const NetPins& net : nets) {
    RouteRequest request;
    request.with_fallback = true;
    via_loop.push_back(loop_router.route(net.name, net.pins, request));
  }
  ASSERT_EQ(via_engine.size(), via_loop.size());
  for (std::size_t i = 0; i < via_engine.size(); ++i) {
    expect_same_route(via_engine[i], via_loop[i]);
  }
}

/// A congested workload greedy net-order routing CANNOT resolve: three
/// identical short nets on one row with edge_capacity 1, cheap congestion
/// (1.0) and expensive vias (6.0). For the second net, sharing the 10
/// overflowing edges costs ~10 units while detouring one row costs ~26
/// (4 vias + 2 extra steps), so the greedy router overflows; a legal
/// zero-overflow solution plainly exists (spread over three rows).
RouterOptions congested_options() {
  RouterOptions opt;
  opt.edge_capacity = 1;
  opt.congestion_cost = 1.0;
  opt.via_cost = 6.0;
  opt.min_layer = 2;
  opt.max_layer = 3;
  return opt;
}

std::vector<NetPins> congested_nets() {
  std::vector<NetPins> nets;
  const geom::Coord y = geom::to_nm(5e-6);
  for (int n = 0; n < 3; ++n) {
    nets.push_back(NetPins{
        "net" + std::to_string(n),
        {geom::Point{geom::to_nm(2e-6), y},
         geom::Point{geom::to_nm(4e-6), y}}});
  }
  return nets;
}

TEST(NegotiatedRouter, EliminatesOverflowGreedyCannot) {
  const std::vector<NetPins> nets = congested_nets();

  GlobalRouter greedy(t(), region(10), congested_options());
  const auto classic =
      make_router_engine(greedy, RouterEngineOptions{RouterBackend::kClassic});
  const std::vector<NetRoute> greedy_routes = classic->route_nets(nets);
  for (const NetRoute& r : greedy_routes) ASSERT_TRUE(r.routed);
  ASSERT_GT(greedy.total_overflow(), 0)
      << "fixture must actually congest the greedy router";

  GlobalRouter negotiated_router(t(), region(10), congested_options());
  RouterEngineOptions eopt;
  eopt.backend = RouterBackend::kNegotiated;
  const auto negotiated = make_router_engine(negotiated_router, eopt);
  const std::vector<NetRoute> routes = negotiated->route_nets(nets);
  for (const NetRoute& r : routes) ASSERT_TRUE(r.routed);
  EXPECT_EQ(negotiated_router.total_overflow(), 0)
      << "negotiation must converge to a legal solution";
}

TEST(NegotiatedRouter, ZeroIterationsKeepsGreedySolution) {
  const std::vector<NetPins> nets = congested_nets();
  GlobalRouter router(t(), region(10), congested_options());
  RouterEngineOptions eopt;
  eopt.backend = RouterBackend::kNegotiated;
  eopt.negotiation_iterations = 0;
  const auto engine = make_router_engine(router, eopt);
  const std::vector<NetRoute> routes = engine->route_nets(nets);
  for (const NetRoute& r : routes) EXPECT_TRUE(r.routed);
  EXPECT_GT(router.total_overflow(), 0);
}

TEST(NegotiatedRouter, BudgetTripSalvagesBestSoFar) {
  const std::vector<NetPins> nets = congested_nets();
  GlobalRouter router(t(), region(10), congested_options());
  // Enough fuel for the initial pass, not enough to negotiate to zero:
  // the engine must still return a complete routed solution (the
  // best-so-far snapshot), never a torn half-ripped-up state.
  BudgetOptions bopt;
  bopt.max_checks = 12;
  Budget budget(bopt);
  router.set_budget(&budget);
  RouterEngineOptions eopt;
  eopt.backend = RouterBackend::kNegotiated;
  const auto engine = make_router_engine(router, eopt);
  const std::vector<NetRoute> routes = engine->route_nets(nets);
  int routed = 0;
  for (const NetRoute& r : routes) routed += r.routed ? 1 : 0;
  EXPECT_GT(routed, 0);
  // The congestion grid must describe exactly the returned routes: ripping
  // every returned route up must empty it.
  for (const NetRoute& r : routes) {
    if (r.routed) router.rip_up(r);
  }
  EXPECT_EQ(router.total_overflow(), 0);
  EXPECT_EQ(router.congestion_ratio(), 0.0);
}

TEST(NegotiatedRouter, DeterministicAcrossRuns) {
  const std::vector<NetPins> nets = congested_nets();
  std::vector<std::vector<NetRoute>> runs;
  for (int run = 0; run < 2; ++run) {
    GlobalRouter router(t(), region(10), congested_options());
    RouterEngineOptions eopt;
    eopt.backend = RouterBackend::kNegotiated;
    const auto engine = make_router_engine(router, eopt);
    runs.push_back(engine->route_nets(nets));
  }
  ASSERT_EQ(runs[0].size(), runs[1].size());
  for (std::size_t i = 0; i < runs[0].size(); ++i) {
    expect_same_route(runs[0][i], runs[1][i]);
  }
}

}  // namespace
}  // namespace olp::route

// Conservation-law property tests for the simulator: Kirchhoff's current law
// at source branches, AC superposition/linearity, transient charge
// conservation, and energy bookkeeping on randomized networks.

#include <gtest/gtest.h>

#include "circuits/common.hpp"
#include "spice/measure.hpp"
#include "spice/simulator.hpp"
#include "util/rng.hpp"

namespace olp::spice {
namespace {

/// Random resistive mesh between n nodes driven by one source; every node
/// has a path to ground.
Circuit random_mesh(std::uint64_t seed, int n_nodes) {
  Rng rng(seed);
  Circuit c;
  std::vector<NodeId> nodes;
  for (int k = 0; k < n_nodes; ++k) {
    nodes.push_back(c.node("n" + std::to_string(k)));
  }
  c.add_vsource("vdrv", nodes[0], kGround,
                Waveform::dc(rng.uniform(0.2, 1.5)));
  for (int k = 0; k < n_nodes; ++k) {
    // Chain to the next node and a random ground tie.
    if (k + 1 < n_nodes) {
      c.add_resistor("rc" + std::to_string(k), nodes[static_cast<std::size_t>(k)],
                     nodes[static_cast<std::size_t>(k + 1)],
                     rng.uniform(0.5e3, 5e3));
    }
    if (rng.chance(0.6)) {
      c.add_resistor("rg" + std::to_string(k), nodes[static_cast<std::size_t>(k)],
                     kGround, rng.uniform(1e3, 20e3));
    }
  }
  c.add_resistor("rtie", nodes.back(), kGround, 2e3);
  return c;
}

// Property: the source current equals the total current returned to ground
// through the resistors tied to ground (KCL on the ground node).
class KclMesh : public ::testing::TestWithParam<int> {};

TEST_P(KclMesh, GroundCurrentBalances) {
  const Circuit c =
      random_mesh(static_cast<std::uint64_t>(GetParam()), 5 + GetParam() % 5);
  Simulator sim(c);
  const OpResult op = sim.op();
  ASSERT_TRUE(op.converged);
  const double i_src = sim.vsource_current(op.x, "vdrv");
  double i_ground = 0.0;
  for (const Resistor& r : c.resistors()) {
    if (r.b == kGround) i_ground += sim.voltage(op.x, r.a) / r.r;
    if (r.a == kGround) i_ground -= sim.voltage(op.x, r.b) / r.r;
  }
  // Source branch current (p->n) is minus the delivered current.
  EXPECT_NEAR(-i_src, i_ground, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KclMesh, ::testing::Range(1, 13));

TEST(Kcl, MosfetCircuitBalancesSupplyCurrents) {
  // All current entering through vdd must leave through ground sources.
  Circuit c;
  const int nm = c.add_model(circuits::default_nmos());
  const int pm = c.add_model(circuits::default_pmos());
  const NodeId vdd = c.node("vdd");
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add_vsource("vs", vdd, kGround, Waveform::dc(0.8));
  c.add_vsource("vi", in, kGround, Waveform::dc(0.4));
  Mosfet mn;
  mn.name = "mn";
  mn.d = out;
  mn.g = in;
  mn.s = kGround;
  mn.b = kGround;
  mn.model = nm;
  mn.w = 1e-6;
  mn.l = 14e-9;
  c.add_mosfet(mn);
  Mosfet mp = mn;
  mp.name = "mp";
  mp.s = vdd;
  mp.b = vdd;
  mp.model = pm;
  c.add_mosfet(mp);
  Simulator sim(c);
  const OpResult op = sim.op();
  ASSERT_TRUE(op.converged);
  // Device currents: PMOS sources what NMOS sinks (series stack at OP).
  const std::vector<MosOperatingPoint> ops = sim.mos_operating_points(op.x);
  EXPECT_NEAR(ops[0].id, -ops[1].id, 1e-9);
  // The vdd branch carries exactly the PMOS current.
  EXPECT_NEAR(std::fabs(sim.vsource_current(op.x, "vs")),
              std::fabs(ops[1].id), 1e-9);
}

// Property: AC solutions are linear in the excitation magnitude.
class AcLinearity : public ::testing::TestWithParam<double> {};

TEST_P(AcLinearity, ScalesWithMagnitude) {
  const double mag = GetParam();
  auto response = [&](double m) {
    Circuit c;
    const NodeId in = c.node("in");
    const NodeId out = c.node("out");
    c.add_vsource("vin", in, kGround, Waveform::dc(0.0), m);
    c.add_resistor("r", in, out, 1e3);
    c.add_capacitor("cc", out, kGround, 1e-12);
    Simulator sim(c);
    const OpResult op = sim.op();
    AcOptions ac;
    ac.frequencies = {200e6};
    const AcResult r = sim.ac(op.x, ac);
    return sim.ac_voltage(r.solutions[0], out);
  };
  const std::complex<double> v1 = response(1.0);
  const std::complex<double> vm = response(mag);
  EXPECT_NEAR(std::abs(vm - mag * v1), 0.0, 1e-9 * mag);
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, AcLinearity,
                         ::testing::Values(0.5, 2.0, 10.0, 100.0));

TEST(Conservation, TransientChargeOnFloatingCap) {
  // A capacitor discharging through a resistor: the integrated resistor
  // current equals the lost charge.
  Circuit c;
  const NodeId n = c.node("n");
  c.add_resistor("r", n, kGround, 1e3);
  c.add_capacitor("cc", n, kGround, 1e-12);
  c.set_initial_condition(n, 1.0);
  Simulator sim(c);
  TranOptions tr;
  tr.tstop = 5e-9;
  tr.dt = 5e-12;
  const TranResult res = sim.tran(tr);
  ASSERT_TRUE(res.ok);
  const std::vector<double> v = tran_waveform(sim, res, n);
  // Integrate i = v/R over the run (trapezoid).
  double charge = 0.0;
  for (std::size_t k = 1; k < res.times.size(); ++k) {
    charge += 0.5 * (v[k] + v[k - 1]) / 1e3 * (res.times[k] - res.times[k - 1]);
  }
  const double lost = 1e-12 * (v.front() - v.back());
  EXPECT_NEAR(charge, lost, 0.01 * lost);
}

TEST(Conservation, ResistorPowerMatchesSourcePower) {
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  c.add_vsource("vs", a, kGround, Waveform::dc(2.0));
  c.add_resistor("r1", a, b, 1e3);
  c.add_resistor("r2", b, kGround, 3e3);
  Simulator sim(c);
  const OpResult op = sim.op();
  ASSERT_TRUE(op.converged);
  const double i = -sim.vsource_current(op.x, "vs");
  const double p_source = 2.0 * i;
  const double va = sim.voltage(op.x, a);
  const double vb = sim.voltage(op.x, b);
  const double p_r = (va - vb) * (va - vb) / 1e3 + vb * vb / 3e3;
  EXPECT_NEAR(p_source, p_r, 1e-9);
}

}  // namespace
}  // namespace olp::spice

#pragma once
// Shared JSONL (one JSON document per line) plumbing.
//
// Every machine-readable line the library emits (batch reports, service
// responses, telemetry) and every line it ingests (service requests) goes
// through these helpers, so escaping is hardened in ONE place:
//
//   escape()        string body -> JSON string escaping (quotes, backslashes,
//                   \n/\r/\t, \u00XX control codes; non-ASCII UTF-8 bytes
//                   pass through verbatim — they are valid JSON).
//   unescape()      exact inverse, including \uXXXX (with UTF-16 surrogate
//                   pairs) decoded to UTF-8. escape/unescape round-trip any
//                   byte string (tests/test_util.cpp proves it).
//   parse_object()  strict parser for one FLAT JSON object — string, number,
//                   boolean and null members only, no nesting — which is
//                   exactly the shape of a service request line. Malformed
//                   input yields false plus a position-bearing error message,
//                   never an exception or a partial result.
//
// The deliberately tiny value model keeps the service protocol honest: a
// request is a flat bag of scalars, so misuse (nested payloads, duplicate
// keys) is rejected at the door instead of half-understood.

#include <map>
#include <string>

namespace olp::jsonl {

/// JSON string escaping of an arbitrary byte string (see file comment).
std::string escape(const std::string& raw);

/// Inverse of escape(): decodes every JSON escape, including \uXXXX and
/// surrogate pairs, to UTF-8 bytes. Returns false (and sets *error when
/// non-null) on any invalid escape; *out is untouched on failure.
bool unescape(const std::string& escaped, std::string* out,
              std::string* error = nullptr);

/// One scalar member of a flat JSON object.
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;

  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_bool() const { return kind == Kind::kBool; }
};

using Object = std::map<std::string, Value>;

/// Parses one complete flat JSON object from `line` (surrounding whitespace
/// allowed, nothing else before or after). Duplicate keys and nested
/// objects/arrays are errors. On failure returns false, sets *error (when
/// non-null) and leaves *out empty.
bool parse_object(const std::string& line, Object* out,
                  std::string* error = nullptr);

}  // namespace olp::jsonl

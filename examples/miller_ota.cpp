// Two-stage Miller OTA composed from library primitives, with a MOM
// capacitor primitive as the compensation element. Demonstrates composing
// circuits directly from the primitive library (first stage: tail mirror +
// DP + active mirror load; second stage: common-source + current-source
// load; Miller cap across the second stage) and the effect of the extracted
// parasitics on the compensated response.

#include <iostream>

#include "circuits/common.hpp"
#include "pcell/capacitor.hpp"
#include "pcell/generator.hpp"
#include "spice/measure.hpp"
#include "spice/simulator.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

namespace {

using namespace olp;

std::map<std::string, double> measure(const tech::Technology& t,
                                      bool extracted) {
  using circuits::InstanceSpec;

  std::vector<InstanceSpec> instances;
  {
    InstanceSpec cm;
    cm.name = "cmtail";
    cm.netlist = pcell::make_current_mirror(1);
    cm.fins = 256;
    cm.port_nets = {{"ref", "iref"}, {"out", "tail"}, {"s", "vssa"}};
    instances.push_back(cm);
  }
  {
    InstanceSpec dp;
    dp.name = "dp";
    dp.netlist = pcell::make_diff_pair();
    dp.fins = 192;
    dp.port_nets = {{"da", "d1"},
                    {"db", "o1"},
                    {"ga", "vip"},
                    {"gb", "vin"},
                    {"s", "tail"}};
    instances.push_back(dp);
  }
  {
    InstanceSpec cl;
    cl.name = "cmload";
    cl.netlist = pcell::make_active_current_mirror();
    cl.fins = 128;
    cl.port_nets = {{"ref", "d1"}, {"out", "o1"}, {"vdd", "vdd"}};
    instances.push_back(cl);
  }
  {
    // Second stage: PMOS common-source driver (gate at o1).
    InstanceSpec cs;
    cs.name = "drv";
    cs.netlist = pcell::make_current_source(spice::MosType::kPmos);
    cs.fins = 256;
    cs.port_nets = {{"out", "out"}, {"bias", "o1"}, {"s", "vdd"}};
    instances.push_back(cs);
  }
  {
    // Second-stage tail: NMOS mirror slaved to the same reference.
    InstanceSpec cm2;
    cm2.name = "cmtail2";
    cm2.netlist = pcell::make_current_mirror(1);
    cm2.fins = 256;
    cm2.port_nets = {{"ref", "iref"}, {"out", "out"}, {"s", "vssa"}};
    instances.push_back(cm2);
  }

  circuits::Realization real =
      circuits::schematic_realization(instances, t);
  real.ideal = !extracted;

  circuits::BuildContext bc = circuits::make_build_context();
  const spice::NodeId vdd = bc.net("vdd");
  const spice::NodeId vssa = bc.net("vssa");
  circuits::instantiate(bc, instances, real, t);
  bc.ckt.add_vsource("vdd_src", vdd, 0, spice::Waveform::dc(t.vdd));
  bc.ckt.add_vsource("vss_src", vssa, 0, spice::Waveform::dc(0.0));
  bc.ckt.add_isource("iref_src", 0, bc.net("iref"),
                     spice::Waveform::dc(300e-6));
  bc.ckt.add_vsource("vip_src", bc.net("vip"), 0,
                     spice::Waveform::dc(0.5), 0.5, 0.0);
  bc.ckt.add_vsource("vin_src", bc.net("vin"), 0,
                     spice::Waveform::dc(0.5), 0.5, M_PI);
  bc.ckt.add_capacitor("cl", bc.net("out"), 0, 500e-15);

  // Miller compensation: a MOM capacitor primitive across the second stage,
  // including its series (comb) resistance, which conveniently acts as a
  // nulling resistor.
  const pcell::MomCapLayout cc =
      pcell::generate_mom_cap(t, {40, 6e-6, tech::Layer::kM3});
  const spice::NodeId cc_mid = bc.ckt.node("cc_mid");
  bc.ckt.add_resistor("cc_rs", bc.net("o1"), cc_mid,
                      std::max(cc.series_res, 1.0));
  bc.ckt.add_capacitor("cc", cc_mid, bc.net("out"), cc.capacitance);

  spice::Simulator sim(bc.ckt);
  const spice::OpResult op = sim.op();
  std::map<std::string, double> m;
  if (!op.converged) return m;
  m["cc_fF"] = cc.capacitance * 1e15;
  m["current_ua"] = std::fabs(sim.vsource_current(op.x, "vdd_src")) * 1e6;

  spice::AcOptions ac;
  ac.frequencies = spice::log_frequencies(1e4, 1e11, 16);
  const spice::AcResult r = sim.ac(op.x, ac);
  const std::vector<double> mag =
      spice::ac_magnitude(sim, r, bc.ckt.find_node("out"));
  const std::vector<double> ph =
      spice::ac_phase_deg(sim, r, bc.ckt.find_node("out"));
  m["gain_db"] = spice::db(mag.front());
  if (const auto ugf = spice::unity_gain_frequency(ac.frequencies, mag)) {
    m["ugf_mhz"] = *ugf / 1e6;
  }
  if (const auto pm = spice::phase_margin_deg(ac.frequencies, mag, ph)) {
    double margin = *pm;
    while (margin > 180.0) margin -= 360.0;
    while (margin < -180.0) margin += 360.0;
    m["pm_deg"] = std::fabs(margin);
  }
  return m;
}

}  // namespace

int main() {
  set_log_level(log_level_from_env("OLP_LOG_LEVEL", LogLevel::kError));
  const tech::Technology t = tech::make_default_finfet_tech();

  const auto sch = measure(t, false);
  const auto ext = measure(t, true);

  TextTable table(
      "Two-stage Miller OTA from library primitives (MOM compensation cap)");
  table.set_header({"metric", "schematic", "extracted"});
  auto row = [&](const std::string& label, const std::string& key, int dec) {
    auto cell = [&](const std::map<std::string, double>& m) {
      const auto it = m.find(key);
      return it == m.end() ? std::string("-") : fixed(it->second, dec);
    };
    table.add_row({label, cell(sch), cell(ext)});
  };
  row("Compensation cap (fF)", "cc_fF", 1);
  row("Supply current (uA)", "current_ua", 0);
  row("DC gain (dB)", "gain_db", 1);
  row("UGF (MHz)", "ugf_mhz", 0);
  row("Phase margin (deg)", "pm_deg", 1);
  std::cout << table;
  std::cout << "\nTwo gain stages compose to ~2x the single-stage dB gain;\n"
               "the MOM primitive's comb resistance doubles as the nulling\n"
               "resistor of the classic Miller compensation.\n";
  return 0;
}

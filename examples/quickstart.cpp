// Quickstart: optimize one differential-pair primitive end to end.
//
// Demonstrates the core public API:
//   1. build the synthetic FinFET technology,
//   2. enumerate and generate DP layout configurations (nfin, nf, m, pattern),
//   3. evaluate primitive metrics by simulation (schematic vs extracted),
//   4. run Algorithm 1 (selection + tuning) and print the chosen options.

#include <iostream>

#include "core/optimizer.hpp"
#include "circuits/common.hpp"
#include "pcell/generator.hpp"
#include "tech/technology.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace olp;

  const tech::Technology t = tech::make_default_finfet_tech();
  std::cout << "Technology: " << t.name << " (vdd = " << t.vdd << " V)\n\n";

  // A differential pair sized like the paper's running example:
  // W/L = 46 um / 14 nm realized as 960 fins per device.
  const pcell::PrimitiveNetlist dp = pcell::make_diff_pair();
  const int fins = 960;

  // Bias conditions as a circuit-level schematic simulation would supply
  // them (Algorithm 1 line 3).
  core::BiasContext bias;
  bias.vdd = t.vdd;
  bias.bias_current = 700e-6;
  bias.port_voltage = {{"ga", 0.5}, {"gb", 0.5}, {"da", 0.45}, {"db", 0.45}};
  bias.port_load_cap = {{"da", 25e-15}, {"db", 25e-15}};

  const core::PrimitiveEvaluator evaluator(
      t, circuits::default_nmos(), circuits::default_pmos(), bias);
  const pcell::PrimitiveGenerator generator(t);
  const core::PrimitiveOptimizer optimizer(generator, evaluator);

  // Schematic reference values.
  const core::MetricValues ref = optimizer.schematic_reference(dp, fins);
  std::cout << "Schematic reference:\n";
  for (const auto& [kind, value] : ref) {
    std::cout << "  " << core::metric_name(kind) << " = "
              << units::eng(value) << '\n';
  }
  std::cout << '\n';

  // Algorithm 1: selection into aspect-ratio bins + tuning.
  core::OptimizerOptions opt;
  opt.bins = 3;
  const std::vector<core::LayoutCandidate> options =
      optimizer.optimize(dp, fins, opt);

  TextTable table("Optimized DP layout options (one per aspect-ratio bin)");
  table.set_header({"config", "aspect", "area (um^2)", "tuning", "cost"});
  for (const core::LayoutCandidate& cand : options) {
    std::string tuning;
    for (const auto& [net, wires] : cand.tuning) {
      tuning += net + "x" + std::to_string(wires) + " ";
    }
    table.add_row({cand.layout.config.to_string(),
                   fixed(cand.layout.aspect_ratio(), 2),
                   fixed(cand.layout.area() * 1e12, 2), tuning,
                   fixed(cand.cost.total, 2)});
  }
  std::cout << table;
  std::cout << "\nEach option is a placer-ready layout; the placer picks the\n"
               "aspect ratio that best fits the floorplan (paper Sec. III-A).\n";
  return 0;
}

// olp_serviced: the resident layout service daemon.
//
// Speaks the JSONL protocol of service/request.hpp on stdin/stdout — one
// request per line in, one JSON event per line out. Run it interactively:
//
//   $ build/examples/olp_serviced
//   {"op":"ping"}
//   {"event":"pong"}
//   {"op":"submit","client":"alice","circuit":"vco","mode":"conventional"}
//   {"id":"r1","event":"accepted","queue_depth":1}
//   {"id":"r1","event":"done","status":"succeeded",...}
//   {"op":"drain"}
//   {"event":"drained","cancelled":false}
//
// or drive it from scripts (tests/run_service_smoke.sh pipes a FIFO in).
// SIGTERM/SIGINT trigger a graceful drain: in-flight and queued jobs
// finish, the cache snapshot is flushed, then the process exits 0. SIGHUP
// (or the {"op":"reload"} verb) hot-reloads configuration WITHOUT dropping
// connections or queued work: the OLP_SERVICE_CONFIG file (KEY=VALUE lines
// using the same OLP_* names) is re-read and applied to queue bounds,
// worker count, rate limits, snapshot/metrics cadence and transport limits.
//
// Network transports (POSIX): when OLP_SERVICE_SOCKET names a unix-domain
// path and/or OLP_SERVICE_TCP names a loopback port (0 = ephemeral), the
// daemon serves MANY concurrent connections through one poll-based
// supervisor (service/transport.hpp) speaking the same JSONL protocol —
// per-connection framing bounds, slow-loris read deadlines, and
// connection-stable identities feeding the per-client quotas and token
// buckets. Each listener announces itself on stdout:
//   {"event":"listening","transport":"tcp","port":<actual>}
// If an explicitly requested transport cannot start, the daemon reports
// {"event":"socket_error",...} on stderr and exits NON-ZERO — a supervisor
// that asked for a socket must not end up with a silently stdin-only
// service. stdin remains the primary transport; EOF there drains the
// daemon.
//
// Durability: OLP_SERVICE_JOURNAL names the request journal. Accepted
// submits are journaled before "accepted" is emitted; after kill -9 the
// next start replays unfinished entries (idempotency keys deduplicated).
//
// Configuration is entirely environment-driven (see util/env.hpp):
// OLP_SERVICE_WORKERS, OLP_SERVICE_QUEUE_DEPTH, OLP_SERVICE_CLIENT_QUEUE,
// OLP_SERVICE_RETRIES, OLP_SERVICE_SNAPSHOT, OLP_SERVICE_SNAPSHOT_EVERY,
// OLP_SERVICE_JOURNAL, OLP_SERVICE_RATE, OLP_SERVICE_RATE_BURST,
// OLP_SERVICE_READ_TIMEOUT_MS, OLP_SERVICE_MAX_LINE, OLP_SERVICE_MAX_CONNS,
// OLP_SERVICE_CONFIG, OLP_CACHE_MAX_ENTRIES, OLP_THREADS. Live metrics:
// OLP_OBS=1 turns on the process-wide obs registry (the {"op":"metrics"}
// verb dumps it), and OLP_METRICS_PATH appends a metrics JSONL line every
// OLP_METRICS_EVERY completed jobs and at drain.

#include <atomic>
#include <csignal>
#include <cstddef>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include <olp/olp.hpp>

namespace {

std::atomic<bool> g_drain_requested{false};
std::atomic<bool> g_reload_requested{false};

void on_terminate(int) { g_drain_requested.store(true); }
void on_reload(int) { g_reload_requested.store(true); }

/// Reads a KEY=VALUE config file (OLP_* names, '#' comments) into numeric
/// overrides. Unknown keys are ignored; malformed lines are skipped — a bad
/// config file degrades to a partial reload, never a crash.
std::map<std::string, double> read_config_file(const std::string& path) {
  // OLP_* environment name -> reload() knob name.
  static const std::map<std::string, std::string> kKnobs = {
      {"OLP_SERVICE_QUEUE_DEPTH", "queue_depth"},
      {"OLP_SERVICE_CLIENT_QUEUE", "client_queue"},
      {"OLP_SERVICE_WORKERS", "workers"},
      {"OLP_SERVICE_SNAPSHOT_EVERY", "snapshot_every"},
      {"OLP_SERVICE_RETRIES", "retries"},
      {"OLP_METRICS_EVERY", "metrics_every"},
      {"OLP_SERVICE_RATE", "rate"},
      {"OLP_SERVICE_RATE_BURST", "burst"},
      {"OLP_SERVICE_READ_TIMEOUT_MS", "read_timeout_ms"},
      {"OLP_SERVICE_MAX_CONNS", "max_connections"},
      {"OLP_SERVICE_MAX_LINE", "max_line_bytes"},
  };
  std::map<std::string, double> values;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    const auto it = kKnobs.find(line.substr(0, eq));
    if (it == kKnobs.end()) continue;
    try {
      values[it->second] = std::stod(line.substr(eq + 1));
    } catch (...) {
      // skip malformed value
    }
  }
  return values;
}

/// Applies a SIGHUP reload: service knobs plus transport limits, sourced
/// from the OLP_SERVICE_CONFIG file (the process environment cannot change
/// after exec, so a runtime reconfiguration needs a file to read).
void apply_reload(olp::service::LayoutService* service,
                  olp::service::TransportSupervisor* transport,
                  const olp::service::TransportOptions& base) {
  const std::string config = olp::env::str("OLP_SERVICE_CONFIG");
  std::map<std::string, double> values;
  if (!config.empty()) values = read_config_file(config);
  service->reload(values);
  if (transport->running()) {
    long timeout = base.read_timeout_ms;
    std::size_t conns = base.max_connections;
    std::size_t line_bytes = base.max_line_bytes;
    const auto find = [&values](const char* key, double* out) {
      const auto it = values.find(key);
      if (it == values.end()) return false;
      *out = it->second;
      return true;
    };
    double v = 0.0;
    if (find("read_timeout_ms", &v)) timeout = static_cast<long>(v);
    if (find("max_connections", &v)) conns = static_cast<std::size_t>(v);
    if (find("max_line_bytes", &v)) line_bytes = static_cast<std::size_t>(v);
    transport->reload_limits(timeout, conns, line_bytes);
  }
  std::cerr << "{\"event\":\"reloaded\",\"source\":\""
            << olp::jsonl::escape(config.empty() ? "env" : config) << "\"}\n";
}

}  // namespace

int main() {
  // Interrupting reads matters: SIGTERM must break std::getline on stdin so
  // the main loop can drain, and SIGHUP must break it so the reload hook
  // runs. sigaction WITHOUT SA_RESTART does exactly that (plain std::signal
  // may set SA_RESTART on some platforms).
#if defined(__unix__) || defined(__APPLE__)
  struct sigaction sa = {};
  sa.sa_handler = on_terminate;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  struct sigaction hup = {};
  hup.sa_handler = on_reload;
  ::sigaction(SIGHUP, &hup, nullptr);
  // A client vanishing mid-write must be an EPIPE errno, not process death.
  std::signal(SIGPIPE, SIG_IGN);
#else
  std::signal(SIGTERM, on_terminate);
  std::signal(SIGINT, on_terminate);
#endif

  const olp::tech::Technology technology = olp::tech::make_default_finfet_tech();
  olp::service::ServiceOptions options;
  olp::service::LayoutService service(technology, options);
  service.start();

  // Network transports. Both are optional; requesting one that cannot
  // start is a hard error (exit non-zero) — see the file comment.
  olp::service::TransportOptions transport_options;
  transport_options.unix_path = olp::env::str("OLP_SERVICE_SOCKET");
  transport_options.tcp_port =
      static_cast<int>(olp::env::integer("OLP_SERVICE_TCP", -1));
  transport_options.max_line_bytes = static_cast<std::size_t>(olp::env::integer(
      "OLP_SERVICE_MAX_LINE",
      static_cast<long>(olp::service::kMaxRequestLineBytes)));
  transport_options.read_timeout_ms =
      olp::env::integer("OLP_SERVICE_READ_TIMEOUT_MS", 30000);
  transport_options.max_connections = static_cast<std::size_t>(
      olp::env::integer("OLP_SERVICE_MAX_CONNS", 64));

  olp::service::TransportSupervisor transport;
  const bool transport_requested = !transport_options.unix_path.empty() ||
                                   transport_options.tcp_port >= 0;
  if (transport_requested) {
    std::string error;
    const bool ok = transport.start(
        transport_options,
        [&service](const std::string& identity, const std::string& line,
                   const olp::service::TransportSupervisor::Emit& emit) {
          if (!service.handle_line(identity, line, emit)) {
            // A drain/shutdown verb arrived over a socket; the service has
            // drained. Nudge the stdin loop so the process exits too.
            g_drain_requested.store(true);
            ::raise(SIGTERM);
          }
        },
        &error);
    if (!ok) {
      std::cerr << "{\"event\":\"socket_error\",\"error\":\""
                << olp::jsonl::escape(error) << "\"}\n";
      // The operator explicitly asked for this transport; running without
      // it would be a silent lie. Fail loudly instead.
      return 1;
    }
    if (!transport_options.unix_path.empty()) {
      std::cout << "{\"event\":\"listening\",\"transport\":\"unix\",\"path\":\""
                << olp::jsonl::escape(transport_options.unix_path) << "\"}\n"
                << std::flush;
    }
    if (transport_options.tcp_port >= 0) {
      std::cout << "{\"event\":\"listening\",\"transport\":\"tcp\",\"port\":"
                << transport.tcp_port() << "}\n"
                << std::flush;
    }
  }

  // serve() returns on stdin EOF, a drain/shutdown verb (here or over a
  // socket), or SIGTERM/SIGINT interrupting the read — and has drained the
  // service by then. SIGHUP lands in the hook: reload, keep serving.
  service.serve(std::cin, std::cout, [&] {
    if (g_reload_requested.exchange(false)) {
      apply_reload(&service, &transport, transport_options);
      // The interrupted read left error state on the C stdin stream too
      // (std::cin is stdio-synced); clear it or the next getline would
      // report a spurious EOF and drain the daemon after one reload.
      std::clearerr(stdin);
      return !g_drain_requested.load();
    }
    return false;  // SIGTERM/SIGINT/EOF: fall through to the drain path
  });

  // Transport lifetime counters on stderr before teardown — the smoke test
  // proves multi-client concurrency (max_active) and shed accounting here.
  if (transport_requested) {
    const olp::service::TransportStats ts = transport.stats();
    std::cerr << "{\"event\":\"transport_stats\",\"accepted\":" << ts.accepted
              << ",\"refused\":" << ts.refused
              << ",\"max_active\":" << ts.max_active
              << ",\"lines_dispatched\":" << ts.lines_dispatched
              << ",\"frames_oversized\":" << ts.frames_oversized
              << ",\"read_timeouts\":" << ts.read_timeouts
              << ",\"torn_frames_discarded\":" << ts.torn_frames_discarded
              << ",\"partial_writes\":" << ts.partial_writes
              << ",\"write_errors\":" << ts.write_errors << "}\n";
  }
  transport.stop();

  // Final stats on stderr — keeps stdout a pure JSONL event stream.
  std::cerr << service.stats().to_json() << "\n";
  return 0;
}

#include "circuits/common_source.hpp"

#include <cmath>

#include "spice/measure.hpp"
#include "spice/simulator.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace olp::circuits {

CommonSourceAmp::CommonSourceAmp(const tech::Technology& technology)
    : tech_(technology) {
  {
    InstanceSpec cs;
    cs.name = "cs";
    cs.netlist = pcell::make_common_source();
    cs.fins = 96;
    cs.port_nets = {{"in", "vin"}, {"out", "out"}, {"s", "vssa"}};
    instances_.push_back(cs);
  }
  {
    // Diode-connected replica of the input device generating its bias:
    // common-mode LDE Vth shifts of the input device track the replica and
    // cancel, as with any mirror-derived bias. The replica is the *same*
    // primitive with the same size and bias signature, so the flow realizes
    // both with the identical layout (replica cells copy the unit cell).
    InstanceSpec nb;
    nb.name = "nbias";
    nb.netlist = pcell::make_common_source();
    nb.fins = 96;
    nb.port_nets = {{"in", "vbn"}, {"out", "vbn"}, {"s", "vssa"}};
    instances_.push_back(nb);
  }
  {
    // PMOS mirror load: the diode reference absorbs common-mode Vth shifts
    // so the load current tracks the ideal reference (as in the paper, where
    // I_M2 stays at its schematic value across layout variants).
    InstanceSpec load;
    load.name = "load";
    load.netlist = pcell::make_active_current_mirror();
    load.fins = 128;
    load.port_nets = {{"ref", "biasd"}, {"out", "out"}, {"vdd", "vdd"}};
    instances_.push_back(load);
  }
}

spice::Circuit CommonSourceAmp::build(const Realization& realization) const {
  BuildContext bc = make_build_context(realization.corner);
  const spice::NodeId vdd = bc.net("vdd");
  const spice::NodeId vssa = bc.net("vssa");
  instantiate(bc, instances_, realization, tech_, "0", "vdd");
  bc.ckt.add_vsource("vdd_src", vdd, spice::kGround,
                     spice::Waveform::dc(tech_.vdd));
  bc.ckt.add_vsource("vss_src", vssa, spice::kGround,
                     spice::Waveform::dc(0.0));
  // Ideal references (external bias generators, not counted against the
  // amplifier supply): one pulled out of the PMOS diode, one pushed into the
  // NMOS replica diode.
  bc.ckt.add_isource("iref_src", bc.net("biasd"), spice::kGround,
                     spice::Waveform::dc(target_current_));
  bc.ckt.add_isource("irefn_src", spice::kGround, bc.net("vbn"),
                     spice::Waveform::dc(target_current_));
  // AC excitation rides on the replica bias through an ideal level shifter.
  bc.ckt.add_vsource("vin_src", bc.net("vin"), bc.net("vbn"),
                     spice::Waveform::dc(0.0), 1.0);
  bc.ckt.add_capacitor("cl", bc.net("out"), spice::kGround, load_cap_);
  return bc.ckt;
}

bool CommonSourceAmp::prepare() {
  const Realization schem = schematic_realization(instances_, tech_);
  spice::Circuit ckt = build(schem);
  spice::Simulator sim(ckt);
  const spice::OpResult op = sim.op();
  if (!op.converged) {
    OLP_ERROR << "CS amplifier schematic operating point failed";
    return false;
  }
  const double vbn = sim.voltage(op.x, ckt.find_node("vbn"));
  const double vout = sim.voltage(op.x, ckt.find_node("out"));
  const double vbiasd = sim.voltage(op.x, ckt.find_node("biasd"));
  vin_bias_ = vbn;
  vbias_p_ = vbiasd;
  OLP_INFO << "CS amp schematic: vbn=" << vbn << " vout=" << vout
           << " vbiasd=" << vbiasd;

  for (InstanceSpec& inst : instances_) {
    inst.bias.vdd = tech_.vdd;
    inst.bias.bias_current = target_current_;
    if (inst.name == "cs" || inst.name == "nbias") {
      // Identical bias signature so the flow dedups replica and amplifier
      // onto the same optimized layout.
      inst.bias.port_voltage = {{"in", vbn}, {"out", vout}, {"s", 0.0}};
      inst.bias.port_load_cap = {{"out", load_cap_ + 8e-15}};
    } else {
      inst.bias.port_voltage = {{"ref", vbiasd}, {"out", vout}};
      inst.bias.port_load_cap = {{"out", load_cap_ + 8e-15}};
    }
  }
  return true;
}

std::map<std::string, double> CommonSourceAmp::measure(
    const Realization& realization) const {
  spice::Circuit ckt = build(realization);
  spice::Simulator sim(ckt);
  std::map<std::string, double> out;
  const spice::OpResult op = sim.op();
  if (!op.converged) {
    OLP_WARN << "CS amp measurement OP failed";
    return out;
  }
  out["power_uw"] =
      std::fabs(sim.vsource_current(op.x, "vdd_src")) * tech_.vdd * 1e6;
  out["current_ua"] = std::fabs(sim.vsource_current(op.x, "vdd_src")) * 1e6;

  spice::AcOptions ac;
  ac.frequencies = spice::log_frequencies(1e6, 1e11, 24);
  const spice::AcResult acr = sim.ac(op.x, ac);
  const std::vector<double> mag =
      spice::ac_magnitude(sim, acr, ckt.find_node("out"));
  out["gain_db"] = spice::db(mag.front());
  if (const auto ugf = spice::unity_gain_frequency(ac.frequencies, mag)) {
    out["ugf_ghz"] = *ugf / 1e9;
  }
  if (const auto f3 = spice::bandwidth_3db(ac.frequencies, mag)) {
    out["f3db_mhz"] = *f3 / 1e6;
  }
  return out;
}

}  // namespace olp::circuits

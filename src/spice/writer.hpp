#pragma once
// Netlist writer: serializes a Circuit back to the SPICE dialect understood
// by parser.hpp. Useful for dumping extracted testbenches, diffing
// realizations, and exchanging decks with external tools; write->parse round
// trips reproduce the circuit.

#include <string>

#include "spice/circuit.hpp"

namespace olp::spice {

/// Serializes the circuit (models, devices, initial conditions) as netlist
/// text. Waveforms are emitted in source syntax (DC/PULSE/SIN); PWL sources
/// are emitted as their sample list.
std::string write_netlist(const Circuit& circuit,
                          const std::string& title = "olp netlist");

}  // namespace olp::spice

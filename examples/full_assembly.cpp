// Full layout assembly of the optimized 5T OTA: run the flow, merge the
// placed primitive layouts with the realized (width-constrained) routes,
// write the result as SVG, and dump the extracted circuit as a SPICE deck.
//
// Produces in the working directory:
//   ota_assembled.svg  - the full floorplan with routes
//   ota_dp.svg         - the chosen differential-pair primitive layout
//   ota_extracted.sp   - the extracted full-circuit netlist

#include <fstream>
#include <iostream>

#include "circuits/assembly.hpp"
#include "circuits/ota5t.hpp"
#include "geom/svg.hpp"
#include "spice/writer.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace olp;
  set_log_level(log_level_from_env("OLP_LOG_LEVEL", LogLevel::kError));
  const tech::Technology t = tech::make_default_finfet_tech();

  circuits::Ota5T ota(t);
  if (!ota.prepare()) {
    std::cerr << "schematic preparation failed\n";
    return 1;
  }
  circuits::FlowEngine engine(t, {});
  circuits::FlowReport report;
  const circuits::Realization real =
      engine.run(circuits::FlowMode::kOptimize, ota.instances(), ota.routed_nets(), &report);

  // Assembled top-level layout.
  const geom::Layout top =
      circuits::assemble_layout(t, ota.instances(), real, report);
  geom::write_svg(top, "ota_assembled.svg");
  std::cout << "wrote ota_assembled.svg ("
            << fixed(circuits::assembled_area(top) * 1e12, 1)
            << " um^2 bounding box, " << top.shapes().size()
            << " shapes)\n";

  // The chosen DP primitive on its own, with net labels.
  geom::SvgOptions dp_opt;
  dp_opt.label_nets = true;
  geom::write_svg(real.layouts.at("dp").geometry, "ota_dp.svg", dp_opt);
  std::cout << "wrote ota_dp.svg ("
            << real.layouts.at("dp").config.to_string() << ")\n";

  // Extracted netlist of the full realization.
  {
    circuits::BuildContext bc = circuits::make_build_context();
    bc.net("vdd");
    bc.net("vssa");
    circuits::instantiate(bc, ota.instances(), real, t);
    const std::string deck =
        spice::write_netlist(bc.ckt, "optimized 5T OTA, extracted");
    std::ofstream out("ota_extracted.sp");
    out << deck;
    std::cout << "wrote ota_extracted.sp (" << bc.ckt.device_count()
              << " devices)\n";
  }
  return 0;
}

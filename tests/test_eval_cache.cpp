// Eval-cache tests: the canonical key must distinguish every input an
// evaluation depends on, hits must return bit-identical metrics without new
// simulation, quarantined evaluations must never be memoized (so their
// diagnostics re-fire), and the cache must be safe to share across TaskPool
// workers.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <set>
#include <string>

#include "circuits/common.hpp"
#include "core/eval_cache.hpp"
#include "core/evaluator.hpp"
#include "pcell/generator.hpp"
#include "util/diag.hpp"
#include "util/faults.hpp"
#include "util/logging.hpp"
#include "util/task_pool.hpp"

namespace olp::core {
namespace {

const tech::Technology& t() {
  static const tech::Technology tech = tech::make_default_finfet_tech();
  return tech;
}

pcell::LayoutConfig cfg(int nfin, int nf, int m) {
  pcell::LayoutConfig c;
  c.nfin = nfin;
  c.nf = nf;
  c.m = m;
  return c;
}

BiasContext dp_bias() {
  BiasContext b;
  b.vdd = t().vdd;
  b.bias_current = 500e-6;
  b.port_voltage = {
      {"ga", 0.5}, {"gb", 0.5}, {"da", 0.5}, {"db", 0.5}, {"s", 0.2}};
  b.port_load_cap = {{"da", 20e-15}, {"db", 20e-15}};
  return b;
}

TEST(EvalCacheKey, DistinguishesEveryInput) {
  const pcell::PrimitiveGenerator gen(t());
  const pcell::PrimitiveLayout lay =
      gen.generate(pcell::make_diff_pair(), cfg(8, 20, 6));
  const BiasContext bias = dp_bias();
  const spice::MosModel nmos = circuits::default_nmos();
  const spice::MosModel pmos = circuits::default_pmos();
  EvalCondition cond;

  const std::string base = EvalCache::make_key(lay, cond, bias, nmos, pmos);
  EXPECT_EQ(EvalCache::make_key(lay, cond, bias, nmos, pmos), base)
      << "same inputs must produce the same key";

  std::set<std::string> keys;
  keys.insert(base);

  // Different layout configuration.
  const pcell::PrimitiveLayout other =
      gen.generate(pcell::make_diff_pair(), cfg(8, 10, 12));
  EXPECT_TRUE(
      keys.insert(EvalCache::make_key(other, cond, bias, nmos, pmos)).second);

  // Different netlist (current mirror vs diff pair).
  const pcell::PrimitiveLayout mirror =
      gen.generate(pcell::make_current_mirror(), cfg(8, 20, 6));
  EXPECT_TRUE(
      keys.insert(EvalCache::make_key(mirror, cond, bias, nmos, pmos)).second);

  // Ideal vs extracted mode.
  EvalCondition ideal;
  ideal.ideal = true;
  EXPECT_TRUE(
      keys.insert(EvalCache::make_key(lay, ideal, bias, nmos, pmos)).second);

  // Strap tuning.
  EvalCondition tuned;
  tuned.tuning["s"] = 3;
  EXPECT_TRUE(
      keys.insert(EvalCache::make_key(lay, tuned, bias, nmos, pmos)).second);

  // Port wire RC — including a tiny (one-ulp-scale) perturbation.
  EvalCondition wired;
  wired.port_wires["da"] = extract::WireRc{12.5, 3e-15};
  const std::string wired_key =
      EvalCache::make_key(lay, wired, bias, nmos, pmos);
  EXPECT_TRUE(keys.insert(wired_key).second);
  wired.port_wires["da"].resistance =
      std::nextafter(12.5, 13.0);  // %.17g is round-trip exact
  EXPECT_TRUE(
      keys.insert(EvalCache::make_key(lay, wired, bias, nmos, pmos)).second);

  // Mismatch perturbations.
  EvalCondition mc;
  mc.extra_dvth["ma0"] = 1e-3;
  EXPECT_TRUE(
      keys.insert(EvalCache::make_key(lay, mc, bias, nmos, pmos)).second);

  // Bias context.
  BiasContext bias2 = bias;
  bias2.bias_current = 400e-6;
  EXPECT_TRUE(
      keys.insert(EvalCache::make_key(lay, cond, bias2, nmos, pmos)).second);
  BiasContext bias3 = bias;
  bias3.port_voltage["ga"] = 0.45;
  EXPECT_TRUE(
      keys.insert(EvalCache::make_key(lay, cond, bias3, nmos, pmos)).second);

  // Model card.
  spice::MosModel nmos2 = nmos;
  nmos2.vth0 += 1e-3;
  EXPECT_TRUE(
      keys.insert(EvalCache::make_key(lay, cond, bias, nmos2, pmos)).second);
}

TEST(EvalCache, HitReturnsIdenticalValuesWithoutNewTestbenches) {
  const pcell::PrimitiveGenerator gen(t());
  const pcell::PrimitiveLayout lay =
      gen.generate(pcell::make_diff_pair(), cfg(8, 20, 6));
  PrimitiveEvaluator eval(t(), circuits::default_nmos(),
                          circuits::default_pmos(), dp_bias());
  EvalCache cache;
  eval.set_cache(&cache);

  EvalCondition cond;
  EvalOutcome first_out;
  const MetricValues first = eval.evaluate(lay, cond, &first_out);
  EXPECT_FALSE(first_out.cache_hit);
  const long benches_after_miss = eval.stats().testbenches;
  EXPECT_GT(benches_after_miss, 0);

  EvalOutcome second_out;
  const MetricValues second = eval.evaluate(lay, cond, &second_out);
  EXPECT_TRUE(second_out.cache_hit);
  EXPECT_EQ(eval.stats().testbenches, benches_after_miss)
      << "a cache hit must not simulate";

  ASSERT_EQ(first.size(), second.size());
  auto fi = first.begin();
  auto si = second.begin();
  for (; fi != first.end(); ++fi, ++si) {
    EXPECT_EQ(fi->first, si->first);
    EXPECT_EQ(std::memcmp(&fi->second, &si->second, sizeof(double)), 0)
        << metric_name(fi->first);
  }

  const EvalCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.entries, 1);

  // A different condition is a fresh miss.
  EvalCondition tuned;
  tuned.tuning["s"] = 2;
  EvalOutcome third_out;
  eval.evaluate(lay, tuned, &third_out);
  EXPECT_FALSE(third_out.cache_hit);
  EXPECT_EQ(cache.stats().entries, 2);
}

TEST(EvalCache, QuarantinedEvaluationsAreNeverCached) {
  set_log_level(LogLevel::kOff);
  const pcell::PrimitiveGenerator gen(t());
  const pcell::PrimitiveLayout lay =
      gen.generate(pcell::make_diff_pair(), cfg(8, 20, 6));
  PrimitiveEvaluator eval(t(), circuits::default_nmos(),
                          circuits::default_pmos(), dp_bias());
  EvalCache cache;
  eval.set_cache(&cache);
  DiagnosticsSink sink;
  eval.set_diagnostics(&sink);

  FaultConfig config;
  config.seed = 3;
  config.nan_metric_rate = 1.0;  // every evaluation quarantines
  {
    ScopedFaultInjection chaos(config);
    EvalCondition cond;
    EvalOutcome out1, out2;
    eval.evaluate(lay, cond, &out1);
    eval.evaluate(lay, cond, &out2);
    EXPECT_GT(out1.quarantined, 0);
    EXPECT_FALSE(out1.cache_hit);
    // The second identical call must re-simulate (not hit a poisoned entry)
    // and re-fire the quarantine diagnostic.
    EXPECT_FALSE(out2.cache_hit);
    EXPECT_GT(out2.quarantined, 0);
  }
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(cache.stats().entries, 0);
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_EQ(sink.count("evaluator"), 2u);
}

TEST(EvalCache, FullKeyEqualityMakesShardCollisionsBenign) {
  // One shard forces every key through the same map: distinct keys must
  // still resolve to their own entries (the hash only picks the shard).
  EvalCache cache(/*shards=*/1);
  for (int i = 0; i < 200; ++i) {
    MetricValues v;
    v[MetricKind::kGm] = static_cast<double>(i);
    cache.insert("key" + std::to_string(i), v);
  }
  EXPECT_EQ(cache.stats().entries, 200);
  for (int i = 0; i < 200; ++i) {
    MetricValues v;
    ASSERT_TRUE(cache.lookup("key" + std::to_string(i), &v)) << i;
    EXPECT_EQ(v.at(MetricKind::kGm), static_cast<double>(i)) << i;
  }
  MetricValues v;
  EXPECT_FALSE(cache.lookup("key200", &v));
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0);
  EXPECT_EQ(cache.stats().hits, 0);
}

TEST(EvalCache, SharedAcrossPoolWorkers) {
  const pcell::PrimitiveGenerator gen(t());
  const pcell::PrimitiveLayout lay =
      gen.generate(pcell::make_diff_pair(), cfg(8, 20, 6));
  PrimitiveEvaluator eval(t(), circuits::default_nmos(),
                          circuits::default_pmos(), dp_bias());
  EvalCache cache;
  eval.set_cache(&cache);

  TaskPool pool(8);
  const std::size_t n = 32;
  std::vector<MetricValues> slots(n);
  pool.parallel_for(n, [&](std::size_t i) {
    EvalCondition cond;  // all workers evaluate the identical condition
    slots[i] = eval.evaluate(lay, cond);
    return true;
  });

  // Exactly one entry; every result is bit-identical to the first.
  const EvalCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1);
  EXPECT_EQ(stats.hits + stats.misses, static_cast<long>(n));
  EXPECT_GE(stats.hits, 1);
  for (std::size_t i = 1; i < n; ++i) {
    ASSERT_EQ(slots[i].size(), slots[0].size()) << i;
    auto a = slots[0].begin();
    auto b = slots[i].begin();
    for (; a != slots[0].end(); ++a, ++b) {
      EXPECT_EQ(std::memcmp(&a->second, &b->second, sizeof(double)), 0)
          << i << "/" << metric_name(a->first);
    }
  }
}

}  // namespace
}  // namespace olp::core

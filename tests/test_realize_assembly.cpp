// Tests for route realization (global routes -> parallel-track geometry) and
// full-layout assembly.

#include <gtest/gtest.h>

#include "circuits/assembly.hpp"
#include "circuits/ota5t.hpp"
#include "route/realize.hpp"
#include "util/logging.hpp"

namespace olp {
namespace {

const tech::Technology& t() {
  static const tech::Technology tech = tech::make_default_finfet_tech();
  return tech;
}

route::NetRoute l_route() {
  route::NetRoute nr;
  nr.net = "sig";
  nr.routed = true;
  nr.vias = 3;
  nr.segments.push_back(route::RouteSegment{
      tech::Layer::kM3, geom::Point{0, 0}, geom::Point{geom::to_nm(2e-6), 0}});
  nr.segments.push_back(route::RouteSegment{
      tech::Layer::kM4, geom::Point{geom::to_nm(2e-6), 0},
      geom::Point{geom::to_nm(2e-6), geom::to_nm(1e-6)}});
  return nr;
}

TEST(Realize, SingleWireEmitsOneTrackPerSegment) {
  geom::Layout out("r");
  route::realize_net(t(), l_route(), 1, out);
  int m3 = 0, m4 = 0;
  for (const geom::Shape& s : out.shapes()) {
    if (s.layer == tech::Layer::kM3 && s.rect.width() > s.rect.height()) ++m3;
    if (s.layer == tech::Layer::kM4 && s.rect.height() > s.rect.width()) ++m4;
  }
  EXPECT_EQ(m3, 1);
  EXPECT_EQ(m4, 1);
  // Every emitted shape is tagged with the net.
  for (const geom::Shape& s : out.shapes()) EXPECT_EQ(s.net, "sig");
}

TEST(Realize, ParallelWiresMultiplyTracks) {
  geom::Layout one("a"), four("b");
  route::realize_net(t(), l_route(), 1, one);
  route::realize_net(t(), l_route(), 4, four);
  EXPECT_EQ(four.shapes().size(), 4 * one.shapes().size());
}

TEST(Realize, TracksAreAtLayerPitch) {
  geom::Layout out("r");
  route::realize_net(t(), l_route(), 3, out);
  std::vector<geom::Coord> y_los;
  for (const geom::Shape& s : out.shapes()) {
    if (s.layer == tech::Layer::kM3 && s.rect.width() > s.rect.height()) {
      y_los.push_back(s.rect.y_lo);
    }
  }
  ASSERT_EQ(y_los.size(), 3u);
  std::sort(y_los.begin(), y_los.end());
  const geom::Coord pitch = geom::to_nm(t().metal(tech::Layer::kM3).pitch);
  EXPECT_EQ(y_los[1] - y_los[0], pitch);
  EXPECT_EQ(y_los[2] - y_los[1], pitch);
}

TEST(Realize, TrackWidthIsMinWidth) {
  geom::Layout out("r");
  route::realize_net(t(), l_route(), 1, out);
  for (const geom::Shape& s : out.shapes()) {
    if (s.layer == tech::Layer::kM3 && s.rect.width() > s.rect.height()) {
      EXPECT_EQ(s.rect.height(),
                geom::to_nm(t().metal(tech::Layer::kM3).min_width));
    }
  }
}

TEST(Realize, ViaArrayAtLayerChange) {
  geom::Layout out("r");
  route::realize_net(t(), l_route(), 2, out);
  // Two cut squares at the M3/M4 corner (marked on the upper layer).
  int cuts = 0;
  for (const geom::Shape& s : out.shapes()) {
    if (s.layer == tech::Layer::kM4 && s.rect.width() == s.rect.height()) {
      ++cuts;
    }
  }
  EXPECT_EQ(cuts, 2);
}

TEST(Realize, MapHelperSkipsUnroutedNets) {
  std::map<std::string, route::NetRoute> routes;
  routes["ok"] = l_route();
  route::NetRoute bad;
  bad.net = "bad";
  bad.routed = false;
  routes["bad"] = bad;
  const geom::Layout out =
      route::realize_routes(t(), routes, {{"ok", 2}});
  for (const geom::Shape& s : out.shapes()) EXPECT_EQ(s.net, "sig");
  EXPECT_FALSE(out.shapes().empty());
}

TEST(Realize, RejectsZeroWires) {
  geom::Layout out("r");
  EXPECT_THROW(route::realize_net(t(), l_route(), 0, out),
               InvalidArgumentError);
}

TEST(Assembly, OtaAssembles) {
  set_log_level(LogLevel::kError);
  circuits::Ota5T ota(t());
  ASSERT_TRUE(ota.prepare());
  circuits::FlowEngine engine(t(), {});
  circuits::FlowReport report;
  const circuits::Realization real =
      engine.run(circuits::FlowMode::kOptimize, ota.instances(), ota.routed_nets(), &report);
  const geom::Layout top =
      circuits::assemble_layout(t(), ota.instances(), real, report);
  // Pins of every instance are present with the instance prefix.
  EXPECT_TRUE(top.has_pin("dp.da"));
  EXPECT_TRUE(top.has_pin("cmtail.out"));
  EXPECT_TRUE(top.has_pin("cmload.ref"));
  // The assembled area at least covers the placed block area.
  double block_area = 0.0;
  for (const auto& [name, lay] : real.layouts) {
    (void)name;
    block_area += lay.area();
  }
  EXPECT_GE(circuits::assembled_area(top), block_area);
  EXPECT_GT(top.shapes().size(), 100u);
}

}  // namespace
}  // namespace olp

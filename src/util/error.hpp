#pragma once
// Error handling primitives for the olp library.
//
// The library reports unrecoverable misuse and internal inconsistencies via
// exceptions derived from olp::Error. Recoverable conditions (e.g. a Newton
// solve that fails to converge) are reported through status-carrying return
// values local to the subsystem instead.

#include <stdexcept>
#include <string>

namespace olp {

/// Base class for all exceptions thrown by the olp library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a caller violates a documented precondition.
class InvalidArgumentError : public Error {
 public:
  explicit InvalidArgumentError(const std::string& what) : Error(what) {}
};

/// Thrown when parsing user-provided input (e.g. a SPICE deck) fails.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line)
      : Error("parse error at line " + std::to_string(line) + ": " + what),
        line_(line) {}
  /// 1-based line number of the offending input line.
  int line() const noexcept { return line_; }

 private:
  int line_;
};

/// Thrown when an internal invariant is violated (a bug in the library).
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what)
      : Error("internal error: " + what) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* cond, const char* file,
                                      int line, const std::string& msg);
}  // namespace detail

}  // namespace olp

/// Precondition check: throws olp::InvalidArgumentError when `cond` is false.
#define OLP_CHECK(cond, msg)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::olp::detail::throw_check_failure(#cond, __FILE__, __LINE__, msg); \
    }                                                                     \
  } while (false)

/// Internal invariant check: indicates a library bug when it fires.
#define OLP_ASSERT(cond, msg)                                    \
  do {                                                           \
    if (!(cond)) {                                               \
      throw ::olp::InternalError(std::string(msg) + " [" #cond   \
                                 " failed at " __FILE__ ":" +    \
                                 std::to_string(__LINE__) + "]"); \
    }                                                            \
  } while (false)

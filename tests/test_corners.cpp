// Tests for process-corner model cards and corner-aware circuit measurement.

#include <gtest/gtest.h>

#include "circuits/common.hpp"
#include "circuits/common_source.hpp"
#include "circuits/vco.hpp"

namespace olp::circuits {
namespace {

const tech::Technology& t() {
  static const tech::Technology tech = tech::make_default_finfet_tech();
  return tech;
}

TEST(Corners, TtEqualsDefaults) {
  EXPECT_DOUBLE_EQ(corner_nmos(Corner::kTT).vth0, default_nmos().vth0);
  EXPECT_DOUBLE_EQ(corner_pmos(Corner::kTT).kp, default_pmos().kp);
}

TEST(Corners, SlowRaisesVthLowersMobility) {
  const spice::MosModel ss = corner_nmos(Corner::kSS);
  EXPECT_GT(ss.vth0, default_nmos().vth0);
  EXPECT_LT(ss.kp, default_nmos().kp);
  const spice::MosModel ff = corner_nmos(Corner::kFF);
  EXPECT_LT(ff.vth0, default_nmos().vth0);
  EXPECT_GT(ff.kp, default_nmos().kp);
}

TEST(Corners, MixedCornersSkewFlavorsApart) {
  // SF: slow NMOS, fast PMOS.
  EXPECT_GT(corner_nmos(Corner::kSF).vth0, default_nmos().vth0);
  EXPECT_LT(corner_pmos(Corner::kSF).vth0, default_pmos().vth0);
  // FS: the opposite.
  EXPECT_LT(corner_nmos(Corner::kFS).vth0, default_nmos().vth0);
  EXPECT_GT(corner_pmos(Corner::kFS).vth0, default_pmos().vth0);
}

TEST(Corners, Names) {
  EXPECT_STREQ(corner_name(Corner::kTT), "TT");
  EXPECT_STREQ(corner_name(Corner::kSS), "SS");
  EXPECT_STREQ(corner_name(Corner::kFS), "FS");
}

TEST(Corners, VcoFrequencyOrdersAcrossCorners) {
  // The classic corner signature: FF rings faster than TT faster than SS.
  RoVco vco(t());
  ASSERT_TRUE(vco.prepare());
  Realization real = schematic_realization(vco.instances(), t());
  auto freq_at = [&](Corner c) {
    real.corner = c;
    const auto f = vco.frequency(real, 0.5);
    return f.value_or(0.0);
  };
  const double f_ss = freq_at(Corner::kSS);
  const double f_tt = freq_at(Corner::kTT);
  const double f_ff = freq_at(Corner::kFF);
  ASSERT_GT(f_ss, 0.0);
  EXPECT_LT(f_ss, f_tt);
  EXPECT_LT(f_tt, f_ff);
}

TEST(Corners, CsAmpCurrentTracksReferenceAcrossCorners) {
  // Mirror biasing makes the supply current corner-insensitive (the whole
  // point of reference-derived biasing).
  CommonSourceAmp cs(t());
  ASSERT_TRUE(cs.prepare());
  Realization real = schematic_realization(cs.instances(), t());
  std::map<Corner, double> current;
  for (Corner c : {Corner::kTT, Corner::kSS, Corner::kFF}) {
    real.corner = c;
    current[c] = cs.measure(real).at("current_ua");
  }
  EXPECT_NEAR(current[Corner::kSS], current[Corner::kTT],
              0.1 * current[Corner::kTT]);
  EXPECT_NEAR(current[Corner::kFF], current[Corner::kTT],
              0.1 * current[Corner::kTT]);
}

}  // namespace
}  // namespace olp::circuits

#include "circuits/assembly.hpp"

#include <map>

#include "route/realize.hpp"
#include "util/error.hpp"

namespace olp::circuits {

geom::Layout assemble_layout(const tech::Technology& t,
                             const std::vector<InstanceSpec>& instances,
                             const Realization& realization,
                             const FlowReport& report) {
  OLP_CHECK(report.placed_instances.size() == instances.size() ||
                !report.placed_instances.empty(),
            "flow report carries no placement");
  geom::Layout top("assembled");

  // Index placement rows by instance name.
  std::map<std::string, std::size_t> placed_index;
  for (std::size_t i = 0; i < report.placed_instances.size(); ++i) {
    placed_index[report.placed_instances[i]] = i;
  }

  for (const InstanceSpec& inst : instances) {
    const auto lit = realization.layouts.find(inst.name);
    OLP_CHECK(lit != realization.layouts.end(),
              "realization missing layout for " + inst.name);
    const auto pit = placed_index.find(inst.name);
    OLP_CHECK(pit != placed_index.end(),
              "placement missing instance " + inst.name);
    const place::PlacedBlock& pb = report.placement.blocks[pit->second];
    const geom::Rect bb = lit->second.geometry.bounding_box();
    // Mirroring affects pin positions only at the abstraction level used by
    // the router; for the merged picture a translation is sufficient.
    top.merge(lit->second.geometry, geom::to_nm(pb.x) - bb.x_lo,
              geom::to_nm(pb.y) - bb.y_lo, inst.name + ".");
  }

  std::map<std::string, int> wire_counts;
  for (const core::NetWireDecision& d : report.decisions) {
    wire_counts[d.circuit_net] = d.parallel_routes;
  }
  const geom::Layout routes =
      route::realize_routes(t, report.routes, wire_counts);
  top.merge(routes, 0, 0, "");
  return top;
}

double assembled_area(const geom::Layout& layout) {
  const geom::Rect bb = layout.bounding_box();
  return geom::to_meters(bb.width()) * geom::to_meters(bb.height());
}

}  // namespace olp::circuits

#pragma once
// Primitive testbench evaluation (paper Sec. II-B, Fig. 4).
//
// For each primitive family the evaluator builds a small SPICE testbench
// around the (annotated) primitive — DC bias conditions come from the
// circuit-level schematic simulation, external elements are ideal at their
// schematic values — and measures the family's performance metrics through
// cheap circuit simulation. The same testbench runs in schematic mode
// (no parasitics/LDE) to produce the reference values x_sch.

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

#include "core/metrics.hpp"
#include "extract/annotate.hpp"
#include "pcell/capacitor.hpp"
#include "pcell/primitive.hpp"
#include "spice/circuit.hpp"
#include "tech/technology.hpp"

namespace olp {
class Budget;
class DiagnosticsSink;
}

namespace olp::core {

class EvalCache;

/// DC bias conditions and external loads for a primitive, taken from the
/// circuit-level schematic simulation (paper Algorithm 1 line 3).
struct BiasContext {
  double vdd = 0.8;
  /// DC voltage at each primitive port (defaults to vdd/2 when absent).
  std::map<std::string, double> port_voltage;
  /// External load capacitance seen at a port, at its schematic value.
  std::map<std::string, double> port_load_cap;
  /// Tail / reference current where the primitive needs one [A].
  double bias_current = 100e-6;
};

/// What to evaluate: schematic vs extracted, strap tuning, external wires.
struct EvalCondition {
  bool ideal = false;                 ///< schematic mode
  extract::TuningMap tuning;          ///< internal strap parallel wires
  /// External route RC attached at a port (primitive port optimization).
  std::map<std::string, extract::WireRc> port_wires;
  /// Per-device threshold perturbations (Monte Carlo mismatch sampling).
  std::map<std::string, double> extra_dvth;
};

/// Counters for the paper's Table V (simulations per optimization step).
/// Atomic so concurrent TaskPool evaluations merge instead of racing.
struct EvalStats {
  /// Testbench evaluations (Table V semantics).
  std::atomic<long> testbenches{0};
  /// Non-finite metrics sanitized to 0; the optimizer clamps the affected
  /// candidate's cost to a large-but-finite penalty instead.
  std::atomic<long> quarantined{0};
  EvalStats() = default;
  // Copying snapshots the counters (atomics are not copyable themselves);
  // keeps PrimitiveEvaluator movable/copyable for by-value construction.
  EvalStats(const EvalStats& other)
      : testbenches(other.testbenches.load()),
        quarantined(other.quarantined.load()) {}
  EvalStats& operator=(const EvalStats& other) {
    testbenches = other.testbenches.load();
    quarantined = other.quarantined.load();
    return *this;
  }
  void reset() {
    testbenches = 0;
    quarantined = 0;
  }
};

/// Per-call evaluation outcome, for callers that need this evaluation's
/// result attribution without reading the shared (racy-under-threads)
/// EvalStats deltas.
struct EvalOutcome {
  long quarantined = 0;   ///< metrics sanitized in this call
  bool cache_hit = false; ///< served from the eval cache, no simulation
};

/// Evaluates primitive performance metrics by simulation.
class PrimitiveEvaluator {
 public:
  PrimitiveEvaluator(const tech::Technology& technology, spice::MosModel nmos,
                     spice::MosModel pmos, BiasContext bias);

  /// Testbench under construction (exposed for the free helper functions in
  /// the implementation file).
  struct Bench;

  /// Runs the family's testbenches on the given realized layout. Non-finite
  /// metric values are quarantined: sanitized to 0.0, counted in
  /// stats().quarantined, and reported to the diagnostics sink — NaN never
  /// propagates into downstream cost arithmetic. `outcome` (may be null)
  /// receives this call's quarantine count and cache-hit flag. With a cache
  /// attached, clean evaluations are memoized; quarantined ones never are,
  /// so their diagnostics re-fire identically on every re-evaluation.
  MetricValues evaluate(const pcell::PrimitiveLayout& layout,
                        const EvalCondition& condition,
                        EvalOutcome* outcome = nullptr) const;

  /// Attaches a diagnostics sink (may be null to detach); the sink must
  /// outlive the evaluator. Forwarded to every internal simulator.
  void set_diagnostics(DiagnosticsSink* sink) { diag_ = sink; }

  /// Attaches an execution budget (may be null to detach); the budget must
  /// outlive the evaluator. Every testbench run consumes one unit of the
  /// testbench budget, and the budget is forwarded to every internal
  /// simulator so exhaustion also bounds Newton/timestep loops.
  void set_budget(Budget* budget) { budget_ = budget; }

  /// Attaches a memoizing evaluation cache (may be null to detach); the
  /// cache must outlive the evaluator. Cache hits skip simulation entirely —
  /// and therefore also skip testbench-budget consumption and chaos fault
  /// draws — which is why the flow leaves the cache off by default.
  /// Attaches a memoizing cache (null detaches). `client` identifies this
  /// evaluator's flow run when several runs share one cache (circuits/batch);
  /// hits on entries another client inserted are counted as cross-client.
  void set_cache(EvalCache* cache, int client = -1) {
    cache_ = cache;
    cache_client_ = client;
  }

  /// One-sigma random (mismatch) input offset of a matched pair; the offset
  /// spec is 10% of this value (paper Eq. 6 discussion).
  double random_offset_sigma(const pcell::PrimitiveLayout& layout) const;

  /// Monte Carlo mismatch analysis: samples per-device Vth perturbations
  /// from the Pelgrom distribution and measures the offset testbench per
  /// sample. Validates the analytic random_offset_sigma and exposes the
  /// systematic + random distribution the paper's designers size against.
  struct MonteCarloOffset {
    double mean = 0.0;   ///< systematic component [V]
    double sigma = 0.0;  ///< random component [V]
    int samples = 0;
  };
  MonteCarloOffset monte_carlo_offset(const pcell::PrimitiveLayout& layout,
                                      const EvalCondition& condition,
                                      int samples, std::uint64_t seed) const;

  const BiasContext& bias() const { return bias_; }
  EvalStats& stats() const { return stats_; }

 private:
  /// The single place a testbench run is counted: bumps the local EvalStats
  /// AND the process-wide obs counter "eval.testbench" together, so
  /// FlowReport::testbenches and FlowTelemetry::simulations are derived from
  /// the same increments and can never disagree.
  void count_testbench() const;

  MetricValues evaluate_impl(const pcell::PrimitiveLayout& layout,
                             const EvalCondition& condition) const;
  MetricValues eval_diff_pair(const pcell::PrimitiveLayout& layout,
                              const EvalCondition& c, bool cross) const;
  MetricValues eval_current_mirror(const pcell::PrimitiveLayout& layout,
                                   const EvalCondition& c, bool active) const;
  MetricValues eval_current_source(const pcell::PrimitiveLayout& layout,
                                   const EvalCondition& c) const;
  MetricValues eval_common_source(const pcell::PrimitiveLayout& layout,
                                  const EvalCondition& c) const;
  MetricValues eval_starved_inverter(const pcell::PrimitiveLayout& layout,
                                     const EvalCondition& c) const;
  MetricValues eval_switch(const pcell::PrimitiveLayout& layout,
                           const EvalCondition& c) const;

  const tech::Technology& tech_;
  spice::MosModel nmos_;
  spice::MosModel pmos_;
  BiasContext bias_;
  mutable EvalStats stats_;
  DiagnosticsSink* diag_ = nullptr;
  Budget* budget_ = nullptr;
  EvalCache* cache_ = nullptr;
  int cache_client_ = -1;
};

/// Metric evaluation for the passive MOM capacitor primitive.
MetricValues evaluate_mom_cap(const tech::Technology& t,
                              const pcell::MomCapLayout& cap,
                              const EvalCondition& condition);

}  // namespace olp::core

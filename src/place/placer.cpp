#include "place/placer.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/budget.hpp"
#include "util/error.hpp"
#include "util/task_pool.hpp"

namespace olp::place {

std::vector<PlacedBlock> pack_sequence_pair(const std::vector<Block>& blocks,
                                            const std::vector<int>& pos,
                                            const std::vector<int>& neg) {
  const std::size_t n = blocks.size();
  OLP_CHECK(pos.size() == n && neg.size() == n,
            "sequence pair size mismatch");
  // match[b] = index of block b in each sequence.
  std::vector<std::size_t> in_pos(n), in_neg(n);
  for (std::size_t i = 0; i < n; ++i) {
    in_pos[static_cast<std::size_t>(pos[i])] = i;
    in_neg[static_cast<std::size_t>(neg[i])] = i;
  }
  // Block a is left of b iff a precedes b in both sequences;
  // a is below b iff a follows b in pos and precedes it in neg.
  std::vector<PlacedBlock> placed(n);
  // Longest-path x coordinates in pos order restricted to the left-of
  // relation; O(n^2) is fine for block counts in the tens.
  for (std::size_t i = 0; i < n; ++i) placed[i] = PlacedBlock{};
  // Process blocks in an order compatible with "left of": pos order works
  // for x (all left-neighbors precede in pos).
  for (std::size_t pi = 0; pi < n; ++pi) {
    const std::size_t b = static_cast<std::size_t>(pos[pi]);
    double x = 0.0;
    for (std::size_t pj = 0; pj < pi; ++pj) {
      const std::size_t a = static_cast<std::size_t>(pos[pj]);
      if (in_neg[a] < in_neg[b]) {
        x = std::max(x, placed[a].x + blocks[a].width);
      }
    }
    placed[b].x = x;
  }
  // y: process in neg order; a below b iff in_pos[a] > in_pos[b] and
  // in_neg[a] < in_neg[b].
  for (std::size_t ni = 0; ni < n; ++ni) {
    const std::size_t b = static_cast<std::size_t>(neg[ni]);
    double y = 0.0;
    for (std::size_t nj = 0; nj < ni; ++nj) {
      const std::size_t a = static_cast<std::size_t>(neg[nj]);
      if (in_pos[a] > in_pos[b]) {
        y = std::max(y, placed[a].y + blocks[a].height);
      }
    }
    placed[b].y = y;
  }
  return placed;
}

namespace {

struct Candidate {
  std::vector<PlacedBlock> placed;
  double width = 0.0;
  double height = 0.0;
  double hpwl = 0.0;
  double sym_penalty = 0.0;
  double cost = 0.0;
};

double compute_hpwl(const std::vector<Block>& blocks,
                    const std::vector<PlacementNet>& nets,
                    const std::vector<PlacedBlock>& placed) {
  double total = 0.0;
  for (const PlacementNet& net : nets) {
    if (net.pins.size() < 2) continue;
    double x_lo = 1e300, x_hi = -1e300, y_lo = 1e300, y_hi = -1e300;
    for (const PlacementNet::PinRef& pin : net.pins) {
      const std::size_t b = static_cast<std::size_t>(pin.block);
      const double dx =
          placed[b].mirrored ? blocks[b].width - pin.dx : pin.dx;
      const double px = placed[b].x + dx;
      const double py = placed[b].y + pin.dy;
      x_lo = std::min(x_lo, px);
      x_hi = std::max(x_hi, px);
      y_lo = std::min(y_lo, py);
      y_hi = std::max(y_hi, py);
    }
    total += (x_hi - x_lo) + (y_hi - y_lo);
  }
  return total;
}

Candidate evaluate(const std::vector<Block>& blocks,
                   const std::vector<PlacementNet>& nets,
                   const std::vector<SymmetryPair>& symmetry,
                   const std::vector<int>& pos, const std::vector<int>& neg,
                   const std::vector<bool>& mirrored,
                   const PlacerOptions& opt) {
  Candidate c;
  c.placed = pack_sequence_pair(blocks, pos, neg);
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    c.placed[b].mirrored = mirrored[b];
    c.width = std::max(c.width, c.placed[b].x + blocks[b].width);
    c.height = std::max(c.height, c.placed[b].y + blocks[b].height);
  }
  c.hpwl = compute_hpwl(blocks, nets, c.placed);
  for (const SymmetryPair& sp : symmetry) {
    const std::size_t a = static_cast<std::size_t>(sp.a);
    const std::size_t b = static_cast<std::size_t>(sp.b);
    c.sym_penalty += std::fabs(c.placed[a].y - c.placed[b].y);
    // Widths are equal for true symmetry pairs; penalize center misalignment
    // asymmetry about their mutual axis only through y here, x is free (the
    // axis is wherever their midpoint falls), but overlapping pairs are
    // already prevented by the sequence pair.
  }
  const double norm = std::sqrt(std::max(c.width * c.height, 1e-18));
  c.cost = opt.area_weight * c.width * c.height +
           opt.hpwl_weight * c.hpwl * norm +
           opt.symmetry_weight * c.sym_penalty * norm;
  return c;
}

/// Snaps symmetry pairs exactly: equal y, mirrored pin orientation, and
/// horizontal positions symmetric about their common center.
void snap_symmetry(const std::vector<Block>& blocks,
                   const std::vector<SymmetryPair>& symmetry,
                   std::vector<PlacedBlock>& placed) {
  for (const SymmetryPair& sp : symmetry) {
    const std::size_t a = static_cast<std::size_t>(sp.a);
    const std::size_t b = static_cast<std::size_t>(sp.b);
    const double y = 0.5 * (placed[a].y + placed[b].y);
    placed[a].y = y;
    placed[b].y = y;
    // Mirror the right block of the pair so matched pins face each other.
    if (placed[a].x <= placed[b].x) {
      placed[b].mirrored = !placed[a].mirrored;
    } else {
      placed[a].mirrored = !placed[b].mirrored;
    }
    (void)blocks;
  }
}

/// One candidate annealing move, fully described by values drawn from the
/// shared RNG stream — drawing is separated from applying so the
/// parallel-moves mode can draw K moves serially (thread-count independent)
/// and evaluate them concurrently.
struct Move {
  int kind = 0;  ///< 0 = swap pos, 1 = swap both, 2 = mirror flip
  int i = 0;
  int j = 0;
};

Move draw_move(Rng& rng, std::size_t n) {
  Move m;
  m.kind = rng.uniform_int(0, 2);
  m.i = rng.uniform_int(0, static_cast<int>(n) - 1);
  m.j = rng.uniform_int(0, static_cast<int>(n) - 1);
  if (m.j == m.i) m.j = (m.j + 1) % static_cast<int>(n);
  return m;
}

void apply_move(const Move& m, std::vector<int>& pos, std::vector<int>& neg,
                std::vector<bool>& mirrored) {
  switch (m.kind) {
    case 0:
      std::swap(pos[static_cast<std::size_t>(m.i)],
                pos[static_cast<std::size_t>(m.j)]);
      break;
    case 1:
      std::swap(pos[static_cast<std::size_t>(m.i)],
                pos[static_cast<std::size_t>(m.j)]);
      std::swap(neg[static_cast<std::size_t>(m.i)],
                neg[static_cast<std::size_t>(m.j)]);
      break;
    case 2:
      mirrored[static_cast<std::size_t>(m.i)] =
          !mirrored[static_cast<std::size_t>(m.i)];
      break;
    default:
      break;
  }
}

bool overlaps(const std::vector<Block>& blocks,
              const std::vector<PlacedBlock>& placed) {
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    for (std::size_t j = i + 1; j < blocks.size(); ++j) {
      const bool sep = placed[i].x + blocks[i].width <= placed[j].x + 1e-12 ||
                       placed[j].x + blocks[j].width <= placed[i].x + 1e-12 ||
                       placed[i].y + blocks[i].height <= placed[j].y + 1e-12 ||
                       placed[j].y + blocks[j].height <= placed[i].y + 1e-12;
      if (!sep) return true;
    }
  }
  return false;
}

}  // namespace

PlacementResult AnnealingPlacer::place(
    const std::vector<Block>& blocks, const std::vector<PlacementNet>& nets,
    const std::vector<SymmetryPair>& symmetry) const {
  OLP_CHECK(!blocks.empty(), "nothing to place");
  for (const PlacementNet& net : nets) {
    for (const PlacementNet::PinRef& pin : net.pins) {
      OLP_CHECK(pin.block >= 0 &&
                    pin.block < static_cast<int>(blocks.size()),
                "net references unknown block");
    }
  }
  for (const SymmetryPair& sp : symmetry) {
    OLP_CHECK(sp.a != sp.b && sp.a >= 0 && sp.b >= 0 &&
                  sp.a < static_cast<int>(blocks.size()) &&
                  sp.b < static_cast<int>(blocks.size()),
              "bad symmetry pair");
  }

  const std::size_t n = blocks.size();
  Rng rng(options_.seed);
  std::vector<int> pos(n), neg(n);
  std::iota(pos.begin(), pos.end(), 0);
  std::iota(neg.begin(), neg.end(), 0);
  std::vector<bool> mirrored(n, false);

  Candidate current =
      evaluate(blocks, nets, symmetry, pos, neg, mirrored, options_);
  Candidate best = current;
  std::vector<int> best_pos = pos, best_neg = neg;
  std::vector<bool> best_mirror = mirrored;

  double temp = options_.initial_temp *
                std::max(current.cost, 1e-18);
  if (options_.parallel_moves >= 2) {
    // Parallel-moves annealing: per temperature step, draw K independent
    // candidate moves SERIALLY from the single RNG stream (so the move
    // sequence is a pure function of the seed), evaluate them concurrently
    // via the index-addressed slots, and pick the winner deterministically
    // by (cost, move-index). Acceptance spends exactly one more uniform
    // draw per step. Nothing here depends on completion order or thread
    // count — only on (seed, K) — which is the property the
    // test_stage_parallel golden pins down.
    const int k_moves = options_.parallel_moves;
    const int steps = (options_.iterations + k_moves - 1) / k_moves;
    std::vector<Move> moves(static_cast<std::size_t>(k_moves));
    std::vector<Candidate> cands(static_cast<std::size_t>(k_moves));
    for (int step = 0; step < steps; ++step) {
      // Budget probes stay on the submitting thread (once per step), so a
      // budget-bounded parallel run truncates at a step boundary instead of
      // a scheduling-dependent point.
      if (options_.budget != nullptr && options_.budget->check()) break;
      for (Move& m : moves) m = draw_move(rng, n);
      run_indexed(options_.pool, static_cast<std::size_t>(k_moves),
                  [&](std::size_t mi) {
                    std::vector<int> new_pos = pos, new_neg = neg;
                    std::vector<bool> new_mirror = mirrored;
                    apply_move(moves[mi], new_pos, new_neg, new_mirror);
                    cands[mi] = evaluate(blocks, nets, symmetry, new_pos,
                                         new_neg, new_mirror, options_);
                    return true;
                  });
      std::size_t winner = 0;
      for (std::size_t mi = 1; mi < cands.size(); ++mi) {
        if (cands[mi].cost < cands[winner].cost) winner = mi;
      }
      const double delta = cands[winner].cost - current.cost;
      if (delta <= 0 ||
          rng.uniform() < std::exp(-delta / std::max(temp, 1e-30))) {
        apply_move(moves[winner], pos, neg, mirrored);
        current = cands[winner];
        if (current.cost < best.cost) {
          best = current;
          best_pos = pos;
          best_neg = neg;
          best_mirror = mirrored;
        }
      }
      temp *= options_.cooling;
    }
  } else {
    for (int it = 0; it < options_.iterations; ++it) {
      // Budget-bounded annealing: stop early with the best placement so far
      // (the initial packing was evaluated before the loop, so `best` is
      // always a complete, packable candidate).
      if (options_.budget != nullptr && options_.budget->check()) break;
      std::vector<int> new_pos = pos, new_neg = neg;
      std::vector<bool> new_mirror = mirrored;
      const Move move = draw_move(rng, n);
      apply_move(move, new_pos, new_neg, new_mirror);
      const Candidate cand = evaluate(blocks, nets, symmetry, new_pos,
                                      new_neg, new_mirror, options_);
      const double delta = cand.cost - current.cost;
      if (delta <= 0 ||
          rng.uniform() < std::exp(-delta / std::max(temp, 1e-30))) {
        pos = std::move(new_pos);
        neg = std::move(new_neg);
        mirrored = std::move(new_mirror);
        current = cand;
        if (current.cost < best.cost) {
          best = current;
          best_pos = pos;
          best_neg = neg;
          best_mirror = mirrored;
        }
      }
      temp *= options_.cooling;
    }
  }

  PlacementResult result;
  result.blocks = best.placed;
  snap_symmetry(blocks, symmetry, result.blocks);
  result.legal = !overlaps(blocks, result.blocks);
  if (!result.legal) {
    // Fall back to the unsnapped (guaranteed legal) packing.
    result.blocks = best.placed;
    result.legal = !overlaps(blocks, result.blocks);
  }
  result.width = 0.0;
  result.height = 0.0;
  for (std::size_t b = 0; b < n; ++b) {
    result.width = std::max(result.width, result.blocks[b].x + blocks[b].width);
    result.height =
        std::max(result.height, result.blocks[b].y + blocks[b].height);
  }
  result.hpwl = compute_hpwl(blocks, nets, result.blocks);
  result.cost = best.cost;
  return result;
}

}  // namespace olp::place

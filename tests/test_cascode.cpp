// Tests for the cascoded primitive variants (paper Sec. II-A lists cascoded
// differential pairs and cascoded current-mirror structures in the library).

#include <gtest/gtest.h>

#include "circuits/common.hpp"
#include "core/evaluator.hpp"
#include "core/optimizer.hpp"
#include "pcell/generator.hpp"

namespace olp {
namespace {

const tech::Technology& t() {
  static const tech::Technology tech = tech::make_default_finfet_tech();
  return tech;
}

pcell::LayoutConfig cfg(int nfin, int nf, int m) {
  pcell::LayoutConfig c;
  c.nfin = nfin;
  c.nf = nf;
  c.m = m;
  return c;
}

TEST(CascodeMirror, StructureHasTwoMatchGroups) {
  const pcell::PrimitiveNetlist p = pcell::make_cascode_current_mirror(1);
  ASSERT_EQ(p.devices.size(), 4u);
  EXPECT_EQ(p.devices[0].match_group, 0);
  EXPECT_EQ(p.devices[1].match_group, 0);
  EXPECT_EQ(p.devices[2].match_group, 1);
  EXPECT_EQ(p.devices[3].match_group, 1);
  EXPECT_EQ(p.type, pcell::PrimitiveType::kCurrentMirror);
}

TEST(CascodeMirror, GeneratesTwoSections) {
  const pcell::PrimitiveGenerator gen(t());
  const pcell::PrimitiveLayout lay =
      gen.generate(pcell::make_cascode_current_mirror(1), cfg(8, 8, 2));
  EXPECT_EQ(lay.devices.size(), 4u);
  // Two stacked matched sections: taller than the simple mirror.
  const pcell::PrimitiveLayout simple =
      gen.generate(pcell::make_current_mirror(1), cfg(8, 8, 2));
  EXPECT_GT(lay.height(), 1.5 * simple.height());
  // Internal cascode nets got straps too.
  EXPECT_TRUE(lay.nets.count("x1"));
  EXPECT_TRUE(lay.nets.count("x2"));
}

TEST(CascodeMirror, MirrorsCurrentAndBoostsRout) {
  const pcell::PrimitiveGenerator gen(t());
  const pcell::PrimitiveLayout casc =
      gen.generate(pcell::make_cascode_current_mirror(1), cfg(8, 16, 2));
  const pcell::PrimitiveLayout simple =
      gen.generate(pcell::make_current_mirror(1), cfg(8, 16, 2));
  core::BiasContext b;
  b.vdd = t().vdd;
  b.bias_current = 200e-6;
  b.port_voltage = {{"out", 0.6}, {"s", 0.0}};
  const core::PrimitiveEvaluator eval(t(), circuits::default_nmos(),
                                      circuits::default_pmos(), b);
  core::EvalCondition ideal;
  ideal.ideal = true;
  const core::MetricValues vc = eval.evaluate(casc, ideal);
  const core::MetricValues vs = eval.evaluate(simple, ideal);
  EXPECT_NEAR(vc.at(core::MetricKind::kCurrentRatio), 1.0, 0.25);
  // The whole point of the cascode: much higher output resistance.
  EXPECT_GT(vc.at(core::MetricKind::kRout),
            3.0 * vs.at(core::MetricKind::kRout));
}

TEST(CascodeMirror, RatioScales) {
  const pcell::PrimitiveGenerator gen(t());
  const pcell::PrimitiveLayout lay =
      gen.generate(pcell::make_cascode_current_mirror(2), cfg(8, 4, 2));
  EXPECT_NEAR(lay.devices.at("MOUT").w / lay.devices.at("MREF").w, 2.0, 1e-9);
  EXPECT_NEAR(lay.devices.at("MCOUT").w / lay.devices.at("MCREF").w, 2.0,
              1e-9);
}

TEST(CascodeDiffPair, EvaluatesWithCascodeBias) {
  const pcell::PrimitiveGenerator gen(t());
  const pcell::PrimitiveLayout lay =
      gen.generate(pcell::make_cascode_diff_pair(), cfg(8, 10, 2));
  core::BiasContext b;
  b.vdd = t().vdd;
  b.bias_current = 400e-6;
  b.port_voltage = {{"ga", 0.5}, {"gb", 0.5},    {"da", 0.6},
                    {"db", 0.6}, {"vcasc", 0.6}, {"s", 0.15}};
  b.port_load_cap = {{"da", 15e-15}, {"db", 15e-15}};
  const core::PrimitiveEvaluator eval(t(), circuits::default_nmos(),
                                      circuits::default_pmos(), b);
  core::EvalCondition ideal;
  ideal.ideal = true;
  const core::MetricValues v = eval.evaluate(lay, ideal);
  EXPECT_GT(v.at(core::MetricKind::kGm), 1e-3);
  EXPECT_LT(std::fabs(v.at(core::MetricKind::kInputOffset)), 1e-5);
}

TEST(CascodeDiffPair, Algorithm1Runs) {
  const pcell::PrimitiveGenerator gen(t());
  core::BiasContext b;
  b.vdd = t().vdd;
  b.bias_current = 400e-6;
  b.port_voltage = {{"ga", 0.5}, {"gb", 0.5},    {"da", 0.6},
                    {"db", 0.6}, {"vcasc", 0.6}, {"s", 0.15}};
  b.port_load_cap = {{"da", 15e-15}, {"db", 15e-15}};
  const core::PrimitiveEvaluator eval(t(), circuits::default_nmos(),
                                      circuits::default_pmos(), b);
  const core::PrimitiveOptimizer opt(gen, eval);
  const std::vector<core::LayoutCandidate> sel =
      opt.optimize(pcell::make_cascode_diff_pair(), 96);
  ASSERT_FALSE(sel.empty());
  EXPECT_LT(sel.front().cost.total, 100.0);
}

}  // namespace
}  // namespace olp

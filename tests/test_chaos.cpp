// Chaos fault-injection tests: the flow must complete end-to-end under
// injected op/tran/route/NaN faults, produce a structurally valid realization
// with finite costs, flag the report as degraded, and account for every
// injected fault with a diagnostic record.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "circuits/flow.hpp"
#include "service/journal.hpp"
#include "service/request.hpp"
#include "service/service.hpp"
#include "service/transport.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif
#include "circuits/ota5t.hpp"
#include "core/evaluator.hpp"
#include "pcell/generator.hpp"
#include "util/diag.hpp"
#include "util/faults.hpp"
#include "util/logging.hpp"

namespace olp {
namespace {

const tech::Technology& t() {
  static const tech::Technology tech = tech::make_default_finfet_tech();
  return tech;
}

/// Counts diagnostics reported by the chaos stage for one fault site.
std::size_t chaos_count(const std::vector<Diagnostic>& diags, FaultSite site) {
  std::size_t n = 0;
  for (const Diagnostic& d : diags) {
    if (d.stage == "chaos" && d.subject == fault_site_name(site)) ++n;
  }
  return n;
}

class ChaosFlow : public ::testing::TestWithParam<double> {};

TEST_P(ChaosFlow, OtaFlowSurvivesInjectedFaults) {
  const double rate = GetParam();
  set_log_level(LogLevel::kOff);
  circuits::Ota5T ota(t());
  ASSERT_TRUE(ota.prepare());  // schematic prep runs outside the fault scope

  const circuits::FlowEngine engine(t(), {});
  FaultConfig config;
  config.seed = 42;
  config.op_rate = rate;
  config.tran_rate = rate;
  config.route_rate = rate;
  config.nan_metric_rate = rate;

  circuits::FlowReport report;
  circuits::Realization real;
  {
    ScopedFaultInjection chaos(config);
    ASSERT_NO_THROW(real = engine.run(circuits::FlowMode::kOptimize, ota.instances(), ota.routed_nets(),
                                           &report));
  }
  set_log_level(LogLevel::kWarn);
  FaultInjector& inj = FaultInjector::global();

  // The realization is structurally complete.
  for (const circuits::InstanceSpec& inst : ota.instances()) {
    EXPECT_TRUE(real.layouts.count(inst.name)) << inst.name;
  }
  // Every candidate cost is finite (quarantine clamps, never NaN).
  for (const auto& [name, options] : report.options) {
    ASSERT_FALSE(options.empty()) << name;
    for (const core::LayoutCandidate& cand : options) {
      EXPECT_TRUE(std::isfinite(cand.cost.total)) << name;
    }
  }
  // Exact accounting: one chaos diagnostic per injected fault that fired.
  for (FaultSite site :
       {FaultSite::kOpNonConvergence, FaultSite::kTranNonConvergence,
        FaultSite::kRouteFailure, FaultSite::kNanMetric}) {
    EXPECT_EQ(chaos_count(report.diagnostics, site),
              static_cast<std::size_t>(inj.fired(site)))
        << fault_site_name(site);
  }
  if (rate >= 0.1) {
    // At 10% the OTA flow makes thousands of draws; faults certainly fired
    // (deterministic given the seed) and the report must say so.
    EXPECT_GT(inj.total_fired(), 0);
    EXPECT_TRUE(report.degraded);
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, ChaosFlow, ::testing::Values(0.03, 0.10));

class ChaosWithBudget : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosWithBudget, FaultsComposeWithTightBudget) {
  // Chaos injection at every site (including injected budget exhaustion)
  // combined with a tight testbench budget: the flow must never crash, hang,
  // or produce an inconsistent report, across seeds.
  set_log_level(LogLevel::kOff);
  circuits::Ota5T ota(t());
  ASSERT_TRUE(ota.prepare());

  circuits::FlowOptions fopt;
  fopt.budget_limits.max_testbenches = 60;
  const circuits::FlowEngine engine(t(), fopt);

  FaultConfig config;
  config.seed = GetParam();
  config.op_rate = 0.05;
  config.tran_rate = 0.05;
  config.route_rate = 0.05;
  config.nan_metric_rate = 0.05;
  config.budget_rate = 0.02;

  circuits::FlowReport report;
  circuits::Realization real;
  {
    ScopedFaultInjection chaos(config);
    ASSERT_NO_THROW(real = engine.run(circuits::FlowMode::kOptimize, ota.instances(), ota.routed_nets(),
                                           &report));
  }
  set_log_level(LogLevel::kWarn);

  // Structurally complete realization regardless of what fired.
  for (const circuits::InstanceSpec& inst : ota.instances()) {
    EXPECT_TRUE(real.layouts.count(inst.name)) << inst.name;
  }
  for (const auto& [name, options] : report.options) {
    ASSERT_FALSE(options.empty()) << name;
    for (const core::LayoutCandidate& cand : options) {
      EXPECT_TRUE(std::isfinite(cand.cost.total)) << name;
    }
    ASSERT_TRUE(report.chosen_option.count(name)) << name;
  }
  // Budget accounting stays consistent: whatever tripped, the status report
  // and the degraded flag agree with the diagnostics.
  EXPECT_LE(report.budget.testbenches_consumed, 60 + 8);
  if (report.budget.exhausted) {
    EXPECT_NE(report.budget.tripped, BudgetKind::kNone);
    EXPECT_TRUE(report.degraded);
    bool has_budget_diag = false;
    for (const Diagnostic& d : report.diagnostics) {
      if (d.stage == "budget") has_budget_diag = true;
    }
    EXPECT_TRUE(has_budget_diag);
  }
  if (report.degraded) EXPECT_FALSE(report.diagnostics.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosWithBudget,
                         ::testing::Values(1u, 7u, 42u, 1234u));

TEST(ChaosPooled, FaultsComposeWithPoolDelaysAndTightBudget) {
  // Everything at once: 4 worker threads whose task claim/completion order
  // is scrambled by injected per-task delays, simulator/metric faults, the
  // eval cache on, and a tight testbench budget. The flow must still
  // complete with a structurally consistent report — and the count-based
  // fault accounting must stay exact under worker interleaving.
  set_log_level(LogLevel::kOff);
  circuits::Ota5T ota(t());
  ASSERT_TRUE(ota.prepare());

  circuits::FlowOptions fopt;
  fopt.budget_limits.max_testbenches = 60;
  fopt.num_threads = 4;
  fopt.eval_cache = true;
  const circuits::FlowEngine engine(t(), fopt);

  FaultConfig config;
  config.seed = 42;
  config.op_rate = 0.05;
  config.tran_rate = 0.05;
  config.nan_metric_rate = 0.05;
  config.pool_delay_rate = 0.5;

  circuits::FlowReport report;
  circuits::Realization real;
  {
    ScopedFaultInjection chaos(config);
    ASSERT_NO_THROW(real = engine.run(circuits::FlowMode::kOptimize, ota.instances(), ota.routed_nets(),
                                           &report));
  }
  set_log_level(LogLevel::kWarn);
  FaultInjector& inj = FaultInjector::global();

  // The pool actually ran tasks through the delay site.
  EXPECT_GT(inj.fired(FaultSite::kPoolTaskDelay), 0);
  // Exact accounting per evaluator-side site, despite worker interleaving.
  for (FaultSite site :
       {FaultSite::kOpNonConvergence, FaultSite::kTranNonConvergence,
        FaultSite::kNanMetric}) {
    EXPECT_EQ(chaos_count(report.diagnostics, site),
              static_cast<std::size_t>(inj.fired(site)))
        << fault_site_name(site);
  }
  for (const circuits::InstanceSpec& inst : ota.instances()) {
    EXPECT_TRUE(real.layouts.count(inst.name)) << inst.name;
  }
  for (const auto& [name, options] : report.options) {
    ASSERT_FALSE(options.empty()) << name;
    for (const core::LayoutCandidate& cand : options) {
      EXPECT_TRUE(std::isfinite(cand.cost.total)) << name;
    }
    ASSERT_TRUE(report.chosen_option.count(name)) << name;
  }
  // With up to 4 testbench batches in flight when the budget trips, the
  // overshoot bound scales with the thread count.
  EXPECT_LE(report.budget.testbenches_consumed, 60 + 8 * 4);
  if (report.budget.exhausted) {
    EXPECT_NE(report.budget.tripped, BudgetKind::kNone);
    EXPECT_TRUE(report.degraded);
  }
  if (report.degraded) EXPECT_FALSE(report.diagnostics.empty());
}

TEST(Chaos, CleanRunReportsNothing) {
  // With injection disabled (the default), the flow reports no diagnostics
  // and no degradation on the healthy OTA.
  set_log_level(LogLevel::kError);
  circuits::Ota5T ota(t());
  ASSERT_TRUE(ota.prepare());
  const circuits::FlowEngine engine(t(), {});
  circuits::FlowReport report;
  engine.run(circuits::FlowMode::kOptimize, ota.instances(), ota.routed_nets(), &report);
  EXPECT_FALSE(report.degraded);
  EXPECT_TRUE(report.diagnostics.empty());
}

TEST(Chaos, TranFaultSiteFiresInStarvedInverterEvaluation) {
  // The OTA flow has no transient testbench; cover the tran site through the
  // current-starved inverter, whose delay bench is the only tran user. The
  // injected failure must engage the backward-Euler retry and still produce
  // finite metrics.
  set_log_level(LogLevel::kOff);
  const pcell::PrimitiveGenerator gen(t());
  pcell::LayoutConfig cfg;
  cfg.nfin = 8;
  cfg.nf = 4;
  cfg.m = 1;
  const pcell::PrimitiveLayout lay =
      gen.generate(pcell::make_current_starved_inverter(), cfg);
  core::BiasContext bias;
  bias.vdd = t().vdd;
  bias.port_voltage = {{"vbn", 0.4}, {"vbp", t().vdd - 0.4}};
  bias.port_load_cap = {{"out", 4e-15}};
  core::PrimitiveEvaluator eval(t(), circuits::default_nmos(),
                                circuits::default_pmos(), bias);
  DiagnosticsSink sink;
  eval.set_diagnostics(&sink);

  FaultConfig config;
  config.seed = 7;
  config.tran_rate = 1.0;
  config.max_total_fires = 1;  // first tran attempt fails, retries are clean
  core::MetricValues values;
  {
    ScopedFaultInjection chaos(config);
    core::EvalCondition cond;  // extracted mode
    values = eval.evaluate(lay, cond);
  }
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(FaultInjector::global().fired(FaultSite::kTranNonConvergence), 1);
  EXPECT_EQ(sink.count("chaos", fault_site_name(FaultSite::kTranNonConvergence)),
            1u);
  // The retry ladder reported its fallback and ultimately delivered a real
  // (finite) delay.
  EXPECT_GE(sink.count("simulator", "tran"), 1u);
  for (const auto& [kind, value] : values) {
    EXPECT_TRUE(std::isfinite(value)) << core::metric_name(kind);
  }
  EXPECT_GT(values.at(core::MetricKind::kDelay), 0.0);
}


// --- service-facing chaos sites ---------------------------------------------

TEST(ChaosSites, NewSiteNamesAreStable) {
  EXPECT_STREQ(fault_site_name(FaultSite::kSnapshotIo), "snapshot_io");
  EXPECT_STREQ(fault_site_name(FaultSite::kRequestParse), "request_parse");
  EXPECT_STREQ(fault_site_name(FaultSite::kJobTransient), "job_transient");
  EXPECT_STREQ(fault_site_name(FaultSite::kTransportPartialWrite),
               "partial_write");
  EXPECT_STREQ(fault_site_name(FaultSite::kTransportDisconnect), "disconnect");
  EXPECT_STREQ(fault_site_name(FaultSite::kJournalIo), "journal_io");
}

TEST(ChaosRequestParse, InjectedFaultRejectsValidLine) {
  const std::string line = "{\"op\":\"ping\"}";
  // Uninjected, the line parses fine.
  {
    service::ServiceRequest request;
    std::string error;
    EXPECT_EQ(service::parse_request(line, &request, &error),
              service::RejectReason::kNone);
    EXPECT_EQ(request.op, service::RequestOp::kPing);
  }
  FaultConfig config;
  config.request_parse_rate = 1.0;
  ScopedFaultInjection chaos(config);
  service::ServiceRequest request;
  std::string error;
  EXPECT_EQ(service::parse_request(line, &request, &error),
            service::RejectReason::kParseError);
  EXPECT_NE(error.find("injected"), std::string::npos);
  EXPECT_EQ(FaultInjector::global().fired(FaultSite::kRequestParse), 1);
  EXPECT_EQ(FaultInjector::global().draws(FaultSite::kRequestParse), 1);
}

TEST(ChaosRequestParse, PartialRateIsDeterministic) {
  const std::string line = "{\"op\":\"stats\"}";
  FaultConfig config;
  config.seed = 7;
  config.request_parse_rate = 0.5;
  std::vector<bool> first;
  for (int round = 0; round < 2; ++round) {
    ScopedFaultInjection chaos(config);
    std::vector<bool> rejects;
    for (int i = 0; i < 16; ++i) {
      service::ServiceRequest request;
      rejects.push_back(service::parse_request(line, &request, nullptr) !=
                        service::RejectReason::kNone);
    }
    if (round == 0) {
      first = rejects;
      // A 0.5 rate over 16 draws all-but-certainly mixes both outcomes.
      EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
      EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
    } else {
      EXPECT_EQ(rejects, first);  // same seed, same fire pattern
    }
  }
}

TEST(ChaosJobTransient, RetryRecoversInjectedTransient) {
  // One transient fires on the first attempt; the retry must succeed and
  // the outcome must account for both attempts.
  service::ServiceOptions options;
  options.workers = 1;
  options.pool_threads = 1;
  options.max_retries = 2;
  options.retry_backoff_ms = 0.1;
  service::LayoutService svc(t(), options);
  svc.start();

  FaultConfig config;
  config.job_transient_rate = 1.0;
  config.max_total_fires = 1;
  ScopedFaultInjection chaos(config);

  service::ServiceRequest request;
  request.id = "chaos1";
  request.client = "tester";
  request.circuit = "vco";
  request.mode = circuits::FlowMode::kConventional;

  std::promise<service::RequestOutcome> done;
  auto future = done.get_future();
  ASSERT_EQ(svc.submit(request,
                       [&done](const service::RequestOutcome& o) {
                         done.set_value(o);
                       }),
            service::RejectReason::kNone);
  const service::RequestOutcome outcome = future.get();
  EXPECT_EQ(outcome.status, circuits::JobStatus::kSucceeded);
  EXPECT_EQ(outcome.attempts, 2);
  EXPECT_EQ(FaultInjector::global().fired(FaultSite::kJobTransient), 1);
  svc.drain();
  EXPECT_EQ(svc.stats().retries, 1);
}

TEST(ChaosJobTransient, ExhaustedRetriesFailWithoutCrashing) {
  service::ServiceOptions options;
  options.workers = 1;
  options.pool_threads = 1;
  options.max_retries = 1;
  options.retry_backoff_ms = 0.1;
  service::LayoutService svc(t(), options);
  svc.start();

  FaultConfig config;
  config.job_transient_rate = 1.0;  // every attempt fails
  ScopedFaultInjection chaos(config);

  service::ServiceRequest request;
  request.id = "chaos2";
  request.client = "tester";
  request.circuit = "vco";
  request.mode = circuits::FlowMode::kConventional;

  std::promise<service::RequestOutcome> done;
  auto future = done.get_future();
  ASSERT_EQ(svc.submit(request,
                       [&done](const service::RequestOutcome& o) {
                         done.set_value(o);
                       }),
            service::RejectReason::kNone);
  const service::RequestOutcome outcome = future.get();
  EXPECT_EQ(outcome.status, circuits::JobStatus::kFailed);
  EXPECT_EQ(outcome.attempts, 2);  // first try + one retry
  EXPECT_NE(outcome.error.find("transient"), std::string::npos);
  svc.drain();
  const service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.failed, 1);
  EXPECT_EQ(stats.completed, 1);
}

// --- journal I/O chaos ------------------------------------------------------

TEST(ChaosJournalIo, AppendFailureDegradesDurabilityNotTheJournal) {
  const std::string path = testing::TempDir() + "olp_chaos_journal.bin";
  std::remove(path.c_str());
  service::RequestJournal journal(path);
  ASSERT_TRUE(journal.open());

  service::ServiceRequest request;
  request.id = "j";
  request.client = "tester";
  request.circuit = "vco";
  {
    FaultConfig config;
    config.journal_io_rate = 1.0;
    ScopedFaultInjection chaos(config);
    std::string error;
    EXPECT_EQ(journal.append_accepted(request, &error), 0u);
    EXPECT_NE(error.find("injected"), std::string::npos);
    EXPECT_FALSE(journal.compact(&error));
  }
  const service::JournalStats degraded = journal.stats();
  EXPECT_GE(degraded.append_failures, 1l);
  // With injection gone the SAME journal object appends again — the
  // failure was counted, not sticky.
  EXPECT_GT(journal.append_accepted(request), 0u);
  std::remove(path.c_str());
}

TEST(ChaosJournalIo, ServiceKeepsServingWhenTheJournalCannotOpen) {
  const std::string path = testing::TempDir() + "olp_chaos_journal_open.bin";
  std::remove(path.c_str());
  service::ServiceOptions options;
  options.workers = 1;
  options.pool_threads = 1;
  options.journal_path = path;
  service::LayoutService svc(t(), options);
  {
    FaultConfig config;
    config.journal_io_rate = 1.0;
    ScopedFaultInjection chaos(config);
    svc.start();  // journal open fails under injection; service must not
  }
  EXPECT_FALSE(svc.stats().journal.enabled);

  // Submission and completion still work — acceptance just is not durable,
  // and each failed append is counted.
  service::ServiceRequest request;
  request.id = "undurable";
  request.client = "tester";
  request.circuit = "vco";
  request.mode = circuits::FlowMode::kConventional;
  std::promise<service::RequestOutcome> done;
  auto future = done.get_future();
  ASSERT_EQ(svc.submit(request,
                       [&done](const service::RequestOutcome& o) {
                         done.set_value(o);
                       }),
            service::RejectReason::kNone);
  EXPECT_EQ(future.get().status, circuits::JobStatus::kSucceeded);
  svc.drain();
  EXPECT_GE(svc.stats().journal.append_failures, 1l);
  std::remove(path.c_str());
}

// --- transport chaos (real loopback sockets) --------------------------------

#if defined(__unix__) || defined(__APPLE__)

namespace transport_chaos {

/// Minimal blocking loopback client (5 s receive timeout).
int connect_loopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  timeval tv{};
  tv.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool read_line(int fd, std::string* out) {
  out->clear();
  char c = 0;
  while (true) {
    const ssize_t n = ::read(fd, &c, 1);
    if (n <= 0) return false;
    if (c == '\n') return true;
    out->push_back(c);
  }
}

}  // namespace transport_chaos

TEST(ChaosTransport, PartialWritesDelayButNeverCorruptTheStream) {
  service::TransportSupervisor transport;
  service::TransportOptions options;
  options.tcp_port = 0;
  options.read_timeout_ms = 0;
  // A response long enough that halving flushes take several rounds.
  const std::string payload(512, 'p');
  ASSERT_TRUE(transport.start(
      options, [&payload](const std::string&, const std::string&,
                          const service::TransportSupervisor::Emit& emit) {
        emit("{\"payload\":\"" + payload + "\"}");
      }));

  FaultConfig config;
  config.partial_write_rate = 1.0;  // EVERY flush writes only a prefix
  ScopedFaultInjection chaos(config);

  const int fd = transport_chaos::connect_loopback(transport.tcp_port());
  ASSERT_GE(fd, 0);
  const std::string request = "{\"op\":\"ping\"}\n";
  ASSERT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  std::string line;
  ASSERT_TRUE(transport_chaos::read_line(fd, &line));
  // The full line arrived intact despite every flush being truncated.
  EXPECT_EQ(line, "{\"payload\":\"" + payload + "\"}");
  EXPECT_GE(transport.stats().partial_writes, 2l);
  ::close(fd);
  transport.stop();
}

TEST(ChaosTransport, InjectedDisconnectDropsTheConnectionCleanly) {
  std::atomic<int> dispatched{0};
  service::TransportSupervisor transport;
  service::TransportOptions options;
  options.tcp_port = 0;
  options.read_timeout_ms = 0;
  ASSERT_TRUE(transport.start(
      options, [&dispatched](const std::string&, const std::string&,
                             const service::TransportSupervisor::Emit&) {
        ++dispatched;
      }));

  FaultConfig config;
  config.disconnect_rate = 1.0;
  ScopedFaultInjection chaos(config);

  const int fd = transport_chaos::connect_loopback(transport.tcp_port());
  ASSERT_GE(fd, 0);
  const std::string request = "{\"op\":\"ping\"}\n";
  ASSERT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  // The injected disconnect closes the connection before the frame is
  // dispatched; the client observes EOF, the supervisor stays up.
  char c = 0;
  EXPECT_EQ(::read(fd, &c, 1), 0);
  ::close(fd);
  const service::TransportStats stats = transport.stats();
  EXPECT_EQ(stats.injected_disconnects, 1l);
  EXPECT_EQ(stats.active, 0u);
  EXPECT_EQ(dispatched.load(), 0);

  // A post-chaos client is served normally by the same supervisor.
  FaultInjector::global().disable();
  const int fd2 = transport_chaos::connect_loopback(transport.tcp_port());
  ASSERT_GE(fd2, 0);
  ASSERT_EQ(::write(fd2, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  for (int i = 0; i < 500 && dispatched.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(dispatched.load(), 1);
  ::close(fd2);
  transport.stop();
}

#endif  // POSIX sockets

}  // namespace
}  // namespace olp

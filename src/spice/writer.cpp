#include "spice/writer.hpp"

#include <cmath>
#include <sstream>

namespace olp::spice {

namespace {

/// Compact numeric formatting that parse_spice_number reads back exactly.
std::string num(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

std::string source_suffix(const Waveform& wave, double ac_mag,
                          double ac_phase) {
  std::string s = wave.to_spice();
  if (ac_mag != 0.0) {
    s += " AC " + num(ac_mag);
    if (ac_phase != 0.0) s += " " + num(ac_phase * 180.0 / M_PI);
  }
  return s;
}

}  // namespace

std::string write_netlist(const Circuit& c, const std::string& title) {
  std::ostringstream os;
  os << "* " << title << "\n";

  for (const MosModel& m : c.models()) {
    os << ".model " << m.name << ' '
       << (m.type == MosType::kNmos ? "nmos" : "pmos")
       << " vth0=" << num(m.vth0) << " kp=" << num(m.kp)
       << " nslope=" << num(m.nslope) << " lambda=" << num(m.lambda)
       << " lref=" << num(m.lref) << " cox=" << num(m.cox)
       << " cov=" << num(m.cov) << " cj=" << num(m.cj)
       << " cjsw=" << num(m.cjsw) << " avt=" << num(m.avt) << "\n";
  }

  auto node = [&](NodeId n) { return c.node_name(n); };

  for (const Resistor& r : c.resistors()) {
    os << r.name << ' ' << node(r.a) << ' ' << node(r.b) << ' ' << num(r.r)
       << "\n";
  }
  for (const Capacitor& cap : c.capacitors()) {
    os << cap.name << ' ' << node(cap.a) << ' ' << node(cap.b) << ' '
       << num(cap.c);
    if (cap.use_ic) os << " ic=" << num(cap.ic);
    os << "\n";
  }
  for (const VSource& v : c.vsources()) {
    os << v.name << ' ' << node(v.p) << ' ' << node(v.n) << ' '
       << source_suffix(v.wave, v.ac_mag, v.ac_phase) << "\n";
  }
  for (const ISource& i : c.isources()) {
    os << i.name << ' ' << node(i.p) << ' ' << node(i.n) << ' '
       << source_suffix(i.wave, i.ac_mag, i.ac_phase) << "\n";
  }
  for (const Vcvs& e : c.vcvs()) {
    os << e.name << ' ' << node(e.p) << ' ' << node(e.n) << ' '
       << node(e.cp) << ' ' << node(e.cn) << ' ' << num(e.gain) << "\n";
  }
  for (const Vccs& g : c.vccs()) {
    os << g.name << ' ' << node(g.p) << ' ' << node(g.n) << ' '
       << node(g.cp) << ' ' << node(g.cn) << ' ' << num(g.gm) << "\n";
  }
  for (const Mosfet& m : c.mosfets()) {
    os << m.name << ' ' << node(m.d) << ' ' << node(m.g) << ' '
       << node(m.s) << ' ' << node(m.b) << ' ' << c.model(m.model).name
       << " w=" << num(m.w) << " l=" << num(m.l) << " as=" << num(m.as)
       << " ad=" << num(m.ad) << " ps=" << num(m.ps) << " pd=" << num(m.pd);
    if (m.delta_vth != 0.0) os << " dvth=" << num(m.delta_vth);
    if (m.mobility_mult != 1.0) os << " mob=" << num(m.mobility_mult);
    os << "\n";
  }
  for (const auto& [n, v] : c.initial_conditions()) {
    os << ".ic v(" << node(n) << ")=" << num(v) << "\n";
  }
  os << ".end\n";
  return os.str();
}

}  // namespace olp::spice

#include "service/journal.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>

#include "util/faults.hpp"

namespace olp::service {

namespace {

constexpr char kJournalMagic[8] = {'O', 'L', 'P', 'J', 'N', 'L', '1', '\n'};

constexpr std::uint32_t kRecAccepted = 1;
constexpr std::uint32_t kRecCompleted = 2;
constexpr std::uint32_t kRecKeyHistory = 3;

void put_u64(std::string& out, std::uint64_t v) {
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  out.append(buf, sizeof v);
}

void put_u32(std::string& out, std::uint32_t v) {
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  out.append(buf, sizeof v);
}

void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_double(std::string& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out += s;
}

struct Cursor {
  const char* data;
  std::size_t size;
  std::size_t pos = 0;

  bool get_u64(std::uint64_t* v) {
    if (pos + sizeof *v > size) return false;
    std::memcpy(v, data + pos, sizeof *v);
    pos += sizeof *v;
    return true;
  }

  bool get_u32(std::uint32_t* v) {
    if (pos + sizeof *v > size) return false;
    std::memcpy(v, data + pos, sizeof *v);
    pos += sizeof *v;
    return true;
  }

  bool get_i64(std::int64_t* v) {
    std::uint64_t raw = 0;
    if (!get_u64(&raw)) return false;
    *v = static_cast<std::int64_t>(raw);
    return true;
  }

  bool get_double(double* v) {
    std::uint64_t bits = 0;
    if (!get_u64(&bits)) return false;
    std::memcpy(v, &bits, sizeof *v);
    return true;
  }

  bool get_str(std::string* s) {
    std::uint32_t n = 0;
    if (!get_u32(&n)) return false;
    if (pos + n > size) return false;
    s->assign(data + pos, n);
    pos += n;
    return true;
  }
};

std::uint64_t fnv1a64(const char* data, std::size_t size) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

void journal_fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

std::string serialize_request(const ServiceRequest& r) {
  std::string body;
  put_str(body, r.id);
  put_str(body, r.client);
  put_str(body, r.identity);
  put_str(body, r.circuit);
  put_str(body, r.key);
  put_u32(body, static_cast<std::uint32_t>(r.mode));
  put_u64(body, r.seed);
  put_i64(body, r.priority);
  put_double(body, r.deadline_ms);
  put_i64(body, r.max_testbenches);
  put_i64(body, r.retries);
  return body;
}

bool deserialize_request(Cursor& cur, ServiceRequest* r) {
  std::uint32_t mode = 0;
  std::int64_t priority = 0;
  std::int64_t max_tb = 0;
  std::int64_t retries = 0;
  if (!cur.get_str(&r->id) || !cur.get_str(&r->client) ||
      !cur.get_str(&r->identity) || !cur.get_str(&r->circuit) ||
      !cur.get_str(&r->key) || !cur.get_u32(&mode) || !cur.get_u64(&r->seed) ||
      !cur.get_i64(&priority) || !cur.get_double(&r->deadline_ms) ||
      !cur.get_i64(&max_tb) || !cur.get_i64(&retries)) {
    return false;
  }
  if (mode > static_cast<std::uint32_t>(circuits::FlowMode::kManualOracle)) {
    return false;
  }
  r->op = RequestOp::kSubmit;
  r->mode = static_cast<circuits::FlowMode>(mode);
  r->priority = static_cast<int>(priority);
  r->max_testbenches = static_cast<long>(max_tb);
  r->retries = static_cast<int>(retries);
  return true;
}

/// One framed record: u32 payload_len | payload | u64 checksum.
std::string frame_record(const std::string& payload) {
  std::string rec;
  rec.reserve(payload.size() + 12);
  put_u32(rec, static_cast<std::uint32_t>(payload.size()));
  rec += payload;
  put_u64(rec, fnv1a64(payload.data(), payload.size()));
  return rec;
}

}  // namespace

RequestJournal::RequestJournal(std::string path) : path_(std::move(path)) {}

RequestJournal::~RequestJournal() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(static_cast<std::FILE*>(file_));
    file_ = nullptr;
  }
}

bool RequestJournal::open(std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  if (path_.empty()) {
    journal_fail(error, "journal path is empty");
    return false;
  }
  if (FaultInjector::global().enabled() &&
      FaultInjector::global().should_fail(FaultSite::kJournalIo)) {
    last_error_ = "injected journal open failure";
    journal_fail(error, last_error_);
    return false;
  }

  // Read whatever exists (a missing file is a fresh journal, not an error).
  std::string doc;
  {
    std::ifstream in(path_, std::ios::binary);
    if (in) {
      doc.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
    }
  }

  std::size_t good_end = 0;
  if (!doc.empty()) {
    if (doc.size() < sizeof kJournalMagic ||
        std::memcmp(doc.data(), kJournalMagic, sizeof kJournalMagic) != 0) {
      // Not our file: refuse to append into it rather than corrupt it.
      last_error_ = "journal magic/version mismatch: " + path_;
      journal_fail(error, last_error_);
      return false;
    }
    good_end = sizeof kJournalMagic;
    Cursor cur{doc.data(), doc.size(), sizeof kJournalMagic};
    while (cur.pos < cur.size) {
      std::uint32_t len = 0;
      if (!cur.get_u32(&len)) break;
      if (cur.pos + len + sizeof(std::uint64_t) > cur.size) break;
      const char* payload = cur.data + cur.pos;
      cur.pos += len;
      std::uint64_t stored = 0;
      if (!cur.get_u64(&stored)) break;
      if (fnv1a64(payload, len) != stored) break;  // torn/corrupt record

      Cursor pc{payload, len, 0};
      std::uint32_t type = 0;
      std::uint64_t seq = 0;
      if (!pc.get_u32(&type) || !pc.get_u64(&seq)) break;
      bool ok = true;
      if (type == kRecAccepted) {
        ServiceRequest request;
        if (deserialize_request(pc, &request)) {
          if (live_.emplace(seq, std::move(request)).second) {
            recovered_order_.push_back(seq);
          }
          if (seq >= next_seq_) next_seq_ = seq + 1;
        } else {
          ok = false;
        }
      } else if (type == kRecCompleted) {
        // payload layout: u64 accepted_seq | u32 status | key (the seq
        // field duplicates the accepted seq for integrity).
        std::uint64_t ref = 0;
        std::uint32_t status = 0;
        std::string key;
        if (pc.get_u64(&ref) && pc.get_u32(&status) && pc.get_str(&key) &&
            status <= static_cast<std::uint32_t>(circuits::JobStatus::kFailed)) {
          live_.erase(ref == 0 ? seq : ref);
          if (!key.empty()) {
            keys_[key] = {static_cast<circuits::JobStatus>(status),
                          key_counter_++};
          }
        } else {
          ok = false;
        }
      } else if (type == kRecKeyHistory) {
        std::uint32_t status = 0;
        std::string key;
        if (pc.get_u32(&status) && pc.get_str(&key) && !key.empty() &&
            status <= static_cast<std::uint32_t>(circuits::JobStatus::kFailed)) {
          keys_[key] = {static_cast<circuits::JobStatus>(status),
                        key_counter_++};
        } else {
          ok = false;
        }
      }
      // Unknown record types are skipped (forward compatibility); malformed
      // payloads of known types end the scan like a torn tail.
      if (!ok) break;
      ++records_scanned_;
      good_end = cur.pos;
    }
    // Drop seqs whose requests were completed during the scan.
    std::vector<std::uint64_t> still;
    still.reserve(recovered_order_.size());
    for (std::uint64_t seq : recovered_order_) {
      if (live_.count(seq) != 0) still.push_back(seq);
    }
    recovered_order_ = std::move(still);
  }

  if (good_end == 0) {
    // Fresh journal: write the header via tmp+rename so a concurrent reader
    // never sees a magic-less file.
    const std::string tmp = path_ + ".tmp";
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out || !out.write(kJournalMagic, sizeof kJournalMagic)) {
        last_error_ = "cannot write " + tmp;
        journal_fail(error, last_error_);
        std::remove(tmp.c_str());
        return false;
      }
    }
    if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
      last_error_ = "cannot rename " + tmp + " -> " + path_;
      journal_fail(error, last_error_);
      std::remove(tmp.c_str());
      return false;
    }
  } else if (good_end < doc.size()) {
    // Torn tail from a crash mid-append: truncate to the last intact record
    // (rewrite-then-rename — no partial state under the real name).
    torn_tail_recovered_ = true;
    const std::string tmp = path_ + ".tmp";
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out ||
          !out.write(doc.data(), static_cast<std::streamsize>(good_end))) {
        last_error_ = "cannot rewrite torn journal " + path_;
        journal_fail(error, last_error_);
        std::remove(tmp.c_str());
        return false;
      }
    }
    if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
      last_error_ = "cannot rename " + tmp + " -> " + path_;
      journal_fail(error, last_error_);
      std::remove(tmp.c_str());
      return false;
    }
  }

  std::FILE* f = std::fopen(path_.c_str(), "ab");
  if (f == nullptr) {
    last_error_ = "cannot open journal for append: " + path_;
    journal_fail(error, last_error_);
    return false;
  }
  file_ = f;
  enabled_ = true;
  return true;
}

std::vector<JournalEntry> RequestJournal::take_pending() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JournalEntry> out;
  out.reserve(recovered_order_.size());
  for (std::uint64_t seq : recovered_order_) {
    auto it = live_.find(seq);
    if (it == live_.end()) continue;
    out.push_back(JournalEntry{seq, it->second});
  }
  recovered_order_.clear();
  return out;
}

bool RequestJournal::completed_key(const std::string& key,
                                   circuits::JobStatus* status) const {
  if (key.empty()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = keys_.find(key);
  if (it == keys_.end()) return false;
  if (status != nullptr) *status = it->second.first;
  return true;
}

bool RequestJournal::append_record_locked(const std::string& payload,
                                          std::string* error) {
  if (!enabled_ || file_ == nullptr) {
    ++append_failures_;
    journal_fail(error, "journal not open");
    return false;
  }
  if (FaultInjector::global().enabled() &&
      FaultInjector::global().should_fail(FaultSite::kJournalIo)) {
    ++append_failures_;
    last_error_ = "injected journal append failure";
    journal_fail(error, last_error_);
    return false;
  }
  const std::string rec = frame_record(payload);
  std::FILE* f = static_cast<std::FILE*>(file_);
  if (std::fwrite(rec.data(), 1, rec.size(), f) != rec.size() ||
      std::fflush(f) != 0) {
    ++append_failures_;
    last_error_ = "journal append I/O failure: " + path_;
    journal_fail(error, last_error_);
    return false;
  }
  ++appended_;
  return true;
}

std::uint64_t RequestJournal::append_accepted(const ServiceRequest& request,
                                              std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t seq = next_seq_;
  std::string payload;
  put_u32(payload, kRecAccepted);
  put_u64(payload, seq);
  payload += serialize_request(request);
  if (!append_record_locked(payload, error)) return 0;
  next_seq_ = seq + 1;
  live_.emplace(seq, request);
  return seq;
}

bool RequestJournal::append_completed(std::uint64_t seq, const std::string& key,
                                      circuits::JobStatus status,
                                      std::string* error) {
  if (seq == 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  std::string payload;
  put_u32(payload, kRecCompleted);
  put_u64(payload, seq);
  put_u64(payload, seq);  // accepted-seq ref (kept explicit in the payload)
  put_u32(payload, static_cast<std::uint32_t>(status));
  put_str(payload, key);
  // Update in-memory state even when the append fails: the durability is
  // degraded (counted), but the running process must still dedup correctly.
  live_.erase(seq);
  if (!key.empty()) {
    keys_[key] = {status, key_counter_++};
    while (keys_.size() > kKeyHistoryCap) {
      // Evict the oldest insertion (linear scan; cap is small and eviction
      // only happens past 4096 completed keyed jobs).
      auto oldest = keys_.begin();
      for (auto it = keys_.begin(); it != keys_.end(); ++it) {
        if (it->second.second < oldest->second.second) oldest = it;
      }
      keys_.erase(oldest);
    }
  }
  return append_record_locked(payload, error);
}

bool RequestJournal::compact(std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) {
    journal_fail(error, "journal not open");
    return false;
  }
  if (FaultInjector::global().enabled() &&
      FaultInjector::global().should_fail(FaultSite::kJournalIo)) {
    last_error_ = "injected journal compact failure";
    journal_fail(error, last_error_);
    return false;
  }

  std::string doc(kJournalMagic, sizeof kJournalMagic);
  for (const auto& [seq, request] : live_) {
    std::string payload;
    put_u32(payload, kRecAccepted);
    put_u64(payload, seq);
    payload += serialize_request(request);
    doc += frame_record(payload);
  }
  for (const auto& [key, entry] : keys_) {
    std::string payload;
    put_u32(payload, kRecKeyHistory);
    put_u64(payload, 0);  // key-history records carry no seq
    put_u32(payload, static_cast<std::uint32_t>(entry.first));
    put_str(payload, key);
    doc += frame_record(payload);
  }

  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out ||
        !out.write(doc.data(), static_cast<std::streamsize>(doc.size()))) {
      last_error_ = "cannot write " + tmp;
      journal_fail(error, last_error_);
      std::remove(tmp.c_str());
      return false;
    }
  }
  // Swap the append handle BEFORE rename so no append lands on the doomed
  // inode: close, rename, reopen.
  if (file_ != nullptr) {
    std::fclose(static_cast<std::FILE*>(file_));
    file_ = nullptr;
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    last_error_ = "cannot rename " + tmp + " -> " + path_;
    journal_fail(error, last_error_);
    std::remove(tmp.c_str());
    // Best effort: reopen the old file so appends keep working.
    file_ = std::fopen(path_.c_str(), "ab");
    enabled_ = file_ != nullptr;
    return false;
  }
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  if (f == nullptr) {
    last_error_ = "cannot reopen journal after compact: " + path_;
    journal_fail(error, last_error_);
    enabled_ = false;
    return false;
  }
  file_ = f;
  ++compactions_;
  return true;
}

JournalStats RequestJournal::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  JournalStats s;
  s.enabled = enabled_;
  s.records_scanned = records_scanned_;
  s.appended = appended_;
  s.append_failures = append_failures_;
  s.compactions = compactions_;
  s.torn_tail_recovered = torn_tail_recovered_;
  s.pending = live_.size();
  s.key_history = keys_.size();
  s.last_error = last_error_;
  return s;
}

}  // namespace olp::service

// Integration tests over the experiment runners: the paper-shape claims
// recorded in EXPERIMENTS.md are asserted here so regressions that would
// silently change the reproduced tables fail CI instead.

#include <gtest/gtest.h>

#include "circuits/experiments.hpp"
#include "util/logging.hpp"

namespace olp::circuits {
namespace {

const tech::Technology& t() {
  static const tech::Technology tech = tech::make_default_finfet_tech();
  return tech;
}

class CsAmpExperiment : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    set_log_level(LogLevel::kError);
    ex_ = new CircuitExperiment(run_cs_amp(t(), {}));
  }
  static void TearDownTestSuite() {
    delete ex_;
    ex_ = nullptr;
  }
  static CircuitExperiment* ex_;
};
CircuitExperiment* CsAmpExperiment::ex_ = nullptr;

TEST_F(CsAmpExperiment, AllFlavorsMeasured) {
  for (const char* flavor : {"schematic", "narrow", "wide", "optimized"}) {
    ASSERT_TRUE(ex_->results.count(flavor)) << flavor;
    EXPECT_TRUE(ex_->results.at(flavor).count("ugf_ghz")) << flavor;
  }
}

TEST_F(CsAmpExperiment, Fig2WireWidthShape) {
  const auto& sch = ex_->results.at("schematic");
  const auto& narrow = ex_->results.at("narrow");
  const auto& wide = ex_->results.at("wide");
  const auto& opt = ex_->results.at("optimized");
  // Wide loses UGF relative to narrow (capacitance side), and the optimized
  // width is at least as good as both.
  EXPECT_LT(wide.at("ugf_ghz"), narrow.at("ugf_ghz"));
  EXPECT_GE(opt.at("ugf_ghz"), wide.at("ugf_ghz"));
  EXPECT_GE(opt.at("ugf_ghz") + 0.05, narrow.at("ugf_ghz"));
  // Every layout stays below the schematic.
  EXPECT_LT(opt.at("ugf_ghz"), sch.at("ugf_ghz"));
}

TEST_F(CsAmpExperiment, TableIMirrorCurrentIsWidthIndependent) {
  const double i_sch = ex_->results.at("tableI_schematic").at("i_m2");
  for (const char* flavor :
       {"tableI_narrow", "tableI_wide", "tableI_optimized"}) {
    EXPECT_NEAR(ex_->results.at(flavor).at("i_m2"), i_sch, 0.03 * i_sch)
        << flavor;
  }
}

TEST_F(CsAmpExperiment, TableICtotalPeaksForWide) {
  const auto& rows = ex_->results;
  EXPECT_GT(rows.at("tableI_wide").at("ctotal"),
            rows.at("tableI_narrow").at("ctotal"));
  EXPECT_GT(rows.at("tableI_wide").at("ctotal"),
            rows.at("tableI_schematic").at("ctotal"));
}

TEST_F(CsAmpExperiment, TableIGmDipsForNarrow) {
  const auto& rows = ex_->results;
  EXPECT_LT(rows.at("tableI_narrow").at("gm_m1"),
            rows.at("tableI_optimized").at("gm_m1"));
  EXPECT_LT(rows.at("tableI_optimized").at("gm_m1"),
            rows.at("tableI_schematic").at("gm_m1"));
}

TEST(OtaExperiment, TableVIOrdering) {
  set_log_level(LogLevel::kError);
  const CircuitExperiment ex = run_ota(t(), {}, /*with_manual=*/true);
  const auto& sch = ex.results.at("schematic");
  const auto& conv = ex.results.at("conventional");
  const auto& work = ex.results.at("this_work");
  const auto& manual = ex.results.at("manual");
  // The paper's headline ordering on UGF and current.
  EXPECT_LT(conv.at("ugf_ghz"), work.at("ugf_ghz"));
  EXPECT_LT(work.at("ugf_ghz"), 1.05 * sch.at("ugf_ghz"));
  EXPECT_LT(conv.at("current_ua"), work.at("current_ua"));
  // "Competitive with manual layout": within 15% on UGF.
  EXPECT_NEAR(work.at("ugf_ghz"), manual.at("ugf_ghz"),
              0.15 * manual.at("ugf_ghz"));
  // This work recovers at least half the conventional UGF loss.
  const double loss_conv = sch.at("ugf_ghz") - conv.at("ugf_ghz");
  const double loss_work = sch.at("ugf_ghz") - work.at("ugf_ghz");
  EXPECT_LT(loss_work, 0.5 * loss_conv);
  // Reports carry runtime + simulation counts (Table VIII inputs).
  EXPECT_GT(ex.optimized_report.runtime_s, 0.0);
  EXPECT_GT(ex.optimized_report.testbenches, 100);
}

TEST(StrongArmExperiment, TableVIDelayOrdering) {
  set_log_level(LogLevel::kError);
  const CircuitExperiment ex = run_strongarm(t(), {}, /*with_manual=*/false);
  const auto& sch = ex.results.at("schematic");
  const auto& conv = ex.results.at("conventional");
  const auto& work = ex.results.at("this_work");
  EXPECT_LT(sch.at("delay_ps"), work.at("delay_ps"));
  EXPECT_LT(work.at("delay_ps"), conv.at("delay_ps"));
}

}  // namespace
}  // namespace olp::circuits

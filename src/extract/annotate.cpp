#include "extract/annotate.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace olp::extract {

namespace {
/// Nominal (schematic-assumption) junction geometry: every finger fully
/// shared, i.e. half an inner diffusion pitch per side.
void nominal_junctions(const tech::Technology& t, double w, double l,
                       double& as, double& ad, double& ps, double& pd) {
  const double inner = (t.poly_pitch - t.gate_length) * 0.5;
  (void)l;
  as = ad = inner * w;
  ps = pd = 2.0 * (inner + w);
}
}  // namespace

std::map<std::string, spice::NodeId> annotate_primitive(
    spice::Circuit& ckt, const pcell::PrimitiveLayout& layout,
    const tech::Technology& t, const std::string& prefix,
    const AnnotateOptions& options) {
  std::map<std::string, spice::NodeId> port_nodes;
  std::map<std::string, spice::NodeId> inner_nodes;

  auto port_node = [&](const std::string& net_name) {
    if (auto it = options.port_mapping.find(net_name);
        it != options.port_mapping.end()) {
      return it->second;
    }
    return ckt.node(prefix + net_name);
  };

  // Create port and (extracted mode) internal nodes, plus strap parasitics.
  for (const auto& [net_name, strap] : layout.nets) {
    const spice::NodeId port = port_node(net_name);
    port_nodes[net_name] = port;
    if (options.ideal) {
      inner_nodes[net_name] = port;
      continue;
    }
    int wires = 1;
    if (auto it = options.tuning.find(net_name); it != options.tuning.end()) {
      OLP_CHECK(it->second >= 1, "tuning wire count must be >= 1");
      wires = it->second;
    }
    const double r = strap.resistance(t, wires);
    const double c = strap.capacitance(t, wires);
    if (options.lump_nets.count(net_name)) {
      inner_nodes[net_name] = port;
      if (c > 0) {
        ckt.add_capacitor(prefix + "Cw." + net_name, port, spice::kGround, c);
      }
      continue;
    }
    const spice::NodeId inner = ckt.node(prefix + net_name + ".x");
    inner_nodes[net_name] = inner;
    ckt.add_resistor(prefix + "R." + net_name, inner, port,
                     std::max(r, 1e-3));
    if (c > 0) {
      ckt.add_capacitor(prefix + "Cw." + net_name + ".i", inner,
                        spice::kGround, 0.5 * c);
      ckt.add_capacitor(prefix + "Cw." + net_name + ".o", port,
                        spice::kGround, 0.5 * c);
    }
  }
  // Ports that exist in the netlist but carry no devices (possible for
  // degenerate configs) still get nodes.
  for (const std::string& port : layout.netlist.ports) {
    if (!port_nodes.count(port)) {
      const spice::NodeId n = port_node(port);
      port_nodes[port] = n;
      inner_nodes[port] = n;
    }
  }

  for (const pcell::LogicalDevice& ld : layout.netlist.devices) {
    const auto it = layout.devices.find(ld.name);
    OLP_CHECK(it != layout.devices.end(),
              "layout missing device " + ld.name);
    const pcell::DevicePhysical& phys = it->second;

    spice::Mosfet m;
    m.name = prefix + ld.name;
    m.d = inner_nodes.at(ld.drain_net);
    m.g = inner_nodes.at(ld.gate_net);
    m.s = inner_nodes.at(ld.source_net);
    m.b = ld.mos_type == spice::MosType::kNmos ? options.nmos_bulk
                                               : options.pmos_bulk;
    m.model = ld.mos_type == spice::MosType::kNmos ? options.nmos_model
                                                   : options.pmos_model;
    m.w = phys.w;
    m.l = phys.l;
    double extra = 0.0;
    if (auto it = options.extra_dvth.find(ld.name);
        it != options.extra_dvth.end()) {
      extra = it->second;
    }
    if (options.ideal) {
      nominal_junctions(t, phys.w, phys.l, m.as, m.ad, m.ps, m.pd);
      m.delta_vth = ld.vth_offset + extra;
      m.mobility_mult = 1.0;
    } else {
      m.as = phys.as;
      m.ad = phys.ad;
      m.ps = phys.ps;
      m.pd = phys.pd;
      m.delta_vth = phys.delta_vth + ld.vth_offset + extra;
      m.mobility_mult = phys.mobility_mult;
    }
    ckt.add_mosfet(std::move(m));
  }
  return port_nodes;
}

void add_wire_pi(spice::Circuit& ckt, const std::string& name,
                 spice::NodeId a, spice::NodeId b, const WireRc& rc) {
  OLP_CHECK(a != b, "wire endpoints must differ");
  ckt.add_resistor(name + ".r", a, b, std::max(rc.resistance, 1e-3));
  if (rc.capacitance > 0) {
    ckt.add_capacitor(name + ".ca", a, spice::kGround,
                      0.5 * rc.capacitance);
    ckt.add_capacitor(name + ".cb", b, spice::kGround,
                      0.5 * rc.capacitance);
  }
}

WireRc wire_rc(const tech::Technology& t, tech::Layer layer, double length,
               int parallel) {
  WireRc rc;
  rc.resistance = t.wire_res(layer, length, parallel);
  rc.capacitance = t.wire_cap(layer, length, parallel);
  return rc;
}

WireRc series(const WireRc& a, const WireRc& b) {
  return WireRc{a.resistance + b.resistance, a.capacitance + b.capacitance};
}

}  // namespace olp::extract

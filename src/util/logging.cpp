#include "util/logging.hpp"

#include <atomic>
#include <cctype>
#include <iostream>
#include <string>

#include "util/env.hpp"

namespace olp {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

LogLevel log_level_from_env(const char* env_var, LogLevel fallback) {
  if (!env::has(env_var)) return fallback;
  std::string value = env::str(env_var);
  for (char& c : value) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (value == "debug" || value == "0") return LogLevel::kDebug;
  if (value == "info" || value == "1") return LogLevel::kInfo;
  if (value == "warn" || value == "warning" || value == "2") {
    return LogLevel::kWarn;
  }
  if (value == "error" || value == "3") return LogLevel::kError;
  if (value == "off" || value == "none" || value == "4") return LogLevel::kOff;
  return fallback;
}

namespace detail {
void log_message(LogLevel level, const std::string& msg) {
  std::cerr << "[olp " << level_name(level) << "] " << msg << '\n';
}
}  // namespace detail

}  // namespace olp

#include "circuits/batch.hpp"

#include <exception>
#include <map>
#include <memory>
#include <utility>

#include "core/eval_cache.hpp"
#include "util/budget.hpp"
#include "util/obs.hpp"
#include "util/table.hpp"
#include "util/task_pool.hpp"
#include "util/trace_export.hpp"

namespace olp::circuits {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const char* job_status_name(JobStatus status) {
  switch (status) {
    case JobStatus::kSucceeded:
      return "succeeded";
    case JobStatus::kDegraded:
      return "degraded";
    case JobStatus::kFailed:
      return "failed";
  }
  return "unknown";
}

std::size_t BatchReport::succeeded() const {
  std::size_t n = 0;
  for (const JobResult& j : jobs) n += j.status == JobStatus::kSucceeded;
  return n;
}

std::size_t BatchReport::degraded() const {
  std::size_t n = 0;
  for (const JobResult& j : jobs) n += j.status == JobStatus::kDegraded;
  return n;
}

std::size_t BatchReport::failed() const {
  std::size_t n = 0;
  for (const JobResult& j : jobs) n += j.status == JobStatus::kFailed;
  return n;
}

const JobResult* BatchReport::find(const std::string& name) const {
  for (const JobResult& j : jobs) {
    if (j.name == name) return &j;
  }
  return nullptr;
}

std::string BatchReport::summary_table() const {
  TextTable table("Batch: " + std::to_string(jobs.size()) + " jobs, " +
                  std::to_string(workers) + " workers, " + fixed(wall_s, 2) +
                  " s wall");
  table.set_header({"job", "mode", "status", "run_s", "testbenches",
                    "diagnostics", "note"});
  for (const JobResult& j : jobs) {
    std::string note;
    if (j.status == JobStatus::kFailed) {
      note = j.error;
    } else if (j.report.budget.exhausted) {
      note = "budget exhausted";
    }
    table.add_row({j.name, flow_mode_name(j.mode), job_status_name(j.status),
                   fixed(j.run_s, 2), std::to_string(j.report.testbenches),
                   std::to_string(j.report.diagnostics.size()), note});
  }
  table.add_rule();
  table.add_row({"total", "", std::to_string(succeeded()) + " ok",
                 fixed(wall_s, 2), std::to_string(total_testbenches),
                 "cache " + std::to_string(cache_hits) + "h/" +
                     std::to_string(cache_misses) + "m",
                 "cross-job hits " + std::to_string(cross_job_hits)});
  return table.render();
}

std::string BatchReport::to_jsonl() const {
  std::string out;
  for (const JobResult& j : jobs) {
    out += "{\"job\":\"" + json_escape(j.name) + "\"";
    out += ",\"mode\":\"" + std::string(flow_mode_name(j.mode)) + "\"";
    out += ",\"status\":\"" + std::string(job_status_name(j.status)) + "\"";
    if (!j.error.empty()) out += ",\"error\":\"" + json_escape(j.error) + "\"";
    out += ",\"queued_s\":" + fixed(j.queued_s, 4);
    out += ",\"run_s\":" + fixed(j.run_s, 4);
    out += ",\"testbenches\":" + std::to_string(j.report.testbenches);
    out += ",\"degraded\":" + std::string(j.report.degraded ? "true" : "false");
    out += ",\"budget_exhausted\":" +
           std::string(j.report.budget.exhausted ? "true" : "false");
    out += ",\"diagnostics\":" + std::to_string(j.report.diagnostics.size());
    out += "}\n";
  }
  out += "{\"batch\":{\"jobs\":" + std::to_string(jobs.size());
  out += ",\"succeeded\":" + std::to_string(succeeded());
  out += ",\"degraded\":" + std::to_string(degraded());
  out += ",\"failed\":" + std::to_string(failed());
  out += ",\"workers\":" + std::to_string(workers);
  out += ",\"wall_s\":" + fixed(wall_s, 4);
  out += ",\"testbenches\":" + std::to_string(total_testbenches);
  out += ",\"cache_hits\":" + std::to_string(cache_hits);
  out += ",\"cache_misses\":" + std::to_string(cache_misses);
  out += ",\"cache_entries\":" + std::to_string(cache_entries);
  out += ",\"cross_job_hits\":" + std::to_string(cross_job_hits);
  out += ",\"cache_scopes\":" + std::to_string(cache_scopes);
  out += "}}\n";
  return out;
}

void BatchReport::write_jsonl(const std::string& path) const {
  obs::write_text_file(path, to_jsonl());
}

BatchRunner::BatchRunner(const tech::Technology& technology,
                         BatchOptions options)
    : tech_(technology), options_(options) {
  options_.workers = threads_from_env(options_.workers);
}

BatchReport BatchRunner::run(const std::vector<FlowJob>& jobs) const {
  const MonotonicStopwatch watch;
  // The runner owns the obs registry for the whole batch: rebase once here,
  // snapshot once at the end. Jobs run with own_telemetry = false so none of
  // them clobbers the shared window.
  obs::Registry::global().rebase();
  obs::Span root("batch.run");

  BatchReport report;
  report.workers = options_.workers;
  report.jobs.resize(jobs.size());

  // One shared cache per evaluation scope (technology + model cards). Jobs
  // in different scopes must not share entries — the evaluation key does not
  // cover the technology — so each scope gets its own cache. Built up front,
  // serially, so the map is read-only while jobs run.
  std::map<std::string, std::unique_ptr<core::EvalCache>> caches;
  std::vector<core::EvalCache*> cache_of(jobs.size(), nullptr);
  if (options_.share_cache) {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const tech::Technology& jt =
          jobs[i].technology != nullptr ? *jobs[i].technology : tech_;
      const std::string scope =
          core::EvalCache::scope_key(jt, default_nmos(), default_pmos());
      auto& slot = caches[scope];
      if (slot == nullptr) slot = std::make_unique<core::EvalCache>();
      cache_of[i] = slot.get();
    }
  }

  TaskPool pool(options_.workers);
  pool.parallel_for(jobs.size(), [&](std::size_t i) {
    const FlowJob& job = jobs[i];
    JobResult& result = report.jobs[i];
    result.name = job.name.empty() ? "job" + std::to_string(i) : job.name;
    result.mode = job.mode;
    result.queued_s = watch.seconds();
    const MonotonicStopwatch job_watch;
    const tech::Technology& jt =
        job.technology != nullptr ? *job.technology : tech_;

    FlowOptions jopt = job.options;
    // Batch plumbing overrides: every parallel stage runs on the shared
    // pool, telemetry is pooled, and the scope cache (when sharing) replaces
    // any per-job cache setting. Budget fields pass through untouched —
    // that's the per-job isolation.
    jopt.pool = &pool;
    jopt.num_threads = 1;  // never spawn an engine-local pool
    jopt.own_telemetry = false;
    if (cache_of[i] != nullptr) {
      jopt.shared_eval_cache = cache_of[i];
      jopt.cache_client = static_cast<int>(i);
    }
    try {
      const FlowEngine engine(jt, jopt);
      result.realization =
          engine.run(job.mode, job.instances, job.routed_nets, &result.report);
      result.status = result.report.degraded ? JobStatus::kDegraded
                                             : JobStatus::kSucceeded;
    } catch (const std::exception& e) {
      result.status = JobStatus::kFailed;
      result.error = e.what();
      obs::counter_add("batch.jobs_failed");
    } catch (...) {
      result.status = JobStatus::kFailed;
      result.error = "unknown exception";
      obs::counter_add("batch.jobs_failed");
    }
    result.run_s = job_watch.seconds();
    obs::counter_add("batch.jobs");
    return true;  // one job's failure never stops the batch
  });

  for (const JobResult& j : report.jobs) {
    report.total_testbenches += j.report.testbenches;
  }
  report.cache_scopes = caches.size();
  for (const auto& [scope, cache] : caches) {
    const core::EvalCacheStats s = cache->stats();
    report.cache_hits += s.hits;
    report.cache_misses += s.misses;
    report.cache_entries += s.entries;
    report.cross_job_hits += s.cross_client_hits;
  }
  if (obs::enabled()) {
    obs::counter_add("batch.cross_job_hits", report.cross_job_hits);
  }
  report.wall_s = watch.seconds();
  root.close();
  if (obs::enabled()) {
    report.telemetry =
        obs::make_flow_telemetry(obs::Registry::global().snapshot());
  }
  return report;
}

}  // namespace olp::circuits

// olp_serviced: the resident layout service daemon.
//
// Speaks the JSONL protocol of service/request.hpp on stdin/stdout — one
// request per line in, one JSON event per line out. Run it interactively:
//
//   $ build/examples/olp_serviced
//   {"op":"ping"}
//   {"event":"pong"}
//   {"op":"submit","client":"alice","circuit":"vco","mode":"conventional"}
//   {"id":"r1","event":"accepted","queue_depth":1}
//   {"id":"r1","event":"done","status":"succeeded",...}
//   {"op":"drain"}
//   {"event":"drained","cancelled":false}
//
// or drive it from scripts (tests/run_service_smoke.sh pipes a FIFO in).
// SIGTERM/SIGINT trigger a graceful drain: in-flight and queued jobs
// finish, the cache snapshot is flushed, then the process exits 0.
//
// Configuration is entirely environment-driven (see util/env.hpp):
// OLP_SERVICE_WORKERS, OLP_SERVICE_QUEUE_DEPTH, OLP_SERVICE_CLIENT_QUEUE,
// OLP_SERVICE_RETRIES, OLP_SERVICE_SNAPSHOT, OLP_SERVICE_SNAPSHOT_EVERY,
// OLP_CACHE_MAX_ENTRIES, OLP_THREADS. Live metrics: OLP_OBS=1 turns on the
// process-wide obs registry (lock-wait, pool queue-depth and busy/idle
// families; the {"op":"metrics"} verb dumps them), and OLP_METRICS_PATH
// appends a metrics JSONL line every OLP_METRICS_EVERY completed jobs and
// at drain — each line closes its interval (the registry is rebased), so a
// resident daemon's telemetry memory stays bounded. When OLP_SERVICE_SOCKET
// names a path (POSIX only), the daemon ALSO accepts one connection at a
// time on a unix-domain stream socket speaking the same protocol — stdin
// remains the primary transport and EOF there still drains the daemon.

#include <atomic>
#include <csignal>
#include <iostream>
#include <string>

#include <olp/olp.hpp>

#if (defined(__unix__) || defined(__APPLE__)) && defined(__GLIBCXX__)
#define OLP_SERVICED_HAS_SOCKETS 1
#else
#define OLP_SERVICED_HAS_SOCKETS 0
#endif

#if OLP_SERVICED_HAS_SOCKETS
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <thread>

#include <ext/stdio_filebuf.h>  // libstdc++: iostream over an accepted fd
#endif

namespace {

std::atomic<bool> g_drain_requested{false};

void on_terminate(int) { g_drain_requested.store(true); }

#if OLP_SERVICED_HAS_SOCKETS
/// Accepts connections on a unix socket, one at a time, each speaking the
/// JSONL protocol. Exits when accept fails (socket closed by main).
void socket_loop(olp::service::LayoutService* service, int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) return;
    __gnu_cxx::stdio_filebuf<char> inbuf(fd, std::ios::in);
    __gnu_cxx::stdio_filebuf<char> outbuf(::dup(fd), std::ios::out);
    std::istream in(&inbuf);
    std::ostream out(&outbuf);
    service->serve(in, out);  // returns on client EOF or drain verb
    if (service->draining()) return;
  }
}
#endif

}  // namespace

int main() {
  // Interrupting reads matters: SIGTERM must break std::getline on stdin so
  // the main loop can drain. sigaction WITHOUT SA_RESTART does exactly that
  // (plain std::signal may set SA_RESTART on some platforms).
#if OLP_SERVICED_HAS_SOCKETS
  struct sigaction sa = {};
  sa.sa_handler = on_terminate;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
#else
  std::signal(SIGTERM, on_terminate);
  std::signal(SIGINT, on_terminate);
#endif

  const olp::tech::Technology technology = olp::tech::make_default_finfet_tech();
  olp::service::ServiceOptions options;
  olp::service::LayoutService service(technology, options);
  service.start();

#if OLP_SERVICED_HAS_SOCKETS
  int listen_fd = -1;
  std::thread socket_thread;
  const std::string socket_path = olp::env::str("OLP_SERVICE_SOCKET");
  if (!socket_path.empty()) {
    listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd >= 0) {
      sockaddr_un addr = {};
      addr.sun_family = AF_UNIX;
      std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                    socket_path.c_str());
      ::unlink(socket_path.c_str());
      if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
                 sizeof(addr)) == 0 &&
          ::listen(listen_fd, 4) == 0) {
        socket_thread = std::thread(socket_loop, &service, listen_fd);
      } else {
        std::cerr << "{\"event\":\"socket_error\",\"path\":\""
                  << olp::jsonl::escape(socket_path) << "\"}\n";
        ::close(listen_fd);
        listen_fd = -1;
      }
    }
  }
#endif

  // serve() returns on stdin EOF, a drain/shutdown verb, or a signal
  // interrupting the read — and has drained the service by then.
  service.serve(std::cin, std::cout);

#if OLP_SERVICED_HAS_SOCKETS
  if (listen_fd >= 0) {
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
    ::unlink(socket_path.c_str());
  }
  if (socket_thread.joinable()) socket_thread.join();
#endif

  // Final stats on stderr — keeps stdout a pure JSONL event stream.
  std::cerr << service.stats().to_json() << "\n";
  return 0;
}

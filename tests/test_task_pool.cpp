// TaskPool tests: the ordered-reduction contract must hold under adversarial
// completion orders (chaos-injected per-task delays), early exit must stop
// further claims, exceptions must propagate deterministically, and a
// Budget::cancel() from a non-worker thread must drain a running pool
// promptly.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/budget.hpp"
#include "util/faults.hpp"
#include "util/task_pool.hpp"

namespace olp {
namespace {

TEST(TaskPool, ThreadsFromEnvOverride) {
  unsetenv("OLP_THREADS");
  EXPECT_EQ(threads_from_env(1), 1);
  EXPECT_EQ(threads_from_env(4), 4);
  setenv("OLP_THREADS", "3", 1);
  EXPECT_EQ(threads_from_env(1), 3);
  setenv("OLP_THREADS", "0", 1);
  EXPECT_GE(threads_from_env(1), 1);  // hardware concurrency, at least one
  setenv("OLP_THREADS", "garbage", 1);
  EXPECT_EQ(threads_from_env(2), 2);  // non-numeric leaves the base
  setenv("OLP_THREADS", "", 1);
  EXPECT_EQ(threads_from_env(2), 2);
  unsetenv("OLP_THREADS");
}

TEST(TaskPool, ResolveNumThreads) {
  EXPECT_EQ(resolve_num_threads(1), 1);
  EXPECT_EQ(resolve_num_threads(7), 7);
  EXPECT_GE(resolve_num_threads(0), 1);
  EXPECT_GE(resolve_num_threads(-4), 1);
}

TEST(TaskPool, SingleThreadRunsInlineInOrder) {
  TaskPool pool(1);
  EXPECT_EQ(pool.threads(), 1);
  std::vector<std::size_t> order;
  pool.parallel_for(16, [&](std::size_t i) {
    order.push_back(i);  // inline path: no synchronization needed
    return true;
  });
  std::vector<std::size_t> expect(16);
  std::iota(expect.begin(), expect.end(), 0u);
  EXPECT_EQ(order, expect);
}

TEST(TaskPool, SingleThreadStopsAtFalseLikeABreak) {
  TaskPool pool(1);
  std::vector<std::size_t> ran;
  pool.parallel_for(16, [&](std::size_t i) {
    if (i == 5) return false;
    ran.push_back(i);
    return true;
  });
  // Exact break semantics: indices after the stop are never claimed.
  EXPECT_EQ(ran, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(TaskPool, OrderedReductionUnderAdversarialCompletionOrder) {
  // Chaos delays scramble completion order; the merged (index-addressed)
  // result must not care.
  FaultConfig config;
  config.seed = 7;
  config.pool_delay_rate = 1.0;  // every task sleeps an index-derived amount
  ScopedFaultInjection chaos(config);

  TaskPool pool(8);
  EXPECT_EQ(pool.threads(), 8);
  const std::size_t n = 64;
  std::vector<long> slots(n, -1);
  std::mutex mu;
  std::vector<std::size_t> completion;
  pool.parallel_for(n, [&](std::size_t i) {
    slots[i] = static_cast<long>(i * i);
    std::lock_guard<std::mutex> lock(mu);
    completion.push_back(i);
    return true;
  });

  ASSERT_EQ(completion.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(slots[i], static_cast<long>(i * i)) << i;
  }
  // The index-derived sleeps guarantee at least one inversion in completion
  // order — this is what makes the slot-merge contract load-bearing.
  std::vector<std::size_t> sorted = completion;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_NE(completion, sorted);
  EXPECT_GT(FaultInjector::global().fired(FaultSite::kPoolTaskDelay), 0);
}

TEST(TaskPool, EarlyExitStopsFurtherClaims) {
  TaskPool pool(4);
  const std::size_t n = 1000;
  std::atomic<long> executed{0};
  std::vector<char> ran(n, 0);
  pool.parallel_for(n, [&](std::size_t i) {
    ran[i] = 1;
    executed.fetch_add(1);
    // The sleep keeps per-task runtime non-trivial so the stop request
    // propagates within a small number of concurrent claims.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return i < 10;  // index 10 requests the stop
  });
  // Every index up to the stop ran (claims are handed out in order); only
  // tasks claimed while index 10 was still in flight ran past it — far from
  // all 1000 (generous margin for scheduling jitter on loaded machines).
  for (std::size_t i = 0; i <= 10; ++i) EXPECT_TRUE(ran[i]) << i;
  EXPECT_LE(executed.load(), 100);
}

TEST(TaskPool, LowestIndexExceptionWins) {
  TaskPool pool(4);
  for (int repeat = 0; repeat < 3; ++repeat) {
    try {
      pool.parallel_for(32, [&](std::size_t i) -> bool {
        throw std::runtime_error("task " + std::to_string(i));
      });
      FAIL() << "parallel_for must rethrow";
    } catch (const std::runtime_error& e) {
      // Deterministic: whatever completion order, the error reported is the
      // one thrown by the lowest claimed index that threw — index 0 here,
      // since every task throws.
      EXPECT_STREQ(e.what(), "task 0");
    }
    // The pool survives a throwing batch and stays usable.
    std::vector<int> slots(8, 0);
    pool.parallel_for(8, [&](std::size_t i) {
      slots[i] = 1;
      return true;
    });
    EXPECT_EQ(std::accumulate(slots.begin(), slots.end(), 0), 8);
  }
}

TEST(TaskPool, CancelFromNonWorkerThreadDrainsPromptly) {
  Budget budget;  // unlimited: only cancel() can trip it
  TaskPool pool(4);
  const std::size_t n = 100000;
  std::atomic<long> executed{0};
  const MonotonicStopwatch watch;

  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    budget.cancel();
  });
  pool.parallel_for(n, [&](std::size_t) {
    if (budget.check()) return false;
    executed.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    return true;
  });
  canceller.join();

  // The pool drained long before the 100k tasks could have run (at 200 us
  // each, 4 threads would need ~5 s); generous bound for loaded machines.
  EXPECT_LT(watch.seconds(), 3.0);
  EXPECT_LT(executed.load(), static_cast<long>(n));
  EXPECT_TRUE(budget.exhausted());
  EXPECT_EQ(budget.tripped(), BudgetKind::kCancelled);
}

TEST(TaskPool, RunIndexedWithoutPoolIsAPlainOrderedLoop) {
  std::vector<std::size_t> order;
  run_indexed(nullptr, 8, [&](std::size_t i) {
    order.push_back(i);
    return i != 4;  // break after index 4
  });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(TaskPool, EmptyBatchIsANoOp) {
  TaskPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) {
    ran = true;
    return true;
  });
  EXPECT_FALSE(ran);
}

}  // namespace
}  // namespace olp

#include "spice/export.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace olp::spice {

std::string tran_to_csv(const Simulator& sim, const TranResult& result,
                        const std::vector<std::string>& nodes) {
  OLP_CHECK(!nodes.empty(), "CSV export needs at least one node");
  const Circuit& ckt = sim.circuit();
  std::vector<NodeId> ids;
  std::ostringstream os;
  os.precision(9);
  os << "time";
  for (const std::string& n : nodes) {
    ids.push_back(ckt.find_node(n));
    os << ',' << n;
  }
  os << '\n';
  for (std::size_t k = 0; k < result.times.size(); ++k) {
    os << result.times[k];
    for (NodeId id : ids) {
      os << ',' << sim.voltage(result.samples[k], id);
    }
    os << '\n';
  }
  return os.str();
}

std::string ac_to_csv(const Simulator& sim, const AcResult& result,
                      const std::vector<std::string>& nodes) {
  OLP_CHECK(!nodes.empty(), "CSV export needs at least one node");
  const Circuit& ckt = sim.circuit();
  std::vector<NodeId> ids;
  std::ostringstream os;
  os.precision(9);
  os << "freq";
  for (const std::string& n : nodes) {
    ids.push_back(ckt.find_node(n));
    os << ',' << n << "_mag_db," << n << "_phase_deg";
  }
  os << '\n';
  for (std::size_t k = 0; k < result.frequencies.size(); ++k) {
    os << result.frequencies[k];
    for (NodeId id : ids) {
      const std::complex<double> v = sim.ac_voltage(result.solutions[k], id);
      os << ',' << db(std::max(std::abs(v), 1e-30)) << ','
         << std::arg(v) * 180.0 / M_PI;
    }
    os << '\n';
  }
  return os.str();
}

void write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  OLP_CHECK(static_cast<bool>(out), "cannot open " + path + " for writing");
  out << text;
  OLP_CHECK(static_cast<bool>(out), "failed writing " + path);
}

}  // namespace olp::spice

#pragma once
// Primitive definitions: the leaf cells of the hierarchical flow.
//
// A primitive is a small group of devices (differential pair, current mirror,
// ...) with named logical devices and named terminal nets. The generator in
// generator.hpp realizes a primitive as FinFET rows for a given layout
// configuration (nfin, nf, m, placement pattern — paper Fig. 5), and attaches
// the parasitic/LDE annotations the optimizer consumes.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "geom/layout.hpp"
#include "spice/model.hpp"
#include "tech/technology.hpp"

namespace olp::pcell {

/// Primitive families from the paper's library taxonomy (Sec. II-A).
enum class PrimitiveType {
  kDiffPair,
  kCurrentMirror,        ///< passive (diode-connected reference)
  kActiveCurrentMirror,  ///< load mirror in the signal path
  kCurrentSource,
  kCommonSource,
  kCurrentStarvedInverter,
  kCrossCoupledPair,
  kSwitch,
  kCapacitor,
};

const char* primitive_type_name(PrimitiveType type);

/// Placement patterns for matched devices (paper Table III).
enum class PlacementPattern {
  kABBA,  ///< common centroid
  kABAB,  ///< interdigitated
  kAABB,  ///< non-common-centroid (split halves)
};

const char* pattern_name(PlacementPattern pattern);

/// One logical transistor within a primitive.
struct LogicalDevice {
  std::string name;          ///< e.g. "MA"
  spice::MosType mos_type = spice::MosType::kNmos;
  std::string drain_net;     ///< primitive-level net names
  std::string gate_net;
  std::string source_net;
  /// Relative size: this device gets `unit_ratio` units per multiplicity
  /// step (mirror ratios, starve devices sized differently, ...).
  int unit_ratio = 1;
  /// Index of the matching group; devices sharing a group are interleaved
  /// by the placement pattern. -1 = unmatched (gets its own rows).
  int match_group = -1;
  /// Device-flavor threshold offset (e.g. low-Vt starve devices), applied in
  /// both schematic and extracted mode, on top of any LDE shift.
  double vth_offset = 0.0;
};

/// Netlist + matching description of a primitive (technology independent).
struct PrimitiveNetlist {
  PrimitiveType type = PrimitiveType::kDiffPair;
  std::string name;
  std::vector<LogicalDevice> devices;
  /// Terminal nets exposed as ports, in display order.
  std::vector<std::string> ports;
  /// Port pairs that the detailed router must keep geometrically symmetric
  /// (paper Sec. III-B1: offset "is maintained by the detailed router
  /// through a geometric constraint that keeps symmetric routes"). External
  /// wires on one member are mirrored onto the other during evaluation, and
  /// the flow equalizes the parallel-route counts of the nets they join.
  std::vector<std::pair<std::string, std::string>> symmetric_ports;
};

/// One layout configuration of a primitive (paper Fig. 5(b)):
/// nfin fins per finger, nf fingers per unit, m units (multiplicity), with
/// nfin * nf * m = total fins per unit-ratio-1 device.
struct LayoutConfig {
  int nfin = 8;
  int nf = 4;
  int m = 1;
  PlacementPattern pattern = PlacementPattern::kABBA;
  bool dummies = true;  ///< edge dummy fingers (reduce LOD, cost area)

  int fins_per_device() const { return nfin * nf * m; }
  std::string to_string() const;
};

/// An internal (within-primitive) routed net: enough information to evaluate
/// its RC for any number of parallel strap wires (primitive tuning).
///
/// Mesh model (the paper: "in FinFET nodes it is common to use mesh-like
/// routing to reduce resistive parasitics in lower metal layers"): every
/// contacted diffusion region carries a short vertical M1 bar of
/// `bar_length`; the bars of one row drop onto a horizontal bus of
/// `span_length`, `base_tracks` wide; the `rows` buses act in parallel and
/// join through a via ladder. Tuning ("add parallel wires at the tuning
/// terminal") multiplies the bus track count, cutting bus resistance at the
/// price of bus capacitance.
struct InternalNet {
  tech::Layer layer = tech::Layer::kM1;
  double span_length = 0.0;   ///< per-row bus length [m]
  double bar_length = 0.0;    ///< per-contact vertical bar length [m]
  double trunk_length = 0.0;  ///< via-ladder trunk length [m] (cap only)
  int rows = 1;               ///< parallel row buses
  int n_contacts = 1;         ///< contact bars in parallel (all rows)
  double contact_res = 0.0;   ///< single-contact resistance [ohm]
  int base_tracks = 2;        ///< bus width in tracks before tuning

  /// Distributed-collection factor: with current injected uniformly along a
  /// bus and collected at a via ladder, the effective series resistance of
  /// the bus is about a quarter of its end-to-end value.
  static constexpr double kBusDistribution = 0.25;

  /// Lumped series resistance with `parallel` bus-width multiplier.
  double resistance(const tech::Technology& t, int parallel = 1) const;
  /// Lumped capacitance with `parallel` bus-width multiplier.
  double capacitance(const tech::Technology& t, int parallel = 1) const;
};

/// Realized geometry/parasitics of one logical device in one configuration.
struct DevicePhysical {
  double w = 0.0;          ///< total effective width [m]
  double l = 0.0;          ///< channel length [m]
  double as = 0.0, ad = 0.0;  ///< diffusion areas (sharing-aware) [m^2]
  double ps = 0.0, pd = 0.0;  ///< diffusion perimeters [m]
  double delta_vth = 0.0;     ///< mean LDE Vth shift (LOD + WPE + gradient) [V]
  double mobility_mult = 1.0; ///< mean LDE mobility multiplier
};

/// A generated primitive layout: geometry plus per-device annotations.
struct PrimitiveLayout {
  PrimitiveNetlist netlist;
  LayoutConfig config;
  geom::Layout geometry;
  std::map<std::string, DevicePhysical> devices;  ///< by LogicalDevice::name
  /// Internal strap of every primitive net (shared nets have one strap).
  std::map<std::string, InternalNet> nets;

  double width() const { return geom::to_meters(geometry.bounding_box().width()); }
  double height() const {
    return geom::to_meters(geometry.bounding_box().height());
  }
  double aspect_ratio() const { return geometry.aspect_ratio(); }
  double area() const { return width() * height(); }
};

// --- Primitive netlist factories -------------------------------------------

/// NMOS differential pair: devices MA/MB, ports da, db, ga, gb, s.
PrimitiveNetlist make_diff_pair();
/// Passive NMOS current mirror 1:ratio: devices MREF/MOUT, ports ref, out, s.
PrimitiveNetlist make_current_mirror(int ratio = 1);
/// Cascoded NMOS current mirror 1:ratio (paper Sec. II-A: "cascoded ...
/// structures"): two matched device rows (mirror pair + cascode pair),
/// ports ref, out, s.
PrimitiveNetlist make_cascode_current_mirror(int ratio = 1);
/// Cascoded differential pair: input pair + cascode pair biased at vcasc;
/// ports da, db, ga, gb, vcasc, s.
PrimitiveNetlist make_cascode_diff_pair();
/// PMOS active (load) current mirror: ports ref, out, vdd.
PrimitiveNetlist make_active_current_mirror();
/// Single-transistor current source: ports bias (gate), out, s.
PrimitiveNetlist make_current_source(spice::MosType type = spice::MosType::kNmos);
/// Common-source amplifier device: ports in, out, s.
PrimitiveNetlist make_common_source();
/// Current-starved inverter: devices MPI/MNI (inverter) + MPS/MNS (starve),
/// ports in, out, vbp, vbn, vdd, vss. The starve devices are low-Vt
/// (`starve_vth_offset` below the regular threshold) so the stage keeps a
/// residual current at zero control voltage.
PrimitiveNetlist make_current_starved_inverter(double starve_vth_offset = -0.26);
/// NMOS cross-coupled pair: devices MA/MB, ports da, db, s.
PrimitiveNetlist make_cross_coupled_pair(spice::MosType type = spice::MosType::kNmos);
/// Cross-coupled pair with split sources (StrongARM latch stack):
/// MA: d=da g=db s=sa, MB: d=db g=da s=sb; ports da, db, sa, sb.
PrimitiveNetlist make_latch_pair(spice::MosType type = spice::MosType::kNmos);
/// Clocked switch transistor: ports clk (gate), a (drain), b (source).
PrimitiveNetlist make_switch(spice::MosType type = spice::MosType::kNmos);

}  // namespace olp::pcell

#pragma once
// Common-source amplifier with a current-source load (paper Fig. 2/Table I).
//
// Two primitives: the NMOS common-source input stage M1 and the PMOS
// current-source load M2. The drain net (Vout) carries the RC trade-off the
// paper's introduction illustrates: narrow wires cost resistance (Gm / Rout
// degradation), wide wires cost capacitance (UGF degradation), an optimized
// width recovers the schematic performance.

#include <map>
#include <string>
#include <vector>

#include "circuits/common.hpp"

namespace olp::circuits {

class CommonSourceAmp {
 public:
  explicit CommonSourceAmp(const tech::Technology& technology);

  /// Calibrates the load bias voltage to the target current and the input
  /// bias to center the output, then fills the primitive bias contexts.
  bool prepare();

  const std::vector<InstanceSpec>& instances() const { return instances_; }
  std::vector<InstanceSpec>& instances() { return instances_; }

  /// Fig. 2 metrics: "gain_db", "ugf_ghz", "power_uw".
  std::map<std::string, double> measure(const Realization& realization) const;

  std::vector<std::string> routed_nets() const { return {"out"}; }

  double target_current() const { return target_current_; }
  double load_cap() const { return load_cap_; }
  double input_bias() const { return vin_bias_; }
  double pmos_bias() const { return vbias_p_; }
  const tech::Technology& technology() const { return tech_; }

 private:
  spice::Circuit build(const Realization& realization) const;

  const tech::Technology& tech_;
  std::vector<InstanceSpec> instances_;
  double target_current_ = 290e-6;
  double load_cap_ = 100e-15;
  double vin_bias_ = 0.42;   // calibrated by prepare()
  double vbias_p_ = 0.45;    // calibrated by prepare()
  double vout_target_ = 0.42;
};

}  // namespace olp::circuits

#pragma once
// SVG rendering of layouts: a lightweight viewer format for inspecting
// generated primitives and assembled floorplans (fins, diffusion, poly,
// metals, pins), with a per-layer color scheme and optional net labels.

#include <string>

#include "geom/layout.hpp"

namespace olp::geom {

struct SvgOptions {
  double scale = 0.2;        ///< SVG pixels per nm
  bool label_pins = true;
  bool label_nets = false;   ///< annotate shapes with their net name
  double margin_px = 10.0;
};

/// Renders the layout as a standalone SVG document.
std::string to_svg(const Layout& layout, const SvgOptions& options = {});

/// Convenience: renders and writes to `path`; throws on I/O failure.
void write_svg(const Layout& layout, const std::string& path,
               const SvgOptions& options = {});

}  // namespace olp::geom

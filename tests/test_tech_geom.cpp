// Tests for the synthetic technology and the geometry layer.

#include <gtest/gtest.h>

#include "geom/geometry.hpp"
#include "geom/layout.hpp"
#include "tech/technology.hpp"
#include "util/units.hpp"

namespace olp {
namespace {

using namespace units;

// --- technology --------------------------------------------------------------

TEST(Technology, DefaultIsSelfConsistent) {
  const tech::Technology t = tech::make_default_finfet_tech();
  EXPECT_GT(t.fin_pitch, 0.0);
  EXPECT_GT(t.poly_pitch, t.gate_length);
  EXPECT_GT(t.vdd, 0.5);
  for (const tech::MetalLayerInfo& m : t.metals) {
    EXPECT_GT(m.min_width, 0.0);
    EXPECT_GT(m.sheet_res, 0.0);
    EXPECT_GT(m.cap_per_length, 0.0);
    EXPECT_NEAR(m.pitch, m.min_width + m.min_spacing, 1e-15);
  }
  // Preferred directions alternate.
  for (int l = 1; l < tech::kNumRoutingLayers; ++l) {
    EXPECT_NE(t.metals[static_cast<std::size_t>(l)].horizontal,
              t.metals[static_cast<std::size_t>(l - 1)].horizontal);
  }
}

TEST(Technology, PaperDpExampleSizing) {
  // W/L = 46 um / 14 nm realized with 960 fins (paper Sec. III-A).
  const tech::Technology t = tech::make_default_finfet_tech();
  EXPECT_NEAR(960.0 * t.fin_width_eff, 46e-6, 0.5e-6);
  EXPECT_NEAR(t.gate_length, 14e-9, 1e-12);
}

TEST(Technology, WireResScalesWithLengthAndParallel) {
  const tech::Technology t = tech::make_default_finfet_tech();
  const double r1 = t.wire_res(tech::Layer::kM3, 2 * um, 1);
  EXPECT_NEAR(t.wire_res(tech::Layer::kM3, 4 * um, 1), 2 * r1, 1e-9);
  EXPECT_NEAR(t.wire_res(tech::Layer::kM3, 2 * um, 2), r1 / 2, 1e-9);
}

TEST(Technology, WireCapGrowsSubLinearlyWithTracks) {
  const tech::Technology t = tech::make_default_finfet_tech();
  const double c1 = t.wire_cap(tech::Layer::kM3, 2 * um, 1);
  const double c2 = t.wire_cap(tech::Layer::kM3, 2 * um, 2);
  const double c4 = t.wire_cap(tech::Layer::kM3, 2 * um, 4);
  EXPECT_GT(c2, c1);
  EXPECT_GT(c4, c2);
  EXPECT_LT(c4, 4 * c1);  // inner-fringe sharing
}

TEST(Technology, ViaStackResistance) {
  const tech::Technology t = tech::make_default_finfet_tech();
  const double r13 = t.via_stack_res(tech::Layer::kM1, tech::Layer::kM3);
  EXPECT_NEAR(r13, 2 * t.via_res, 1e-12);
  EXPECT_NEAR(t.via_stack_res(tech::Layer::kM1, tech::Layer::kM3, 2),
              r13 / 2, 1e-12);
  EXPECT_NEAR(t.via_stack_res(tech::Layer::kM2, tech::Layer::kM2), 0.0,
              1e-12);
}

TEST(Technology, MetalIndexMapping) {
  EXPECT_EQ(tech::metal_index(tech::Layer::kM1), 0);
  EXPECT_EQ(tech::metal_index(tech::Layer::kM6), 5);
  EXPECT_EQ(tech::metal_index(tech::Layer::kPoly), -1);
  EXPECT_EQ(tech::metal_layer(2), tech::Layer::kM3);
  EXPECT_THROW(tech::metal_layer(6), InvalidArgumentError);
}

TEST(Technology, NonMetalWireResThrows) {
  const tech::Technology t = tech::make_default_finfet_tech();
  EXPECT_THROW(t.wire_res(tech::Layer::kPoly, 1 * um), InvalidArgumentError);
}

// --- geometry ----------------------------------------------------------------

TEST(Geometry, CoordinateConversionRoundTrips) {
  EXPECT_EQ(geom::to_nm(1.5e-6), 1500);
  EXPECT_DOUBLE_EQ(geom::to_meters(1500), 1.5e-6);
  EXPECT_EQ(geom::to_nm(-2e-9), -2);
}

TEST(Geometry, RectBasics) {
  const geom::Rect r{0, 0, 100, 50};
  EXPECT_EQ(r.width(), 100);
  EXPECT_EQ(r.height(), 50);
  EXPECT_DOUBLE_EQ(r.area(), 5000.0);
  EXPECT_DOUBLE_EQ(r.aspect_ratio(), 2.0);
  EXPECT_TRUE(r.contains({50, 25}));
  EXPECT_FALSE(r.contains({150, 25}));
}

TEST(Geometry, RectOrderingEnforced) {
  EXPECT_THROW((geom::Rect{10, 0, 0, 5}), InvalidArgumentError);
}

TEST(Geometry, RectIntersectionAndUnion) {
  const geom::Rect a{0, 0, 10, 10};
  const geom::Rect b{5, 5, 15, 15};
  const geom::Rect c{20, 20, 30, 30};
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(c));
  const geom::Rect u = a.united(c);
  EXPECT_EQ(u, (geom::Rect{0, 0, 30, 30}));
}

TEST(Geometry, Translation) {
  const geom::Rect r = geom::Rect{0, 0, 10, 10}.translated(5, -3);
  EXPECT_EQ(r, (geom::Rect{5, -3, 15, 7}));
}

TEST(Geometry, BoundingBoxOfSet) {
  const geom::Rect bb = geom::bounding_box(
      {{0, 0, 5, 5}, {10, -2, 12, 3}, {-1, 1, 2, 8}});
  EXPECT_EQ(bb, (geom::Rect{-1, -2, 12, 8}));
  EXPECT_THROW(geom::bounding_box({}), InvalidArgumentError);
}

TEST(Geometry, ManhattanDistance) {
  EXPECT_EQ(geom::manhattan({0, 0}, {3, 4}), 7);
  EXPECT_EQ(geom::manhattan({5, 5}, {2, 9}), 7);
}

TEST(Layout, ShapesAndPins) {
  geom::Layout l("cell");
  l.add_shape(tech::Layer::kM1, {0, 0, 100, 20}, "net1");
  l.add_pin("a", tech::Layer::kM2, {10, 10, 20, 20});
  EXPECT_EQ(l.shapes().size(), 1u);
  EXPECT_TRUE(l.has_pin("a"));
  EXPECT_FALSE(l.has_pin("b"));
  EXPECT_EQ(l.pin("a").layer, tech::Layer::kM2);
  EXPECT_THROW(l.pin("missing"), InvalidArgumentError);
}

TEST(Layout, BoundingBoxCoversShapesAndPins) {
  geom::Layout l("cell");
  l.add_shape(tech::Layer::kM1, {0, 0, 100, 20});
  l.add_pin("p", tech::Layer::kM2, {150, 30, 160, 40});
  EXPECT_EQ(l.bounding_box(), (geom::Rect{0, 0, 160, 40}));
  EXPECT_THROW(geom::Layout("empty").bounding_box(), InvalidArgumentError);
}

TEST(Layout, MergeTranslatesAndPrefixes) {
  geom::Layout a("a");
  a.add_shape(tech::Layer::kM1, {0, 0, 10, 10}, "x");
  geom::Layout b("b");
  b.add_pin("p", tech::Layer::kM1, {0, 0, 5, 5});
  a.merge(b, 100, 200, "b.");
  EXPECT_TRUE(a.has_pin("b.p"));
  EXPECT_EQ(a.pin("b.p").rect, (geom::Rect{100, 200, 105, 205}));
}

TEST(Layout, AbstractNormalizesToOrigin) {
  geom::Layout l("cell");
  l.add_shape(tech::Layer::kM1, {50, 60, 150, 160});
  l.add_pin("p", tech::Layer::kM2, {60, 70, 70, 80});
  const geom::CellAbstract abs = geom::make_abstract(l);
  EXPECT_EQ(abs.bbox, (geom::Rect{0, 0, 100, 100}));
  EXPECT_EQ(abs.pins[0].rect, (geom::Rect{10, 10, 20, 20}));
}

}  // namespace
}  // namespace olp

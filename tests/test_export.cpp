// Tests for CSV export of transient and AC results.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>

#include <sstream>

#include "spice/export.hpp"
#include "spice/simulator.hpp"

namespace olp::spice {
namespace {

Circuit rc() {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add_vsource("vin", in, kGround, Waveform::dc(1.0), 1.0);
  c.add_resistor("r", in, out, 1e3);
  c.add_capacitor("cc", out, kGround, 1e-12);
  return c;
}

TEST(Export, TranCsvShapeAndValues) {
  const Circuit c = rc();
  Simulator sim(c);
  TranOptions tr;
  tr.tstop = 1e-9;
  tr.dt = 100e-12;
  const TranResult res = sim.tran(tr);
  ASSERT_TRUE(res.ok);
  const std::string csv = tran_to_csv(sim, res, {"in", "out"});
  std::istringstream is(csv);
  std::string line;
  ASSERT_TRUE(std::getline(is, line));
  EXPECT_EQ(line, "time,in,out");
  int rows = 0;
  while (std::getline(is, line)) {
    ++rows;
    // Three comma-separated numeric fields.
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), 2) << line;
  }
  EXPECT_EQ(rows, static_cast<int>(res.times.size()));
}

TEST(Export, AcCsvHasMagAndPhaseColumns) {
  const Circuit c = rc();
  Simulator sim(c);
  const OpResult op = sim.op();
  AcOptions ac;
  ac.frequencies = {1e6, 1e9};
  const AcResult r = sim.ac(op.x, ac);
  const std::string csv = ac_to_csv(sim, r, {"out"});
  std::istringstream is(csv);
  std::string header;
  ASSERT_TRUE(std::getline(is, header));
  EXPECT_EQ(header, "freq,out_mag_db,out_phase_deg");
  std::string row1;
  ASSERT_TRUE(std::getline(is, row1));
  // At 1 MHz the low-pass output is ~0 dB.
  double freq, mag, phase;
  char comma;
  std::istringstream rs(row1);
  rs >> freq >> comma >> mag >> comma >> phase;
  EXPECT_NEAR(freq, 1e6, 1.0);
  EXPECT_NEAR(mag, 0.0, 0.1);
}

TEST(Export, UnknownNodeThrows) {
  const Circuit c = rc();
  Simulator sim(c);
  TranOptions tr;
  tr.tstop = 1e-9;
  tr.dt = 100e-12;
  const TranResult res = sim.tran(tr);
  EXPECT_THROW(tran_to_csv(sim, res, {"nosuch"}), InvalidArgumentError);
  EXPECT_THROW(tran_to_csv(sim, res, {}), InvalidArgumentError);
}

TEST(Export, WriteTextFile) {
  const std::string path = "/tmp/olp_export_test.csv";
  write_text_file(path, "a,b\n1,2\n");
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "a,b");
  EXPECT_THROW(write_text_file("/nonexistent_dir/x.csv", "x"),
               InvalidArgumentError);
}

}  // namespace
}  // namespace olp::spice

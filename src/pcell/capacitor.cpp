#include "pcell/capacitor.hpp"

#include <cmath>

#include "util/error.hpp"

namespace olp::pcell {

namespace {
/// Sidewall coupling per unit length between adjacent min-spaced fingers on
/// one layer; with the layer above mirrored this roughly doubles.
double coupling_per_length(const tech::Technology& t, tech::Layer layer) {
  // Dominated by the lateral component of the routing capacitance.
  return 0.65 * t.metal(layer).cap_per_length;
}
}  // namespace

MomCapLayout generate_mom_cap(const tech::Technology& t,
                              const MomCapConfig& config) {
  OLP_CHECK(config.fingers >= 2, "MOM cap needs at least 2 fingers");
  OLP_CHECK(config.finger_length > 0, "MOM cap needs positive finger length");
  const tech::MetalLayerInfo& m = t.metal(config.layer);

  MomCapLayout out;
  out.config = config;
  out.geometry.set_name("mom_cap");

  const double pitch = m.pitch;
  const int gaps = config.fingers - 1;
  // Two stacked layers of interdigitation double the sidewall coupling.
  out.capacitance =
      2.0 * coupling_per_length(t, config.layer) * config.finger_length *
      static_cast<double>(gaps);
  // Each plate's comb resistance: half the fingers in parallel, each a
  // finger_length run, plus the spine.
  const double finger_res = t.wire_res(config.layer, config.finger_length);
  const double fingers_per_plate = std::max(1, config.fingers / 2);
  out.series_res = finger_res / fingers_per_plate +
                   t.wire_res(config.layer, gaps * pitch) * 0.5;
  // Bottom-plate parasitic to substrate: the full comb footprint area term.
  out.plate_cap = 0.10 * out.capacitance;

  using geom::Rect;
  using geom::to_nm;
  for (int f = 0; f < config.fingers; ++f) {
    const double x = f * pitch;
    const char* net = (f % 2 == 0) ? "a" : "b";
    out.geometry.add_shape(
        config.layer,
        Rect{to_nm(x), 0, to_nm(x + m.min_width), to_nm(config.finger_length)},
        net);
  }
  const double width = gaps * pitch + m.min_width;
  out.geometry.add_pin("a", config.layer,
                       Rect{0, 0, to_nm(m.min_width), to_nm(m.min_width)});
  out.geometry.add_pin("b", config.layer,
                       Rect{to_nm(width - m.min_width),
                            to_nm(config.finger_length - m.min_width),
                            to_nm(width), to_nm(config.finger_length)});
  return out;
}

std::vector<MomCapConfig> enumerate_mom_configs(const tech::Technology& t,
                                                double target,
                                                double tolerance) {
  OLP_CHECK(target > 0, "target capacitance must be positive");
  std::vector<MomCapConfig> configs;
  for (int fingers = 4; fingers <= 64; fingers += 2) {
    for (double len = 0.5e-6; len <= 8e-6; len += 0.5e-6) {
      MomCapConfig c;
      c.fingers = fingers;
      c.finger_length = len;
      const MomCapLayout trial = generate_mom_cap(t, c);
      if (std::fabs(trial.capacitance - target) <= tolerance * target) {
        configs.push_back(c);
      }
    }
  }
  return configs;
}

}  // namespace olp::pcell

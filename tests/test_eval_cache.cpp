// Eval-cache tests: the canonical key must distinguish every input an
// evaluation depends on, hits must return bit-identical metrics without new
// simulation, quarantined evaluations must never be memoized (so their
// diagnostics re-fire), and the cache must be safe to share across TaskPool
// workers.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "circuits/common.hpp"
#include "core/eval_cache.hpp"
#include "core/evaluator.hpp"
#include "pcell/generator.hpp"
#include "util/diag.hpp"
#include "util/faults.hpp"
#include "util/logging.hpp"
#include "util/task_pool.hpp"

namespace olp::core {
namespace {

const tech::Technology& t() {
  static const tech::Technology tech = tech::make_default_finfet_tech();
  return tech;
}

pcell::LayoutConfig cfg(int nfin, int nf, int m) {
  pcell::LayoutConfig c;
  c.nfin = nfin;
  c.nf = nf;
  c.m = m;
  return c;
}

BiasContext dp_bias() {
  BiasContext b;
  b.vdd = t().vdd;
  b.bias_current = 500e-6;
  b.port_voltage = {
      {"ga", 0.5}, {"gb", 0.5}, {"da", 0.5}, {"db", 0.5}, {"s", 0.2}};
  b.port_load_cap = {{"da", 20e-15}, {"db", 20e-15}};
  return b;
}

TEST(EvalCacheKey, DistinguishesEveryInput) {
  const pcell::PrimitiveGenerator gen(t());
  const pcell::PrimitiveLayout lay =
      gen.generate(pcell::make_diff_pair(), cfg(8, 20, 6));
  const BiasContext bias = dp_bias();
  const spice::MosModel nmos = circuits::default_nmos();
  const spice::MosModel pmos = circuits::default_pmos();
  EvalCondition cond;

  const std::string base = EvalCache::make_key(lay, cond, bias, nmos, pmos);
  EXPECT_EQ(EvalCache::make_key(lay, cond, bias, nmos, pmos), base)
      << "same inputs must produce the same key";

  std::set<std::string> keys;
  keys.insert(base);

  // Different layout configuration.
  const pcell::PrimitiveLayout other =
      gen.generate(pcell::make_diff_pair(), cfg(8, 10, 12));
  EXPECT_TRUE(
      keys.insert(EvalCache::make_key(other, cond, bias, nmos, pmos)).second);

  // Different netlist (current mirror vs diff pair).
  const pcell::PrimitiveLayout mirror =
      gen.generate(pcell::make_current_mirror(), cfg(8, 20, 6));
  EXPECT_TRUE(
      keys.insert(EvalCache::make_key(mirror, cond, bias, nmos, pmos)).second);

  // Ideal vs extracted mode.
  EvalCondition ideal;
  ideal.ideal = true;
  EXPECT_TRUE(
      keys.insert(EvalCache::make_key(lay, ideal, bias, nmos, pmos)).second);

  // Strap tuning.
  EvalCondition tuned;
  tuned.tuning["s"] = 3;
  EXPECT_TRUE(
      keys.insert(EvalCache::make_key(lay, tuned, bias, nmos, pmos)).second);

  // Port wire RC — including a tiny (one-ulp-scale) perturbation.
  EvalCondition wired;
  wired.port_wires["da"] = extract::WireRc{12.5, 3e-15};
  const std::string wired_key =
      EvalCache::make_key(lay, wired, bias, nmos, pmos);
  EXPECT_TRUE(keys.insert(wired_key).second);
  wired.port_wires["da"].resistance =
      std::nextafter(12.5, 13.0);  // %.17g is round-trip exact
  EXPECT_TRUE(
      keys.insert(EvalCache::make_key(lay, wired, bias, nmos, pmos)).second);

  // Mismatch perturbations.
  EvalCondition mc;
  mc.extra_dvth["ma0"] = 1e-3;
  EXPECT_TRUE(
      keys.insert(EvalCache::make_key(lay, mc, bias, nmos, pmos)).second);

  // Bias context.
  BiasContext bias2 = bias;
  bias2.bias_current = 400e-6;
  EXPECT_TRUE(
      keys.insert(EvalCache::make_key(lay, cond, bias2, nmos, pmos)).second);
  BiasContext bias3 = bias;
  bias3.port_voltage["ga"] = 0.45;
  EXPECT_TRUE(
      keys.insert(EvalCache::make_key(lay, cond, bias3, nmos, pmos)).second);

  // Model card.
  spice::MosModel nmos2 = nmos;
  nmos2.vth0 += 1e-3;
  EXPECT_TRUE(
      keys.insert(EvalCache::make_key(lay, cond, bias, nmos2, pmos)).second);
}

TEST(EvalCache, HitReturnsIdenticalValuesWithoutNewTestbenches) {
  const pcell::PrimitiveGenerator gen(t());
  const pcell::PrimitiveLayout lay =
      gen.generate(pcell::make_diff_pair(), cfg(8, 20, 6));
  PrimitiveEvaluator eval(t(), circuits::default_nmos(),
                          circuits::default_pmos(), dp_bias());
  EvalCache cache;
  eval.set_cache(&cache);

  EvalCondition cond;
  EvalOutcome first_out;
  const MetricValues first = eval.evaluate(lay, cond, &first_out);
  EXPECT_FALSE(first_out.cache_hit);
  const long benches_after_miss = eval.stats().testbenches;
  EXPECT_GT(benches_after_miss, 0);

  EvalOutcome second_out;
  const MetricValues second = eval.evaluate(lay, cond, &second_out);
  EXPECT_TRUE(second_out.cache_hit);
  EXPECT_EQ(eval.stats().testbenches, benches_after_miss)
      << "a cache hit must not simulate";

  ASSERT_EQ(first.size(), second.size());
  auto fi = first.begin();
  auto si = second.begin();
  for (; fi != first.end(); ++fi, ++si) {
    EXPECT_EQ(fi->first, si->first);
    EXPECT_EQ(std::memcmp(&fi->second, &si->second, sizeof(double)), 0)
        << metric_name(fi->first);
  }

  const EvalCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.entries, 1);

  // A different condition is a fresh miss.
  EvalCondition tuned;
  tuned.tuning["s"] = 2;
  EvalOutcome third_out;
  eval.evaluate(lay, tuned, &third_out);
  EXPECT_FALSE(third_out.cache_hit);
  EXPECT_EQ(cache.stats().entries, 2);
}

TEST(EvalCache, QuarantinedEvaluationsAreNeverCached) {
  set_log_level(LogLevel::kOff);
  const pcell::PrimitiveGenerator gen(t());
  const pcell::PrimitiveLayout lay =
      gen.generate(pcell::make_diff_pair(), cfg(8, 20, 6));
  PrimitiveEvaluator eval(t(), circuits::default_nmos(),
                          circuits::default_pmos(), dp_bias());
  EvalCache cache;
  eval.set_cache(&cache);
  DiagnosticsSink sink;
  eval.set_diagnostics(&sink);

  FaultConfig config;
  config.seed = 3;
  config.nan_metric_rate = 1.0;  // every evaluation quarantines
  {
    ScopedFaultInjection chaos(config);
    EvalCondition cond;
    EvalOutcome out1, out2;
    eval.evaluate(lay, cond, &out1);
    eval.evaluate(lay, cond, &out2);
    EXPECT_GT(out1.quarantined, 0);
    EXPECT_FALSE(out1.cache_hit);
    // The second identical call must re-simulate (not hit a poisoned entry)
    // and re-fire the quarantine diagnostic.
    EXPECT_FALSE(out2.cache_hit);
    EXPECT_GT(out2.quarantined, 0);
  }
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(cache.stats().entries, 0);
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_EQ(sink.count("evaluator"), 2u);
}

TEST(EvalCache, FullKeyEqualityMakesShardCollisionsBenign) {
  // One shard forces every key through the same map: distinct keys must
  // still resolve to their own entries (the hash only picks the shard).
  EvalCache cache(/*shards=*/1);
  for (int i = 0; i < 200; ++i) {
    MetricValues v;
    v[MetricKind::kGm] = static_cast<double>(i);
    cache.insert("key" + std::to_string(i), v);
  }
  EXPECT_EQ(cache.stats().entries, 200);
  for (int i = 0; i < 200; ++i) {
    MetricValues v;
    ASSERT_TRUE(cache.lookup("key" + std::to_string(i), &v)) << i;
    EXPECT_EQ(v.at(MetricKind::kGm), static_cast<double>(i)) << i;
  }
  MetricValues v;
  EXPECT_FALSE(cache.lookup("key200", &v));
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0);
  EXPECT_EQ(cache.stats().hits, 0);
}

TEST(EvalCache, SharedAcrossPoolWorkers) {
  const pcell::PrimitiveGenerator gen(t());
  const pcell::PrimitiveLayout lay =
      gen.generate(pcell::make_diff_pair(), cfg(8, 20, 6));
  PrimitiveEvaluator eval(t(), circuits::default_nmos(),
                          circuits::default_pmos(), dp_bias());
  EvalCache cache;
  eval.set_cache(&cache);

  TaskPool pool(8);
  const std::size_t n = 32;
  std::vector<MetricValues> slots(n);
  pool.parallel_for(n, [&](std::size_t i) {
    EvalCondition cond;  // all workers evaluate the identical condition
    slots[i] = eval.evaluate(lay, cond);
    return true;
  });

  // Exactly one entry; every result is bit-identical to the first.
  const EvalCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1);
  EXPECT_EQ(stats.hits + stats.misses, static_cast<long>(n));
  EXPECT_GE(stats.hits, 1);
  for (std::size_t i = 1; i < n; ++i) {
    ASSERT_EQ(slots[i].size(), slots[0].size()) << i;
    auto a = slots[0].begin();
    auto b = slots[i].begin();
    for (; a != slots[0].end(); ++a, ++b) {
      EXPECT_EQ(std::memcmp(&a->second, &b->second, sizeof(double)), 0)
          << i << "/" << metric_name(a->first);
    }
  }
}


// --- capacity bound + eviction ----------------------------------------------

MetricValues one_metric(double v) {
  MetricValues m;
  m[MetricKind::kGain] = v;
  return m;
}

TEST(EvalCacheBounded, CapacityEnforcedWithClockEviction) {
  EvalCacheOptions opt;
  opt.shards = 1;  // one shard makes the capacity math exact
  opt.max_entries = 4;
  EvalCache cache(opt);
  for (int i = 0; i < 10; ++i) {
    cache.insert("key" + std::to_string(i), one_metric(i));
  }
  const EvalCacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 4);
  EXPECT_EQ(s.evictions, 6);
  EXPECT_EQ(s.capacity, 4);
}

TEST(EvalCacheBounded, SecondChanceKeepsRecentlyHitEntries) {
  EvalCacheOptions opt;
  opt.shards = 1;
  opt.max_entries = 4;
  EvalCache cache(opt);
  for (int i = 0; i < 4; ++i) {
    cache.insert("key" + std::to_string(i), one_metric(i));
  }
  // Touch key2: its referenced bit grants one extra lap over the cold keys.
  EXPECT_TRUE(cache.lookup("key2", nullptr));
  for (int i = 4; i < 7; ++i) {
    cache.insert("key" + std::to_string(i), one_metric(i));
  }
  EXPECT_TRUE(cache.lookup("key2", nullptr));
  EXPECT_EQ(cache.stats().entries, 4);
}

TEST(EvalCacheBounded, UnboundedDefaultNeverEvicts) {
  EvalCache cache(4);  // 4 shards, no bound
  for (int i = 0; i < 1000; ++i) {
    cache.insert("key" + std::to_string(i), one_metric(i));
  }
  const EvalCacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 1000);
  EXPECT_EQ(s.evictions, 0);
  EXPECT_EQ(s.capacity, 0);
}

// --- serialize / restore ----------------------------------------------------

TEST(EvalCacheSnapshot, SerializeRestoreIsBitIdentical) {
  EvalCache cache(4);
  // Values chosen to stress bit-exactness: denormal, negative zero, huge.
  const double values[] = {1.0 / 3.0, -0.0, 5e-324, 1.7976931348623157e308};
  for (int i = 0; i < 4; ++i) {
    cache.insert("key" + std::to_string(i), one_metric(values[i]), i);
  }
  const std::string payload = cache.serialize_entries();

  EvalCache restored(8);  // different shard count must not matter
  ASSERT_TRUE(restored.restore_entries(payload));
  EXPECT_EQ(restored.stats().entries, 4);
  for (int i = 0; i < 4; ++i) {
    MetricValues got;
    ASSERT_TRUE(restored.lookup("key" + std::to_string(i), &got));
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(std::memcmp(&got[MetricKind::kGain], &values[i],
                          sizeof(double)),
              0)
        << i;
  }
  // Hits on restored entries are attributed as such (warm-start evidence),
  // and never as cross-client (restored owner is -1).
  const EvalCacheStats s = restored.stats();
  EXPECT_EQ(s.restored_hits, 4);
  EXPECT_EQ(s.cross_client_hits, 0);
}

TEST(EvalCacheSnapshot, RestoreRejectsTruncatedPayloadAtomically) {
  EvalCache cache(2);
  for (int i = 0; i < 8; ++i) {
    cache.insert("key" + std::to_string(i), one_metric(i));
  }
  const std::string payload = cache.serialize_entries();
  for (const std::size_t cut :
       {payload.size() / 2, payload.size() - 1, std::size_t{3}}) {
    EvalCache fresh(2);
    std::string error;
    EXPECT_FALSE(fresh.restore_entries(payload.substr(0, cut), &error));
    EXPECT_FALSE(error.empty());
    // All-or-nothing: a bad payload restores NO entries.
    EXPECT_EQ(fresh.stats().entries, 0);
  }
}

TEST(EvalCacheSnapshot, LiveEntriesWinOverRestore) {
  EvalCache donor(2);
  donor.insert("shared", one_metric(1.0));
  const std::string payload = donor.serialize_entries();

  EvalCache cache(2);
  cache.insert("shared", one_metric(2.0), 7);
  ASSERT_TRUE(cache.restore_entries(payload));
  MetricValues got;
  ASSERT_TRUE(cache.lookup("shared", &got));
  EXPECT_EQ(got[MetricKind::kGain], 2.0);  // first writer (live) wins
  EXPECT_EQ(cache.stats().restored_hits, 0);
}

TEST(EvalCacheSnapshot, FileRoundTripAcrossScopes) {
  const std::string path =
      testing::TempDir() + "olp_eval_cache_snapshot_test.bin";
  std::remove(path.c_str());

  EvalCache a(2), b(2);
  a.insert("ka", one_metric(1.5));
  b.insert("kb1", one_metric(2.5));
  b.insert("kb2", one_metric(3.5));
  std::map<std::string, const EvalCache*> caches;
  caches["scopeA"] = &a;
  caches["scopeB"] = &b;
  std::string error;
  ASSERT_TRUE(save_cache_snapshot(path, caches, &error)) << error;

  std::map<std::string, std::string> payloads;
  ASSERT_TRUE(load_cache_snapshot(path, &payloads, &error)) << error;
  ASSERT_EQ(payloads.size(), 2u);
  EvalCache ra(2), rb(2);
  ASSERT_TRUE(ra.restore_entries(payloads.at("scopeA")));
  ASSERT_TRUE(rb.restore_entries(payloads.at("scopeB")));
  EXPECT_EQ(ra.stats().entries, 1);
  EXPECT_EQ(rb.stats().entries, 2);
  EXPECT_TRUE(ra.lookup("ka", nullptr));
  EXPECT_TRUE(rb.lookup("kb2", nullptr));
  std::remove(path.c_str());
}

TEST(EvalCacheSnapshot, CorruptOrMissingFileFailsCleanly) {
  const std::string path =
      testing::TempDir() + "olp_eval_cache_corrupt_test.bin";
  std::remove(path.c_str());
  std::map<std::string, std::string> payloads;
  std::string error;

  // Missing file.
  EXPECT_FALSE(load_cache_snapshot(path, &payloads, &error));
  EXPECT_FALSE(error.empty());

  // Valid snapshot, then flip one body byte: checksum must catch it.
  EvalCache cache(2);
  cache.insert("key", one_metric(42.0));
  std::map<std::string, const EvalCache*> caches;
  caches["scope"] = &cache;
  ASSERT_TRUE(save_cache_snapshot(path, caches, &error)) << error;
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(12);
    char byte = 0;
    f.seekg(12);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(12);
    f.write(&byte, 1);
  }
  EXPECT_FALSE(load_cache_snapshot(path, &payloads, &error));
  EXPECT_TRUE(payloads.empty());

  // Truncated file.
  ASSERT_TRUE(save_cache_snapshot(path, caches, &error)) << error;
  std::string full;
  {
    std::ifstream in(path, std::ios::binary);
    full.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(full.data(), static_cast<std::streamsize>(full.size() / 2));
  }
  EXPECT_FALSE(load_cache_snapshot(path, &payloads, &error));
  EXPECT_TRUE(payloads.empty());

  // Bad magic.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "definitely not a snapshot";
  }
  EXPECT_FALSE(load_cache_snapshot(path, &payloads, &error));
  EXPECT_TRUE(payloads.empty());
  std::remove(path.c_str());
}

TEST(EvalCacheSnapshot, InjectedIoFaultFailsSaveAndLoad) {
  const std::string path = testing::TempDir() + "olp_eval_cache_fault.bin";
  std::remove(path.c_str());
  EvalCache cache(2);
  cache.insert("key", one_metric(1.0));
  std::map<std::string, const EvalCache*> caches;
  caches["scope"] = &cache;

  FaultConfig config;
  config.snapshot_io_rate = 1.0;
  {
    ScopedFaultInjection chaos(config);
    std::string error;
    EXPECT_FALSE(save_cache_snapshot(path, caches, &error));
    EXPECT_NE(error.find("injected"), std::string::npos);
    EXPECT_EQ(FaultInjector::global().fired(FaultSite::kSnapshotIo), 1);
  }
  // The injected save failure left no file behind.
  std::ifstream probe(path);
  EXPECT_FALSE(probe.good());

  std::string error;
  ASSERT_TRUE(save_cache_snapshot(path, caches, &error)) << error;
  {
    ScopedFaultInjection chaos(config);
    std::map<std::string, std::string> payloads;
    EXPECT_FALSE(load_cache_snapshot(path, &payloads, &error));
    EXPECT_NE(error.find("injected"), std::string::npos);
  }
  // Injection off: the file itself is intact.
  std::map<std::string, std::string> payloads;
  EXPECT_TRUE(load_cache_snapshot(path, &payloads, &error)) << error;
  std::remove(path.c_str());
}

TEST(EvalCache, ConcurrentReadersAndWritersReconcileExactly) {
  // The gtest twin of tests/eval_cache_stress.cpp (which run_tsan.sh runs
  // standalone inside the sanitizer tree): 8 readers on the lock-free path,
  // 2 writers publishing snapshots, and every per-thread hit/miss tally
  // reconciled EXACTLY against the cache's own stats afterwards — a lookup
  // counts once, as a hit or a miss, under any interleaving.
  constexpr int kKeys = 300;
  constexpr int kReaders = 8;
  constexpr int kWriters = 2;
  constexpr int kRounds = 20;
  auto value_of = [](int i) {
    MetricValues v;
    v[MetricKind::kGm] = static_cast<double>(i) * 1.25 + 0.5;
    return v;
  };

  EvalCache cache;
  std::atomic<long> hits{0}, misses{0}, bad_values{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      const int lo = w * (kKeys / kWriters);
      for (int i = lo; i < lo + kKeys / kWriters; ++i) {
        cache.insert("k" + std::to_string(i), value_of(i), w);
      }
      // Contended tail: first-writer-wins on identical values.
      for (int i = kKeys - 40; i < kKeys; ++i) {
        cache.insert("k" + std::to_string(i), value_of(i), w);
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      long my_hits = 0, my_misses = 0, my_bad = 0;
      MetricValues v;
      for (int round = 0; round < kRounds; ++round) {
        for (int i = 0; i < kKeys; ++i) {
          if (cache.lookup("k" + std::to_string(i), &v, /*client=*/100)) {
            ++my_hits;
            const double want = static_cast<double>(i) * 1.25 + 0.5;
            const double got = v.at(MetricKind::kGm);
            if (std::memcmp(&got, &want, sizeof(double)) != 0) ++my_bad;
          } else {
            ++my_misses;
          }
        }
      }
      hits.fetch_add(my_hits);
      misses.fetch_add(my_misses);
      bad_values.fetch_add(my_bad);
    });
  }
  for (std::thread& th : threads) th.join();

  const EvalCacheStats stats = cache.stats();
  EXPECT_EQ(hits.load() + misses.load(),
            static_cast<long>(kReaders) * kRounds * kKeys);
  EXPECT_EQ(stats.hits, hits.load());
  EXPECT_EQ(stats.misses, misses.load());
  EXPECT_EQ(bad_values.load(), 0);
  EXPECT_EQ(stats.entries, kKeys);
  // Serial replay: the steady state is a hit on every key, bit-exact.
  for (int i = 0; i < kKeys; ++i) {
    MetricValues v;
    ASSERT_TRUE(cache.lookup("k" + std::to_string(i), &v)) << i;
    const double want = static_cast<double>(i) * 1.25 + 0.5;
    const double got = v.at(MetricKind::kGm);
    EXPECT_EQ(std::memcmp(&got, &want, sizeof(double)), 0) << i;
  }
}

TEST(EvalCache, LockedReadsBaselineReconcilesIdentically) {
  // The bench A/B switch shares all bookkeeping with the lock-free path;
  // a quick two-sided check that it produces the same ledger.
  EvalCacheOptions opt;
  opt.locked_reads = true;
  EvalCache cache(opt);
  MetricValues v;
  v[MetricKind::kGm] = 2.5;
  cache.insert("a", v);
  MetricValues out;
  EXPECT_TRUE(cache.lookup("a", &out));
  EXPECT_FALSE(cache.lookup("b", &out));
  EXPECT_EQ(out.at(MetricKind::kGm), 2.5);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 1);
}

}  // namespace
}  // namespace olp::core

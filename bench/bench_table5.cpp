// Reproduces Table V: number of (testbench) simulations for a set of
// primitives across the three optimization steps, plus wall-clock time.
//
// The paper counts SPICE runs: e.g. for a DP, 20 configurations x 3 metric
// testbenches for selection, 3 layouts x 7 sweep points x 1 testbench for
// tuning, and 2 testbenches x 8 sweep points x 2 nets for port constraints
// (113 total, 30 s wall clock with parallel dispatch of 10 s SPICE jobs).
// Our simulator runs in-process in milliseconds, so the wall-clock row shows
// the actual measured time; the count structure is the comparable part.

#include <chrono>
#include <iostream>

#include "circuits/common.hpp"
#include "core/optimizer.hpp"
#include "core/port_optimizer.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

namespace {

using namespace olp;

struct StepCounts {
  long selection = 0;
  long tuning = 0;
  long port = 0;
  double seconds = 0.0;
  int configs = 0;
  long total() const { return selection + tuning + port; }
};

route::NetRoute reference_route() {
  route::NetRoute nr;
  nr.net = "ref";
  nr.routed = true;
  nr.vias = 2;
  route::RouteSegment seg;
  seg.layer = tech::Layer::kM3;
  seg.a = geom::Point{0, 0};
  seg.b = geom::Point{geom::to_nm(2e-6), 0};
  nr.segments.push_back(seg);
  return nr;
}

StepCounts run_primitive(const tech::Technology& t,
                         const pcell::PrimitiveNetlist& netlist, int fins,
                         const core::BiasContext& bias,
                         const std::vector<std::string>& port_nets) {
  const auto t0 = std::chrono::steady_clock::now();
  const pcell::PrimitiveGenerator generator(t);
  const core::PrimitiveEvaluator evaluator(t, circuits::default_nmos(),
                                           circuits::default_pmos(), bias);
  const core::PrimitiveOptimizer optimizer(generator, evaluator);

  StepCounts counts;
  core::OptimizerOptions oopt;
  oopt.bins = 3;

  // Step 1: primitive selection.
  evaluator.stats().reset();
  std::vector<core::LayoutCandidate> all =
      optimizer.evaluate_all(netlist, fins, oopt);
  counts.selection = evaluator.stats().testbenches;
  counts.configs = static_cast<int>(all.size());

  // Keep the per-bin best, as Algorithm 1 does.
  std::vector<int> best(3, -1);
  for (std::size_t i = 0; i < all.size(); ++i) {
    int& b = best[static_cast<std::size_t>(all[i].bin)];
    if (b < 0 || all[i].cost.total <
                     all[static_cast<std::size_t>(b)].cost.total) {
      b = static_cast<int>(i);
    }
  }

  // Step 2: primitive tuning of the selected layouts.
  evaluator.stats().reset();
  std::vector<core::LayoutCandidate> selected;
  for (int idx : best) {
    if (idx < 0) continue;
    core::LayoutCandidate cand = all[static_cast<std::size_t>(idx)];
    optimizer.tune(cand);
    selected.push_back(std::move(cand));
  }
  counts.tuning = evaluator.stats().testbenches;

  // Step 3: net routing constraints on the best layout.
  evaluator.stats().reset();
  core::PortOptimizer port_opt(t);
  core::PortOptPrimitive pop;
  pop.instance = netlist.name;
  pop.evaluator = &evaluator;
  pop.layout = &selected.front().layout;
  pop.tuning = selected.front().tuning;
  for (const std::string& port : port_nets) {
    core::PortRoute pr;
    pr.port = port;
    pr.circuit_net = "net_" + port;
    pr.route = reference_route();
    pop.routes.push_back(std::move(pr));
  }
  (void)port_opt.generate_constraints(pop);
  counts.port = evaluator.stats().testbenches;

  counts.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return counts;
}

}  // namespace

int main() {
  set_log_level(log_level_from_env("OLP_LOG_LEVEL", LogLevel::kError));
  const tech::Technology t = tech::make_default_finfet_tech();

  core::BiasContext dp_bias;
  dp_bias.vdd = t.vdd;
  dp_bias.bias_current = 706e-6;
  dp_bias.port_voltage = {
      {"ga", 0.5}, {"gb", 0.5}, {"da", 0.5}, {"db", 0.5}, {"s", 0.2}};
  dp_bias.port_load_cap = {{"da", 25e-15}, {"db", 25e-15}};
  const StepCounts dp =
      run_primitive(t, pcell::make_diff_pair(), 960, dp_bias, {"da", "s"});

  core::BiasContext cm_bias;
  cm_bias.vdd = t.vdd;
  cm_bias.bias_current = 400e-6;
  cm_bias.port_voltage = {{"out", 0.4}, {"s", 0.0}};
  const StepCounts cm = run_primitive(t, pcell::make_current_mirror(1), 512,
                                      cm_bias, {"out"});

  core::BiasContext inv_bias;
  inv_bias.vdd = t.vdd;
  inv_bias.bias_current = 150e-6;
  inv_bias.port_voltage = {{"vbn", 0.4}, {"vbp", t.vdd - 0.4}};
  inv_bias.port_load_cap = {{"out", 4e-15}};
  const StepCounts inv = run_primitive(
      t, pcell::make_current_starved_inverter(), 96, inv_bias, {"out"});

  TextTable table(
      "Table V: Number of testbench simulations per optimization step\n"
      "(paper: DP 113, CM 74, current-starved inverter 157; wall time 30 s\n"
      " each with 10 s parallel SPICE jobs -- our in-process testbenches run\n"
      " in milliseconds, so the measured wall time replaces the estimate)");
  table.set_header(
      {"step", "diff pair", "current mirror", "curr-starved inv"});
  table.add_row({"configurations evaluated", std::to_string(dp.configs),
                 std::to_string(cm.configs), std::to_string(inv.configs)});
  table.add_row({"1. primitive selection", std::to_string(dp.selection),
                 std::to_string(cm.selection), std::to_string(inv.selection)});
  table.add_row({"2. primitive tuning", std::to_string(dp.tuning),
                 std::to_string(cm.tuning), std::to_string(inv.tuning)});
  table.add_row({"3. net routing constraints", std::to_string(dp.port),
                 std::to_string(cm.port), std::to_string(inv.port)});
  table.add_rule();
  table.add_row({"total simulations", std::to_string(dp.total()),
                 std::to_string(cm.total()), std::to_string(inv.total())});
  table.add_row({"total time (s)", fixed(dp.seconds, 2), fixed(cm.seconds, 2),
                 fixed(inv.seconds, 2)});
  std::cout << table;
  std::cout << "\nAll simulations within a step are independent, so the"
               " paper's parallel-dispatch argument (wall time ~ one"
               " simulation per step) applies unchanged.\n";
  return 0;
}

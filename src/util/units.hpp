#pragma once
// SI unit helpers and engineering-notation formatting.
//
// Internally the library uses plain SI base units everywhere: volts, amperes,
// ohms, farads, seconds, hertz, meters. These helpers make literals readable
// (e.g. `4.0 * units::um`) and format values for the bench tables.

#include <string>

namespace olp::units {

// Multipliers for literals.
inline constexpr double T = 1e12;
inline constexpr double G = 1e9;
inline constexpr double M = 1e6;
inline constexpr double k = 1e3;
inline constexpr double m = 1e-3;
inline constexpr double u = 1e-6;
inline constexpr double n = 1e-9;
inline constexpr double p = 1e-12;
inline constexpr double f = 1e-15;

// Length literals (meters).
inline constexpr double um = 1e-6;
inline constexpr double nm = 1e-9;

// Time literals (seconds).
inline constexpr double ns = 1e-9;
inline constexpr double ps = 1e-12;
inline constexpr double fs = 1e-15;

// Frequency literals (hertz).
inline constexpr double kHz = 1e3;
inline constexpr double MHz = 1e6;
inline constexpr double GHz = 1e9;

// Capacitance literals (farads).
inline constexpr double pF = 1e-12;
inline constexpr double fF = 1e-15;
inline constexpr double aF = 1e-18;

// Resistance literals (ohms).
inline constexpr double kOhm = 1e3;
inline constexpr double MOhm = 1e6;

// Current literals (amperes).
inline constexpr double mA = 1e-3;
inline constexpr double uA = 1e-6;
inline constexpr double nA = 1e-9;

// Power literals (watts).
inline constexpr double mW = 1e-3;
inline constexpr double uW = 1e-6;

/// Formats `value` in engineering notation with an SI prefix, e.g.
/// 2.2e-14 → "22.0f"; pass `unit` to append a unit symbol ("22.0fF").
std::string eng(double value, const std::string& unit = "", int digits = 3);

}  // namespace olp::units

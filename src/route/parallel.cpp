#include "route/parallel.hpp"

#include "util/obs.hpp"
#include "util/task_pool.hpp"

namespace olp::route {

PartitionPlan partition_nets(const GlobalRouter& router,
                             const std::vector<NetPins>& nets,
                             int margin_cells) {
  PartitionPlan plan;
  plan.windows.reserve(nets.size());
  for (const NetPins& net : nets) {
    plan.windows.push_back(router.window_for(net.pins, margin_cells));
  }
  for (std::size_t i = 0; i < nets.size(); ++i) {
    bool placed = false;
    for (std::vector<std::size_t>& batch : plan.batches) {
      bool disjoint = true;
      for (const std::size_t j : batch) {
        if (plan.windows[i].overlaps(plan.windows[j])) {
          disjoint = false;
          break;
        }
      }
      if (disjoint) {
        batch.push_back(i);
        placed = true;
        break;
      }
    }
    if (!placed) plan.batches.push_back({i});
  }
  return plan;
}

std::vector<NetRoute> route_partitioned(GlobalRouter& router,
                                        const std::vector<NetPins>& nets,
                                        TaskPool* pool, int margin_cells) {
  const PartitionPlan plan = partition_nets(router, nets, margin_cells);
  std::vector<NetRoute> routes(nets.size());

  for (const std::vector<std::size_t>& batch : plan.batches) {
    obs::counter_add("router.partition_batches");
    // Same-batch windows are pairwise disjoint, so these searches read and
    // write disjoint slices of the congestion grid: safe to run
    // concurrently, and scheduling-independent — the grid state at the
    // barrier is the same whichever order they finished in.
    run_indexed(pool, batch.size(), [&](std::size_t bi) {
      const std::size_t ni = batch[bi];
      obs::Span span("router.net", [&] { return nets[ni].name; });
      RouteRequest request;
      request.window = plan.windows[ni];
      routes[ni] = router.route(nets[ni].name, nets[ni].pins, request);
      if (routes[ni].routed) {
        obs::counter_add("router.nets");
        obs::record("router.net_length_um", routes[ni].total_length() * 1e6);
      }
      return true;
    });
  }

  // Serial cleanup pass, in net order: anything a window couldn't route
  // (detour needed past the margin, real congestion, a budget trip) gets
  // the full-grid router plus its widened-layer retry. route_with_fallback
  // does its own router.nets/unrouted accounting.
  for (std::size_t ni = 0; ni < nets.size(); ++ni) {
    if (routes[ni].routed) continue;
    obs::counter_add("router.partition_retries");
    RouteRequest request;
    request.with_fallback = true;
    routes[ni] = router.route(nets[ni].name, nets[ni].pins, request);
  }
  return routes;
}

}  // namespace olp::route

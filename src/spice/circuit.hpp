#pragma once
// In-memory netlist: nodes, device instances, and model cards.
//
// Circuits are built either programmatically (the primitive testbenches and
// the evaluation circuits do this) or by the SPICE-dialect parser. Node 0 is
// ground. Devices are stored by kind in plain vectors; the simulator stamps
// them with tight loops rather than virtual dispatch, which matters because
// the flow runs thousands of small simulations.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "spice/model.hpp"
#include "spice/waveform.hpp"
#include "util/error.hpp"

namespace olp::spice {

/// Node handle; 0 is ground.
using NodeId = int;
inline constexpr NodeId kGround = 0;

struct Resistor {
  std::string name;
  NodeId a = 0, b = 0;
  double r = 0.0;  ///< ohms, must be > 0
};

struct Capacitor {
  std::string name;
  NodeId a = 0, b = 0;
  double c = 0.0;  ///< farads, must be >= 0
  double ic = 0.0; ///< initial voltage across a->b when use_ic is set
  bool use_ic = false;
};

/// Independent voltage source (adds one branch-current unknown).
struct VSource {
  std::string name;
  NodeId p = 0, n = 0;
  Waveform wave = Waveform::dc(0.0);
  double ac_mag = 0.0;    ///< AC analysis magnitude [V]
  double ac_phase = 0.0;  ///< AC analysis phase [radians]
};

/// Independent current source; positive current flows p -> n through the
/// source (i.e. it pulls current out of node p), per SPICE convention.
struct ISource {
  std::string name;
  NodeId p = 0, n = 0;
  Waveform wave = Waveform::dc(0.0);
  double ac_mag = 0.0;
  double ac_phase = 0.0;
};

/// Voltage-controlled voltage source E: v(p,n) = gain * v(cp,cn).
struct Vcvs {
  std::string name;
  NodeId p = 0, n = 0, cp = 0, cn = 0;
  double gain = 1.0;
};

/// Voltage-controlled current source G: i(p->n) = gm * v(cp,cn).
struct Vccs {
  std::string name;
  NodeId p = 0, n = 0, cp = 0, cn = 0;
  double gm = 0.0;
};

/// A FinFET instance. Width is the total effective channel width (all fins,
/// fingers and multiples); the primitive generators compute it together with
/// the diffusion geometry (as/ad/ps/pd) that sets the junction capacitances.
struct Mosfet {
  std::string name;
  NodeId d = 0, g = 0, s = 0, b = 0;
  int model = 0;     ///< index into Circuit::models()
  double w = 1e-6;   ///< total effective channel width [m]
  double l = 14e-9;  ///< channel length [m]
  double as = 0.0, ad = 0.0;  ///< source/drain diffusion areas [m^2]
  double ps = 0.0, pd = 0.0;  ///< source/drain diffusion perimeters [m]
  /// Layout-dependent-effect annotations (paper Sec. III-A: LOD + WPE).
  double delta_vth = 0.0;     ///< additive Vth shift, NMOS convention [V]
  double mobility_mult = 1.0; ///< multiplicative mobility factor
};

/// Whole-circuit netlist.
class Circuit {
 public:
  Circuit();

  /// Returns (creating if needed) the node with the given name.
  NodeId node(const std::string& name);
  /// Returns the node id or throws if the name is unknown.
  NodeId find_node(const std::string& name) const;
  bool has_node(const std::string& name) const;
  const std::string& node_name(NodeId id) const;
  /// Total node count including ground.
  int node_count() const { return static_cast<int>(node_names_.size()); }

  /// Registers a model card; returns its index for Mosfet::model.
  int add_model(MosModel model);
  int find_model(const std::string& name) const;
  const MosModel& model(int index) const;
  const std::vector<MosModel>& models() const { return models_; }

  void add_resistor(const std::string& name, NodeId a, NodeId b, double r);
  void add_capacitor(const std::string& name, NodeId a, NodeId b, double c);
  /// Adds a capacitor with an initial condition (voltage a->b) honored by
  /// transient analysis when started with use_ic.
  void add_capacitor_ic(const std::string& name, NodeId a, NodeId b, double c,
                        double ic);
  void add_vsource(const std::string& name, NodeId p, NodeId n, Waveform wave,
                   double ac_mag = 0.0, double ac_phase = 0.0);
  void add_isource(const std::string& name, NodeId p, NodeId n, Waveform wave,
                   double ac_mag = 0.0, double ac_phase = 0.0);
  void add_vcvs(const std::string& name, NodeId p, NodeId n, NodeId cp,
                NodeId cn, double gain);
  void add_vccs(const std::string& name, NodeId p, NodeId n, NodeId cp,
                NodeId cn, double gm);
  void add_mosfet(Mosfet m);

  /// Sets a transient initial condition on a node (".ic v(node)=value").
  void set_initial_condition(NodeId node, double value);
  const std::map<NodeId, double>& initial_conditions() const { return ics_; }

  const std::vector<Resistor>& resistors() const { return resistors_; }
  const std::vector<Capacitor>& capacitors() const { return capacitors_; }
  const std::vector<VSource>& vsources() const { return vsources_; }
  const std::vector<ISource>& isources() const { return isources_; }
  const std::vector<Vcvs>& vcvs() const { return vcvs_; }
  const std::vector<Vccs>& vccs() const { return vccs_; }
  const std::vector<Mosfet>& mosfets() const { return mosfets_; }
  std::vector<Mosfet>& mosfets() { return mosfets_; }
  std::vector<VSource>& vsources() { return vsources_; }
  std::vector<Resistor>& resistors() { return resistors_; }
  std::vector<Capacitor>& capacitors() { return capacitors_; }

  /// Index of the named voltage source (for branch-current lookup).
  int find_vsource(const std::string& name) const;
  int find_mosfet(const std::string& name) const;

  /// Unknown count for MNA: (nodes - 1) node voltages plus one branch current
  /// per voltage source and per VCVS.
  int unknown_count() const {
    return node_count() - 1 +
           static_cast<int>(vsources_.size() + vcvs_.size());
  }

  /// Branch-current unknown index of voltage source `vs_index` within the MNA
  /// solution vector.
  int vsource_branch_index(int vs_index) const {
    OLP_CHECK(vs_index >= 0 && vs_index < static_cast<int>(vsources_.size()),
              "vsource index out of range");
    return node_count() - 1 + vs_index;
  }

  /// Total device count, useful for reporting.
  std::size_t device_count() const {
    return resistors_.size() + capacitors_.size() + vsources_.size() +
           isources_.size() + vcvs_.size() + vccs_.size() + mosfets_.size();
  }

 private:
  std::vector<std::string> node_names_;
  std::map<std::string, NodeId> node_index_;
  std::vector<MosModel> models_;
  std::map<NodeId, double> ics_;

  std::vector<Resistor> resistors_;
  std::vector<Capacitor> capacitors_;
  std::vector<VSource> vsources_;
  std::vector<ISource> isources_;
  std::vector<Vcvs> vcvs_;
  std::vector<Vccs> vccs_;
  std::vector<Mosfet> mosfets_;
};

}  // namespace olp::spice

#include "util/faults.hpp"

#include "util/error.hpp"

namespace olp {
namespace {

// splitmix64 finalizer — full-avalanche mix of a 64-bit counter.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Uniform [0, 1) from (seed, site, draw index).
double uniform_draw(std::uint64_t seed, FaultSite site, long draw_index) {
  std::uint64_t h = mix64(seed);
  h = mix64(h ^ (static_cast<std::uint64_t>(site) + 1));
  h = mix64(h ^ static_cast<std::uint64_t>(draw_index));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

const char* fault_site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kOpNonConvergence:
      return "op";
    case FaultSite::kTranNonConvergence:
      return "tran";
    case FaultSite::kRouteFailure:
      return "route";
    case FaultSite::kNanMetric:
      return "nan_metric";
    case FaultSite::kBudgetExhaustion:
      return "budget";
    case FaultSite::kPoolTaskDelay:
      return "pool_delay";
    case FaultSite::kSnapshotIo:
      return "snapshot_io";
    case FaultSite::kRequestParse:
      return "request_parse";
    case FaultSite::kJobTransient:
      return "job_transient";
    case FaultSite::kTransportPartialWrite:
      return "partial_write";
    case FaultSite::kTransportDisconnect:
      return "disconnect";
    case FaultSite::kJournalIo:
      return "journal_io";
  }
  return "unknown";
}

double FaultConfig::rate(FaultSite site) const {
  switch (site) {
    case FaultSite::kOpNonConvergence:
      return op_rate;
    case FaultSite::kTranNonConvergence:
      return tran_rate;
    case FaultSite::kRouteFailure:
      return route_rate;
    case FaultSite::kNanMetric:
      return nan_metric_rate;
    case FaultSite::kBudgetExhaustion:
      return budget_rate;
    case FaultSite::kPoolTaskDelay:
      return pool_delay_rate;
    case FaultSite::kSnapshotIo:
      return snapshot_io_rate;
    case FaultSite::kRequestParse:
      return request_parse_rate;
    case FaultSite::kJobTransient:
      return job_transient_rate;
    case FaultSite::kTransportPartialWrite:
      return partial_write_rate;
    case FaultSite::kTransportDisconnect:
      return disconnect_rate;
    case FaultSite::kJournalIo:
      return journal_io_rate;
  }
  return 0.0;
}

FaultInjector& FaultInjector::global() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::enable(const FaultConfig& config) {
  for (int i = 0; i < kNumFaultSites; ++i) {
    const double r = config.rate(static_cast<FaultSite>(i));
    OLP_CHECK(r >= 0.0 && r <= 1.0, "fault rates must be in [0, 1]");
  }
  std::lock_guard<std::mutex> lock(mu_);
  config_ = config;
  total_draws_ = 0;
  site_draws_.fill(0);
  site_fires_.fill(0);
  enabled_.store(true, std::memory_order_relaxed);
}

bool FaultInjector::should_fail(FaultSite site) {
  if (!enabled()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  const int idx = static_cast<int>(site);
  const long draw_index = site_draws_[idx]++;
  ++total_draws_;
  if (draw_index < config_.skip_draws) return false;
  if (config_.max_total_fires >= 0) {
    long total = 0;
    for (long f : site_fires_) total += f;
    if (total >= config_.max_total_fires) return false;
  }
  const double rate = config_.rate(site);
  if (rate <= 0.0) return false;
  const bool fire =
      rate >= 1.0 || uniform_draw(config_.seed, site, draw_index) < rate;
  if (fire) ++site_fires_[idx];
  return fire;
}

long FaultInjector::fired(FaultSite site) const {
  std::lock_guard<std::mutex> lock(mu_);
  return site_fires_[static_cast<int>(site)];
}

long FaultInjector::draws(FaultSite site) const {
  std::lock_guard<std::mutex> lock(mu_);
  return site_draws_[static_cast<int>(site)];
}

long FaultInjector::total_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  long total = 0;
  for (long f : site_fires_) total += f;
  return total;
}

}  // namespace olp

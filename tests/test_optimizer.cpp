// Tests for Algorithm 1 (primitive selection + tuning) and aspect binning.

#include <gtest/gtest.h>

#include "circuits/common.hpp"
#include "core/optimizer.hpp"

namespace olp::core {
namespace {

const tech::Technology& t() {
  static const tech::Technology tech = tech::make_default_finfet_tech();
  return tech;
}

BiasContext dp_bias() {
  BiasContext b;
  b.vdd = t().vdd;
  b.bias_current = 500e-6;
  b.port_voltage = {
      {"ga", 0.5}, {"gb", 0.5}, {"da", 0.5}, {"db", 0.5}, {"s", 0.2}};
  b.port_load_cap = {{"da", 20e-15}, {"db", 20e-15}};
  return b;
}

TEST(AspectBins, SplitsLogRangeEvenly) {
  const std::vector<int> bins =
      assign_aspect_bins({0.1, 0.3, 1.0, 3.0, 10.0}, 3);
  EXPECT_EQ(bins[0], 0);
  EXPECT_EQ(bins[2], 1);
  EXPECT_EQ(bins[4], 2);
}

TEST(AspectBins, IdenticalRatiosShareBin) {
  const std::vector<int> bins = assign_aspect_bins({2.0, 2.0, 2.0}, 3);
  for (int b : bins) EXPECT_EQ(b, 0);
}

TEST(AspectBins, Validation) {
  EXPECT_THROW(assign_aspect_bins({}, 3), InvalidArgumentError);
  EXPECT_THROW(assign_aspect_bins({1.0}, 0), InvalidArgumentError);
  EXPECT_THROW(assign_aspect_bins({-1.0}, 2), InvalidArgumentError);
}

TEST(Optimizer, EvaluateAllCoversEveryConfig) {
  const pcell::PrimitiveGenerator gen(t());
  const PrimitiveEvaluator eval(t(), circuits::default_nmos(),
                                circuits::default_pmos(), dp_bias());
  const PrimitiveOptimizer opt(gen, eval);
  const pcell::PrimitiveNetlist dp = pcell::make_diff_pair();
  const std::size_t n_configs =
      pcell::PrimitiveGenerator::enumerate_configs(96).size();
  const std::vector<LayoutCandidate> all = opt.evaluate_all(dp, 96);
  EXPECT_EQ(all.size(), n_configs);
  for (const LayoutCandidate& c : all) {
    EXPECT_GE(c.bin, 0);
    EXPECT_LT(c.bin, 3);
    EXPECT_GE(c.cost.total, 0.0);
  }
}

TEST(Optimizer, OptimizeReturnsOnePerBinSorted) {
  const pcell::PrimitiveGenerator gen(t());
  const PrimitiveEvaluator eval(t(), circuits::default_nmos(),
                                circuits::default_pmos(), dp_bias());
  const PrimitiveOptimizer opt(gen, eval);
  OptimizerOptions oopt;
  oopt.bins = 3;
  const std::vector<LayoutCandidate> sel =
      opt.optimize(pcell::make_diff_pair(), 96, oopt);
  EXPECT_GE(sel.size(), 1u);
  EXPECT_LE(sel.size(), 3u);
  for (std::size_t i = 1; i < sel.size(); ++i) {
    EXPECT_LE(sel[i - 1].cost.total, sel[i].cost.total);
  }
  // Distinct bins.
  for (std::size_t i = 0; i < sel.size(); ++i) {
    for (std::size_t j = i + 1; j < sel.size(); ++j) {
      EXPECT_NE(sel[i].bin, sel[j].bin);
    }
  }
}

TEST(Optimizer, SelectionPrefersCommonCentroid) {
  // For the paper's 960-fin DP, the systematic offset of AABB (split
  // halves) blows past the 10%-of-random-offset spec in every bin, so no
  // AABB option may win. (Very small devices have a looser spec and can
  // legitimately tolerate AABB.)
  const pcell::PrimitiveGenerator gen(t());
  const PrimitiveEvaluator eval(t(), circuits::default_nmos(),
                                circuits::default_pmos(), dp_bias());
  const PrimitiveOptimizer opt(gen, eval);
  const std::vector<LayoutCandidate> sel =
      opt.optimize(pcell::make_diff_pair(), 960);
  for (const LayoutCandidate& c : sel) {
    EXPECT_NE(c.layout.config.pattern, pcell::PlacementPattern::kAABB)
        << c.layout.config.to_string();
  }
}

TEST(Optimizer, TuningNeverWorsensCost) {
  const pcell::PrimitiveGenerator gen(t());
  const PrimitiveEvaluator eval(t(), circuits::default_nmos(),
                                circuits::default_pmos(), dp_bias());
  const PrimitiveOptimizer opt(gen, eval);
  std::vector<LayoutCandidate> all =
      opt.evaluate_all(pcell::make_diff_pair(), 96);
  // Pick an arbitrary candidate and tune it.
  LayoutCandidate cand = all.front();
  const double before = cand.cost.total;
  opt.tune(cand);
  EXPECT_LE(cand.cost.total, before + 0.3);  // knee rule may stop near-min
  EXPECT_GE(cand.tuning.at("s"), 1);
}

TEST(Optimizer, CorrelatedTerminalsSweptJointly) {
  const pcell::PrimitiveGenerator gen(t());
  BiasContext b;
  b.vdd = t().vdd;
  b.port_voltage = {{"vbn", 0.4}, {"vbp", t().vdd - 0.4}};
  b.port_load_cap = {{"out", 4e-15}};
  const PrimitiveEvaluator eval(t(), circuits::default_nmos(),
                                circuits::default_pmos(), b);
  const PrimitiveOptimizer opt(gen, eval);
  OptimizerOptions oopt;
  oopt.max_tuning_wires = 3;  // keep the joint 3x3 sweep small
  const std::vector<LayoutCandidate> sel =
      opt.optimize(pcell::make_current_starved_inverter(), 32, oopt);
  ASSERT_FALSE(sel.empty());
  // Both correlated terminals received a decision.
  EXPECT_TRUE(sel.front().tuning.count("vn"));
  EXPECT_TRUE(sel.front().tuning.count("vp"));
}

TEST(Optimizer, SchematicReferenceIsLayoutInvariant) {
  const pcell::PrimitiveGenerator gen(t());
  const PrimitiveEvaluator eval(t(), circuits::default_nmos(),
                                circuits::default_pmos(), dp_bias());
  const PrimitiveOptimizer opt(gen, eval);
  const MetricValues ref = opt.schematic_reference(pcell::make_diff_pair(), 96);
  EXPECT_GT(ref.at(MetricKind::kGm), 0.0);
  // The reference never includes wire parasitics: re-running gives the same
  // numbers.
  const MetricValues ref2 =
      opt.schematic_reference(pcell::make_diff_pair(), 96);
  EXPECT_DOUBLE_EQ(ref.at(MetricKind::kGm), ref2.at(MetricKind::kGm));
}

TEST(Optimizer, OffsetSpecIsTenPercentOfSigma) {
  const pcell::PrimitiveGenerator gen(t());
  const PrimitiveEvaluator eval(t(), circuits::default_nmos(),
                                circuits::default_pmos(), dp_bias());
  const PrimitiveOptimizer opt(gen, eval);
  pcell::LayoutConfig c;
  c.nfin = 8;
  c.nf = 12;
  c.m = 1;
  const pcell::PrimitiveLayout lay =
      gen.generate(pcell::make_diff_pair(), c);
  EXPECT_NEAR(opt.offset_spec(lay), 0.1 * eval.random_offset_sigma(lay),
              1e-12);
}

TEST(Optimizer, ExplicitConfigListRespected) {
  const pcell::PrimitiveGenerator gen(t());
  const PrimitiveEvaluator eval(t(), circuits::default_nmos(),
                                circuits::default_pmos(), dp_bias());
  const PrimitiveOptimizer opt(gen, eval);
  OptimizerOptions oopt;
  pcell::LayoutConfig c;
  c.nfin = 8;
  c.nf = 12;
  c.m = 1;
  oopt.configs = {c};
  const std::vector<LayoutCandidate> all =
      opt.evaluate_all(pcell::make_diff_pair(), 96, oopt);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].layout.config.nfin, 8);
}

}  // namespace
}  // namespace olp::core

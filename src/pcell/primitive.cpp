#include "pcell/primitive.hpp"

#include <algorithm>
#include <sstream>

namespace olp::pcell {

const char* primitive_type_name(PrimitiveType type) {
  switch (type) {
    case PrimitiveType::kDiffPair: return "diff_pair";
    case PrimitiveType::kCurrentMirror: return "current_mirror";
    case PrimitiveType::kActiveCurrentMirror: return "active_current_mirror";
    case PrimitiveType::kCurrentSource: return "current_source";
    case PrimitiveType::kCommonSource: return "common_source";
    case PrimitiveType::kCurrentStarvedInverter:
      return "current_starved_inverter";
    case PrimitiveType::kCrossCoupledPair: return "cross_coupled_pair";
    case PrimitiveType::kSwitch: return "switch";
    case PrimitiveType::kCapacitor: return "capacitor";
  }
  return "?";
}

const char* pattern_name(PlacementPattern pattern) {
  switch (pattern) {
    case PlacementPattern::kABBA: return "ABBA";
    case PlacementPattern::kABAB: return "ABAB";
    case PlacementPattern::kAABB: return "AABB";
  }
  return "?";
}

std::string LayoutConfig::to_string() const {
  std::ostringstream os;
  os << "nfin=" << nfin << ";nf=" << nf << ";m=" << m << ";"
     << pattern_name(pattern) << (dummies ? ";dum" : "");
  return os.str();
}

double InternalNet::resistance(const tech::Technology& t, int parallel) const {
  OLP_CHECK(parallel >= 1, "strap width multiplier must be >= 1");
  const int tracks = base_tracks * parallel;
  // Contact bars: one short vertical bar plus contact stack per contacted
  // region, all in parallel. Current injects distributedly along the bar
  // (one fin per fin pitch), so the effective bar resistance is a third of
  // its end-to-end value.
  const double bar =
      (t.wire_res(layer, bar_length, 1) / 3.0 + contact_res) /
      static_cast<double>(std::max(1, n_contacts));
  // Row buses: distributed collection, rows in parallel, plus one via per
  // row joining the via ladder. Long buses get periodic relief taps to the
  // next metal level (one ladder per ~1.5 um of span), which bounds the
  // worst-case collection resistance of wide single-row cells.
  const int taps = 1 + static_cast<int>(span_length / 1.5e-6);
  const double bus =
      (kBusDistribution * t.wire_res(layer, span_length, tracks) /
           static_cast<double>(taps) +
       t.via_res) /
      static_cast<double>(std::max(1, rows));
  return bar + bus;
}

double InternalNet::capacitance(const tech::Technology& t, int parallel) const {
  OLP_CHECK(parallel >= 1, "strap width multiplier must be >= 1");
  const int tracks = base_tracks * parallel;
  const double bus = t.wire_cap(layer, span_length, tracks) *
                     static_cast<double>(std::max(1, rows));
  const double bars = t.wire_cap(layer, bar_length, 1) *
                      static_cast<double>(std::max(1, n_contacts));
  const double trunk = t.wire_cap(layer, trunk_length, 1) +
                       t.via_cap * static_cast<double>(std::max(1, rows));
  return bus + bars + trunk;
}

PrimitiveNetlist make_diff_pair() {
  PrimitiveNetlist p;
  p.type = PrimitiveType::kDiffPair;
  p.name = "diff_pair";
  p.devices = {
      {"MA", spice::MosType::kNmos, "da", "ga", "s", 1, 0},
      {"MB", spice::MosType::kNmos, "db", "gb", "s", 1, 0},
  };
  p.ports = {"da", "db", "ga", "gb", "s"};
  p.symmetric_ports = {{"da", "db"}, {"ga", "gb"}};
  return p;
}

PrimitiveNetlist make_current_mirror(int ratio) {
  OLP_CHECK(ratio >= 1, "mirror ratio must be >= 1");
  PrimitiveNetlist p;
  p.type = PrimitiveType::kCurrentMirror;
  p.name = "current_mirror";
  p.devices = {
      {"MREF", spice::MosType::kNmos, "ref", "ref", "s", 1, 0},
      {"MOUT", spice::MosType::kNmos, "out", "ref", "s", ratio, 0},
  };
  p.ports = {"ref", "out", "s"};
  return p;
}

PrimitiveNetlist make_cascode_current_mirror(int ratio) {
  OLP_CHECK(ratio >= 1, "mirror ratio must be >= 1");
  PrimitiveNetlist p;
  p.type = PrimitiveType::kCurrentMirror;
  p.name = "cascode_current_mirror";
  // Bottom mirror pair (diode at x1) and stacked cascode pair (diode at
  // ref): the classic fully-cascoded mirror. Each pair is its own matching
  // group and occupies its own common-centroid row section.
  p.devices = {
      {"MREF", spice::MosType::kNmos, "x1", "x1", "s", 1, 0},
      {"MOUT", spice::MosType::kNmos, "x2", "x1", "s", ratio, 0},
      {"MCREF", spice::MosType::kNmos, "ref", "ref", "x1", 1, 1},
      {"MCOUT", spice::MosType::kNmos, "out", "ref", "x2", ratio, 1},
  };
  p.ports = {"ref", "out", "s"};
  return p;
}

PrimitiveNetlist make_cascode_diff_pair() {
  PrimitiveNetlist p;
  p.type = PrimitiveType::kDiffPair;
  p.name = "cascode_diff_pair";
  p.devices = {
      {"MA", spice::MosType::kNmos, "xa", "ga", "s", 1, 0},
      {"MB", spice::MosType::kNmos, "xb", "gb", "s", 1, 0},
      {"MCA", spice::MosType::kNmos, "da", "vcasc", "xa", 1, 1},
      {"MCB", spice::MosType::kNmos, "db", "vcasc", "xb", 1, 1},
  };
  p.ports = {"da", "db", "ga", "gb", "vcasc", "s"};
  p.symmetric_ports = {{"da", "db"}, {"ga", "gb"}};
  return p;
}

PrimitiveNetlist make_active_current_mirror() {
  PrimitiveNetlist p;
  p.type = PrimitiveType::kActiveCurrentMirror;
  p.name = "active_current_mirror";
  p.devices = {
      {"MREF", spice::MosType::kPmos, "ref", "ref", "vdd", 1, 0},
      {"MOUT", spice::MosType::kPmos, "out", "ref", "vdd", 1, 0},
  };
  p.ports = {"ref", "out", "vdd"};
  return p;
}

PrimitiveNetlist make_current_source(spice::MosType type) {
  PrimitiveNetlist p;
  p.type = PrimitiveType::kCurrentSource;
  p.name = "current_source";
  p.devices = {
      {"M0", type, "out", "bias", "s", 1, -1},
  };
  p.ports = {"out", "bias", "s"};
  return p;
}

PrimitiveNetlist make_common_source() {
  PrimitiveNetlist p;
  p.type = PrimitiveType::kCommonSource;
  p.name = "common_source";
  p.devices = {
      {"M0", spice::MosType::kNmos, "out", "in", "s", 1, -1},
  };
  p.ports = {"out", "in", "s"};
  return p;
}

PrimitiveNetlist make_current_starved_inverter(double starve_vth_offset) {
  PrimitiveNetlist p;
  p.type = PrimitiveType::kCurrentStarvedInverter;
  p.name = "current_starved_inverter";
  // Stack: vdd - MPS - vp - MPI - out - MNI - vn - MNS - vss.
  p.devices = {
      {"MPS", spice::MosType::kPmos, "vp", "vbp", "vdd", 1, -1,
       starve_vth_offset},
      {"MPI", spice::MosType::kPmos, "out", "in", "vp", 1, -1, 0.0},
      {"MNI", spice::MosType::kNmos, "out", "in", "vn", 1, -1, 0.0},
      {"MNS", spice::MosType::kNmos, "vn", "vbn", "vss", 1, -1,
       starve_vth_offset},
  };
  p.ports = {"in", "out", "vbp", "vbn", "vdd", "vss"};
  return p;
}

PrimitiveNetlist make_cross_coupled_pair(spice::MosType type) {
  PrimitiveNetlist p;
  p.type = PrimitiveType::kCrossCoupledPair;
  p.name = "cross_coupled_pair";
  p.devices = {
      {"MA", type, "da", "db", "s", 1, 0},
      {"MB", type, "db", "da", "s", 1, 0},
  };
  p.ports = {"da", "db", "s"};
  p.symmetric_ports = {{"da", "db"}};
  return p;
}

PrimitiveNetlist make_latch_pair(spice::MosType type) {
  PrimitiveNetlist p;
  p.type = PrimitiveType::kCrossCoupledPair;
  p.name = "latch_pair";
  p.devices = {
      {"MA", type, "da", "db", "sa", 1, 0},
      {"MB", type, "db", "da", "sb", 1, 0},
  };
  p.ports = {"da", "db", "sa", "sb"};
  p.symmetric_ports = {{"da", "db"}, {"sa", "sb"}};
  return p;
}

PrimitiveNetlist make_switch(spice::MosType type) {
  PrimitiveNetlist p;
  p.type = PrimitiveType::kSwitch;
  p.name = "switch";
  p.devices = {
      {"M0", type, "a", "clk", "b", 1, -1},
  };
  p.ports = {"a", "b", "clk"};
  return p;
}

}  // namespace olp::pcell

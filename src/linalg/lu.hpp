#pragma once
// LU factorization with partial pivoting and the linear solves built on it.

#include <cmath>
#include <cstddef>
#include <numeric>
#include <vector>

#include "linalg/matrix.hpp"
#include "util/error.hpp"

namespace olp::linalg {

/// In-place LU factorization with row partial pivoting.
///
/// Stores L (unit diagonal, below) and U (on/above the diagonal) packed in a
/// single matrix, plus the row permutation. `ok()` is false when a pivot
/// smaller than the singularity threshold was encountered, which in MNA terms
/// means a floating node or an ill-posed circuit.
template <typename T>
class Lu {
 public:
  explicit Lu(Matrix<T> a, double singular_tol = 1e-13)
      : lu_(std::move(a)), perm_(lu_.rows()) {
    OLP_CHECK(lu_.rows() == lu_.cols(), "LU requires a square matrix");
    const std::size_t n = lu_.rows();
    std::iota(perm_.begin(), perm_.end(), std::size_t{0});

    // Scale tolerance by the largest matrix entry so conductance units do not
    // change the notion of "singular".
    double max_abs = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        max_abs = std::max(max_abs, std::abs(lu_(i, j)));
      }
    }
    const double tol = singular_tol * std::max(max_abs, 1.0);

    for (std::size_t k = 0; k < n; ++k) {
      // Pivot selection.
      std::size_t pivot = k;
      double pivot_mag = std::abs(lu_(k, k));
      for (std::size_t i = k + 1; i < n; ++i) {
        const double mag = std::abs(lu_(i, k));
        if (mag > pivot_mag) {
          pivot_mag = mag;
          pivot = i;
        }
      }
      if (pivot_mag <= tol) {
        ok_ = false;
        return;
      }
      if (pivot != k) {
        std::swap(perm_[k], perm_[pivot]);
        for (std::size_t j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(pivot, j));
      }
      // Elimination.
      const T pivot_val = lu_(k, k);
      for (std::size_t i = k + 1; i < n; ++i) {
        const T factor = lu_(i, k) / pivot_val;
        lu_(i, k) = factor;
        if (factor == T{}) continue;
        for (std::size_t j = k + 1; j < n; ++j) {
          lu_(i, j) -= factor * lu_(k, j);
        }
      }
    }
  }

  bool ok() const noexcept { return ok_; }

  /// Solves A x = b. Requires ok().
  std::vector<T> solve(const std::vector<T>& b) const {
    OLP_CHECK(ok_, "solve on a singular factorization");
    const std::size_t n = lu_.rows();
    OLP_CHECK(b.size() == n, "rhs dimension mismatch");
    std::vector<T> x(n);
    // Apply permutation and forward-substitute L y = P b.
    for (std::size_t i = 0; i < n; ++i) {
      T acc = b[perm_[i]];
      for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
      x[i] = acc;
    }
    // Back-substitute U x = y.
    for (std::size_t ii = n; ii-- > 0;) {
      T acc = x[ii];
      for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * x[j];
      x[ii] = acc / lu_(ii, ii);
    }
    return x;
  }

 private:
  Matrix<T> lu_;
  std::vector<std::size_t> perm_;
  bool ok_ = true;
};

/// Convenience one-shot solve; returns false (and leaves x untouched) when the
/// matrix is numerically singular.
template <typename T>
bool solve(Matrix<T> a, const std::vector<T>& b, std::vector<T>& x) {
  Lu<T> lu(std::move(a));
  if (!lu.ok()) return false;
  x = lu.solve(b);
  return true;
}

}  // namespace olp::linalg

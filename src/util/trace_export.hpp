#pragma once
// Export views over an obs::Snapshot:
//
//   to_chrome_trace_json()  - Chrome trace-event JSON ("X" complete events),
//                             loadable in Perfetto / chrome://tracing.
//   make_flow_telemetry()   - the machine-readable per-flow report attached
//                             to circuits::FlowReport (stage timings derived
//                             from the spans one level under the root span,
//                             simulation count from the "eval.testbench"
//                             counter).
//   to_json()               - FlowTelemetry as JSON.
//   summary_table()         - human-readable per-stage table (util/table).
//
// Plus a small self-contained JSON well-formedness checker so tests and the
// trace-check script can validate the emitted documents without external
// tooling.

#include <string>
#include <vector>

#include "util/obs.hpp"

namespace olp::obs {

/// The whole snapshot as Chrome trace-event JSON (timestamps/durations in
/// microseconds; one process, one lane per registry tid, named via "M"
/// thread_name metadata records from Snapshot::thread_names). Always a
/// valid JSON document, even for an empty snapshot.
std::string to_chrome_trace_json(const Snapshot& snapshot);

/// One HistogramStats as a JSON object: count/sum/min/max, interpolated
/// p50/p95/p99/p999, and the nonzero buckets as [index,count] pairs (see
/// LatencyHistogram for the bucket layout). Shared by FlowTelemetry JSON
/// and the service's metrics op.
std::string histogram_json(const HistogramStats& h);

/// Aggregated wall-clock time of one flow stage (spans merged by name).
struct StageTiming {
  std::string stage;      ///< span name, e.g. "selection"
  double seconds = 0.0;   ///< summed wall-clock time across occurrences
  long spans = 0;         ///< number of span occurrences merged
};

/// Execution-budget consumption view, derived from the "budget.*" counter
/// family the flow emits at the end of each run (util/budget). All zeros /
/// "none" when the run carried no budget instrumentation.
struct BudgetTelemetry {
  bool limited = false;     ///< a deadline/testbench/check limit was set
  bool exhausted = false;   ///< the budget tripped during the run
  std::string tripped = "none";  ///< BudgetKind name that tripped first
  long checks = 0;               ///< total Budget::check() calls
  long testbenches_consumed = 0;
  long testbench_limit = -1;     ///< -1 = unlimited
  long check_limit = -1;         ///< -1 = unlimited
  double deadline_s = 0.0;       ///< 0 = no deadline
  double elapsed_s = 0.0;        ///< budget clock at end of run
  long truncations = 0;          ///< loops cut short ("budget.truncations")
  long stages_degraded = 0;      ///< stages reporting exhaustion at boundary
};

/// Machine-readable flow telemetry: what FlowReport carries when the
/// registry is enabled during a flow run.
struct FlowTelemetry {
  bool enabled = false;     ///< false = registry was off; everything empty
  std::string flow;         ///< root span name, e.g. "flow.optimize"
  double total_seconds = 0.0;  ///< root span duration
  /// Simulation count, from the "eval.testbench" counter — the same registry
  /// sites that feed FlowReport::testbenches, so the two cannot disagree.
  long simulations = 0;
  std::vector<StageTiming> stages;  ///< spans one level under the root
  BudgetTelemetry budget;   ///< execution-budget consumption for this run
  Snapshot snapshot;        ///< full raw data (spans/counters/distributions)
};

/// Builds the telemetry view of a snapshot. The first span is taken as the
/// flow root; stages are the spans exactly one level deeper, merged by name
/// in first-seen order.
FlowTelemetry make_flow_telemetry(const Snapshot& snapshot);

/// FlowTelemetry as a JSON document (stages, counters, distributions; the
/// raw span list is left to the Chrome trace export).
std::string to_json(const FlowTelemetry& telemetry);

/// Renders the per-stage summary table plus counter/distribution sections.
std::string summary_table(const FlowTelemetry& telemetry);

/// Strict JSON well-formedness check (syntax only). On failure returns false
/// and, when `error` is non-null, a short description with the byte offset.
bool json_well_formed(const std::string& text, std::string* error = nullptr);

/// Writes `content` to `path`, throwing olp::Error on I/O failure.
void write_text_file(const std::string& path, const std::string& content);

}  // namespace olp::obs

#pragma once
// Post-processing measurements on analysis results (the ".measure" layer).

#include <complex>
#include <optional>
#include <string>
#include <vector>

#include "spice/circuit.hpp"
#include "spice/simulator.hpp"

namespace olp::spice {

/// Logarithmically spaced frequency grid from f_lo to f_hi inclusive.
std::vector<double> log_frequencies(double f_lo, double f_hi,
                                    int points_per_decade = 20);

/// Magnitude response (absolute, not dB) of a node across an AC result.
std::vector<double> ac_magnitude(const Simulator& sim, const AcResult& ac,
                                 NodeId node);
/// Differential magnitude |V(p) - V(n)|.
std::vector<double> ac_magnitude_diff(const Simulator& sim, const AcResult& ac,
                                      NodeId p, NodeId n);
/// Unwrapped phase response [degrees] of a node.
std::vector<double> ac_phase_deg(const Simulator& sim, const AcResult& ac,
                                 NodeId node);

double db(double magnitude);

/// Frequency where the magnitude crosses `level` (first downward crossing),
/// log-interpolated; nullopt when no crossing exists in the sweep.
std::optional<double> crossing_frequency(const std::vector<double>& freqs,
                                         const std::vector<double>& mags,
                                         double level);

/// Unity-gain frequency of a magnitude response.
std::optional<double> unity_gain_frequency(const std::vector<double>& freqs,
                                           const std::vector<double>& mags);

/// -3 dB bandwidth relative to the DC (first-sample) magnitude.
std::optional<double> bandwidth_3db(const std::vector<double>& freqs,
                                    const std::vector<double>& mags);

/// Phase margin [degrees]: 180 + phase at the unity-gain frequency.
std::optional<double> phase_margin_deg(const std::vector<double>& freqs,
                                       const std::vector<double>& mags,
                                       const std::vector<double>& phases_deg);

/// Time-domain waveform of one node extracted from a transient result.
std::vector<double> tran_waveform(const Simulator& sim, const TranResult& tr,
                                  NodeId node);
/// Branch current waveform of a voltage source.
std::vector<double> tran_source_current(const Simulator& sim,
                                        const TranResult& tr,
                                        const std::string& vsource);

/// Times at which `wave` crosses `level` in the given direction, linearly
/// interpolated between samples.
std::vector<double> crossing_times(const std::vector<double>& times,
                                   const std::vector<double>& wave,
                                   double level, bool rising);

/// Delay from the k-th crossing of `ref` to the first subsequent crossing of
/// `sig`; nullopt when either crossing does not occur.
std::optional<double> delay_between(const std::vector<double>& times,
                                    const std::vector<double>& ref,
                                    double ref_level, bool ref_rising,
                                    const std::vector<double>& sig,
                                    double sig_level, bool sig_rising,
                                    int ref_skip = 0);

/// Oscillation frequency from the mean period of the last `periods` rising
/// crossings of `level`; nullopt when fewer crossings exist.
std::optional<double> oscillation_frequency(const std::vector<double>& times,
                                            const std::vector<double>& wave,
                                            double level, int periods = 5);

/// Average of w over the time window [t0, t1] (trapezoidal).
double time_average(const std::vector<double>& times,
                    const std::vector<double>& wave, double t0, double t1);

/// Average power delivered by the named DC supply over [t0, t1]:
/// mean(-V * I_branch) with the SPICE branch-current sign convention.
double average_supply_power(const Simulator& sim, const TranResult& tr,
                            const std::string& vsource, double t0, double t1);

}  // namespace olp::spice

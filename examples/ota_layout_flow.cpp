// End-to-end flow on the high-frequency 5T OTA (the paper's Fig. 6 circuit):
// schematic simulation -> primitive optimization (Algorithm 1) -> placement
// -> global routing -> port optimization (Algorithm 2) -> final comparison
// against the conventional baseline.
//
// Observability: set OLP_TRACE_DIR=<dir> to enable flow tracing. The run
// then writes <dir>/ota_flow.trace.json (Chrome trace-event format — open
// in chrome://tracing or https://ui.perfetto.dev), <dir>/ota_flow.telemetry.json
// (machine-readable FlowTelemetry), per-stage SVG layout snapshots, and
// prints the per-stage timing table. OLP_LOG_LEVEL=debug|info|warn|error|off
// controls log verbosity.
//
// Bounded execution: OLP_DEADLINE_MS=<ms> caps the run's wall-clock time and
// OLP_TESTBENCH_BUDGET=<n> its testbench count. On exhaustion each stage
// salvages its best-so-far result and the run finishes degraded (exit 0)
// with stage-attributed "budget" diagnostics — e.g.
//   OLP_DEADLINE_MS=2000 ./ota_layout_flow

#include <cstdlib>
#include <iostream>
#include <string>

#include "circuits/flow.hpp"
#include "circuits/ota5t.hpp"
#include "util/logging.hpp"
#include "util/obs.hpp"
#include "util/table.hpp"
#include "util/env.hpp"
#include "util/trace_export.hpp"
#include "util/units.hpp"

int main() {
  using namespace olp;
  set_log_level(log_level_from_env("OLP_LOG_LEVEL", LogLevel::kError));
  const tech::Technology t = tech::make_default_finfet_tech();

  const std::string trace_dir = env::str("OLP_TRACE_DIR");
  if (!trace_dir.empty()) obs::Registry::global().enable();

  circuits::Ota5T ota(t);
  if (!ota.prepare()) {
    std::cerr << "schematic preparation failed\n";
    return 1;
  }
  std::cout << "Prepared 5T OTA: " << ota.instances().size()
            << " primitive instances, Iref = "
            << units::eng(ota.reference_current(), "A") << "\n\n";

  circuits::FlowOptions fopt;
  fopt.trace_artifacts_dir = trace_dir;
  circuits::FlowEngine engine(t, fopt);
  circuits::FlowReport report;
  const circuits::Realization optimized =
      engine.run(circuits::FlowMode::kOptimize, ota.instances(), ota.routed_nets(), &report);

  if (!trace_dir.empty()) {
    const std::string trace_json =
        obs::to_chrome_trace_json(report.telemetry.snapshot);
    const std::string telemetry_json = obs::to_json(report.telemetry);
    std::string err;
    if (!obs::json_well_formed(trace_json, &err) ||
        !obs::json_well_formed(telemetry_json, &err)) {
      std::cerr << "trace export produced malformed JSON: " << err << "\n";
      return 1;
    }
    obs::write_text_file(trace_dir + "/ota_flow.trace.json", trace_json);
    obs::write_text_file(trace_dir + "/ota_flow.telemetry.json",
                         telemetry_json);
    std::cout << obs::summary_table(report.telemetry) << '\n';
    std::cout << "Trace artifacts written to " << trace_dir << "\n\n";
  }

  // What Algorithm 1 selected per instance.
  {
    TextTable table("Primitive options selected (Algorithm 1)");
    table.set_header({"instance", "chosen configuration", "tuning", "cost"});
    for (const auto& [inst, options] : report.options) {
      const int k = report.chosen_option.at(inst);
      const core::LayoutCandidate& cand =
          options[static_cast<std::size_t>(k)];
      std::string tuning;
      for (const auto& [net, wires] : cand.tuning) {
        tuning += net + "x" + std::to_string(wires) + " ";
      }
      table.add_row({inst, cand.layout.config.to_string(), tuning,
                     fixed(cand.cost.total, 2)});
    }
    std::cout << table << '\n';
  }

  // Placement and routing summary.
  std::cout << "Placement: " << fixed(report.placement.width * 1e6, 2)
            << " x " << fixed(report.placement.height * 1e6, 2)
            << " um, HPWL " << units::eng(report.placement.hpwl, "m")
            << "\n";
  for (const auto& [net, route] : report.routes) {
    std::cout << "  route " << net << ": "
              << units::eng(route.total_length(), "m") << " on "
              << tech::layer_name(route.dominant_layer()) << ", "
              << route.vias << " vias\n";
  }
  std::cout << '\n';

  // Algorithm 2 decisions.
  {
    TextTable table("Port optimization (Algorithm 2)");
    table.set_header({"net", "# parallel routes", "decision"});
    for (const core::NetWireDecision& d : report.decisions) {
      table.add_row({d.circuit_net, std::to_string(d.parallel_routes),
                     d.from_overlap ? "interval overlap" : "gap re-simulated"});
    }
    std::cout << table << '\n';
  }

  // Final circuit-level comparison.
  const auto sch =
      ota.measure(circuits::schematic_realization(ota.instances(), t));
  const auto conv =
      ota.measure(engine.run(circuits::FlowMode::kConventional, ota.instances(), ota.routed_nets()));
  const auto opt = ota.measure(optimized);
  TextTable table("Circuit performance");
  table.set_header({"metric", "schematic", "conventional", "this work"});
  auto row = [&](const std::string& label, const std::string& key, int dec) {
    table.add_row({label, fixed(sch.at(key), dec), fixed(conv.at(key), dec),
                   fixed(opt.at(key), dec)});
  };
  row("Current (uA)", "current_ua", 0);
  row("Gain (dB)", "gain_db", 1);
  row("UGF (GHz)", "ugf_ghz", 2);
  row("3-dB freq (MHz)", "f3db_mhz", 0);
  row("Phase margin (deg)", "pm_deg", 1);
  std::cout << table;
  std::cout << "\nFlow runtime: " << fixed(report.runtime_s, 3) << " s, "
            << report.testbenches << " primitive testbench simulations\n";
  if (report.budget.limited || report.budget.exhausted) {
    std::cout << "Budget: " << report.budget.to_string() << "\n";
  }

  // Resilience summary: a healthy run reports no diagnostics. The
  // "Flow degraded:" line is machine-parseable (tests/run_budget_smoke.sh).
  std::cout << "Flow degraded: " << (report.degraded ? "true" : "false")
            << "\n";
  if (report.degraded) {
    std::cout << report.diagnostics.size() << " diagnostic(s):\n";
    for (const Diagnostic& d : report.diagnostics) {
      std::cout << "  " << d.to_string() << "\n";
    }
  }
  return 0;
}

#pragma once
// Design-rule checking (lite): minimum width and same-net-aware minimum
// spacing per routing layer, applied to generated primitive layouts and
// realized routes. Not a sign-off DRC — the subset needed to keep the
// generator and the route realization honest on the gridded rules the paper
// says it honors.

#include <string>
#include <vector>

#include "geom/layout.hpp"
#include "tech/technology.hpp"

namespace olp::geom {

/// One rule violation.
struct DrcViolation {
  enum class Kind { kMinWidth, kMinSpacing } kind = Kind::kMinWidth;
  tech::Layer layer = tech::Layer::kM1;
  Rect a;           ///< offending shape
  Rect b;           ///< second shape (spacing violations)
  double value = 0; ///< measured width/spacing [m]
  double limit = 0; ///< required minimum [m]

  std::string to_string() const;
};

struct DrcOptions {
  /// Check only routing metals (front-end layers have generator-internal
  /// conventions the simple rules do not model).
  bool metals_only = true;
  /// Shapes on the same net may abut/overlap freely.
  bool same_net_spacing_exempt = true;
};

/// Runs the checks and returns all violations (empty = clean).
std::vector<DrcViolation> check_design_rules(const tech::Technology& t,
                                             const Layout& layout,
                                             const DrcOptions& options = {});

}  // namespace olp::geom

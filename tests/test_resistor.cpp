// Tests for the serpentine poly resistor passive primitive.

#include <gtest/gtest.h>

#include <cmath>

#include "pcell/resistor.hpp"

namespace olp::pcell {
namespace {

const tech::Technology& t() {
  static const tech::Technology tech = tech::make_default_finfet_tech();
  return tech;
}

TEST(PolyResistor, ResistanceFollowsSquareCount) {
  PolyResConfig c;
  c.segments = 1;
  c.segment_length = 2e-6;
  c.width = 0.2e-6;
  const PolyResLayout lay = generate_poly_resistor(t(), c);
  // 10 squares of 300 ohm/sq plus two head contacts.
  EXPECT_NEAR(lay.resistance, 300.0 * 10 + 2 * t().diff_cont_res, 1.0);
}

TEST(PolyResistor, FoldingAddsCornerSquares) {
  PolyResConfig one;
  one.segments = 1;
  one.segment_length = 8e-6;
  PolyResConfig four;
  four.segments = 4;
  four.segment_length = 2e-6;
  const double r1 = generate_poly_resistor(t(), one).resistance;
  const double r4 = generate_poly_resistor(t(), four).resistance;
  // Same body squares; the folded version carries 6 extra corner squares.
  EXPECT_NEAR(r4 - r1, 6 * t().poly_res_sheet, 1.0);
}

TEST(PolyResistor, FoldedAspectIsSquarer) {
  PolyResConfig one;
  one.segments = 1;
  one.segment_length = 8e-6;
  PolyResConfig eight;
  eight.segments = 8;
  eight.segment_length = 1e-6;
  const double ar1 = generate_poly_resistor(t(), one).geometry.aspect_ratio();
  const double ar8 =
      generate_poly_resistor(t(), eight).geometry.aspect_ratio();
  EXPECT_LT(std::fabs(std::log(ar8)), std::fabs(std::log(ar1)));
}

TEST(PolyResistor, CornerFrequencyDropsWithSize) {
  PolyResConfig small;
  small.segments = 2;
  small.segment_length = 1e-6;
  PolyResConfig big;
  big.segments = 8;
  big.segment_length = 4e-6;
  EXPECT_GT(generate_poly_resistor(t(), small).corner_freq(),
            generate_poly_resistor(t(), big).corner_freq());
}

TEST(PolyResistor, EnumerationHitsTarget) {
  const double target = 20e3;
  const std::vector<PolyResConfig> configs =
      enumerate_poly_res_configs(t(), target);
  ASSERT_FALSE(configs.empty());
  // Multiple fold counts -> multiple aspect ratios (the bins' raw material).
  EXPECT_GE(configs.size(), 2u);
  for (const PolyResConfig& c : configs) {
    EXPECT_NEAR(generate_poly_resistor(t(), c).resistance, target,
                0.05 * target);
  }
}

TEST(PolyResistor, PinsAndGeometryPresent) {
  PolyResConfig c;
  c.segments = 4;
  c.segment_length = 2e-6;
  const PolyResLayout lay = generate_poly_resistor(t(), c);
  EXPECT_TRUE(lay.geometry.has_pin("a"));
  EXPECT_TRUE(lay.geometry.has_pin("b"));
  EXPECT_GE(lay.geometry.shapes().size(), 4u);
}

TEST(PolyResistor, Validation) {
  PolyResConfig bad;
  bad.segments = 0;
  EXPECT_THROW(generate_poly_resistor(t(), bad), InvalidArgumentError);
  EXPECT_THROW(enumerate_poly_res_configs(t(), -5.0), InvalidArgumentError);
}

}  // namespace
}  // namespace olp::pcell

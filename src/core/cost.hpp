#pragma once
// The primitive layout cost function (paper Eqs. 5-6).
//
//   Cost = sum_i alpha_i * dx_i
//   dx_i = |x_sch - x_layout| / |x_sch|                     when x_sch != 0
//   dx_i = max(0, (|x_layout| - x_spec) / x_spec)           when x_sch == 0
//
// The second case covers metrics like systematic input offset whose
// schematic value is zero; x_spec is then 10% of the random (mismatch)
// offset. Costs are reported in the paper's units (percent-sum; a dx of
// 6.7% contributes 0.067 * alpha * 100 to the printed cost).

#include <string>
#include <vector>

#include "core/metrics.hpp"

namespace olp::core {

/// One metric's contribution to the cost.
struct MetricDeviation {
  MetricSpec spec;
  double x_sch = 0.0;
  double x_layout = 0.0;
  double x_spec = 0.0;     ///< only used when x_sch == 0
  double deviation = 0.0;  ///< dx_i (fraction, not percent)
};

/// Eq. 6. `x_spec` must be positive when `x_sch` is zero.
double metric_deviation(double x_sch, double x_layout, double x_spec);

/// Detailed cost breakdown of one layout candidate.
struct CostBreakdown {
  std::vector<MetricDeviation> terms;
  double total = 0.0;  ///< Eq. 5, in percent units (paper Table III scale)
};

/// Eq. 5 over a set of measured deviations.
CostBreakdown compute_cost(const std::vector<MetricSpec>& specs,
                           const MetricValues& schematic,
                           const MetricValues& layout, double offset_spec);

}  // namespace olp::core

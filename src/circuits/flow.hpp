#pragma once
// The hierarchical layout flow driver (paper Fig. 1 with the two inserted
// optimization steps), plus the comparison baselines of Sec. IV. One entry
// point runs any of the three flows:
//
//   run(FlowMode::kOptimize):     primitive selection + tuning (Algorithm 1),
//                                 placement, global routing, primitive port
//                                 optimization (Algorithm 2) -> full
//                                 realization ("This work").
//   run(FlowMode::kConventional): geometric constraints only —
//                                 interdigitated min-area primitives, no
//                                 dummies, single wires, no parasitic/LDE
//                                 optimization ([19]/[20]-style baseline).
//   run(FlowMode::kManualOracle): exhaustive configuration/tuning/wire search
//                                 standing in for expert manual layout.
//
// The per-mode methods optimize()/conventional()/manual_oracle() remain as
// deprecated wrappers; they forward to run() verbatim and will be removed.
//
// Environment overrides (see util/env.hpp for the full catalog) are applied
// ONCE, at FlowEngine construction: OLP_THREADS onto num_threads,
// OLP_EVAL_CACHE onto eval_cache, OLP_DEADLINE_MS / OLP_TESTBENCH_BUDGET
// onto budget_limits. run() uses the constructed options verbatim, so two
// runs of one engine can never see different environments.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "circuits/common.hpp"
#include "core/optimizer.hpp"
#include "core/port_optimizer.hpp"
#include "place/placer.hpp"
#include "route/global_router.hpp"
#include "route/router_engine.hpp"
#include "util/budget.hpp"
#include "util/diag.hpp"
#include "util/task_pool.hpp"
#include "util/trace_export.hpp"

namespace olp::core {
class EvalCache;
}  // namespace olp::core

namespace olp::circuits {

/// Which of the three flows run() executes.
enum class FlowMode {
  kOptimize,      ///< the paper's flow ("This work")
  kConventional,  ///< conventional automated layout baseline
  kManualOracle,  ///< exhaustive oracle standing in for manual layout
};

/// Stable lowercase name ("optimize", "conventional", "manual_oracle") —
/// also the suffix of the flow's root span, "flow.<name>".
const char* flow_mode_name(FlowMode mode);

struct FlowOptions {
  int bins = 3;
  int max_tuning_wires = 8;
  int max_port_wires = 8;
  std::uint64_t seed = 1;
  int placer_iterations = 8000;
  int combo_place_iterations = 1500;  ///< quick placements during option choice
  /// When non-empty, each flow run writes per-stage SVG layout snapshots
  /// (<prefix>_placement.svg, <prefix>_routed.svg) into this directory —
  /// visual trace artifacts for debugging placement/routing regressions.
  /// Failures to write degrade to a warning diagnostic, never an error.
  std::string trace_artifacts_dir;
  /// Execution limits for each flow run: wall-clock deadline, testbench
  /// budget, deterministic check budget. OLP_DEADLINE_MS /
  /// OLP_TESTBENCH_BUDGET environment overrides apply at engine
  /// construction. On exhaustion every stage salvages its best-so-far result
  /// and the report is marked degraded with stage-attributed "budget"
  /// diagnostics. Ignored when `budget` below is set.
  BudgetOptions budget_limits;
  /// Optional caller-owned budget handle (not owned, may be null; must
  /// outlive the flow call). Used verbatim — no env overrides — so a caller
  /// can share one budget across runs or cancel a running flow from another
  /// thread via Budget::cancel().
  Budget* budget = nullptr;
  /// Worker threads (including the caller) for primitive evaluation and
  /// sweep parallelization. 1 (the default) runs the exact serial seed path
  /// with no pool; 0 means one thread per hardware core. The OLP_THREADS
  /// environment variable overrides at engine construction. Any value
  /// produces bit-identical flow results (tests/test_determinism.cpp).
  /// Ignored when `pool` below is set.
  int num_threads = 1;
  /// Optional caller-owned shared pool (not owned, may be null; must outlive
  /// the flow call). When set it is used for every parallel stage instead of
  /// an engine-local pool — the batch runner points every job here so one
  /// fixed worker set serves the whole batch.
  TaskPool* pool = nullptr;
  /// Memoize primitive evaluations in a per-run cache (results are
  /// bit-identical either way; hits skip simulation, so testbench counts —
  /// and chaos fault draws — differ from the uncached run, which is why the
  /// default stays off). OLP_EVAL_CACHE=1/0 overrides at construction.
  bool eval_cache = false;
  /// Optional caller-owned evaluation cache shared ACROSS runs (not owned,
  /// may be null; must outlive the flow call). Overrides `eval_cache`: when
  /// set, every evaluator of the run uses this cache. Sharing is only sound
  /// between runs with equal core::EvalCache::scope_key(technology, nmos,
  /// pmos) — the batch runner enforces that by keeping one cache per scope.
  core::EvalCache* shared_eval_cache = nullptr;
  /// Client id this run presents to `shared_eval_cache` (>= 0 enables
  /// cross-client hit attribution; see core::EvalCacheStats).
  int cache_client = -1;
  /// When true (the default) the run owns the process-wide obs registry:
  /// entry rebases it and the report gets a per-run telemetry snapshot.
  /// Concurrent runs (batch jobs) must set this false — the batch runner
  /// rebases once and attaches one pooled snapshot to the whole batch.
  bool own_telemetry = true;
  /// Parallel-moves annealing for the FINAL placement: <= 1 (the default)
  /// keeps the serial trajectory the default-mode goldens pin down; K >= 2
  /// evaluates K candidate moves per temperature step on the worker pool,
  /// accepting deterministically by (cost, move-index) — bit-identical at
  /// every thread count, but a different anneal trajectory with its own
  /// golden (tests/test_stage_parallel.cpp). OLP_PLACER_MOVES overrides at
  /// engine construction. Combo-choice quick placements stay serial either
  /// way (they run inside pooled sweeps already).
  int placer_parallel_moves = 0;
  /// Dependency-partitioned concurrent net routing (route/parallel.hpp):
  /// nets with disjoint congestion windows route concurrently, batches are
  /// barriers, leftovers retry serially in net order. Off by default (the
  /// serial router is the default-mode golden); the partitioned trajectory
  /// is bit-identical across thread counts and carries its own golden.
  /// OLP_ROUTE_PARTITIONED=1/0 overrides at engine construction.
  bool partitioned_routing = false;
  /// Routing backend for the REAL routing stage (route/router_engine.hpp):
  /// kClassic (the default) is the serial router the default-mode goldens
  /// pin byte for byte; kFast, kPartitioned, and kNegotiated are opt-in
  /// trajectories with their own goldens (tests/test_stage_parallel.cpp).
  /// OLP_ROUTER=classic|fast|partitioned|negotiated overrides at engine
  /// construction; for backward compatibility, partitioned_routing=true
  /// (or OLP_ROUTE_PARTITIONED=1) maps kClassic to kPartitioned. Combo
  /// quick trials always route classic, like the other parallel stage
  /// modes above.
  route::RouterBackend router = route::RouterBackend::kClassic;
  /// Max rip-up-and-reroute passes for the negotiated backend (after the
  /// initial greedy pass; the loop exits early at zero overflow).
  /// OLP_ROUTER_ITERS overrides at engine construction.
  int router_negotiation_iterations = 16;
};

/// Everything the flow decided, for reporting and the paper's tables.
struct FlowReport {
  double runtime_s = 0.0;
  long testbenches = 0;
  place::PlacementResult placement;
  std::vector<std::string> placed_instances;  ///< block order in `placement`
  std::map<std::string, route::NetRoute> routes;  ///< circuit net -> route
  std::vector<core::PortConstraint> constraints;
  std::vector<core::NetWireDecision> decisions;
  /// Candidates offered to the placer per instance (Algorithm 1 output).
  std::map<std::string, std::vector<core::LayoutCandidate>> options;
  /// Chosen option index per instance.
  std::map<std::string, int> chosen_option;
  /// Structured records of every recoverable failure and engaged fallback
  /// (simulator retries, quarantined candidates, router fallbacks, ...).
  /// When the obs registry is enabled each record also carries the span
  /// path it was reported under.
  std::vector<Diagnostic> diagnostics;
  /// True when any diagnostic at warning severity or above was reported:
  /// the flow completed, but some subsystem degraded along the way.
  bool degraded = false;
  /// Final consumption snapshot of this run's execution budget. When the
  /// budget tripped (budget.exhausted), the stage whose work was interrupted
  /// is named by the first diagnostic with stage == "budget".
  BudgetStatus budget;
  /// Per-flow observability report (stage timings, counters, distributions,
  /// full span trace). Populated only when obs::Registry is enabled during
  /// the run AND the run owns the registry (FlowOptions::own_telemetry);
  /// `testbenches` above is then derived from its "eval.testbench" counter,
  /// so the two always agree. Export with obs::to_chrome_trace_json /
  /// obs::to_json / obs::summary_table.
  obs::FlowTelemetry telemetry;
};

class FlowEngine {
 public:
  FlowEngine(const tech::Technology& technology, FlowOptions options = {});

  /// Runs one flow end to end (see FlowMode for the three variants).
  Realization run(FlowMode mode, const std::vector<InstanceSpec>& instances,
                  const std::vector<std::string>& routed_nets,
                  FlowReport* report = nullptr) const;

  [[deprecated("use run(FlowMode::kOptimize, ...)")]]
  Realization optimize(const std::vector<InstanceSpec>& instances,
                       const std::vector<std::string>& routed_nets,
                       FlowReport* report = nullptr) const {
    return run(FlowMode::kOptimize, instances, routed_nets, report);
  }

  [[deprecated("use run(FlowMode::kConventional, ...)")]]
  Realization conventional(const std::vector<InstanceSpec>& instances,
                           const std::vector<std::string>& routed_nets,
                           FlowReport* report = nullptr) const {
    return run(FlowMode::kConventional, instances, routed_nets, report);
  }

  [[deprecated("use run(FlowMode::kManualOracle, ...)")]]
  Realization manual_oracle(const std::vector<InstanceSpec>& instances,
                            const std::vector<std::string>& routed_nets,
                            FlowReport* report = nullptr) const {
    return run(FlowMode::kManualOracle, instances, routed_nets, report);
  }

  /// Builds a per-instance evaluator from its bias context.
  core::PrimitiveEvaluator make_evaluator(const InstanceSpec& inst) const;

  const tech::Technology& technology() const { return tech_; }
  const FlowOptions& options() const { return options_; }

 private:
  /// The three mode cores. Each fills `report` (except the envelope fields —
  /// runtime, budget snapshot, telemetry, diagnostics — which run() owns)
  /// and returns the realization. `budget` is the run's effective budget and
  /// `budget_obs` its stage-boundary observer.
  Realization run_optimize(const std::vector<InstanceSpec>& instances,
                           const std::vector<std::string>& routed_nets,
                           FlowReport& report, DiagnosticsSink& sink,
                           Budget& budget, BudgetObserver& budget_obs) const;
  Realization run_conventional(const std::vector<InstanceSpec>& instances,
                               const std::vector<std::string>& routed_nets,
                               FlowReport& report, DiagnosticsSink& sink,
                               Budget& budget,
                               BudgetObserver& budget_obs) const;
  Realization run_manual_oracle(const std::vector<InstanceSpec>& instances,
                                const std::vector<std::string>& routed_nets,
                                FlowReport& report, DiagnosticsSink& sink,
                                Budget& budget,
                                BudgetObserver& budget_obs) const;

  /// Places the chosen layouts and globally routes the given nets. `diag`
  /// (may be null) receives placer/router diagnostics. `artifact_prefix`
  /// names the per-stage SVG snapshots when FlowOptions::trace_artifacts_dir
  /// is set (empty = no artifacts, used by the quick combo trials). `budget`
  /// (may be null) bounds annealing iterations and per-net routing;
  /// `budget_obs` (may be null, null in combo trials) receives the
  /// placement/routing stage-boundary budget telemetry and stage-attributed
  /// exhaustion diagnostics.
  void place_and_route(
      const std::vector<InstanceSpec>& instances,
      const std::map<std::string, const pcell::PrimitiveLayout*>& layouts,
      const std::vector<std::string>& routed_nets, FlowReport& report,
      DiagnosticsSink* diag = nullptr,
      const std::string& artifact_prefix = std::string(),
      Budget* budget = nullptr, BudgetObserver* budget_obs = nullptr) const;

  /// The pool parallel stages run on: FlowOptions::pool when set, else a
  /// lazily built engine-local pool; null when num_threads == 1 so the
  /// serial path never spawns threads (or draws pool chaos faults).
  TaskPool* pool() const;

  const tech::Technology& tech_;
  FlowOptions options_;
  mutable std::unique_ptr<TaskPool> pool_;
};

}  // namespace olp::circuits

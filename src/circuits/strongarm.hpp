#pragma once
// StrongARM latch comparator (paper Fig. 3, Table VI).
//
// Topology (Razavi, SSCS Magazine'15): clocked NMOS tail, input differential
// pair, NMOS latch pair stacked on the DP drains, PMOS cross-coupled pair at
// the outputs, and four PMOS precharge switches (internal nodes + outputs).
// Performance is measured in transient: regeneration delay from the clock
// edge to output resolution, and average supply power at the clock rate.

#include <map>
#include <string>
#include <vector>

#include "circuits/common.hpp"

namespace olp::circuits {

class StrongArmComparator {
 public:
  explicit StrongArmComparator(const tech::Technology& technology);

  bool prepare();

  const std::vector<InstanceSpec>& instances() const { return instances_; }
  std::vector<InstanceSpec>& instances() { return instances_; }

  /// Table VI metrics: "delay_ps", "power_uw".
  std::map<std::string, double> measure(const Realization& realization) const;

  /// Input-referred offset: the differential input at which the decision
  /// flips, found by bisection over transient evaluations. The paper notes
  /// the offset "is similar in all cases, because it is a function of
  /// matching nets" — this measurement backs that claim for our layouts.
  double measure_offset(const Realization& realization,
                        double search_range = 20e-3) const;

  std::vector<std::string> routed_nets() const {
    return {"tail", "xp", "xn", "outp", "outn"};
  }

  double clock_period() const { return clock_period_; }
  double input_differential() const { return vin_diff_; }
  const tech::Technology& technology() const { return tech_; }

 private:
  spice::Circuit build(const Realization& realization) const;

  const tech::Technology& tech_;
  std::vector<InstanceSpec> instances_;
  double clock_period_ = 1e-9;  ///< 1 GHz clock
  double vcm_ = 0.45;
  double vin_diff_ = 50e-3;
};

}  // namespace olp::circuits

#include "circuits/ota5t.hpp"

#include <cmath>

#include "spice/measure.hpp"
#include "spice/simulator.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace olp::circuits {

Ota5T::Ota5T(const tech::Technology& technology) : tech_(technology) {
  // Tail mirror: 1:1 NMOS mirror carrying the full tail current.
  {
    InstanceSpec cm;
    cm.name = "cmtail";
    cm.netlist = pcell::make_current_mirror(1);
    cm.fins = 512;
    cm.port_nets = {{"ref", "iref"}, {"out", "tail"}, {"s", "vssa"}};
    instances_.push_back(cm);
  }
  // Input differential pair.
  {
    InstanceSpec dp;
    dp.name = "dp";
    dp.netlist = pcell::make_diff_pair();
    dp.fins = 384;
    dp.port_nets = {{"da", "d1"},
                    {"db", "out"},
                    {"ga", "vip"},
                    {"gb", "vin"},
                    {"s", "tail"}};
    instances_.push_back(dp);
  }
  // PMOS active current-mirror load.
  {
    InstanceSpec cl;
    cl.name = "cmload";
    cl.netlist = pcell::make_active_current_mirror();
    cl.fins = 256;
    cl.port_nets = {{"ref", "d1"}, {"out", "out"}, {"vdd", "vdd"}};
    instances_.push_back(cl);
  }
}

spice::Circuit Ota5T::build(const Realization& realization) const {
  BuildContext bc = make_build_context(realization.corner);
  const spice::NodeId vdd = bc.net("vdd");
  const spice::NodeId vssa = bc.net("vssa");
  instantiate(bc, instances_, realization, tech_, "0", "vdd");

  bc.ckt.add_vsource("vdd_src", vdd, spice::kGround,
                     spice::Waveform::dc(tech_.vdd));
  bc.ckt.add_vsource("vss_src", vssa, spice::kGround,
                     spice::Waveform::dc(0.0));
  // Ideal reference current into the diode node (the bias generator is
  // external and not counted in the OTA's supply current).
  bc.ckt.add_isource("iref_src", spice::kGround, bc.net("iref"),
                     spice::Waveform::dc(iref_));
  // Differential input drive (+/- half the AC magnitude).
  bc.ckt.add_vsource("vip_src", bc.net("vip"), spice::kGround,
                     spice::Waveform::dc(vcm_), 0.5, 0.0);
  bc.ckt.add_vsource("vin_src", bc.net("vin"), spice::kGround,
                     spice::Waveform::dc(vcm_), 0.5, M_PI);
  bc.ckt.add_capacitor("cl", bc.net("out"), spice::kGround, load_cap_);
  return bc.ckt;
}

bool Ota5T::prepare() {
  const Realization schem = schematic_realization(instances_, tech_);
  spice::Circuit ckt = build(schem);
  spice::Simulator sim(ckt);
  const spice::OpResult op = sim.op();
  if (!op.converged) {
    OLP_ERROR << "OTA schematic operating point failed";
    return false;
  }
  auto v = [&](const std::string& net) {
    return sim.voltage(op.x, ckt.find_node(net));
  };
  const double v_tail = v("tail");
  const double v_d1 = v("d1");
  const double v_out = v("out");
  const double v_iref = v("iref");

  for (InstanceSpec& inst : instances_) {
    inst.bias.vdd = tech_.vdd;
    if (inst.name == "cmtail") {
      inst.bias.bias_current = iref_;
      inst.bias.port_voltage = {{"ref", v_iref}, {"out", v_tail}, {"s", 0.0}};
      // The mirror output sees the DP source: its schematic capacitance.
      inst.bias.port_load_cap = {{"out", 10e-15}};
    } else if (inst.name == "dp") {
      inst.bias.bias_current = iref_;  // 1:1 tail mirror
      inst.bias.port_voltage = {{"ga", vcm_},
                                {"gb", vcm_},
                                {"da", v_d1},
                                {"db", v_out},
                                {"s", v_tail}};
      // Schematic-value external loads: the mirror diode at da, the mirror
      // output plus the explicit load at db.
      inst.bias.port_load_cap = {{"da", 25e-15}, {"db", load_cap_ + 10e-15}};
    } else if (inst.name == "cmload") {
      inst.bias.bias_current = iref_ / 2.0;
      inst.bias.port_voltage = {{"ref", v_d1}, {"out", v_out}};
      inst.bias.port_load_cap = {{"out", load_cap_}};
    }
  }
  return true;
}

std::map<std::string, double> Ota5T::measure(
    const Realization& realization) const {
  spice::Circuit ckt = build(realization);
  spice::Simulator sim(ckt);
  const spice::OpResult op = sim.op();
  std::map<std::string, double> out;
  if (!op.converged) {
    OLP_WARN << "OTA operating point failed in measurement";
    return out;
  }
  out["current_ua"] = std::fabs(sim.vsource_current(op.x, "vdd_src")) * 1e6;

  spice::AcOptions ac;
  ac.frequencies = spice::log_frequencies(1e6, 1e11, 24);
  const spice::AcResult acr = sim.ac(op.x, ac);
  const spice::NodeId out_node = ckt.find_node("out");
  const std::vector<double> mag = spice::ac_magnitude(sim, acr, out_node);
  const std::vector<double> ph = spice::ac_phase_deg(sim, acr, out_node);

  out["gain_db"] = spice::db(mag.front());
  if (const auto ugf = spice::unity_gain_frequency(ac.frequencies, mag)) {
    out["ugf_ghz"] = *ugf / 1e9;
  }
  if (const auto f3 = spice::bandwidth_3db(ac.frequencies, mag)) {
    out["f3db_mhz"] = *f3 / 1e6;
  }
  if (const auto pm = spice::phase_margin_deg(ac.frequencies, mag, ph)) {
    // The output inverts relative to vip; normalize the phase reference so
    // the margin is reported against the differential excitation.
    double margin = *pm;
    while (margin > 180.0) margin -= 360.0;
    while (margin < -180.0) margin += 360.0;
    out["pm_deg"] = std::fabs(margin);
  }
  return out;
}

std::vector<std::string> Ota5T::routed_nets() const {
  // iref is excluded: its only on-chip pin is the mirror diode (the
  // reference generator is external), so there is nothing to route.
  return {"tail", "d1", "out"};
}

}  // namespace olp::circuits

#include "core/library.hpp"

#include "util/error.hpp"

namespace olp::core {

const PrimitiveLibrary& PrimitiveLibrary::standard() {
  static const PrimitiveLibrary lib = [] {
    PrimitiveLibrary l;
    auto add = [&l](pcell::PrimitiveNetlist netlist, std::string desc) {
      LibraryEntry e;
      e.name = netlist.name;
      e.metrics = metric_library(netlist.type);
      e.netlist = std::move(netlist);
      e.description = std::move(desc);
      l.entries_.push_back(std::move(e));
    };
    add(pcell::make_diff_pair(),
        "Input stage of OTAs, comparators and LNAs; offset-critical.");
    add(pcell::make_cascode_diff_pair(),
        "High-gain input stage (telescopic amplifiers).");
    add(pcell::make_current_mirror(1),
        "Passive bias mirror: tail and reference currents.");
    add(pcell::make_cascode_current_mirror(1),
        "High-output-impedance bias mirror.");
    add(pcell::make_active_current_mirror(),
        "Signal-path load mirror (differential-to-single-ended).");
    add(pcell::make_current_source(),
        "Single-device current source / tail device.");
    {
      pcell::PrimitiveNetlist p =
          pcell::make_current_source(spice::MosType::kPmos);
      p.name = "current_source_pmos";
      add(std::move(p), "PMOS current-source load.");
    }
    add(pcell::make_common_source(),
        "Gain stage; Gm/ro set gain and bandwidth.");
    add(pcell::make_current_starved_inverter(),
        "Delay cell of ring oscillators / VCOs.");
    add(pcell::make_cross_coupled_pair(),
        "Regenerative latch / negative-Gm cell.");
    add(pcell::make_latch_pair(),
        "Stacked latch pair (StrongARM comparators).");
    add(pcell::make_switch(),
        "Clocked pass device (comparator tails, precharge).");
    return l;
  }();
  return lib;
}

const LibraryEntry& PrimitiveLibrary::find(const std::string& name) const {
  for (const LibraryEntry& e : entries_) {
    if (e.name == name) return e;
  }
  throw InvalidArgumentError("no library primitive named '" + name + "'");
}

bool PrimitiveLibrary::contains(const std::string& name) const {
  for (const LibraryEntry& e : entries_) {
    if (e.name == name) return true;
  }
  return false;
}

}  // namespace olp::core

#pragma once
// Planar geometry primitives for layout: integer-nanometer rectangles.
//
// Layout coordinates are stored in integer nanometers to keep geometry exact
// on the manufacturing grid (the paper honors gridded FinFET design rules).

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace olp::geom {

/// Integer nanometer coordinate.
using Coord = std::int64_t;

inline constexpr double kNmPerMeter = 1e9;

/// Converts meters to integer nanometers (round to nearest).
inline Coord to_nm(double meters) {
  return static_cast<Coord>(meters * kNmPerMeter + (meters >= 0 ? 0.5 : -0.5));
}
/// Converts integer nanometers to meters.
inline double to_meters(Coord nm) {
  return static_cast<double>(nm) / kNmPerMeter;
}

struct Point {
  Coord x = 0;
  Coord y = 0;
  friend bool operator==(const Point&, const Point&) = default;
};

/// Axis-aligned rectangle, half-open semantics not required: lo/hi inclusive
/// bounds with hi >= lo. A zero-area rect (hi == lo) is a point/edge marker.
struct Rect {
  Coord x_lo = 0, y_lo = 0, x_hi = 0, y_hi = 0;

  Rect() = default;
  Rect(Coord xl, Coord yl, Coord xh, Coord yh)
      : x_lo(xl), y_lo(yl), x_hi(xh), y_hi(yh) {
    OLP_CHECK(xh >= xl && yh >= yl, "rect corners out of order");
  }

  Coord width() const { return x_hi - x_lo; }
  Coord height() const { return y_hi - y_lo; }
  /// Area in nm^2.
  double area() const {
    return static_cast<double>(width()) * static_cast<double>(height());
  }
  Point center() const { return {(x_lo + x_hi) / 2, (y_lo + y_hi) / 2}; }

  bool contains(Point p) const {
    return p.x >= x_lo && p.x <= x_hi && p.y >= y_lo && p.y <= y_hi;
  }
  bool intersects(const Rect& o) const {
    return x_lo <= o.x_hi && o.x_lo <= x_hi && y_lo <= o.y_hi &&
           o.y_lo <= y_hi;
  }

  Rect translated(Coord dx, Coord dy) const {
    return Rect{x_lo + dx, y_lo + dy, x_hi + dx, y_hi + dy};
  }
  /// Smallest rect covering both.
  Rect united(const Rect& o) const {
    return Rect{std::min(x_lo, o.x_lo), std::min(y_lo, o.y_lo),
                std::max(x_hi, o.x_hi), std::max(y_hi, o.y_hi)};
  }

  /// Aspect ratio width/height; throws for a degenerate (zero-height) rect.
  double aspect_ratio() const {
    OLP_CHECK(height() > 0, "aspect ratio of zero-height rect");
    return static_cast<double>(width()) / static_cast<double>(height());
  }

  friend bool operator==(const Rect&, const Rect&) = default;
};

/// Bounding box of a set of rectangles; throws on an empty set.
inline Rect bounding_box(const std::vector<Rect>& rects) {
  OLP_CHECK(!rects.empty(), "bounding box of empty set");
  Rect bb = rects.front();
  for (const Rect& r : rects) bb = bb.united(r);
  return bb;
}

/// Manhattan distance between two points.
inline Coord manhattan(Point a, Point b) {
  const Coord dx = a.x > b.x ? a.x - b.x : b.x - a.x;
  const Coord dy = a.y > b.y ? a.y - b.y : b.y - a.y;
  return dx + dy;
}

}  // namespace olp::geom

#pragma once
// Synthetic gridded FinFET technology ("PDK substitute").
//
// The paper's flow was demonstrated on a proprietary FinFET PDK. The flow
// itself only consumes a small technology surface: fin/poly pitches, the
// per-fin effective width, metal sheet resistances and capacitances, via
// resistance, minimum widths/spacings (for the gridded parallel-wire trick),
// and LDE coefficients. This module provides a self-consistent synthetic
// 12 nm-class technology with values in the publicly documented range for
// 7-14 nm nodes, so all RC and LDE trade-offs have the same shape as in the
// paper.

#include <array>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace olp::tech {

/// Routing/drawing layers. Fin/diffusion/poly are front-end layers; M1..M6
/// are gridded routing metals; V1..V5 connect Mi to Mi+1.
enum class Layer {
  kFin,
  kDiffusion,
  kPoly,
  kM1,
  kM2,
  kM3,
  kM4,
  kM5,
  kM6,
};

inline constexpr int kNumRoutingLayers = 6;

/// Returns the routing metal index (0 for M1) or -1 for front-end layers.
inline int metal_index(Layer layer) {
  switch (layer) {
    case Layer::kM1: return 0;
    case Layer::kM2: return 1;
    case Layer::kM3: return 2;
    case Layer::kM4: return 3;
    case Layer::kM5: return 4;
    case Layer::kM6: return 5;
    default: return -1;
  }
}

inline Layer metal_layer(int index) {
  OLP_CHECK(index >= 0 && index < kNumRoutingLayers, "bad metal index");
  return static_cast<Layer>(static_cast<int>(Layer::kM1) + index);
}

const char* layer_name(Layer layer);

/// Per-metal-layer electrical and geometric parameters.
struct MetalLayerInfo {
  double min_width = 0.0;      ///< [m]
  double min_spacing = 0.0;    ///< [m]
  double pitch = 0.0;          ///< routing pitch [m]
  double sheet_res = 0.0;      ///< [ohm/square]
  double cap_per_length = 0.0; ///< total (area+fringe+coupling) [F/m] at min width
  bool horizontal = false;     ///< preferred routing direction
};

/// Layout-dependent-effect coefficients (paper Sec. III-A: LOD and WPE shift
/// Vth and mobility; values scaled to produce shifts of a few to tens of mV,
/// consistent with [10], [11]).
struct LdeCoefficients {
  /// LOD (length-of-diffusion / stress) threshold shift:
  ///   dVth = k_lod_vth * (1/(SA + L/2) + 1/(SB + L/2) - 2/(SA_ref + L/2))
  /// Calibrated so a finger hugging the diffusion edge (SA ~ 30 nm) shifts
  /// by ~20-30 mV and a dummy-protected finger (SA ~ 90 nm) by ~10 mV,
  /// in the range reported for FinFET nodes [10], [11].
  double k_lod_vth = 1.0e-9;    ///< [V*m]
  double sa_ref = 2e-6;         ///< relaxed-stress reference extension [m]
  /// LOD mobility multiplier: mob *= 1 + k_lod_mob * (same geometric term).
  double k_lod_mob = -1.5e-12;  ///< [m] (~ -4% at the diffusion edge)
  /// WPE threshold shift: dVth = k_wpe_vth / (SC + sc_offset), SC = distance
  /// from the gate to the well edge (~10 mV close to the well edge).
  double k_wpe_vth = 1.5e-9;    ///< [V*m]
  double sc_offset = 80e-9;     ///< [m]
  /// Linear systematic process gradient across the die: dVth = grad_vth * x.
  double grad_vth = 0.6e-3 / 1e-6;  ///< [V/m] (0.6 mV per um)
};

/// The full technology description.
struct Technology {
  std::string name;

  // Front-end geometry.
  double fin_pitch = 0.0;       ///< [m]
  double poly_pitch = 0.0;      ///< contacted poly pitch [m]
  double fin_width_eff = 0.0;   ///< effective electrical width per fin [m]
  double gate_length = 0.0;     ///< drawn channel length [m]
  double diff_extension = 0.0;  ///< S/D diffusion extension past end gate [m]
  double row_height = 0.0;      ///< placement row height quantum [m]

  // Diffusion/contact parasitics.
  double diff_cont_res = 0.0;   ///< resistance of one S/D contact stack [ohm]
  double diff_sheet_res = 0.0;  ///< diffusion sheet resistance [ohm/sq]
  /// Unsilicided precision-poly sheet resistance [ohm/sq] and its parasitic
  /// capacitance to substrate [F/m^2] (the resistor passive primitive).
  double poly_res_sheet = 300.0;
  double poly_res_cap = 0.1e-3;

  std::array<MetalLayerInfo, kNumRoutingLayers> metals{};
  double via_res = 0.0;         ///< single-cut via resistance [ohm]
  double via_cap = 0.0;         ///< via parasitic capacitance [F]

  LdeCoefficients lde;

  // Supply.
  double vdd = 0.0;             ///< nominal supply [V]

  const MetalLayerInfo& metal(Layer layer) const {
    const int idx = metal_index(layer);
    OLP_CHECK(idx >= 0, "layer is not a routing metal");
    return metals[static_cast<std::size_t>(idx)];
  }

  /// Wire resistance of a `length` run on `layer` at minimum width with
  /// `parallel` parallel tracks (the paper's gridded effective-width trick).
  double wire_res(Layer layer, double length, int parallel = 1) const;
  /// Wire capacitance of the same run (parallel tracks add capacitance).
  double wire_cap(Layer layer, double length, int parallel = 1) const;
  /// Resistance of a via stack from `from` to `to` with `cuts` parallel cuts.
  double via_stack_res(Layer from, Layer to, int cuts = 1) const;
};

/// Builds the default synthetic 12 nm-class FinFET technology.
Technology make_default_finfet_tech();

/// Builds a synthetic 65 nm-class planar bulk technology (the paper's
/// conclusion: "this work can readily be extended to other technologies
/// including bulk nodes"). The generator's fin abstraction maps onto width
/// quanta: one "fin" is one 0.28 um slice of planar width; LDE coefficients
/// keep LOD/WPE (both originated in bulk nodes) with a relaxed gradient.
Technology make_bulk_65nm_tech();

}  // namespace olp::tech

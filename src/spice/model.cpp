#include "spice/model.hpp"

#include "util/error.hpp"

namespace olp::spice {

namespace {
// Smooth |x| used for channel-length modulation so the model stays C^1 at
// vds = 0 (important for Newton convergence on pass devices that cross zero).
constexpr double kAbsEps = 1e-3;

double smooth_abs(double x) {
  return std::sqrt(x * x + kAbsEps * kAbsEps) - kAbsEps;
}

double smooth_abs_d(double x) {
  return x / std::sqrt(x * x + kAbsEps * kAbsEps);
}
}  // namespace

MosEval mos_eval(const MosModel& model, double vgs, double vds, double w,
                 double l, double delta_vth, double mobility_mult) {
  OLP_CHECK(w > 0 && l > 0, "MOS device needs positive W and L");

  const double vt = model.vt_thermal;
  const double n = model.nslope;
  const double vth = model.vth0 + delta_vth;
  const double ispec = 2.0 * n * model.kp * mobility_mult * vt * vt * (w / l);

  // The EKV forward/reverse decomposition is inherently drain/source
  // symmetric: for vds < 0 the reverse term dominates and Id flips sign with
  // no special-casing. Only channel-length modulation needs |vds|, smoothed
  // so the characteristic stays differentiable at vds = 0.
  const double uf = (vgs - vth) / (n * vt);
  const double ur = (vgs - vth - n * vds) / (n * vt);

  const double ff = ekv_f(uf);
  const double fr = ekv_f(ur);
  const double dff = ekv_df(uf);
  const double dfr = ekv_df(ur);

  const double lam = model.lambda * (model.lref / l);
  const double clm = 1.0 + lam * smooth_abs(vds);
  const double dclm = lam * smooth_abs_d(vds);

  MosEval e;
  e.id = ispec * (ff - fr) * clm;
  e.gm = ispec * (dff - dfr) / (n * vt) * clm;
  e.gds = ispec * (dfr / vt * clm + (ff - fr) * dclm);
  return e;
}

}  // namespace olp::spice

#include "pcell/resistor.hpp"

#include <cmath>

#include "util/error.hpp"

namespace olp::pcell {

double PolyResLayout::corner_freq() const {
  // Distributed RC line: first pole at ~1/(2 pi R C / 2).
  const double rc = resistance * shunt_cap * 0.5;
  return rc > 0 ? 1.0 / (2.0 * M_PI * rc) : 1e18;
}

PolyResLayout generate_poly_resistor(const tech::Technology& t,
                                     const PolyResConfig& config) {
  OLP_CHECK(config.segments >= 1, "resistor needs at least one segment");
  OLP_CHECK(config.segment_length > 0 && config.width > 0,
            "resistor needs positive geometry");

  PolyResLayout out;
  out.config = config;
  out.geometry.set_name("poly_res");

  const double pitch = 2.0 * config.width;  // bar + equal gap
  const double squares_per_seg = config.segment_length / config.width;
  // Each fold adds roughly two corner squares (the standard 0.56/corner
  // refinement is below the synthetic model's accuracy).
  const double corner_squares = 2.0 * (config.segments - 1);
  out.resistance =
      t.poly_res_sheet * (config.segments * squares_per_seg + corner_squares) +
      2.0 * t.diff_cont_res;  // head contacts
  out.shunt_cap = t.poly_res_cap * config.segments * config.segment_length *
                  config.width;

  using geom::Rect;
  using geom::to_nm;
  for (int s = 0; s < config.segments; ++s) {
    const double x = s * pitch;
    out.geometry.add_shape(
        tech::Layer::kPoly,
        Rect{to_nm(x), 0, to_nm(x + config.width),
             to_nm(config.segment_length)},
        "body");
    if (s + 1 < config.segments) {
      // Fold link at alternating ends.
      const double y = (s % 2 == 0) ? config.segment_length : 0.0;
      out.geometry.add_shape(
          tech::Layer::kPoly,
          Rect{to_nm(x), to_nm(y - (s % 2 == 0 ? config.width : 0)),
               to_nm(x + pitch + config.width),
               to_nm(y + (s % 2 == 0 ? 0 : config.width))},
          "body");
    }
  }
  out.geometry.add_pin("a", tech::Layer::kM1,
                       Rect{0, 0, to_nm(config.width), to_nm(config.width)});
  const double x_last = (config.segments - 1) * pitch;
  const double y_last =
      (config.segments % 2 == 1) ? config.segment_length - config.width : 0.0;
  out.geometry.add_pin("b", tech::Layer::kM1,
                       Rect{to_nm(x_last), to_nm(y_last),
                            to_nm(x_last + config.width),
                            to_nm(y_last + config.width)});
  return out;
}

std::vector<PolyResConfig> enumerate_poly_res_configs(
    const tech::Technology& t, double target, double tolerance) {
  OLP_CHECK(target > 0, "target resistance must be positive");
  std::vector<PolyResConfig> configs;
  for (int segments : {1, 2, 4, 6, 8, 12, 16}) {
    PolyResConfig c;
    c.segments = segments;
    // Solve the segment length for the target.
    const double corner_squares = 2.0 * (segments - 1);
    const double body = target - 2.0 * t.diff_cont_res -
                        t.poly_res_sheet * corner_squares;
    if (body <= 0) continue;
    c.segment_length =
        body / t.poly_res_sheet / segments * c.width;
    if (c.segment_length < 4 * c.width || c.segment_length > 50e-6) continue;
    const PolyResLayout trial = generate_poly_resistor(t, c);
    if (std::fabs(trial.resistance - target) <= tolerance * target) {
      configs.push_back(c);
    }
  }
  return configs;
}

}  // namespace olp::pcell

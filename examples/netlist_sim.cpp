// Standalone use of the circuit-simulation substrate: parse a SPICE-dialect
// netlist, run DC / AC / transient analyses, and print measurements.
//
// Usage: netlist_sim [file.sp]
// Without an argument, a built-in common-source amplifier deck is used.

#include <fstream>
#include <iostream>
#include <sstream>

#include "spice/measure.hpp"
#include "spice/parser.hpp"
#include "spice/simulator.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

constexpr const char* kDefaultDeck = R"(
* Common-source amplifier with resistive load
.model nfet nmos vth0=0.28 kp=380u nslope=1.25 lambda=0.3
Vdd vdd 0 DC 0.8
Vin in 0 DC 0.38 AC 1.0
Rload vdd out 2k
M1 out in 0 0 nfet w=2u l=14n
Cload out 0 20f
.end
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace olp;

  std::string deck = kDefaultDeck;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << '\n';
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    deck = buf.str();
  }

  spice::Circuit ckt;
  try {
    ckt = spice::parse_netlist(deck);
  } catch (const ParseError& e) {
    std::cerr << e.what() << '\n';
    return 1;
  }
  std::cout << "Parsed netlist: " << ckt.device_count() << " devices, "
            << ckt.node_count() - 1 << " nodes\n\n";

  spice::Simulator sim(ckt);

  // DC operating point.
  const spice::OpResult op = sim.op();
  if (!op.converged) {
    std::cerr << "operating point failed to converge\n";
    return 1;
  }
  TextTable optable("DC operating point");
  optable.set_header({"node", "voltage"});
  for (spice::NodeId n = 1; n < ckt.node_count(); ++n) {
    optable.add_row({ckt.node_name(n), units::eng(sim.voltage(op.x, n), "V")});
  }
  std::cout << optable << '\n';

  // AC sweep of the first node named "out" (when present).
  if (ckt.has_node("out")) {
    spice::AcOptions ac;
    ac.frequencies = spice::log_frequencies(1e6, 1e11, 16);
    const spice::AcResult r = sim.ac(op.x, ac);
    const std::vector<double> mag =
        spice::ac_magnitude(sim, r, ckt.find_node("out"));
    std::cout << "AC gain at " << units::eng(ac.frequencies.front(), "Hz")
              << ": " << fixed(spice::db(mag.front()), 2) << " dB\n";
    if (const auto f3 = spice::bandwidth_3db(ac.frequencies, mag)) {
      std::cout << "3-dB bandwidth: " << units::eng(*f3, "Hz") << '\n';
    }
    if (const auto ugf = spice::unity_gain_frequency(ac.frequencies, mag)) {
      std::cout << "Unity-gain frequency: " << units::eng(*ugf, "Hz") << '\n';
    }
  }

  // Short transient.
  spice::TranOptions tr;
  tr.tstop = 2e-9;
  tr.dt = 2e-12;
  const spice::TranResult res = sim.tran(tr);
  if (res.ok && ckt.has_node("out")) {
    const std::vector<double> w =
        spice::tran_waveform(sim, res, ckt.find_node("out"));
    double lo = w[0], hi = w[0];
    for (double v : w) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    std::cout << "Transient (2 ns): out in ["
              << units::eng(lo, "V") << ", " << units::eng(hi, "V") << "]\n";
  }
  return 0;
}

// Goldens and adversarial tests for the OPT-IN parallel intra-job stages:
// the parallel-moves placer (place::PlacerOptions::parallel_moves) and
// dependency-partitioned routing (route/parallel.hpp), plus work-stealing
// TaskPool behavior under concurrent and nested submission.
//
// These modes intentionally produce a DIFFERENT trajectory than the serial
// defaults (which keep their goldens in tests/test_determinism.cpp); the
// contract proven here is the same shape one level up: each mode is a pure
// function of its options — bit-identical at every thread count, pool ==
// null included — so "parallel" never means "nondeterministic".

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "circuits/flow.hpp"
#include "circuits/ota5t.hpp"
#include "flow_golden.hpp"
#include "place/placer.hpp"
#include "route/global_router.hpp"
#include "route/parallel.hpp"
#include "util/budget.hpp"
#include "util/faults.hpp"
#include "util/logging.hpp"
#include "util/task_pool.hpp"

namespace olp {
namespace {

const tech::Technology& t() {
  static const tech::Technology tech = tech::make_default_finfet_tech();
  return tech;
}

// ---------------------------------------------------------------------------
// Parallel-moves placer: one trajectory per (seed, K), any thread count.

std::vector<place::Block> placer_blocks() {
  std::vector<place::Block> blocks;
  for (int i = 0; i < 8; ++i) {
    place::Block b;
    b.name = "b" + std::to_string(i);
    b.width = (1.0 + 0.25 * i) * 1e-6;
    b.height = (2.0 - 0.15 * i) * 1e-6;
    blocks.push_back(b);
  }
  return blocks;
}

std::vector<place::PlacementNet> placer_nets() {
  std::vector<place::PlacementNet> nets;
  for (int n = 0; n < 4; ++n) {
    place::PlacementNet pn;
    pn.name = "n" + std::to_string(n);
    pn.pins.push_back({2 * n, 0.2e-6, 0.3e-6});
    pn.pins.push_back({2 * n + 1, 0.1e-6, 0.5e-6});
    pn.pins.push_back({(2 * n + 3) % 8, 0.4e-6, 0.1e-6});
    nets.push_back(pn);
  }
  return nets;
}

place::PlacementResult place_with(int parallel_moves, TaskPool* pool) {
  place::PlacerOptions opt;
  opt.iterations = 2000;
  opt.seed = 7;
  opt.parallel_moves = parallel_moves;
  opt.pool = pool;
  const place::AnnealingPlacer placer(opt);
  return placer.place(placer_blocks(), placer_nets(), {{0, 1}});
}

void expect_same_placement(const place::PlacementResult& got,
                           const place::PlacementResult& want) {
  ASSERT_EQ(got.blocks.size(), want.blocks.size());
  for (std::size_t i = 0; i < got.blocks.size(); ++i) {
    expect_bits(got.blocks[i].x, want.blocks[i].x,
                "block " + std::to_string(i) + " x");
    expect_bits(got.blocks[i].y, want.blocks[i].y,
                "block " + std::to_string(i) + " y");
    EXPECT_EQ(got.blocks[i].mirrored, want.blocks[i].mirrored) << i;
  }
  expect_bits(got.width, want.width, "width");
  expect_bits(got.height, want.height, "height");
  expect_bits(got.hpwl, want.hpwl, "hpwl");
  expect_bits(got.cost, want.cost, "cost");
  EXPECT_EQ(got.legal, want.legal);
}

TEST(StageParallelPlacer, ParallelMovesBitIdenticalAcrossThreadCounts) {
  // pool == null IS the golden for K = 4; worker pools must reproduce it.
  const place::PlacementResult golden = place_with(4, nullptr);
  TaskPool two(2);
  expect_same_placement(place_with(4, &two), golden);
  TaskPool eight(8);
  expect_same_placement(place_with(4, &eight), golden);
}

TEST(StageParallelPlacer, ParallelMovesBitIdenticalUnderChaosDelays) {
  const place::PlacementResult golden = place_with(4, nullptr);
  FaultConfig config;
  config.seed = 11;
  config.pool_delay_rate = 1.0;  // scramble candidate completion order
  ScopedFaultInjection chaos(config);
  TaskPool eight(8);
  expect_same_placement(place_with(4, &eight), golden);
  EXPECT_GT(FaultInjector::global().fired(FaultSite::kPoolTaskDelay), 0);
}

TEST(StageParallelPlacer, KEqualsOneIsTheClassicSerialTrajectory) {
  // parallel_moves <= 1 must not perturb the serial golden in any way —
  // same RNG draw sequence, same acceptances, same result.
  const place::PlacementResult serial = place_with(0, nullptr);
  TaskPool eight(8);
  expect_same_placement(place_with(1, &eight), serial);
}

TEST(StageParallelPlacer, DifferentKIsADifferentTrajectory) {
  // Not an accident of a tiny fixture: K changes the anneal schedule, so
  // the result is expected to differ from the serial one. (If these were
  // equal the dedicated golden above would be meaningless.)
  const place::PlacementResult serial = place_with(0, nullptr);
  const place::PlacementResult k4 = place_with(4, nullptr);
  const bool same_cost = double_bits_equal(serial.cost, k4.cost);
  const bool same_hpwl = double_bits_equal(serial.hpwl, k4.hpwl);
  EXPECT_FALSE(same_cost && same_hpwl);
}

// ---------------------------------------------------------------------------
// Dependency-partitioned routing: batches are a pure function of the net
// list; disjoint windows make same-batch searches independent.

std::vector<route::NetPins> router_nets() {
  // Four local clusters far apart (partitionable) plus one long net that
  // overlaps everything (forces its own batch).
  std::vector<route::NetPins> nets;
  const double um = 1e-6;
  auto cluster = [&](const std::string& name, double cx, double cy) {
    route::NetPins np;
    np.name = name;
    np.pins = {geom::Point{geom::to_nm(cx), geom::to_nm(cy)},
               geom::Point{geom::to_nm(cx + 2 * um), geom::to_nm(cy + um)},
               geom::Point{geom::to_nm(cx + um), geom::to_nm(cy + 2 * um)}};
    return np;
  };
  nets.push_back(cluster("nw", 2 * um, 24 * um));
  nets.push_back(cluster("ne", 24 * um, 24 * um));
  nets.push_back(cluster("sw", 2 * um, 2 * um));
  nets.push_back(cluster("se", 24 * um, 2 * um));
  route::NetPins diag;
  diag.name = "diag";
  diag.pins = {geom::Point{0, 0},
               geom::Point{geom::to_nm(28 * um), geom::to_nm(28 * um)}};
  nets.push_back(diag);
  return nets;
}

geom::Rect router_region() {
  return geom::Rect{0, 0, geom::to_nm(30e-6), geom::to_nm(30e-6)};
}

TEST(StageParallelRouter, PartitionBatchesAreDisjointAndCoverEveryNet) {
  const route::GlobalRouter router(t(), router_region(), {});
  const std::vector<route::NetPins> nets = router_nets();
  const route::PartitionPlan plan =
      route::partition_nets(router, nets, /*margin_cells=*/6);
  ASSERT_EQ(plan.windows.size(), nets.size());
  std::vector<int> seen(nets.size(), 0);
  for (const std::vector<std::size_t>& batch : plan.batches) {
    for (std::size_t a = 0; a < batch.size(); ++a) {
      ++seen[batch[a]];
      for (std::size_t b = a + 1; b < batch.size(); ++b) {
        EXPECT_FALSE(
            plan.windows[batch[a]].overlaps(plan.windows[batch[b]]))
            << nets[batch[a]].name << " vs " << nets[batch[b]].name;
      }
    }
  }
  for (std::size_t i = 0; i < nets.size(); ++i) EXPECT_EQ(seen[i], 1) << i;
  // The four corner clusters are pairwise disjoint; the diagonal net
  // overlaps all of them. Greedy coloring in net order must therefore pack
  // the clusters together and isolate the diagonal.
  EXPECT_EQ(plan.batches.size(), 2u);
  EXPECT_EQ(plan.batches[0].size(), 4u);
  EXPECT_EQ(plan.batches[1].size(), 1u);
}

void expect_same_routes(const std::vector<route::NetRoute>& got,
                        const std::vector<route::NetRoute>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].net, want[i].net);
    EXPECT_EQ(got[i].routed, want[i].routed) << got[i].net;
    EXPECT_EQ(got[i].vias, want[i].vias) << got[i].net;
    ASSERT_EQ(got[i].segments.size(), want[i].segments.size()) << got[i].net;
    for (std::size_t s = 0; s < got[i].segments.size(); ++s) {
      EXPECT_EQ(got[i].segments[s].layer, want[i].segments[s].layer);
      EXPECT_EQ(got[i].segments[s].a, want[i].segments[s].a);
      EXPECT_EQ(got[i].segments[s].b, want[i].segments[s].b);
    }
  }
}

std::vector<route::NetRoute> route_with(TaskPool* pool) {
  // Fresh router per run: routing mutates the congestion grid.
  route::GlobalRouter router(t(), router_region(), {});
  return route::route_partitioned(router, router_nets(), pool);
}

TEST(StageParallelRouter, PartitionedRoutingBitIdenticalAcrossThreadCounts) {
  const std::vector<route::NetRoute> golden = route_with(nullptr);
  for (const route::NetRoute& nr : golden) {
    EXPECT_TRUE(nr.routed) << nr.net;
  }
  TaskPool two(2);
  expect_same_routes(route_with(&two), golden);
  TaskPool eight(8);
  expect_same_routes(route_with(&eight), golden);
}

TEST(StageParallelRouter, PartitionedRoutingBitIdenticalUnderChaosDelays) {
  const std::vector<route::NetRoute> golden = route_with(nullptr);
  FaultConfig config;
  config.seed = 13;
  config.pool_delay_rate = 1.0;
  ScopedFaultInjection chaos(config);
  TaskPool eight(8);
  expect_same_routes(route_with(&eight), golden);
}

// ---------------------------------------------------------------------------
// Flow-level golden: both modes on, OTA flow, any thread count.

namespace flows = olp::circuits;

class StageParallelFlow : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    set_log_level(LogLevel::kError);
    unsetenv("OLP_THREADS");
    unsetenv("OLP_EVAL_CACHE");
    unsetenv("OLP_DEADLINE_MS");
    unsetenv("OLP_TESTBENCH_BUDGET");
    unsetenv("OLP_PLACER_MOVES");
    unsetenv("OLP_ROUTE_PARTITIONED");
    unsetenv("OLP_ROUTER");
    unsetenv("OLP_ROUTER_ITERS");
    ota_ = new flows::Ota5T(t());
    ASSERT_TRUE(ota_->prepare());
    golden_real_ = new flows::Realization(run(1, &golden_report_));
  }
  static void TearDownTestSuite() {
    delete golden_real_;
    delete ota_;
  }

  /// One optimize-flow run with BOTH parallel stage modes enabled. The
  /// golden is num_threads == 1 (no pool at all): the modes must produce
  /// their trajectory from the options alone, not from the worker count.
  static flows::Realization run(int num_threads, flows::FlowReport* report) {
    flows::FlowOptions opts;
    opts.num_threads = num_threads;
    opts.placer_parallel_moves = 4;
    opts.partitioned_routing = true;
    flows::FlowEngine engine(t(), opts);
    return engine.run(flows::FlowMode::kOptimize, ota_->instances(),
                      ota_->routed_nets(), report);
  }

  static void expect_matches_golden(int num_threads) {
    flows::FlowReport report;
    const flows::Realization real = run(num_threads, &report);
    expect_same_flow_result(report, golden_report_, real, *golden_real_);
  }

  static flows::Ota5T* ota_;
  static flows::Realization* golden_real_;
  static flows::FlowReport golden_report_;
};

flows::Ota5T* StageParallelFlow::ota_ = nullptr;
flows::Realization* StageParallelFlow::golden_real_ = nullptr;
flows::FlowReport StageParallelFlow::golden_report_;

TEST_F(StageParallelFlow, SerialRunReproducesItself) {
  expect_matches_golden(1);
}

TEST_F(StageParallelFlow, TwoThreadsMatchesGolden) {
  expect_matches_golden(2);
}

TEST_F(StageParallelFlow, EightThreadsMatchesGolden) {
  expect_matches_golden(8);
}

TEST_F(StageParallelFlow, EnvOverridesSelectTheSameTrajectory) {
  // OLP_PLACER_MOVES / OLP_ROUTE_PARTITIONED applied at engine
  // construction must reach the exact same golden as the programmatic
  // options.
  setenv("OLP_PLACER_MOVES", "4", 1);
  setenv("OLP_ROUTE_PARTITIONED", "1", 1);
  flows::FlowOptions opts;
  opts.num_threads = 2;
  flows::FlowEngine engine(t(), opts);
  unsetenv("OLP_PLACER_MOVES");
  unsetenv("OLP_ROUTE_PARTITIONED");
  flows::FlowReport report;
  const flows::Realization real = engine.run(
      flows::FlowMode::kOptimize, ota_->instances(), ota_->routed_nets(),
      &report);
  expect_same_flow_result(report, golden_report_, real, *golden_real_);
}

// ---------------------------------------------------------------------------
// Router-backend flow goldens: each opt-in backend (fast, negotiated) is its
// own deterministic trajectory — bit-identical at every thread count, chaos
// pool delays included. The classic default's golden lives in
// test_determinism.cpp and must stay byte-identical to the pre-backend
// router; these pin the new siblings the same way.

class RouterBackendFlow : public StageParallelFlow {
 protected:
  static flows::Realization run_backend(route::RouterBackend backend,
                                        int num_threads,
                                        flows::FlowReport* report) {
    flows::FlowOptions opts;
    opts.num_threads = num_threads;
    opts.router = backend;
    flows::FlowEngine engine(t(), opts);
    return engine.run(flows::FlowMode::kOptimize, ota_->instances(),
                      ota_->routed_nets(), report);
  }

  static void expect_backend_stable(route::RouterBackend backend) {
    flows::FlowReport golden_report;
    const flows::Realization golden =
        run_backend(backend, 1, &golden_report);
    for (const int threads : {2, 8}) {
      flows::FlowReport report;
      const flows::Realization real =
          run_backend(backend, threads, &report);
      expect_same_flow_result(report, golden_report, real, golden);
    }
    FaultConfig config;
    config.seed = 19;
    config.pool_delay_rate = 1.0;
    ScopedFaultInjection chaos(config);
    flows::FlowReport report;
    const flows::Realization real = run_backend(backend, 8, &report);
    expect_same_flow_result(report, golden_report, real, golden);
  }
};

TEST_F(RouterBackendFlow, FastBackendBitIdenticalAcrossThreadCounts) {
  expect_backend_stable(route::RouterBackend::kFast);
}

TEST_F(RouterBackendFlow, NegotiatedBackendBitIdenticalAcrossThreadCounts) {
  expect_backend_stable(route::RouterBackend::kNegotiated);
}

TEST_F(RouterBackendFlow, PartitionedBackendBitIdenticalAcrossThreadCounts) {
  expect_backend_stable(route::RouterBackend::kPartitioned);
}

TEST_F(RouterBackendFlow, EnvSelectedBackendMatchesProgrammaticOption) {
  flows::FlowReport want_report;
  const flows::Realization want =
      run_backend(route::RouterBackend::kFast, 2, &want_report);

  setenv("OLP_ROUTER", "fast", 1);
  flows::FlowOptions opts;
  opts.num_threads = 2;
  flows::FlowEngine engine(t(), opts);
  unsetenv("OLP_ROUTER");
  flows::FlowReport report;
  const flows::Realization real = engine.run(
      flows::FlowMode::kOptimize, ota_->instances(), ota_->routed_nets(),
      &report);
  expect_same_flow_result(report, want_report, real, want);
}

TEST_F(RouterBackendFlow, UnknownEnvBackendKeepsConfiguredDefault) {
  setenv("OLP_ROUTER", "bogus", 1);
  flows::FlowOptions opts;
  opts.num_threads = 1;
  set_log_level(LogLevel::kOff);  // silence the expected warning
  flows::FlowEngine engine(t(), opts);
  set_log_level(LogLevel::kError);
  unsetenv("OLP_ROUTER");
  flows::FlowReport report;
  const flows::Realization real = engine.run(
      flows::FlowMode::kOptimize, ota_->instances(), ota_->routed_nets(),
      &report);
  // "bogus" must fall back to the configured classic default: the run is
  // the classic serial trajectory, not an error.
  flows::FlowOptions classic;
  classic.num_threads = 1;
  flows::FlowEngine classic_engine(t(), classic);
  flows::FlowReport classic_report;
  const flows::Realization classic_real = classic_engine.run(
      flows::FlowMode::kOptimize, ota_->instances(), ota_->routed_nets(),
      &classic_report);
  expect_same_flow_result(report, classic_report, real, classic_real);
}

// ---------------------------------------------------------------------------
// Work stealing under adversarial submission patterns. test_task_pool.cpp
// covers single-submitter behavior; these exercise the multi-slot cases the
// stealing scheduler introduced: several external submitters at once,
// submissions from worker threads (nested batches), and cancellation /
// exception semantics while thieves are active.

TEST(StageParallelStealing, ConcurrentSubmittersUnderChaosDelays) {
  FaultConfig config;
  config.seed = 17;
  config.pool_delay_rate = 1.0;
  ScopedFaultInjection chaos(config);

  TaskPool pool(4);
  const int kSubmitters = 4;
  const std::size_t n = 48;
  std::vector<std::vector<long>> slots(
      kSubmitters, std::vector<long>(n, -1));
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      pool.parallel_for(n, [&, s](std::size_t i) {
        slots[static_cast<std::size_t>(s)][i] =
            static_cast<long>(s) * 1000 + static_cast<long>(i);
        return true;
      });
    });
  }
  for (std::thread& th : submitters) th.join();
  for (int s = 0; s < kSubmitters; ++s) {
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(slots[static_cast<std::size_t>(s)][i],
                static_cast<long>(s) * 1000 + static_cast<long>(i));
    }
  }
}

TEST(StageParallelStealing, NestedSubmissionFromWorkerThreads) {
  // A worker that submits a batch drains it from its own slot while other
  // workers may steal from it — the parallel placer inside a pooled flow
  // job is exactly this shape.
  TaskPool pool(4);
  const std::size_t outer = 6, inner = 32;
  std::vector<std::vector<long>> slots(outer, std::vector<long>(inner, -1));
  pool.parallel_for(outer, [&](std::size_t o) {
    pool.parallel_for(inner, [&, o](std::size_t i) {
      slots[o][i] = static_cast<long>(o * inner + i);
      return true;
    });
    return true;
  });
  for (std::size_t o = 0; o < outer; ++o) {
    for (std::size_t i = 0; i < inner; ++i) {
      EXPECT_EQ(slots[o][i], static_cast<long>(o * inner + i));
    }
  }
}

TEST(StageParallelStealing, CancelDrainsConcurrentSubmittersPromptly) {
  Budget budget;  // unlimited: only cancel() can trip it
  TaskPool pool(4);
  const std::size_t n = 100000;
  std::atomic<long> executed{0};
  const MonotonicStopwatch watch;

  auto submit = [&] {
    pool.parallel_for(n, [&](std::size_t) {
      if (budget.check()) return false;
      executed.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      return true;
    });
  };
  std::thread a(submit), b(submit);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  budget.cancel();
  a.join();
  b.join();

  EXPECT_LT(watch.seconds(), 3.0);
  EXPECT_LT(executed.load(), static_cast<long>(2 * n));
  EXPECT_TRUE(budget.exhausted());
}

TEST(StageParallelStealing, ExceptionStaysWithItsOwnBatch) {
  // Two concurrent submitters, one throwing batch: the exception must
  // surface on the submitter that owns the batch (lowest index, as always)
  // and must not leak into the healthy batch.
  TaskPool pool(4);
  for (int repeat = 0; repeat < 3; ++repeat) {
    std::string caught;
    std::atomic<long> healthy{0};
    std::thread thrower([&] {
      try {
        pool.parallel_for(32, [&](std::size_t i) -> bool {
          throw std::runtime_error("boom " + std::to_string(i));
        });
      } catch (const std::runtime_error& e) {
        caught = e.what();
      }
    });
    std::thread worker_batch([&] {
      pool.parallel_for(64, [&](std::size_t) {
        healthy.fetch_add(1);
        return true;
      });
    });
    thrower.join();
    worker_batch.join();
    EXPECT_EQ(caught, "boom 0");
    EXPECT_EQ(healthy.load(), 64);
  }
}

}  // namespace
}  // namespace olp

#pragma once
// Primitive performance metrics, weights and tuning terminals (paper Sec. II,
// Table II).
//
// Each primitive family carries: the metrics that matter for its circuit-level
// use, a weight per metric (high 1.0 / medium 0.5 / low 0.1), the tuning
// terminals whose RC can be traded off, and whether those terminals are
// correlated (must be optimized jointly). These annotations are
// topology-dependent and technology-independent (Sec. II-B).

#include <map>
#include <string>
#include <vector>

#include "pcell/primitive.hpp"

namespace olp::core {

/// Metric identifiers; names follow the paper's Table II.
enum class MetricKind {
  kGm,            ///< effective transconductance
  kGmOverCtotal,  ///< bandwidth proxy Gm / C_total
  kInputOffset,   ///< systematic input-referred offset [V]
  kCurrentRatio,  ///< mirror output/reference current ratio
  kOutputCurrent, ///< output current [A]
  kCout,          ///< output capacitance [F]
  kRout,          ///< output resistance [ohm]
  kDelay,         ///< propagation delay [s]
  kGain,          ///< small-signal voltage gain (absolute)
  kCapacitance,   ///< passive capacitance value [F]
  kCornerFreq,    ///< passive RC corner frequency [Hz]
  kResistance,    ///< passive resistance value [ohm]
};

const char* metric_name(MetricKind kind);

/// Measured metric values of one evaluation.
using MetricValues = std::map<MetricKind, double>;

/// Weight levels from the paper: high = 1, medium = 0.5, low = 0.1.
inline constexpr double kWeightHigh = 1.0;
inline constexpr double kWeightMedium = 0.5;
inline constexpr double kWeightLow = 0.1;

struct MetricSpec {
  MetricKind kind = MetricKind::kGm;
  double weight = kWeightHigh;
  /// When the schematic value is zero (e.g. systematic offset), the
  /// deviation is measured against a spec value instead (Eq. 6 second case);
  /// `spec_is_offset_fraction` marks metrics whose spec is derived as 10% of
  /// the random mismatch at evaluation time.
  bool spec_is_offset_fraction = false;
};

/// Library entry: metrics + tuning terminals for one primitive family.
struct MetricLibraryEntry {
  pcell::PrimitiveType type = pcell::PrimitiveType::kDiffPair;
  std::vector<MetricSpec> metrics;
  /// Primitive net names whose internal strap is a tuning terminal.
  std::vector<std::string> tuning_terminals;
  /// True when the tuning terminals interact and must be swept jointly
  /// (paper Algorithm 1 lines 9-13).
  bool terminals_correlated = false;
};

/// Returns the Table II entry for a primitive family. The tuning terminal
/// names are resolved against the canonical netlists from pcell/primitive.hpp.
MetricLibraryEntry metric_library(pcell::PrimitiveType type);

}  // namespace olp::core

#pragma once
// Deadline- and budget-bounded flow execution.
//
// A Budget is a cooperative execution bound carried through the layout flow:
// a wall-clock deadline (monotonic, steady_clock), a testbench-count budget,
// a deterministic check-count budget ("fuel", mainly for tests), and an
// explicit cancellation flag. Every major loop in the flow — optimizer
// candidate enumeration and tuning sweeps, placer annealing iterations,
// per-net routing, port-optimizer sweeps, simulator Newton/timestep loops —
// probes the handle via Budget::check() and, once the budget is exhausted,
// unwinds keeping its best-so-far result instead of throwing work away.
//
// Exhaustion is sticky: once any dimension trips, every later check() returns
// true, so all downstream stages degrade to their cheapest salvage path and
// the flow terminates promptly. When no limit is configured (and chaos
// injection is off) check() never trips and feeds nothing back into flow
// decisions, so a budgeted-but-unlimited run is bit-identical to an
// unbudgeted one.
//
// Chaos composition: each check() draws at FaultSite::kBudgetExhaustion, so
// tests can force exhaustion deterministically at any check site without a
// real deadline (see util/faults.hpp).

#include <atomic>
#include <chrono>
#include <string>

namespace olp {

// All flow timing (deadline math, FlowReport::runtime_s) goes through this
// single monotonic source; it must never go backwards under wall-clock
// adjustment.
using BudgetClock = std::chrono::steady_clock;
static_assert(BudgetClock::is_steady,
              "flow deadlines and runtimes require a monotonic clock");

/// Monotonic stopwatch: the one way flow code measures elapsed seconds.
class MonotonicStopwatch {
 public:
  MonotonicStopwatch() : start_(BudgetClock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(BudgetClock::now() - start_).count();
  }

 private:
  BudgetClock::time_point start_;
};

/// Which budget dimension tripped first.
enum class BudgetKind : int {
  kNone = 0,         ///< not exhausted
  kDeadline = 1,     ///< wall-clock deadline exceeded
  kTestbenches = 2,  ///< testbench-count budget consumed
  kChecks = 3,       ///< check-count ("fuel") budget consumed
  kCancelled = 4,    ///< explicit cancel() request
  kInjected = 5,     ///< chaos-injected exhaustion (FaultSite::kBudgetExhaustion)
};

/// Short kind name: "none", "deadline", "testbenches", "checks",
/// "cancelled", "injected".
const char* budget_kind_name(BudgetKind kind);

/// Configured limits. Every dimension defaults to unlimited.
struct BudgetOptions {
  /// Wall-clock deadline in seconds; <= 0 means no deadline.
  double deadline_s = 0.0;
  /// Maximum testbench evaluations; < 0 means unlimited.
  long max_testbenches = -1;
  /// Maximum Budget::check() probes; < 0 means unlimited. Deterministic
  /// "fuel" dimension: same inputs consume the same number of checks, so
  /// tests can land exhaustion at an exact flow position.
  long max_checks = -1;

  bool limited() const {
    return deadline_s > 0.0 || max_testbenches >= 0 || max_checks >= 0;
  }
};

/// Applies OLP_DEADLINE_MS / OLP_TESTBENCH_BUDGET environment overrides on
/// top of `base`. Unset or non-numeric variables leave `base` untouched.
BudgetOptions budget_options_from_env(BudgetOptions base = {});

/// Point-in-time consumption snapshot, reported on FlowReport::budget.
struct BudgetStatus {
  bool limited = false;
  bool exhausted = false;
  BudgetKind tripped = BudgetKind::kNone;
  double elapsed_s = 0.0;
  double deadline_s = 0.0;        ///< 0 when no deadline configured
  long testbenches_consumed = 0;
  long testbench_limit = -1;      ///< -1 when unlimited
  long checks = 0;
  long check_limit = -1;          ///< -1 when unlimited

  std::string to_string() const;
};

/// The budget handle threaded through the flow. Fully thread-safe: check()
/// and consume_testbench() may race freely across TaskPool workers (all
/// consumption counters are atomic; the first trip wins and is sticky), and
/// cancel() may be called from any non-worker thread — every subsequent
/// check() on any worker sees the trip, so a cancelled pool drains promptly.
class Budget {
 public:
  /// Unlimited budget: check() never trips (unless chaos injects).
  Budget() : Budget(BudgetOptions{}) {}
  explicit Budget(const BudgetOptions& options) : opt_(options) {}

  /// True when any dimension has a configured limit.
  bool limited() const { return opt_.limited(); }

  /// The cheap per-loop probe. Returns true when the budget is exhausted and
  /// the caller should unwind with its best-so-far result. Sticky: stays
  /// true forever after the first trip.
  bool check();

  /// True once any dimension tripped. Does not consume a check.
  bool exhausted() const {
    return exhausted_.load(std::memory_order_relaxed);
  }

  /// The dimension that tripped first (kNone while not exhausted).
  BudgetKind tripped() const {
    return tripped_.load(std::memory_order_relaxed);
  }

  /// Cooperative cancellation; takes effect at the next check(). Safe to
  /// call from another thread.
  void cancel() { cancel_requested_.store(true, std::memory_order_relaxed); }

  /// Records testbench evaluations against the testbench budget. The limit
  /// itself is enforced at the next check(), so an in-flight testbench
  /// always completes (exhaustion overshoots by at most one evaluation).
  void consume_testbench(long n = 1) {
    testbenches_.fetch_add(n, std::memory_order_relaxed);
  }

  double elapsed_s() const { return stopwatch_.seconds(); }
  /// Seconds until the deadline (clamped at 0); +infinity when no deadline.
  double remaining_s() const;
  long testbenches_consumed() const {
    return testbenches_.load(std::memory_order_relaxed);
  }
  /// Testbenches until the budget (clamped at 0); -1 when unlimited.
  long remaining_testbenches() const;
  long checks() const { return checks_.load(std::memory_order_relaxed); }
  const BudgetOptions& options() const { return opt_; }

  BudgetStatus status() const;

  /// Human-readable description of the tripped budget, for diagnostics:
  /// e.g. "deadline budget exhausted (0.050 s limit, 0.052 s elapsed)".
  std::string description() const;

 private:
  void trip(BudgetKind kind);

  BudgetOptions opt_;
  MonotonicStopwatch stopwatch_;
  std::atomic<long> testbenches_{0};
  std::atomic<long> checks_{0};
  std::atomic<bool> cancel_requested_{false};
  std::atomic<bool> exhausted_{false};
  std::atomic<BudgetKind> tripped_{BudgetKind::kNone};
};

/// Emits per-stage budget observability at flow stage boundaries:
///   - counter `checks_counter` += check() probes since the last boundary
///     (e.g. "budget.checks.placement"), the deterministic per-stage cost
///     used by tests to target exhaustion at an exact stage;
///   - distribution "budget.remaining_s" (when a deadline is configured);
///   - distribution "budget.remaining_testbenches" (when a testbench budget
///     is configured).
/// All emissions go through util/obs and are no-ops when the registry is
/// disabled.
class BudgetObserver {
 public:
  explicit BudgetObserver(const Budget& budget) : budget_(budget) {}

  void stage_boundary(const char* checks_counter);

 private:
  const Budget& budget_;
  long last_checks_ = 0;
};

}  // namespace olp

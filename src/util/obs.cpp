#include "util/obs.hpp"

#include <algorithm>
#include <cmath>

#include "util/budget.hpp"

namespace olp::obs {

namespace {

std::int64_t steady_now_us() {
  // Span timestamps share the flow's one monotonic source (util/budget).
  return std::chrono::duration_cast<std::chrono::microseconds>(
             BudgetClock::now().time_since_epoch())
      .count();
}

/// Nearest-rank percentile of an ascending-sorted sample vector:
/// the smallest element with at least ceil(q * n) samples at or below it.
double percentile(const std::vector<double>& sorted, double q) {
  const std::size_t n = sorted.size();
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(n)));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  return sorted[std::min(idx, n - 1)];
}

/// Lower edge of the histogram's geometric bucket ladder (bucket 0 holds
/// everything at or below it).
constexpr double kHistMin = 1e-3;

/// Closed spans a shard may buffer before a span exit forces a central
/// merge (and the lower bound applied when the open stack empties, so
/// one-span worker tasks do not pay a central lock per task).
constexpr std::size_t kFlushClosedBatch = 128;
constexpr std::size_t kFlushIdleMin = 32;

}  // namespace

// ---------------------------------------------------------------------------
// LatencyHistogram

double LatencyHistogram::bucket_upper(int i) { return std::ldexp(kHistMin, i); }

int LatencyHistogram::bucket_index(double value) {
  // NaN, negatives, zero and anything at or below the ladder floor land in
  // bucket 0 (the comparison is written so NaN fails it).
  if (!(value > kHistMin)) return 0;
  const double ratio = value / kHistMin;
  const int e = std::ilogb(ratio);  // floor(log2(ratio)); ratio > 1 => e >= 0
  if (e >= kBuckets - 2) {
    return (e == kBuckets - 2 && std::ldexp(1.0, e) >= ratio) ? e
                                                              : kBuckets - 1;
  }
  // Bucket i covers (2^(i-1), 2^i] in ratio space; an exact power of two
  // sits on its bucket's upper edge.
  return std::ldexp(1.0, e) >= ratio ? e : e + 1;
}

void LatencyHistogram::record(double value) {
  ++buckets_[static_cast<std::size_t>(bucket_index(value))];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[static_cast<std::size_t>(i)] +=
        other.buckets_[static_cast<std::size_t>(i)];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

HistogramStats LatencyHistogram::stats() const {
  HistogramStats st;
  st.count = count_;
  if (count_ == 0) return st;
  st.sum = sum_;
  st.min = min_;
  st.max = max_;
  const auto quantile = [this](double q) {
    // Nearest rank over bucket counts, linearly interpolated inside the
    // selected bucket and clamped to the exact observed range.
    long rank = static_cast<long>(std::ceil(q * static_cast<double>(count_)));
    if (rank < 1) rank = 1;
    long below = 0;
    for (int b = 0; b < kBuckets; ++b) {
      const long in_bucket = buckets_[static_cast<std::size_t>(b)];
      if (in_bucket == 0) continue;
      if (below + in_bucket >= rank) {
        const double lo = b == 0 ? 0.0 : bucket_upper(b - 1);
        const double hi = b == kBuckets - 1 ? max_ : bucket_upper(b);
        const double frac = static_cast<double>(rank - below) /
                            static_cast<double>(in_bucket);
        return std::min(std::max(lo + frac * (hi - lo), min_), max_);
      }
      below += in_bucket;
    }
    return max_;
  };
  st.p50 = quantile(0.50);
  st.p95 = quantile(0.95);
  st.p99 = quantile(0.99);
  st.p999 = quantile(0.999);
  for (int b = 0; b < kBuckets; ++b) {
    const long in_bucket = buckets_[static_cast<std::size_t>(b)];
    if (in_bucket != 0) st.buckets.emplace_back(b, in_bucket);
  }
  return st;
}

// ---------------------------------------------------------------------------
// Registry

/// One thread's private collection buffer. The owner takes `mu` on every
/// write — uncontended in steady state, since the only other parties are
/// enable()/snapshot()/flush walking the shard list. All central<->shard
/// interplay locks Registry::mu_ *before* Shard::mu, never the reverse.
struct Registry::Shard {
  Registry* owner = nullptr;
  mutable std::mutex mu;
  std::uint64_t epoch = 0;  ///< registry epoch this shard's data belongs to
  int tid = 0;              ///< stable per-thread id (1-based, registration order)
  std::vector<SpanRecord> spans;    ///< open + not-yet-flushed closed spans
  std::vector<std::size_t> stack;   ///< indices into `spans`; the open stack
  std::size_t closed = 0;           ///< closed spans buffered in `spans`
  std::unordered_map<const char*, long> counters;
  std::unordered_map<const char*, std::vector<double>> samples;
  std::unordered_map<const char*, LatencyHistogram> hists;
  ThreadContext ambient;  ///< epoch-guarded separately; survives resets

  ~Shard() {
    if (owner != nullptr) owner->unregister_shard(this);
  }
};

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Registry::Shard& Registry::shard() {
  static thread_local Shard s;
  if (s.owner == nullptr) global().register_shard(&s);
  return s;
}

void Registry::register_shard(Shard* s) {
  std::lock_guard<std::mutex> lock(mu_);
  s->owner = this;
  s->tid = next_tid_.fetch_add(1, std::memory_order_relaxed) + 1;
  shards_.push_back(s);
}

void Registry::unregister_shard(Shard* s) {
  // Thread exit: fold whatever the dying thread buffered into the central
  // state (its records must survive the shard), then drop it from the merge
  // order. Its tid — and any name registered for it — stays valid in
  // already-collected span records.
  std::lock_guard<std::mutex> reg(mu_);
  std::lock_guard<std::mutex> lock(s->mu);
  if (s->epoch == epoch_.load(std::memory_order_relaxed)) {
    merge_shard_locked(*s);
    // Spans still open at thread exit can never be closed; flush them as-is
    // so the snapshot keeps showing them (open=true), matching the
    // behaviour they had while the thread lived.
    for (SpanRecord& rec : s->spans) spans_.push_back(std::move(rec));
  }
  shards_.erase(std::remove(shards_.begin(), shards_.end(), s),
                shards_.end());
  s->owner = nullptr;
}

void Registry::reset_shard_locked(Shard& s, std::uint64_t epoch) {
  s.spans.clear();
  s.stack.clear();
  s.closed = 0;
  s.counters.clear();
  s.samples.clear();
  s.hists.clear();
  s.epoch = epoch;
  // s.ambient is deliberately kept: ThreadContext carries its own epoch tag
  // and is ignored when stale.
}

void Registry::ensure_current_locked(Shard& s) const {
  const std::uint64_t e = epoch_.load(std::memory_order_relaxed);
  if (s.epoch != e) reset_shard_locked(s, e);
}

void Registry::enable() {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t e =
      epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  t0_us_.store(steady_now_us(), std::memory_order_relaxed);
  next_span_id_.store(0, std::memory_order_relaxed);
  spans_.clear();
  counters_.clear();
  samples_.clear();
  hists_.clear();
  // Eagerly reset live shards so a snapshot taken right after enable() is
  // empty even if some thread never touches the registry again; threads
  // that do write re-validate lazily via the epoch stamp anyway.
  for (Shard* s : shards_) {
    std::lock_guard<std::mutex> shard_lock(s->mu);
    reset_shard_locked(*s, e);
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Registry::rebase() {
  if (!enabled()) return;
  enable();
}

std::int64_t Registry::open_span(const char* name, std::string detail) {
  if (!enabled()) return -1;
  Shard& s = shard();
  std::lock_guard<std::mutex> lock(s.mu);
  ensure_current_locked(s);
  SpanRecord rec;
  rec.id = next_span_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  rec.tid = s.tid;
  if (!s.stack.empty()) {
    const SpanRecord& parent = s.spans[s.stack.back()];
    rec.parent = parent.id;
    rec.depth = parent.depth + 1;
  } else if (s.ambient.epoch == s.epoch) {
    // Worker-thread root: parent under the submitting thread's span.
    rec.parent = s.ambient.parent_id;
    rec.depth = s.ambient.depth;
  }
  rec.name = name;
  rec.detail = std::move(detail);
  rec.start_us = steady_now_us() - t0_us_.load(std::memory_order_relaxed);
  rec.open = true;
  const std::int64_t token = static_cast<std::int64_t>(rec.id);
  s.stack.push_back(s.spans.size());
  s.spans.push_back(std::move(rec));
  return token;
}

void Registry::close_span(std::int64_t token, std::uint64_t epoch) {
  // The epoch guard orphans spans that straddle an enable()/rebase(): the
  // shard buffer they lived in has been reset, so closing must be a no-op.
  if (token < 0) return;
  if (epoch != epoch_.load(std::memory_order_relaxed)) return;
  Shard& s = shard();
  bool flush = false;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.epoch != epoch) return;
    // RAII spans close LIFO, so the match is at (or near) the top of the
    // open stack; fall back to a backward scan of the buffer for spans
    // closed out of order.
    const std::uint64_t id = static_cast<std::uint64_t>(token);
    SpanRecord* rec = nullptr;
    for (auto it = s.stack.rbegin(); it != s.stack.rend(); ++it) {
      if (s.spans[*it].id == id) {
        rec = &s.spans[*it];
        break;
      }
    }
    if (rec == nullptr) {
      for (auto it = s.spans.rbegin(); it != s.spans.rend(); ++it) {
        if (it->id == id) {
          rec = &*it;
          break;
        }
      }
    }
    if (rec == nullptr || !rec->open) return;
    rec->dur_us = steady_now_us() -
                  t0_us_.load(std::memory_order_relaxed) - rec->start_us;
    rec->open = false;
    ++s.closed;
    while (!s.stack.empty() && !s.spans[s.stack.back()].open) {
      s.stack.pop_back();
    }
    flush = s.closed >= kFlushClosedBatch ||
            (s.stack.empty() && s.closed >= kFlushIdleMin);
  }
  if (flush) flush_shard(s);
}

void Registry::add(const char* name, long delta) {
  if (!enabled()) return;
  Shard& s = shard();
  std::lock_guard<std::mutex> lock(s.mu);
  ensure_current_locked(s);
  s.counters[name] += delta;
}

void Registry::record(const char* name, double value) {
  if (!enabled()) return;
  Shard& s = shard();
  std::lock_guard<std::mutex> lock(s.mu);
  ensure_current_locked(s);
  s.samples[name].push_back(value);
}

void Registry::record_hist(const char* name, double value) {
  if (!enabled()) return;
  Shard& s = shard();
  std::lock_guard<std::mutex> lock(s.mu);
  ensure_current_locked(s);
  s.hists[name].record(value);
}

void Registry::merge_shard_locked(Shard& s) {
  for (const auto& [name, value] : s.counters) counters_[name] += value;
  s.counters.clear();
  for (auto& [name, values] : s.samples) {
    auto& central = samples_[name];
    central.insert(central.end(), values.begin(), values.end());
  }
  s.samples.clear();
  for (const auto& [name, hist] : s.hists) hists_[name].merge(hist);
  s.hists.clear();
  if (s.closed == 0) return;
  // Move closed spans out; keep open spans (and any closed span still
  // referenced by the stack — possible after an out-of-order close) local,
  // remapping the stack's indices into the compacted buffer.
  std::vector<char> in_stack(s.spans.size(), 0);
  for (const std::size_t idx : s.stack) in_stack[idx] = 1;
  std::vector<SpanRecord> kept;
  std::vector<std::size_t> remap(s.spans.size(), 0);
  std::size_t kept_closed = 0;
  for (std::size_t i = 0; i < s.spans.size(); ++i) {
    if (s.spans[i].open || in_stack[i] != 0) {
      if (!s.spans[i].open) ++kept_closed;
      remap[i] = kept.size();
      kept.push_back(std::move(s.spans[i]));
    } else {
      spans_.push_back(std::move(s.spans[i]));
    }
  }
  for (std::size_t& idx : s.stack) idx = remap[idx];
  s.spans = std::move(kept);
  s.closed = kept_closed;
}

void Registry::flush_shard(Shard& s) {
  std::lock_guard<std::mutex> reg(mu_);
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.epoch != epoch_.load(std::memory_order_relaxed)) return;
  merge_shard_locked(s);
}

long Registry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> reg(mu_);
  long total = 0;
  const auto it = counters_.find(name);
  if (it != counters_.end()) total = it->second;
  const std::uint64_t e = epoch_.load(std::memory_order_relaxed);
  for (Shard* s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    if (s->epoch != e) continue;
    for (const auto& [key, value] : s->counters) {
      if (name == key) total += value;
    }
  }
  return total;
}

std::string Registry::span_path() const {
  Shard& s = shard();
  std::lock_guard<std::mutex> lock(s.mu);
  const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  std::string path;
  if (s.ambient.epoch == epoch) path = s.ambient.path;
  if (s.epoch != epoch) return path;
  for (const std::size_t idx : s.stack) {
    if (!s.spans[idx].open) continue;
    if (!path.empty()) path += '/';
    path += s.spans[idx].name;
  }
  return path;
}

ThreadContext Registry::capture_thread_context() const {
  ThreadContext ctx;
  if (!enabled()) return ctx;
  Shard& s = shard();
  std::lock_guard<std::mutex> lock(s.mu);
  const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  if (s.epoch == epoch && !s.stack.empty()) {
    const SpanRecord& top = s.spans[s.stack.back()];
    ctx.epoch = epoch;
    ctx.parent_id = top.id;
    ctx.depth = top.depth + 1;
  } else if (s.ambient.epoch == epoch) {
    // No local spans open (nested pools): forward the inherited context.
    return s.ambient;
  } else {
    return ctx;
  }
  // Rebuild the path inline (span_path() would re-lock the shard).
  std::string path;
  if (s.ambient.epoch == epoch) path = s.ambient.path;
  for (const std::size_t idx : s.stack) {
    if (!s.spans[idx].open) continue;
    if (!path.empty()) path += '/';
    path += s.spans[idx].name;
  }
  ctx.path = std::move(path);
  return ctx;
}

void Registry::set_thread_context(const ThreadContext& context) {
  Shard& s = shard();
  std::lock_guard<std::mutex> lock(s.mu);
  s.ambient = context;
}

void Registry::clear_thread_context() {
  Shard& s = shard();
  std::lock_guard<std::mutex> lock(s.mu);
  s.ambient = ThreadContext{};
}

ThreadContext Registry::ambient_thread_context() const {
  Shard& s = shard();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.ambient;
}

void Registry::set_thread_name(std::string name) {
  const int tid = shard().tid;  // registered (and tid fixed) on first use
  std::lock_guard<std::mutex> lock(mu_);
  thread_names_[tid] = std::move(name);
}

ThreadContext ThreadContextScope::capture_ambient() {
  // The raw ambient slot (not the stack top): restoring it on destruction
  // must round-trip exactly, including "no context".
  return Registry::global().ambient_thread_context();
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> reg(mu_);
  Snapshot snap;
  snap.spans = spans_;
  std::map<std::string, long> counters = counters_;
  std::map<std::string, std::vector<double>> samples = samples_;
  std::map<std::string, LatencyHistogram> hists = hists_;
  const std::int64_t now_us =
      steady_now_us() - t0_us_.load(std::memory_order_relaxed);
  const std::uint64_t e = epoch_.load(std::memory_order_relaxed);
  // Shards are read in registration order — and every family merge is
  // order-independent anyway (counters/histograms add, distributions are
  // computed over sorted samples, spans sort by id below), so the snapshot
  // does not depend on merge timing.
  for (Shard* s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    if (s->epoch != e) continue;
    for (const auto& [name, value] : s->counters) counters[name] += value;
    for (const auto& [name, values] : s->samples) {
      auto& central = samples[name];
      central.insert(central.end(), values.begin(), values.end());
    }
    for (const auto& [name, hist] : s->hists) hists[name].merge(hist);
    for (const SpanRecord& rec : s->spans) snap.spans.push_back(rec);
  }
  std::sort(snap.spans.begin(), snap.spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.id < b.id;
            });
  for (SpanRecord& rec : snap.spans) {
    if (rec.open) rec.dur_us = now_us - rec.start_us;
  }
  snap.counters = std::move(counters);
  for (const auto& [name, raw] : samples) {
    if (raw.empty()) continue;
    std::vector<double> sorted = raw;
    std::sort(sorted.begin(), sorted.end());
    DistributionStats d;
    d.count = static_cast<long>(sorted.size());
    d.min = sorted.front();
    d.max = sorted.back();
    double sum = 0.0;
    for (const double v : sorted) sum += v;
    d.mean = sum / static_cast<double>(sorted.size());
    d.p50 = percentile(sorted, 0.50);
    d.p95 = percentile(sorted, 0.95);
    snap.distributions[name] = d;
  }
  for (const auto& [name, hist] : hists) {
    if (hist.count() == 0) continue;
    snap.histograms[name] = hist.stats();
  }
  snap.thread_names = thread_names_;
  return snap;
}

}  // namespace olp::obs

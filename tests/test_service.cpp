// Resident layout service tests: request parsing, admission control and
// fair-share scheduling, per-request budgets, graceful drain vs. cancelling
// shutdown, snapshot warm restart (including corrupt-snapshot cold start),
// and the JSONL serve loop. Jobs use the ring-VCO circuit in conventional
// mode (milliseconds) except where optimize mode is needed to exercise the
// evaluation cache.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "service/journal.hpp"
#include "service/queue.hpp"
#include "service/request.hpp"
#include "service/service.hpp"
#include "util/logging.hpp"
#include "util/trace_export.hpp"

namespace olp::service {
namespace {

const tech::Technology& t() {
  static const tech::Technology tech = tech::make_default_finfet_tech();
  return tech;
}

ServiceRequest vco_request(const std::string& id, const std::string& client) {
  ServiceRequest r;
  r.id = id;
  r.client = client;
  r.circuit = "vco";
  r.mode = circuits::FlowMode::kConventional;
  return r;
}

/// Small options: one worker, serial inner stages, no snapshot.
ServiceOptions small_options() {
  ServiceOptions o;
  o.workers = 1;
  o.pool_threads = 1;
  return o;
}

// --- request parsing --------------------------------------------------------

TEST(ParseRequest, FullSubmitLine) {
  ServiceRequest r;
  std::string error;
  ASSERT_EQ(parse_request(R"({"op":"submit","id":"j1","client":"alice",)"
                          R"("circuit":"ota5t","mode":"optimize","seed":9,)"
                          R"("priority":2,"deadline_ms":250,)"
                          R"("max_testbenches":100,"retries":3})",
                          &r, &error),
            RejectReason::kNone)
      << error;
  EXPECT_EQ(r.op, RequestOp::kSubmit);
  EXPECT_EQ(r.id, "j1");
  EXPECT_EQ(r.client, "alice");
  EXPECT_EQ(r.circuit, "ota5t");
  EXPECT_EQ(r.mode, circuits::FlowMode::kOptimize);
  EXPECT_EQ(r.seed, 9u);
  EXPECT_EQ(r.priority, 2);
  EXPECT_EQ(r.deadline_ms, 250.0);
  EXPECT_EQ(r.max_testbenches, 100);
  EXPECT_EQ(r.retries, 3);
}

TEST(ParseRequest, DefaultsApply) {
  ServiceRequest r;
  ASSERT_EQ(parse_request(R"({"op":"submit","circuit":"vco"})", &r, nullptr),
            RejectReason::kNone);
  EXPECT_EQ(r.client, "anon");
  EXPECT_EQ(r.mode, circuits::FlowMode::kOptimize);
  EXPECT_EQ(r.seed, 1u);
  EXPECT_EQ(r.deadline_ms, 0.0);
  EXPECT_EQ(r.retries, -1);
}

TEST(ParseRequest, RejectsBadInput) {
  ServiceRequest r;
  std::string error;
  EXPECT_EQ(parse_request("not json", &r, &error),
            RejectReason::kParseError);
  EXPECT_EQ(parse_request(R"({"op":42})", &r, &error),
            RejectReason::kParseError);
  EXPECT_EQ(parse_request(R"({"op":"conquer"})", &r, &error),
            RejectReason::kUnknownOp);
  EXPECT_EQ(parse_request(R"({"op":"submit","mode":"psychic"})", &r, &error),
            RejectReason::kUnknownMode);
  EXPECT_EQ(parse_request(R"({"op":"submit","seed":1.5})", &r, &error),
            RejectReason::kParseError);
  EXPECT_EQ(parse_request(R"({"op":"submit","deadline_ms":-5})", &r, &error),
            RejectReason::kParseError);
  EXPECT_FALSE(error.empty());
}

TEST(ParseRequest, EscapedStringsSurvive) {
  ServiceRequest r;
  ASSERT_EQ(parse_request(
                "{\"op\":\"submit\",\"id\":\"a\\\"b\\\\c\\nd\","
                "\"client\":\"caf\\u00e9\",\"circuit\":\"vco\"}",
                &r, nullptr),
            RejectReason::kNone);
  EXPECT_EQ(r.id, "a\"b\\c\nd");
  EXPECT_EQ(r.client, "caf\xc3\xa9");
}

// --- admission queue --------------------------------------------------------

QueuedJob make_job(const std::string& client, std::uint64_t ticket,
                   int priority = 0) {
  QueuedJob j;
  j.request.client = client;
  j.request.priority = priority;
  j.ticket = ticket;
  return j;
}

TEST(AdmissionQueue, BoundsShedWithReasons) {
  QueueOptions opt;
  opt.max_depth = 3;
  opt.max_per_client = 2;
  AdmissionQueue q(opt);
  EXPECT_EQ(q.offer(make_job("a", 1)), RejectReason::kNone);
  EXPECT_EQ(q.offer(make_job("a", 2)), RejectReason::kNone);
  EXPECT_EQ(q.offer(make_job("a", 3)), RejectReason::kClientQuota);
  EXPECT_EQ(q.offer(make_job("b", 4)), RejectReason::kNone);
  EXPECT_EQ(q.offer(make_job("c", 5)), RejectReason::kQueueFull);
  EXPECT_EQ(q.depth(), 3u);
  EXPECT_EQ(q.admitted(), 3);
  EXPECT_EQ(q.shed(RejectReason::kClientQuota), 1);
  EXPECT_EQ(q.shed(RejectReason::kQueueFull), 1);
  q.close();
  EXPECT_EQ(q.offer(make_job("a", 6)), RejectReason::kDraining);
  EXPECT_EQ(q.shed(RejectReason::kDraining), 1);
  EXPECT_EQ(q.shed_total(), 3);
}

TEST(AdmissionQueue, RoundRobinAcrossClients) {
  AdmissionQueue q;
  // Client a floods; client b submits one. b must be served within two
  // takes, not after a's whole backlog.
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_EQ(q.offer(make_job("a", i)), RejectReason::kNone);
  }
  ASSERT_EQ(q.offer(make_job("b", 10)), RejectReason::kNone);
  std::vector<std::string> order;
  QueuedJob job;
  while (q.depth() > 0) {
    ASSERT_TRUE(q.take(&job));
    order.push_back(job.request.client);
  }
  const std::vector<std::string> expected = {"a", "b", "a", "a", "a"};
  EXPECT_EQ(order, expected);
}

TEST(AdmissionQueue, PriorityOrdersWithinOneClient) {
  AdmissionQueue q;
  ASSERT_EQ(q.offer(make_job("a", 1, 0)), RejectReason::kNone);
  ASSERT_EQ(q.offer(make_job("a", 2, 5)), RejectReason::kNone);
  ASSERT_EQ(q.offer(make_job("a", 3, 5)), RejectReason::kNone);
  QueuedJob job;
  ASSERT_TRUE(q.take(&job));
  EXPECT_EQ(job.ticket, 2u);  // highest priority, earliest ticket
  ASSERT_TRUE(q.take(&job));
  EXPECT_EQ(job.ticket, 3u);
  ASSERT_TRUE(q.take(&job));
  EXPECT_EQ(job.ticket, 1u);
}

TEST(AdmissionQueue, CloseDrainsThenUnblocks) {
  AdmissionQueue q;
  ASSERT_EQ(q.offer(make_job("a", 1)), RejectReason::kNone);
  q.close();
  QueuedJob job;
  EXPECT_TRUE(q.take(&job));   // queued item still served after close
  EXPECT_FALSE(q.take(&job));  // then takers unblock with false
}

// --- service lifecycle ------------------------------------------------------

TEST(Service, RunsSubmittedJobToCompletion) {
  set_log_level(LogLevel::kOff);
  LayoutService svc(t(), small_options());
  svc.start();
  std::promise<RequestOutcome> done;
  auto future = done.get_future();
  ASSERT_EQ(svc.submit(vco_request("job1", "alice"),
                       [&done](const RequestOutcome& o) {
                         done.set_value(o);
                       }),
            RejectReason::kNone);
  const RequestOutcome outcome = future.get();
  EXPECT_EQ(outcome.status, circuits::JobStatus::kSucceeded);
  EXPECT_EQ(outcome.id, "job1");
  EXPECT_EQ(outcome.attempts, 1);
  svc.drain();
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(stats.succeeded, 1);
  EXPECT_TRUE(stats.draining);
}

TEST(Service, UnknownCircuitShedsAtSubmission) {
  LayoutService svc(t(), small_options());
  svc.start();
  ServiceRequest r = vco_request("x", "alice");
  r.circuit = "flux_capacitor";
  EXPECT_EQ(svc.submit(r, nullptr), RejectReason::kUnknownCircuit);
  svc.drain();
  EXPECT_EQ(svc.stats().completed, 0);
}

TEST(Service, DeadlineBudgetDegradesInsteadOfHanging) {
  LayoutService svc(t(), small_options());
  svc.start();
  ServiceRequest r = vco_request("tight", "alice");
  r.mode = circuits::FlowMode::kOptimize;  // long enough to trip 1 ms
  r.deadline_ms = 1.0;
  std::promise<RequestOutcome> done;
  auto future = done.get_future();
  ASSERT_EQ(svc.submit(r, [&done](const RequestOutcome& o) {
              done.set_value(o);
            }),
            RejectReason::kNone);
  const RequestOutcome outcome = future.get();
  EXPECT_TRUE(outcome.budget_exhausted);
  EXPECT_NE(outcome.status, circuits::JobStatus::kFailed);  // salvaged
  svc.drain();
}

TEST(Service, DrainingShedsNewSubmissions) {
  LayoutService svc(t(), small_options());
  svc.start();
  svc.drain();
  EXPECT_EQ(svc.submit(vco_request("late", "alice"), nullptr),
            RejectReason::kDraining);
}

TEST(Service, ShutdownCancelsQueuedJobsWithOutcomes) {
  ServiceOptions options = small_options();
  LayoutService svc(t(), options);
  svc.start();
  // One slow job occupies the single worker; the rest queue behind it.
  std::atomic<int> done_count{0};
  std::atomic<int> cancelled_count{0};
  std::vector<std::promise<RequestOutcome>> outcomes(4);
  for (int i = 0; i < 4; ++i) {
    ServiceRequest r = vco_request("s" + std::to_string(i), "alice");
    if (i == 0) r.mode = circuits::FlowMode::kOptimize;  // slow head job
    ASSERT_EQ(svc.submit(r,
                         [&, i](const RequestOutcome& o) {
                           ++done_count;
                           if (o.error.find("cancelled") != std::string::npos) {
                             ++cancelled_count;
                           }
                           outcomes[static_cast<std::size_t>(i)].set_value(o);
                         }),
              RejectReason::kNone);
  }
  svc.drain(/*cancel_inflight=*/true);
  // Every submission got exactly one outcome: the in-flight head job was
  // budget-cancelled (salvage), the queued tail was dropped as cancelled.
  for (auto& p : outcomes) p.get_future().get();
  EXPECT_EQ(done_count.load(), 4);
  EXPECT_GE(cancelled_count.load(), 1);
  EXPECT_EQ(svc.stats().completed, 4);
}

TEST(Service, EnvOverridesWinAtConstruction) {
  ::setenv("OLP_SERVICE_WORKERS", "3", 1);
  ::setenv("OLP_SERVICE_RETRIES", "7", 1);
  ::setenv("OLP_SERVICE_QUEUE_DEPTH", "11", 1);
  ServiceOptions options;
  options.workers = 1;
  options.max_retries = 0;
  options.queue.max_depth = 5;
  LayoutService svc(t(), options);
  ::unsetenv("OLP_SERVICE_WORKERS");
  ::unsetenv("OLP_SERVICE_RETRIES");
  ::unsetenv("OLP_SERVICE_QUEUE_DEPTH");
  EXPECT_EQ(svc.options().workers, 3);
  EXPECT_EQ(svc.options().max_retries, 7);
  EXPECT_EQ(svc.options().queue.max_depth, 11u);
  // Env restored AFTER construction: the captured values stick.
  LayoutService later(t(), options);
  EXPECT_EQ(later.options().workers, 1);
}

// --- snapshot warm restart --------------------------------------------------

std::string temp_snapshot_path(const char* name) {
  return testing::TempDir() + name;
}

TEST(ServiceSnapshot, WarmRestartServesRestoredEntries) {
  const std::string path = temp_snapshot_path("olp_service_warm.bin");
  std::remove(path.c_str());

  ServiceRequest optimize = vco_request("opt", "alice");
  optimize.mode = circuits::FlowMode::kOptimize;

  {
    ServiceOptions options = small_options();
    options.snapshot_path = path;
    LayoutService svc(t(), options);
    svc.start();
    std::promise<RequestOutcome> done;
    auto future = done.get_future();
    ASSERT_EQ(svc.submit(optimize, [&done](const RequestOutcome& o) {
                done.set_value(o);
              }),
              RejectReason::kNone);
    EXPECT_EQ(future.get().status, circuits::JobStatus::kSucceeded);
    svc.drain();  // flushes the final snapshot
    EXPECT_FALSE(svc.stats().snapshot_loaded);
    EXPECT_GT(svc.stats().cache.entries, 0);
  }

  // "Restart": a fresh service on the same path must warm-load and serve
  // the repeat request mostly from restored entries.
  {
    ServiceOptions options = small_options();
    options.snapshot_path = path;
    LayoutService svc(t(), options);
    svc.start();
    EXPECT_TRUE(svc.stats().snapshot_loaded);
    EXPECT_GT(svc.stats().cache.entries, 0);
    std::promise<RequestOutcome> done;
    auto future = done.get_future();
    ASSERT_EQ(svc.submit(optimize, [&done](const RequestOutcome& o) {
                done.set_value(o);
              }),
              RejectReason::kNone);
    EXPECT_EQ(future.get().status, circuits::JobStatus::kSucceeded);
    svc.drain();
    const ServiceStats stats = svc.stats();
    EXPECT_GT(stats.cache.restored_hits, 0);  // the warm-start proof
    EXPECT_EQ(stats.cache.misses, 0);  // same request, fully warm
  }
  std::remove(path.c_str());
}

TEST(ServiceSnapshot, CorruptSnapshotFallsBackToColdStart) {
  const std::string path = temp_snapshot_path("olp_service_corrupt.bin");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "garbage, not a snapshot";
  }
  ServiceOptions options = small_options();
  options.snapshot_path = path;
  LayoutService svc(t(), options);
  svc.start();  // must not throw or abort
  const ServiceStats stats = svc.stats();
  EXPECT_FALSE(stats.snapshot_loaded);
  EXPECT_FALSE(stats.snapshot_error.empty());
  EXPECT_EQ(stats.cache.entries, 0);
  // The service still works cold.
  std::promise<RequestOutcome> done;
  auto future = done.get_future();
  ASSERT_EQ(svc.submit(vco_request("cold", "alice"),
                       [&done](const RequestOutcome& o) {
                         done.set_value(o);
                       }),
            RejectReason::kNone);
  EXPECT_EQ(future.get().status, circuits::JobStatus::kSucceeded);
  svc.drain();
  std::remove(path.c_str());
}

TEST(ServiceSnapshot, TruncatedSnapshotFallsBackToColdStart) {
  const std::string path = temp_snapshot_path("olp_service_trunc.bin");
  std::remove(path.c_str());
  // Produce a valid snapshot first.
  {
    ServiceOptions options = small_options();
    options.snapshot_path = path;
    LayoutService svc(t(), options);
    svc.start();
    std::promise<RequestOutcome> done;
    auto future = done.get_future();
    ServiceRequest r = vco_request("seed", "alice");
    r.mode = circuits::FlowMode::kOptimize;
    ASSERT_EQ(svc.submit(r, [&done](const RequestOutcome& o) {
                done.set_value(o);
              }),
              RejectReason::kNone);
    future.get();
    svc.drain();
  }
  // Truncate it (as a kill -9 mid-write on a non-atomic filesystem might).
  std::string full;
  {
    std::ifstream in(path, std::ios::binary);
    full.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  ASSERT_GT(full.size(), 16u);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(full.data(), static_cast<std::streamsize>(full.size() / 3));
  }
  ServiceOptions options = small_options();
  options.snapshot_path = path;
  LayoutService svc(t(), options);
  svc.start();
  EXPECT_FALSE(svc.stats().snapshot_loaded);
  EXPECT_FALSE(svc.stats().snapshot_error.empty());
  EXPECT_EQ(svc.stats().cache.entries, 0);
  svc.drain();
  std::remove(path.c_str());
}

// --- serve loop -------------------------------------------------------------

TEST(Serve, JsonlLoopHandlesMixedTraffic) {
  std::istringstream in(
      "{\"op\":\"ping\"}\n"
      "this is not json\n"
      "{\"op\":\"submit\",\"client\":\"alice\",\"circuit\":\"vco\","
      "\"mode\":\"conventional\"}\n"
      "{\"op\":\"submit\",\"client\":\"alice\",\"circuit\":\"warp_core\"}\n"
      "{\"op\":\"stats\"}\n"
      "{\"op\":\"drain\"}\n");
  std::ostringstream out;
  LayoutService svc(t(), small_options());
  svc.serve(in, out);
  const std::string log = out.str();
  EXPECT_NE(log.find("\"event\":\"pong\""), std::string::npos);
  EXPECT_NE(log.find("\"reason\":\"parse_error\""), std::string::npos);
  EXPECT_NE(log.find("\"event\":\"accepted\""), std::string::npos);
  EXPECT_NE(log.find("\"event\":\"done\""), std::string::npos);
  EXPECT_NE(log.find("\"status\":\"succeeded\""), std::string::npos);
  EXPECT_NE(log.find("\"reason\":\"unknown_circuit\""), std::string::npos);
  EXPECT_NE(log.find("\"event\":\"stats\""), std::string::npos);
  EXPECT_NE(log.find("\"event\":\"drained\""), std::string::npos);
  // Every response line is itself one complete JSON object per line.
  std::istringstream lines(log);
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    ++count;
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
  }
  EXPECT_GE(count, 7);
  EXPECT_TRUE(svc.draining());
}

TEST(Serve, EofDrainsGracefully) {
  std::istringstream in(
      "{\"op\":\"submit\",\"client\":\"a\",\"circuit\":\"vco\","
      "\"mode\":\"conventional\"}\n");
  std::ostringstream out;
  LayoutService svc(t(), small_options());
  svc.serve(in, out);  // EOF after one submit: job still completes
  EXPECT_NE(out.str().find("\"event\":\"done\""), std::string::npos);
  EXPECT_EQ(svc.stats().completed, 1);
}

TEST(Serve, MetricsOpRoundTripsFullTelemetry) {
  // With observability on, the metrics verb must return one well-formed
  // JSON line carrying the service gauges, the bounded latency histogram,
  // the shed breakdown, and the live obs families (pool queue depth /
  // busy-idle, lock-wait sites appear once contended).
  ServiceOptions options = small_options();
  options.workers = 2;
  options.pool_threads = 2;
  options.observability = true;
  LayoutService svc(t(), options);
  svc.start();
  // Run one optimize-mode job to completion first — optimize is the mode
  // whose inner stages go through the shared TaskPool, so the dump reflects
  // real pool telemetry — then ask for metrics over the wire.
  {
    std::promise<RequestOutcome> done;
    auto fut = done.get_future();
    ServiceRequest request = vco_request("m0", "a");
    request.mode = circuits::FlowMode::kOptimize;
    ASSERT_EQ(svc.submit(request,
                         [&done](const RequestOutcome& o) {
                           done.set_value(o);
                         }),
              RejectReason::kNone);
    fut.wait();
  }
  std::istringstream in("{\"op\":\"metrics\"}\n{\"op\":\"drain\"}\n");
  std::ostringstream out;
  svc.serve(in, out);

  std::string metrics_line;
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("\"event\":\"metrics\"") != std::string::npos) {
      metrics_line = line;
    }
  }
  ASSERT_FALSE(metrics_line.empty()) << out.str();
  std::string err;
  EXPECT_TRUE(obs::json_well_formed(metrics_line, &err)) << err;
  for (const char* key :
       {"\"queue_depth\"", "\"completed\"", "\"latency_ms\"", "\"buckets\"",
        "\"p999\"", "\"shed\"", "\"queue_full\"", "\"client_quota\"",
        "\"counters\"", "\"histograms\"", "\"obs_enabled\":true"}) {
    EXPECT_NE(metrics_line.find(key), std::string::npos) << key;
  }
  // The inner pool ran parallel stages with obs on: its queue-depth
  // histogram must have made it into the dump. (Busy/idle counters are not
  // asserted — on a single-core host the submitting thread may legally run
  // every task itself before a pool worker wakes.)
  EXPECT_NE(metrics_line.find("obs.pool.queue_depth"), std::string::npos);
  obs::Registry::global().disable();
}

TEST(Service, PeriodicMetricsFileIsAppendOnlyJsonl) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "olp_metrics_test.jsonl")
          .string();
  std::remove(path.c_str());
  {
    ServiceOptions options = small_options();
    options.observability = true;
    options.metrics_path = path;
    options.metrics_every = 1;  // one line per completion, plus drain
    LayoutService svc(t(), options);
    svc.start();
    for (int i = 0; i < 3; ++i) {
      std::promise<RequestOutcome> done;
      auto fut = done.get_future();
      ASSERT_EQ(svc.submit(vco_request("m" + std::to_string(i), "a"),
                           [&done](const RequestOutcome& o) {
                             done.set_value(o);
                           }),
                RejectReason::kNone);
      fut.wait();
    }
    svc.drain();
  }
  obs::Registry::global().disable();

  std::ifstream file(path);
  ASSERT_TRUE(file.is_open()) << path;
  std::string line;
  int lines = 0;
  while (std::getline(file, line)) {
    ++lines;
    std::string err;
    EXPECT_TRUE(obs::json_well_formed(line, &err)) << err << "\n" << line;
    EXPECT_NE(line.find("\"completed\""), std::string::npos);
    EXPECT_NE(line.find("\"latency_ms\""), std::string::npos);
  }
  // 3 periodic lines (every completion) + the forced line at drain.
  EXPECT_GE(lines, 3);
  std::remove(path.c_str());
}

// --- malformed-frame corpus -------------------------------------------------
// Every line here must reject with a reason — never crash, never half-parse.

TEST(ParseRequest, MalformedFrameCorpusAllReject) {
  struct Case {
    const char* line;
    RejectReason want;
  };
  const Case corpus[] = {
      // structural damage
      {"", RejectReason::kParseError},
      {"{", RejectReason::kParseError},
      {"}", RejectReason::kParseError},
      {"{\"op\":\"ping\"", RejectReason::kParseError},
      {"{\"op\":\"ping\"}}", RejectReason::kParseError},
      {"[\"op\",\"ping\"]", RejectReason::kParseError},
      {"{\"op\":\"ping\"} trailing", RejectReason::kParseError},
      {"\x01\x02\x03", RejectReason::kParseError},
      // duplicate keys: ambiguous intent, rejected rather than last-wins
      {R"({"op":"submit","circuit":"vco","circuit":"ota5t"})",
       RejectReason::kParseError},
      {R"({"op":"ping","op":"shutdown"})", RejectReason::kParseError},
      // wrong-typed fields
      {R"({"op":"submit","id":42,"circuit":"vco"})", RejectReason::kParseError},
      {R"({"op":"submit","id":null,"circuit":"vco"})",
       RejectReason::kParseError},
      {R"({"op":"submit","client":true,"circuit":"vco"})",
       RejectReason::kParseError},
      {R"({"op":"submit","seed":"abc","circuit":"vco"})",
       RejectReason::kParseError},
      {R"({"op":"submit","key":7,"circuit":"vco"})", RejectReason::kParseError},
      // non-finite / negative numerics
      {R"({"op":"submit","deadline_ms":-1,"circuit":"vco"})",
       RejectReason::kParseError},
      {R"({"op":"submit","deadline_ms":NaN,"circuit":"vco"})",
       RejectReason::kParseError},
      {R"({"op":"submit","deadline_ms":Infinity,"circuit":"vco"})",
       RejectReason::kParseError},
      {R"({"op":"submit","deadline_ms":1e999,"circuit":"vco"})",
       RejectReason::kParseError},
      // nested payloads (the protocol is flat by design)
      {R"({"op":"submit","circuit":{"name":"vco"}})", RejectReason::kParseError},
      {R"({"op":"submit","circuit":"vco","tags":[1,2]})",
       RejectReason::kParseError},
      // the transport-stamped identity must never be wire-settable
      {R"({"op":"submit","circuit":"vco","identity":"tcp:1.2.3.4"})",
       RejectReason::kParseError},
      // unknown verbs/modes are their own reasons (still rejections)
      {R"({"op":"conquer"})", RejectReason::kUnknownOp},
      {R"({"op":"submit","mode":"psychic","circuit":"vco"})",
       RejectReason::kUnknownMode},
  };
  for (const Case& c : corpus) {
    ServiceRequest r;
    std::string error;
    EXPECT_EQ(parse_request(c.line, &r, &error), c.want) << c.line;
    EXPECT_FALSE(error.empty()) << c.line;
  }
}

TEST(ParseRequest, OversizedLineRejectsWithoutParsing) {
  // A line over kMaxRequestLineBytes sheds as kFrameTooLarge before any
  // JSON work happens — even when the JSON itself would be valid.
  std::string big = R"({"op":"submit","circuit":"vco","id":")";
  big += std::string(kMaxRequestLineBytes, 'x');
  big += "\"}";
  ServiceRequest r;
  std::string error;
  EXPECT_EQ(parse_request(big, &r, &error), RejectReason::kFrameTooLarge);
  EXPECT_FALSE(error.empty());
}

TEST(ParseRequest, IdempotencyKeyRoundTrips) {
  ServiceRequest r;
  ASSERT_EQ(parse_request(
                R"({"op":"submit","circuit":"vco","key":"alice/vco/7"})", &r,
                nullptr),
            RejectReason::kNone);
  EXPECT_EQ(r.key, "alice/vco/7");
}

TEST(Serve, MalformedCorpusNeverKillsTheLoop) {
  // The whole corpus through the real serve loop: every line answered,
  // service alive at the end (the trailing ping proves it).
  std::istringstream in(
      "{\n"
      "{\"op\":\"submit\",\"circuit\":\"vco\",\"circuit\":\"vco\"}\n"
      "{\"op\":\"submit\",\"id\":[],\"circuit\":\"vco\"}\n"
      "{\"op\":\"submit\",\"deadline_ms\":-2,\"circuit\":\"vco\"}\n"
      "{\"op\":\"ping\"}\n");
  std::ostringstream out;
  LayoutService svc(t(), small_options());
  svc.start();
  svc.serve(in, out);
  const std::string text = out.str();
  std::size_t rejected = 0;
  for (std::size_t pos = 0;
       (pos = text.find("\"rejected\"", pos)) != std::string::npos; ++pos) {
    ++rejected;
  }
  EXPECT_EQ(rejected, 4u);
  EXPECT_NE(text.find("\"pong\""), std::string::npos);
  EXPECT_EQ(svc.stats().parse_rejects, 4);
}

// --- durable request journal ------------------------------------------------

std::string temp_journal_path(const char* name) {
  std::string path = testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

ServiceRequest keyed_request(const std::string& id, const std::string& key) {
  ServiceRequest r = vco_request(id, "alice");
  r.key = key;
  return r;
}

TEST(Journal, AcceptedRecordsSurviveReopenAsPending) {
  const std::string path = temp_journal_path("olp_journal_pending.bin");
  {
    RequestJournal journal(path);
    ASSERT_TRUE(journal.open());
    ServiceRequest r = keyed_request("j1", "k1");
    r.seed = 17;
    r.priority = 3;
    r.deadline_ms = 250.0;
    EXPECT_GT(journal.append_accepted(r), 0u);
    EXPECT_GT(journal.append_accepted(vco_request("j2", "bob")), 0u);
    // No close/flush call: the destructor path is the crash-consistency
    // story (appends are flushed as they happen).
  }
  RequestJournal reopened(path);
  ASSERT_TRUE(reopened.open());
  EXPECT_EQ(reopened.stats().records_scanned, 2);
  std::vector<JournalEntry> pending = reopened.take_pending();
  ASSERT_EQ(pending.size(), 2u);
  EXPECT_EQ(pending[0].request.id, "j1");
  EXPECT_EQ(pending[0].request.key, "k1");
  EXPECT_EQ(pending[0].request.seed, 17u);
  EXPECT_EQ(pending[0].request.priority, 3);
  EXPECT_EQ(pending[0].request.deadline_ms, 250.0);
  EXPECT_EQ(pending[1].request.id, "j2");
  EXPECT_EQ(pending[1].request.client, "bob");
  std::remove(path.c_str());
}

TEST(Journal, CompletedRecordsClearPendingAndRememberKeys) {
  const std::string path = temp_journal_path("olp_journal_complete.bin");
  {
    RequestJournal journal(path);
    ASSERT_TRUE(journal.open());
    const std::uint64_t s1 = journal.append_accepted(keyed_request("a", "ka"));
    const std::uint64_t s2 = journal.append_accepted(keyed_request("b", "kb"));
    ASSERT_GT(s1, 0u);
    ASSERT_GT(s2, 0u);
    EXPECT_TRUE(
        journal.append_completed(s1, "ka", circuits::JobStatus::kSucceeded));
    // s2 stays pending — the "crashed mid-run" entry.
  }
  RequestJournal reopened(path);
  ASSERT_TRUE(reopened.open());
  std::vector<JournalEntry> pending = reopened.take_pending();
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].request.id, "b");
  circuits::JobStatus status = circuits::JobStatus::kFailed;
  EXPECT_TRUE(reopened.completed_key("ka", &status));
  EXPECT_EQ(status, circuits::JobStatus::kSucceeded);
  EXPECT_FALSE(reopened.completed_key("kb", nullptr));
  std::remove(path.c_str());
}

TEST(Journal, EmptyKeyCompletionVoidsWithoutBurningAKey) {
  const std::string path = temp_journal_path("olp_journal_void.bin");
  {
    RequestJournal journal(path);
    ASSERT_TRUE(journal.open());
    const std::uint64_t seq =
        journal.append_accepted(keyed_request("shed", "kshed"));
    ASSERT_GT(seq, 0u);
    // Shed after journaling: void the entry, the key must stay usable.
    EXPECT_TRUE(
        journal.append_completed(seq, "", circuits::JobStatus::kFailed));
  }
  RequestJournal reopened(path);
  ASSERT_TRUE(reopened.open());
  EXPECT_TRUE(reopened.take_pending().empty());
  EXPECT_FALSE(reopened.completed_key("kshed", nullptr));
  std::remove(path.c_str());
}

TEST(Journal, TornTailIsTruncatedAndIntactRecordsSurvive) {
  const std::string path = temp_journal_path("olp_journal_torn.bin");
  {
    RequestJournal journal(path);
    ASSERT_TRUE(journal.open());
    ASSERT_GT(journal.append_accepted(keyed_request("ok", "kok")), 0u);
  }
  // Simulate a crash mid-append: a partial record at the tail.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    const std::uint32_t bogus_len = 1000;
    out.write(reinterpret_cast<const char*>(&bogus_len), sizeof bogus_len);
    out << "only twenty bytes...";
  }
  RequestJournal reopened(path);
  ASSERT_TRUE(reopened.open());
  EXPECT_TRUE(reopened.stats().torn_tail_recovered);
  std::vector<JournalEntry> pending = reopened.take_pending();
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].request.id, "ok");
  // The tail was truncated in place: a third open sees a clean file and can
  // keep appending where the intact prefix ended.
  EXPECT_GT(reopened.append_accepted(vco_request("more", "c")), 0u);
  std::remove(path.c_str());
}

TEST(Journal, CorruptChecksumStopsScanAtLastGoodRecord) {
  const std::string path = temp_journal_path("olp_journal_sum.bin");
  {
    RequestJournal journal(path);
    ASSERT_TRUE(journal.open());
    ASSERT_GT(journal.append_accepted(vco_request("good", "a")), 0u);
    ASSERT_GT(journal.append_accepted(vco_request("flipped", "a")), 0u);
  }
  // Flip one byte in the LAST record's payload.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 12u);
  bytes[bytes.size() - 12] ^= 0x40;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  RequestJournal reopened(path);
  ASSERT_TRUE(reopened.open());
  EXPECT_TRUE(reopened.stats().torn_tail_recovered);
  std::vector<JournalEntry> pending = reopened.take_pending();
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].request.id, "good");
  std::remove(path.c_str());
}

TEST(Journal, ForeignFileIsRefusedNotClobbered) {
  const std::string path = temp_journal_path("olp_journal_foreign.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "PKZIP???definitely not a journal";
  }
  RequestJournal journal(path);
  std::string error;
  EXPECT_FALSE(journal.open(&error));
  EXPECT_FALSE(error.empty());
  // The foreign file survives untouched.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes.substr(0, 5), "PKZIP");
  std::remove(path.c_str());
}

TEST(Journal, CompactKeepsPendingAndKeyHistoryOnly) {
  const std::string path = temp_journal_path("olp_journal_compact.bin");
  RequestJournal journal(path);
  ASSERT_TRUE(journal.open());
  for (int i = 0; i < 20; ++i) {
    const std::string key = "k" + std::to_string(i);
    const std::uint64_t seq =
        journal.append_accepted(keyed_request("j" + std::to_string(i), key));
    ASSERT_GT(seq, 0u);
    if (i < 19) {
      ASSERT_TRUE(
          journal.append_completed(seq, key, circuits::JobStatus::kSucceeded));
    }
  }
  const auto size_before = std::filesystem::file_size(path);
  ASSERT_TRUE(journal.compact());
  EXPECT_LT(std::filesystem::file_size(path), size_before);
  EXPECT_EQ(journal.stats().compactions, 1);
  // Reopen: key history and the one pending entry survived the rewrite.
  RequestJournal reopened(path);
  ASSERT_TRUE(reopened.open());
  circuits::JobStatus status;
  EXPECT_TRUE(reopened.completed_key("k0", &status));
  EXPECT_TRUE(reopened.completed_key("k18", &status));
  std::vector<JournalEntry> pending = reopened.take_pending();
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].request.key, "k19");
  std::remove(path.c_str());
}

// --- idempotency keys through the service -----------------------------------

TEST(ServiceIdempotency, DuplicateKeySubmitIsAnsweredNotRerun) {
  ServiceOptions options = small_options();
  LayoutService svc(t(), options);
  svc.start();
  std::promise<RequestOutcome> done;
  auto future = done.get_future();
  ASSERT_EQ(svc.submit(keyed_request("first", "dup-key"),
                       [&done](const RequestOutcome& o) { done.set_value(o); }),
            RejectReason::kNone);
  EXPECT_EQ(future.get().status, circuits::JobStatus::kSucceeded);
  // Same key again (same or different id): kDuplicate, callback never fires.
  EXPECT_EQ(svc.submit(keyed_request("second", "dup-key"),
                       [](const RequestOutcome&) { FAIL() << "must not run"; }),
            RejectReason::kDuplicate);
  circuits::JobStatus status = circuits::JobStatus::kFailed;
  EXPECT_TRUE(svc.duplicate_status("dup-key", &status));
  EXPECT_EQ(status, circuits::JobStatus::kSucceeded);
  EXPECT_EQ(svc.stats().duplicates, 1);
  EXPECT_EQ(svc.stats().completed, 1);
  svc.drain();
}

TEST(ServiceIdempotency, InFlightKeyIsDuplicateWithPendingStatus) {
  ServiceOptions options = small_options();
  options.workers = 1;
  LayoutService svc(t(), options);
  // NOT started yet: the keyed job sits queued, deterministically pending.
  ServiceRequest keyed = keyed_request("queued", "inflight-key");
  std::promise<RequestOutcome> done;
  auto future = done.get_future();
  ASSERT_EQ(svc.submit(keyed,
                       [&done](const RequestOutcome& o) { done.set_value(o); }),
            RejectReason::kNone);
  // Resubmit while queued: accepted-but-not-completed keys are duplicates
  // with no recorded status yet.
  EXPECT_EQ(svc.submit(keyed_request("again", "inflight-key"),
                       [](const RequestOutcome&) { FAIL() << "must not run"; }),
            RejectReason::kDuplicate);
  circuits::JobStatus status;
  EXPECT_FALSE(svc.duplicate_status("inflight-key", &status));
  svc.start();
  future.get();
  EXPECT_TRUE(svc.duplicate_status("inflight-key", &status));
  svc.drain();
}

TEST(ServiceJournal, CrashedEntriesReplayOnStart) {
  const std::string path = temp_journal_path("olp_service_replay.bin");
  // "Crash": journal two accepted requests that never completed. One keyed
  // entry already has a completion on record — replay must dedup it.
  {
    RequestJournal journal(path);
    ASSERT_TRUE(journal.open());
    ASSERT_GT(journal.append_accepted(vco_request("lost1", "alice")), 0u);
    const std::uint64_t done_seq =
        journal.append_accepted(keyed_request("finished", "done-key"));
    ASSERT_GT(done_seq, 0u);
    ASSERT_TRUE(journal.append_completed(done_seq, "done-key",
                                         circuits::JobStatus::kSucceeded));
    ASSERT_GT(journal.append_accepted(keyed_request("lost2", "redo-key")), 0u);
  }
  ServiceOptions options = small_options();
  options.journal_path = path;
  LayoutService svc(t(), options);
  svc.start();
  // Replay re-enqueued the two unfinished entries; the completed key was
  // remembered, not re-run.
  svc.drain();
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.journal_replayed, 2);
  EXPECT_EQ(stats.completed, 2);
  EXPECT_TRUE(stats.journal.enabled);
  circuits::JobStatus status;
  EXPECT_TRUE(svc.duplicate_status("done-key", &status));
  EXPECT_EQ(status, circuits::JobStatus::kSucceeded);
  // redo-key ran to completion during replay and is now deduplicated too.
  EXPECT_TRUE(svc.duplicate_status("redo-key", &status));
  std::remove(path.c_str());
}

TEST(ServiceJournal, KeyedDedupSurvivesRestart) {
  const std::string path = temp_journal_path("olp_service_dedup.bin");
  {
    ServiceOptions options = small_options();
    options.journal_path = path;
    LayoutService svc(t(), options);
    svc.start();
    std::promise<RequestOutcome> done;
    auto future = done.get_future();
    ASSERT_EQ(
        svc.submit(keyed_request("j", "stable-key"),
                   [&done](const RequestOutcome& o) { done.set_value(o); }),
        RejectReason::kNone);
    future.get();
    svc.drain();  // compacts the journal on the way out
    EXPECT_EQ(svc.stats().journal.compactions, 1);
  }
  // Restart: the same key must be refused without running anything.
  ServiceOptions options = small_options();
  options.journal_path = path;
  LayoutService svc(t(), options);
  svc.start();
  EXPECT_EQ(svc.submit(keyed_request("retry", "stable-key"),
                       [](const RequestOutcome&) { FAIL() << "must not run"; }),
            RejectReason::kDuplicate);
  circuits::JobStatus status;
  EXPECT_TRUE(svc.duplicate_status("stable-key", &status));
  EXPECT_EQ(status, circuits::JobStatus::kSucceeded);
  EXPECT_EQ(svc.stats().completed, 0);  // nothing executed this run
  svc.drain();
  std::remove(path.c_str());
}

// --- per-identity rate limiting ---------------------------------------------

TEST(ServiceRateLimit, TokenBucketShedsBurstsPerIdentity) {
  ServiceOptions options = small_options();
  options.rate_per_s = 0.001;  // effectively no refill within the test
  options.rate_burst = 2;
  LayoutService svc(t(), options);
  svc.start();
  ServiceRequest a = vco_request("", "alice");
  a.identity = "tcp:10.0.0.1";
  std::atomic<int> done{0};
  auto count = [&done](const RequestOutcome&) { ++done; };
  EXPECT_EQ(svc.submit(a, count), RejectReason::kNone);
  EXPECT_EQ(svc.submit(a, count), RejectReason::kNone);
  EXPECT_EQ(svc.submit(a, count), RejectReason::kRateLimited);
  // A different identity has its own bucket.
  ServiceRequest b = vco_request("", "alice");
  b.identity = "tcp:10.0.0.2";
  EXPECT_EQ(svc.submit(b, count), RejectReason::kNone);
  // Renaming the client does NOT reset the bucket — identity is the key.
  ServiceRequest renamed = vco_request("", "totally-new-name");
  renamed.identity = "tcp:10.0.0.1";
  EXPECT_EQ(svc.submit(renamed, count), RejectReason::kRateLimited);
  EXPECT_EQ(svc.stats().shed_rate_limited, 2);
  svc.drain();
  EXPECT_EQ(done.load(), 3);
}

// --- adversarial client churn vs. fairness ----------------------------------

TEST(AdmissionQueue, FreshNamesCannotDefeatIdentityQuota) {
  QueueOptions qo;
  qo.max_depth = 0;       // only the per-identity bound in play
  qo.max_per_client = 3;
  AdmissionQueue q(qo);
  // One peer reconnecting under fresh self-reported names every time.
  std::uint64_t ticket = 1;
  for (int i = 0; i < 3; ++i) {
    QueuedJob j;
    j.request = vco_request("j", "name-" + std::to_string(i));
    j.request.identity = "tcp:9.9.9.9";
    j.ticket = ticket++;
    EXPECT_EQ(q.offer(std::move(j)), RejectReason::kNone);
  }
  QueuedJob fourth;
  fourth.request = vco_request("j", "name-99");
  fourth.request.identity = "tcp:9.9.9.9";
  fourth.ticket = ticket++;
  EXPECT_EQ(q.offer(std::move(fourth)), RejectReason::kClientQuota);
  // An honest different peer is unaffected.
  QueuedJob other;
  other.request = vco_request("j", "name-99");
  other.request.identity = "tcp:8.8.8.8";
  other.ticket = ticket++;
  EXPECT_EQ(q.offer(std::move(other)), RejectReason::kNone);
}

TEST(AdmissionQueue, RoundRobinKeysOnIdentityNotClientName) {
  AdmissionQueue q;
  std::uint64_t ticket = 1;
  // Peer A floods under rotating names; peer B submits two.
  for (int i = 0; i < 6; ++i) {
    QueuedJob j;
    j.request = vco_request("a" + std::to_string(i), "alias-" + std::to_string(i));
    j.request.identity = "tcp:1.1.1.1";
    j.ticket = ticket++;
    ASSERT_EQ(q.offer(std::move(j)), RejectReason::kNone);
  }
  for (int i = 0; i < 2; ++i) {
    QueuedJob j;
    j.request = vco_request("b" + std::to_string(i), "bob");
    j.request.identity = "tcp:2.2.2.2";
    j.ticket = ticket++;
    ASSERT_EQ(q.offer(std::move(j)), RejectReason::kNone);
  }
  // Fair share: B's two jobs are served 2nd and 4th, not 7th and 8th.
  std::vector<std::string> order;
  QueuedJob out;
  while (q.depth() > 0 && q.take(&out)) order.push_back(out.request.id);
  ASSERT_EQ(order.size(), 8u);
  EXPECT_EQ(order[1], "b0");
  EXPECT_EQ(order[3], "b1");
}

TEST(AdmissionQueue, RoundRobinSurvivesMidDrainChurn) {
  // Clients appear and vanish while workers drain: the cursor must keep
  // rotating over whoever remains, never skipping a live identity forever
  // and never crashing on a vanished one.
  AdmissionQueue q;
  std::uint64_t ticket = 1;
  auto offer = [&](const std::string& identity, const std::string& id) {
    QueuedJob j;
    j.request = vco_request(id, "c");
    j.request.identity = identity;
    j.ticket = ticket++;
    ASSERT_EQ(q.offer(std::move(j)), RejectReason::kNone);
  };
  offer("peer-a", "a0");
  offer("peer-a", "a1");
  offer("peer-b", "b0");
  offer("peer-c", "c0");
  offer("peer-c", "c1");

  QueuedJob out;
  ASSERT_TRUE(q.take(&out));
  EXPECT_EQ(out.request.id, "a0");
  ASSERT_TRUE(q.take(&out));
  EXPECT_EQ(out.request.id, "b0");  // b's only item: b "disconnects" now
  // Mid-drain: a NEW peer joins right where the cursor sits (key order
  // resumes after "peer-b", so "peer-b2" is next in rotation).
  offer("peer-b2", "d0");
  ASSERT_TRUE(q.take(&out));
  EXPECT_EQ(out.request.id, "d0");  // the newcomer got its turn promptly
  ASSERT_TRUE(q.take(&out));
  EXPECT_EQ(out.request.id, "c0");
  ASSERT_TRUE(q.take(&out));
  EXPECT_EQ(out.request.id, "a1");  // wrapped around, a still live
  ASSERT_TRUE(q.take(&out));
  EXPECT_EQ(out.request.id, "c1");
  EXPECT_EQ(q.depth(), 0u);
}

TEST(ServiceChurn, HandleLineStampsIdentityIntoQuotas) {
  // Through the real dispatch path: one identity rotating client names must
  // exhaust ITS quota, not get a fresh one per name.
  ServiceOptions options = small_options();
  options.workers = 1;
  options.queue.max_depth = 0;
  options.queue.max_per_client = 2;
  LayoutService svc(t(), options);
  // NOT started: queued items sit still, so the third submit MUST hit the
  // identity quota — no worker race.
  std::vector<std::string> lines;
  std::mutex lines_mu;
  auto emit = [&](const std::string& line) {
    std::lock_guard<std::mutex> lock(lines_mu);
    lines.push_back(line);
  };
  for (int i = 0; i < 3; ++i) {
    svc.handle_line("tcp:6.6.6.6",
                    "{\"op\":\"submit\",\"client\":\"alias" + std::to_string(i) +
                        "\",\"circuit\":\"vco\",\"mode\":\"conventional\"}",
                    emit);
  }
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  {
    std::lock_guard<std::mutex> lock(lines_mu);
    for (const std::string& line : lines) {
      if (line.find("\"accepted\"") != std::string::npos) ++accepted;
      if (line.find("\"rejected\"") != std::string::npos) {
        ++rejected;
        EXPECT_NE(line.find("client_quota"), std::string::npos) << line;
      }
    }
  }
  // Exactly two admitted, the third shed — fresh client names bought the
  // peer nothing.
  EXPECT_EQ(accepted, 2u);
  EXPECT_EQ(rejected, 1u);
  svc.start();
  svc.drain();
}

// --- hot reload -------------------------------------------------------------

TEST(ServiceReload, QueueBoundsApplyWithoutDroppingQueuedWork) {
  ServiceOptions options = small_options();
  options.workers = 1;
  options.queue.max_depth = 8;
  LayoutService svc(t(), options);
  // NOT started: queued items sit still so the bounds are observable.
  std::atomic<int> done{0};
  auto count = [&done](const RequestOutcome&) { ++done; };
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(svc.submit(vco_request("q" + std::to_string(i),
                                     "client" + std::to_string(i)),
                         count),
              RejectReason::kNone);
  }
  // Shrink the bound BELOW the current depth: queued work is untouchable,
  // new offers shed.
  svc.reload({{"queue_depth", 2.0}});
  EXPECT_EQ(svc.submit(vco_request("q9", "client9"), count),
            RejectReason::kQueueFull);
  ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.queue_depth, 4u);
  EXPECT_EQ(stats.reloads, 1);
  // Grow it back: admission resumes.
  svc.reload({{"queue_depth", 16.0}});
  EXPECT_EQ(svc.submit(vco_request("q10", "client10"), count),
            RejectReason::kNone);
  svc.start();
  svc.drain();
  EXPECT_EQ(done.load(), 5);
}

TEST(ServiceReload, WorkerFleetResizesInPlace) {
  ServiceOptions options = small_options();
  options.workers = 1;
  LayoutService svc(t(), options);
  svc.start();
  EXPECT_EQ(svc.stats().workers, 1);
  svc.reload({{"workers", 3.0}});
  EXPECT_EQ(svc.stats().workers, 3);
  // The resized fleet actually serves.
  std::promise<RequestOutcome> done;
  auto future = done.get_future();
  ASSERT_EQ(svc.submit(vco_request("after-resize", "a"),
                       [&done](const RequestOutcome& o) { done.set_value(o); }),
            RejectReason::kNone);
  EXPECT_EQ(future.get().status, circuits::JobStatus::kSucceeded);
  svc.reload({{"workers", 1.0}});
  EXPECT_EQ(svc.stats().workers, 1);
  std::promise<RequestOutcome> again;
  auto future2 = again.get_future();
  ASSERT_EQ(
      svc.submit(vco_request("after-shrink", "a"),
                 [&again](const RequestOutcome& o) { again.set_value(o); }),
      RejectReason::kNone);
  EXPECT_EQ(future2.get().status, circuits::JobStatus::kSucceeded);
  svc.drain();
  EXPECT_EQ(svc.stats().reloads, 2);
}

TEST(ServiceReload, ReloadVerbEchoesEffectiveConfig) {
  ServiceOptions options = small_options();
  LayoutService svc(t(), options);
  svc.start();
  std::vector<std::string> lines;
  auto emit = [&lines](const std::string& line) { lines.push_back(line); };
  EXPECT_TRUE(svc.handle_line(
      "", R"({"op":"reload","queue_depth":5,"rate":2.5,"workers":2})", emit));
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"reloaded\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"queue_depth\":5"), std::string::npos);
  EXPECT_NE(lines[0].find("\"workers\":2"), std::string::npos);
  EXPECT_NE(lines[0].find("\"rate\":2.5"), std::string::npos);
  svc.drain();
}

}  // namespace
}  // namespace olp::service

#pragma once
// Fault-tolerant multi-client stream transport for the resident service.
//
// A TransportSupervisor owns up to two listening sockets (a unix-domain
// path and/or a loopback TCP port) and multiplexes EVERY accepted
// connection on one poll()-driven thread — no thread-per-connection, no
// head-of-line blocking between clients. Each connection gets:
//
//   * torn-frame-tolerant JSONL framing (util/jsonl LineFramer): requests
//     may arrive byte-by-byte or many-per-read; a frame is dispatched only
//     when its newline arrives, and a partial frame left by a disconnect is
//     discarded, never half-parsed;
//   * a hard per-frame size bound — an oversized line is discarded AS IT
//     STREAMS IN (bounded memory per connection) and answered with one
//     rejected/frame_too_large line once it ends;
//   * a read deadline that only arms while a partial frame is pending —
//     slow-loris clients dribbling a frame forever are shed with
//     rejected/read_timeout and closed; idle keepalive connections are
//     never penalized;
//   * a connection-stable identity stamped on every dispatched line
//     ("tcp:<peer-ip>", or "unix:pid:<pid>" via SO_PEERCRED where
//     available) — quotas and rate limits downstream key on THIS, so a
//     client reconnecting under a fresh self-reported name keeps its
//     bounds (see request.hpp);
//   * an output queue writable from any thread (workers complete jobs
//     asynchronously): writes that would block are resumed under POLLOUT,
//     and an injected FaultSite::kTransportPartialWrite flushes only a
//     prefix to prove the resumption path — the byte stream is never
//     corrupted, only delayed.
//
// FaultSite::kTransportDisconnect chaos-drops a connection during a read,
// exercising the torn-frame discard path. A connection-count bound refuses
// (with a reason line) rather than accepts-and-starves. Listener setup
// failure is reported from start() so the daemon can exit non-zero when a
// transport was explicitly requested but cannot serve.
//
// The supervisor is protocol-agnostic: it hands each complete frame to a
// LineHandler along with a thread-safe per-connection emit callback, and
// never parses JSON itself (except for the reject lines it originates).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace olp::service {

struct TransportOptions {
  /// Unix-domain listener path; empty = no unix listener.
  std::string unix_path;
  /// TCP listener port; -1 = no TCP listener, 0 = ephemeral (the bound port
  /// is reported by tcp_port() and should be announced to clients).
  int tcp_port = -1;
  /// TCP bind address. Loopback by default: the service speaks a trusting
  /// protocol and is not meant to face a hostile network.
  std::string tcp_host = "127.0.0.1";
  /// Per-frame byte bound (newline excluded); longer frames shed with
  /// frame_too_large. 0 = unbounded (tests only).
  std::size_t max_line_bytes = 64 * 1024;
  /// Slow-loris deadline: a connection holding a PARTIAL frame older than
  /// this is shed with read_timeout and closed. 0 = no deadline. Idle
  /// connections with no partial frame are never timed out.
  long read_timeout_ms = 30000;
  /// Concurrent-connection bound; excess accepts are answered with one
  /// reject line and closed. 0 = unbounded.
  std::size_t max_connections = 64;
};

struct TransportStats {
  bool running = false;
  int tcp_port = -1;               ///< actual bound port (-1 = no listener)
  long accepted = 0;               ///< connections accepted over lifetime
  long refused = 0;                ///< accepts shed by max_connections
  std::size_t active = 0;          ///< currently open connections
  std::size_t max_active = 0;      ///< high-water mark of `active`
  long lines_dispatched = 0;       ///< complete frames handed to the handler
  long frames_oversized = 0;       ///< sheds: frame_too_large
  long read_timeouts = 0;          ///< sheds: slow-loris deadline
  long torn_frames_discarded = 0;  ///< partial frames dropped on disconnect
  long partial_writes = 0;         ///< flushes resumed under POLLOUT
  long injected_disconnects = 0;   ///< chaos kTransportDisconnect fires
  long write_errors = 0;           ///< connections lost on write
};

class TransportSupervisor {
 public:
  /// Thread-safe response sink for one connection. Appends one complete
  /// JSONL line (newline added here) to the connection's output queue and
  /// wakes the poll loop. Harmless after the connection closed.
  using Emit = std::function<void(const std::string& line)>;

  /// Called on the supervisor thread for every complete in-bound frame.
  /// `identity` is the connection-stable peer identity (never
  /// client-controlled). Oversized frames never reach the handler — the
  /// supervisor sheds them itself with a frame_too_large reject line.
  using LineHandler = std::function<void(
      const std::string& identity, const std::string& line, const Emit& emit)>;

  TransportSupervisor();
  ~TransportSupervisor();

  TransportSupervisor(const TransportSupervisor&) = delete;
  TransportSupervisor& operator=(const TransportSupervisor&) = delete;

  /// Creates the requested listeners and starts the poll thread. False
  /// (with *error) when a requested listener cannot be created — the caller
  /// decides whether that is fatal (olp_serviced exits non-zero when the
  /// transport was explicitly requested). With no listeners requested,
  /// start() succeeds as a no-op supervisor.
  bool start(const TransportOptions& options, LineHandler handler,
             std::string* error = nullptr);

  /// Closes listeners and every connection, joins the poll thread.
  /// Idempotent.
  void stop();

  /// Hot-reloads the shedding knobs. The read deadline and connection
  /// bound apply from the next poll iteration; the frame bound applies to
  /// connections accepted from now on (each connection's framer is sized
  /// at accept). Open connections are never dropped by a reload.
  void reload_limits(long read_timeout_ms, std::size_t max_connections,
                     std::size_t max_line_bytes);

  /// Actual TCP port after start() (ephemeral ports resolved); -1 when no
  /// TCP listener is running.
  int tcp_port() const;

  bool running() const { return running_.load(std::memory_order_acquire); }

  TransportStats stats() const;

 private:
  struct Conn;
  struct Impl;

  void poll_loop();

  /// shared_ptr so per-connection emit callbacks (held by in-flight job
  /// completions) can hold a weak reference that outlives stop().
  std::shared_ptr<Impl> impl_;
  std::thread thread_;
  std::atomic<bool> running_{false};
};

}  // namespace olp::service

// Failure-injection tests: pathological inputs must produce diagnosable
// failures (clean non-convergence flags or typed exceptions), never crashes
// or silent garbage.

#include <gtest/gtest.h>

#include "circuits/common.hpp"
#include "circuits/strongarm.hpp"
#include "core/evaluator.hpp"
#include "pcell/generator.hpp"
#include "place/placer.hpp"
#include "route/global_router.hpp"
#include "spice/simulator.hpp"
#include "util/logging.hpp"

namespace olp {
namespace {

const tech::Technology& t() {
  static const tech::Technology tech = tech::make_default_finfet_tech();
  return tech;
}

TEST(FailureInjection, ConflictingVoltageSourcesDoNotCrash) {
  // Two sources forcing different voltages on the same node: the MNA system
  // is singular; op() must report non-convergence, not crash.
  spice::Circuit c;
  const spice::NodeId n = c.node("n");
  c.add_vsource("v1", n, spice::kGround, spice::Waveform::dc(1.0));
  c.add_vsource("v2", n, spice::kGround, spice::Waveform::dc(2.0));
  spice::Simulator sim(c);
  const spice::OpResult op = sim.op();
  EXPECT_FALSE(op.converged);
}

TEST(FailureInjection, CurrentSourceIntoFloatingNodeConverges) {
  // Only the gmin floor ties the node down; the solution is finite (I/gmin
  // saturated by damping over the iteration budget) and flagged accordingly.
  spice::Circuit c;
  const spice::NodeId n = c.node("float");
  c.add_isource("i1", spice::kGround, n, spice::Waveform::dc(1e-9));
  spice::Simulator sim(c);
  const spice::OpResult op = sim.op();
  // 1 nA into 1e-12 S wants 1 kV; the damped Newton cannot reach it in the
  // iteration budget. Either outcome is acceptable as long as it is flagged
  // and finite.
  ASSERT_FALSE(op.x.empty());
  EXPECT_TRUE(std::isfinite(op.x[0]));
}

TEST(FailureInjection, ShortedSourceSurvives) {
  // A voltage source with both terminals grounded: 0 V across, solvable.
  spice::Circuit c;
  c.add_vsource("v1", spice::kGround, spice::kGround, spice::Waveform::dc(1.0));
  c.add_resistor("r", c.node("a"), spice::kGround, 1e3);
  spice::Simulator sim(c);
  EXPECT_NO_THROW(sim.op());
}

TEST(FailureInjection, TransientOnStiffCircuitFallsBackGracefully) {
  // Huge conductance ratio (1 mohm against 1 Gohm) with a fast source: the
  // transient must either complete or return ok=false, never throw.
  spice::Circuit c;
  const spice::NodeId a = c.node("a");
  const spice::NodeId b = c.node("b");
  c.add_vsource("v", a, spice::kGround,
                spice::Waveform::pulse(0, 1, 1e-10, 1e-12, 1e-12, 1e-9, 2e-9));
  c.add_resistor("r1", a, b, 1e-3);
  c.add_resistor("r2", b, spice::kGround, 1e9);
  c.add_capacitor("cc", b, spice::kGround, 1e-15);
  spice::Simulator sim(c);
  spice::TranOptions tr;
  tr.tstop = 1e-9;
  tr.dt = 50e-12;
  EXPECT_NO_THROW({
    const spice::TranResult res = sim.tran(tr);
    (void)res;
  });
}

TEST(FailureInjection, EvaluatorWithAbsurdBiasReturnsFiniteMetrics) {
  // Bias far outside the operating region: metrics must be finite numbers
  // (the optimizer turns them into a large-but-finite cost).
  const pcell::PrimitiveGenerator gen(t());
  pcell::LayoutConfig cfg;
  cfg.nfin = 8;
  cfg.nf = 8;
  cfg.m = 1;
  const pcell::PrimitiveLayout lay =
      gen.generate(pcell::make_diff_pair(), cfg);
  core::BiasContext bias;
  bias.vdd = t().vdd;
  bias.bias_current = 50e-3;  // 50 mA through a small pair
  bias.port_voltage = {
      {"ga", 0.0}, {"gb", 0.0}, {"da", 0.0}, {"db", 0.0}, {"s", 0.79}};
  const core::PrimitiveEvaluator eval(t(), circuits::default_nmos(),
                                      circuits::default_pmos(), bias);
  set_log_level(LogLevel::kOff);
  const core::MetricValues v = eval.evaluate(lay, {});
  set_log_level(LogLevel::kWarn);
  for (const auto& [kind, value] : v) {
    EXPECT_TRUE(std::isfinite(value)) << core::metric_name(kind);
  }
}

TEST(FailureInjection, RouterWithUnreachableLayerRangeStillRoutes) {
  // Restricting to one layer forces vialess detours in one direction only;
  // a two-pin connection in the non-preferred direction must still resolve
  // or cleanly report failure.
  route::RouterOptions opt;
  opt.min_layer = 2;
  opt.max_layer = 2;  // M3 only (horizontal)
  route::GlobalRouter router(
      t(), geom::Rect{0, 0, geom::to_nm(5e-6), geom::to_nm(5e-6)}, opt);
  const route::NetRoute nr = router.route(
      "n", {geom::Point{0, 0}, geom::Point{0, geom::to_nm(4e-6)}});
  // A vertical connection on a horizontal-only layer cannot route.
  EXPECT_FALSE(nr.routed);
}

TEST(FailureInjection, PlacerRejectsDegenerateBlocks) {
  place::AnnealingPlacer placer;
  EXPECT_THROW(placer.place({}, {}, {}), InvalidArgumentError);
}

TEST(FailureInjection, GeneratorRejectsImpossibleBudget) {
  EXPECT_THROW(pcell::PrimitiveGenerator::enumerate_configs(1),
               InvalidArgumentError);
}

TEST(FailureInjection, ComparatorOffsetSaturatesOutsideRange) {
  // With a tiny search window, the measured offset saturates at the window
  // edge instead of looping forever.
  set_log_level(LogLevel::kError);
  circuits::StrongArmComparator sa(t());
  ASSERT_TRUE(sa.prepare());
  const circuits::Realization real =
      circuits::schematic_realization(sa.instances(), t());
  // A window of 0 forces equal endpoints -> saturated return.
  const double off = sa.measure_offset(real, 0.0);
  EXPECT_DOUBLE_EQ(off, 0.0);
}

TEST(FailureInjection, ComparatorOffsetSmallForMatchedLayouts) {
  // The paper: offset is a function of matching nets and stays similar
  // across flavors. Matched (ABBA) layouts keep it within a few mV.
  set_log_level(LogLevel::kError);
  circuits::StrongArmComparator sa(t());
  ASSERT_TRUE(sa.prepare());
  circuits::Realization real =
      circuits::schematic_realization(sa.instances(), t());
  const double off_sch = sa.measure_offset(real, 20e-3);
  EXPECT_LT(std::fabs(off_sch), 2e-3);
  real.ideal = false;  // extracted, same matched layouts
  const double off_ext = sa.measure_offset(real, 20e-3);
  EXPECT_LT(std::fabs(off_ext), 5e-3);
}

}  // namespace
}  // namespace olp

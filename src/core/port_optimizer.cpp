#include "core/port_optimizer.hpp"

#include <algorithm>
#include <limits>
#include <set>

#include "util/budget.hpp"
#include "util/diag.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/obs.hpp"
#include "util/task_pool.hpp"

namespace olp::core {

extract::WireRc route_wire_rc(const tech::Technology& t,
                              const route::NetRoute& route, int parallel) {
  OLP_CHECK(parallel >= 1, "parallel route count must be >= 1");
  extract::WireRc rc;
  for (const route::RouteSegment& seg : route.segments) {
    rc.resistance += t.wire_res(seg.layer, seg.length(), parallel);
    rc.capacitance += t.wire_cap(seg.layer, seg.length(), parallel);
  }
  // Parallel routes use parallel via stacks as well (the paper's gridded
  // effective-width trick applies to wires and vias alike).
  rc.resistance +=
      t.via_res * static_cast<double>(route.vias) / static_cast<double>(parallel);
  rc.capacitance += t.via_cap * static_cast<double>(route.vias) *
                    static_cast<double>(parallel);
  return rc;
}

WireInterval interval_from_curve(const std::vector<double>& costs,
                                 double plateau_tolerance) {
  OLP_CHECK(!costs.empty(), "empty cost curve");
  const double min_cost = *std::min_element(costs.begin(), costs.end());
  const double ceiling = min_cost * (1.0 + plateau_tolerance);
  std::size_t lo = 0;
  while (lo < costs.size() && costs[lo] > ceiling) ++lo;
  OLP_ASSERT(lo < costs.size(), "plateau search failed");
  std::size_t hi = costs.size() - 1;
  while (hi > lo && costs[hi] > ceiling) --hi;
  WireInterval iv;
  iv.lo = static_cast<int>(lo) + 1;
  // When the plateau extends to the end of the explored range no cost
  // increase was observed: the upper bound is unbounded (paper Sec. III-B1).
  if (hi == costs.size() - 1) {
    iv.hi.reset();
  } else {
    iv.hi = static_cast<int>(hi) + 1;
  }
  return iv;
}

double PortOptimizer::primitive_cost(
    const PortOptPrimitive& primitive,
    const std::map<std::string, int>& net_wires) const {
  OLP_CHECK(primitive.evaluator && primitive.layout,
            "port optimizer primitive is incomplete");
  EvalCondition cond;
  cond.ideal = false;
  cond.tuning = primitive.tuning;
  // Per-port parallel-route counts, with symmetric port pairs forced to the
  // same count (the detailed router keeps those routes symmetric, so the
  // sweep must widen both sides together).
  std::map<std::string, int> port_count;
  for (const PortRoute& pr : primitive.routes) {
    int wires = 1;
    if (auto it = net_wires.find(pr.circuit_net); it != net_wires.end()) {
      wires = it->second;
    }
    port_count[pr.port] = wires;
  }
  for (const auto& [pa, pb] : primitive.layout->netlist.symmetric_ports) {
    const auto ia = port_count.find(pa);
    const auto ib = port_count.find(pb);
    if (ia == port_count.end() || ib == port_count.end()) continue;
    const int w = std::max(ia->second, ib->second);
    ia->second = w;
    ib->second = w;
  }
  for (const PortRoute& pr : primitive.routes) {
    cond.port_wires[pr.port] =
        route_wire_rc(tech_, pr.route, port_count.at(pr.port));
  }
  const MetricValues values = primitive.evaluator->evaluate(*primitive.layout, cond);

  EvalCondition ideal;
  ideal.ideal = true;
  const MetricValues reference =
      primitive.evaluator->evaluate(*primitive.layout, ideal);
  const MetricLibraryEntry lib =
      metric_library(primitive.layout->netlist.type);
  const double offset_spec =
      0.1 * primitive.evaluator->random_offset_sigma(*primitive.layout);
  return compute_cost(lib.metrics, reference, values, offset_spec).total;
}

std::vector<PortConstraint> PortOptimizer::generate_constraints(
    const PortOptPrimitive& primitive) const {
  obs::Span span("portopt.constraints", [&] { return primitive.instance; });
  // Nets touched by this primitive's ports.
  std::set<std::string> nets;
  for (const PortRoute& pr : primitive.routes) nets.insert(pr.circuit_net);

  std::vector<PortConstraint> constraints;
  bool truncated = false;
  for (const std::string& net : nets) {
    // The sweep points are independent: evaluate them through the pool and
    // merge the contiguous explored prefix in wire order. A budget trip
    // leaves a hole; the prefix before it still yields a valid constraint
    // (plateau over the explored range) — same as the serial break.
    const std::size_t n = static_cast<std::size_t>(options_.max_wires);
    std::vector<double> costs(n, 0.0);
    std::vector<char> have(n, 0);
    run_indexed(pool_, n, [&](std::size_t k) {
      if (budget_ != nullptr && budget_->check()) return false;
      std::map<std::string, int> net_wires;
      net_wires[net] = static_cast<int>(k) + 1;  // other nets at one route
      obs::counter_add("portopt.sweep_points");
      costs[k] = primitive_cost(primitive, net_wires);
      have[k] = 1;
      return true;
    });
    std::vector<double> curve;
    for (std::size_t k = 0; k < n; ++k) {
      if (!have[k]) {
        truncated = true;
        break;
      }
      curve.push_back(costs[k]);
    }
    // Exhausted before any sweep point: no constraint for this net; the
    // realization falls back to the single-route default.
    if (curve.empty()) continue;
    PortConstraint pc;
    pc.instance = primitive.instance;
    pc.circuit_net = net;
    pc.interval = interval_from_curve(curve, options_.plateau_tolerance);
    pc.cost_curve = std::move(curve);
    constraints.push_back(std::move(pc));
  }
  if (truncated) {
    obs::counter_add("budget.truncations");
    if (diag_) {
      diag_->report(DiagSeverity::kWarning, "portopt", primitive.instance,
                    budget_->description() + "; port-wire sweep truncated, " +
                        std::to_string(constraints.size()) + " of " +
                        std::to_string(nets.size()) +
                        " nets constrained from explored prefixes");
    }
  }
  return constraints;
}

std::vector<NetWireDecision> PortOptimizer::reconcile(
    const std::vector<PortOptPrimitive>& primitives,
    const std::vector<PortConstraint>& constraints) const {
  obs::Span span("portopt.reconcile");
  // Group constraints per net.
  std::map<std::string, std::vector<const PortConstraint*>> by_net;
  for (const PortConstraint& pc : constraints) {
    by_net[pc.circuit_net].push_back(&pc);
  }

  std::vector<NetWireDecision> decisions;
  for (const auto& [net, pcs] : by_net) {
    std::vector<WireInterval> intervals;
    intervals.reserve(pcs.size());
    for (const PortConstraint* pc : pcs) intervals.push_back(pc->interval);
    const IntervalReconciliation rec = olp::reconcile(intervals);

    obs::counter_add("portopt.reconciliations");
    NetWireDecision d;
    d.circuit_net = net;
    if (rec.overlap) {
      d.parallel_routes = rec.chosen;
      d.from_overlap = true;
    } else {
      obs::counter_add("portopt.gap_resimulated");
      // Simulate all primitives on this net across the gap range and pick
      // the total-cost minimizer (Algorithm 2 lines 13-14).
      d.from_overlap = false;
      // Gap points are independent: evaluate them through the pool, then
      // take the strict-< argmin over the contiguous explored prefix — the
      // same "keep the best count found so far" the serial break produced
      // (best_w starts at the feasible gap_lo).
      const std::size_t gap_n =
          static_cast<std::size_t>(rec.gap_hi - rec.gap_lo + 1);
      std::vector<double> totals(gap_n, 0.0);
      std::vector<char> have(gap_n, 0);
      run_indexed(pool_, gap_n, [&](std::size_t k) {
        if (budget_ != nullptr && budget_->check()) return false;
        const int w = rec.gap_lo + static_cast<int>(k);
        double total = 0.0;
        for (const PortOptPrimitive& prim : primitives) {
          bool touches = false;
          for (const PortRoute& pr : prim.routes) {
            if (pr.circuit_net == net) {
              touches = true;
              break;
            }
          }
          if (!touches) continue;
          std::map<std::string, int> net_wires;
          net_wires[net] = w;
          total += primitive_cost(prim, net_wires);
        }
        totals[k] = total;
        have[k] = 1;
        return true;
      });
      double best_cost = std::numeric_limits<double>::infinity();
      int best_w = rec.gap_lo;
      for (std::size_t k = 0; k < gap_n; ++k) {
        if (!have[k]) {
          obs::counter_add("budget.truncations");
          if (diag_) {
            diag_->report(DiagSeverity::kWarning, "portopt", net,
                          budget_->description() +
                              "; gap re-simulation truncated at w=" +
                              std::to_string(rec.gap_lo + static_cast<int>(k)));
          }
          break;
        }
        if (totals[k] < best_cost) {
          best_cost = totals[k];
          best_w = rec.gap_lo + static_cast<int>(k);
        }
      }
      d.parallel_routes = best_w;
    }
    obs::record("portopt.decision_wires",
                static_cast<double>(d.parallel_routes));
    decisions.push_back(d);
  }
  return decisions;
}

std::vector<NetWireDecision> PortOptimizer::optimize(
    const std::vector<PortOptPrimitive>& primitives) const {
  std::vector<PortConstraint> constraints;
  for (const PortOptPrimitive& prim : primitives) {
    std::vector<PortConstraint> pcs = generate_constraints(prim);
    constraints.insert(constraints.end(), pcs.begin(), pcs.end());
  }
  return reconcile(primitives, constraints);
}

}  // namespace olp::core

#include "route/router_engine.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/budget.hpp"
#include "util/diag.hpp"
#include "util/obs.hpp"

namespace olp::route {

const char* router_backend_name(RouterBackend backend) {
  switch (backend) {
    case RouterBackend::kClassic:
      return "classic";
    case RouterBackend::kFast:
      return "fast";
    case RouterBackend::kPartitioned:
      return "partitioned";
    case RouterBackend::kNegotiated:
      return "negotiated";
  }
  return "unknown";
}

std::optional<RouterBackend> parse_router_backend(std::string_view name) {
  if (name == "classic") return RouterBackend::kClassic;
  if (name == "fast") return RouterBackend::kFast;
  if (name == "partitioned") return RouterBackend::kPartitioned;
  if (name == "negotiated") return RouterBackend::kNegotiated;
  return std::nullopt;
}

namespace {

/// Serial net-order routing through the full-service per-net entry. With
/// fast=false this is EXACTLY the historic flow loop (budget check before
/// each net, skipped nets come back routed=false with only the name set),
/// so the classic backend preserves the default-mode goldens byte for
/// byte; fast=true swaps in the pattern + bucket-queue core per net.
class SerialEngine : public RouterEngine {
 public:
  SerialEngine(GlobalRouter& router, bool fast)
      : router_(router), fast_(fast) {}

  RouterBackend backend() const override {
    return fast_ ? RouterBackend::kFast : RouterBackend::kClassic;
  }

  std::vector<NetRoute> route_nets(
      const std::vector<NetPins>& nets) override {
    Budget* budget = router_.budget();
    std::vector<NetRoute> routes(nets.size());
    for (std::size_t i = 0; i < nets.size(); ++i) {
      // Budget-bounded routing: remaining nets are skipped (routed=false)
      // and degrade downstream; nets routed before the trip are kept —
      // the salvaged routed subset.
      if (budget != nullptr && budget->check()) {
        routes[i].net = nets[i].name;
        continue;
      }
      RouteRequest request;
      request.with_fallback = true;
      request.fast = fast_;
      routes[i] = router_.route(nets[i].name, nets[i].pins, request);
    }
    return routes;
  }

 private:
  GlobalRouter& router_;
  bool fast_;
};

/// Dependency-partitioned concurrent batches (route/parallel.hpp).
class PartitionedEngine : public RouterEngine {
 public:
  PartitionedEngine(GlobalRouter& router, TaskPool* pool)
      : router_(router), pool_(pool) {}

  RouterBackend backend() const override {
    return RouterBackend::kPartitioned;
  }

  std::vector<NetRoute> route_nets(
      const std::vector<NetPins>& nets) override {
    return route_partitioned(router_, nets, pool_);
  }

 private:
  GlobalRouter& router_;
  TaskPool* pool_;
};

/// PathFinder-style negotiated congestion on the fast core.
///
/// Iteration 0 routes every net greedily (fast core, no fallback — the
/// fallback grid cannot participate in negotiation). While overflow
/// remains, each pass grows the present-congestion factor, folds the
/// current overflow into per-edge history, then rips up and reroutes every
/// net in deterministic net order against the shaped costs. The
/// best-so-far solution (min overflow, then min wirelength) is snapshotted
/// each pass and restored at the end, so a budget trip or the iteration
/// cap still salvages the best state seen. Nets that remain unrouted after
/// negotiation get the classic widened-layer fallback, exactly like the
/// partitioned backend's cleanup pass.
class NegotiatedEngine : public RouterEngine {
 public:
  NegotiatedEngine(GlobalRouter& router, const RouterEngineOptions& options)
      : router_(router), opt_(options) {}

  RouterBackend backend() const override {
    return RouterBackend::kNegotiated;
  }

  std::vector<NetRoute> route_nets(
      const std::vector<NetPins>& nets) override {
    Budget* budget = router_.budget();
    DiagnosticsSink* diag = router_.diagnostics();
    NegotiationCosts costs;
    costs.history_x.assign(router_.edge_array_size(), 0);
    costs.history_y.assign(router_.edge_array_size(), 0);
    costs.present_factor = 1.0;
    const long long history_units =
        std::llround(router_.options().congestion_cost * 100.0);

    RouteRequest request;
    request.fast = true;
    request.negotiation = &costs;

    // Pass 0: greedy initial solution, with the same per-net envelope the
    // other serial backends emit.
    std::vector<NetRoute> routes(nets.size());
    for (std::size_t i = 0; i < nets.size(); ++i) {
      if (budget != nullptr && budget->check()) {
        routes[i].net = nets[i].name;
        continue;
      }
      obs::Span span("router.net", [&] { return nets[i].name; });
      obs::counter_add("router.nets");
      routes[i] = router_.route(nets[i].name, nets[i].pins, request);
      if (routes[i].routed) {
        obs::record("router.net_length_um", routes[i].total_length() * 1e6);
      }
    }

    auto wirelength = [&] {
      double total = 0.0;
      for (const NetRoute& r : routes) total += r.total_length();
      return total;
    };

    long cur_over = router_.total_overflow();
    std::vector<NetRoute> best = routes;
    long best_over = cur_over;
    double best_len = wirelength();
    bool current_is_best = true;

    int iterations = 0;
    for (int iter = 1;
         iter <= opt_.negotiation_iterations && cur_over > 0; ++iter) {
      if (budget != nullptr && budget->check()) {
        if (diag != nullptr) {
          diag->report(DiagSeverity::kWarning, "router", "negotiation",
                       budget->description() +
                           "; salvaging best-so-far solution after " +
                           std::to_string(iterations) + " negotiation passes");
        }
        obs::counter_add("budget.truncations");
        break;
      }
      ++iterations;
      obs::counter_add("router.negotiate.iterations");
      // Persistent overflow gets more expensive on two clocks: the history
      // term remembers every past overflowed pass, the present factor makes
      // crossing a currently-full edge dearer this pass.
      router_.accumulate_history(costs, history_units);
      costs.present_factor =
          std::min(opt_.present_cap,
                   costs.present_factor * opt_.present_growth);

      for (std::size_t i = 0; i < nets.size(); ++i) {
        if (routes[i].routed) router_.rip_up(routes[i]);
        obs::counter_add("router.negotiate.reroutes");
        NetRoute rerouted =
            router_.route(nets[i].name, nets[i].pins, request);
        if (!rerouted.routed && routes[i].routed) {
          // A failed reroute (chaos injection, budget trip mid-net) must
          // not lose a previously good route: put the old one back.
          router_.commit(routes[i]);
        } else {
          routes[i] = std::move(rerouted);
        }
      }
      current_is_best = false;

      cur_over = router_.total_overflow();
      const double cur_len = wirelength();
      if (cur_over < best_over ||
          (cur_over == best_over && cur_len < best_len)) {
        best = routes;
        best_over = cur_over;
        best_len = cur_len;
        current_is_best = true;
      }
    }

    // Restore the best-so-far solution (routes AND the congestion grid, so
    // congestion_ratio()/total_overflow() describe what we return).
    if (!current_is_best) {
      for (const NetRoute& r : routes) {
        if (r.routed) router_.rip_up(r);
      }
      for (const NetRoute& r : best) {
        if (r.routed) router_.commit(r);
      }
      routes = std::move(best);
    }
    obs::record("router.negotiate.final_overflow",
                static_cast<double>(best_over));

    // Cleanup: anything still unrouted (layer window too tight for the
    // primary grid) gets the classic full-service retry, in net order.
    for (std::size_t i = 0; i < nets.size(); ++i) {
      if (routes[i].routed) continue;
      if (budget != nullptr && budget->check()) continue;
      RouteRequest fallback_request;
      fallback_request.with_fallback = true;
      fallback_request.fast = true;
      routes[i] =
          router_.route(nets[i].name, nets[i].pins, fallback_request);
    }
    return routes;
  }

 private:
  GlobalRouter& router_;
  RouterEngineOptions opt_;
};

}  // namespace

std::unique_ptr<RouterEngine> make_router_engine(
    GlobalRouter& router, RouterEngineOptions options) {
  switch (options.backend) {
    case RouterBackend::kClassic:
      return std::make_unique<SerialEngine>(router, /*fast=*/false);
    case RouterBackend::kFast:
      return std::make_unique<SerialEngine>(router, /*fast=*/true);
    case RouterBackend::kPartitioned:
      return std::make_unique<PartitionedEngine>(router, options.pool);
    case RouterBackend::kNegotiated:
      return std::make_unique<NegotiatedEngine>(router, options);
  }
  return std::make_unique<SerialEngine>(router, /*fast=*/false);
}

}  // namespace olp::route

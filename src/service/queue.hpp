#pragma once
// Admission-controlled fair-share queue for the resident layout service.
//
// Two bounds shed load BEFORE work is accepted (reject-with-reason, never
// crash, never block the intake thread):
//
//   max_depth       total queued items across all identities — the
//                   service's global backlog bound.
//   max_per_client  queued items any single identity may hold — one noisy
//                   client fills its own quota and gets kClientQuota while
//                   everyone else keeps being admitted.
//
// Both bounds key on the request's connection-stable IDENTITY (the peer
// address a network transport stamps), falling back to the self-reported
// client name only for trusted direct callers — so a client reconnecting
// under fresh names cannot defeat its quota (see request.hpp). Scheduling
// is round-robin across identities: workers take one item from each in
// turn (ordered by key, cursor remembered across takes), so a client
// submitting 100 jobs and a client submitting 1 interleave 1:1 — wait time
// is proportional to YOUR backlog, not the queue's. Within one identity,
// higher `priority` first, then FIFO by admission ticket.
//
// Bounds are hot-reloadable (set_options): new bounds apply to subsequent
// offers; already-queued items are never retroactively shed.
//
// close() wakes every blocked take() (returns false); offer() after close
// sheds with kDraining.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>

#include "service/request.hpp"

namespace olp::service {

struct QueueOptions {
  std::size_t max_depth = 64;      ///< total queued items (0 = unbounded)
  std::size_t max_per_client = 16; ///< per-identity bound (0 = unbounded)
};

/// The key quotas and fair-share scheduling group a request under: the
/// transport-stamped identity when present, else the self-reported client.
inline const std::string& queue_key(const ServiceRequest& request) {
  return request.identity.empty() ? request.client : request.identity;
}

/// One queued submission (the request plus admission bookkeeping).
struct QueuedJob {
  ServiceRequest request;
  std::uint64_t ticket = 0;  ///< admission order, for FIFO within priority
  double admitted_s = 0.0;   ///< service-clock time of admission
  std::uint64_t journal_seq = 0;  ///< durable journal sequence (0 = none)
};

class AdmissionQueue {
 public:
  explicit AdmissionQueue(QueueOptions options = {});

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Admits or sheds. kNone = admitted; kQueueFull / kClientQuota /
  /// kDraining name why the item was refused. Never blocks.
  RejectReason offer(QueuedJob job);

  /// Blocks until an item is available (fair-share pick, see file comment)
  /// or the queue is closed AND empty — then returns false. Closing with
  /// items still queued lets workers drain them first.
  bool take(QueuedJob* out);

  /// take() with a caller-supplied stop condition: additionally returns
  /// false (without an item) as soon as `stop` evaluates true, even while
  /// items remain — a worker being retired by a hot reload exits here.
  /// Re-evaluated on every wake(); spurious wakes are harmless.
  bool take(QueuedJob* out, const std::function<bool()>& stop);

  /// Stops admission (offers shed with kDraining) and wakes blocked takers.
  /// Already-queued items remain takeable; take() returns false only once
  /// the queue is empty.
  void close();

  /// Drops every queued item (used by fast shutdown). Returns how many were
  /// dropped.
  std::size_t clear();

  /// Wakes every blocked take() so stop conditions are re-evaluated.
  void wake();

  /// Replaces the admission bounds; applies to offers from now on.
  void set_options(QueueOptions options);
  QueueOptions options() const;

  std::size_t depth() const;
  bool closed() const;
  /// Total items ever admitted / shed (by reason) — monotone counters.
  long admitted() const;
  long shed(RejectReason reason) const;
  long shed_total() const;

 private:
  /// Per-identity queue ordered by (-priority, ticket): highest priority
  /// first, FIFO within equal priority.
  using ClientQueue = std::map<std::pair<int, std::uint64_t>, QueuedJob>;

  QueueOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool closed_ = false;
  std::size_t depth_ = 0;
  std::map<std::string, ClientQueue> clients_;
  /// Key of the identity AFTER which the round-robin cursor resumes.
  std::string cursor_;
  long admitted_ = 0;
  std::map<int, long> shed_;  ///< RejectReason -> count
};

}  // namespace olp::service

#include "util/env.hpp"

#include <cstdlib>

namespace olp::env {

bool has(const char* name) { return std::getenv(name) != nullptr; }

std::string str(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  return raw == nullptr ? fallback : std::string(raw);
}

long integer(const char* name, long fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long value = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return value;
}

double number(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  if (end == raw || *end != '\0') return fallback;
  return value;
}

bool flag(const char* name, bool fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  return raw[0] != '0';
}

}  // namespace olp::env

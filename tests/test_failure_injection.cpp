// Failure-injection tests: pathological inputs must produce diagnosable
// failures (clean non-convergence flags or typed exceptions), never crashes
// or silent garbage.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "circuits/common.hpp"
#include "circuits/strongarm.hpp"
#include "core/evaluator.hpp"
#include "core/optimizer.hpp"
#include "pcell/generator.hpp"
#include "place/placer.hpp"
#include "route/global_router.hpp"
#include "spice/simulator.hpp"
#include "util/curvature.hpp"
#include "util/diag.hpp"
#include "util/faults.hpp"
#include "util/logging.hpp"

namespace olp {
namespace {

const tech::Technology& t() {
  static const tech::Technology tech = tech::make_default_finfet_tech();
  return tech;
}

TEST(FailureInjection, ConflictingVoltageSourcesDoNotCrash) {
  // Two sources forcing different voltages on the same node: the MNA system
  // is singular; op() must report non-convergence, not crash.
  spice::Circuit c;
  const spice::NodeId n = c.node("n");
  c.add_vsource("v1", n, spice::kGround, spice::Waveform::dc(1.0));
  c.add_vsource("v2", n, spice::kGround, spice::Waveform::dc(2.0));
  spice::Simulator sim(c);
  const spice::OpResult op = sim.op();
  EXPECT_FALSE(op.converged);
}

TEST(FailureInjection, CurrentSourceIntoFloatingNodeConverges) {
  // Only the gmin floor ties the node down; the solution is finite (I/gmin
  // saturated by damping over the iteration budget) and flagged accordingly.
  spice::Circuit c;
  const spice::NodeId n = c.node("float");
  c.add_isource("i1", spice::kGround, n, spice::Waveform::dc(1e-9));
  spice::Simulator sim(c);
  const spice::OpResult op = sim.op();
  // 1 nA into 1e-12 S wants 1 kV; the damped Newton cannot reach it in the
  // iteration budget. Either outcome is acceptable as long as it is flagged
  // and finite.
  ASSERT_FALSE(op.x.empty());
  EXPECT_TRUE(std::isfinite(op.x[0]));
}

TEST(FailureInjection, ShortedSourceSurvives) {
  // A voltage source with both terminals grounded: 0 V across, solvable.
  spice::Circuit c;
  c.add_vsource("v1", spice::kGround, spice::kGround, spice::Waveform::dc(1.0));
  c.add_resistor("r", c.node("a"), spice::kGround, 1e3);
  spice::Simulator sim(c);
  EXPECT_NO_THROW(sim.op());
}

TEST(FailureInjection, TransientOnStiffCircuitFallsBackGracefully) {
  // Huge conductance ratio (1 mohm against 1 Gohm) with a fast source: the
  // transient must either complete or return ok=false, never throw.
  spice::Circuit c;
  const spice::NodeId a = c.node("a");
  const spice::NodeId b = c.node("b");
  c.add_vsource("v", a, spice::kGround,
                spice::Waveform::pulse(0, 1, 1e-10, 1e-12, 1e-12, 1e-9, 2e-9));
  c.add_resistor("r1", a, b, 1e-3);
  c.add_resistor("r2", b, spice::kGround, 1e9);
  c.add_capacitor("cc", b, spice::kGround, 1e-15);
  spice::Simulator sim(c);
  spice::TranOptions tr;
  tr.tstop = 1e-9;
  tr.dt = 50e-12;
  EXPECT_NO_THROW({
    const spice::TranResult res = sim.tran(tr);
    (void)res;
  });
}

TEST(FailureInjection, EvaluatorWithAbsurdBiasReturnsFiniteMetrics) {
  // Bias far outside the operating region: metrics must be finite numbers
  // (the optimizer turns them into a large-but-finite cost).
  const pcell::PrimitiveGenerator gen(t());
  pcell::LayoutConfig cfg;
  cfg.nfin = 8;
  cfg.nf = 8;
  cfg.m = 1;
  const pcell::PrimitiveLayout lay =
      gen.generate(pcell::make_diff_pair(), cfg);
  core::BiasContext bias;
  bias.vdd = t().vdd;
  bias.bias_current = 50e-3;  // 50 mA through a small pair
  bias.port_voltage = {
      {"ga", 0.0}, {"gb", 0.0}, {"da", 0.0}, {"db", 0.0}, {"s", 0.79}};
  const core::PrimitiveEvaluator eval(t(), circuits::default_nmos(),
                                      circuits::default_pmos(), bias);
  set_log_level(LogLevel::kOff);
  const core::MetricValues v = eval.evaluate(lay, {});
  set_log_level(LogLevel::kWarn);
  for (const auto& [kind, value] : v) {
    EXPECT_TRUE(std::isfinite(value)) << core::metric_name(kind);
  }
}

TEST(FailureInjection, RouterWithUnreachableLayerRangeStillRoutes) {
  // Restricting to one layer forces vialess detours in one direction only;
  // a two-pin connection in the non-preferred direction must still resolve
  // or cleanly report failure.
  route::RouterOptions opt;
  opt.min_layer = 2;
  opt.max_layer = 2;  // M3 only (horizontal)
  route::GlobalRouter router(
      t(), geom::Rect{0, 0, geom::to_nm(5e-6), geom::to_nm(5e-6)}, opt);
  const route::NetRoute nr = router.route(
      "n", {geom::Point{0, 0}, geom::Point{0, geom::to_nm(4e-6)}},
      route::RouteRequest{});
  // A vertical connection on a horizontal-only layer cannot route.
  EXPECT_FALSE(nr.routed);
}

TEST(FailureInjection, PlacerRejectsDegenerateBlocks) {
  place::AnnealingPlacer placer;
  EXPECT_THROW(placer.place({}, {}, {}), InvalidArgumentError);
}

TEST(FailureInjection, GeneratorRejectsImpossibleBudget) {
  EXPECT_THROW(pcell::PrimitiveGenerator::enumerate_configs(1),
               InvalidArgumentError);
}

TEST(FailureInjection, ComparatorOffsetSaturatesOutsideRange) {
  // With a tiny search window, the measured offset saturates at the window
  // edge instead of looping forever.
  set_log_level(LogLevel::kError);
  circuits::StrongArmComparator sa(t());
  ASSERT_TRUE(sa.prepare());
  const circuits::Realization real =
      circuits::schematic_realization(sa.instances(), t());
  // A window of 0 forces equal endpoints -> saturated return.
  const double off = sa.measure_offset(real, 0.0);
  EXPECT_DOUBLE_EQ(off, 0.0);
}

TEST(FailureInjection, ComparatorOffsetSmallForMatchedLayouts) {
  // The paper: offset is a function of matching nets and stays similar
  // across flavors. Matched (ABBA) layouts keep it within a few mV.
  set_log_level(LogLevel::kError);
  circuits::StrongArmComparator sa(t());
  ASSERT_TRUE(sa.prepare());
  circuits::Realization real =
      circuits::schematic_realization(sa.instances(), t());
  const double off_sch = sa.measure_offset(real, 20e-3);
  EXPECT_LT(std::fabs(off_sch), 2e-3);
  real.ideal = false;  // extracted, same matched layouts
  const double off_ext = sa.measure_offset(real, 20e-3);
  EXPECT_LT(std::fabs(off_ext), 5e-3);
}

// --- Retry/fallback ladder coverage (deterministic fault injection) --------

core::BiasContext dp_bias() {
  core::BiasContext b;
  b.vdd = t().vdd;
  b.bias_current = 500e-6;
  b.port_voltage = {
      {"ga", 0.5}, {"gb", 0.5}, {"da", 0.5}, {"db", 0.5}, {"s", 0.2}};
  b.port_load_cap = {{"da", 20e-15}, {"db", 20e-15}};
  return b;
}

TEST(FailureInjection, TranBackwardEulerFallbackEngages) {
  // An injected first-attempt transient failure must trigger the retry ladder
  // (backward Euler, halved dt) and still deliver a successful result.
  set_log_level(LogLevel::kOff);
  spice::Circuit c;
  const spice::NodeId a = c.node("a");
  const spice::NodeId b = c.node("b");
  c.add_vsource("v", a, spice::kGround,
                spice::Waveform::pulse(0, 1, 1e-10, 1e-11, 1e-11, 1e-9, 4e-9));
  c.add_resistor("r", a, b, 1e3);
  c.add_capacitor("cl", b, spice::kGround, 1e-13);
  DiagnosticsSink sink;
  spice::Simulator sim(c, &sink);
  spice::TranOptions tr;
  tr.tstop = 1e-9;
  tr.dt = 1e-11;
  FaultConfig config;
  config.tran_rate = 1.0;
  config.max_total_fires = 1;  // only the first attempt fails
  spice::TranResult res;
  {
    ScopedFaultInjection chaos(config);
    res = sim.tran(tr);
  }
  set_log_level(LogLevel::kWarn);
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(FaultInjector::global().fired(FaultSite::kTranNonConvergence), 1);
  EXPECT_EQ(sink.count("chaos", "tran"), 1u);
  // The ladder announced the backward-Euler retry.
  EXPECT_GE(sink.count("simulator", "tran"), 1u);
  EXPECT_FALSE(sink.has_at_least(DiagSeverity::kError));
}

TEST(FailureInjection, QuarantinedCandidateExcludedFromSelection) {
  // One injected NaN metric (the first candidate evaluation; the schematic
  // reference draw is skipped) quarantines that candidate. Selection must
  // skip it and return only healthy, finite-cost options.
  set_log_level(LogLevel::kOff);
  const pcell::PrimitiveGenerator gen(t());
  core::PrimitiveEvaluator eval(t(), circuits::default_nmos(),
                                circuits::default_pmos(), dp_bias());
  DiagnosticsSink sink;
  eval.set_diagnostics(&sink);
  const core::PrimitiveOptimizer opt(gen, eval, &sink);
  FaultConfig config;
  config.nan_metric_rate = 1.0;
  config.skip_draws = 1;       // spare the schematic reference evaluation
  config.max_total_fires = 1;  // poison exactly one candidate
  std::vector<core::LayoutCandidate> sel;
  {
    ScopedFaultInjection chaos(config);
    sel = opt.optimize(pcell::make_diff_pair(), 16);
  }
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(FaultInjector::global().fired(FaultSite::kNanMetric), 1);
  EXPECT_EQ(sink.count("chaos", "nan_metric"), 1u);
  EXPECT_GE(sink.count("evaluator"), 1u);  // the quarantine record
  ASSERT_FALSE(sel.empty());
  for (const core::LayoutCandidate& cand : sel) {
    EXPECT_FALSE(cand.quarantined);
    EXPECT_TRUE(std::isfinite(cand.cost.total));
    EXPECT_LT(cand.cost.total, core::kQuarantineCost);
  }
}

TEST(FailureInjection, AllCandidatesQuarantinedFallsBackToMinArea) {
  // When every candidate evaluation is poisoned the optimizer must degrade
  // to the minimum-area configuration instead of asserting out.
  set_log_level(LogLevel::kOff);
  const pcell::PrimitiveGenerator gen(t());
  core::PrimitiveEvaluator eval(t(), circuits::default_nmos(),
                                circuits::default_pmos(), dp_bias());
  DiagnosticsSink sink;
  eval.set_diagnostics(&sink);
  const core::PrimitiveOptimizer opt(gen, eval, &sink);
  const pcell::PrimitiveNetlist dp = pcell::make_diff_pair();
  FaultConfig config;
  config.nan_metric_rate = 1.0;
  config.skip_draws = 1;  // reference clean, every candidate poisoned
  std::vector<core::LayoutCandidate> sel;
  {
    ScopedFaultInjection chaos(config);
    sel = opt.optimize(dp, 16);
  }
  set_log_level(LogLevel::kWarn);
  ASSERT_EQ(sel.size(), 1u);
  EXPECT_TRUE(sel[0].quarantined);
  EXPECT_DOUBLE_EQ(sel[0].cost.total, core::kQuarantineCost);
  // The fallback picked the minimum-area configuration over the full
  // enumeration (recomputed independently here).
  double min_area = std::numeric_limits<double>::infinity();
  for (const pcell::LayoutConfig& cfg :
       pcell::PrimitiveGenerator::enumerate_configs(16)) {
    min_area = std::min(min_area, gen.generate(dp, cfg).area());
  }
  EXPECT_DOUBLE_EQ(sel[0].layout.area(), min_area);
  EXPECT_GE(sink.count("optimizer", dp.name), 1u);
}

TEST(FailureInjection, RouterWidenedWindowRetryRecoversVerticalNet) {
  // A vertical two-pin net on a horizontal-only window fails the primary
  // attempt; route_with_fallback must recover it on the widened window and
  // leave warning (not error) diagnostics behind.
  set_log_level(LogLevel::kOff);
  route::RouterOptions opt;
  opt.min_layer = 2;
  opt.max_layer = 2;  // M3 only (horizontal)
  route::GlobalRouter router(
      t(), geom::Rect{0, 0, geom::to_nm(5e-6), geom::to_nm(5e-6)}, opt);
  DiagnosticsSink sink;
  router.set_diagnostics(&sink);
  route::RouteRequest request;
  request.with_fallback = true;
  const route::NetRoute nr = router.route(
      "n", {geom::Point{0, 0}, geom::Point{0, geom::to_nm(4e-6)}}, request);
  set_log_level(LogLevel::kWarn);
  EXPECT_TRUE(nr.routed);
  // Primary failure notice plus the widened-window retry notice.
  EXPECT_GE(sink.count("router", "n"), 2u);
  EXPECT_FALSE(sink.has_at_least(DiagSeverity::kError));
}

TEST(FailureInjection, InjectedRouteFailureRecoversViaFallback) {
  // An injected primary-route failure on an otherwise routable net must be
  // absorbed by the widened-window retry.
  set_log_level(LogLevel::kOff);
  route::GlobalRouter router(
      t(), geom::Rect{0, 0, geom::to_nm(5e-6), geom::to_nm(5e-6)}, {});
  DiagnosticsSink sink;
  router.set_diagnostics(&sink);
  FaultConfig config;
  config.route_rate = 1.0;
  config.max_total_fires = 1;  // fallback attempt draws clean
  route::NetRoute nr;
  {
    ScopedFaultInjection chaos(config);
    route::RouteRequest request;
    request.with_fallback = true;
    nr = router.route(
        "net", {geom::Point{0, 0}, geom::Point{geom::to_nm(4e-6), 0}},
        request);
  }
  set_log_level(LogLevel::kWarn);
  EXPECT_TRUE(nr.routed);
  EXPECT_EQ(FaultInjector::global().fired(FaultSite::kRouteFailure), 1);
  EXPECT_EQ(sink.count("chaos", "route"), 1u);
  EXPECT_FALSE(sink.has_at_least(DiagSeverity::kError));
}

// --- Small-sample edge cases ----------------------------------------------

TEST(FailureInjection, AspectBinsIdenticalAspectsCollapseToBinZero) {
  const std::vector<int> bins =
      core::assign_aspect_bins({1.5, 1.5, 1.5, 1.5}, 4);
  ASSERT_EQ(bins.size(), 4u);
  for (int b : bins) EXPECT_EQ(b, 0);
}

TEST(FailureInjection, MaxCurvatureIndexHandlesTinyCurves) {
  // Fewer than three samples has no interior point: the last index wins.
  EXPECT_EQ(max_curvature_index({5.0}), 0u);
  EXPECT_EQ(max_curvature_index({5.0, 4.0}), 1u);
  EXPECT_THROW(max_curvature_index({}), InvalidArgumentError);
}

}  // namespace
}  // namespace olp

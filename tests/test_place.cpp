// Tests for the sequence-pair annealing placer.

#include <gtest/gtest.h>

#include <numeric>

#include "place/placer.hpp"
#include "util/rng.hpp"

namespace olp::place {
namespace {

bool blocks_overlap(const std::vector<Block>& blocks,
                    const std::vector<PlacedBlock>& placed) {
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    for (std::size_t j = i + 1; j < blocks.size(); ++j) {
      const bool sep =
          placed[i].x + blocks[i].width <= placed[j].x + 1e-12 ||
          placed[j].x + blocks[j].width <= placed[i].x + 1e-12 ||
          placed[i].y + blocks[i].height <= placed[j].y + 1e-12 ||
          placed[j].y + blocks[j].height <= placed[i].y + 1e-12;
      if (!sep) return true;
    }
  }
  return false;
}

TEST(SequencePair, IdenticalSequencesPackHorizontally) {
  const std::vector<Block> blocks = {{"a", 2, 1}, {"b", 3, 1}, {"c", 1, 1}};
  const std::vector<PlacedBlock> placed =
      pack_sequence_pair(blocks, {0, 1, 2}, {0, 1, 2});
  EXPECT_DOUBLE_EQ(placed[0].x, 0.0);
  EXPECT_DOUBLE_EQ(placed[1].x, 2.0);
  EXPECT_DOUBLE_EQ(placed[2].x, 5.0);
  for (const PlacedBlock& p : placed) EXPECT_DOUBLE_EQ(p.y, 0.0);
}

TEST(SequencePair, ReversedNegativeSequencePacksVertically) {
  const std::vector<Block> blocks = {{"a", 1, 2}, {"b", 1, 3}, {"c", 1, 1}};
  const std::vector<PlacedBlock> placed =
      pack_sequence_pair(blocks, {0, 1, 2}, {2, 1, 0});
  EXPECT_DOUBLE_EQ(placed[0].y, 4.0);
  EXPECT_DOUBLE_EQ(placed[1].y, 1.0);
  EXPECT_DOUBLE_EQ(placed[2].y, 0.0);
  for (const PlacedBlock& p : placed) EXPECT_DOUBLE_EQ(p.x, 0.0);
}

TEST(SequencePair, SizeMismatchThrows) {
  const std::vector<Block> blocks = {{"a", 1, 1}};
  EXPECT_THROW(pack_sequence_pair(blocks, {0, 1}, {0}),
               InvalidArgumentError);
}

// Property: any permutation pair yields an overlap-free packing.
class SequencePairRandom : public ::testing::TestWithParam<int> {};

TEST_P(SequencePairRandom, NoOverlaps) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int n = 3 + GetParam() % 6;
  std::vector<Block> blocks;
  for (int i = 0; i < n; ++i) {
    blocks.push_back(Block{"b" + std::to_string(i), rng.uniform(0.5, 4.0),
                           rng.uniform(0.5, 4.0)});
  }
  std::vector<int> pos(static_cast<std::size_t>(n)),
      neg(static_cast<std::size_t>(n));
  std::iota(pos.begin(), pos.end(), 0);
  std::iota(neg.begin(), neg.end(), 0);
  std::shuffle(pos.begin(), pos.end(), rng.engine());
  std::shuffle(neg.begin(), neg.end(), rng.engine());
  const std::vector<PlacedBlock> placed =
      pack_sequence_pair(blocks, pos, neg);
  EXPECT_FALSE(blocks_overlap(blocks, placed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SequencePairRandom,
                         ::testing::Range(1, 21));

TEST(Placer, SingleBlock) {
  const AnnealingPlacer placer;
  const PlacementResult r = placer.place({{"a", 2e-6, 1e-6}}, {}, {});
  EXPECT_TRUE(r.legal);
  EXPECT_DOUBLE_EQ(r.width, 2e-6);
  EXPECT_DOUBLE_EQ(r.height, 1e-6);
}

TEST(Placer, ResultIsLegal) {
  PlacerOptions opt;
  opt.iterations = 3000;
  const AnnealingPlacer placer(opt);
  const std::vector<Block> blocks = {
      {"a", 2e-6, 1e-6}, {"b", 1e-6, 2e-6}, {"c", 3e-6, 1e-6},
      {"d", 1e-6, 1e-6}};
  const PlacementResult r = placer.place(blocks, {}, {});
  EXPECT_TRUE(r.legal);
  EXPECT_GT(r.width, 0.0);
  EXPECT_GT(r.height, 0.0);
}

TEST(Placer, PacksWithReasonableUtilization) {
  PlacerOptions opt;
  opt.iterations = 8000;
  const AnnealingPlacer placer(opt);
  std::vector<Block> blocks;
  double total_area = 0.0;
  Rng rng(9);
  for (int i = 0; i < 6; ++i) {
    const double w = rng.uniform(1e-6, 3e-6);
    const double h = rng.uniform(1e-6, 3e-6);
    blocks.push_back(Block{"b" + std::to_string(i), w, h});
    total_area += w * h;
  }
  const PlacementResult r = placer.place(blocks, {}, {});
  ASSERT_TRUE(r.legal);
  EXPECT_GT(total_area / (r.width * r.height), 0.5);
}

TEST(Placer, WirelengthPullsConnectedBlocksTogether) {
  // Chain a-b connected, c disconnected: a and b should end up closer
  // together than the worst case.
  PlacerOptions opt;
  opt.iterations = 6000;
  opt.hpwl_weight = 4.0;
  const AnnealingPlacer placer(opt);
  const std::vector<Block> blocks = {
      {"a", 1e-6, 1e-6}, {"b", 1e-6, 1e-6}, {"c", 1e-6, 1e-6},
      {"d", 1e-6, 1e-6}};
  PlacementNet net;
  net.name = "n";
  net.pins = {{0, 0.5e-6, 0.5e-6}, {1, 0.5e-6, 0.5e-6}};
  const PlacementResult r = placer.place(blocks, {net}, {});
  ASSERT_TRUE(r.legal);
  const double dx = std::fabs(r.blocks[0].x - r.blocks[1].x);
  const double dy = std::fabs(r.blocks[0].y - r.blocks[1].y);
  EXPECT_LE(dx + dy, 2.1e-6);  // adjacent, not flung apart
}

TEST(Placer, SymmetryPairAlignedInY) {
  PlacerOptions opt;
  opt.iterations = 6000;
  const AnnealingPlacer placer(opt);
  const std::vector<Block> blocks = {
      {"a", 1e-6, 1e-6}, {"b", 1e-6, 1e-6}, {"c", 2e-6, 2e-6}};
  const PlacementResult r = placer.place(blocks, {}, {SymmetryPair{0, 1}});
  ASSERT_TRUE(r.legal);
  EXPECT_NEAR(r.blocks[0].y, r.blocks[1].y, 1e-12);
  // Pair members are mirrored relative to each other.
  EXPECT_NE(r.blocks[0].mirrored, r.blocks[1].mirrored);
}

TEST(Placer, ValidatesInputs) {
  const AnnealingPlacer placer;
  EXPECT_THROW(placer.place({}, {}, {}), InvalidArgumentError);
  PlacementNet bad;
  bad.name = "n";
  bad.pins = {{5, 0, 0}};
  EXPECT_THROW(placer.place({{"a", 1e-6, 1e-6}}, {bad}, {}),
               InvalidArgumentError);
  EXPECT_THROW(placer.place({{"a", 1e-6, 1e-6}}, {}, {SymmetryPair{0, 0}}),
               InvalidArgumentError);
}

TEST(Placer, DeterministicForFixedSeed) {
  PlacerOptions opt;
  opt.iterations = 2000;
  opt.seed = 123;
  const AnnealingPlacer placer(opt);
  const std::vector<Block> blocks = {
      {"a", 2e-6, 1e-6}, {"b", 1e-6, 2e-6}, {"c", 1.5e-6, 1.5e-6}};
  const PlacementResult r1 = placer.place(blocks, {}, {});
  const PlacementResult r2 = placer.place(blocks, {}, {});
  EXPECT_DOUBLE_EQ(r1.width, r2.width);
  EXPECT_DOUBLE_EQ(r1.height, r2.height);
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.blocks[i].x, r2.blocks[i].x);
    EXPECT_DOUBLE_EQ(r1.blocks[i].y, r2.blocks[i].y);
  }
}

// Property: the placer stays legal across seeds and block counts.
class PlacerRandom : public ::testing::TestWithParam<int> {};

TEST_P(PlacerRandom, AlwaysLegal) {
  Rng rng(static_cast<std::uint64_t>(1000 + GetParam()));
  const int n = 2 + GetParam() % 7;
  std::vector<Block> blocks;
  for (int i = 0; i < n; ++i) {
    blocks.push_back(Block{"b" + std::to_string(i), rng.uniform(0.5e-6, 4e-6),
                           rng.uniform(0.5e-6, 4e-6)});
  }
  PlacerOptions opt;
  opt.iterations = 1500;
  opt.seed = static_cast<std::uint64_t>(GetParam());
  const AnnealingPlacer placer(opt);
  const PlacementResult r = placer.place(blocks, {}, {});
  EXPECT_TRUE(r.legal);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlacerRandom, ::testing::Range(1, 13));

}  // namespace
}  // namespace olp::place

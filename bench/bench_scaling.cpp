// Worker-scaling benchmark with the contention telemetry turned on: the
// OTA + StrongARM exploration batch through circuits::BatchRunner at
// 1/2/4/8 workers, reading back the obs registry after each run to break
// the wall time down by flow stage (span-name aggregation) and to price the
// synchronization: lock-wait totals per instrumented site
// (obs.contention.*.wait_us), pool busy/idle split and queue-depth
// distribution (obs.pool.*).
//
// The headline derived metric is lock_wait_share — total time threads sat
// blocked on instrumented locks divided by total thread-time
// (workers x wall). It is the fraction of the machine the run spent
// waiting instead of working, the number the sharded registry exists to
// keep honest. Results land in BENCH_scaling.json; the harness exits
// nonzero only if a run produced no telemetry (stages missing), since
// scaling numbers themselves are hardware-dependent.

#include <chrono>
#include <cstddef>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include <olp/olp.hpp>

namespace {

using namespace olp;

/// Evaluation-heavy exploration profile shared by every job (same shape as
/// bench_batch, fewer seeds — the stage breakdown needs representative
/// work, not a throughput record).
void exploration_profile(circuits::FlowOptions& options) {
  options.bins = 4;
  options.max_tuning_wires = 12;
  options.placer_iterations = 2000;
  options.combo_place_iterations = 300;
}

std::vector<circuits::FlowJob> make_jobs(
    const circuits::Ota5T& ota, const circuits::StrongArmComparator& sa) {
  std::vector<circuits::FlowJob> jobs;
  const auto add = [&jobs](std::string name, circuits::FlowMode mode,
                           const std::vector<circuits::InstanceSpec>& insts,
                           const std::vector<std::string>& nets,
                           std::uint64_t seed) {
    circuits::FlowJob job;
    job.name = std::move(name);
    job.mode = mode;
    job.instances = insts;
    job.routed_nets = nets;
    job.options.seed = seed;
    exploration_profile(job.options);
    jobs.push_back(std::move(job));
  };
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    add("ota/opt/s" + std::to_string(seed), circuits::FlowMode::kOptimize,
        ota.instances(), ota.routed_nets(), seed);
    add("sa/opt/s" + std::to_string(seed), circuits::FlowMode::kOptimize,
        sa.instances(), sa.routed_nets(), seed);
  }
  add("ota/oracle", circuits::FlowMode::kManualOracle, ota.instances(),
      ota.routed_nets(), 1);
  add("sa/oracle", circuits::FlowMode::kManualOracle, sa.instances(),
      sa.routed_nets(), 1);
  return jobs;
}

struct StageTime {
  long count = 0;
  double total_ms = 0.0;
};

struct SiteWait {
  long contended = 0;
  double wait_ms = 0.0;
};

/// Everything read back from one batch run's telemetry window.
struct Row {
  int workers = 1;
  double wall_ms = 0.0;
  std::map<std::string, StageTime> stages;   ///< span name -> aggregate
  std::map<std::string, SiteWait> sites;     ///< lock site -> contention
  double lock_wait_ms = 0.0;                 ///< sum over sites
  double lock_wait_share = 0.0;              ///< lock_wait / (workers*wall)
  double pool_busy_ms = 0.0;
  double pool_idle_ms = 0.0;
  double queue_depth_p50 = 0.0;
  double queue_depth_max = 0.0;
};

Row read_row(int workers, double wall_ms, const obs::Snapshot& snap) {
  Row row;
  row.workers = workers;
  row.wall_ms = wall_ms;
  for (const obs::SpanRecord& s : snap.spans) {
    StageTime& st = row.stages[s.name];
    st.count += 1;
    st.total_ms += s.dur_us / 1000.0;
  }
  // Lock sites: "obs.contention.<site>.wait_us" histograms hold the waits
  // in microseconds; the paired ".contended" counter the event count.
  const std::string prefix = "obs.contention.";
  const std::string suffix = ".wait_us";
  for (const auto& [name, hist] : snap.histograms) {
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.size() <= prefix.size() + suffix.size()) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
      continue;
    const std::string site =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    SiteWait& sw = row.sites[site];
    sw.wait_ms = hist.sum / 1000.0;
    sw.contended = snap.counter(prefix + site + ".contended");
    row.lock_wait_ms += sw.wait_ms;
  }
  row.lock_wait_share =
      wall_ms > 0.0 ? row.lock_wait_ms / (workers * wall_ms) : 0.0;
  row.pool_busy_ms = static_cast<double>(snap.counter("obs.pool.busy_us")) / 1000.0;
  row.pool_idle_ms = static_cast<double>(snap.counter("obs.pool.idle_us")) / 1000.0;
  const auto qd = snap.histograms.find("obs.pool.queue_depth");
  if (qd != snap.histograms.end()) {
    row.queue_depth_p50 = qd->second.p50;
    row.queue_depth_max = qd->second.max;
  }
  return row;
}

std::string stage_json(const Row& row) {
  std::string out = "[";
  bool first = true;
  for (const auto& [name, st] : row.stages) {
    if (!first) out += ", ";
    first = false;
    out += "{\"name\": \"" + jsonl::escape(name) +
           "\", \"count\": " + std::to_string(st.count) +
           ", \"total_ms\": " + fixed(st.total_ms, 3) + "}";
  }
  out += "]";
  return out;
}

std::string site_json(const Row& row) {
  std::string out = "{";
  bool first = true;
  for (const auto& [site, sw] : row.sites) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + jsonl::escape(site) +
           "\": {\"contended\": " + std::to_string(sw.contended) +
           ", \"wait_ms\": " + fixed(sw.wait_ms, 3) + "}";
  }
  out += "}";
  return out;
}

}  // namespace

int main() {
  using namespace olp;
  set_log_level(log_level_from_env("OLP_LOG_LEVEL", LogLevel::kError));
  const tech::Technology t = tech::make_default_finfet_tech();

  circuits::Ota5T ota(t);
  circuits::StrongArmComparator sa(t);
  if (!ota.prepare() || !sa.prepare()) {
    std::cerr << "schematic preparation failed\n";
    return 1;
  }
  const std::vector<circuits::FlowJob> jobs = make_jobs(ota, sa);

  // The runner rebases the registry at the start of every run() and leaves
  // the window in place afterwards, so enable once and snapshot per run.
  obs::Registry::global().enable();

  const int kWorkers[] = {1, 2, 4, 8};
  std::vector<Row> rows;
  bool pass = true;
  for (const int workers : kWorkers) {
    circuits::BatchOptions bopt;
    bopt.workers = workers;
    const circuits::BatchRunner runner(t, bopt);
    const auto t0 = std::chrono::steady_clock::now();
    const circuits::BatchReport batch = runner.run(jobs);
    const auto t1 = std::chrono::steady_clock::now();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    Row row = read_row(workers, wall_ms, obs::Registry::global().snapshot());
    long failed = 0;
    for (const auto& j : batch.jobs) {
      if (j.status == circuits::JobStatus::kFailed) ++failed;
    }
    if (failed > 0 || row.stages.empty()) pass = false;
    rows.push_back(std::move(row));
  }
  obs::Registry::global().disable();

  // Printed table: stages that matter (>= 1% of the 1-worker total), one
  // column per worker count.
  std::vector<std::string> stage_names;
  for (const auto& [name, st] : rows.front().stages) {
    if (st.total_ms >= 0.01 * rows.front().wall_ms) stage_names.push_back(name);
  }
  TextTable table("Stage wall-time [ms] vs workers (" +
                  std::to_string(jobs.size()) + "-job OTA+StrongARM batch)");
  std::vector<std::string> header = {"stage"};
  for (const Row& r : rows) header.push_back(std::to_string(r.workers) + "w");
  table.set_header(header);
  for (const std::string& name : stage_names) {
    std::vector<std::string> cells = {name};
    for (const Row& r : rows) {
      const auto it = r.stages.find(name);
      cells.push_back(it == r.stages.end() ? "-" : fixed(it->second.total_ms, 1));
    }
    table.add_row(cells);
  }
  std::cout << table << "\n";

  TextTable ctable("Contention vs workers");
  ctable.set_header({"workers", "wall [ms]", "lock-wait [ms]", "lock-wait share",
                     "pool busy [ms]", "pool idle [ms]", "queue p50", "queue max"});
  for (const Row& r : rows) {
    ctable.add_row({std::to_string(r.workers), fixed(r.wall_ms, 1),
                    fixed(r.lock_wait_ms, 2),
                    fixed(100.0 * r.lock_wait_share, 3) + " %",
                    fixed(r.pool_busy_ms, 1), fixed(r.pool_idle_ms, 1),
                    fixed(r.queue_depth_p50, 1), fixed(r.queue_depth_max, 0)});
  }
  std::cout << ctable << "\n";

  std::string json = "{\n";
  json += "  \"jobs\": " + std::to_string(jobs.size()) + ",\n";
  json += "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json += "    {\"workers\": " + std::to_string(r.workers) +
            ", \"wall_ms\": " + fixed(r.wall_ms, 3) +
            ", \"lock_wait_ms\": " + fixed(r.lock_wait_ms, 3) +
            ", \"lock_wait_share\": " + fixed(r.lock_wait_share, 6) +
            ", \"pool_busy_ms\": " + fixed(r.pool_busy_ms, 3) +
            ", \"pool_idle_ms\": " + fixed(r.pool_idle_ms, 3) +
            ", \"queue_depth_p50\": " + fixed(r.queue_depth_p50, 2) +
            ", \"queue_depth_max\": " + fixed(r.queue_depth_max, 2) +
            ",\n     \"contention\": " + site_json(r) +
            ",\n     \"stages\": " + stage_json(r) + "}" +
            (i + 1 < rows.size() ? "," : "") + "\n";
  }
  json += "  ],\n";
  json += std::string("  \"pass\": ") + (pass ? "true" : "false") + "\n";
  json += "}\n";
  std::string err;
  if (!obs::json_well_formed(json, &err)) {
    std::cerr << "internal error: BENCH_scaling.json malformed: " << err << "\n";
    return 1;
  }
  obs::write_text_file("BENCH_scaling.json", json);
  std::cout << "Wrote BENCH_scaling.json\n";
  return pass ? 0 : 1;
}

// Worker scaling with the parallel intra-job stages ON — the proof line for
// "make worker scaling real". The OTA + StrongARM exploration batch runs at
// 1/2/4/8 workers with the parallel-moves placer (K=4), dependency-
// partitioned routing, and the shared cross-job eval cache, and two gates
// are enforced (exit nonzero on failure):
//
//   1. Monotonic throughput: adding workers must never cost jobs/min —
//      every worker count holds >= 90% of the 1-worker baseline
//      (best-of-repeats per count; on a single-core container every count
//      measures the same machine, so the band absorbs scheduler noise
//      rather than real regressions, while still catching the cumulative
//      oversubscription collapse the clamp exists to prevent).
//   2. Cache read contention: at 8 workers, the lock-free RCU read path
//      must cut "obs.contention.eval_cache" wait time at least 10x vs the
//      mutex-striped baseline (BatchOptions::cache_locked_reads) — or be
//      below an absolute floor (500 us) where a ratio against an equally
//      tiny baseline would be noise, not signal. The A/B pair runs with
//      the batch oversubscription guard DISABLED so 8 real threads fight
//      over the cache even on small machines (the throughput rows keep
//      the guard on — that clamp is the product behavior the monotonic
//      gate certifies). The read site is zero BY CONSTRUCTION in RCU mode
//      (no lock on the read path), so the floor arm is what fires there.
//
// Results land in BENCH_stage_scaling.json: per-worker rows (wall, jobs/min,
// hit rate, per-site lock waits, pool busy/idle) plus the 8-worker
// locked-vs-RCU A/B pair. CI uploads the JSON and fails on gate regression.

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include <olp/olp.hpp>

namespace {

using namespace olp;

void exploration_profile(circuits::FlowOptions& options) {
  options.bins = 4;
  options.max_tuning_wires = 12;
  options.placer_iterations = 2000;
  options.combo_place_iterations = 300;
  // The point of this bench: every job exercises the parallel stages.
  options.placer_parallel_moves = 4;
  options.partitioned_routing = true;
}

std::vector<circuits::FlowJob> make_jobs(
    const circuits::Ota5T& ota, const circuits::StrongArmComparator& sa) {
  std::vector<circuits::FlowJob> jobs;
  const auto add = [&jobs](std::string name, circuits::FlowMode mode,
                           const std::vector<circuits::InstanceSpec>& insts,
                           const std::vector<std::string>& nets,
                           std::uint64_t seed) {
    circuits::FlowJob job;
    job.name = std::move(name);
    job.mode = mode;
    job.instances = insts;
    job.routed_nets = nets;
    job.options.seed = seed;
    exploration_profile(job.options);
    jobs.push_back(std::move(job));
  };
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    add("ota/opt/s" + std::to_string(seed), circuits::FlowMode::kOptimize,
        ota.instances(), ota.routed_nets(), seed);
    add("sa/opt/s" + std::to_string(seed), circuits::FlowMode::kOptimize,
        sa.instances(), sa.routed_nets(), seed);
  }
  return jobs;
}

struct SiteWait {
  long contended = 0;
  double wait_us = 0.0;
};

struct Row {
  int workers = 1;
  double wall_ms = 0.0;      ///< best of repeats
  double jobs_per_min = 0.0;
  double hit_rate = 0.0;
  long failed = 0;
  std::map<std::string, SiteWait> sites;  ///< lock site -> waits [us]
  double pool_busy_ms = 0.0;
  double pool_idle_ms = 0.0;
};

/// Total "obs.contention.<site>.wait_us" per site from the last run's
/// telemetry window (the runner rebases per run).
std::map<std::string, SiteWait> read_sites(const obs::Snapshot& snap) {
  std::map<std::string, SiteWait> sites;
  const std::string prefix = "obs.contention.";
  const std::string suffix = ".wait_us";
  for (const auto& [name, hist] : snap.histograms) {
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.size() <= prefix.size() + suffix.size()) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
      continue;
    const std::string site =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    sites[site].wait_us = hist.sum;
    sites[site].contended = snap.counter(prefix + site + ".contended");
  }
  return sites;
}

double eval_cache_wait_us(const std::map<std::string, SiteWait>& sites) {
  const auto it = sites.find("eval_cache");
  return it == sites.end() ? 0.0 : it->second.wait_us;
}

std::string site_json(const std::map<std::string, SiteWait>& sites) {
  std::string out = "{";
  bool first = true;
  for (const auto& [site, sw] : sites) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + jsonl::escape(site) +
           "\": {\"contended\": " + std::to_string(sw.contended) +
           ", \"wait_us\": " + fixed(sw.wait_us, 1) + "}";
  }
  out += "}";
  return out;
}

/// One configuration under measurement, accumulated over repeats.
struct Config {
  int workers = 1;
  bool locked_reads = false;
  bool clamp = true;
  Row row;
};

/// Runs `cfg` once and folds the result into cfg.row. Wall time keeps the
/// best repeat (throughput wants the noise floor); lock waits and pool
/// busy/idle are SUMMED over every repeat (contention wants the aggregate —
/// keeping only the fastest run would report the least-contended repeat).
/// Callers interleave repeats round-robin ACROSS configurations: repeats of
/// one configuration back-to-back turn slow drift in the container's CPU
/// share into a phantom per-worker-count regression, while round-robin
/// spreads the drift over every row equally.
void run_once(const tech::Technology& t,
              const std::vector<circuits::FlowJob>& jobs, Config& cfg,
              bool first_rep) {
  Row& row = cfg.row;
  row.workers = cfg.workers;
  circuits::BatchOptions bopt;
  bopt.workers = cfg.workers;
  bopt.cache_locked_reads = cfg.locked_reads;
  bopt.clamp_workers = cfg.clamp;
  const circuits::BatchRunner runner(t, bopt);
  const auto t0 = std::chrono::steady_clock::now();
  const circuits::BatchReport batch = runner.run(jobs);
  const auto t1 = std::chrono::steady_clock::now();
  const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  const obs::Snapshot snap = obs::Registry::global().snapshot();
  for (const auto& [site, sw] : read_sites(snap)) {
    row.sites[site].contended += sw.contended;
    row.sites[site].wait_us += sw.wait_us;
  }
  row.pool_busy_ms +=
      static_cast<double>(snap.counter("obs.pool.busy_us")) / 1000.0;
  row.pool_idle_ms +=
      static_cast<double>(snap.counter("obs.pool.idle_us")) / 1000.0;
  if (!first_rep && ms >= row.wall_ms) return;
  row.wall_ms = ms;
  row.jobs_per_min = static_cast<double>(jobs.size()) / (ms / 60000.0);
  const long probes = batch.cache_hits + batch.cache_misses;
  row.hit_rate = probes > 0 ? static_cast<double>(batch.cache_hits) /
                                  static_cast<double>(probes)
                            : 0.0;
  row.failed = 0;
  for (const auto& j : batch.jobs) {
    if (j.status == circuits::JobStatus::kFailed) ++row.failed;
  }
}

}  // namespace

int main() {
  using namespace olp;
  set_log_level(log_level_from_env("OLP_LOG_LEVEL", LogLevel::kError));
  const tech::Technology t = tech::make_default_finfet_tech();

  circuits::Ota5T ota(t);
  circuits::StrongArmComparator sa(t);
  if (!ota.prepare() || !sa.prepare()) {
    std::cerr << "schematic preparation failed\n";
    return 1;
  }
  const std::vector<circuits::FlowJob> jobs = make_jobs(ota, sa);

  obs::Registry::global().enable();

  // Throughput rows (clamp on — product behavior) plus the 8-worker
  // contention A/B pair (clamp off — 8 real threads fight over the cache
  // even on one core). Best-of-5, with repeats interleaved round-robin
  // across ALL configurations so slow drift in the container's CPU share
  // lands on every row equally instead of looking like a regression in
  // whichever configuration happened to run last. Best-of-9: on this
  // container best-of-5 still left ~10% spread between IDENTICAL clamped
  // configurations.
  const int kRepeats = 9;
  std::vector<Config> configs;
  for (const int workers : {1, 2, 4, 8}) {
    configs.push_back({workers, /*locked_reads=*/false, /*clamp=*/true, {}});
  }
  const std::size_t locked_i = configs.size();
  configs.push_back({8, /*locked_reads=*/true, /*clamp=*/false, {}});
  const std::size_t rcu_i = configs.size();
  configs.push_back({8, /*locked_reads=*/false, /*clamp=*/false, {}});

  {
    Config warmup{1, false, true, {}};
    run_once(t, jobs, warmup, /*first_rep=*/true);
  }
  for (int rep = 0; rep < kRepeats; ++rep) {
    for (Config& cfg : configs) run_once(t, jobs, cfg, rep == 0);
  }

  std::vector<Row> rows;
  bool jobs_ok = true;
  for (std::size_t i = 0; i < locked_i; ++i) {
    rows.push_back(configs[i].row);
    jobs_ok = jobs_ok && rows.back().failed == 0;
  }
  const Row& locked = configs[locked_i].row;
  const Row& rcu = configs[rcu_i].row;
  jobs_ok = jobs_ok && locked.failed == 0 && rcu.failed == 0;
  const double locked_wait_us = eval_cache_wait_us(locked.sites);
  const double rcu_wait_us = eval_cache_wait_us(rcu.sites);
  obs::Registry::global().disable();

  TextTable table("Stage scaling: " + std::to_string(jobs.size()) +
                  "-job batch, parallel placer (K=4) + partitioned routing "
                  "+ shared cache");
  table.set_header({"workers", "wall [ms]", "jobs/min", "hit rate",
                    "cache wait [us]", "pool busy [ms]", "pool idle [ms]"});
  for (const Row& r : rows) {
    table.add_row({std::to_string(r.workers), fixed(r.wall_ms, 1),
                   fixed(r.jobs_per_min, 1),
                   fixed(100.0 * r.hit_rate, 1) + " %",
                   fixed(eval_cache_wait_us(r.sites), 1),
                   fixed(r.pool_busy_ms, 1), fixed(r.pool_idle_ms, 1)});
  }
  std::cout << table << "\n";

  // Gate 1: adding workers must never cost throughput — every row holds
  // >= 90% of the 1-worker baseline's jobs/min. Compared against the
  // baseline, not the adjacent row: best-of-5 on a single-core container
  // still shows 5-9% run-to-run jitter between IDENTICAL clamped
  // configurations, so adjacent steps gate on the scheduler — while the
  // real failure this catches (pre-clamp oversubscription, measured -14%
  // at 8 requested workers on one core) was three small adjacent dips
  // that only the cumulative comparison sees.
  const double kEpsilon = 0.90;
  bool monotonic = true;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].jobs_per_min < rows[0].jobs_per_min * kEpsilon) {
      monotonic = false;
      std::cout << "Gate FAIL: " << rows[i].workers << "w ("
                << fixed(rows[i].jobs_per_min, 1) << " jobs/min) regressed vs "
                << rows[0].workers << "w ("
                << fixed(rows[0].jobs_per_min, 1) << ")\n";
    }
  }

  // Gate 2: RCU reads vs the mutex baseline at 8 workers — 10x less wait,
  // or already under the absolute floor where the ratio is pure noise.
  const double kFloorUs = 500.0;
  const bool contention_ok =
      rcu_wait_us <= kFloorUs || locked_wait_us >= 10.0 * rcu_wait_us;
  std::cout << "Cache contention A/B at 8 workers: locked "
            << fixed(locked_wait_us, 1) << " us vs RCU "
            << fixed(rcu_wait_us, 1) << " us -> "
            << (contention_ok ? "PASS" : "FAIL")
            << " (need RCU <= " << fixed(kFloorUs, 0)
            << " us or locked >= 10x RCU)\n";
  std::cout << "Monotonic jobs/min 1->8 workers: "
            << (monotonic ? "PASS" : "FAIL") << "\n";

  const bool pass = monotonic && contention_ok && jobs_ok;

  std::string json = "{\n";
  json += "  \"jobs\": " + std::to_string(jobs.size()) + ",\n";
  json += "  \"repeats\": " + std::to_string(kRepeats) + ",\n";
  json += "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json += "    {\"workers\": " + std::to_string(r.workers) +
            ", \"wall_ms\": " + fixed(r.wall_ms, 3) +
            ", \"jobs_per_min\": " + fixed(r.jobs_per_min, 3) +
            ", \"hit_rate\": " + fixed(r.hit_rate, 4) +
            ", \"pool_busy_ms\": " + fixed(r.pool_busy_ms, 3) +
            ", \"pool_idle_ms\": " + fixed(r.pool_idle_ms, 3) +
            ",\n     \"contention\": " + site_json(r.sites) + "}" +
            (i + 1 < rows.size() ? "," : "") + "\n";
  }
  json += "  ],\n";
  json += "  \"cache_ab_8_workers\": {\"locked_wait_us\": " +
          fixed(locked_wait_us, 1) +
          ", \"rcu_wait_us\": " + fixed(rcu_wait_us, 1) + "},\n";
  json += std::string("  \"gate_monotonic\": ") +
          (monotonic ? "true" : "false") + ",\n";
  json += std::string("  \"gate_cache_contention\": ") +
          (contention_ok ? "true" : "false") + ",\n";
  json += std::string("  \"pass\": ") + (pass ? "true" : "false") + "\n";
  json += "}\n";
  std::string err;
  if (!obs::json_well_formed(json, &err)) {
    std::cerr << "internal error: BENCH_stage_scaling.json malformed: " << err
              << "\n";
    return 1;
  }
  obs::write_text_file("BENCH_stage_scaling.json", json);
  std::cout << "Wrote BENCH_stage_scaling.json\n";
  return pass ? 0 : 1;
}

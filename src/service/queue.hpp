#pragma once
// Admission-controlled fair-share queue for the resident layout service.
//
// Two bounds shed load BEFORE work is accepted (reject-with-reason, never
// crash, never block the intake thread):
//
//   max_depth       total queued items across all clients — the service's
//                   global backlog bound.
//   max_per_client  queued items any single client may hold — one noisy
//                   client fills its own quota and gets kClientQuota while
//                   everyone else keeps being admitted.
//
// Scheduling is round-robin across clients: workers take one item from each
// client in turn (clients ordered by name, cursor remembered across takes),
// so a client submitting 100 jobs and a client submitting 1 interleave
// 1:1 — wait time is proportional to YOUR backlog, not the queue's. Within
// one client, higher `priority` first, then FIFO by admission ticket.
//
// close() wakes every blocked take() (returns false); offer() after close
// sheds with kDraining.

#include <condition_variable>
#include <cstddef>
#include <map>
#include <mutex>
#include <set>
#include <string>

#include "service/request.hpp"

namespace olp::service {

struct QueueOptions {
  std::size_t max_depth = 64;      ///< total queued items (0 = unbounded)
  std::size_t max_per_client = 16; ///< per-client bound (0 = unbounded)
};

/// One queued submission (the request plus admission bookkeeping).
struct QueuedJob {
  ServiceRequest request;
  std::uint64_t ticket = 0;  ///< admission order, for FIFO within priority
  double admitted_s = 0.0;   ///< service-clock time of admission
};

class AdmissionQueue {
 public:
  explicit AdmissionQueue(QueueOptions options = {});

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Admits or sheds. kNone = admitted; kQueueFull / kClientQuota /
  /// kDraining name why the item was refused. Never blocks.
  RejectReason offer(QueuedJob job);

  /// Blocks until an item is available (fair-share pick, see file comment)
  /// or the queue is closed AND empty — then returns false. Closing with
  /// items still queued lets workers drain them first.
  bool take(QueuedJob* out);

  /// Stops admission (offers shed with kDraining) and wakes blocked takers.
  /// Already-queued items remain takeable; take() returns false only once
  /// the queue is empty.
  void close();

  /// Drops every queued item (used by fast shutdown). Returns how many were
  /// dropped.
  std::size_t clear();

  std::size_t depth() const;
  bool closed() const;
  /// Total items ever admitted / shed (by reason) — monotone counters.
  long admitted() const;
  long shed(RejectReason reason) const;
  long shed_total() const;

 private:
  /// Per-client queue ordered by (-priority, ticket): highest priority
  /// first, FIFO within equal priority.
  using ClientQueue = std::map<std::pair<int, std::uint64_t>, QueuedJob>;

  QueueOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool closed_ = false;
  std::size_t depth_ = 0;
  std::map<std::string, ClientQueue> clients_;
  /// Name of the client AFTER which the round-robin cursor resumes.
  std::string cursor_;
  long admitted_ = 0;
  std::map<int, long> shed_;  ///< RejectReason -> count
};

}  // namespace olp::service

#include "core/eval_cache.hpp"

#include <cstdio>
#include <functional>

#include "tech/technology.hpp"

namespace olp::core {

namespace {

void append_double(std::string& out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out += buf;
  out += ';';
}

void append_long(std::string& out, long value) {
  out += std::to_string(value);
  out += ';';
}

void append_str(std::string& out, const std::string& value) {
  out += value;
  out += ';';
}

void append_model(std::string& out, const spice::MosModel& m) {
  append_str(out, m.name);
  append_long(out, static_cast<long>(m.type));
  append_double(out, m.vth0);
  append_double(out, m.nslope);
  append_double(out, m.kp);
  append_double(out, m.lambda);
  append_double(out, m.lref);
  append_double(out, m.vt_thermal);
  append_double(out, m.cox);
  append_double(out, m.cov);
  append_double(out, m.cj);
  append_double(out, m.cjsw);
  append_double(out, m.avt);
}

}  // namespace

EvalCache::EvalCache(std::size_t shards)
    : shards_(shards == 0 ? 1 : shards) {}

std::string EvalCache::make_key(const pcell::PrimitiveLayout& layout,
                                const EvalCondition& condition,
                                const BiasContext& bias,
                                const spice::MosModel& nmos,
                                const spice::MosModel& pmos) {
  std::string key;
  key.reserve(256);

  // Netlist identity. Layout generation is deterministic in (netlist,
  // config), so these two sections pin down the realized geometry, the
  // parasitic annotation and the LDE shifts without walking the geometry.
  const pcell::PrimitiveNetlist& nl = layout.netlist;
  key += "n:";
  append_long(key, static_cast<long>(nl.type));
  append_str(key, nl.name);
  for (const pcell::LogicalDevice& dev : nl.devices) {
    append_str(key, dev.name);
    append_long(key, static_cast<long>(dev.mos_type));
    append_str(key, dev.drain_net);
    append_str(key, dev.gate_net);
    append_str(key, dev.source_net);
    append_long(key, dev.unit_ratio);
    append_long(key, dev.match_group);
    append_double(key, dev.vth_offset);
  }

  // Layout configuration (explicit fields; robust against to_string drift).
  const pcell::LayoutConfig& cfg = layout.config;
  key += "c:";
  append_long(key, cfg.nfin);
  append_long(key, cfg.nf);
  append_long(key, cfg.m);
  append_long(key, static_cast<long>(cfg.pattern));
  append_long(key, cfg.dummies ? 1 : 0);

  // Evaluation condition. Maps iterate in key order, so serialization is
  // canonical.
  key += "e:";
  append_long(key, condition.ideal ? 1 : 0);
  for (const auto& [terminal, wires] : condition.tuning) {
    append_str(key, terminal);
    append_long(key, wires);
  }
  key += "w:";
  for (const auto& [port, rc] : condition.port_wires) {
    append_str(key, port);
    append_double(key, rc.resistance);
    append_double(key, rc.capacitance);
  }
  key += "d:";
  for (const auto& [device, dvth] : condition.extra_dvth) {
    append_str(key, device);
    append_double(key, dvth);
  }

  // Bias context.
  key += "b:";
  append_double(key, bias.vdd);
  append_double(key, bias.bias_current);
  for (const auto& [port, v] : bias.port_voltage) {
    append_str(key, port);
    append_double(key, v);
  }
  key += "l:";
  for (const auto& [port, c] : bias.port_load_cap) {
    append_str(key, port);
    append_double(key, c);
  }

  // Model cards.
  key += "m:";
  append_model(key, nmos);
  append_model(key, pmos);
  return key;
}

std::string EvalCache::scope_key(const tech::Technology& technology,
                                 const spice::MosModel& nmos,
                                 const spice::MosModel& pmos) {
  std::string key;
  key.reserve(256);
  // Technology identity: the name plus the physical parameters that shape
  // generated layouts, parasitic annotation and LDE shifts. Two techs that
  // differ in any of these must not share evaluations.
  key += "t:";
  append_str(key, technology.name);
  append_double(key, technology.fin_pitch);
  append_double(key, technology.poly_pitch);
  append_double(key, technology.fin_width_eff);
  append_double(key, technology.gate_length);
  append_double(key, technology.diff_extension);
  append_double(key, technology.row_height);
  append_double(key, technology.diff_cont_res);
  append_double(key, technology.diff_sheet_res);
  append_double(key, technology.poly_res_sheet);
  append_double(key, technology.poly_res_cap);
  append_double(key, technology.via_res);
  append_double(key, technology.via_cap);
  append_double(key, technology.vdd);
  key += "m:";
  append_model(key, nmos);
  append_model(key, pmos);
  return key;
}

EvalCache::Shard& EvalCache::shard_for(const std::string& key) {
  const std::size_t h = std::hash<std::string>{}(key);
  return shards_[h % shards_.size()];
}

bool EvalCache::lookup(const std::string& key, MetricValues* values,
                       int client) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  if (client >= 0 && it->second.owner >= 0 && it->second.owner != client) {
    cross_client_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  if (values != nullptr) *values = it->second.values;
  return true;
}

void EvalCache::insert(const std::string& key, const MetricValues& values,
                       int client) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.map.emplace(key, Entry{values, client});
}

EvalCacheStats EvalCache::stats() const {
  EvalCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.cross_client_hits = cross_client_hits_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    s.entries += static_cast<long>(shard.map.size());
  }
  return s;
}

void EvalCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  cross_client_hits_.store(0, std::memory_order_relaxed);
}

}  // namespace olp::core

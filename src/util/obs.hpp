#pragma once
// Flow-wide observability: RAII scoped spans, monotonic counters, value
// distributions and fixed-bucket histograms in a process-wide registry.
//
// The registry is disabled by default. Every instrumentation site pays one
// relaxed-atomic load when disabled — no allocation, no clock read, no
// output — and instrumentation only *observes* (it never feeds back into
// flow decisions), so flow results are bit-identical with the registry on
// or off.
//
// Span taxonomy (dotted names, slash-joined into nesting paths):
//   flow.optimize / flow.conventional / flow.manual_oracle   (roots)
//     selection, combo_choice, placement, routing,
//     port_optimization, realization                         (stages)
//   optimizer.evaluate_all, optimizer.tune                   (Algorithm 1)
//   portopt.constraints, portopt.reconcile                   (Algorithm 2)
//   router.net                                               (per net)
//   eval.testbench                                           (per evaluation)
//   sim.op, sim.ac, sim.tran                                 (per analysis)
//
// Sharded, thread-local collection (the scalability model): every thread
// owns one shard — counters, samples, histograms and span records are
// written into the calling thread's shard under a per-shard mutex that the
// owner takes uncontended (plain stores behind a thread-private lock; no
// shared mutex anywhere on the hot path). Shards merge into the central
// registry at span exit (when a thread's open-span stack empties, or its
// closed-span buffer crosses a batch threshold) and at every snapshot
// point, in deterministic order: shards merge in registration order,
// counters/histograms are additive, distribution statistics are computed
// over sorted samples, and span records are globally ordered by their
// atomically-assigned open id — so the merged snapshot is independent of
// merge timing. Span ids come from one atomic counter, which keeps parent
// links valid across shards without any central lock at open time.
//
// TaskPool propagates a ThreadContext from the submitting thread to its
// workers, making worker spans nest under the submitting span. Threads can
// be named (set_thread_name) and every span carries its thread's tid, so
// Chrome-trace exports show per-thread lanes with readable names.
//
// Contention instrumentation: timed_lock()/timed_relock() wrap a mutex
// acquisition with a try-lock fast path; only a *contended* acquisition
// reads the clock and records into the "obs.contention.<site>" counter
// (contended acquisitions) and histogram (wait microseconds) families.
//
// The disabled fast path is still one relaxed atomic load. Collected data
// stays readable after disable(), until the next enable()/rebase().

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

namespace olp::obs {

/// One closed (or still-open) scoped span.
struct SpanRecord {
  std::uint64_t id = 0;      ///< 1-based, in open order
  std::uint64_t parent = 0;  ///< id of the enclosing span; 0 = root
  int depth = 0;             ///< nesting depth (0 = root)
  int tid = 1;               ///< registry thread id (see set_thread_name)
  std::string name;          ///< taxonomy name, e.g. "sim.op"
  std::string detail;        ///< free-form context, e.g. the net name
  std::int64_t start_us = 0; ///< wall-clock start, relative to enable()
  std::int64_t dur_us = 0;   ///< wall-clock duration
  bool open = false;         ///< still open when the snapshot was taken
};

/// Order statistics of one value distribution (nearest-rank percentiles,
/// exact — computed from the full sample set).
struct DistributionStats {
  long count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
};

/// Summary of one fixed-bucket histogram (see LatencyHistogram): exact
/// count/sum/min/max, bucket-interpolated quantiles, and the nonzero
/// buckets as (index, count) pairs.
struct HistogramStats {
  long count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  std::vector<std::pair<int, long>> buckets;  ///< nonzero (index, count)
};

/// Bounded-memory value histogram with a fixed logarithmic bucket layout:
/// bucket 0 holds values <= 1e-3 (including zero and negatives), buckets
/// 1..62 are base-2 geometric — bucket i covers (1e-3 * 2^(i-1),
/// 1e-3 * 2^i] — and bucket 63 is the overflow. The layout spans ~1e-3 to
/// ~4.6e15 in whatever unit the caller records (the service records
/// milliseconds, contention sites record microseconds), so quantile
/// estimates carry at most one-bucket (2x) relative error, refined by
/// linear interpolation within the bucket and clamped to the exact
/// observed [min, max]. Merging is bucket-wise addition, so shard merges
/// commute and the merged histogram is independent of merge order.
///
/// Not internally synchronized: callers hold their own lock (the registry
/// keeps one per shard; ServiceStats aggregates under the service mutex).
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 64;

  void record(double value);
  void merge(const LatencyHistogram& other);
  long count() const { return count_; }
  double sum() const { return sum_; }

  /// Upper bound of bucket `i` for i in [0, 62]; bucket 63 is unbounded.
  static double bucket_upper(int i);
  /// The bucket record() files `value` under.
  static int bucket_index(double value);

  HistogramStats stats() const;

 private:
  std::array<long, kBuckets> buckets_{};
  long count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// A point-in-time copy of everything the registry collected.
struct Snapshot {
  std::vector<SpanRecord> spans;  ///< ordered by span id (= open order)
  std::map<std::string, long> counters;
  std::map<std::string, DistributionStats> distributions;
  std::map<std::string, HistogramStats> histograms;
  std::map<int, std::string> thread_names;  ///< tid -> name (see set_thread_name)

  long counter(const std::string& name) const {
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }
};

/// Ambient span parentage carried from a submitting thread to pool workers:
/// new top-of-stack spans opened on the receiving thread are parented under
/// `parent_id` (at `depth`), and span_path() prefixes `path`. The epoch tag
/// invalidates a context captured before an enable()/rebase().
struct ThreadContext {
  std::uint64_t epoch = 0;     ///< 0 = no context captured
  std::uint64_t parent_id = 0; ///< span id new roots are parented under
  int depth = 0;               ///< depth assigned to those new roots
  std::string path;            ///< span_path() prefix, e.g. "flow.optimize/selection"
};

/// The process-wide registry. Use the free functions / Span below at
/// instrumentation sites; the registry itself is for enable/export code.
class Registry {
 public:
  static Registry& global();

  /// Clears all collected state (central and every live shard), restarts
  /// the clock and starts collecting.
  void enable();
  /// Stops collecting; collected data stays snapshotable until the next
  /// enable()/rebase().
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// enable() semantics while already enabled: clears collected state and
  /// restarts the clock so the next snapshot covers exactly one unit of
  /// work. The flow entry points call this so every FlowReport carries a
  /// self-contained trace; spans still open across a rebase are orphaned
  /// (their close becomes a no-op — the epoch guard below). No-op when
  /// disabled.
  void rebase();

  // -- Instrumentation backend (call through the free functions below). --
  /// Opens a span in the calling thread's shard; returns the span id as a
  /// close token, or -1 when disabled.
  std::int64_t open_span(const char* name, std::string detail);
  /// Closes the span if `epoch` still matches the open epoch. Must run on
  /// the opening thread (RAII spans always do); a mismatched thread or a
  /// stale epoch makes it a safe no-op.
  void close_span(std::int64_t token, std::uint64_t epoch);
  void add(const char* name, long delta);
  void record(const char* name, double value);
  /// Records into the named fixed-bucket histogram (bounded memory; use
  /// for per-event latencies that would make record() vectors unbounded).
  void record_hist(const char* name, double value);

  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_relaxed);
  }
  /// Current counter value across central state and all shards (0 when
  /// absent).
  long counter(const std::string& name) const;
  /// Slash-joined names of this thread's open span stack (prefixed by any
  /// applied ThreadContext path), e.g. "flow.optimize/routing/router.net";
  /// empty when none. Touches only the calling thread's shard.
  std::string span_path() const;

  /// Names the calling thread in exported traces (Chrome trace "M"
  /// metadata records) — e.g. "pool/worker-3". Thread names are structural
  /// and survive enable()/rebase().
  void set_thread_name(std::string name);

  /// Captures this thread's span position for propagation to pool workers.
  ThreadContext capture_thread_context() const;
  /// Installs / clears the calling thread's ambient context (used by
  /// ThreadContextScope below; stale-epoch contexts are ignored at use).
  void set_thread_context(const ThreadContext& context);
  void clear_thread_context();
  /// The calling thread's raw ambient slot, as set (empty when none).
  ThreadContext ambient_thread_context() const;

  /// Merges every live shard (in registration order) with the central
  /// state into one copy. Open spans are included with their
  /// duration-so-far and open=true. Shards are read, not drained, so
  /// snapshot() is safe to call at any time from any thread.
  Snapshot snapshot() const;

 private:
  struct Shard;

  Registry() = default;

  /// The calling thread's shard, registered with the global registry on
  /// first use and merged+unregistered at thread exit.
  static Shard& shard();

  void register_shard(Shard* s);
  void unregister_shard(Shard* s);
  /// Clears a shard and stamps it with `epoch`. Caller holds s->mu.
  static void reset_shard_locked(Shard& s, std::uint64_t epoch);
  /// Drops stale-epoch shard state. Caller holds s.mu.
  void ensure_current_locked(Shard& s) const;
  /// Merges (and drains) a shard into the central maps. Caller holds BOTH
  /// mu_ and s.mu, in that order.
  void merge_shard_locked(Shard& s);
  /// Lock-ordered flush of the calling thread's shard (mu_ then s.mu).
  void flush_shard(Shard& s);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> epoch_{0};  ///< bumped by enable()/rebase()
  std::atomic<std::uint64_t> next_span_id_{0};  ///< reset by enable()/rebase()
  std::atomic<std::int64_t> t0_us_{0};   ///< steady-clock origin of the epoch
  std::atomic<int> next_tid_{0};

  mutable std::mutex mu_;     ///< guards everything below (never held while
                              ///< taking a shard lock's *owner* path; lock
                              ///< order is always mu_ -> shard.mu)
  std::vector<Shard*> shards_;           ///< live shards, registration order
  std::vector<SpanRecord> spans_;        ///< flushed span records
  std::map<std::string, long> counters_;
  std::map<std::string, std::vector<double>> samples_;
  std::map<std::string, LatencyHistogram> hists_;
  std::map<int, std::string> thread_names_;
};

/// Fast-path enabled check (one relaxed atomic load).
inline bool enabled() { return Registry::global().enabled(); }

/// Bumps a named monotonic counter. `name` must be a literal or otherwise
/// outlive the call; nothing is allocated when disabled.
inline void counter_add(const char* name, long delta = 1) {
  if (enabled()) Registry::global().add(name, delta);
}

/// Records one sample of a named value distribution (exact percentiles,
/// memory grows with the sample count — prefer histogram() for per-event
/// latencies on long-lived processes).
inline void record(const char* name, double value) {
  if (enabled()) Registry::global().record(name, value);
}

/// Records into a named fixed-bucket histogram (bounded memory).
inline void histogram(const char* name, double value) {
  if (enabled()) Registry::global().record_hist(name, value);
}

/// Names the calling thread in exported traces (no-op only in the sense
/// that nothing is exported until the registry is enabled; the name itself
/// is always registered).
inline void set_thread_name(std::string name) {
  Registry::global().set_thread_name(std::move(name));
}

/// One instrumented mutex site: the counter bumped per *contended*
/// acquisition and the histogram of contended wait times in microseconds.
/// Both names must be string literals (they key thread-local shard maps by
/// pointer).
struct LockSite {
  const char* contended;  ///< counter, e.g. "obs.contention.pool.contended"
  const char* wait_us;    ///< histogram, e.g. "obs.contention.pool.wait_us"
};

/// Locks `mu`, attributing contended waits to `site`. The fast path is one
/// try_lock; only a failed try-lock (actual contention) reads the clock,
/// and only while the registry is enabled does it record anything.
inline std::unique_lock<std::mutex> timed_lock(std::mutex& mu,
                                               const LockSite& site) {
  std::unique_lock<std::mutex> lock(mu, std::try_to_lock);
  if (lock.owns_lock()) return lock;
  if (!enabled()) {
    lock.lock();
    return lock;
  }
  const auto t0 = std::chrono::steady_clock::now();
  lock.lock();
  const double wait_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - t0)
          .count();
  Registry::global().add(site.contended, 1);
  Registry::global().record_hist(site.wait_us, wait_us);
  return lock;
}

/// Re-acquires an unlocked unique_lock with the same contention
/// attribution as timed_lock (for worker loops that drop and retake one
/// lock).
inline void timed_relock(std::unique_lock<std::mutex>& lock,
                         const LockSite& site) {
  if (lock.try_lock()) return;
  if (!enabled()) {
    lock.lock();
    return;
  }
  const auto t0 = std::chrono::steady_clock::now();
  lock.lock();
  const double wait_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - t0)
          .count();
  Registry::global().add(site.contended, 1);
  Registry::global().record_hist(site.wait_us, wait_us);
}

/// RAII scoped span. Construction opens, destruction (or close()) closes.
/// The optional detail argument may be a string (copied only when enabled
/// for string literals; a std::string lvalue/temporary is still built by the
/// caller) or a nullary callable returning one — use the callable form when
/// building the detail would allocate, so disabled mode stays allocation-free.
/// A Span must be destroyed on the thread that constructed it (RAII usage
/// guarantees this); the record lives in that thread's shard.
class Span {
 public:
  explicit Span(const char* name) {
    if (enabled()) open(name, std::string());
  }
  template <typename D>
  Span(const char* name, D&& detail) {
    if (!enabled()) return;
    if constexpr (std::is_invocable_v<D>) {
      open(name, std::string(std::forward<D>(detail)()));
    } else {
      open(name, std::string(std::forward<D>(detail)));
    }
  }
  ~Span() { close(); }

  /// Closes the span early (idempotent); used where the enclosing function
  /// must snapshot the registry after the span ends.
  void close() {
    if (token_ < 0) return;
    Registry::global().close_span(token_, epoch_);
    token_ = -1;
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void open(const char* name, std::string detail) {
    epoch_ = Registry::global().epoch();
    token_ = Registry::global().open_span(name, std::move(detail));
  }

  std::int64_t token_ = -1;  ///< -1 = disabled at construction or closed
  std::uint64_t epoch_ = 0;
};

/// Captures the calling thread's span position (free-function shorthand).
inline ThreadContext capture_thread_context() {
  return Registry::global().capture_thread_context();
}

/// RAII scope applying an ambient ThreadContext on a worker thread: spans
/// opened while the scope is active nest under the captured parent, and
/// span_path() is prefixed accordingly. The previous ambient context is
/// restored on destruction (nested pools compose).
class ThreadContextScope {
 public:
  explicit ThreadContextScope(const ThreadContext& context)
      : previous_(capture_ambient()) {
    Registry::global().set_thread_context(context);
  }
  ~ThreadContextScope() { Registry::global().set_thread_context(previous_); }

  ThreadContextScope(const ThreadContextScope&) = delete;
  ThreadContextScope& operator=(const ThreadContextScope&) = delete;

 private:
  static ThreadContext capture_ambient();

  ThreadContext previous_;
};

/// RAII scope: enables the global registry on construction (clearing prior
/// state), disables it on destruction. Collected data remains snapshotable
/// after the scope ends, until the next enable().
class ScopedObservability {
 public:
  ScopedObservability() { Registry::global().enable(); }
  ~ScopedObservability() { Registry::global().disable(); }

  ScopedObservability(const ScopedObservability&) = delete;
  ScopedObservability& operator=(const ScopedObservability&) = delete;
};

}  // namespace olp::obs

#pragma once
// Fixed-size thread pool with a deterministic ordered-reduction contract.
//
// parallel_for(n, task) runs task(0..n-1) with the calling thread
// participating alongside the workers. Determinism comes from the calling
// convention, not from scheduling: tasks write their result into an
// index-addressed slot owned by the caller, and the caller merges the slots
// in submission order after parallel_for returns — results are therefore
// independent of completion order. A task returns false to request early
// exit (budget exhaustion): no further indices are handed out, in-flight
// tasks finish, and slots past the stop point stay unfilled. With one
// thread, parallel_for degenerates to an inline ordered loop with break
// semantics — bit-identical to the pre-pool serial code, including the
// per-index Budget::check() sequence.
//
// Budget interaction: the pool knows nothing about budgets. Tasks probe
// Budget::check() themselves and return false once it trips; because
// exhaustion is sticky, a Budget::cancel() from any thread drains the pool
// promptly (every subsequent claim sees the trip and stops).
//
// Chaos: each task draws at FaultSite::kPoolTaskDelay; a fired draw sleeps
// a few hundred deterministic, index-derived microseconds, letting tests
// scramble completion order adversarially without touching results.
//
// Telemetry (via util/obs): "pool.batches", "pool.tasks",
// "pool.stopped_batches". Workers run under the submitting thread's obs
// ThreadContext, so their spans nest inside the submitting span.

#include <cstddef>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/obs.hpp"

namespace olp {

/// Resolves a requested worker count: >= 1 is used as-is, <= 0 means one
/// thread per hardware core (at least 1).
int resolve_num_threads(int requested);

/// `base` with the OLP_THREADS environment override applied (same
/// convention: positive = exact count, 0 = hardware concurrency; unset or
/// non-numeric leaves `base`), then resolved via resolve_num_threads.
int threads_from_env(int base);

class TaskPool {
 public:
  /// Total thread count including the caller: `threads` == 1 spawns no
  /// workers (parallel_for runs inline), N spawns N-1 workers.
  explicit TaskPool(int threads);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  int threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs task(i) for i in [0, n); returns after every started task
  /// finished. A task returning false stops further claims (started tasks
  /// complete). If tasks throw, the exception thrown by the lowest claimed
  /// index is rethrown here after the batch drains; the pool stays usable.
  /// Not reentrant: tasks must not call parallel_for on the same pool.
  void parallel_for(std::size_t n,
                    const std::function<bool(std::size_t)>& task);

 private:
  void worker_loop();
  /// Claims and runs tasks of the current batch until it stops or empties.
  /// `lock` is held on entry and exit.
  void drain(std::unique_lock<std::mutex>& lock, bool is_worker);

  std::vector<std::thread> workers_;

  std::mutex mu_;  ///< guards all batch state below
  std::condition_variable work_cv_;  ///< workers wait for a batch
  std::condition_variable done_cv_;  ///< caller waits for batch completion
  const std::function<bool(std::size_t)>* task_ = nullptr;
  std::size_t batch_n_ = 0;
  std::size_t next_ = 0;       ///< next unclaimed index
  std::size_t in_flight_ = 0;  ///< claimed but not yet finished
  bool stop_batch_ = false;    ///< early exit requested (or a task threw)
  bool shutdown_ = false;
  std::exception_ptr error_;
  std::size_t error_index_ = 0;
  obs::ThreadContext obs_context_;  ///< submitting thread's span position
};

/// Serial/parallel dispatch helper: with a pool, parallel_for; without one,
/// the exact seed-serial loop (ordered, breaks on false, no chaos draws).
void run_indexed(TaskPool* pool, std::size_t n,
                 const std::function<bool(std::size_t)>& task);

}  // namespace olp

#pragma once
// Umbrella header: the public surface of the layout-flow library in one
// include. Pulls in everything a flow driver needs —
//
//   circuits/flow.hpp     FlowEngine::run(FlowMode), FlowOptions, FlowReport
//   circuits/batch.hpp    BatchRunner, FlowJob, BatchReport (multi-job
//                         service over one pool + shared eval cache)
//   circuits/*            the paper's example circuits (5T OTA, StrongARM
//                         comparator, ring VCO) and common instance types
//   service/service.hpp   LayoutService: the resident JSONL daemon core
//                         (admission control, fair-share queue, warm-start
//                         cache snapshots, durable request journal with
//                         idempotency-key replay, hot reload, graceful
//                         drain)
//   service/transport.hpp TransportSupervisor: poll-based multi-client
//                         unix/TCP stream transport with slow-loris and
//                         oversized-frame shedding
//   service/journal.hpp   RequestJournal: crash-safe accepted-work ledger
//   core/optimizer.hpp    Algorithm 1 (PrimitiveOptimizer) and its
//                         evaluator, for primitive-level use
//   core/eval_cache.hpp   cross-run evaluation memoization
//   pcell/*               primitive netlists and the layout generator
//   util/budget.hpp       deadline/testbench budgets and cancellation
//   util/obs.hpp          observability registry, spans, counters
//   util/trace_export.hpp telemetry JSON/Chrome-trace export
//   util/env.hpp          OLP_* environment override catalog
//   tech/technology.hpp   the FinFET technology description
//
// Subsystem headers remain individually includable; this header is the
// stable starting point (see the README quickstart).

#include "circuits/batch.hpp"
#include "circuits/common.hpp"
#include "circuits/flow.hpp"
#include "circuits/ota5t.hpp"
#include "circuits/strongarm.hpp"
#include "circuits/vco.hpp"
#include "core/eval_cache.hpp"
#include "core/optimizer.hpp"
#include "pcell/generator.hpp"
#include "pcell/primitive.hpp"
#include "service/journal.hpp"
#include "service/request.hpp"
#include "service/service.hpp"
#include "service/transport.hpp"
#include "tech/technology.hpp"
#include "util/budget.hpp"
#include "util/env.hpp"
#include "util/jsonl.hpp"
#include "util/logging.hpp"
#include "util/obs.hpp"
#include "util/table.hpp"
#include "util/task_pool.hpp"
#include "util/trace_export.hpp"

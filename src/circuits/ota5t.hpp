#pragma once
// High-frequency five-transistor OTA (paper Fig. 6(a), Table VI).
//
// Primitives: an NMOS tail current mirror (passive CM), the input
// differential pair, and a PMOS active current-mirror load. The reference
// current enters at net "iref"; the single-ended output drives a fixed load
// capacitance. Power routing is manual in the paper's flow, so the supply
// nets are excluded from inter-primitive routing and port optimization.

#include <map>
#include <string>
#include <vector>

#include "circuits/common.hpp"

namespace olp::circuits {

class Ota5T {
 public:
  explicit Ota5T(const tech::Technology& technology);

  /// Runs the circuit-level schematic simulation and fills every instance's
  /// bias context (Algorithm 1 line 3). Returns false if the schematic
  /// operating point fails to converge.
  bool prepare();

  const std::vector<InstanceSpec>& instances() const { return instances_; }
  std::vector<InstanceSpec>& instances() { return instances_; }

  /// Measures the Table VI row: keys "current_ua", "gain_db", "ugf_ghz",
  /// "f3db_mhz", "pm_deg".
  std::map<std::string, double> measure(const Realization& realization) const;

  /// Circuit nets routed between primitives (supply nets excluded: power
  /// routing is manual, as in the paper).
  std::vector<std::string> routed_nets() const;

  double load_cap() const { return load_cap_; }
  double reference_current() const { return iref_; }
  const tech::Technology& technology() const { return tech_; }

 private:
  spice::Circuit build(const Realization& realization) const;

  const tech::Technology& tech_;
  std::vector<InstanceSpec> instances_;
  double load_cap_ = 200e-15;
  double iref_ = 706e-6;
  double vcm_ = 0.5;
};

}  // namespace olp::circuits

#include "util/jsonl.hpp"

#include <cstdio>
#include <cstdlib>

namespace olp::jsonl {

namespace {

void fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

std::string at_pos(const std::string& message, std::size_t pos) {
  return message + " at offset " + std::to_string(pos);
}

/// Appends a Unicode code point as UTF-8.
void append_utf8(std::string& out, unsigned long cp) {
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xc0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3f));
  } else if (cp < 0x10000) {
    out += static_cast<char>(0xe0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
    out += static_cast<char>(0x80 | (cp & 0x3f));
  } else {
    out += static_cast<char>(0xf0 | (cp >> 18));
    out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
    out += static_cast<char>(0x80 | (cp & 0x3f));
  }
}

/// Parses exactly 4 hex digits at s[pos..pos+3]; returns -1 on failure.
long hex4(const std::string& s, std::size_t pos) {
  if (pos + 4 > s.size()) return -1;
  long value = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const char c = s[pos + i];
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= c - '0';
    } else if (c >= 'a' && c <= 'f') {
      value |= c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      value |= c - 'A' + 10;
    } else {
      return -1;
    }
  }
  return value;
}

}  // namespace

std::string escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // printable ASCII and UTF-8 continuation bytes verbatim
        }
    }
  }
  return out;
}

bool unescape(const std::string& escaped, std::string* out,
              std::string* error) {
  std::string result;
  result.reserve(escaped.size());
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    const char c = escaped[i];
    if (c != '\\') {
      result += c;
      continue;
    }
    if (++i >= escaped.size()) {
      fail(error, at_pos("dangling backslash", i - 1));
      return false;
    }
    switch (escaped[i]) {
      case '"':
        result += '"';
        break;
      case '\\':
        result += '\\';
        break;
      case '/':
        result += '/';
        break;
      case 'b':
        result += '\b';
        break;
      case 'f':
        result += '\f';
        break;
      case 'n':
        result += '\n';
        break;
      case 'r':
        result += '\r';
        break;
      case 't':
        result += '\t';
        break;
      case 'u': {
        const long unit = hex4(escaped, i + 1);
        if (unit < 0) {
          fail(error, at_pos("invalid \\u escape", i - 1));
          return false;
        }
        i += 4;
        unsigned long cp = static_cast<unsigned long>(unit);
        if (cp >= 0xd800 && cp <= 0xdbff) {
          // High surrogate: must pair with a following \uDC00-\uDFFF.
          if (i + 2 >= escaped.size() || escaped[i + 1] != '\\' ||
              escaped[i + 2] != 'u') {
            fail(error, at_pos("unpaired high surrogate", i - 5));
            return false;
          }
          const long low = hex4(escaped, i + 3);
          if (low < 0xdc00 || low > 0xdfff) {
            fail(error, at_pos("invalid low surrogate", i + 1));
            return false;
          }
          i += 6;
          cp = 0x10000 + ((cp - 0xd800) << 10) +
               (static_cast<unsigned long>(low) - 0xdc00);
        } else if (cp >= 0xdc00 && cp <= 0xdfff) {
          fail(error, at_pos("unpaired low surrogate", i - 5));
          return false;
        }
        append_utf8(result, cp);
        break;
      }
      default:
        fail(error, at_pos("unknown escape", i - 1));
        return false;
    }
  }
  *out = std::move(result);
  return true;
}

namespace {

struct Parser {
  const std::string& s;
  std::size_t pos = 0;
  std::string* error;

  bool fail_here(const std::string& message) {
    fail(error, at_pos(message, pos));
    return false;
  }

  void skip_ws() {
    while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t' ||
                              s[pos] == '\n' || s[pos] == '\r')) {
      ++pos;
    }
  }

  bool expect(char c) {
    if (pos >= s.size() || s[pos] != c) {
      return fail_here(std::string("expected '") + c + "'");
    }
    ++pos;
    return true;
  }

  /// Parses a JSON string literal (cursor on the opening quote) and decodes
  /// its escapes.
  bool parse_string(std::string* out) {
    if (!expect('"')) return false;
    const std::size_t start = pos;
    while (pos < s.size() && s[pos] != '"') {
      if (s[pos] == '\\') {
        ++pos;
        if (pos >= s.size()) break;
      }
      if (static_cast<unsigned char>(s[pos]) < 0x20) {
        return fail_here("unescaped control character in string");
      }
      ++pos;
    }
    if (pos >= s.size()) return fail_here("unterminated string");
    const std::string body = s.substr(start, pos - start);
    ++pos;  // closing quote
    std::string err;
    if (!unescape(body, out, &err)) {
      fail(error, err + " in string starting at offset " +
                      std::to_string(start - 1));
      return false;
    }
    return true;
  }

  bool parse_value(Value* out) {
    skip_ws();
    if (pos >= s.size()) return fail_here("expected value");
    const char c = s[pos];
    if (c == '"') {
      out->kind = Value::Kind::kString;
      return parse_string(&out->string);
    }
    if (c == '{' || c == '[') {
      return fail_here("nested objects/arrays are not allowed");
    }
    if (s.compare(pos, 4, "true") == 0) {
      out->kind = Value::Kind::kBool;
      out->boolean = true;
      pos += 4;
      return true;
    }
    if (s.compare(pos, 5, "false") == 0) {
      out->kind = Value::Kind::kBool;
      out->boolean = false;
      pos += 5;
      return true;
    }
    if (s.compare(pos, 4, "null") == 0) {
      out->kind = Value::Kind::kNull;
      pos += 4;
      return true;
    }
    // Number: validate against the strict JSON grammar first, THEN convert
    // with strtod over exactly the validated span. strtod alone would also
    // accept inf/nan/hex and leading zeros, which JSON forbids.
    if (c == '-' || (c >= '0' && c <= '9')) {
      std::size_t p = pos;
      if (s[p] == '-') ++p;
      if (p >= s.size() || s[p] < '0' || s[p] > '9') {
        return fail_here("malformed number");
      }
      if (s[p] == '0') {
        ++p;  // a leading zero must stand alone
      } else {
        while (p < s.size() && s[p] >= '0' && s[p] <= '9') ++p;
      }
      if (p < s.size() && s[p] == '.') {
        ++p;
        if (p >= s.size() || s[p] < '0' || s[p] > '9') {
          return fail_here("malformed number (digits required after '.')");
        }
        while (p < s.size() && s[p] >= '0' && s[p] <= '9') ++p;
      }
      if (p < s.size() && (s[p] == 'e' || s[p] == 'E')) {
        ++p;
        if (p < s.size() && (s[p] == '+' || s[p] == '-')) ++p;
        if (p >= s.size() || s[p] < '0' || s[p] > '9') {
          return fail_here("malformed number (digits required in exponent)");
        }
        while (p < s.size() && s[p] >= '0' && s[p] <= '9') ++p;
      }
      const std::string token = s.substr(pos, p - pos);
      out->kind = Value::Kind::kNumber;
      out->number = std::strtod(token.c_str(), nullptr);
      pos = p;
      return true;
    }
    return fail_here("unexpected character");
  }
};

}  // namespace

bool parse_object(const std::string& line, Object* out, std::string* error) {
  out->clear();
  Parser p{line, 0, error};
  p.skip_ws();
  if (!p.expect('{')) return false;
  p.skip_ws();
  if (p.pos < line.size() && line[p.pos] == '}') {
    ++p.pos;
  } else {
    while (true) {
      p.skip_ws();
      std::string key;
      if (!p.parse_string(&key)) return false;
      if (out->count(key) != 0) {
        fail(error, "duplicate key \"" + key + "\"");
        out->clear();
        return false;
      }
      p.skip_ws();
      if (!p.expect(':')) {
        out->clear();
        return false;
      }
      Value value;
      if (!p.parse_value(&value)) {
        out->clear();
        return false;
      }
      (*out)[key] = std::move(value);
      p.skip_ws();
      if (p.pos < line.size() && line[p.pos] == ',') {
        ++p.pos;
        continue;
      }
      if (!p.expect('}')) {
        out->clear();
        return false;
      }
      break;
    }
  }
  p.skip_ws();
  if (p.pos != line.size()) {
    p.fail_here("trailing characters after object");
    out->clear();
    return false;
  }
  return true;
}

void LineFramer::feed(const char* data, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const char c = data[i];
    if (c == '\n') {
      if (skipping_oversized_) {
        // The offending frame ends here; surface ONE marker and resync.
        skipping_oversized_ = false;
        ready_.push_back(Frame{std::string(), true});
      } else {
        if (!partial_.empty() && partial_.back() == '\r') partial_.pop_back();
        ready_.push_back(Frame{std::move(partial_), false});
      }
      partial_.clear();
      continue;
    }
    if (skipping_oversized_) continue;
    partial_ += c;
    if (max_line_bytes_ > 0 && partial_.size() > max_line_bytes_) {
      // Stop buffering an attacker-controlled frame; drop what we held and
      // discard the rest of the line as it arrives.
      partial_.clear();
      skipping_oversized_ = true;
    }
  }
}

bool LineFramer::next(Frame* out) {
  if (ready_.empty()) return false;
  *out = std::move(ready_.front());
  ready_.pop_front();
  return true;
}

void LineFramer::discard_partial() {
  partial_.clear();
  skipping_oversized_ = false;
}

}  // namespace olp::jsonl

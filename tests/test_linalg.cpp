// Unit and property tests for the dense matrix / LU solver.

#include <gtest/gtest.h>

#include <complex>

#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "util/rng.hpp"

namespace olp::linalg {
namespace {

TEST(Matrix, ConstructionAndIndexing) {
  RealMatrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(Matrix, IdentityProduct) {
  const RealMatrix i = RealMatrix::identity(4);
  RealMatrix a(4, 4);
  Rng rng(5);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) a(r, c) = rng.uniform(-1, 1);
  }
  const RealMatrix ai = a.mul(i);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_DOUBLE_EQ(ai(r, c), a(r, c));
    }
  }
}

TEST(Matrix, MatVecDimensionMismatchThrows) {
  RealMatrix a(3, 2);
  EXPECT_THROW(a.mul(std::vector<double>{1.0, 2.0, 3.0}),
               InvalidArgumentError);
}

TEST(Matrix, SetZero) {
  RealMatrix a(2, 2, 3.0);
  a.set_zero();
  EXPECT_DOUBLE_EQ(a(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(a(1, 1), 0.0);
}

TEST(Lu, SolvesDiagonalSystem) {
  RealMatrix a(3, 3);
  a(0, 0) = 2.0;
  a(1, 1) = 4.0;
  a(2, 2) = 8.0;
  std::vector<double> x;
  ASSERT_TRUE(solve(a, {2.0, 4.0, 8.0}, x));
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
  EXPECT_NEAR(x[2], 1.0, 1e-12);
}

TEST(Lu, SolvesKnownSystem) {
  RealMatrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  std::vector<double> x;
  ASSERT_TRUE(solve(a, {5.0, 11.0}, x));
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, RequiresPivoting) {
  // Zero on the initial diagonal forces a row swap.
  RealMatrix a(2, 2);
  a(0, 0) = 0;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 0;
  std::vector<double> x;
  ASSERT_TRUE(solve(a, {3.0, 7.0}, x));
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, DetectsSingularMatrix) {
  RealMatrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;  // rank 1
  std::vector<double> x;
  EXPECT_FALSE(solve(a, {1.0, 2.0}, x));
}

TEST(Lu, DetectsZeroMatrix) {
  RealMatrix a(3, 3);
  std::vector<double> x;
  EXPECT_FALSE(solve(a, {1.0, 1.0, 1.0}, x));
}

TEST(Lu, SolveOnSingularFactorizationThrows) {
  RealMatrix a(2, 2);  // all zeros
  Lu<double> lu(a);
  EXPECT_FALSE(lu.ok());
  EXPECT_THROW(lu.solve({1.0, 2.0}), InvalidArgumentError);
}

TEST(Lu, ComplexSolve) {
  using C = std::complex<double>;
  ComplexMatrix a(2, 2);
  a(0, 0) = C{1, 1};
  a(0, 1) = C{0, 0};
  a(1, 0) = C{0, 0};
  a(1, 1) = C{0, 2};
  std::vector<C> x;
  ASSERT_TRUE(solve(a, std::vector<C>{C{2, 0}, C{0, 4}}, x));
  EXPECT_NEAR(std::abs(x[0] - C{1, -1}), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(x[1] - C{2, 0}), 0.0, 1e-12);
}

// Property: A * solve(A, b) == b for random well-conditioned systems.
class LuRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(LuRoundTrip, ResidualIsSmall) {
  const std::size_t n = static_cast<std::size_t>(GetParam());
  Rng rng(1234 + GetParam());
  RealMatrix a(n, n);
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = rng.uniform(-10, 10);
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1, 1);
    a(i, i) += static_cast<double>(n);  // diagonal dominance
  }
  std::vector<double> x;
  ASSERT_TRUE(solve(a, b, x));
  const std::vector<double> ax = a.mul(x);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(ax[i], b[i], 1e-8) << "row " << i << " of n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 32, 64, 128));

// Property: complex round trip.
class LuComplexRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(LuComplexRoundTrip, ResidualIsSmall) {
  using C = std::complex<double>;
  const std::size_t n = static_cast<std::size_t>(GetParam());
  Rng rng(77 + GetParam());
  ComplexMatrix a(n, n);
  std::vector<C> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = C{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = C{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    }
    a(i, i) += C{static_cast<double>(n), 0};
  }
  std::vector<C> x;
  ASSERT_TRUE(solve(a, b, x));
  const std::vector<C> ax = a.mul(x);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_LT(std::abs(ax[i] - b[i]), 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuComplexRoundTrip,
                         ::testing::Values(2, 4, 8, 16, 32));

TEST(InfNorm, RealAndComplex) {
  EXPECT_DOUBLE_EQ(inf_norm(std::vector<double>{1.0, -3.0, 2.0}), 3.0);
  using C = std::complex<double>;
  EXPECT_DOUBLE_EQ(inf_norm(std::vector<C>{C{3, 4}, C{0, 1}}), 5.0);
}

}  // namespace
}  // namespace olp::linalg

#include "spice/parser.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <map>
#include <sstream>
#include <vector>

#include "util/error.hpp"

namespace olp::spice {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

/// Splits a line into tokens; parentheses and commas act as separators but
/// function-style groups like "pulse(0 1 ...)" keep their head token.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string cur;
  for (char c : line) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == '(' || c == ')' ||
        c == ',') {
      if (!cur.empty()) {
        tokens.push_back(cur);
        cur.clear();
      }
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) tokens.push_back(cur);
  return tokens;
}

bool is_number_start(char c) {
  return std::isdigit(static_cast<unsigned char>(c)) || c == '+' || c == '-' ||
         c == '.';
}

}  // namespace

double parse_spice_number(const std::string& token) {
  OLP_CHECK(!token.empty() && is_number_start(token[0]),
            "not a number: " + token);
  char* end = nullptr;
  const double base = std::strtod(token.c_str(), &end);
  std::string suffix = lower(std::string(end));
  // Strip trailing unit letters after the scale suffix (e.g. "10pF" -> "p").
  static const std::map<std::string, double> kScales = {
      {"t", 1e12}, {"g", 1e9},  {"meg", 1e6}, {"k", 1e3}, {"m", 1e-3},
      {"u", 1e-6}, {"n", 1e-9}, {"p", 1e-12}, {"f", 1e-15}};
  if (suffix.empty()) return base;
  // Longest-match the known suffixes at the start of the remainder.
  if (suffix.rfind("meg", 0) == 0) return base * 1e6;
  const auto it = kScales.find(suffix.substr(0, 1));
  if (it != kScales.end()) return base * it->second;
  // Unknown letters (e.g. "hz") are treated as unit decoration.
  return base;
}

namespace {

/// Parser state carried through the netlist lines.
struct ParserState {
  Circuit circuit;
  std::map<std::string, int> model_index;
  int line_no = 0;
};

double expect_number(const std::vector<std::string>& t, std::size_t i,
                     int line) {
  if (i >= t.size()) throw ParseError("missing numeric field", line);
  return parse_spice_number(t[i]);
}

/// Parses "key=value" pairs from tokens[start..]; unknown keys throw.
std::map<std::string, double> parse_params(const std::vector<std::string>& t,
                                           std::size_t start, int line) {
  std::map<std::string, double> params;
  for (std::size_t i = start; i < t.size(); ++i) {
    const std::string tok = lower(t[i]);
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos) {
      throw ParseError("expected key=value, got '" + t[i] + "'", line);
    }
    params[tok.substr(0, eq)] = parse_spice_number(tok.substr(eq + 1));
  }
  return params;
}

void parse_model_line(ParserState& st, const std::vector<std::string>& t) {
  if (t.size() < 3) throw ParseError(".model needs a name and a type", st.line_no);
  MosModel model;
  model.name = lower(t[1]);
  const std::string type = lower(t[2]);
  if (type == "nmos") {
    model.type = MosType::kNmos;
  } else if (type == "pmos") {
    model.type = MosType::kPmos;
  } else {
    throw ParseError("unknown model type '" + t[2] + "'", st.line_no);
  }
  for (const auto& [key, value] : parse_params(t, 3, st.line_no)) {
    if (key == "vth0") model.vth0 = value;
    else if (key == "kp") model.kp = value;
    else if (key == "nslope") model.nslope = value;
    else if (key == "lambda") model.lambda = value;
    else if (key == "lref") model.lref = value;
    else if (key == "cox") model.cox = value;
    else if (key == "cov") model.cov = value;
    else if (key == "cj") model.cj = value;
    else if (key == "cjsw") model.cjsw = value;
    else if (key == "avt") model.avt = value;
    else throw ParseError("unknown model parameter '" + key + "'", st.line_no);
  }
  st.model_index[model.name] = st.circuit.add_model(model);
}

/// Parses the source specification shared by V and I elements.
struct SourceSpec {
  Waveform wave = Waveform::dc(0.0);
  double ac_mag = 0.0;
  double ac_phase = 0.0;
};

SourceSpec parse_source(const std::vector<std::string>& t, std::size_t i,
                        int line) {
  SourceSpec spec;
  bool have_wave = false;
  while (i < t.size()) {
    const std::string key = lower(t[i]);
    if (key == "dc") {
      spec.wave = Waveform::dc(expect_number(t, i + 1, line));
      have_wave = true;
      i += 2;
    } else if (key == "ac") {
      spec.ac_mag = expect_number(t, i + 1, line);
      i += 2;
      if (i < t.size() && is_number_start(t[i][0])) {
        spec.ac_phase = parse_spice_number(t[i]) * M_PI / 180.0;
        ++i;
      }
    } else if (key == "pulse") {
      if (i + 7 >= t.size()) throw ParseError("pulse needs 7 fields", line);
      spec.wave = Waveform::pulse(
          expect_number(t, i + 1, line), expect_number(t, i + 2, line),
          expect_number(t, i + 3, line), expect_number(t, i + 4, line),
          expect_number(t, i + 5, line), expect_number(t, i + 6, line),
          expect_number(t, i + 7, line));
      have_wave = true;
      i += 8;
    } else if (key == "sin") {
      if (i + 3 >= t.size()) throw ParseError("sin needs >= 3 fields", line);
      double delay = 0.0;
      std::size_t next = i + 4;
      if (next < t.size() && is_number_start(t[next][0])) {
        delay = parse_spice_number(t[next]);
        ++next;
      }
      spec.wave = Waveform::sine(
          expect_number(t, i + 1, line), expect_number(t, i + 2, line),
          expect_number(t, i + 3, line), delay);
      have_wave = true;
      i = next;
    } else if (key == "pwl") {
      std::vector<std::pair<double, double>> pts;
      std::size_t j = i + 1;
      while (j + 1 < t.size() && is_number_start(t[j][0]) &&
             is_number_start(t[j + 1][0])) {
        pts.emplace_back(parse_spice_number(t[j]),
                         parse_spice_number(t[j + 1]));
        j += 2;
      }
      if (pts.empty()) throw ParseError("pwl needs (t v) pairs", line);
      spec.wave = Waveform::pwl(std::move(pts));
      have_wave = true;
      i = j;
    } else if (is_number_start(t[i][0]) && !have_wave) {
      // Bare value means DC.
      spec.wave = Waveform::dc(parse_spice_number(t[i]));
      have_wave = true;
      ++i;
    } else {
      throw ParseError("unexpected source token '" + t[i] + "'", line);
    }
  }
  return spec;
}

void parse_ic_line(ParserState& st, const std::vector<std::string>& t) {
  // The tokenizer splits on parentheses, so "v(node)=value" arrives as
  // fragments ("v", "node", "=value", ...). Re-join everything after the
  // directive and scan for v...=... groups.
  std::string joined;
  for (std::size_t i = 1; i < t.size(); ++i) joined += lower(t[i]);
  std::size_t pos = 0;
  bool any = false;
  while (pos < joined.size()) {
    if (joined[pos] != 'v') {
      throw ParseError(".ic expects v(node)=value", st.line_no);
    }
    const std::size_t eq = joined.find('=', pos);
    if (eq == std::string::npos) {
      throw ParseError(".ic expects v(node)=value", st.line_no);
    }
    std::string node = joined.substr(pos + 1, eq - pos - 1);
    // The numeric value runs until the next 'v' group (or the end).
    std::size_t next = joined.find('v', eq + 1);
    if (next == std::string::npos) next = joined.size();
    const double value = parse_spice_number(joined.substr(eq + 1, next - eq - 1));
    st.circuit.set_initial_condition(st.circuit.node(node), value);
    any = true;
    pos = next;
  }
  if (!any) throw ParseError(".ic expects v(node)=value", st.line_no);
}

void parse_device_line(ParserState& st, const std::vector<std::string>& t) {
  const std::string& name = t[0];
  // Hierarchical element names carry instance/net prefixes ("X1.R2",
  // "p.R.da"): the element kind is the initial of the first dot-separated
  // component that starts with a known element letter.
  char kind = '?';
  std::size_t comp_start = 0;
  while (comp_start <= name.size()) {
    const char c0 = static_cast<char>(
        std::tolower(static_cast<unsigned char>(name[comp_start])));
    if (c0 == 'r' || c0 == 'c' || c0 == 'v' || c0 == 'i' || c0 == 'e' ||
        c0 == 'g' || c0 == 'm') {
      kind = c0;
      break;
    }
    const std::size_t dot = name.find('.', comp_start);
    if (dot == std::string::npos) break;
    comp_start = dot + 1;
  }
  Circuit& c = st.circuit;
  const int line = st.line_no;
  switch (kind) {
    case 'r': {
      if (t.size() < 4) throw ParseError("R needs 2 nodes and a value", line);
      c.add_resistor(name, c.node(t[1]), c.node(t[2]),
                     expect_number(t, 3, line));
      break;
    }
    case 'c': {
      if (t.size() < 4) throw ParseError("C needs 2 nodes and a value", line);
      const double value = expect_number(t, 3, line);
      double ic = 0.0;
      bool has_ic = false;
      for (const auto& [key, v] : parse_params(t, 4, line)) {
        if (key == "ic") {
          ic = v;
          has_ic = true;
        } else {
          throw ParseError("unknown C parameter '" + key + "'", line);
        }
      }
      if (has_ic) {
        c.add_capacitor_ic(name, c.node(t[1]), c.node(t[2]), value, ic);
      } else {
        c.add_capacitor(name, c.node(t[1]), c.node(t[2]), value);
      }
      break;
    }
    case 'v': {
      if (t.size() < 3) throw ParseError("V needs 2 nodes", line);
      const SourceSpec s = parse_source(t, 3, line);
      c.add_vsource(name, c.node(t[1]), c.node(t[2]), s.wave, s.ac_mag,
                    s.ac_phase);
      break;
    }
    case 'i': {
      if (t.size() < 3) throw ParseError("I needs 2 nodes", line);
      const SourceSpec s = parse_source(t, 3, line);
      c.add_isource(name, c.node(t[1]), c.node(t[2]), s.wave, s.ac_mag,
                    s.ac_phase);
      break;
    }
    case 'e': {
      if (t.size() < 6) throw ParseError("E needs 4 nodes and a gain", line);
      c.add_vcvs(name, c.node(t[1]), c.node(t[2]), c.node(t[3]),
                 c.node(t[4]), expect_number(t, 5, line));
      break;
    }
    case 'g': {
      if (t.size() < 6) throw ParseError("G needs 4 nodes and a gm", line);
      c.add_vccs(name, c.node(t[1]), c.node(t[2]), c.node(t[3]),
                 c.node(t[4]), expect_number(t, 5, line));
      break;
    }
    case 'm': {
      if (t.size() < 6) throw ParseError("M needs 4 nodes and a model", line);
      Mosfet m;
      m.name = name;
      m.d = c.node(t[1]);
      m.g = c.node(t[2]);
      m.s = c.node(t[3]);
      m.b = c.node(t[4]);
      const auto it = st.model_index.find(lower(t[5]));
      if (it == st.model_index.end()) {
        throw ParseError("unknown model '" + t[5] + "'", line);
      }
      m.model = it->second;
      for (const auto& [key, v] : parse_params(t, 6, line)) {
        if (key == "w") m.w = v;
        else if (key == "l") m.l = v;
        else if (key == "as") m.as = v;
        else if (key == "ad") m.ad = v;
        else if (key == "ps") m.ps = v;
        else if (key == "pd") m.pd = v;
        else if (key == "dvth") m.delta_vth = v;
        else if (key == "mob") m.mobility_mult = v;
        else throw ParseError("unknown M parameter '" + key + "'", line);
      }
      c.add_mosfet(std::move(m));
      break;
    }
    default:
      throw ParseError("unknown element '" + name + "'", line);
  }
}

}  // namespace

namespace {

/// A subcircuit definition collected during the first pass.
struct SubcktDef {
  std::vector<std::string> ports;
  std::vector<std::pair<int, std::string>> body;
};

/// Positions of node tokens per element kind (1-based token indices).
std::vector<std::size_t> node_token_positions(char kind, std::size_t n_tokens) {
  switch (kind) {
    case 'r': case 'c': case 'v': case 'i':
      return {1, 2};
    case 'e': case 'g':
      return {1, 2, 3, 4};
    case 'm':
      return {1, 2, 3, 4};
    case 'x': {
      // All tokens except the head and the trailing subckt name.
      std::vector<std::size_t> idx;
      for (std::size_t k = 1; k + 1 < n_tokens; ++k) idx.push_back(k);
      return idx;
    }
    default:
      return {};
  }
}

/// Expands an X instance line (and nested ones) into flat element lines with
/// prefixed names and mapped nodes.
void expand_instance(const std::map<std::string, SubcktDef>& subckts,
                     const std::vector<std::string>& tokens, int line_no,
                     const std::string& prefix,
                     std::vector<std::pair<int, std::string>>& out,
                     int depth) {
  if (depth > 20) throw ParseError("subcircuit nesting too deep", line_no);
  if (tokens.size() < 2) throw ParseError("X needs nodes and a name", line_no);
  const std::string sub_name = lower(tokens.back());
  const auto it = subckts.find(sub_name);
  if (it == subckts.end()) {
    throw ParseError("unknown subcircuit '" + tokens.back() + "'", line_no);
  }
  const SubcktDef& def = it->second;
  if (tokens.size() - 2 != def.ports.size()) {
    throw ParseError("subcircuit '" + sub_name + "' expects " +
                         std::to_string(def.ports.size()) + " nodes",
                     line_no);
  }
  // Port -> actual node mapping; internal nodes get the instance prefix.
  std::map<std::string, std::string> node_map;
  for (std::size_t k = 0; k < def.ports.size(); ++k) {
    node_map[lower(def.ports[k])] = tokens[k + 1];
  }
  const std::string inst_prefix = prefix + tokens[0] + ".";
  auto mapped_node = [&](const std::string& n) {
    const std::string key = lower(n);
    if (key == "0" || key == "gnd" || key == "gnd!") return std::string("0");
    if (auto mit = node_map.find(key); mit != node_map.end()) {
      return mit->second;
    }
    return inst_prefix + n;
  };

  for (const auto& [body_line_no, body] : def.body) {
    std::vector<std::string> bt = tokenize(body);
    if (bt.empty()) continue;
    const char kind = static_cast<char>(
        std::tolower(static_cast<unsigned char>(bt[0][0])));
    if (kind == 'x') {
      // Map the nested instance's connection nodes through the current
      // namespace before recursing.
      std::vector<std::string> mapped = bt;
      for (std::size_t pos : node_token_positions('x', bt.size())) {
        mapped[pos] = mapped_node(bt[pos]);
      }
      expand_instance(subckts, mapped, body_line_no, inst_prefix, out,
                      depth + 1);
      continue;
    }
    for (std::size_t pos : node_token_positions(kind, bt.size())) {
      if (pos < bt.size()) bt[pos] = mapped_node(bt[pos]);
    }
    bt[0] = inst_prefix + bt[0];  // unique element name
    std::string joined;
    for (const std::string& tok : bt) {
      if (!joined.empty()) joined += ' ';
      joined += tok;
    }
    // Re-protect function-style sources: tokenize stripped parentheses, which
    // the element parsers accept as-is.
    out.emplace_back(body_line_no, joined);
  }
}

}  // namespace

Circuit parse_netlist(const std::string& text) {
  // Join continuation lines first.
  std::vector<std::pair<int, std::string>> lines;
  {
    std::istringstream in(text);
    std::string raw;
    int line_no = 0;
    while (std::getline(in, raw)) {
      ++line_no;
      // Strip trailing comments introduced by ';'.
      const std::size_t semi = raw.find(';');
      if (semi != std::string::npos) raw.resize(semi);
      // Trim leading whitespace.
      std::size_t start = raw.find_first_not_of(" \t\r");
      if (start == std::string::npos) continue;
      std::string body = raw.substr(start);
      if (body[0] == '*') continue;
      if (body[0] == '+') {
        if (lines.empty()) throw ParseError("continuation without a line", line_no);
        lines.back().second += " " + body.substr(1);
      } else {
        lines.emplace_back(line_no, body);
      }
    }
  }

  // Pass 1: collect subcircuit definitions; pass 2: expand X instances.
  std::map<std::string, SubcktDef> subckts;
  {
    std::vector<std::pair<int, std::string>> main_lines;
    std::string current;
    SubcktDef def;
    for (const auto& [line_no, body] : lines) {
      const std::vector<std::string> tokens = tokenize(body);
      if (tokens.empty()) continue;
      const std::string head = lower(tokens[0]);
      if (head == ".subckt") {
        if (!current.empty()) {
          throw ParseError("nested .subckt definition", line_no);
        }
        if (tokens.size() < 2) throw ParseError(".subckt needs a name", line_no);
        current = lower(tokens[1]);
        def = SubcktDef{};
        def.ports.assign(tokens.begin() + 2, tokens.end());
      } else if (head == ".ends") {
        if (current.empty()) throw ParseError(".ends without .subckt", line_no);
        subckts[current] = def;
        current.clear();
      } else if (!current.empty()) {
        def.body.emplace_back(line_no, body);
      } else {
        main_lines.emplace_back(line_no, body);
      }
    }
    if (!current.empty()) {
      throw ParseError("unterminated .subckt '" + current + "'",
                       lines.empty() ? 0 : lines.back().first);
    }
    std::vector<std::pair<int, std::string>> expanded;
    for (const auto& [line_no, body] : main_lines) {
      const std::vector<std::string> tokens = tokenize(body);
      if (!tokens.empty() &&
          std::tolower(static_cast<unsigned char>(tokens[0][0])) == 'x') {
        expand_instance(subckts, tokens, line_no, "", expanded, 0);
      } else {
        expanded.emplace_back(line_no, body);
      }
    }
    lines = std::move(expanded);
  }

  ParserState st;
  for (const auto& [line_no, body] : lines) {
    st.line_no = line_no;
    const std::vector<std::string> tokens = tokenize(body);
    if (tokens.empty()) continue;
    const std::string head = lower(tokens[0]);
    if (head == ".end") break;
    if (head == ".model") {
      parse_model_line(st, tokens);
    } else if (head == ".ic") {
      parse_ic_line(st, tokens);
    } else if (head[0] == '.') {
      throw ParseError("unsupported directive '" + tokens[0] + "'", line_no);
    } else {
      parse_device_line(st, tokens);
    }
  }
  return std::move(st.circuit);
}

}  // namespace olp::spice

// Unit and property tests for the EKV-style FinFET compact model: continuity,
// derivative consistency, drain/source symmetry, and LDE parameter effects.

#include <gtest/gtest.h>

#include <cmath>

#include "spice/model.hpp"
#include "util/error.hpp"

namespace olp::spice {
namespace {

MosModel test_model() {
  MosModel m;
  m.vth0 = 0.30;
  m.nslope = 1.25;
  m.kp = 400e-6;
  m.lambda = 0.2;
  m.lref = 14e-9;
  return m;
}

constexpr double kW = 1e-6;
constexpr double kL = 14e-9;

TEST(EkvF, PositiveAndMonotone) {
  double prev = ekv_f(-20.0);
  for (double u = -19.0; u < 60.0; u += 0.5) {
    const double f = ekv_f(u);
    EXPECT_GE(f, 0.0);
    EXPECT_GT(f, prev);
    prev = f;
  }
}

TEST(EkvF, DerivativeMatchesFiniteDifference) {
  for (double u = -10.0; u < 40.0; u += 1.7) {
    const double h = 1e-6;
    const double fd = (ekv_f(u + h) - ekv_f(u - h)) / (2 * h);
    EXPECT_NEAR(ekv_df(u), fd, 1e-5 * std::max(1.0, std::fabs(fd)));
  }
}

TEST(EkvF, StrongInversionAsymptote) {
  // F(u) -> (u/2)^2 for large u.
  EXPECT_NEAR(ekv_f(80.0), 1600.0, 1.0);
}

TEST(MosEval, CutoffCurrentIsTiny) {
  const MosEval e = mos_eval(test_model(), 0.0, 0.4, kW, kL, 0.0, 1.0);
  EXPECT_GT(e.id, 0.0);  // subthreshold leakage exists
  EXPECT_LT(e.id, 1e-6);
}

TEST(MosEval, SaturationCurrentScalesWithWidth) {
  const MosEval e1 = mos_eval(test_model(), 0.6, 0.5, kW, kL, 0.0, 1.0);
  const MosEval e2 = mos_eval(test_model(), 0.6, 0.5, 2 * kW, kL, 0.0, 1.0);
  EXPECT_NEAR(e2.id / e1.id, 2.0, 1e-9);
}

TEST(MosEval, ZeroVdsGivesZeroCurrent) {
  const MosEval e = mos_eval(test_model(), 0.6, 0.0, kW, kL, 0.0, 1.0);
  EXPECT_NEAR(e.id, 0.0, 1e-15);
}

TEST(MosEval, ReverseVdsFlipsSign) {
  const MosEval fwd = mos_eval(test_model(), 0.6, 0.05, kW, kL, 0.0, 1.0);
  // With vds negated AND vgs referenced to the new source (old drain), the
  // device is exactly mirrored; at small vds the simple negation is nearly
  // symmetric already.
  const MosEval rev = mos_eval(test_model(), 0.6, -0.05, kW, kL, 0.0, 1.0);
  EXPECT_GT(fwd.id, 0.0);
  EXPECT_LT(rev.id, 0.0);
}

TEST(MosEval, PositiveVthShiftReducesCurrent) {
  const MosEval base = mos_eval(test_model(), 0.5, 0.4, kW, kL, 0.0, 1.0);
  const MosEval shifted =
      mos_eval(test_model(), 0.5, 0.4, kW, kL, 20e-3, 1.0);
  EXPECT_LT(shifted.id, base.id);
  // ~ gm * dVth to first order.
  EXPECT_NEAR(base.id - shifted.id, base.gm * 20e-3,
              0.1 * base.gm * 20e-3);
}

TEST(MosEval, MobilityMultiplierScalesCurrent) {
  const MosEval base = mos_eval(test_model(), 0.5, 0.4, kW, kL, 0.0, 1.0);
  const MosEval deg = mos_eval(test_model(), 0.5, 0.4, kW, kL, 0.0, 0.9);
  EXPECT_NEAR(deg.id / base.id, 0.9, 1e-9);
}

TEST(MosEval, ChannelLengthModulationRaisesCurrentWithVds) {
  const MosEval a = mos_eval(test_model(), 0.6, 0.4, kW, kL, 0.0, 1.0);
  const MosEval b = mos_eval(test_model(), 0.6, 0.6, kW, kL, 0.0, 1.0);
  EXPECT_GT(b.id, a.id);
  EXPECT_GT(a.gds, 0.0);
}

TEST(MosEval, LongerChannelReducesLambdaEffect) {
  const MosEval short_l = mos_eval(test_model(), 0.6, 0.5, kW, kL, 0.0, 1.0);
  const MosEval long_l =
      mos_eval(test_model(), 0.6, 0.5, kW, 4 * kL, 0.0, 1.0);
  // Normalized output conductance gds/id falls with length.
  EXPECT_LT(long_l.gds / long_l.id, short_l.gds / short_l.id);
}

TEST(MosEval, InvalidGeometryThrows) {
  EXPECT_THROW(mos_eval(test_model(), 0.5, 0.5, 0.0, kL, 0, 1),
               InvalidArgumentError);
  EXPECT_THROW(mos_eval(test_model(), 0.5, 0.5, kW, -1e-9, 0, 1),
               InvalidArgumentError);
}

// Property sweep: analytic gm/gds match finite differences over a bias grid.
struct BiasPoint {
  double vgs;
  double vds;
};

class MosDerivatives : public ::testing::TestWithParam<BiasPoint> {};

TEST_P(MosDerivatives, GmMatchesFiniteDifference) {
  const auto [vgs, vds] = GetParam();
  const MosModel m = test_model();
  const double h = 1e-7;
  const MosEval e = mos_eval(m, vgs, vds, kW, kL, 0.0, 1.0);
  const double fd_gm = (mos_eval(m, vgs + h, vds, kW, kL, 0, 1).id -
                        mos_eval(m, vgs - h, vds, kW, kL, 0, 1).id) /
                       (2 * h);
  EXPECT_NEAR(e.gm, fd_gm, 1e-5 * std::max(std::fabs(fd_gm), 1e-9))
      << "vgs=" << vgs << " vds=" << vds;
}

TEST_P(MosDerivatives, GdsMatchesFiniteDifference) {
  const auto [vgs, vds] = GetParam();
  const MosModel m = test_model();
  const double h = 1e-7;
  const MosEval e = mos_eval(m, vgs, vds, kW, kL, 0.0, 1.0);
  const double fd_gds = (mos_eval(m, vgs, vds + h, kW, kL, 0, 1).id -
                         mos_eval(m, vgs, vds - h, kW, kL, 0, 1).id) /
                        (2 * h);
  EXPECT_NEAR(e.gds, fd_gds, 2e-4 * std::max(std::fabs(fd_gds), 1e-9))
      << "vgs=" << vgs << " vds=" << vds;
}

INSTANTIATE_TEST_SUITE_P(
    BiasGrid, MosDerivatives,
    ::testing::Values(BiasPoint{0.1, 0.05}, BiasPoint{0.1, 0.5},
                      BiasPoint{0.3, 0.02}, BiasPoint{0.3, 0.3},
                      BiasPoint{0.45, 0.1}, BiasPoint{0.45, 0.7},
                      BiasPoint{0.6, 0.05}, BiasPoint{0.6, 0.4},
                      BiasPoint{0.8, 0.8}, BiasPoint{0.5, -0.2},
                      BiasPoint{0.7, -0.05}));

// Property: Id is continuous and increasing in vgs at fixed vds.
class MosMonotone : public ::testing::TestWithParam<double> {};

TEST_P(MosMonotone, CurrentIncreasesWithVgs) {
  const double vds = GetParam();
  const MosModel m = test_model();
  double prev = mos_eval(m, -0.2, vds, kW, kL, 0, 1).id;
  for (double vgs = -0.18; vgs <= 0.9; vgs += 0.02) {
    const double id = mos_eval(m, vgs, vds, kW, kL, 0, 1).id;
    EXPECT_GE(id, prev) << "vgs=" << vgs << " vds=" << vds;
    prev = id;
  }
}

INSTANTIATE_TEST_SUITE_P(VdsGrid, MosMonotone,
                         ::testing::Values(0.05, 0.1, 0.2, 0.4, 0.8));

}  // namespace
}  // namespace olp::spice

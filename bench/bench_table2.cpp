// Reproduces Table II: primitive performance metrics, weights (alpha), and
// tuning terminals, as stored in the augmented primitive library (Sec. II-B).

#include <iostream>

#include "core/metrics.hpp"
#include "util/table.hpp"

int main() {
  using namespace olp;
  using pcell::PrimitiveType;

  TextTable table(
      "Table II: Primitive metrics, tuning terminals, weights alpha");
  table.set_header(
      {"primitive", "objective", "alpha", "tuning terminals", "correlated"});

  const PrimitiveType kTypes[] = {
      PrimitiveType::kDiffPair,
      PrimitiveType::kCurrentMirror,
      PrimitiveType::kActiveCurrentMirror,
      PrimitiveType::kCurrentSource,
      PrimitiveType::kCommonSource,
      PrimitiveType::kCurrentStarvedInverter,
      PrimitiveType::kCrossCoupledPair,
      PrimitiveType::kSwitch,
      PrimitiveType::kCapacitor,
  };
  for (PrimitiveType type : kTypes) {
    const core::MetricLibraryEntry entry = core::metric_library(type);
    std::string terminals;
    for (const std::string& term : entry.tuning_terminals) {
      if (!terminals.empty()) terminals += ", ";
      terminals += term;
    }
    terminals += " (source/drain RC)";
    bool first = true;
    for (const core::MetricSpec& spec : entry.metrics) {
      table.add_row({first ? pcell::primitive_type_name(type) : "",
                     core::metric_name(spec.kind), fixed(spec.weight, 1),
                     first ? terminals : "",
                     first ? (entry.terminals_correlated ? "yes" : "no")
                           : ""});
      first = false;
    }
    table.add_rule();
  }
  std::cout << table;
  std::cout << "\nWeights follow the paper: high = 1.0, medium = 0.5, "
               "low = 0.1.\n";
  return 0;
}

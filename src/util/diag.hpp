#pragma once
// Structured diagnostics for resilient flow execution.
//
// Subsystems (simulator, evaluator, optimizer, router, placer, flow) report
// recoverable failures and engaged fallbacks into a DiagnosticsSink instead
// of free-text logging alone. FlowReport carries the collected records so
// callers, tests and benches can see exactly what was recovered and what was
// degraded — the flow itself never throws on a recoverable subsystem failure.
//
// Severity taxonomy:
//   kInfo    — noteworthy but harmless (e.g. a retry that succeeded cheaply).
//   kWarning — a fallback or degradation engaged; results are still usable
//              but differ from the fully-converged path.
//   kError   — a subsystem exhausted its fallback ladder; the flow degraded
//              the affected result (e.g. a net kept schematic parasitics).

#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

namespace olp {

enum class DiagSeverity { kInfo = 0, kWarning = 1, kError = 2 };

/// Short lowercase name ("info", "warning", "error").
const char* diag_severity_name(DiagSeverity severity);

/// One structured diagnostic record.
struct Diagnostic {
  DiagSeverity severity = DiagSeverity::kInfo;
  std::string stage;    ///< reporting subsystem: "simulator", "router", ...
  std::string subject;  ///< what it concerns: a net, instance, bench, config
  std::string message;  ///< human-readable description
  /// Observability span path active when the record was reported, e.g.
  /// "flow.optimize/routing/router.net"; empty when the obs registry was
  /// disabled. Ties every diagnostic to its place in the flow trace.
  std::string span;

  /// "[warning] router/net_out: ... (span ...)" — for logs and report dumps;
  /// the span suffix appears only when span context was captured.
  std::string to_string() const;
};

/// Collects Diagnostic records. Subsystems hold a nullable pointer to a sink;
/// a null sink disables reporting. Thread-safe: TaskPool workers may report
/// concurrently (record *order* then follows task interleaving, so
/// multi-thread assertions must be count- or set-based, not order-based).
/// The reference returned by diagnostics() is only safe to walk while no
/// other thread is reporting — i.e. after the flow call returns.
class DiagnosticsSink {
 public:
  void report(DiagSeverity severity, std::string stage, std::string subject,
              std::string message);

  const std::vector<Diagnostic>& diagnostics() const { return records_; }
  bool empty() const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_.empty();
  }
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_.size();
  }

  /// Number of records from one stage (optionally restricted to a subject).
  std::size_t count(const std::string& stage) const;
  std::size_t count(const std::string& stage, const std::string& subject) const;

  /// True when any record is at or above the given severity.
  bool has_at_least(DiagSeverity severity) const;

  /// Moves the collected records out, leaving the sink empty.
  std::vector<Diagnostic> take();
  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    records_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::vector<Diagnostic> records_;
};

}  // namespace olp

// Router backend comparison on the full RO-VCO assembly — the proof line for
// the global-router overhaul. The workload is the 8-stage ring-oscillator
// assembly net list (per-stage ring nets with the closing polarity twist,
// the 8-pin vctrl/vctrlb control nets, 16-pin supply rails, and per-stage
// latch cross-coupling), routed from scratch by each RouterEngine backend:
//
//   classic      the serial heap-Dijkstra baseline (the flow default)
//   fast         pattern-route fast paths + bidirectional/A* bucket search
//   partitioned  disjoint-window batches on a 4-worker pool
//   negotiated   PathFinder-style rip-up-and-reroute (fast core inside)
//
// Two gates are enforced (exit nonzero on failure):
//
//   1. Fast speedup: the fast backend must cut router wall time at least
//      2x vs classic (best-of-repeats, repeats interleaved round-robin
//      across backends so container CPU drift lands on every row equally)
//      at equal-or-better quality — wirelength within 0.5% (the fast core
//      finds cost-equal paths; tie-breaks may differ under congestion),
//      vias and overflow never worse.
//   2. Negotiated congestion: on a capacity-1 channel three identical nets
//      fight over (sharing is locally cheaper than the via-heavy detour,
//      so greedy net-order routing overflows), negotiation must reach
//      zero overflow while classic measurably cannot.
//
// Results land in BENCH_route.json: per-backend rows (wall, wirelength,
// vias, overflow, unrouted) plus the congested-channel A/B. CI uploads the
// JSON and fails on gate regression.

#include <chrono>
#include <cstddef>
#include <iostream>
#include <string>
#include <vector>

#include <olp/olp.hpp>

#include "route/router_engine.hpp"
#include "util/task_pool.hpp"

namespace {

using namespace olp;

constexpr double kUm = 1e-6;

geom::Point at(double x_um, double y_um) {
  return geom::Point{geom::to_nm(x_um * kUm), geom::to_nm(y_um * kUm)};
}

/// The 8-stage RO-VCO assembly net list over a 40x10 um floorplan row
/// (5 um per stage). Pin offsets follow the stage layout shape: inverter
/// pair on the mid rows, latch column on the stage's right edge, starve
/// taps on the rails.
std::vector<route::NetPins> vco_assembly_nets(int stages) {
  std::vector<route::NetPins> nets;
  const double w = 5.0;  // stage pitch [um]
  const auto in_a = [&](int s) { return at(s * w + 0.8, 6.4); };
  const auto out_a = [&](int s) { return at(s * w + 3.2, 6.4); };
  const auto in_b = [&](int s) { return at(s * w + 0.8, 2.4); };
  const auto out_b = [&](int s) { return at(s * w + 3.2, 2.4); };
  const auto nlatch = [&](int s) { return at(s * w + 4.2, 4.2); };
  const auto platch = [&](int s) { return at(s * w + 4.2, 5.2); };

  // Ring nets: stage output to next stage input plus the local latch tap;
  // the ring closes with one polarity twist (a -> b, b -> a at the wrap).
  for (int s = 0; s < stages; ++s) {
    const int n = (s + 1) % stages;
    const bool wrap = n == 0;
    nets.push_back({"ring_a" + std::to_string(s),
                    {out_a(s), wrap ? in_b(n) : in_a(n), platch(s)}});
    nets.push_back({"ring_b" + std::to_string(s),
                    {out_b(s), wrap ? in_a(n) : in_b(n), nlatch(s)}});
  }
  // Global control nets: one starve tap per stage.
  route::NetPins vctrl{"vctrl", {}};
  route::NetPins vctrlb{"vctrlb", {}};
  route::NetPins vdd{"vdd", {}};
  route::NetPins vss{"vss", {}};
  for (int s = 0; s < stages; ++s) {
    vctrl.pins.push_back(at(s * w + 2.0, 0.8));
    vctrlb.pins.push_back(at(s * w + 2.0, 9.2));
    vdd.pins.push_back(at(s * w + 1.2, 9.2));
    vdd.pins.push_back(at(s * w + 3.6, 9.2));
    vss.pins.push_back(at(s * w + 1.2, 0.8));
    vss.pins.push_back(at(s * w + 3.6, 0.8));
  }
  nets.push_back(std::move(vctrl));
  nets.push_back(std::move(vctrlb));
  nets.push_back(std::move(vdd));
  nets.push_back(std::move(vss));
  // Per-stage latch cross-coupling.
  for (int s = 0; s < stages; ++s) {
    nets.push_back({"latch" + std::to_string(s),
                    {nlatch(s), platch(s), at(s * w + 3.2, 4.8)}});
  }
  return nets;
}

geom::Rect vco_region() {
  return geom::Rect{0, 0, geom::to_nm(40 * kUm), geom::to_nm(10 * kUm)};
}

struct Row {
  route::RouterBackend backend = route::RouterBackend::kClassic;
  double wall_ms = 0.0;  ///< best of repeats
  double wirelength_um = 0.0;
  long vias = 0;
  long overflow = 0;
  long unrouted = 0;
};

/// One timed routing pass of the assembly with a fresh router; folds the
/// best wall time into the row. Quality numbers are deterministic per
/// backend, so the first repeat records them and later repeats verify
/// nothing drifted would be redundant — they just race the clock.
void run_once(const tech::Technology& t,
              const std::vector<route::NetPins>& nets, TaskPool* pool,
              Row& row, bool first_rep) {
  route::GlobalRouter router(t, vco_region(), {});
  route::RouterEngineOptions eopt;
  eopt.backend = row.backend;
  if (row.backend == route::RouterBackend::kPartitioned) eopt.pool = pool;
  const auto engine = route::make_router_engine(router, eopt);
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<route::NetRoute> routes = engine->route_nets(nets);
  const auto t1 = std::chrono::steady_clock::now();
  const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  if (first_rep || ms < row.wall_ms) row.wall_ms = ms;
  if (!first_rep) return;
  for (const route::NetRoute& r : routes) {
    if (!r.routed) {
      ++row.unrouted;
      continue;
    }
    row.wirelength_um += r.total_length() * 1e6;
    row.vias += r.vias;
  }
  row.overflow = router.total_overflow();
}

/// The congested channel greedy routing cannot legalize: three identical
/// 10-edge nets on one row with edge capacity 1, cheap congestion (1.0)
/// and expensive vias (6.0) — sharing the overflowing edges is locally
/// cheaper than the 4-via detour, so net-order greedy stacks all three,
/// while a legal spread over adjacent rows plainly exists.
route::RouterOptions channel_options() {
  route::RouterOptions opt;
  opt.edge_capacity = 1;
  opt.congestion_cost = 1.0;
  opt.via_cost = 6.0;
  opt.min_layer = 2;
  opt.max_layer = 3;
  return opt;
}

std::vector<route::NetPins> channel_nets() {
  std::vector<route::NetPins> nets;
  for (int n = 0; n < 3; ++n) {
    nets.push_back({"chan" + std::to_string(n), {at(2.0, 5.0), at(4.0, 5.0)}});
  }
  return nets;
}

long route_channel(const tech::Technology& t, route::RouterBackend backend) {
  route::GlobalRouter router(
      t, geom::Rect{0, 0, geom::to_nm(10 * kUm), geom::to_nm(10 * kUm)},
      channel_options());
  const auto engine = route::make_router_engine(
      router, route::RouterEngineOptions{backend});
  engine->route_nets(channel_nets());
  return router.total_overflow();
}

}  // namespace

int main() {
  using namespace olp;
  set_log_level(log_level_from_env("OLP_LOG_LEVEL", LogLevel::kError));
  const tech::Technology t = tech::make_default_finfet_tech();
  const std::vector<route::NetPins> nets = vco_assembly_nets(8);
  TaskPool pool(4);

  std::vector<Row> rows;
  for (const route::RouterBackend backend :
       {route::RouterBackend::kClassic, route::RouterBackend::kFast,
        route::RouterBackend::kPartitioned,
        route::RouterBackend::kNegotiated}) {
    Row row;
    row.backend = backend;
    rows.push_back(row);
  }

  // Warmup, then best-of-9 with repeats interleaved round-robin across
  // backends (slow drift in the container's CPU share lands on every row
  // equally instead of looking like a backend regression).
  {
    Row warmup;
    warmup.backend = route::RouterBackend::kClassic;
    run_once(t, nets, &pool, warmup, /*first_rep=*/true);
  }
  const int kRepeats = 9;
  for (int rep = 0; rep < kRepeats; ++rep) {
    for (Row& row : rows) run_once(t, nets, &pool, row, rep == 0);
  }

  TextTable table("Router backends: 8-stage RO-VCO assembly, " +
                  std::to_string(nets.size()) + " nets");
  table.set_header({"backend", "wall [ms]", "wirelength [um]", "vias",
                    "overflow", "unrouted"});
  for (const Row& r : rows) {
    table.add_row({route::router_backend_name(r.backend),
                   fixed(r.wall_ms, 2), fixed(r.wirelength_um, 1),
                   std::to_string(r.vias), std::to_string(r.overflow),
                   std::to_string(r.unrouted)});
  }
  std::cout << table << "\n";

  const Row& classic = rows[0];
  const Row& fast = rows[1];

  // Gate 1: >= 2x router wall-time cut at equal-or-better quality.
  const double speedup =
      fast.wall_ms > 0.0 ? classic.wall_ms / fast.wall_ms : 0.0;
  const bool speed_ok = speedup >= 2.0;
  const bool quality_ok =
      fast.wirelength_um <= classic.wirelength_um * 1.005 &&
      fast.vias <= classic.vias && fast.overflow <= classic.overflow &&
      fast.unrouted <= classic.unrouted;
  std::cout << "Fast vs classic: " << fixed(speedup, 2) << "x wall ("
            << fixed(classic.wall_ms, 2) << " -> " << fixed(fast.wall_ms, 2)
            << " ms) -> " << (speed_ok ? "PASS" : "FAIL")
            << " (need >= 2x); quality "
            << (quality_ok ? "PASS" : "FAIL")
            << " (wirelength within 0.5%, vias/overflow/unrouted never "
               "worse)\n";

  // Gate 2: negotiation legalizes the channel greedy routing cannot.
  const long classic_channel = route_channel(t, route::RouterBackend::kClassic);
  const long negotiated_channel =
      route_channel(t, route::RouterBackend::kNegotiated);
  const bool negotiation_ok = classic_channel > 0 && negotiated_channel == 0;
  std::cout << "Congested channel overflow: classic " << classic_channel
            << " vs negotiated " << negotiated_channel << " -> "
            << (negotiation_ok ? "PASS" : "FAIL")
            << " (need classic > 0 and negotiated == 0)\n";

  const bool pass = speed_ok && quality_ok && negotiation_ok;

  std::string json = "{\n";
  json += "  \"nets\": " + std::to_string(nets.size()) + ",\n";
  json += "  \"repeats\": " + std::to_string(kRepeats) + ",\n";
  json += "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json += std::string("    {\"backend\": \"") +
            route::router_backend_name(r.backend) +
            "\", \"wall_ms\": " + fixed(r.wall_ms, 3) +
            ", \"wirelength_um\": " + fixed(r.wirelength_um, 3) +
            ", \"vias\": " + std::to_string(r.vias) +
            ", \"overflow\": " + std::to_string(r.overflow) +
            ", \"unrouted\": " + std::to_string(r.unrouted) + "}" +
            (i + 1 < rows.size() ? "," : "") + "\n";
  }
  json += "  ],\n";
  json += "  \"fast_speedup\": " + fixed(speedup, 3) + ",\n";
  json += "  \"channel\": {\"classic_overflow\": " +
          std::to_string(classic_channel) + ", \"negotiated_overflow\": " +
          std::to_string(negotiated_channel) + "},\n";
  json += std::string("  \"gate_fast_speedup\": ") +
          (speed_ok ? "true" : "false") + ",\n";
  json += std::string("  \"gate_fast_quality\": ") +
          (quality_ok ? "true" : "false") + ",\n";
  json += std::string("  \"gate_negotiated_channel\": ") +
          (negotiation_ok ? "true" : "false") + ",\n";
  json += std::string("  \"pass\": ") + (pass ? "true" : "false") + "\n";
  json += "}\n";
  std::string err;
  if (!obs::json_well_formed(json, &err)) {
    std::cerr << "internal error: BENCH_route.json malformed: " << err << "\n";
    return 1;
  }
  obs::write_text_file("BENCH_route.json", json);
  std::cout << "Wrote BENCH_route.json\n";
  return pass ? 0 : 1;
}

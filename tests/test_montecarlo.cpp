// Tests for the Monte Carlo mismatch analysis.

#include <gtest/gtest.h>

#include "circuits/common.hpp"
#include "core/evaluator.hpp"
#include "pcell/generator.hpp"

namespace olp::core {
namespace {

const tech::Technology& t() {
  static const tech::Technology tech = tech::make_default_finfet_tech();
  return tech;
}

struct Fixture {
  pcell::PrimitiveGenerator gen{t()};
  PrimitiveEvaluator eval;
  pcell::PrimitiveLayout layout;

  explicit Fixture(pcell::PlacementPattern pattern)
      : eval(t(), circuits::default_nmos(), circuits::default_pmos(), [] {
          BiasContext b;
          b.vdd = t().vdd;
          b.bias_current = 400e-6;
          b.port_voltage = {{"ga", 0.5},
                            {"gb", 0.5},
                            {"da", 0.5},
                            {"db", 0.5},
                            {"s", 0.2}};
          return b;
        }()) {
    pcell::LayoutConfig c;
    c.nfin = 8;
    c.nf = 10;
    c.m = 2;
    c.pattern = pattern;
    layout = gen.generate(pcell::make_diff_pair(), c);
  }
};

TEST(MonteCarlo, SigmaMatchesPelgromPrediction) {
  Fixture fx(pcell::PlacementPattern::kABBA);
  EvalCondition ideal;
  ideal.ideal = true;
  const auto mc = fx.eval.monte_carlo_offset(fx.layout, ideal, 40, 7);
  const double predicted = fx.eval.random_offset_sigma(fx.layout);
  EXPECT_EQ(mc.samples, 40);
  // 40 samples: sigma estimate within ~40% of the Pelgrom value.
  EXPECT_GT(mc.sigma, 0.6 * predicted);
  EXPECT_LT(mc.sigma, 1.5 * predicted);
  // Ideal layout: no systematic component.
  EXPECT_LT(std::fabs(mc.mean), 0.5 * predicted);
}

TEST(MonteCarlo, SystematicComponentShowsForAabb) {
  // Paired comparison: identical seeds draw identical mismatch samples for
  // both layouts (same device sizes), so the difference of the Monte Carlo
  // means isolates the systematic (gradient) component exactly.
  Fixture abba(pcell::PlacementPattern::kABBA);
  Fixture aabb(pcell::PlacementPattern::kAABB);
  EvalCondition extracted;  // LDE + gradient on
  const auto mc_abba =
      abba.eval.monte_carlo_offset(abba.layout, extracted, 16, 3);
  const auto mc_aabb =
      aabb.eval.monte_carlo_offset(aabb.layout, extracted, 16, 3);
  const double systematic_delta = std::fabs(mc_aabb.mean - mc_abba.mean);
  // The deterministic (sample-free) offsets predict the same delta.
  const double det_abba = std::fabs(
      abba.eval.evaluate(abba.layout, extracted).at(MetricKind::kInputOffset));
  const double det_aabb = std::fabs(
      aabb.eval.evaluate(aabb.layout, extracted).at(MetricKind::kInputOffset));
  EXPECT_GT(det_aabb, 5.0 * det_abba);  // AABB's gradient does not cancel
  EXPECT_NEAR(systematic_delta, det_aabb - det_abba,
              0.3 * (det_aabb - det_abba) + 1e-4);
}

TEST(MonteCarlo, Deterministic) {
  Fixture fx(pcell::PlacementPattern::kABBA);
  EvalCondition ideal;
  ideal.ideal = true;
  const auto a = fx.eval.monte_carlo_offset(fx.layout, ideal, 10, 42);
  const auto b = fx.eval.monte_carlo_offset(fx.layout, ideal, 10, 42);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.sigma, b.sigma);
}

TEST(MonteCarlo, DifferentSeedsDiffer) {
  Fixture fx(pcell::PlacementPattern::kABBA);
  EvalCondition ideal;
  ideal.ideal = true;
  const auto a = fx.eval.monte_carlo_offset(fx.layout, ideal, 10, 1);
  const auto b = fx.eval.monte_carlo_offset(fx.layout, ideal, 10, 2);
  EXPECT_NE(a.mean, b.mean);
}

TEST(MonteCarlo, Validation) {
  Fixture fx(pcell::PlacementPattern::kABBA);
  EvalCondition ideal;
  ideal.ideal = true;
  EXPECT_THROW(fx.eval.monte_carlo_offset(fx.layout, ideal, 1, 1),
               InvalidArgumentError);
  // Non-pair primitives are rejected.
  pcell::LayoutConfig c;
  c.nfin = 8;
  c.nf = 4;
  c.m = 1;
  const pcell::PrimitiveLayout cs =
      fx.gen.generate(pcell::make_common_source(), c);
  EXPECT_THROW(fx.eval.monte_carlo_offset(cs, ideal, 8, 1),
               InvalidArgumentError);
}

TEST(MonteCarlo, ExtraDvthShiftsDevices) {
  // Direct check of the plumbing: a forced +10 mV on MA shows up as an
  // input-referred offset of roughly that size.
  Fixture fx(pcell::PlacementPattern::kABBA);
  EvalCondition cond;
  cond.ideal = true;
  cond.extra_dvth["MA"] = 10e-3;
  const MetricValues v = fx.eval.evaluate(fx.layout, cond);
  EXPECT_NEAR(std::fabs(v.at(MetricKind::kInputOffset)), 10e-3, 2.5e-3);
}

}  // namespace
}  // namespace olp::core

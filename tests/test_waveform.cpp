// Unit tests for source waveforms (DC / PULSE / SIN / PWL).

#include <gtest/gtest.h>

#include <cmath>

#include "spice/waveform.hpp"

namespace olp::spice {
namespace {

TEST(Waveform, DcIsConstant) {
  const Waveform w = Waveform::dc(1.5);
  EXPECT_DOUBLE_EQ(w.value(0.0), 1.5);
  EXPECT_DOUBLE_EQ(w.value(1e-3), 1.5);
  EXPECT_DOUBLE_EQ(w.dc_value(), 1.5);
}

TEST(Waveform, PulseBeforeDelayIsV1) {
  const Waveform w = Waveform::pulse(0.0, 1.0, 1e-9, 0.1e-9, 0.1e-9, 1e-9, 4e-9);
  EXPECT_DOUBLE_EQ(w.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(w.value(0.99e-9), 0.0);
}

TEST(Waveform, PulseEdgesInterpolate) {
  const Waveform w = Waveform::pulse(0.0, 1.0, 0.0, 1e-9, 1e-9, 2e-9, 8e-9);
  EXPECT_NEAR(w.value(0.5e-9), 0.5, 1e-12);   // mid-rise
  EXPECT_DOUBLE_EQ(w.value(2e-9), 1.0);       // plateau
  EXPECT_NEAR(w.value(3.5e-9), 0.5, 1e-12);   // mid-fall
  EXPECT_DOUBLE_EQ(w.value(5e-9), 0.0);       // low
}

TEST(Waveform, PulseIsPeriodic) {
  const Waveform w = Waveform::pulse(0.0, 1.0, 0.0, 1e-10, 1e-10, 1e-9, 4e-9);
  EXPECT_NEAR(w.value(0.5e-9), w.value(0.5e-9 + 4e-9), 1e-12);
  EXPECT_NEAR(w.value(2.3e-9), w.value(2.3e-9 + 8e-9), 1e-12);
}

TEST(Waveform, PulseValidation) {
  EXPECT_THROW(Waveform::pulse(0, 1, 0, 0.0, 1e-10, 1e-9, 4e-9),
               InvalidArgumentError);
  EXPECT_THROW(Waveform::pulse(0, 1, 0, 1e-10, 1e-10, 1e-9, 0.0),
               InvalidArgumentError);
  // Negative delay is rejected.
  EXPECT_THROW(Waveform::pulse(0, 1, -1e-9, 1e-10, 1e-10, 1e-9, 4e-9),
               InvalidArgumentError);
  // Edges plus width must fit within one period...
  EXPECT_THROW(Waveform::pulse(0, 1, 0, 1e-9, 1e-9, 3e-9, 4e-9),
               InvalidArgumentError);
  // ...and an exact fit is allowed.
  EXPECT_NO_THROW(Waveform::pulse(0, 1, 0, 1e-9, 1e-9, 2e-9, 4e-9));
}

TEST(Waveform, SineValueAndDelay) {
  const Waveform w = Waveform::sine(0.5, 0.2, 1e9, 1e-9);
  EXPECT_DOUBLE_EQ(w.value(0.5e-9), 0.5);  // before delay: offset
  // Quarter period past the delay: peak.
  EXPECT_NEAR(w.value(1e-9 + 0.25e-9), 0.7, 1e-9);
  EXPECT_NEAR(w.value(1e-9 + 0.75e-9), 0.3, 1e-9);
}

TEST(Waveform, SineValidation) {
  EXPECT_THROW(Waveform::sine(0, 1, 0.0), InvalidArgumentError);
}

TEST(Waveform, PwlInterpolatesAndClamps) {
  const Waveform w = Waveform::pwl({{0.0, 0.0}, {1e-9, 1.0}, {2e-9, 0.5}});
  EXPECT_DOUBLE_EQ(w.value(0.0), 0.0);
  EXPECT_NEAR(w.value(0.5e-9), 0.5, 1e-12);
  EXPECT_NEAR(w.value(1.5e-9), 0.75, 1e-12);
  EXPECT_DOUBLE_EQ(w.value(5e-9), 0.5);  // clamps to last value
}

TEST(Waveform, PwlValidation) {
  EXPECT_THROW(Waveform::pwl({}), InvalidArgumentError);
  EXPECT_THROW(Waveform::pwl({{1e-9, 1.0}, {0.5e-9, 0.0}}),
               InvalidArgumentError);
}

TEST(Waveform, DcValueUsesTimeZero) {
  const Waveform p =
      Waveform::pulse(0.3, 1.0, 1e-9, 1e-10, 1e-10, 1e-9, 4e-9);
  EXPECT_DOUBLE_EQ(p.dc_value(), 0.3);
}

}  // namespace
}  // namespace olp::spice

#include "util/env.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace olp::env {

bool has(const char* name) { return std::getenv(name) != nullptr; }

std::string str(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  return raw == nullptr ? fallback : std::string(raw);
}

long integer(const char* name, long fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  // Out-of-range values saturate to LONG_MIN/LONG_MAX with errno == ERANGE;
  // a silently saturated limit is a misconfiguration, not a setting.
  if (errno == ERANGE) return fallback;
  return value;
}

double number(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(raw, &end);
  if (end == raw || *end != '\0') return fallback;
  // Overflow saturates to +/-HUGE_VAL with errno == ERANGE — reject it.
  // (Underflow also sets ERANGE but yields a representable ~0 value, which
  // we keep: a tiny configured number is still a number.)
  if (errno == ERANGE && std::abs(value) == HUGE_VAL) return fallback;
  return value;
}

bool flag(const char* name, bool fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  return raw[0] != '0';
}

}  // namespace olp::env

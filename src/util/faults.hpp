#pragma once
// Deterministic chaos fault injection.
//
// A process-global FaultInjector lets tests force recoverable failures at
// well-known sites (op/tran non-convergence, route failure, NaN metric)
// without patching subsystem code. Draws are derived from a counter hash, so
// a given (seed, rates) configuration fires the exact same faults on every
// run — chaos tests are reproducible and can assert exact accounting.
//
// The injector is disabled by default and costs one branch per site when
// disabled; production flows with injection off are bit-identical to a build
// without this header.

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>

namespace olp {

enum class FaultSite : int {
  kOpNonConvergence = 0,   ///< Simulator::op reports converged=false
  kTranNonConvergence = 1, ///< Simulator::tran attempt reports ok=false
  kRouteFailure = 2,       ///< GlobalRouter::route reports routed=false
  kNanMetric = 3,          ///< PrimitiveEvaluator emits a NaN metric
  kBudgetExhaustion = 4,   ///< Budget::check() trips (BudgetKind::kInjected)
  kPoolTaskDelay = 5,      ///< TaskPool sleeps before a task (reorder chaos)
  kSnapshotIo = 6,         ///< EvalCache snapshot save/load I/O fails
  kRequestParse = 7,       ///< service request parse rejects a valid line
  kJobTransient = 8,       ///< service job attempt fails transiently
  kTransportPartialWrite = 9,  ///< transport flush writes only a prefix
  kTransportDisconnect = 10,   ///< connection drops mid-frame on read
  kJournalIo = 11,             ///< request-journal append/open/compact fails
};

inline constexpr int kNumFaultSites = 12;

/// Short site name: "op", "tran", "route", "nan_metric", "budget",
/// "pool_delay", "snapshot_io", "request_parse", "job_transient",
/// "partial_write", "disconnect", "journal_io".
const char* fault_site_name(FaultSite site);

/// Per-site fault probabilities plus determinism controls.
struct FaultConfig {
  std::uint64_t seed = 1;
  double op_rate = 0.0;
  double tran_rate = 0.0;
  double route_rate = 0.0;
  double nan_metric_rate = 0.0;
  double budget_rate = 0.0;
  /// Probability that a TaskPool task sleeps a few hundred microseconds
  /// before running — scrambles completion order so tests can prove the
  /// ordered reduction is completion-order independent. Never corrupts
  /// results; only perturbs timing.
  double pool_delay_rate = 0.0;
  /// Probability that an EvalCache snapshot save/load aborts with an
  /// injected I/O failure — save reports failure (and leaves no partial
  /// file), load falls back to a cold start.
  double snapshot_io_rate = 0.0;
  /// Probability that the layout service rejects an otherwise well-formed
  /// request line as a (simulated) parse failure.
  double request_parse_rate = 0.0;
  /// Probability that one service job attempt fails with an injected
  /// transient fault — the retry-with-backoff path's chaos hook.
  double job_transient_rate = 0.0;
  /// Probability that one transport flush writes only a prefix of the
  /// pending bytes — exercises the partial-write resumption path. Never
  /// corrupts the stream; the remainder goes out on a later flush.
  double partial_write_rate = 0.0;
  /// Probability that a connection read is treated as a mid-frame
  /// disconnect — the torn-frame discard path's chaos hook.
  double disconnect_rate = 0.0;
  /// Probability that a request-journal operation (open/append/compact)
  /// fails with an injected I/O error — durability degrades with a counted
  /// reason, the service itself must keep running.
  double journal_io_rate = 0.0;
  /// Stop firing after this many total faults (-1 = unlimited).
  long max_total_fires = -1;
  /// The first N draws at each site never fire — lets a test skip reference
  /// evaluations and target a specific later call.
  long skip_draws = 0;

  double rate(FaultSite site) const;
};

/// Process-global deterministic fault injector. Draw bookkeeping is guarded
/// by an internal mutex so TaskPool workers may draw concurrently; under
/// concurrency the per-site draw *order* follows task interleaving (chaos
/// tests that assert exact accounting run the flow single-threaded). The
/// disabled fast path stays a single relaxed atomic load.
class FaultInjector {
 public:
  static FaultInjector& global();

  void enable(const FaultConfig& config);
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// One deterministic draw at the given site. Returns true when the fault
  /// should fire; bumps per-site draw/fire counters.
  bool should_fail(FaultSite site);

  long fired(FaultSite site) const;
  long draws(FaultSite site) const;
  long total_fired() const;

 private:
  FaultInjector() = default;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;  ///< guards everything below
  FaultConfig config_;
  long total_draws_ = 0;
  std::array<long, kNumFaultSites> site_draws_{};
  std::array<long, kNumFaultSites> site_fires_{};
};

/// RAII scope: enables the global injector on construction (resetting its
/// counters), disables it on destruction. Fired counts remain readable after
/// the scope ends, until the next enable().
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(const FaultConfig& config) {
    FaultInjector::global().enable(config);
  }
  ~ScopedFaultInjection() { FaultInjector::global().disable(); }

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

}  // namespace olp

#include "util/budget.hpp"

#include <limits>
#include <sstream>

#include "util/env.hpp"
#include "util/faults.hpp"
#include "util/obs.hpp"

namespace olp {

const char* budget_kind_name(BudgetKind kind) {
  switch (kind) {
    case BudgetKind::kNone:
      return "none";
    case BudgetKind::kDeadline:
      return "deadline";
    case BudgetKind::kTestbenches:
      return "testbenches";
    case BudgetKind::kChecks:
      return "checks";
    case BudgetKind::kCancelled:
      return "cancelled";
    case BudgetKind::kInjected:
      return "injected";
  }
  return "unknown";
}

BudgetOptions budget_options_from_env(BudgetOptions base) {
  const double deadline_ms = env::number("OLP_DEADLINE_MS", -1.0);
  if (deadline_ms >= 0.0) base.deadline_s = deadline_ms / 1000.0;
  const double benches = env::number("OLP_TESTBENCH_BUDGET", -1.0);
  if (benches >= 0.0) base.max_testbenches = static_cast<long>(benches);
  return base;
}

std::string BudgetStatus::to_string() const {
  std::ostringstream os;
  os << "budget{";
  if (!limited) {
    os << "unlimited";
  } else {
    bool first = true;
    auto sep = [&first, &os]() {
      if (!first) os << ", ";
      first = false;
    };
    if (deadline_s > 0.0) {
      sep();
      os << "deadline " << deadline_s << " s";
    }
    if (testbench_limit >= 0) {
      sep();
      os << "testbenches " << testbench_limit;
    }
    if (check_limit >= 0) {
      sep();
      os << "checks " << check_limit;
    }
  }
  os << "; elapsed " << elapsed_s << " s, testbenches "
     << testbenches_consumed << ", checks " << checks;
  if (exhausted) os << "; exhausted by " << budget_kind_name(tripped);
  os << "}";
  return os.str();
}

bool Budget::check() {
  const long checks = checks_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (exhausted_.load(std::memory_order_relaxed)) return true;
  if (FaultInjector::global().should_fail(FaultSite::kBudgetExhaustion)) {
    trip(BudgetKind::kInjected);
  } else if (cancel_requested_.load(std::memory_order_relaxed)) {
    trip(BudgetKind::kCancelled);
  } else if (opt_.max_checks >= 0 && checks > opt_.max_checks) {
    trip(BudgetKind::kChecks);
  } else if (opt_.max_testbenches >= 0 &&
             testbenches_.load(std::memory_order_relaxed) >=
                 opt_.max_testbenches) {
    trip(BudgetKind::kTestbenches);
  } else if (opt_.deadline_s > 0.0 && stopwatch_.seconds() >= opt_.deadline_s) {
    trip(BudgetKind::kDeadline);
  }
  return exhausted_.load(std::memory_order_relaxed);
}

void Budget::trip(BudgetKind kind) {
  // First trip wins: record the kind before publishing exhaustion, so a
  // racing reader that observes exhausted == true also sees a non-kNone
  // kind (the exchange makes later trips no-ops).
  BudgetKind expected = BudgetKind::kNone;
  if (tripped_.compare_exchange_strong(expected, kind,
                                       std::memory_order_relaxed)) {
    exhausted_.store(true, std::memory_order_release);
  }
}

double Budget::remaining_s() const {
  if (opt_.deadline_s <= 0.0) return std::numeric_limits<double>::infinity();
  const double left = opt_.deadline_s - stopwatch_.seconds();
  return left > 0.0 ? left : 0.0;
}

long Budget::remaining_testbenches() const {
  if (opt_.max_testbenches < 0) return -1;
  const long left = opt_.max_testbenches - testbenches_;
  return left > 0 ? left : 0;
}

BudgetStatus Budget::status() const {
  BudgetStatus s;
  s.limited = limited();
  s.exhausted = exhausted();
  s.tripped = tripped_;
  s.elapsed_s = stopwatch_.seconds();
  s.deadline_s = opt_.deadline_s > 0.0 ? opt_.deadline_s : 0.0;
  s.testbenches_consumed = testbenches_;
  s.testbench_limit = opt_.max_testbenches >= 0 ? opt_.max_testbenches : -1;
  s.checks = checks_;
  s.check_limit = opt_.max_checks >= 0 ? opt_.max_checks : -1;
  return s;
}

std::string Budget::description() const {
  std::ostringstream os;
  switch (tripped_) {
    case BudgetKind::kNone:
      os << "budget not exhausted";
      break;
    case BudgetKind::kDeadline:
      os << "deadline budget exhausted (" << opt_.deadline_s << " s limit, "
         << stopwatch_.seconds() << " s elapsed)";
      break;
    case BudgetKind::kTestbenches:
      os << "testbench budget exhausted (" << opt_.max_testbenches
         << " limit, " << testbenches_ << " consumed)";
      break;
    case BudgetKind::kChecks:
      os << "check budget exhausted (" << opt_.max_checks << " limit, "
         << checks_ << " consumed)";
      break;
    case BudgetKind::kCancelled:
      os << "execution cancelled";
      break;
    case BudgetKind::kInjected:
      os << "budget exhaustion injected (chaos site \"budget\")";
      break;
  }
  return os.str();
}

void BudgetObserver::stage_boundary(const char* checks_counter) {
  const long checks = budget_.checks();
  obs::counter_add(checks_counter, checks - last_checks_);
  last_checks_ = checks;
  const BudgetOptions& opt = budget_.options();
  if (opt.deadline_s > 0.0) {
    obs::record("budget.remaining_s", budget_.remaining_s());
  }
  if (opt.max_testbenches >= 0) {
    obs::record("budget.remaining_testbenches",
                static_cast<double>(budget_.remaining_testbenches()));
  }
}

}  // namespace olp

#pragma once
// Global routing over a g-cell grid.
//
// The router works on a 3D grid (x, y, metal layer) with per-layer preferred
// directions, via costs, and soft congestion penalties. Multi-pin nets are
// routed incrementally: each additional pin is connected to the partial tree
// by a search whose target is the entire tree (so Steiner points emerge
// naturally — paper Sec. III-B1 requires Steiner-aware routes).
//
// Output per net: the wire segments (layer + endpoints), total length per
// layer and via count — exactly the information primitive port optimization
// consumes ("distance, layer and via information provided by the global
// router").
//
// Entry point: ONE call, route(net, pins, RouteRequest). The request selects
// the search confinement window, the widened-layer fallback retry, the
// search core (classic Dijkstra vs. the pattern + A*/bidirectional fast
// core), and optional negotiated-congestion cost shaping. The historic
// route() / route_in_window() / route_with_fallback() signatures remain as
// [[deprecated]] inline wrappers that forward verbatim (PR 5 convention);
// in-repo call sites use the request form. Backend-level orchestration
// (net order, rip-up-and-reroute, partitioned batches) lives one level up
// in route/router_engine.hpp.

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "geom/geometry.hpp"
#include "tech/technology.hpp"

namespace olp {
class Budget;
class DiagnosticsSink;
}

namespace olp::route {

/// One straight routed segment on a metal layer (endpoints in nm).
struct RouteSegment {
  tech::Layer layer = tech::Layer::kM1;
  geom::Point a;
  geom::Point b;
  /// Segment length [m].
  double length() const { return geom::to_meters(geom::manhattan(a, b)); }
};

/// The routed tree of one net.
struct NetRoute {
  std::string net;
  std::vector<RouteSegment> segments;
  int vias = 0;
  bool routed = false;

  /// Total wire length on one layer [m].
  double length_on(tech::Layer layer) const;
  /// Total wire length across layers [m].
  double total_length() const;
  /// Layer carrying the most wirelength (the paper quotes routes as
  /// "on metal 3, 2 um long"); defaults to M3 for empty routes.
  tech::Layer dominant_layer() const;
};

struct RouterOptions {
  double gcell_size = 200e-9;  ///< grid pitch [m]
  int min_layer = 2;           ///< lowest routing metal index (0 = M1); the
                               ///< paper's global routes run on M3 and up
  int max_layer = 4;           ///< highest routing metal index
  double via_cost = 2.0;       ///< in units of gcell steps
  double congestion_cost = 4.0;///< extra cost per unit overflow
  int edge_capacity = 8;       ///< tracks per gcell edge per layer
};

/// An inclusive gcell rectangle restricting where a search may expand —
/// the unit of independence for dependency-partitioned concurrent routing
/// (route/parallel.hpp): two nets whose windows are disjoint read and
/// write disjoint congestion edges, because every edge a windowed search
/// touches has BOTH endpoints inside the window.
struct GridWindow {
  int x_lo = 0, y_lo = 0, x_hi = 0, y_hi = 0;

  bool overlaps(const GridWindow& o) const {
    return x_lo <= o.x_hi && o.x_lo <= x_hi && y_lo <= o.y_hi &&
           o.y_lo <= y_hi;
  }
};

/// The detour headroom, in gcells, that window-confined routing adds around
/// the snapped pin bounding box. Shared by GlobalRouter::detour_window and
/// the batch coloring in route/parallel.cpp so the two can never drift
/// (historically both hard-coded 6).
inline constexpr int kDetourMarginCells = 6;

/// Per-edge negotiated-congestion state (PathFinder-style), owned by the
/// negotiated router engine and consulted by the fast search core. Arrays
/// are indexed exactly like the router's usage grids (one slot per node per
/// direction); costs are in quantized search units (see search.cpp).
struct NegotiationCosts {
  std::vector<long long> history_x;  ///< accumulated past-overflow cost, +x edges
  std::vector<long long> history_y;  ///< accumulated past-overflow cost, +y edges
  /// Multiplies the present congestion term: grows every negotiation
  /// iteration so persistent overflow becomes unaffordable.
  double present_factor = 1.0;
};

/// Everything one route(...) call needs beyond the net and its pins. The
/// defaults reproduce the historic bare route(): full grid, classic search,
/// no retry, no instrumentation envelope.
struct RouteRequest {
  /// Confine the search to this gcell window (pins are clamped into it);
  /// empty = the full grid. Confined calls on DISJOINT windows may run
  /// concurrently: each search allocates its own scratch state and only
  /// touches congestion edges inside its window. A net that cannot be
  /// routed inside its window is returned with routed=false.
  std::optional<GridWindow> window;
  /// Full-service per-net entry (the historic route_with_fallback): wraps
  /// the attempt in the "router.net" span + router.* counters and, when the
  /// primary attempt fails and the layer window is not already maximal,
  /// retries once on a fallback grid widened to every routing layer. A net
  /// that still fails carries an error diagnostic. Budget exhaustion skips
  /// the retry.
  bool with_fallback = false;
  /// Use the fast search core: L/Z pattern candidates first (see
  /// `patterns`), then goal-directed A* — bidirectional Dijkstra for
  /// small-tree connections — on a bucket (Dial) priority queue with
  /// integer-quantized costs. A different (still deterministic) trajectory
  /// than the classic heap Dijkstra; backends using it carry their own
  /// goldens. false = the byte-identical classic search.
  bool fast = false;
  /// (fast only) Try straight/L/Z pattern candidates before full search for
  /// short connections; a pattern is accepted only when congestion-free and
  /// within a provable-optimality slack, so quality never degrades below
  /// the search result by more than the documented bound.
  bool patterns = true;
  /// (fast only) Negotiated-congestion cost shaping: history + present-cost
  /// terms added to every edge. Not owned, may be null; arrays must match
  /// this router's grid (GlobalRouter::edge_array_size).
  const NegotiationCosts* negotiation = nullptr;
};

/// Grid-based global router for a fixed region.
class GlobalRouter {
 public:
  using GridWindow = route::GridWindow;

  /// `region` is the placement bounding box in nm (expanded internally by
  /// one gcell of halo).
  GlobalRouter(const tech::Technology& technology, geom::Rect region,
               RouterOptions options = {});
  ~GlobalRouter();

  /// The whole grid as a window.
  GridWindow full_window() const { return {0, 0, nx_ - 1, ny_ - 1}; }

  /// Bounding window of the snapped pin gcells, expanded by `margin_cells`
  /// on every side (clamped to the grid). The margin is detour headroom: a
  /// windowed search can still step around congestion without leaving its
  /// partition.
  GridWindow window_for(const std::vector<geom::Point>& pins,
                        int margin_cells) const;

  /// window_for with the canonical detour margin (kDetourMarginCells) —
  /// the one helper both window-confined routing and the partition coloring
  /// use, so their notion of a net's neighborhood cannot drift.
  GridWindow detour_window(const std::vector<geom::Point>& pins) const {
    return window_for(pins, kDetourMarginCells);
  }

  /// THE routing entry point. Routes a net over the given pin locations
  /// (nm) as described by `request`; updates congestion so later nets avoid
  /// used edges. Pins are snapped to the nearest gcell (and clamped into
  /// the request window when one is set).
  NetRoute route(const std::string& net_name,
                 const std::vector<geom::Point>& pins,
                 const RouteRequest& request);

  [[deprecated("use route(net, pins, RouteRequest{})")]]
  NetRoute route(const std::string& net_name,
                 const std::vector<geom::Point>& pins) {
    return route(net_name, pins, RouteRequest{});
  }

  [[deprecated("use route(net, pins, RouteRequest{.window = ...})")]]
  NetRoute route_in_window(const std::string& net_name,
                           const std::vector<geom::Point>& pins,
                           const GridWindow& window) {
    RouteRequest request;
    request.window = window;
    return route(net_name, pins, request);
  }

  [[deprecated("use route(net, pins, RouteRequest{.with_fallback = true})")]]
  NetRoute route_with_fallback(const std::string& net_name,
                               const std::vector<geom::Point>& pins) {
    RouteRequest request;
    request.with_fallback = true;
    return route(net_name, pins, request);
  }

  /// Attaches a diagnostics sink (may be null to detach); the sink must
  /// outlive the router.
  void set_diagnostics(DiagnosticsSink* sink);

  /// Attaches an execution budget (may be null to detach). Exhaustion stops
  /// per-pin tree growth (the net is reported routed=false) and skips the
  /// widened-layer fallback retry.
  void set_budget(Budget* budget);

  /// The attached sink/budget (may be null) — router engines orchestrating
  /// many route() calls share them instead of carrying their own.
  DiagnosticsSink* diagnostics() const { return diag_; }
  Budget* budget() const { return budget_; }

  /// Removes a previously routed net's wire usage from the congestion grid
  /// (negotiated rip-up). Only routes produced by THIS router may be ripped
  /// up; segments are walked gcell by gcell, so both per-step (classic) and
  /// per-leg (pattern) segment granularities work.
  void rip_up(const NetRoute& route);

  /// Re-applies a route's wire usage (restoring a salvaged best-so-far
  /// solution after negotiation).
  void commit(const NetRoute& route);

  /// Sum over all edges of max(0, usage - capacity): the negotiation
  /// objective. Zero means every edge fits its tracks.
  long total_overflow() const;

  /// PathFinder history accumulation: adds `units` x overflow to the
  /// history of every currently overflowing edge. `costs` arrays must be
  /// sized edge_array_size().
  void accumulate_history(NegotiationCosts& costs, long long units) const;

  /// Fraction of edges at or above capacity.
  double congestion_ratio() const;

  /// Size of the per-direction edge arrays (for NegotiationCosts sizing).
  std::size_t edge_array_size() const { return usage_x_.size(); }

  int width() const { return nx_; }
  int height() const { return ny_; }
  int layers() const { return nl_; }
  const RouterOptions& options() const { return opt_; }

 private:
  struct FastScratch;  // search.cpp: stamped dist/prev arrays + bucket queues
  struct FastScratchDeleter {
    // Out of line (search.cpp) so FastScratch can stay incomplete here.
    void operator()(FastScratch* scratch) const;
  };

  int index(int x, int y, int l) const { return (l * ny_ + y) * nx_ + x; }
  bool layer_horizontal(int l) const;
  std::pair<int, int> snap(geom::Point p) const;
  /// Layer index of a metal layer (inverse of tech::metal_layer).
  int layer_index(tech::Layer layer) const;

  /// Shared preamble (chaos draw, pin count check) + core dispatch.
  NetRoute route_core(const std::string& net_name,
                      const std::vector<geom::Point>& pins,
                      const RouteRequest& request);
  /// The classic per-net heap Dijkstra (byte-identical to the seed router).
  NetRoute route_classic(const std::string& net_name,
                         const std::vector<geom::Point>& pins,
                         const GridWindow& win);
  /// The fast core (search.cpp): patterns + A*/bidirectional on buckets.
  NetRoute route_fast(const std::string& net_name,
                      const std::vector<geom::Point>& pins,
                      const GridWindow& win, const RouteRequest& request);
  /// Walks a route's segments applying `delta` to the traversed edges.
  void apply_usage(const NetRoute& route, int delta);

  const tech::Technology& tech_;
  RouterOptions opt_;
  geom::Rect region_;
  /// The caller's region before halo expansion (seed for the fallback grid,
  /// which must not apply the halo twice).
  geom::Rect input_region_;
  int nx_ = 0, ny_ = 0, nl_ = 0;
  /// Usage per directed grid edge, stored per node per direction
  /// (0:+x, 1:+y); via usage is not capacity-limited.
  std::vector<int> usage_x_;
  std::vector<int> usage_y_;
  DiagnosticsSink* diag_ = nullptr;
  Budget* budget_ = nullptr;
  /// Lazily created widened-layer-window router for the fallback retry.
  std::unique_ptr<GlobalRouter> fallback_;
  /// Lazily created fast-core scratch (search.cpp); never shared between
  /// concurrent windowed calls — the fast core is only used by the serial
  /// backends, and windowed partitioned calls use the classic core.
  std::unique_ptr<FastScratch, FastScratchDeleter> fast_;
};

}  // namespace olp::route

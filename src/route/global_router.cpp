#include "route/global_router.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "util/budget.hpp"
#include "util/diag.hpp"
#include "util/error.hpp"
#include "util/faults.hpp"
#include "util/logging.hpp"
#include "util/obs.hpp"

namespace olp::route {

double NetRoute::length_on(tech::Layer layer) const {
  double total = 0.0;
  for (const RouteSegment& s : segments) {
    if (s.layer == layer) total += s.length();
  }
  return total;
}

double NetRoute::total_length() const {
  double total = 0.0;
  for (const RouteSegment& s : segments) total += s.length();
  return total;
}

tech::Layer NetRoute::dominant_layer() const {
  double best_len = -1.0;
  tech::Layer best = tech::Layer::kM3;
  for (int l = 0; l < tech::kNumRoutingLayers; ++l) {
    const tech::Layer layer = tech::metal_layer(l);
    const double len = length_on(layer);
    if (len > best_len && len > 0) {
      best_len = len;
      best = layer;
    }
  }
  return best;
}

GlobalRouter::GlobalRouter(const tech::Technology& technology,
                           geom::Rect region, RouterOptions options)
    : tech_(technology), opt_(options), region_(region),
      input_region_(region) {
  OLP_CHECK(opt_.gcell_size > 0, "gcell size must be positive");
  OLP_CHECK(opt_.min_layer >= 0 && opt_.max_layer < tech::kNumRoutingLayers &&
                opt_.min_layer <= opt_.max_layer,
            "bad layer range");
  const geom::Coord halo = geom::to_nm(opt_.gcell_size);
  region_ = geom::Rect{region.x_lo - halo, region.y_lo - halo,
                       region.x_hi + halo, region.y_hi + halo};
  const double w = geom::to_meters(region_.width());
  const double h = geom::to_meters(region_.height());
  nx_ = std::max(2, static_cast<int>(std::ceil(w / opt_.gcell_size)) + 1);
  ny_ = std::max(2, static_cast<int>(std::ceil(h / opt_.gcell_size)) + 1);
  nl_ = tech::kNumRoutingLayers;
  usage_x_.assign(static_cast<std::size_t>(nx_ * ny_ * nl_), 0);
  usage_y_.assign(static_cast<std::size_t>(nx_ * ny_ * nl_), 0);
}


bool GlobalRouter::layer_horizontal(int l) const {
  return tech_.metals[static_cast<std::size_t>(l)].horizontal;
}

int GlobalRouter::layer_index(tech::Layer layer) const {
  for (int l = 0; l < nl_; ++l) {
    if (tech::metal_layer(l) == layer) return l;
  }
  OLP_CHECK(false, "segment on a non-routing layer");
  return 0;
}

void GlobalRouter::set_diagnostics(DiagnosticsSink* sink) {
  diag_ = sink;
  if (fallback_) fallback_->set_diagnostics(sink);
}

void GlobalRouter::set_budget(Budget* budget) {
  budget_ = budget;
  if (fallback_) fallback_->set_budget(budget);
}

std::pair<int, int> GlobalRouter::snap(geom::Point p) const {
  int gx = static_cast<int>(
      std::llround(geom::to_meters(p.x - region_.x_lo) / opt_.gcell_size));
  int gy = static_cast<int>(
      std::llround(geom::to_meters(p.y - region_.y_lo) / opt_.gcell_size));
  gx = std::clamp(gx, 0, nx_ - 1);
  gy = std::clamp(gy, 0, ny_ - 1);
  return {gx, gy};
}

GridWindow GlobalRouter::window_for(const std::vector<geom::Point>& pins,
                                    int margin_cells) const {
  GridWindow w{nx_ - 1, ny_ - 1, 0, 0};
  for (const geom::Point& p : pins) {
    const auto [gx, gy] = snap(p);
    w.x_lo = std::min(w.x_lo, gx);
    w.y_lo = std::min(w.y_lo, gy);
    w.x_hi = std::max(w.x_hi, gx);
    w.y_hi = std::max(w.y_hi, gy);
  }
  w.x_lo = std::max(0, w.x_lo - margin_cells);
  w.y_lo = std::max(0, w.y_lo - margin_cells);
  w.x_hi = std::min(nx_ - 1, w.x_hi + margin_cells);
  w.y_hi = std::min(ny_ - 1, w.y_hi + margin_cells);
  return w;
}

NetRoute GlobalRouter::route(const std::string& net_name,
                             const std::vector<geom::Point>& pins,
                             const RouteRequest& request) {
  if (!request.with_fallback) return route_core(net_name, pins, request);

  // Full-service entry: instrumentation envelope + widened-layer retry.
  obs::Span span("router.net", [&] { return net_name; });
  obs::counter_add("router.nets");
  RouteRequest primary_req = request;
  primary_req.with_fallback = false;
  NetRoute primary = route_core(net_name, pins, primary_req);
  if (primary.routed) {
    obs::record("router.net_length_um", primary.total_length() * 1e6);
    return primary;
  }

  const bool window_maximal =
      opt_.min_layer == 0 && opt_.max_layer == tech::kNumRoutingLayers - 1;
  if (window_maximal) {
    obs::counter_add("router.unrouted");
    if (diag_) {
      diag_->report(DiagSeverity::kError, "router", net_name,
                    "unrouted and layer window already maximal; giving up");
    }
    return primary;
  }
  // Budget-bounded retry: exhaustion skips the widened-layer fallback; the
  // net stays unrouted and the flow degrades it downstream.
  if (budget_ != nullptr && budget_->check()) {
    obs::counter_add("router.unrouted");
    obs::counter_add("budget.truncations");
    if (diag_) {
      diag_->report(DiagSeverity::kWarning, "router", net_name,
                    budget_->description() +
                        "; skipping widened-layer retry, net stays unrouted");
    }
    return primary;
  }
  obs::counter_add("router.fallback_retries");

  if (!fallback_) {
    RouterOptions widened = opt_;
    widened.min_layer = 0;
    widened.max_layer = tech::kNumRoutingLayers - 1;
    // Built from the pre-halo region so the fallback grid covers the same
    // area (the ctor re-applies the halo).
    fallback_ = std::make_unique<GlobalRouter>(tech_, input_region_, widened);
    fallback_->set_diagnostics(diag_);
  }
  if (diag_) {
    diag_->report(DiagSeverity::kWarning, "router", net_name,
                  "unrouted in layers [" + std::to_string(opt_.min_layer) +
                      ", " + std::to_string(opt_.max_layer) +
                      "]; retrying with widened layer window [0, " +
                      std::to_string(tech::kNumRoutingLayers - 1) + "]");
  }
  OLP_WARN << "router: net " << net_name
           << " unrouted; retrying with widened layer window";
  // The retry runs on the fallback grid, so the caller's window and
  // negotiation arrays (sized for THIS grid) do not transfer.
  RouteRequest retry = primary_req;
  retry.window.reset();
  retry.negotiation = nullptr;
  NetRoute widened = fallback_->route_core(net_name, pins, retry);
  if (!widened.routed) {
    obs::counter_add("router.unrouted");
    if (diag_) {
      diag_->report(DiagSeverity::kError, "router", net_name,
                    "unrouted even with widened layer window; giving up");
    }
  } else {
    obs::record("router.net_length_um", widened.total_length() * 1e6);
  }
  return widened;
}

NetRoute GlobalRouter::route_core(const std::string& net_name,
                                  const std::vector<geom::Point>& pins,
                                  const RouteRequest& request) {
  NetRoute result;
  result.net = net_name;
  OLP_CHECK(pins.size() >= 2, "routing needs at least two pins");
  if (FaultInjector::global().should_fail(FaultSite::kRouteFailure)) {
    if (diag_) {
      diag_->report(DiagSeverity::kWarning, "chaos",
                    fault_site_name(FaultSite::kRouteFailure),
                    "injected route failure on net " + net_name);
    }
    result.routed = false;
    return result;
  }
  const GridWindow win = request.window ? *request.window : full_window();
  if (request.fast) return route_fast(net_name, pins, win, request);
  return route_classic(net_name, pins, win);
}

NetRoute GlobalRouter::route_classic(const std::string& net_name,
                                     const std::vector<geom::Point>& pins,
                                     const GridWindow& win) {
  NetRoute result;
  result.net = net_name;

  // Snap into the window: with the full window this is the plain grid snap
  // (the clamps are no-ops), keeping the default path bit-identical.
  auto snap_in = [&](geom::Point p) {
    auto [gx, gy] = snap(p);
    gx = std::clamp(gx, win.x_lo, win.x_hi);
    gy = std::clamp(gy, win.y_lo, win.y_hi);
    return std::pair<int, int>{gx, gy};
  };
  auto unsnap = [&](int gx, int gy) {
    return geom::Point{
        region_.x_lo + geom::to_nm(gx * opt_.gcell_size),
        region_.y_lo + geom::to_nm(gy * opt_.gcell_size)};
  };

  const int total_nodes = nx_ * ny_ * nl_;
  // Tree membership per (x,y,l) node.
  std::vector<char> in_tree(static_cast<std::size_t>(total_nodes), 0);

  // Seed the tree with the first pin on every allowed layer at its gcell
  // (pins are block ports reachable through a via stack).
  {
    const auto [gx, gy] = snap_in(pins[0]);
    for (int l = opt_.min_layer; l <= opt_.max_layer; ++l) {
      in_tree[static_cast<std::size_t>(index(gx, gy, l))] = 1;
    }
  }

  struct QEntry {
    double cost;
    int node;
    bool operator<(const QEntry& o) const { return cost > o.cost; }
  };

  for (std::size_t p = 1; p < pins.size(); ++p) {
    // Budget-bounded tree growth: a partial tree is not a usable route (not
    // all pins connected), so the whole net degrades to routed=false.
    if (budget_ != nullptr && budget_->check()) {
      if (diag_) {
        diag_->report(DiagSeverity::kWarning, "router", net_name,
                      budget_->description() + "; net abandoned after " +
                          std::to_string(p - 1) + " of " +
                          std::to_string(pins.size() - 1) +
                          " pin connections");
      }
      result.routed = false;
      return result;
    }
    const auto [sx, sy] = snap_in(pins[p]);
    // Dijkstra from the pin to any tree node.
    std::vector<double> dist(static_cast<std::size_t>(total_nodes),
                             std::numeric_limits<double>::infinity());
    std::vector<int> prev(static_cast<std::size_t>(total_nodes), -1);
    std::priority_queue<QEntry> queue;
    for (int l = opt_.min_layer; l <= opt_.max_layer; ++l) {
      const int nid = index(sx, sy, l);
      dist[static_cast<std::size_t>(nid)] = 0.0;
      queue.push({0.0, nid});
    }

    int reached = -1;
    while (!queue.empty()) {
      const QEntry top = queue.top();
      queue.pop();
      if (top.cost > dist[static_cast<std::size_t>(top.node)] + 1e-12) continue;
      if (in_tree[static_cast<std::size_t>(top.node)]) {
        reached = top.node;
        break;
      }
      const int l = top.node / (nx_ * ny_);
      const int rem = top.node % (nx_ * ny_);
      const int y = rem / nx_;
      const int x = rem % nx_;

      auto relax = [&](int nid, double edge_cost) {
        const double nd = top.cost + edge_cost;
        if (nd < dist[static_cast<std::size_t>(nid)] - 1e-12) {
          dist[static_cast<std::size_t>(nid)] = nd;
          prev[static_cast<std::size_t>(nid)] = top.node;
          queue.push({nd, nid});
        }
      };

      // Mild preference for lower layers keeps short nets off the thick
      // upper metals (and makes routes deterministic among equal-length
      // alternatives).
      const double layer_bias = 0.02 * l;
      // Wire moves in the preferred direction of the layer.
      if (layer_horizontal(l)) {
        if (x + 1 <= win.x_hi) {
          const int over = std::max(
              0, usage_x_[static_cast<std::size_t>(top.node)] + 1 -
                     opt_.edge_capacity);
          relax(index(x + 1, y, l),
                1.0 + layer_bias + opt_.congestion_cost * over);
        }
        if (x > win.x_lo) {
          const int from = index(x - 1, y, l);
          const int over = std::max(
              0, usage_x_[static_cast<std::size_t>(from)] + 1 -
                     opt_.edge_capacity);
          relax(from, 1.0 + layer_bias + opt_.congestion_cost * over);
        }
      } else {
        if (y + 1 <= win.y_hi) {
          const int over = std::max(
              0, usage_y_[static_cast<std::size_t>(top.node)] + 1 -
                     opt_.edge_capacity);
          relax(index(x, y + 1, l),
                1.0 + layer_bias + opt_.congestion_cost * over);
        }
        if (y > win.y_lo) {
          const int from = index(x, y - 1, l);
          const int over = std::max(
              0, usage_y_[static_cast<std::size_t>(from)] + 1 -
                     opt_.edge_capacity);
          relax(from, 1.0 + layer_bias + opt_.congestion_cost * over);
        }
      }
      // Via moves.
      if (l + 1 <= opt_.max_layer) relax(index(x, y, l + 1), opt_.via_cost);
      if (l - 1 >= opt_.min_layer) relax(index(x, y, l - 1), opt_.via_cost);
    }

    if (reached < 0) {
      if (diag_) {
        diag_->report(DiagSeverity::kWarning, "router", net_name,
                      "no path to pin " + std::to_string(p) + " within layers [" +
                          std::to_string(opt_.min_layer) + ", " +
                          std::to_string(opt_.max_layer) + "]");
      }
      result.routed = false;
      return result;
    }

    // Trace back, emitting segments and marking tree membership + usage.
    int node = reached;
    while (node >= 0) {
      in_tree[static_cast<std::size_t>(node)] = 1;
      const int pnode = prev[static_cast<std::size_t>(node)];
      if (pnode >= 0) {
        const int l1 = node / (nx_ * ny_);
        const int r1 = node % (nx_ * ny_);
        const int l2 = pnode / (nx_ * ny_);
        const int r2 = pnode % (nx_ * ny_);
        const int y1 = r1 / nx_, x1 = r1 % nx_;
        const int y2 = r2 / nx_, x2 = r2 % nx_;
        if (l1 != l2) {
          ++result.vias;
        } else {
          RouteSegment seg;
          seg.layer = tech::metal_layer(l1);
          seg.a = unsnap(x1, y1);
          seg.b = unsnap(x2, y2);
          result.segments.push_back(seg);
          // Update usage on the traversed edge (stored at the lower node).
          if (x1 != x2) {
            const int lo = index(std::min(x1, x2), y1, l1);
            usage_x_[static_cast<std::size_t>(lo)] += 1;
          } else if (y1 != y2) {
            const int lo = index(x1, std::min(y1, y2), l1);
            usage_y_[static_cast<std::size_t>(lo)] += 1;
          }
        }
      }
      node = pnode;
    }
  }

  // Each pin connects to the grid through a via stack; account one via per
  // pin for the stack from the pin layer (M2) to the routing layer range.
  result.vias += static_cast<int>(pins.size());
  result.routed = true;
  return result;
}

void GlobalRouter::apply_usage(const NetRoute& route, int delta) {
  for (const RouteSegment& s : route.segments) {
    const int l = layer_index(s.layer);
    const auto [x1, y1] = snap(s.a);
    const auto [x2, y2] = snap(s.b);
    if (y1 == y2 && x1 != x2) {
      // Segment endpoints sit on gcell centers (unsnap points), so walking
      // the gcells between them recovers the exact edges the search marked,
      // whether the segment is one step (classic) or a whole leg (pattern).
      for (int x = std::min(x1, x2); x < std::max(x1, x2); ++x) {
        usage_x_[static_cast<std::size_t>(index(x, y1, l))] += delta;
      }
    } else if (x1 == x2 && y1 != y2) {
      for (int y = std::min(y1, y2); y < std::max(y1, y2); ++y) {
        usage_y_[static_cast<std::size_t>(index(x1, y, l))] += delta;
      }
    }
  }
}

void GlobalRouter::rip_up(const NetRoute& route) { apply_usage(route, -1); }

void GlobalRouter::commit(const NetRoute& route) { apply_usage(route, +1); }

void GlobalRouter::accumulate_history(NegotiationCosts& costs,
                                      long long units) const {
  OLP_CHECK(costs.history_x.size() == usage_x_.size() &&
                costs.history_y.size() == usage_y_.size(),
            "negotiation arrays do not match this router's grid");
  for (std::size_t i = 0; i < usage_x_.size(); ++i) {
    const int over = usage_x_[i] - opt_.edge_capacity;
    if (over > 0) costs.history_x[i] += units * over;
  }
  for (std::size_t i = 0; i < usage_y_.size(); ++i) {
    const int over = usage_y_[i] - opt_.edge_capacity;
    if (over > 0) costs.history_y[i] += units * over;
  }
}

long GlobalRouter::total_overflow() const {
  long over = 0;
  for (int v : usage_x_) over += std::max(0, v - opt_.edge_capacity);
  for (int v : usage_y_) over += std::max(0, v - opt_.edge_capacity);
  return over;
}

double GlobalRouter::congestion_ratio() const {
  long over = 0;
  long total = 0;
  for (int v : usage_x_) {
    total += 1;
    if (v >= opt_.edge_capacity) ++over;
  }
  for (int v : usage_y_) {
    total += 1;
    if (v >= opt_.edge_capacity) ++over;
  }
  return total > 0 ? static_cast<double>(over) / static_cast<double>(total)
                   : 0.0;
}

}  // namespace olp::route

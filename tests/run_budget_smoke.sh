#!/usr/bin/env bash
# Budget smoke run: execute the 5T-OTA flow example under a deadline far
# below its unbounded runtime and assert the bounded-execution contract:
#
#   - the process still exits 0 (exhaustion degrades, never fails);
#   - the run reports itself degraded ("Flow degraded: true");
#   - the telemetry JSON is written, well-formed enough to grep, and marks
#     the budget as exhausted.
#
# Usage: OLP_FLOW_BIN=<path-to-ota_layout_flow> tests/run_budget_smoke.sh
# (ctest sets OLP_FLOW_BIN; a default build-tree location is the fallback.)
set -euo pipefail

script_dir="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
src_dir="$(dirname "${script_dir}")"
bin="${OLP_FLOW_BIN:-${src_dir}/build/examples/ota_layout_flow}"

if [[ ! -x "${bin}" ]]; then
  echo "budget smoke: flow binary not found at ${bin}" >&2
  exit 1
fi

tmp="$(mktemp -d)"
trap 'rm -rf "${tmp}"' EXIT

# 5 ms is far below the flow's unbounded runtime on any machine, so the
# deadline is guaranteed to trip mid-flow.
out="${tmp}/stdout.txt"
OLP_DEADLINE_MS=5 OLP_TRACE_DIR="${tmp}" "${bin}" > "${out}"
echo "budget smoke: flow exited 0 under a 5 ms deadline"

grep -q "^Flow degraded: true$" "${out}" || {
  echo "budget smoke: run did not report itself degraded" >&2
  cat "${out}" >&2
  exit 1
}

telemetry="${tmp}/ota_flow.telemetry.json"
[[ -s "${telemetry}" ]] || {
  echo "budget smoke: telemetry JSON missing or empty at ${telemetry}" >&2
  exit 1
}
grep -q '"budget":{' "${telemetry}" || {
  echo "budget smoke: telemetry JSON lacks the budget object" >&2
  exit 1
}
grep -q '"exhausted":true' "${telemetry}" || {
  echo "budget smoke: telemetry does not mark the budget exhausted" >&2
  exit 1
}
grep -q '"tripped":"deadline"' "${telemetry}" || {
  echo "budget smoke: telemetry does not attribute the trip to the deadline" >&2
  exit 1
}

echo "budget smoke run passed"

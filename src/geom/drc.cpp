#include "geom/drc.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace olp::geom {

std::string DrcViolation::to_string() const {
  std::ostringstream os;
  os << (kind == Kind::kMinWidth ? "min-width" : "min-spacing") << " on "
     << tech::layer_name(layer) << ": " << value * 1e9 << " nm < "
     << limit * 1e9 << " nm at (" << a.x_lo << "," << a.y_lo << ")";
  return os.str();
}

namespace {

/// Edge-to-edge spacing between two non-intersecting rects [nm].
Coord rect_spacing(const Rect& a, const Rect& b) {
  const Coord dx = std::max<Coord>(
      0, std::max(a.x_lo, b.x_lo) - std::min(a.x_hi, b.x_hi));
  const Coord dy = std::max<Coord>(
      0, std::max(a.y_lo, b.y_lo) - std::min(a.y_hi, b.y_hi));
  // Corner-to-corner counts as the Euclidean-free Manhattan max (the common
  // simplified rule): use the larger of the two gaps.
  return std::max(dx, dy);
}

}  // namespace

std::vector<DrcViolation> check_design_rules(const tech::Technology& t,
                                             const Layout& layout,
                                             const DrcOptions& options) {
  std::vector<DrcViolation> violations;

  // Bucket shapes per layer.
  std::map<tech::Layer, std::vector<const Shape*>> by_layer;
  for (const Shape& s : layout.shapes()) {
    if (tech::metal_index(s.layer) < 0 && options.metals_only) continue;
    if (s.rect.width() == 0 || s.rect.height() == 0) continue;  // markers
    by_layer[s.layer].push_back(&s);
  }

  for (const auto& [layer, shapes] : by_layer) {
    if (tech::metal_index(layer) < 0) continue;
    const tech::MetalLayerInfo& m = t.metal(layer);
    const Coord min_w = to_nm(m.min_width);
    const Coord min_s = to_nm(m.min_spacing);

    for (const Shape* s : shapes) {
      const Coord w = std::min(s->rect.width(), s->rect.height());
      if (w < min_w) {
        DrcViolation v;
        v.kind = DrcViolation::Kind::kMinWidth;
        v.layer = layer;
        v.a = s->rect;
        v.value = to_meters(w);
        v.limit = m.min_width;
        violations.push_back(v);
      }
    }

    for (std::size_t i = 0; i < shapes.size(); ++i) {
      for (std::size_t j = i + 1; j < shapes.size(); ++j) {
        const Shape* a = shapes[i];
        const Shape* b = shapes[j];
        if (options.same_net_spacing_exempt && !a->net.empty() &&
            a->net == b->net) {
          continue;
        }
        if (a->rect.intersects(b->rect)) {
          // Different-net overlap is a short: report as zero spacing.
          DrcViolation v;
          v.kind = DrcViolation::Kind::kMinSpacing;
          v.layer = layer;
          v.a = a->rect;
          v.b = b->rect;
          v.value = 0.0;
          v.limit = m.min_spacing;
          violations.push_back(v);
          continue;
        }
        const Coord gap = rect_spacing(a->rect, b->rect);
        if (gap < min_s) {
          DrcViolation v;
          v.kind = DrcViolation::Kind::kMinSpacing;
          v.layer = layer;
          v.a = a->rect;
          v.b = b->rect;
          v.value = to_meters(gap);
          v.limit = m.min_spacing;
          violations.push_back(v);
        }
      }
    }
  }
  return violations;
}

}  // namespace olp::geom

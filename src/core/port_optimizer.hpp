#pragma once
// Primitive port optimization — paper Algorithm 2.
//
// After placement and global routing, each primitive knows the external
// routes attached to its ports (length per layer, via count). Step 1 sweeps
// the number of parallel routes per port and finds the interval
// [w_min, w_max] over which the primitive cost is optimized. Step 2
// reconciles the intervals of all primitives sharing a net: overlapping
// intervals take max(w_min,i) (fewest tracks in the common region, lowest
// congestion); disjoint intervals are re-simulated over the gap range
// [min(w_max,i), max(w_min,i)] and the count minimizing the summed cost wins.
// Steiner-node handling: all branches of a net's Steiner tree use the same
// parallel-route count (Sec. III-B1).

#include <map>
#include <string>
#include <vector>

#include "core/optimizer.hpp"
#include "route/global_router.hpp"
#include "util/interval.hpp"

namespace olp {
class TaskPool;
}

namespace olp::core {

/// External route attached to one primitive port.
struct PortRoute {
  std::string port;        ///< primitive port name
  std::string circuit_net; ///< circuit-level net the port connects to
  route::NetRoute route;   ///< global-route geometry (lengths, layers, vias)
};

/// One primitive instance as seen by the port optimizer.
struct PortOptPrimitive {
  std::string instance;                   ///< instance name (reporting)
  const PrimitiveEvaluator* evaluator = nullptr;
  const pcell::PrimitiveLayout* layout = nullptr;
  extract::TuningMap tuning;              ///< from primitive tuning
  std::vector<PortRoute> routes;          ///< external routes at its ports
};

/// Per-primitive, per-net constraint produced by step 1.
struct PortConstraint {
  std::string instance;
  std::string circuit_net;
  WireInterval interval;
  std::vector<double> cost_curve;  ///< cost at w = 1..N (for reporting)
};

/// Final per-net decision after reconciliation.
struct NetWireDecision {
  std::string circuit_net;
  int parallel_routes = 1;
  bool from_overlap = true;  ///< false when the gap had to be re-simulated
};

struct PortOptimizerOptions {
  int max_wires = 8;
  /// Costs within this fraction of the minimum count as "optimized"
  /// (defines the [w_min, w_max] plateau; w_min is effectively the knee /
  /// maximum-curvature point of these cost curves).
  double plateau_tolerance = 0.04;
};

/// Converts a global route to a lumped RC for `parallel` routes. Parallel
/// routes divide resistance (wires and via stacks) and multiply capacitance.
extract::WireRc route_wire_rc(const tech::Technology& t,
                              const route::NetRoute& route, int parallel);

/// Algorithm 2 over a set of primitives sharing global routes.
class PortOptimizer {
 public:
  explicit PortOptimizer(const tech::Technology& technology,
                         PortOptimizerOptions options = {})
      : tech_(technology), options_(options) {}

  /// Attaches a diagnostics sink (may be null); receives budget-truncation
  /// records. The sink must outlive the optimizer.
  void set_diagnostics(DiagnosticsSink* sink) { diag_ = sink; }

  /// Attaches an execution budget (may be null). Exhaustion truncates the
  /// per-net wire sweeps and gap re-simulations: explored sweep prefixes
  /// still yield constraints (plateau over the explored range), unexplored
  /// nets fall back to the single-route default downstream.
  void set_budget(Budget* budget) { budget_ = budget; }

  /// Attaches a task pool (may be null for serial execution). Wire sweeps
  /// and gap re-simulations parallelize over sweep points; the ordered
  /// reduction keeps results bit-identical to the serial run.
  void set_pool(TaskPool* pool) { pool_ = pool; }

  /// Step 1: constraint generation for one primitive. Sweeps all its ports
  /// together per net (a net may touch several ports of one primitive).
  std::vector<PortConstraint> generate_constraints(
      const PortOptPrimitive& primitive) const;

  /// Step 2: reconciliation across primitives; returns one decision per net.
  std::vector<NetWireDecision> reconcile(
      const std::vector<PortOptPrimitive>& primitives,
      const std::vector<PortConstraint>& constraints) const;

  /// Convenience: both steps.
  std::vector<NetWireDecision> optimize(
      const std::vector<PortOptPrimitive>& primitives) const;

 private:
  double primitive_cost(const PortOptPrimitive& primitive,
                        const std::map<std::string, int>& net_wires) const;

  const tech::Technology& tech_;
  PortOptimizerOptions options_;
  DiagnosticsSink* diag_ = nullptr;
  Budget* budget_ = nullptr;
  TaskPool* pool_ = nullptr;
};

/// Extracts [w_min, w_max] from a cost-vs-wires curve per the plateau rule.
WireInterval interval_from_curve(const std::vector<double>& costs,
                                 double plateau_tolerance);

}  // namespace olp::core

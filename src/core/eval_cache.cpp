#include "core/eval_cache.hpp"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <utility>

#include "tech/technology.hpp"
#include "util/faults.hpp"
#include "util/obs.hpp"

namespace olp::core {

namespace {

/// Contention attribution for the shard mutex (obs::timed_lock): only a
/// failed try-lock reads the clock or records. Two sites, so the scaling
/// benchmarks can separate the READ path (taken only in locked_reads
/// baseline mode — the RCU path takes no lock at all, which is the claim
/// "obs.contention.eval_cache.wait_us" certifies) from the writer path
/// (inserts/restores, which hold the mutex across the snapshot republish
/// in every mode).
constexpr obs::LockSite kCacheLock{"obs.contention.eval_cache.contended",
                                   "obs.contention.eval_cache.wait_us"};
constexpr obs::LockSite kCacheWriteLock{
    "obs.contention.eval_cache_insert.contended",
    "obs.contention.eval_cache_insert.wait_us"};

void append_double(std::string& out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out += buf;
  out += ';';
}

void append_long(std::string& out, long value) {
  out += std::to_string(value);
  out += ';';
}

void append_str(std::string& out, const std::string& value) {
  out += value;
  out += ';';
}

void append_model(std::string& out, const spice::MosModel& m) {
  append_str(out, m.name);
  append_long(out, static_cast<long>(m.type));
  append_double(out, m.vth0);
  append_double(out, m.nslope);
  append_double(out, m.kp);
  append_double(out, m.lambda);
  append_double(out, m.lref);
  append_double(out, m.vt_thermal);
  append_double(out, m.cox);
  append_double(out, m.cov);
  append_double(out, m.cj);
  append_double(out, m.cjsw);
  append_double(out, m.avt);
}

}  // namespace

EvalCache::EvalCache(std::size_t shards)
    : EvalCache(EvalCacheOptions{shards, 0}) {}

EvalCache::EvalCache(const EvalCacheOptions& options)
    : shards_(options.shards == 0 ? 1 : options.shards),
      max_entries_(options.max_entries),
      locked_reads_(options.locked_reads) {
  if (max_entries_ > 0) {
    // Ceiling split so the shard caps sum to >= max_entries (never starving
    // a shard to zero); total occupancy may exceed max_entries by at most
    // shards-1 entries, which is the documented contract of a sharded bound.
    per_shard_cap_ = (max_entries_ + shards_.size() - 1) / shards_.size();
    if (per_shard_cap_ == 0) per_shard_cap_ = 1;
  }
}

std::string EvalCache::make_key(const pcell::PrimitiveLayout& layout,
                                const EvalCondition& condition,
                                const BiasContext& bias,
                                const spice::MosModel& nmos,
                                const spice::MosModel& pmos) {
  std::string key;
  key.reserve(256);

  // Netlist identity. Layout generation is deterministic in (netlist,
  // config), so these two sections pin down the realized geometry, the
  // parasitic annotation and the LDE shifts without walking the geometry.
  const pcell::PrimitiveNetlist& nl = layout.netlist;
  key += "n:";
  append_long(key, static_cast<long>(nl.type));
  append_str(key, nl.name);
  for (const pcell::LogicalDevice& dev : nl.devices) {
    append_str(key, dev.name);
    append_long(key, static_cast<long>(dev.mos_type));
    append_str(key, dev.drain_net);
    append_str(key, dev.gate_net);
    append_str(key, dev.source_net);
    append_long(key, dev.unit_ratio);
    append_long(key, dev.match_group);
    append_double(key, dev.vth_offset);
  }

  // Layout configuration (explicit fields; robust against to_string drift).
  const pcell::LayoutConfig& cfg = layout.config;
  key += "c:";
  append_long(key, cfg.nfin);
  append_long(key, cfg.nf);
  append_long(key, cfg.m);
  append_long(key, static_cast<long>(cfg.pattern));
  append_long(key, cfg.dummies ? 1 : 0);

  // Evaluation condition. Maps iterate in key order, so serialization is
  // canonical.
  key += "e:";
  append_long(key, condition.ideal ? 1 : 0);
  for (const auto& [terminal, wires] : condition.tuning) {
    append_str(key, terminal);
    append_long(key, wires);
  }
  key += "w:";
  for (const auto& [port, rc] : condition.port_wires) {
    append_str(key, port);
    append_double(key, rc.resistance);
    append_double(key, rc.capacitance);
  }
  key += "d:";
  for (const auto& [device, dvth] : condition.extra_dvth) {
    append_str(key, device);
    append_double(key, dvth);
  }

  // Bias context.
  key += "b:";
  append_double(key, bias.vdd);
  append_double(key, bias.bias_current);
  for (const auto& [port, v] : bias.port_voltage) {
    append_str(key, port);
    append_double(key, v);
  }
  key += "l:";
  for (const auto& [port, c] : bias.port_load_cap) {
    append_str(key, port);
    append_double(key, c);
  }

  // Model cards.
  key += "m:";
  append_model(key, nmos);
  append_model(key, pmos);
  return key;
}

std::string EvalCache::scope_key(const tech::Technology& technology,
                                 const spice::MosModel& nmos,
                                 const spice::MosModel& pmos) {
  std::string key;
  key.reserve(256);
  // Technology identity: the name plus the physical parameters that shape
  // generated layouts, parasitic annotation and LDE shifts. Two techs that
  // differ in any of these must not share evaluations.
  key += "t:";
  append_str(key, technology.name);
  append_double(key, technology.fin_pitch);
  append_double(key, technology.poly_pitch);
  append_double(key, technology.fin_width_eff);
  append_double(key, technology.gate_length);
  append_double(key, technology.diff_extension);
  append_double(key, technology.row_height);
  append_double(key, technology.diff_cont_res);
  append_double(key, technology.diff_sheet_res);
  append_double(key, technology.poly_res_sheet);
  append_double(key, technology.poly_res_cap);
  append_double(key, technology.via_res);
  append_double(key, technology.via_cap);
  append_double(key, technology.vdd);
  key += "m:";
  append_model(key, nmos);
  append_model(key, pmos);
  return key;
}

EvalCache::Shard& EvalCache::shard_for(const std::string& key) {
  const std::size_t h = std::hash<std::string>{}(key);
  return shards_[h % shards_.size()];
}

void EvalCache::republish(Shard& shard) {
  shard.published.store(std::make_shared<const Index>(shard.map),
                        std::memory_order_release);
}

bool EvalCache::record_found(const Entry* entry, MetricValues* values,
                             int client) {
  if (entry == nullptr) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  entry->referenced.store(true,
                          std::memory_order_relaxed);  // CLOCK second chance
  if (entry->restored) {
    restored_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  if (client >= 0 && entry->owner >= 0 && entry->owner != client) {
    cross_client_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  if (values != nullptr) *values = entry->values;
  return true;
}

bool EvalCache::lookup(const std::string& key, MetricValues* values,
                       int client) {
  Shard& shard = shard_for(key);
  if (locked_reads_) {
    // Baseline mode: the historical mutex-striped read (kept measurable for
    // the scaling benchmarks). Same results, different synchronization.
    const auto lock = obs::timed_lock(shard.mu, kCacheLock);
    const auto it = shard.map.find(std::string_view(key));
    return record_found(it == shard.map.end() ? nullptr : it->second.get(),
                        values, client);
  }
  // RCU read: load the published snapshot and search it. No mutex; the
  // snapshot's shared_ptr keeps every entry it references alive even if a
  // writer concurrently evicts and republishes.
  const std::shared_ptr<const Index> index =
      shard.published.load(std::memory_order_acquire);
  const Entry* entry = nullptr;
  if (index != nullptr) {
    const auto it = index->find(std::string_view(key));
    if (it != index->end()) entry = it->second.get();
  }
  return record_found(entry, values, client);
}

bool EvalCache::insert_locked(Shard& shard, EntryPtr entry) {
  const std::string_view key(entry->key);
  if (shard.map.count(key) != 0) return false;  // first writer wins
  if (per_shard_cap_ == 0) {
    // Unbounded (the deterministic default): no ring bookkeeping.
    shard.map.emplace(key, std::move(entry));
    return true;
  }
  if (shard.map.size() >= per_shard_cap_) {
    // CLOCK second-chance sweep: entries hit since the hand last passed get
    // their bit cleared and survive one more lap; the first cold entry is
    // evicted and its ring slot reused. Terminates within two laps (after
    // one full lap every bit is clear). Erasing from the authoritative map
    // does not free the entry while any published snapshot (or reader)
    // still holds it — the shared_ptr refcount IS the retire protocol.
    while (true) {
      if (shard.hand >= shard.ring.size()) shard.hand = 0;
      const auto victim = shard.map.find(shard.ring[shard.hand]);
      if (victim == shard.map.end()) {
        // Stale slot (shouldn't happen outside clear(), but stay safe).
        shard.ring[shard.hand] = key;
        ++shard.hand;
        break;
      }
      if (victim->second->referenced.load(std::memory_order_relaxed)) {
        victim->second->referenced.store(false, std::memory_order_relaxed);
        ++shard.hand;
        continue;
      }
      shard.map.erase(victim);
      evictions_.fetch_add(1, std::memory_order_relaxed);
      shard.ring[shard.hand] = key;
      ++shard.hand;
      break;
    }
  } else {
    shard.ring.push_back(key);
  }
  shard.map.emplace(key, std::move(entry));
  return true;
}

void EvalCache::insert(const std::string& key, const MetricValues& values,
                       int client) {
  auto entry = std::make_shared<Entry>();
  entry->key = key;
  entry->values = values;
  entry->owner = client;
  Shard& shard = shard_for(key);
  const auto lock = obs::timed_lock(shard.mu, kCacheWriteLock);
  if (insert_locked(shard, std::move(entry))) republish(shard);
}

EvalCacheStats EvalCache::stats() const {
  EvalCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.cross_client_hits = cross_client_hits_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.restored_hits = restored_hits_.load(std::memory_order_relaxed);
  s.capacity = static_cast<long>(max_entries_);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    s.entries += static_cast<long>(shard.map.size());
  }
  return s;
}

void EvalCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
    shard.ring.clear();
    shard.hand = 0;
    republish(shard);
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  cross_client_hits_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  restored_hits_.store(0, std::memory_order_relaxed);
}

namespace {

// -- Snapshot plumbing: length-prefixed native-endian binary records. ------

void put_u64(std::string& out, std::uint64_t v) {
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  out.append(buf, sizeof v);
}

void put_u32(std::string& out, std::uint32_t v) {
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  out.append(buf, sizeof v);
}

/// Cursor over a read-only byte buffer; every get_* checks bounds so a
/// truncated payload fails cleanly instead of reading past the end.
struct Cursor {
  const char* data;
  std::size_t size;
  std::size_t pos = 0;

  bool get_u64(std::uint64_t* v) {
    if (pos + sizeof *v > size) return false;
    std::memcpy(v, data + pos, sizeof *v);
    pos += sizeof *v;
    return true;
  }
  bool get_u32(std::uint32_t* v) {
    if (pos + sizeof *v > size) return false;
    std::memcpy(v, data + pos, sizeof *v);
    pos += sizeof *v;
    return true;
  }
  bool get_bytes(std::size_t n, std::string* out) {
    if (pos + n > size) return false;
    out->assign(data + pos, n);
    pos += n;
    return true;
  }
};

std::uint64_t fnv1a64(const char* data, std::size_t size) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

constexpr char kSnapshotMagic[8] = {'O', 'L', 'P', 'E', 'V', 'C', 1, '\n'};

void snapshot_fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

}  // namespace

std::string EvalCache::serialize_entries() const {
  std::string out;
  std::uint64_t count = 0;
  std::string body;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [key, entry] : shard.map) {
      put_u32(body, static_cast<std::uint32_t>(key.size()));
      body.append(key.data(), key.size());
      put_u32(body, static_cast<std::uint32_t>(entry->values.size()));
      for (const auto& [kind, value] : entry->values) {
        put_u32(body, static_cast<std::uint32_t>(kind));
        std::uint64_t bits;
        static_assert(sizeof bits == sizeof value);
        std::memcpy(&bits, &value, sizeof bits);
        put_u64(body, bits);
      }
      ++count;
    }
  }
  put_u64(out, count);
  out += body;
  return out;
}

bool EvalCache::restore_entries(const std::string& payload,
                                std::string* error) {
  // Decode fully into a staging list first: a payload that turns out to be
  // malformed halfway through must not leave half its entries behind.
  Cursor cur{payload.data(), payload.size()};
  std::uint64_t count = 0;
  if (!cur.get_u64(&count)) {
    snapshot_fail(error, "cache payload truncated (missing entry count)");
    return false;
  }
  std::vector<std::pair<std::string, MetricValues>> staged;
  staged.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint32_t key_len = 0;
    std::string key;
    std::uint32_t n_metrics = 0;
    if (!cur.get_u32(&key_len) || !cur.get_bytes(key_len, &key) ||
        !cur.get_u32(&n_metrics)) {
      snapshot_fail(error, "cache payload truncated in entry " +
                               std::to_string(i));
      return false;
    }
    MetricValues values;
    for (std::uint32_t m = 0; m < n_metrics; ++m) {
      std::uint32_t kind = 0;
      std::uint64_t bits = 0;
      if (!cur.get_u32(&kind) || !cur.get_u64(&bits)) {
        snapshot_fail(error, "cache payload truncated in entry " +
                                 std::to_string(i));
        return false;
      }
      double value;
      std::memcpy(&value, &bits, sizeof value);
      values[static_cast<MetricKind>(kind)] = value;
    }
    staged.emplace_back(std::move(key), std::move(values));
  }
  if (cur.pos != cur.size) {
    snapshot_fail(error, "cache payload has trailing bytes");
    return false;
  }
  // Apply, republishing each shard once at the end rather than per entry (a
  // warm restore of N entries would otherwise rebuild the snapshot N times).
  std::vector<Shard*> dirty;
  for (auto& [key, values] : staged) {
    auto entry = std::make_shared<Entry>();
    entry->key = std::move(key);
    entry->values = std::move(values);
    entry->owner = -1;
    entry->restored = true;
    Shard& shard = shard_for(entry->key);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (insert_locked(shard, std::move(entry)) &&
        (dirty.empty() || dirty.back() != &shard)) {
      dirty.push_back(&shard);
    }
  }
  for (Shard* shard : dirty) {
    std::lock_guard<std::mutex> lock(shard->mu);
    republish(*shard);
  }
  return true;
}

bool save_cache_snapshot(const std::string& path,
                         const std::map<std::string, const EvalCache*>& caches,
                         std::string* error) {
  if (FaultInjector::global().should_fail(FaultSite::kSnapshotIo)) {
    snapshot_fail(error, "injected snapshot I/O fault (save)");
    return false;
  }
  std::string body;
  put_u64(body, caches.size());
  for (const auto& [scope, cache] : caches) {
    put_u64(body, scope.size());
    body += scope;
    const std::string payload = cache->serialize_entries();
    put_u64(body, payload.size());
    body += payload;
  }
  std::string doc(kSnapshotMagic, sizeof kSnapshotMagic);
  doc += body;
  put_u64(doc, fnv1a64(body.data(), body.size()));

  // Write-then-rename: a crash (or kill -9) mid-write leaves "<path>.tmp"
  // garbage but never a half-written snapshot under the real name.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out || !out.write(doc.data(), static_cast<std::streamsize>(doc.size()))) {
      snapshot_fail(error, "cannot write " + tmp);
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    snapshot_fail(error, "cannot rename " + tmp + " to " + path);
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool load_cache_snapshot(const std::string& path,
                         std::map<std::string, std::string>* scope_payloads,
                         std::string* error) {
  scope_payloads->clear();
  if (FaultInjector::global().should_fail(FaultSite::kSnapshotIo)) {
    snapshot_fail(error, "injected snapshot I/O fault (load)");
    return false;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    snapshot_fail(error, "cannot open " + path);
    return false;
  }
  in.seekg(0, std::ios::end);
  const std::streamoff len = in.tellg();
  if (len < 0) {
    snapshot_fail(error, "cannot stat " + path);
    return false;
  }
  std::string doc(static_cast<std::size_t>(len), '\0');
  in.seekg(0);
  if (!in.read(doc.data(), len)) {
    snapshot_fail(error, "cannot read " + path);
    return false;
  }
  if (doc.size() < sizeof kSnapshotMagic + sizeof(std::uint64_t)) {
    snapshot_fail(error, "snapshot truncated (shorter than header)");
    return false;
  }
  if (std::memcmp(doc.data(), kSnapshotMagic, sizeof kSnapshotMagic) != 0) {
    snapshot_fail(error, "snapshot magic/version mismatch");
    return false;
  }
  const std::size_t body_size =
      doc.size() - sizeof kSnapshotMagic - sizeof(std::uint64_t);
  const char* body = doc.data() + sizeof kSnapshotMagic;
  std::uint64_t stored_sum = 0;
  std::memcpy(&stored_sum, doc.data() + doc.size() - sizeof stored_sum,
              sizeof stored_sum);
  if (fnv1a64(body, body_size) != stored_sum) {
    snapshot_fail(error, "snapshot checksum mismatch (truncated or corrupt)");
    return false;
  }
  Cursor cur{body, body_size};
  std::uint64_t scopes = 0;
  if (!cur.get_u64(&scopes)) {
    snapshot_fail(error, "snapshot truncated (missing scope count)");
    return false;
  }
  std::map<std::string, std::string> result;
  for (std::uint64_t i = 0; i < scopes; ++i) {
    std::uint64_t scope_len = 0;
    std::string scope;
    std::uint64_t payload_len = 0;
    std::string payload;
    if (!cur.get_u64(&scope_len) ||
        !cur.get_bytes(static_cast<std::size_t>(scope_len), &scope) ||
        !cur.get_u64(&payload_len) ||
        !cur.get_bytes(static_cast<std::size_t>(payload_len), &payload)) {
      snapshot_fail(error, "snapshot truncated in scope " + std::to_string(i));
      return false;
    }
    result[std::move(scope)] = std::move(payload);
  }
  if (cur.pos != cur.size) {
    snapshot_fail(error, "snapshot has trailing bytes");
    return false;
  }
  *scope_payloads = std::move(result);
  return true;
}

}  // namespace olp::core

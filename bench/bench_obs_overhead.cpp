// Measures the cost of disabled observability instrumentation against an
// uninstrumented baseline, plus the enabled-mode cost for reference.
//
// Each work unit is a ~microsecond arithmetic kernel — the granularity of
// the real instrumentation sites (one simulator analysis, one routed net).
// The instrumented variant adds exactly what a site pays: one Span with a
// deferred detail, one counter_add and one record. With the registry
// disabled all three reduce to a relaxed atomic load, so the measured
// overhead must be well under 1%; the harness exits nonzero (and says so in
// BENCH_obs.json) when it is not.
//
// A second section measures the ENABLED path under contention: 8 threads
// hammering shared counter/sample families through the sharded thread-local
// registry, against an in-bench reimplementation of the pre-sharding design
// (one global mutex over std::string-keyed maps — what util/obs was before
// thread-local shards). Per-op overhead is wall time PLUS time spent
// blocked on the registry mutex: on a multi-core host blocking shows up in
// wall time directly; on a single-core host the kernel overlaps it with
// other threads' progress, but it is still latency imposed on the blocked
// op (a preempted lock holder convoys every other thread for whole
// scheduling quanta). The sharded path takes no cross-thread lock on this
// path, so its wait term is zero by construction; it must come out >= 5x
// cheaper overall.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <iostream>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/logging.hpp"
#include "util/obs.hpp"
#include "util/table.hpp"
#include "util/trace_export.hpp"

namespace {

using namespace olp;

volatile double g_sink = 0.0;

/// ~1 us of floating-point work at -O2 (a small damped-oscillator update
/// loop the compiler cannot fold away through the volatile sink).
double work_unit(int seed) {
  double x = 1.0 + 1e-6 * seed;
  double v = 0.5;
  for (int i = 0; i < 400; ++i) {
    const double a = -0.3 * x - 0.01 * v;
    v += a * 1e-2;
    x += v * 1e-2;
  }
  return x + v;
}

double run_baseline(int iterations) {
  double acc = 0.0;
  for (int i = 0; i < iterations; ++i) acc += work_unit(i);
  g_sink = acc;
  return acc;
}

double run_instrumented(int iterations) {
  double acc = 0.0;
  for (int i = 0; i < iterations; ++i) {
    obs::Span span("bench.unit", [] { return std::string("unit detail"); });
    obs::counter_add("bench.units");
    const double r = work_unit(i);
    obs::record("bench.result", r);
    acc += r;
  }
  g_sink = acc;
  return acc;
}

/// Min-of-repeats wall-clock time per call of `fn(iterations)`, in ns/unit.
template <typename F>
double measure_ns_per_unit(F&& fn, int iterations, int repeats) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn(iterations);
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() /
        static_cast<double>(iterations);
    if (ns < best) best = ns;
  }
  return best;
}

/// The pre-sharding registry design, reimplemented here as the contention
/// baseline: every add/record takes ONE process-wide mutex and indexes
/// std::string-keyed maps. Same data model the real registry had before
/// thread-local shards, plus a wait meter: time a caller sits blocked on
/// the mutex (clock read only on the contended path, same discipline as
/// obs::timed_lock).
struct MutexedRegistry {
  std::mutex mu;
  std::map<std::string, long> counters;
  std::map<std::string, std::vector<double>> samples;
  std::atomic<long> wait_ns{0};

  void acquire() {
    if (mu.try_lock()) return;
    const auto w0 = std::chrono::steady_clock::now();
    mu.lock();
    wait_ns.fetch_add(std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - w0)
                          .count(),
                      std::memory_order_relaxed);
  }
  void add(const char* name, long delta) {
    acquire();
    counters[name] += delta;
    mu.unlock();
  }
  void record(const char* name, double value) {
    acquire();
    samples[name].push_back(value);
    mu.unlock();
  }
  void clear() {
    const std::lock_guard<std::mutex> lock(mu);
    counters.clear();
    samples.clear();
  }
};

/// `threads` workers each run `iterations` calls of `op(i)`; returns
/// wall-clock ns per call across all threads.
template <typename Op>
double run_contended(int threads, int iterations, Op op) {
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  const auto t0 = std::chrono::steady_clock::now();
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([iterations, op] {
      for (int i = 0; i < iterations; ++i) op(i);
    });
  }
  for (auto& th : pool) th.join();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         (static_cast<double>(threads) * static_cast<double>(iterations));
}

}  // namespace

int main() {
  using namespace olp;
  set_log_level(log_level_from_env("OLP_LOG_LEVEL", LogLevel::kError));

  constexpr int kIterations = 20000;
  constexpr int kRepeats = 9;

  // Warm-up: page in code paths and stabilize clocks.
  run_baseline(kIterations / 4);
  run_instrumented(kIterations / 4);

  // Interleave the baseline/disabled repeats so slow clock or load drift
  // hits both variants alike instead of biasing whichever ran second.
  obs::Registry::global().disable();
  double baseline_ns = std::numeric_limits<double>::infinity();
  double disabled_ns = std::numeric_limits<double>::infinity();
  for (int r = 0; r < kRepeats; ++r) {
    baseline_ns =
        std::min(baseline_ns, measure_ns_per_unit(run_baseline, kIterations, 1));
    disabled_ns = std::min(disabled_ns,
                           measure_ns_per_unit(run_instrumented, kIterations, 1));
  }

  // Enabled-mode cost, for reference only (spans/samples are collected; the
  // per-repeat rebase keeps the registry from growing without bound).
  obs::Registry::global().enable();
  const double enabled_ns = measure_ns_per_unit(
      [](int n) {
        obs::Registry::global().rebase();
        run_instrumented(n);
      },
      kIterations, kRepeats);
  obs::Registry::global().disable();

  // Contended enabled path: 8 threads, one counter_add + one record per
  // site, all threads on the SAME two families. Sharded registry vs the old
  // single-mutex design. Wall is min over repeats (noise floor); lock-wait
  // is the total across every repeat divided by total sites (it is an
  // expectation over rare, expensive convoy events, so it needs the full
  // sample). Rebase between sharded repeats keeps sample buffers bounded.
  constexpr int kMtThreads = 8;
  constexpr int kMtIterations = 50000;
  constexpr int kMtRepeats = 5;
  const double mt_sites = static_cast<double>(kMtThreads) *
                          static_cast<double>(kMtIterations) * kMtRepeats;

  obs::Registry::global().enable();
  double sharded_mt_ns = std::numeric_limits<double>::infinity();
  for (int r = 0; r < kMtRepeats; ++r) {
    obs::Registry::global().rebase();
    const double ns = run_contended(kMtThreads, kMtIterations, [](int i) {
      obs::counter_add("bench.mt.units");
      obs::record("bench.mt.value", 1e-3 * i);
    });
    if (ns < sharded_mt_ns) sharded_mt_ns = ns;
  }
  obs::Registry::global().disable();

  MutexedRegistry mutexed;
  double mutexed_mt_ns = std::numeric_limits<double>::infinity();
  for (int r = 0; r < kMtRepeats; ++r) {
    mutexed.clear();
    const double ns =
        run_contended(kMtThreads, kMtIterations, [&mutexed](int i) {
          mutexed.add("bench.mt.units", 1);
          mutexed.record("bench.mt.value", 1e-3 * i);
        });
    if (ns < mutexed_mt_ns) mutexed_mt_ns = ns;
  }

  // Overhead per site = wall + blocked-on-registry-lock time. The sharded
  // hot path never touches a cross-thread mutex (counters and samples land
  // in the caller's own shard; no span close, so no flush), so its wait
  // term is zero by construction.
  const double mutexed_wait_ns =
      static_cast<double>(mutexed.wait_ns.load()) / mt_sites;
  const double sharded_overhead_ns = sharded_mt_ns;
  const double mutexed_overhead_ns = mutexed_mt_ns + mutexed_wait_ns;
  const double mt_speedup = mutexed_overhead_ns / sharded_overhead_ns;

  const double overhead_pct =
      100.0 * (disabled_ns - baseline_ns) / baseline_ns;
  const bool pass = overhead_pct < 1.0;
  const bool mt_pass = mt_speedup >= 5.0;

  TextTable table("Observability overhead per ~1 us work unit");
  table.set_header({"variant", "ns/unit", "overhead"});
  table.add_row({"baseline (no instrumentation)", fixed(baseline_ns, 1), ""});
  table.add_row({"instrumented, registry disabled", fixed(disabled_ns, 1),
                 fixed(overhead_pct, 3) + " %"});
  table.add_row({"instrumented, registry enabled", fixed(enabled_ns, 1),
                 fixed(100.0 * (enabled_ns - baseline_ns) / baseline_ns, 1) +
                     " %"});
  std::cout << table;
  std::cout << "\nDisabled-mode requirement: < 1% -> "
            << (pass ? "PASS" : "FAIL") << "\n";

  TextTable mt_table("Enabled-mode cost under contention (8 threads)");
  mt_table.set_header({"registry", "wall ns/site", "lock-wait ns/site",
                       "overhead ns/site"});
  mt_table.add_row({"sharded thread-local (this PR)", fixed(sharded_mt_ns, 1),
                    "0.0", fixed(sharded_overhead_ns, 1)});
  mt_table.add_row({"single global mutex (pre-shard)", fixed(mutexed_mt_ns, 1),
                    fixed(mutexed_wait_ns, 1), fixed(mutexed_overhead_ns, 1)});
  std::cout << "\n" << mt_table;
  std::cout << "\nSharded speedup at " << kMtThreads
            << " threads: " << fixed(mt_speedup, 2) << "x (requirement: >= 5x) -> "
            << (mt_pass ? "PASS" : "FAIL") << "\n";

  std::string json = "{\n";
  json += "  \"baseline_ns\": " + fixed(baseline_ns, 3) + ",\n";
  json += "  \"disabled_ns\": " + fixed(disabled_ns, 3) + ",\n";
  json += "  \"enabled_ns\": " + fixed(enabled_ns, 3) + ",\n";
  json += "  \"overhead_pct\": " + fixed(overhead_pct, 4) + ",\n";
  json += "  \"mt_threads\": " + std::to_string(kMtThreads) + ",\n";
  json += "  \"mt_sharded_wall_ns\": " + fixed(sharded_mt_ns, 3) + ",\n";
  json += "  \"mt_sharded_lock_wait_ns\": 0.0,\n";
  json += "  \"mt_sharded_overhead_ns\": " + fixed(sharded_overhead_ns, 3) + ",\n";
  json += "  \"mt_mutexed_wall_ns\": " + fixed(mutexed_mt_ns, 3) + ",\n";
  json += "  \"mt_mutexed_lock_wait_ns\": " + fixed(mutexed_wait_ns, 3) + ",\n";
  json += "  \"mt_mutexed_overhead_ns\": " + fixed(mutexed_overhead_ns, 3) + ",\n";
  json += "  \"mt_speedup\": " + fixed(mt_speedup, 3) + ",\n";
  json += std::string("  \"mt_pass\": ") + (mt_pass ? "true" : "false") + ",\n";
  json += std::string("  \"pass\": ") + (pass ? "true" : "false") + "\n";
  json += "}\n";
  std::string err;
  if (!obs::json_well_formed(json, &err)) {
    std::cerr << "internal error: BENCH_obs.json malformed: " << err << "\n";
    return 1;
  }
  obs::write_text_file("BENCH_obs.json", json);
  std::cout << "Wrote BENCH_obs.json\n";
  return (pass && mt_pass) ? 0 : 1;
}

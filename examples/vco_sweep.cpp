// Tuning-curve sweep of the eight-stage differential RO-VCO: frequency vs
// control voltage for the schematic, the conventional layout, and the
// optimized layout (the data behind the paper's Table VII).

#include <iostream>

#include "circuits/flow.hpp"
#include "circuits/vco.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

int main() {
  using namespace olp;
  set_log_level(log_level_from_env("OLP_LOG_LEVEL", LogLevel::kError));
  const tech::Technology t = tech::make_default_finfet_tech();

  circuits::RoVco vco(t);
  if (!vco.prepare()) {
    std::cerr << "VCO preparation failed\n";
    return 1;
  }

  circuits::FlowEngine engine(t, {});
  const circuits::Realization schematic =
      circuits::schematic_realization(vco.instances(), t);
  const circuits::Realization conventional =
      engine.run(circuits::FlowMode::kConventional, vco.instances(), vco.routed_nets());
  const circuits::Realization optimized =
      engine.run(circuits::FlowMode::kOptimize, vco.instances(), vco.routed_nets());

  TextTable table("RO-VCO tuning curve: frequency (GHz) vs Vctrl");
  table.set_header({"Vctrl (V)", "schematic", "conventional", "this work"});
  for (double vctrl : circuits::RoVco::default_sweep()) {
    auto cell = [&](const circuits::Realization& real) -> std::string {
      const auto f = vco.frequency(real, vctrl);
      return f ? fixed(*f / 1e9, 2) : std::string("no osc.");
    };
    table.add_row({fixed(vctrl, 1), cell(schematic), cell(conventional),
                   cell(optimized)});
  }
  std::cout << table;
  std::cout << "\n\"no osc.\" rows define the usable control-voltage range\n"
               "(paper Table VII: the conventional layout loses the bottom\n"
               " of the range; the optimized layout restores it).\n";
  return 0;
}

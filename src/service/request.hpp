#pragma once
// The resident layout service's wire protocol: one flat JSON object per
// line in, one per line out (JSONL both ways — util/jsonl does the
// escaping/parsing, so arbitrary client/id strings survive the round trip).
//
// Request lines ("op" selects the verb, everything else is optional):
//
//   {"op":"submit","id":"r1","client":"alice","circuit":"ota5t",
//    "mode":"optimize","seed":3,"priority":1,"deadline_ms":500,
//    "max_testbenches":200,"retries":2,"key":"alice/ota5t/3"}
//   {"op":"stats"}        health/metrics snapshot
//   {"op":"metrics"}      full telemetry dump: latency histogram, obs
//                         counter + histogram families (lock waits, pool
//                         queue depth), shed breakdown
//   {"op":"snapshot"}     force a cache checkpoint now
//   {"op":"reload"}       hot config reload; optional numeric fields
//                         (queue_depth, client_queue, workers,
//                         snapshot_every, retries, metrics_every, rate,
//                         burst) override the current values in place
//   {"op":"drain"}        stop admitting, finish in-flight, flush, exit
//   {"op":"shutdown"}     drain, but cancel in-flight budgets (salvage fast)
//   {"op":"ping"}         liveness probe
//
// "key" is a client-supplied idempotency key. An accepted keyed submit is a
// durable promise: it is journaled before "accepted" is flushed, replayed
// after a crash, and never executed twice — a resubmission with the same
// key (same connection, a reconnect, or a post-crash retry) is answered
// with event "duplicate" carrying the previous/current status instead of
// re-running the job.
//
// Responses carry "event": "accepted", "rejected" (+ "reason"), "done"
// (+ job status/latency/testbenches), "duplicate", "stats", "metrics",
// "snapshot", "reloaded", "drained", "pong". Submissions are answered
// twice: immediately with accepted/rejected, and — when accepted — again
// with "done" once the job leaves a worker.
//
// Parsing is strict: unknown ops, unknown circuits, non-flat JSON,
// duplicate keys, wrong-typed fields, non-finite/negative deadlines, or
// oversized lines (> kMaxRequestLineBytes) reject the line with a reason
// instead of guessing. FaultSite::kRequestParse lets chaos tests
// deterministically inject parse failures on well-formed lines to prove
// the reject path never kills the service.

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "circuits/flow.hpp"

namespace olp::service {

/// Hard bound on one request line. The transport sheds longer frames at
/// the socket layer (kFrameTooLarge) before buffering them; parse_request
/// enforces the same bound for transports that hand lines in directly
/// (stdin, tests), so no path best-effort-parses a multi-megabyte line.
inline constexpr std::size_t kMaxRequestLineBytes = 64 * 1024;

enum class RequestOp {
  kSubmit,
  kStats,
  kMetrics,
  kSnapshot,
  kReload,
  kDrain,
  kShutdown,
  kPing,
};

/// Stable lowercase verb name ("submit", "stats", ...).
const char* request_op_name(RequestOp op);

/// Why a request line was refused. Everything except kNone is a
/// load-shedding or validation outcome — the service answers with the
/// reason and stays up.
enum class RejectReason {
  kNone = 0,
  kParseError,      ///< malformed JSON / wrong field type (or injected)
  kUnknownOp,       ///< unrecognized "op"
  kUnknownCircuit,  ///< "circuit" not in the service's library
  kUnknownMode,     ///< "mode" not a FlowMode name
  kQueueFull,       ///< admission queue at max depth (shed)
  kClientQuota,     ///< this identity's queued share is exhausted (shed)
  kDraining,        ///< service is draining; no new work admitted
  kFrameTooLarge,   ///< line exceeded kMaxRequestLineBytes (shed)
  kRateLimited,     ///< per-identity token bucket empty (shed)
  kReadTimeout,     ///< partial frame older than the read deadline (shed)
  kDuplicate,       ///< idempotency key already accepted or completed
};

/// Stable snake_case reason name ("parse_error", "queue_full", ...).
const char* reject_reason_name(RejectReason reason);

/// One parsed request line.
struct ServiceRequest {
  RequestOp op = RequestOp::kSubmit;
  std::string id;      ///< client-chosen echo key; service assigns "r<N>" if empty
  std::string client;  ///< self-reported display name; "anon" if empty
  /// Connection-stable identity the transport stamps on every request it
  /// relays (peer address for TCP, socket path for unix, "" for trusted
  /// direct callers). Quotas, rate limits, and fair-share scheduling key on
  /// this — a client reconnecting under a fresh self-reported name cannot
  /// escape its bounds. Empty falls back to `client` (trusted transports).
  /// Never parsed from the wire: a "identity" member is a parse error.
  std::string identity;
  std::string circuit; ///< library name, e.g. "ota5t"
  circuits::FlowMode mode = circuits::FlowMode::kOptimize;
  std::uint64_t seed = 1;
  /// Higher priority is served first WITHIN one identity's queue; across
  /// identities scheduling is round-robin fair share regardless of priority
  /// (one client cannot starve another by shouting louder).
  int priority = 0;
  double deadline_ms = 0.0;    ///< per-request wall-clock budget; 0 = none
  long max_testbenches = -1;   ///< per-request testbench budget; -1 = none
  int retries = -1;            ///< max re-attempts on failure; -1 = service default
  /// Client-supplied idempotency key; empty = unkeyed (at-least-once on
  /// replay, duplicates allowed). See the file comment.
  std::string key;
  /// For op == kReload: the whitelisted numeric overrides present on the
  /// line (queue_depth, client_queue, workers, snapshot_every, retries,
  /// metrics_every, rate, burst). Absent keys keep their current values.
  std::map<std::string, double> reload_values;
};

/// Parses one request line. Returns RejectReason::kNone and fills *request
/// on success; otherwise the reason, with *error describing the problem.
/// Draws at FaultSite::kRequestParse (an injected fire reports kParseError
/// exactly as a real malformed line would).
RejectReason parse_request(const std::string& line, ServiceRequest* request,
                           std::string* error);

/// Resolves a FlowMode name as emitted by flow_mode_name(); returns false
/// for anything else.
bool flow_mode_from_name(const std::string& name, circuits::FlowMode* mode);

}  // namespace olp::service

#include "spice/measure.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace olp::spice {

std::vector<double> log_frequencies(double f_lo, double f_hi,
                                    int points_per_decade) {
  OLP_CHECK(f_lo > 0 && f_hi > f_lo, "bad frequency range");
  OLP_CHECK(points_per_decade >= 1, "need at least one point per decade");
  std::vector<double> freqs;
  const double decades = std::log10(f_hi / f_lo);
  const int n = std::max(2, static_cast<int>(std::ceil(decades * points_per_decade)) + 1);
  for (int i = 0; i < n; ++i) {
    const double frac = static_cast<double>(i) / (n - 1);
    freqs.push_back(f_lo * std::pow(10.0, frac * decades));
  }
  return freqs;
}

std::vector<double> ac_magnitude(const Simulator& sim, const AcResult& ac,
                                 NodeId node) {
  std::vector<double> mags;
  mags.reserve(ac.solutions.size());
  for (const auto& x : ac.solutions) {
    mags.push_back(std::abs(sim.ac_voltage(x, node)));
  }
  return mags;
}

std::vector<double> ac_magnitude_diff(const Simulator& sim, const AcResult& ac,
                                      NodeId p, NodeId n) {
  std::vector<double> mags;
  mags.reserve(ac.solutions.size());
  for (const auto& x : ac.solutions) {
    mags.push_back(std::abs(sim.ac_voltage(x, p) - sim.ac_voltage(x, n)));
  }
  return mags;
}

std::vector<double> ac_phase_deg(const Simulator& sim, const AcResult& ac,
                                 NodeId node) {
  std::vector<double> phases;
  phases.reserve(ac.solutions.size());
  double prev = 0.0;
  bool first = true;
  for (const auto& x : ac.solutions) {
    double ph = std::arg(sim.ac_voltage(x, node)) * 180.0 / M_PI;
    if (!first) {
      // Unwrap: keep successive samples within 180 degrees of each other.
      while (ph - prev > 180.0) ph -= 360.0;
      while (ph - prev < -180.0) ph += 360.0;
    }
    prev = ph;
    first = false;
    phases.push_back(ph);
  }
  return phases;
}

double db(double magnitude) { return 20.0 * std::log10(magnitude); }

std::optional<double> crossing_frequency(const std::vector<double>& freqs,
                                         const std::vector<double>& mags,
                                         double level) {
  OLP_CHECK(freqs.size() == mags.size(), "freq/mag size mismatch");
  for (std::size_t i = 1; i < mags.size(); ++i) {
    if (mags[i - 1] >= level && mags[i] < level) {
      // Interpolate in log-frequency / log-magnitude space.
      const double l0 = std::log10(std::max(mags[i - 1], 1e-30));
      const double l1 = std::log10(std::max(mags[i], 1e-30));
      const double lt = std::log10(level);
      const double frac = (l0 - lt) / std::max(l0 - l1, 1e-30);
      const double lf = std::log10(freqs[i - 1]) +
                        frac * (std::log10(freqs[i]) - std::log10(freqs[i - 1]));
      return std::pow(10.0, lf);
    }
  }
  return std::nullopt;
}

std::optional<double> unity_gain_frequency(const std::vector<double>& freqs,
                                           const std::vector<double>& mags) {
  return crossing_frequency(freqs, mags, 1.0);
}

std::optional<double> bandwidth_3db(const std::vector<double>& freqs,
                                    const std::vector<double>& mags) {
  OLP_CHECK(!mags.empty(), "empty magnitude response");
  return crossing_frequency(freqs, mags, mags.front() / std::sqrt(2.0));
}

std::optional<double> phase_margin_deg(const std::vector<double>& freqs,
                                       const std::vector<double>& mags,
                                       const std::vector<double>& phases_deg) {
  OLP_CHECK(freqs.size() == mags.size() && freqs.size() == phases_deg.size(),
            "freq/mag/phase size mismatch");
  const std::optional<double> ugf = unity_gain_frequency(freqs, mags);
  if (!ugf) return std::nullopt;
  // Linear interpolation of the phase at the UGF.
  for (std::size_t i = 1; i < freqs.size(); ++i) {
    if (freqs[i] >= *ugf) {
      const double frac =
          (std::log10(*ugf) - std::log10(freqs[i - 1])) /
          (std::log10(freqs[i]) - std::log10(freqs[i - 1]));
      const double ph =
          phases_deg[i - 1] + frac * (phases_deg[i] - phases_deg[i - 1]);
      return 180.0 + ph;
    }
  }
  return std::nullopt;
}

std::vector<double> tran_waveform(const Simulator& sim, const TranResult& tr,
                                  NodeId node) {
  std::vector<double> wave;
  wave.reserve(tr.samples.size());
  for (const auto& x : tr.samples) wave.push_back(sim.voltage(x, node));
  return wave;
}

std::vector<double> tran_source_current(const Simulator& sim,
                                        const TranResult& tr,
                                        const std::string& vsource) {
  std::vector<double> wave;
  wave.reserve(tr.samples.size());
  for (const auto& x : tr.samples) {
    wave.push_back(sim.vsource_current(x, vsource));
  }
  return wave;
}

std::vector<double> crossing_times(const std::vector<double>& times,
                                   const std::vector<double>& wave,
                                   double level, bool rising) {
  OLP_CHECK(times.size() == wave.size(), "time/wave size mismatch");
  std::vector<double> crossings;
  for (std::size_t i = 1; i < wave.size(); ++i) {
    const bool crossed = rising
                             ? (wave[i - 1] < level && wave[i] >= level)
                             : (wave[i - 1] > level && wave[i] <= level);
    if (!crossed) continue;
    const double dv = wave[i] - wave[i - 1];
    const double frac = dv == 0.0 ? 0.0 : (level - wave[i - 1]) / dv;
    crossings.push_back(times[i - 1] + frac * (times[i] - times[i - 1]));
  }
  return crossings;
}

std::optional<double> delay_between(const std::vector<double>& times,
                                    const std::vector<double>& ref,
                                    double ref_level, bool ref_rising,
                                    const std::vector<double>& sig,
                                    double sig_level, bool sig_rising,
                                    int ref_skip) {
  const std::vector<double> ref_x =
      crossing_times(times, ref, ref_level, ref_rising);
  if (static_cast<int>(ref_x.size()) <= ref_skip) return std::nullopt;
  const double t_ref = ref_x[static_cast<std::size_t>(ref_skip)];
  for (double t : crossing_times(times, sig, sig_level, sig_rising)) {
    if (t >= t_ref) return t - t_ref;
  }
  return std::nullopt;
}

std::optional<double> oscillation_frequency(const std::vector<double>& times,
                                            const std::vector<double>& wave,
                                            double level, int periods) {
  OLP_CHECK(periods >= 1, "need at least one period");
  const std::vector<double> rises = crossing_times(times, wave, level, true);
  if (static_cast<int>(rises.size()) < periods + 1) return std::nullopt;
  const std::size_t last = rises.size() - 1;
  const double span =
      rises[last] - rises[last - static_cast<std::size_t>(periods)];
  if (span <= 0) return std::nullopt;
  return static_cast<double>(periods) / span;
}

double time_average(const std::vector<double>& times,
                    const std::vector<double>& wave, double t0, double t1) {
  OLP_CHECK(times.size() == wave.size(), "time/wave size mismatch");
  OLP_CHECK(t1 > t0, "bad averaging window");
  double acc = 0.0;
  double span = 0.0;
  for (std::size_t i = 1; i < times.size(); ++i) {
    const double a = std::max(times[i - 1], t0);
    const double b = std::min(times[i], t1);
    if (b <= a) continue;
    // Trapezoid over the clipped interval (waveform treated linear in it).
    const double dt_full = times[i] - times[i - 1];
    auto value_at = [&](double t) {
      if (dt_full <= 0) return wave[i];
      const double frac = (t - times[i - 1]) / dt_full;
      return wave[i - 1] + frac * (wave[i] - wave[i - 1]);
    };
    acc += 0.5 * (value_at(a) + value_at(b)) * (b - a);
    span += b - a;
  }
  return span > 0 ? acc / span : 0.0;
}

double average_supply_power(const Simulator& sim, const TranResult& tr,
                            const std::string& vsource, double t0, double t1) {
  const std::vector<double> i = tran_source_current(sim, tr, vsource);
  std::vector<double> p(i.size());
  const Circuit& ckt = sim.circuit();
  const VSource& vs =
      ckt.vsources()[static_cast<std::size_t>(ckt.find_vsource(vsource))];
  for (std::size_t k = 0; k < i.size(); ++k) {
    const double t = tr.times[k];
    // Branch current flows p -> n inside the source; a supply delivering
    // power has negative branch current, hence the minus sign.
    p[k] = -vs.wave.value(t) * i[k];
  }
  return time_average(tr.times, p, t0, t1);
}

}  // namespace olp::spice

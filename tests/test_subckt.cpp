// Tests for hierarchical netlists (.subckt / .ends / X instances).

#include <gtest/gtest.h>

#include "spice/parser.hpp"
#include "spice/simulator.hpp"

namespace olp::spice {
namespace {

TEST(Subckt, FlattensSingleInstance) {
  const Circuit c = parse_netlist(R"(
.subckt divider top bot mid
R1 top mid 1k
R2 mid bot 1k
.ends
V1 in 0 DC 2.0
X1 in 0 tap divider
)");
  EXPECT_EQ(c.resistors().size(), 2u);
  EXPECT_TRUE(c.has_node("tap"));
  Simulator sim(c);
  const OpResult op = sim.op();
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(sim.voltage(op.x, c.find_node("tap")), 1.0, 1e-6);
}

TEST(Subckt, InternalNodesArePrefixed) {
  const Circuit c = parse_netlist(R"(
.subckt chain a b
R1 a x 1k
R2 x b 1k
.ends
X1 p 0 chain
X2 p 0 chain
R0 p 0 1k
)");
  EXPECT_TRUE(c.has_node("X1.x"));
  EXPECT_TRUE(c.has_node("X2.x"));
  EXPECT_EQ(c.resistors().size(), 5u);
}

TEST(Subckt, ElementNamesArePrefixed) {
  const Circuit c = parse_netlist(R"(
.subckt cell a
R1 a 0 1k
.ends
Xu top cell
)");
  ASSERT_EQ(c.resistors().size(), 1u);
  EXPECT_EQ(c.resistors()[0].name, "Xu.R1");
}

TEST(Subckt, NestedInstancesFlatten) {
  const Circuit c = parse_netlist(R"(
.subckt leaf a b
R1 a b 2k
.ends
.subckt pair p q
X1 p m leaf
X2 m q leaf
.ends
V1 in 0 DC 1.0
Xtop in 0 pair
)");
  EXPECT_EQ(c.resistors().size(), 2u);
  EXPECT_TRUE(c.has_node("Xtop.m"));
  Simulator sim(c);
  const OpResult op = sim.op();
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(sim.voltage(op.x, c.find_node("Xtop.m")), 0.5, 1e-6);
}

TEST(Subckt, GroundPassesThroughUnprefixed) {
  const Circuit c = parse_netlist(R"(
.subckt grounded a
R1 a 0 1k
C1 a gnd 1f
.ends
X1 n grounded
)");
  EXPECT_EQ(c.resistors()[0].b, kGround);
  EXPECT_EQ(c.capacitors()[0].b, kGround);
}

TEST(Subckt, SubcktWithMosfetAndSources) {
  const Circuit c = parse_netlist(R"(
.model nfet nmos vth0=0.3 kp=400u
.subckt stage in out vdd
M1 out in 0 0 nfet w=1u l=14n
R1 vdd out 5k
.ends
Vdd vdd 0 DC 0.8
Vin in 0 DC 0.45
X1 in out vdd stage
)");
  ASSERT_EQ(c.mosfets().size(), 1u);
  EXPECT_EQ(c.mosfets()[0].name, "X1.M1");
  Simulator sim(c);
  const OpResult op = sim.op();
  ASSERT_TRUE(op.converged);
  const double vout = sim.voltage(op.x, c.find_node("out"));
  EXPECT_GT(vout, 0.0);
  EXPECT_LT(vout, 0.8);
}

TEST(Subckt, Errors) {
  EXPECT_THROW(parse_netlist("X1 a b nosuch\n"), ParseError);
  EXPECT_THROW(parse_netlist(".subckt s a\nR1 a 0 1k\n"), ParseError);
  EXPECT_THROW(parse_netlist(".ends\n"), ParseError);
  EXPECT_THROW(parse_netlist(R"(
.subckt s a b
R1 a b 1k
.ends
X1 onlyone s
)"),
               ParseError);
  // Self-recursive subcircuit hits the depth guard.
  EXPECT_THROW(parse_netlist(R"(
.subckt rec a
X1 a rec
.ends
X0 n rec
)"),
               ParseError);
}

}  // namespace
}  // namespace olp::spice

#include "circuits/flow.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <limits>

#include "core/eval_cache.hpp"
#include "geom/svg.hpp"
#include "route/parallel.hpp"
#include "route/realize.hpp"
#include "util/budget.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/obs.hpp"

namespace olp::circuits {

namespace {

/// Signature for deduplicating identical primitive optimization problems
/// (same netlist, size, and bias): the VCO's 16 inverters optimize once.
std::string instance_signature(const InstanceSpec& inst) {
  std::string sig = inst.netlist.name + "/" + std::to_string(inst.fins);
  char buf[64];
  std::snprintf(buf, sizeof buf, "/%.4f/%.6g", inst.bias.vdd,
                inst.bias.bias_current);
  sig += buf;
  for (const auto& [port, v] : inst.bias.port_voltage) {
    std::snprintf(buf, sizeof buf, "/%s=%.3f", port.c_str(), v);
    sig += buf;
  }
  return sig;
}

/// Equalizes the parallel-route counts of nets joined by a primitive's
/// symmetric port pair (the detailed router keeps those routes symmetric, so
/// they must share one width); takes the max so every w_min stays satisfied.
void equalize_symmetric_nets(const std::vector<InstanceSpec>& instances,
                             std::vector<core::NetWireDecision>& decisions) {
  std::map<std::string, core::NetWireDecision*> by_net;
  for (core::NetWireDecision& d : decisions) by_net[d.circuit_net] = &d;
  for (const InstanceSpec& inst : instances) {
    for (const auto& [pa, pb] : inst.netlist.symmetric_ports) {
      const auto na = inst.port_nets.find(pa);
      const auto nb = inst.port_nets.find(pb);
      if (na == inst.port_nets.end() || nb == inst.port_nets.end()) continue;
      if (na->second == nb->second) continue;
      const auto da = by_net.find(na->second);
      const auto db = by_net.find(nb->second);
      if (da == by_net.end() || db == by_net.end()) continue;
      const int w =
          std::max(da->second->parallel_routes, db->second->parallel_routes);
      da->second->parallel_routes = w;
      db->second->parallel_routes = w;
    }
  }
}

/// Stage checkpoint at a flow stage boundary: emits the per-stage budget
/// check counter and remaining-budget distributions, and — when the budget
/// is exhausted — a stage-attributed diagnostic with stage == "budget". The
/// FIRST such record in a report names the stage whose work the trip
/// interrupted (earlier checkpoints ran before the trip and stay silent);
/// later stages also report, since they too salvaged degraded results.
void budget_checkpoint(Budget& budget, BudgetObserver& budget_obs,
                       DiagnosticsSink& sink, const char* stage,
                       const char* checks_counter) {
  budget_obs.stage_boundary(checks_counter);
  if (budget.exhausted()) {
    obs::counter_add("budget.stages_degraded");
    sink.report(DiagSeverity::kWarning, "budget", stage,
                budget.description() + "; salvaged best-so-far results");
  }
}

/// End-of-run budget bookkeeping: stores the final consumption snapshot on
/// the report and emits the budget.* summary counters the telemetry's
/// budget section is derived from. Must run before the root span closes so
/// the counters land in the same snapshot.
void finish_budget(const Budget& budget, FlowReport& report) {
  report.budget = budget.status();
  if (!obs::enabled()) return;
  const BudgetStatus& s = report.budget;
  obs::counter_add("budget.checks_total", s.checks);
  obs::counter_add("budget.testbenches_consumed", s.testbenches_consumed);
  obs::record("budget.elapsed_ms", s.elapsed_s * 1000.0);
  if (s.limited) obs::counter_add("budget.limited");
  if (s.deadline_s > 0.0) {
    obs::counter_add("budget.deadline_ms",
                     static_cast<long>(s.deadline_s * 1000.0));
  }
  if (s.testbench_limit >= 0) {
    obs::counter_add("budget.testbench_limit", s.testbench_limit);
  }
  if (s.check_limit >= 0) {
    obs::counter_add("budget.check_limit", s.check_limit);
  }
  if (s.exhausted) {
    obs::counter_add("budget.exhausted");
    // The registry keys counter families by the name pointer and assumes it
    // outlives the shard, so the kind must map to a string literal rather
    // than a composed temporary.
    switch (s.tripped) {
      case BudgetKind::kDeadline:
        obs::counter_add("budget.tripped.deadline");
        break;
      case BudgetKind::kTestbenches:
        obs::counter_add("budget.tripped.testbenches");
        break;
      case BudgetKind::kChecks:
        obs::counter_add("budget.tripped.checks");
        break;
      case BudgetKind::kCancelled:
        obs::counter_add("budget.tripped.cancelled");
        break;
      case BudgetKind::kInjected:
        obs::counter_add("budget.tripped.injected");
        break;
      case BudgetKind::kNone:
        break;
    }
  }
}

/// Finalizes a report's resilience fields from the sink: moves the records
/// out and derives the degraded flag.
void finish_diagnostics(DiagnosticsSink& sink, FlowReport& report) {
  report.degraded = sink.has_at_least(DiagSeverity::kWarning);
  report.diagnostics = sink.take();
}

/// Attaches the flow telemetry when the obs registry is enabled. Must run
/// after the flow's root span is closed so stage/total timings are final.
/// The simulation count is taken from the registry's "eval.testbench"
/// counter — the exact increments that fed the evaluators' EvalStats — and
/// overwrites report.testbenches so the two views can never disagree.
void finish_telemetry(FlowReport& report) {
  if (!obs::enabled()) return;
  report.telemetry =
      obs::make_flow_telemetry(obs::Registry::global().snapshot());
  report.testbenches = report.telemetry.simulations;
}

/// Writes a per-stage SVG snapshot of the (partially) realized floorplan
/// into the trace-artifacts directory. Observability must never take a flow
/// down: any filesystem/rendering failure degrades to a warning diagnostic.
void write_stage_artifact(
    const tech::Technology& tech, const std::string& dir,
    const std::string& file_name,
    const std::vector<InstanceSpec>& instances,
    const std::map<std::string, const pcell::PrimitiveLayout*>& layouts,
    const FlowReport& report, bool with_routes, DiagnosticsSink* diag) {
  try {
    std::filesystem::create_directories(dir);
    geom::Layout top("stage_snapshot");
    std::map<std::string, std::size_t> placed_index;
    for (std::size_t i = 0; i < report.placed_instances.size(); ++i) {
      placed_index[report.placed_instances[i]] = i;
    }
    for (const InstanceSpec& inst : instances) {
      const auto pit = placed_index.find(inst.name);
      if (pit == placed_index.end()) continue;
      const pcell::PrimitiveLayout* layout = layouts.at(inst.name);
      const place::PlacedBlock& pb = report.placement.blocks[pit->second];
      const geom::Rect bb = layout->geometry.bounding_box();
      top.merge(layout->geometry, geom::to_nm(pb.x) - bb.x_lo,
                geom::to_nm(pb.y) - bb.y_lo, inst.name + ".");
    }
    if (with_routes) {
      // Wire-count decisions do not exist yet at this stage; render every
      // route at the single-track default.
      top.merge(route::realize_routes(tech, report.routes, {}), 0, 0, "");
    }
    geom::SvgOptions sopt;
    sopt.label_pins = false;
    geom::write_svg(top, dir + "/" + file_name, sopt);
  } catch (const std::exception& e) {
    if (diag != nullptr) {
      diag->report(DiagSeverity::kWarning, "flow", file_name,
                   std::string("trace artifact write failed: ") + e.what());
    }
  }
}

/// Reports every requested net that ended up unrouted (the realization falls
/// back to schematic-net parasitics for it).
void report_unrouted_nets(DiagnosticsSink& sink,
                          const std::vector<std::string>& routed_nets,
                          const FlowReport& report) {
  for (const std::string& net : routed_nets) {
    const auto it = report.routes.find(net);
    // Nets with fewer than two placed pins are never handed to the router;
    // that is not a failure.
    if (it == report.routes.end() || it->second.routed) continue;
    sink.report(DiagSeverity::kWarning, "flow", net,
                "net unrouted; degrading to schematic-net parasitics");
  }
}

/// Root span name per mode ("flow." + flow_mode_name, as static storage —
/// obs::Span keeps only the pointer).
const char* flow_span_name(FlowMode mode) {
  switch (mode) {
    case FlowMode::kOptimize:
      return "flow.optimize";
    case FlowMode::kConventional:
      return "flow.conventional";
    case FlowMode::kManualOracle:
      return "flow.manual_oracle";
  }
  return "flow.unknown";
}

}  // namespace

const char* flow_mode_name(FlowMode mode) {
  switch (mode) {
    case FlowMode::kOptimize:
      return "optimize";
    case FlowMode::kConventional:
      return "conventional";
    case FlowMode::kManualOracle:
      return "manual_oracle";
  }
  return "unknown";
}

FlowEngine::FlowEngine(const tech::Technology& technology, FlowOptions options)
    : tech_(technology), options_(options) {
  // All environment overrides land here, once; run() never consults the
  // environment (see the header's precedence contract).
  options_.num_threads = threads_from_env(options_.num_threads);
  options_.eval_cache = env::flag("OLP_EVAL_CACHE", options_.eval_cache);
  options_.budget_limits = budget_options_from_env(options_.budget_limits);
  options_.placer_parallel_moves = static_cast<int>(env::integer(
      "OLP_PLACER_MOVES", options_.placer_parallel_moves));
  options_.partitioned_routing =
      env::flag("OLP_ROUTE_PARTITIONED", options_.partitioned_routing);
  if (env::has("OLP_ROUTER")) {
    const std::string name = env::str("OLP_ROUTER");
    if (const auto backend = route::parse_router_backend(name)) {
      options_.router = *backend;
    } else if (!name.empty()) {
      OLP_WARN << "OLP_ROUTER=" << name
               << " is not a router backend (classic|fast|partitioned|"
                  "negotiated); keeping "
               << route::router_backend_name(options_.router);
    }
  }
  options_.router_negotiation_iterations = static_cast<int>(env::integer(
      "OLP_ROUTER_ITERS", options_.router_negotiation_iterations));
}

TaskPool* FlowEngine::pool() const {
  if (options_.pool != nullptr) return options_.pool;
  if (options_.num_threads <= 1) return nullptr;
  if (pool_ == nullptr) pool_ = std::make_unique<TaskPool>(options_.num_threads);
  return pool_.get();
}

core::PrimitiveEvaluator FlowEngine::make_evaluator(
    const InstanceSpec& inst) const {
  return core::PrimitiveEvaluator(tech_, default_nmos(), default_pmos(),
                                  inst.bias);
}

Realization FlowEngine::run(FlowMode mode,
                            const std::vector<InstanceSpec>& instances,
                            const std::vector<std::string>& routed_nets,
                            FlowReport* report_out) const {
  const MonotonicStopwatch watch;
  // A run that owns the obs registry rebases it so the attached telemetry
  // covers exactly this run. Batch jobs run concurrently over one registry
  // and must not rebase (own_telemetry = false): the batch runner rebases
  // once and snapshots once.
  if (options_.own_telemetry) obs::Registry::global().rebase();
  obs::Span root(flow_span_name(mode));
  FlowReport report;
  DiagnosticsSink sink;
  // A caller-owned handle wins verbatim (cooperative cancellation); else
  // build a run-local budget from the options (env already folded in at
  // construction).
  Budget local_budget(options_.budget_limits);
  Budget* budget =
      options_.budget != nullptr ? options_.budget : &local_budget;
  BudgetObserver budget_obs(*budget);

  Realization real;
  switch (mode) {
    case FlowMode::kOptimize:
      real = run_optimize(instances, routed_nets, report, sink, *budget,
                          budget_obs);
      break;
    case FlowMode::kConventional:
      real = run_conventional(instances, routed_nets, report, sink, *budget,
                              budget_obs);
      break;
    case FlowMode::kManualOracle:
      real = run_manual_oracle(instances, routed_nets, report, sink, *budget,
                               budget_obs);
      break;
  }

  report.runtime_s = watch.seconds();
  finish_budget(*budget, report);
  root.close();
  if (options_.own_telemetry) finish_telemetry(report);
  finish_diagnostics(sink, report);
  if (report_out != nullptr) *report_out = std::move(report);
  return real;
}

void FlowEngine::place_and_route(
    const std::vector<InstanceSpec>& instances,
    const std::map<std::string, const pcell::PrimitiveLayout*>& layouts,
    const std::vector<std::string>& routed_nets, FlowReport& report,
    DiagnosticsSink* diag, const std::string& artifact_prefix, Budget* budget,
    BudgetObserver* budget_obs) const {
  obs::Span placement_span("placement");
  // Blocks and placement nets.
  std::vector<place::Block> blocks;
  std::map<std::string, int> block_index;
  for (const InstanceSpec& inst : instances) {
    const pcell::PrimitiveLayout* layout = layouts.at(inst.name);
    place::Block b;
    b.name = inst.name;
    b.width = layout->width();
    b.height = layout->height();
    block_index[inst.name] = static_cast<int>(blocks.size());
    blocks.push_back(b);
    report.placed_instances.push_back(inst.name);
  }
  std::vector<place::PlacementNet> pnets;
  for (const std::string& net : routed_nets) {
    place::PlacementNet pn;
    pn.name = net;
    for (const InstanceSpec& inst : instances) {
      for (const auto& [port, inet] : inst.port_nets) {
        if (inet != net) continue;
        const pcell::PrimitiveLayout* layout = layouts.at(inst.name);
        place::PlacementNet::PinRef ref;
        ref.block = block_index.at(inst.name);
        if (layout->geometry.has_pin(port)) {
          const geom::Pin& pin = layout->geometry.pin(port);
          const geom::Rect bb = layout->geometry.bounding_box();
          ref.dx = geom::to_meters(pin.rect.center().x - bb.x_lo);
          ref.dy = geom::to_meters(pin.rect.center().y - bb.y_lo);
        }
        pn.pins.push_back(ref);
      }
    }
    if (pn.pins.size() >= 2) pnets.push_back(pn);
  }

  place::PlacerOptions popt;
  popt.iterations = options_.placer_iterations;
  popt.seed = options_.seed;
  popt.budget = budget;
  // The parallel stage modes apply to the REAL placement/routing only.
  // Combo quick trials (recognizable by budget_obs == nullptr, see the
  // header) keep the classic serial stages: their metric feeds a
  // best-combination comparison, and the env overrides re-applied by the
  // quick engine's constructor must not flip a trial into a different
  // trajectory than the one the trial loop was tuned against.
  if (budget_obs != nullptr && options_.placer_parallel_moves >= 2) {
    popt.parallel_moves = options_.placer_parallel_moves;
    popt.pool = pool();
  }
  const place::AnnealingPlacer placer(popt);
  report.placement = placer.place(blocks, pnets, {});
  obs::counter_add("placer.runs");
  obs::record("placer.hpwl_um", report.placement.hpwl * 1e6);
  if (!report.placement.legal) {
    obs::counter_add("placer.illegal_results");
    if (diag != nullptr) {
      diag->report(DiagSeverity::kWarning, "placer", "placement",
                   "annealing result has residual overlaps (legal=false)");
    }
  }
  placement_span.close();
  if (budget != nullptr && budget_obs != nullptr && diag != nullptr) {
    budget_checkpoint(*budget, *budget_obs, *diag, "placement",
                      "budget.checks.placement");
  }
  if (!options_.trace_artifacts_dir.empty() && !artifact_prefix.empty()) {
    write_stage_artifact(tech_, options_.trace_artifacts_dir,
                         artifact_prefix + "_placement.svg", instances,
                         layouts, report, /*with_routes=*/false, diag);
  }

  // Global routing.
  obs::Span routing_span("routing");
  const geom::Rect region{
      0, 0, geom::to_nm(report.placement.width),
      geom::to_nm(report.placement.height)};
  route::RouterOptions ropt;
  route::GlobalRouter router(tech_, region, ropt);
  router.set_diagnostics(diag);
  router.set_budget(budget);
  const auto pins_for = [&](const place::PlacementNet& pn) {
    std::vector<geom::Point> pins;
    pins.reserve(pn.pins.size());
    for (const place::PlacementNet::PinRef& ref : pn.pins) {
      const place::PlacedBlock& pb =
          report.placement.blocks[static_cast<std::size_t>(ref.block)];
      const place::Block& blk = blocks[static_cast<std::size_t>(ref.block)];
      const double dx = pb.mirrored ? blk.width - ref.dx : ref.dx;
      pins.push_back(geom::Point{geom::to_nm(pb.x + dx),
                                 geom::to_nm(pb.y + ref.dy)});
    }
    return pins;
  };
  std::vector<route::NetPins> nets;
  nets.reserve(pnets.size());
  for (const place::PlacementNet& pn : pnets) {
    nets.push_back(route::NetPins{pn.name, pins_for(pn)});
  }
  // Backend selection (route/router_engine.hpp). The classic engine
  // reproduces the historic serial loop exactly — budget check before each
  // net, skipped nets routed=false, widened-layer fallback per net — so
  // the default stays byte-identical to the pre-engine router. The opt-in
  // backends are gated the same way as the parallel placer above: combo
  // quick trials (budget_obs == nullptr) always route classic.
  route::RouterBackend backend = options_.router;
  if (backend == route::RouterBackend::kClassic &&
      options_.partitioned_routing) {
    backend = route::RouterBackend::kPartitioned;
  }
  if (budget_obs == nullptr) backend = route::RouterBackend::kClassic;
  route::RouterEngineOptions eopt;
  eopt.backend = backend;
  if (backend == route::RouterBackend::kPartitioned) eopt.pool = pool();
  eopt.negotiation_iterations = options_.router_negotiation_iterations;
  const std::unique_ptr<route::RouterEngine> engine =
      route::make_router_engine(router, eopt);
  std::vector<route::NetRoute> routes = engine->route_nets(nets);
  for (std::size_t i = 0; i < nets.size(); ++i) {
    if (!routes[i].routed) {
      OLP_WARN << "global routing failed for net " << nets[i].name;
    }
    report.routes[nets[i].name] = std::move(routes[i]);
  }
  routing_span.close();
  if (budget != nullptr && budget_obs != nullptr && diag != nullptr) {
    budget_checkpoint(*budget, *budget_obs, *diag, "routing",
                      "budget.checks.routing");
  }
  if (!options_.trace_artifacts_dir.empty() && !artifact_prefix.empty()) {
    write_stage_artifact(tech_, options_.trace_artifacts_dir,
                         artifact_prefix + "_routed.svg", instances, layouts,
                         report, /*with_routes=*/true, diag);
  }
}

Realization FlowEngine::run_optimize(
    const std::vector<InstanceSpec>& instances,
    const std::vector<std::string>& routed_nets, FlowReport& report,
    DiagnosticsSink& sink, Budget& budget, BudgetObserver& budget_obs) const {
  // --- Step A: primitive layout optimization (Algorithm 1), deduplicated.
  obs::Span selection_span("selection");
  std::map<std::string, std::vector<core::LayoutCandidate>> by_signature;
  std::vector<std::unique_ptr<core::PrimitiveEvaluator>> evaluators;
  std::map<std::string, core::PrimitiveEvaluator*> eval_by_instance;
  const pcell::PrimitiveGenerator generator(tech_);

  // Evaluation memo cache: a caller-owned shared cache wins (cross-run
  // sharing, batch mode); else an optional run-local cache, scoped to the
  // run so cross-run state can never leak. Most valuable for the repeated
  // schematic references in tuning and port sweeps.
  core::EvalCache local_cache;
  core::EvalCache* cache = options_.shared_eval_cache != nullptr
                               ? options_.shared_eval_cache
                               : (options_.eval_cache ? &local_cache : nullptr);
  for (const InstanceSpec& inst : instances) {
    auto eval = std::make_unique<core::PrimitiveEvaluator>(make_evaluator(inst));
    eval->set_diagnostics(&sink);
    eval->set_budget(&budget);
    if (cache != nullptr) eval->set_cache(cache, options_.cache_client);
    eval_by_instance[inst.name] = eval.get();
    const std::string sig = instance_signature(inst);
    if (!by_signature.count(sig)) {
      core::PrimitiveOptimizer optimizer(generator, *eval, &sink, &budget,
                                         pool());
      core::OptimizerOptions oopt;
      oopt.bins = options_.bins;
      oopt.max_tuning_wires = options_.max_tuning_wires;
      by_signature[sig] =
          optimizer.optimize(inst.netlist, inst.fins, oopt);
    } else {
      obs::counter_add("flow.dedup_hits");
    }
    report.options[inst.name] = by_signature.at(sig);
    evaluators.push_back(std::move(eval));
  }
  selection_span.close();
  budget_checkpoint(budget, budget_obs, sink, "selection",
                    "budget.checks.selection");

  // --- Step B: choose one option per instance for the floorplan. With few
  // combinations, trial-place each; otherwise take the min-cost option.
  obs::Span combo_span("combo_choice");
  std::map<std::string, int> chosen;
  long combos = 1;
  for (const InstanceSpec& inst : instances) {
    combos *= static_cast<long>(report.options[inst.name].size());
    if (combos > 64) break;
  }
  if (combos > 1 && combos <= 64) {
    double best_metric = std::numeric_limits<double>::infinity();
    std::map<std::string, int> combo, best_combo;
    for (const InstanceSpec& inst : instances) combo[inst.name] = 0;
    // Pre-seed with the all-first-options combination so a budget trip
    // before the first trial still yields a complete choice.
    best_combo = combo;
    bool done = false;
    while (!done) {
      // Budget-bounded trials: keep the best combination tried so far.
      if (budget.check()) break;
      // Quick placement trial of this combination.
      std::map<std::string, const pcell::PrimitiveLayout*> layouts;
      double cost_sum = 0.0;
      for (const InstanceSpec& inst : instances) {
        const core::LayoutCandidate& cand =
            report.options[inst.name][static_cast<std::size_t>(
                combo[inst.name])];
        layouts[inst.name] = &cand.layout;
        cost_sum += cand.cost.total;
      }
      FlowReport trial;
      FlowOptions quick = options_;
      quick.placer_iterations = options_.combo_place_iterations;
      // Quick trials never write stage artifacts (they would overwrite the
      // real run's snapshots dozens of times).
      quick.trace_artifacts_dir.clear();
      FlowEngine quick_engine(tech_, quick);
      obs::counter_add("flow.combo_trials");
      // The trial report is discarded, but its diagnostics must not be:
      // sharing the sink keeps the per-fault accounting exact. The budget is
      // shared too (trials consume real work), but without a budget observer
      // — stage checkpoints belong to the main run only.
      quick_engine.place_and_route(instances, layouts, routed_nets, trial,
                                   &sink, std::string(), &budget);
      const double area = trial.placement.width * trial.placement.height;
      const double metric =
          cost_sum * (1.0 + 0.2 * trial.placement.hpwl / 1e-6) +
          area / 1e-12 * 0.01;
      if (metric < best_metric) {
        best_metric = metric;
        best_combo = combo;
      }
      // Advance the combination counter.
      done = true;
      for (const InstanceSpec& inst : instances) {
        int& idx = combo[inst.name];
        if (++idx < static_cast<int>(report.options[inst.name].size())) {
          done = false;
          break;
        }
        idx = 0;
      }
    }
    chosen = best_combo;
  } else {
    for (const InstanceSpec& inst : instances) chosen[inst.name] = 0;
  }
  report.chosen_option = chosen;
  combo_span.close();
  budget_checkpoint(budget, budget_obs, sink, "combo_choice",
                    "budget.checks.combo");

  std::map<std::string, const pcell::PrimitiveLayout*> layouts;
  for (const InstanceSpec& inst : instances) {
    layouts[inst.name] =
        &report.options[inst.name][static_cast<std::size_t>(
                                       chosen[inst.name])]
             .layout;
  }

  // --- Step C: placement + global routing of the chosen options.
  place_and_route(instances, layouts, routed_nets, report, &sink, "optimize",
                  &budget, &budget_obs);
  report_unrouted_nets(sink, routed_nets, report);

  // --- Step D: primitive port optimization (Algorithm 2).
  obs::Span portopt_span("port_optimization");
  core::PortOptimizerOptions popt;
  popt.max_wires = options_.max_port_wires;
  core::PortOptimizer port_opt(tech_, popt);
  port_opt.set_diagnostics(&sink);
  port_opt.set_budget(&budget);
  port_opt.set_pool(pool());
  std::vector<core::PortOptPrimitive> pops;
  for (const InstanceSpec& inst : instances) {
    core::PortOptPrimitive pop;
    pop.instance = inst.name;
    pop.evaluator = eval_by_instance.at(inst.name);
    pop.layout = layouts.at(inst.name);
    pop.tuning = report.options[inst.name][static_cast<std::size_t>(
                                               chosen[inst.name])]
                     .tuning;
    for (const auto& [port, net] : inst.port_nets) {
      const auto rit = report.routes.find(net);
      if (rit == report.routes.end() || !rit->second.routed) continue;
      core::PortRoute pr;
      pr.port = port;
      pr.circuit_net = net;
      pr.route = rit->second;
      pop.routes.push_back(std::move(pr));
    }
    if (!pop.routes.empty()) pops.push_back(std::move(pop));
  }
  for (const core::PortOptPrimitive& pop : pops) {
    std::vector<core::PortConstraint> pcs = port_opt.generate_constraints(pop);
    report.constraints.insert(report.constraints.end(), pcs.begin(),
                              pcs.end());
  }
  report.decisions = port_opt.reconcile(pops, report.constraints);
  equalize_symmetric_nets(instances, report.decisions);
  portopt_span.close();
  budget_checkpoint(budget, budget_obs, sink, "port_optimization",
                    "budget.checks.portopt");

  // --- Assemble the realization.
  obs::Span realization_span("realization");
  Realization real;
  real.ideal = false;
  for (const InstanceSpec& inst : instances) {
    const core::LayoutCandidate& cand =
        report.options[inst.name][static_cast<std::size_t>(
            chosen[inst.name])];
    real.layouts[inst.name] = cand.layout;
    real.tunings[inst.name] = cand.tuning;
  }
  for (const core::NetWireDecision& d : report.decisions) {
    const auto rit = report.routes.find(d.circuit_net);
    if (rit == report.routes.end() || !rit->second.routed) continue;
    real.net_wires[d.circuit_net] =
        core::route_wire_rc(tech_, rit->second, d.parallel_routes);
  }
  // Routed nets without a decision (no constraints) still carry their wire.
  for (const auto& [net, route] : report.routes) {
    if (!route.routed || real.net_wires.count(net)) continue;
    real.net_wires[net] = core::route_wire_rc(tech_, route, 1);
  }
  realization_span.close();

  long tb = 0;
  for (const auto& e : evaluators) tb += e->stats().testbenches;
  report.testbenches = tb;
  return real;
}

Realization FlowEngine::run_conventional(
    const std::vector<InstanceSpec>& instances,
    const std::vector<std::string>& routed_nets, FlowReport& report,
    DiagnosticsSink& sink, Budget& budget, BudgetObserver& budget_obs) const {
  const pcell::PrimitiveGenerator generator(tech_);

  // Minimum-area interdigitated configuration, no dummies: geometric
  // constraints are honored but nothing is optimized for parasitics or LDE.
  obs::Span generation_span("generation");
  Realization real;
  real.ideal = false;
  std::map<std::string, const pcell::PrimitiveLayout*> layouts;
  for (const InstanceSpec& inst : instances) {
    const bool matched = inst.netlist.devices.size() > 1 &&
                         inst.netlist.devices.front().match_group >= 0;
    // Conventional tools honor the matching constraint (common-centroid
    // rows) but never look at parasitics or LDE.
    std::vector<pcell::LayoutConfig> configs =
        pcell::PrimitiveGenerator::enumerate_configs(
            inst.fins, {pcell::PlacementPattern::kABBA});
    (void)matched;
    OLP_CHECK(!configs.empty(), "no configuration for " + inst.name);
    // A conventional generator picks a compact, roughly square cell; it just
    // never looks at parasitics or LDEs when doing so.
    // Standard generators realize matched structures as 2-D common-centroid
    // arrays, so prefer multi-row configurations when any exist.
    bool has_multirow = false;
    for (const pcell::LayoutConfig& cfg : configs) {
      if (cfg.m >= 2) has_multirow = true;
    }
    double best_score = std::numeric_limits<double>::infinity();
    pcell::PrimitiveLayout best;
    for (pcell::LayoutConfig cfg : configs) {
      if (has_multirow && cfg.m < 2) continue;
      // Budget-bounded enumeration: always generate at least one layout per
      // instance, then keep the best of the configurations scored so far.
      if (best_score < std::numeric_limits<double>::infinity() &&
          budget.check()) {
        break;
      }
      cfg.dummies = false;
      pcell::PrimitiveLayout cand = generator.generate(inst.netlist, cfg);
      const double squareness = std::fabs(std::log(cand.aspect_ratio()));
      const double score = cand.area() * (1.0 + 2.0 * squareness);
      if (score < best_score) {
        best_score = score;
        best = std::move(cand);
      }
    }
    real.layouts[inst.name] = std::move(best);
  }
  generation_span.close();
  budget_checkpoint(budget, budget_obs, sink, "generation",
                    "budget.checks.generation");
  for (const InstanceSpec& inst : instances) {
    layouts[inst.name] = &real.layouts.at(inst.name);
  }
  place_and_route(instances, layouts, routed_nets, report, &sink,
                  "conventional", &budget, &budget_obs);
  report_unrouted_nets(sink, routed_nets, report);
  // Conventional routing uses the PDK's default analog route width (two
  // tracks) everywhere -- fixed, never optimized per net.
  for (const auto& [net, route] : report.routes) {
    if (!route.routed) continue;
    real.net_wires[net] = core::route_wire_rc(tech_, route, 2);
  }
  return real;
}

Realization FlowEngine::run_manual_oracle(
    const std::vector<InstanceSpec>& instances,
    const std::vector<std::string>& routed_nets, FlowReport& report,
    DiagnosticsSink& sink, Budget& budget, BudgetObserver& budget_obs) const {
  const pcell::PrimitiveGenerator generator(tech_);

  // Exhaustive per-primitive search: tune the five cheapest configurations
  // and keep the global minimum (no aspect-ratio binning — the "manual"
  // designer iterates as long as needed).
  std::map<std::string, core::LayoutCandidate> chosen;
  std::vector<std::unique_ptr<core::PrimitiveEvaluator>> evaluators;
  std::map<std::string, core::PrimitiveEvaluator*> eval_by_instance;
  std::map<std::string, std::string> sig_of;
  std::map<std::string, core::LayoutCandidate> by_signature;

  obs::Span selection_span("selection");
  core::EvalCache local_cache;
  core::EvalCache* cache = options_.shared_eval_cache != nullptr
                               ? options_.shared_eval_cache
                               : (options_.eval_cache ? &local_cache : nullptr);
  for (const InstanceSpec& inst : instances) {
    auto eval = std::make_unique<core::PrimitiveEvaluator>(make_evaluator(inst));
    eval->set_diagnostics(&sink);
    eval->set_budget(&budget);
    if (cache != nullptr) eval->set_cache(cache, options_.cache_client);
    eval_by_instance[inst.name] = eval.get();
    const std::string sig = instance_signature(inst);
    sig_of[inst.name] = sig;
    if (!by_signature.count(sig)) {
      core::PrimitiveOptimizer optimizer(generator, *eval, &sink, &budget,
                                         pool());
      std::vector<core::LayoutCandidate> all =
          optimizer.evaluate_all(inst.netlist, inst.fins);
      std::sort(all.begin(), all.end(),
                [](const core::LayoutCandidate& a,
                   const core::LayoutCandidate& b) {
                  return a.cost.total < b.cost.total;
                });
      const std::size_t try_n = std::min<std::size_t>(5, all.size());
      core::LayoutCandidate best = all.front();
      double best_cost = std::numeric_limits<double>::infinity();
      for (std::size_t k = 0; k < try_n; ++k) {
        // Budget-bounded exhaustive tuning: keep the cheapest candidate
        // tuned so far (`best` starts as the untuned front-runner).
        if (budget.check()) break;
        core::LayoutCandidate cand = all[k];
        optimizer.tune(cand, options_.max_tuning_wires);
        if (cand.cost.total < best_cost) {
          best_cost = cand.cost.total;
          best = cand;
        }
      }
      by_signature[sig] = best;
    }
    chosen[inst.name] = by_signature.at(sig);
    evaluators.push_back(std::move(eval));
  }
  selection_span.close();
  budget_checkpoint(budget, budget_obs, sink, "selection",
                    "budget.checks.selection");

  std::map<std::string, const pcell::PrimitiveLayout*> layouts;
  for (const InstanceSpec& inst : instances) {
    layouts[inst.name] = &chosen.at(inst.name).layout;
  }
  place_and_route(instances, layouts, routed_nets, report, &sink,
                  "manual_oracle", &budget, &budget_obs);
  report_unrouted_nets(sink, routed_nets, report);

  // Exhaustive per-net wire count by total primitive cost.
  obs::Span portopt_span("port_optimization");
  Realization real;
  real.ideal = false;
  for (const InstanceSpec& inst : instances) {
    real.layouts[inst.name] = chosen.at(inst.name).layout;
    real.tunings[inst.name] = chosen.at(inst.name).tuning;
  }
  core::PortOptimizerOptions popt;
  popt.max_wires = options_.max_port_wires;
  core::PortOptimizer port_opt(tech_, popt);
  port_opt.set_diagnostics(&sink);
  port_opt.set_budget(&budget);
  port_opt.set_pool(pool());
  std::vector<core::PortOptPrimitive> pops;
  for (const InstanceSpec& inst : instances) {
    core::PortOptPrimitive pop;
    pop.instance = inst.name;
    pop.evaluator = eval_by_instance.at(inst.name);
    pop.layout = layouts.at(inst.name);
    pop.tuning = chosen.at(inst.name).tuning;
    for (const auto& [port, net] : inst.port_nets) {
      const auto rit = report.routes.find(net);
      if (rit == report.routes.end() || !rit->second.routed) continue;
      pop.routes.push_back(core::PortRoute{port, net, rit->second});
    }
    if (!pop.routes.empty()) pops.push_back(std::move(pop));
  }
  report.decisions = port_opt.optimize(pops);
  equalize_symmetric_nets(instances, report.decisions);
  portopt_span.close();
  budget_checkpoint(budget, budget_obs, sink, "port_optimization",
                    "budget.checks.portopt");
  obs::Span realization_span("realization");
  for (const core::NetWireDecision& d : report.decisions) {
    const auto rit = report.routes.find(d.circuit_net);
    if (rit == report.routes.end() || !rit->second.routed) continue;
    real.net_wires[d.circuit_net] =
        core::route_wire_rc(tech_, rit->second, d.parallel_routes);
  }
  for (const auto& [net, route] : report.routes) {
    if (!route.routed || real.net_wires.count(net)) continue;
    real.net_wires[net] = core::route_wire_rc(tech_, route, 1);
  }
  realization_span.close();

  long tb = 0;
  for (const auto& eval : evaluators) tb += eval->stats().testbenches;
  report.testbenches = tb;
  return real;
}

}  // namespace olp::circuits

#pragma once
// Full-layout assembly: merges the placed primitive layouts and the realized
// routes of a flow run into one flat Layout (for SVG export, area reporting,
// and geometric checks). This corresponds to the final picture the paper's
// flow produces once the detailed router honors the wire-count constraints.

#include "circuits/flow.hpp"
#include "geom/layout.hpp"

namespace olp::circuits {

/// Assembles the top-level layout from a flow result.
/// `instances` must be the list the flow ran on; `realization` supplies the
/// per-instance layouts, `report` the placement, routes and wire decisions.
geom::Layout assemble_layout(const tech::Technology& t,
                             const std::vector<InstanceSpec>& instances,
                             const Realization& realization,
                             const FlowReport& report);

/// Total cell area of the assembled layout [m^2].
double assembled_area(const geom::Layout& layout);

}  // namespace olp::circuits

#pragma once
// Durable request journal: the service's accepted-work ledger.
//
// Acceptance is a durable promise. Every accepted submit is appended here
// (and flushed) BEFORE the {"event":"accepted"} line leaves the process;
// every completion is appended when the job leaves a worker. After a hard
// crash (kill -9), open() replays the ledger: records that were accepted
// but never completed come back as pending entries the service re-enqueues,
// so no accepted request is ever silently lost. Replay is at-least-once —
// an UNKEYED job that crashed mid-run may execute twice; a job carrying a
// client-supplied idempotency key never does, because keyed completions are
// remembered (bounded history, survives compaction) and deduplicated at
// admission.
//
// On-disk format (native-endian, like the cache snapshot):
//
//   header   8-byte magic "OLPJNL1\n"
//   record   u32 payload_len | payload | u64 fnv1a64(payload)
//   payload  u32 type | u64 seq | body
//     type 1 accepted:   the full serialized ServiceRequest
//     type 2 completed:  u64 accepted_seq | u32 status | key string
//                        (empty key = voided entry, e.g. shed after append)
//     type 3 key-history: u32 status | key string (written by compaction to
//                        preserve idempotency dedup across rewrites)
//
// Appends go to the open file with an explicit flush — a kill -9 cannot
// lose a flushed record (the bytes are in the page cache), only an OS crash
// can. A record torn by the crash itself (partial length/payload/checksum
// at the tail) is tolerated: open() replays up to the last intact record
// and truncates the torn tail in place, exactly like a write-ahead log.
// compact() rewrites only live state (pending entries + key history) via
// the .tmp+rename idiom of the cache snapshot, so a crash mid-compaction
// never clobbers the previous journal.
//
// Every operation draws at FaultSite::kJournalIo: an injected failure
// reports false/0 with an error string — the SERVICE stays up and counts
// the degradation; durability is the only thing that suffers.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "circuits/batch.hpp"
#include "service/request.hpp"

namespace olp::service {

/// One accepted-but-unfinished record recovered by open().
struct JournalEntry {
  std::uint64_t seq = 0;
  ServiceRequest request;
};

struct JournalStats {
  bool enabled = false;        ///< open() succeeded on a configured path
  long records_scanned = 0;    ///< records read back by open()
  long appended = 0;           ///< records appended since open()
  long append_failures = 0;    ///< injected or real append I/O failures
  long compactions = 0;
  bool torn_tail_recovered = false;  ///< open() truncated a torn tail
  std::size_t pending = 0;     ///< accepted records awaiting completion
  std::size_t key_history = 0; ///< completed idempotency keys remembered
  std::string last_error;
};

class RequestJournal {
 public:
  /// Completed idempotency keys are remembered up to this many, oldest
  /// evicted first — bounds journal memory and compacted-file size while
  /// still deduplicating any realistic retry window.
  static constexpr std::size_t kKeyHistoryCap = 4096;

  explicit RequestJournal(std::string path);
  ~RequestJournal();

  RequestJournal(const RequestJournal&) = delete;
  RequestJournal& operator=(const RequestJournal&) = delete;

  /// Opens (creating when missing), scans every intact record, truncates a
  /// torn tail, and rebuilds pending/key state. False on I/O failure — the
  /// journal stays disabled and every append reports a counted failure.
  bool open(std::string* error = nullptr);

  /// The accepted-but-unfinished entries recovered by open(), in original
  /// acceptance order. The service re-enqueues these at start.
  std::vector<JournalEntry> take_pending();

  /// Completed-key lookup (replay dedup): true when `key` has a recorded
  /// completion, with its terminal status in *status when non-null.
  bool completed_key(const std::string& key,
                     circuits::JobStatus* status = nullptr) const;

  /// Appends an accepted record and flushes. Returns its seq (> 0), or 0 on
  /// failure (error filled, failure counted — caller keeps going).
  std::uint64_t append_accepted(const ServiceRequest& request,
                                std::string* error = nullptr);

  /// Appends a completion for `seq` and flushes. A nonempty key enters the
  /// bounded key history; an empty key voids the entry without burning a
  /// key (used when an already-journaled offer is shed).
  bool append_completed(std::uint64_t seq, const std::string& key,
                        circuits::JobStatus status,
                        std::string* error = nullptr);

  /// Rewrites the journal to only live state (pending + key history) via
  /// .tmp+rename. The previous file survives any failure.
  bool compact(std::string* error = nullptr);

  JournalStats stats() const;
  const std::string& path() const { return path_; }

 private:
  bool append_record_locked(const std::string& payload, std::string* error);

  std::string path_;
  mutable std::mutex mu_;
  bool enabled_ = false;
  std::uint64_t next_seq_ = 1;
  /// Live accepted records (seq -> request): what compact() must preserve
  /// and what take_pending() drains after open().
  std::map<std::uint64_t, ServiceRequest> live_;
  std::vector<std::uint64_t> recovered_order_;  ///< acceptance order of live_
  /// Bounded completed-key history: key -> (status, insertion counter).
  std::map<std::string, std::pair<circuits::JobStatus, std::uint64_t>> keys_;
  std::uint64_t key_counter_ = 0;
  long records_scanned_ = 0;
  long appended_ = 0;
  long append_failures_ = 0;
  long compactions_ = 0;
  bool torn_tail_recovered_ = false;
  std::string last_error_;
  void* file_ = nullptr;  ///< std::FILE* of the open journal (append mode)
};

}  // namespace olp::service

#pragma once
// Discrete curve analysis used by primitive tuning and port optimization.
//
// The paper stops adding parallel wires either at the cost minimum or, for a
// monotonically decreasing cost curve, at "the point of maximum curvature".
// These helpers operate on cost samples taken at wire counts 1..n.

#include <cmath>
#include <cstddef>
#include <vector>

#include "util/error.hpp"

namespace olp {

/// Returns the index (0-based) of the minimum value; ties break to the
/// smallest index (fewest wires → lowest congestion).
inline std::size_t argmin(const std::vector<double>& ys) {
  OLP_CHECK(!ys.empty(), "argmin of empty curve");
  std::size_t best = 0;
  for (std::size_t i = 1; i < ys.size(); ++i) {
    if (ys[i] < ys[best]) best = i;
  }
  return best;
}

/// True when the samples never increase (within tolerance `tol`).
inline bool is_monotone_decreasing(const std::vector<double>& ys,
                                   double tol = 1e-12) {
  for (std::size_t i = 1; i < ys.size(); ++i) {
    if (ys[i] > ys[i - 1] + tol) return false;
  }
  return true;
}

/// Index of maximum discrete curvature of a sampled curve (unit x-spacing).
///
/// Uses the second difference |y[i-1] - 2 y[i] + y[i+1]| normalized by the
/// local arc length, evaluated at interior points; endpoints cannot be
/// curvature maxima. For fewer than 3 samples the last index is returned
/// (no interior point exists).
inline std::size_t max_curvature_index(const std::vector<double>& ys) {
  OLP_CHECK(!ys.empty(), "curvature of empty curve");
  if (ys.size() < 3) return ys.size() - 1;
  std::size_t best = 1;
  double best_k = -1.0;
  for (std::size_t i = 1; i + 1 < ys.size(); ++i) {
    const double d1 = 0.5 * (ys[i + 1] - ys[i - 1]);
    const double d2 = ys[i + 1] - 2.0 * ys[i] + ys[i - 1];
    const double denom = 1.0 + d1 * d1;
    const double k = (d2 < 0 ? -d2 : d2) / (denom * std::sqrt(denom));
    if (k > best_k) {
      best_k = k;
      best = i;
    }
  }
  return best;
}

/// The paper's stopping rule for a cost-vs-wire-count sweep: the minimum when
/// the curve has one, otherwise the maximum-curvature point of the
/// monotonically decreasing curve. Returns a 0-based index into `ys`.
inline std::size_t tuning_stop_index(const std::vector<double>& ys) {
  OLP_CHECK(!ys.empty(), "tuning_stop_index of empty curve");
  if (!is_monotone_decreasing(ys)) return argmin(ys);
  return max_curvature_index(ys);
}

}  // namespace olp

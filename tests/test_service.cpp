// Resident layout service tests: request parsing, admission control and
// fair-share scheduling, per-request budgets, graceful drain vs. cancelling
// shutdown, snapshot warm restart (including corrupt-snapshot cold start),
// and the JSONL serve loop. Jobs use the ring-VCO circuit in conventional
// mode (milliseconds) except where optimize mode is needed to exercise the
// evaluation cache.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "service/queue.hpp"
#include "service/request.hpp"
#include "service/service.hpp"
#include "util/logging.hpp"
#include "util/trace_export.hpp"

namespace olp::service {
namespace {

const tech::Technology& t() {
  static const tech::Technology tech = tech::make_default_finfet_tech();
  return tech;
}

ServiceRequest vco_request(const std::string& id, const std::string& client) {
  ServiceRequest r;
  r.id = id;
  r.client = client;
  r.circuit = "vco";
  r.mode = circuits::FlowMode::kConventional;
  return r;
}

/// Small options: one worker, serial inner stages, no snapshot.
ServiceOptions small_options() {
  ServiceOptions o;
  o.workers = 1;
  o.pool_threads = 1;
  return o;
}

// --- request parsing --------------------------------------------------------

TEST(ParseRequest, FullSubmitLine) {
  ServiceRequest r;
  std::string error;
  ASSERT_EQ(parse_request(R"({"op":"submit","id":"j1","client":"alice",)"
                          R"("circuit":"ota5t","mode":"optimize","seed":9,)"
                          R"("priority":2,"deadline_ms":250,)"
                          R"("max_testbenches":100,"retries":3})",
                          &r, &error),
            RejectReason::kNone)
      << error;
  EXPECT_EQ(r.op, RequestOp::kSubmit);
  EXPECT_EQ(r.id, "j1");
  EXPECT_EQ(r.client, "alice");
  EXPECT_EQ(r.circuit, "ota5t");
  EXPECT_EQ(r.mode, circuits::FlowMode::kOptimize);
  EXPECT_EQ(r.seed, 9u);
  EXPECT_EQ(r.priority, 2);
  EXPECT_EQ(r.deadline_ms, 250.0);
  EXPECT_EQ(r.max_testbenches, 100);
  EXPECT_EQ(r.retries, 3);
}

TEST(ParseRequest, DefaultsApply) {
  ServiceRequest r;
  ASSERT_EQ(parse_request(R"({"op":"submit","circuit":"vco"})", &r, nullptr),
            RejectReason::kNone);
  EXPECT_EQ(r.client, "anon");
  EXPECT_EQ(r.mode, circuits::FlowMode::kOptimize);
  EXPECT_EQ(r.seed, 1u);
  EXPECT_EQ(r.deadline_ms, 0.0);
  EXPECT_EQ(r.retries, -1);
}

TEST(ParseRequest, RejectsBadInput) {
  ServiceRequest r;
  std::string error;
  EXPECT_EQ(parse_request("not json", &r, &error),
            RejectReason::kParseError);
  EXPECT_EQ(parse_request(R"({"op":42})", &r, &error),
            RejectReason::kParseError);
  EXPECT_EQ(parse_request(R"({"op":"conquer"})", &r, &error),
            RejectReason::kUnknownOp);
  EXPECT_EQ(parse_request(R"({"op":"submit","mode":"psychic"})", &r, &error),
            RejectReason::kUnknownMode);
  EXPECT_EQ(parse_request(R"({"op":"submit","seed":1.5})", &r, &error),
            RejectReason::kParseError);
  EXPECT_EQ(parse_request(R"({"op":"submit","deadline_ms":-5})", &r, &error),
            RejectReason::kParseError);
  EXPECT_FALSE(error.empty());
}

TEST(ParseRequest, EscapedStringsSurvive) {
  ServiceRequest r;
  ASSERT_EQ(parse_request(
                "{\"op\":\"submit\",\"id\":\"a\\\"b\\\\c\\nd\","
                "\"client\":\"caf\\u00e9\",\"circuit\":\"vco\"}",
                &r, nullptr),
            RejectReason::kNone);
  EXPECT_EQ(r.id, "a\"b\\c\nd");
  EXPECT_EQ(r.client, "caf\xc3\xa9");
}

// --- admission queue --------------------------------------------------------

QueuedJob make_job(const std::string& client, std::uint64_t ticket,
                   int priority = 0) {
  QueuedJob j;
  j.request.client = client;
  j.request.priority = priority;
  j.ticket = ticket;
  return j;
}

TEST(AdmissionQueue, BoundsShedWithReasons) {
  QueueOptions opt;
  opt.max_depth = 3;
  opt.max_per_client = 2;
  AdmissionQueue q(opt);
  EXPECT_EQ(q.offer(make_job("a", 1)), RejectReason::kNone);
  EXPECT_EQ(q.offer(make_job("a", 2)), RejectReason::kNone);
  EXPECT_EQ(q.offer(make_job("a", 3)), RejectReason::kClientQuota);
  EXPECT_EQ(q.offer(make_job("b", 4)), RejectReason::kNone);
  EXPECT_EQ(q.offer(make_job("c", 5)), RejectReason::kQueueFull);
  EXPECT_EQ(q.depth(), 3u);
  EXPECT_EQ(q.admitted(), 3);
  EXPECT_EQ(q.shed(RejectReason::kClientQuota), 1);
  EXPECT_EQ(q.shed(RejectReason::kQueueFull), 1);
  q.close();
  EXPECT_EQ(q.offer(make_job("a", 6)), RejectReason::kDraining);
  EXPECT_EQ(q.shed(RejectReason::kDraining), 1);
  EXPECT_EQ(q.shed_total(), 3);
}

TEST(AdmissionQueue, RoundRobinAcrossClients) {
  AdmissionQueue q;
  // Client a floods; client b submits one. b must be served within two
  // takes, not after a's whole backlog.
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_EQ(q.offer(make_job("a", i)), RejectReason::kNone);
  }
  ASSERT_EQ(q.offer(make_job("b", 10)), RejectReason::kNone);
  std::vector<std::string> order;
  QueuedJob job;
  while (q.depth() > 0) {
    ASSERT_TRUE(q.take(&job));
    order.push_back(job.request.client);
  }
  const std::vector<std::string> expected = {"a", "b", "a", "a", "a"};
  EXPECT_EQ(order, expected);
}

TEST(AdmissionQueue, PriorityOrdersWithinOneClient) {
  AdmissionQueue q;
  ASSERT_EQ(q.offer(make_job("a", 1, 0)), RejectReason::kNone);
  ASSERT_EQ(q.offer(make_job("a", 2, 5)), RejectReason::kNone);
  ASSERT_EQ(q.offer(make_job("a", 3, 5)), RejectReason::kNone);
  QueuedJob job;
  ASSERT_TRUE(q.take(&job));
  EXPECT_EQ(job.ticket, 2u);  // highest priority, earliest ticket
  ASSERT_TRUE(q.take(&job));
  EXPECT_EQ(job.ticket, 3u);
  ASSERT_TRUE(q.take(&job));
  EXPECT_EQ(job.ticket, 1u);
}

TEST(AdmissionQueue, CloseDrainsThenUnblocks) {
  AdmissionQueue q;
  ASSERT_EQ(q.offer(make_job("a", 1)), RejectReason::kNone);
  q.close();
  QueuedJob job;
  EXPECT_TRUE(q.take(&job));   // queued item still served after close
  EXPECT_FALSE(q.take(&job));  // then takers unblock with false
}

// --- service lifecycle ------------------------------------------------------

TEST(Service, RunsSubmittedJobToCompletion) {
  set_log_level(LogLevel::kOff);
  LayoutService svc(t(), small_options());
  svc.start();
  std::promise<RequestOutcome> done;
  auto future = done.get_future();
  ASSERT_EQ(svc.submit(vco_request("job1", "alice"),
                       [&done](const RequestOutcome& o) {
                         done.set_value(o);
                       }),
            RejectReason::kNone);
  const RequestOutcome outcome = future.get();
  EXPECT_EQ(outcome.status, circuits::JobStatus::kSucceeded);
  EXPECT_EQ(outcome.id, "job1");
  EXPECT_EQ(outcome.attempts, 1);
  svc.drain();
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(stats.succeeded, 1);
  EXPECT_TRUE(stats.draining);
}

TEST(Service, UnknownCircuitShedsAtSubmission) {
  LayoutService svc(t(), small_options());
  svc.start();
  ServiceRequest r = vco_request("x", "alice");
  r.circuit = "flux_capacitor";
  EXPECT_EQ(svc.submit(r, nullptr), RejectReason::kUnknownCircuit);
  svc.drain();
  EXPECT_EQ(svc.stats().completed, 0);
}

TEST(Service, DeadlineBudgetDegradesInsteadOfHanging) {
  LayoutService svc(t(), small_options());
  svc.start();
  ServiceRequest r = vco_request("tight", "alice");
  r.mode = circuits::FlowMode::kOptimize;  // long enough to trip 1 ms
  r.deadline_ms = 1.0;
  std::promise<RequestOutcome> done;
  auto future = done.get_future();
  ASSERT_EQ(svc.submit(r, [&done](const RequestOutcome& o) {
              done.set_value(o);
            }),
            RejectReason::kNone);
  const RequestOutcome outcome = future.get();
  EXPECT_TRUE(outcome.budget_exhausted);
  EXPECT_NE(outcome.status, circuits::JobStatus::kFailed);  // salvaged
  svc.drain();
}

TEST(Service, DrainingShedsNewSubmissions) {
  LayoutService svc(t(), small_options());
  svc.start();
  svc.drain();
  EXPECT_EQ(svc.submit(vco_request("late", "alice"), nullptr),
            RejectReason::kDraining);
}

TEST(Service, ShutdownCancelsQueuedJobsWithOutcomes) {
  ServiceOptions options = small_options();
  LayoutService svc(t(), options);
  svc.start();
  // One slow job occupies the single worker; the rest queue behind it.
  std::atomic<int> done_count{0};
  std::atomic<int> cancelled_count{0};
  std::vector<std::promise<RequestOutcome>> outcomes(4);
  for (int i = 0; i < 4; ++i) {
    ServiceRequest r = vco_request("s" + std::to_string(i), "alice");
    if (i == 0) r.mode = circuits::FlowMode::kOptimize;  // slow head job
    ASSERT_EQ(svc.submit(r,
                         [&, i](const RequestOutcome& o) {
                           ++done_count;
                           if (o.error.find("cancelled") != std::string::npos) {
                             ++cancelled_count;
                           }
                           outcomes[static_cast<std::size_t>(i)].set_value(o);
                         }),
              RejectReason::kNone);
  }
  svc.drain(/*cancel_inflight=*/true);
  // Every submission got exactly one outcome: the in-flight head job was
  // budget-cancelled (salvage), the queued tail was dropped as cancelled.
  for (auto& p : outcomes) p.get_future().get();
  EXPECT_EQ(done_count.load(), 4);
  EXPECT_GE(cancelled_count.load(), 1);
  EXPECT_EQ(svc.stats().completed, 4);
}

TEST(Service, EnvOverridesWinAtConstruction) {
  ::setenv("OLP_SERVICE_WORKERS", "3", 1);
  ::setenv("OLP_SERVICE_RETRIES", "7", 1);
  ::setenv("OLP_SERVICE_QUEUE_DEPTH", "11", 1);
  ServiceOptions options;
  options.workers = 1;
  options.max_retries = 0;
  options.queue.max_depth = 5;
  LayoutService svc(t(), options);
  ::unsetenv("OLP_SERVICE_WORKERS");
  ::unsetenv("OLP_SERVICE_RETRIES");
  ::unsetenv("OLP_SERVICE_QUEUE_DEPTH");
  EXPECT_EQ(svc.options().workers, 3);
  EXPECT_EQ(svc.options().max_retries, 7);
  EXPECT_EQ(svc.options().queue.max_depth, 11u);
  // Env restored AFTER construction: the captured values stick.
  LayoutService later(t(), options);
  EXPECT_EQ(later.options().workers, 1);
}

// --- snapshot warm restart --------------------------------------------------

std::string temp_snapshot_path(const char* name) {
  return testing::TempDir() + name;
}

TEST(ServiceSnapshot, WarmRestartServesRestoredEntries) {
  const std::string path = temp_snapshot_path("olp_service_warm.bin");
  std::remove(path.c_str());

  ServiceRequest optimize = vco_request("opt", "alice");
  optimize.mode = circuits::FlowMode::kOptimize;

  {
    ServiceOptions options = small_options();
    options.snapshot_path = path;
    LayoutService svc(t(), options);
    svc.start();
    std::promise<RequestOutcome> done;
    auto future = done.get_future();
    ASSERT_EQ(svc.submit(optimize, [&done](const RequestOutcome& o) {
                done.set_value(o);
              }),
              RejectReason::kNone);
    EXPECT_EQ(future.get().status, circuits::JobStatus::kSucceeded);
    svc.drain();  // flushes the final snapshot
    EXPECT_FALSE(svc.stats().snapshot_loaded);
    EXPECT_GT(svc.stats().cache.entries, 0);
  }

  // "Restart": a fresh service on the same path must warm-load and serve
  // the repeat request mostly from restored entries.
  {
    ServiceOptions options = small_options();
    options.snapshot_path = path;
    LayoutService svc(t(), options);
    svc.start();
    EXPECT_TRUE(svc.stats().snapshot_loaded);
    EXPECT_GT(svc.stats().cache.entries, 0);
    std::promise<RequestOutcome> done;
    auto future = done.get_future();
    ASSERT_EQ(svc.submit(optimize, [&done](const RequestOutcome& o) {
                done.set_value(o);
              }),
              RejectReason::kNone);
    EXPECT_EQ(future.get().status, circuits::JobStatus::kSucceeded);
    svc.drain();
    const ServiceStats stats = svc.stats();
    EXPECT_GT(stats.cache.restored_hits, 0);  // the warm-start proof
    EXPECT_EQ(stats.cache.misses, 0);  // same request, fully warm
  }
  std::remove(path.c_str());
}

TEST(ServiceSnapshot, CorruptSnapshotFallsBackToColdStart) {
  const std::string path = temp_snapshot_path("olp_service_corrupt.bin");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "garbage, not a snapshot";
  }
  ServiceOptions options = small_options();
  options.snapshot_path = path;
  LayoutService svc(t(), options);
  svc.start();  // must not throw or abort
  const ServiceStats stats = svc.stats();
  EXPECT_FALSE(stats.snapshot_loaded);
  EXPECT_FALSE(stats.snapshot_error.empty());
  EXPECT_EQ(stats.cache.entries, 0);
  // The service still works cold.
  std::promise<RequestOutcome> done;
  auto future = done.get_future();
  ASSERT_EQ(svc.submit(vco_request("cold", "alice"),
                       [&done](const RequestOutcome& o) {
                         done.set_value(o);
                       }),
            RejectReason::kNone);
  EXPECT_EQ(future.get().status, circuits::JobStatus::kSucceeded);
  svc.drain();
  std::remove(path.c_str());
}

TEST(ServiceSnapshot, TruncatedSnapshotFallsBackToColdStart) {
  const std::string path = temp_snapshot_path("olp_service_trunc.bin");
  std::remove(path.c_str());
  // Produce a valid snapshot first.
  {
    ServiceOptions options = small_options();
    options.snapshot_path = path;
    LayoutService svc(t(), options);
    svc.start();
    std::promise<RequestOutcome> done;
    auto future = done.get_future();
    ServiceRequest r = vco_request("seed", "alice");
    r.mode = circuits::FlowMode::kOptimize;
    ASSERT_EQ(svc.submit(r, [&done](const RequestOutcome& o) {
                done.set_value(o);
              }),
              RejectReason::kNone);
    future.get();
    svc.drain();
  }
  // Truncate it (as a kill -9 mid-write on a non-atomic filesystem might).
  std::string full;
  {
    std::ifstream in(path, std::ios::binary);
    full.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  ASSERT_GT(full.size(), 16u);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(full.data(), static_cast<std::streamsize>(full.size() / 3));
  }
  ServiceOptions options = small_options();
  options.snapshot_path = path;
  LayoutService svc(t(), options);
  svc.start();
  EXPECT_FALSE(svc.stats().snapshot_loaded);
  EXPECT_FALSE(svc.stats().snapshot_error.empty());
  EXPECT_EQ(svc.stats().cache.entries, 0);
  svc.drain();
  std::remove(path.c_str());
}

// --- serve loop -------------------------------------------------------------

TEST(Serve, JsonlLoopHandlesMixedTraffic) {
  std::istringstream in(
      "{\"op\":\"ping\"}\n"
      "this is not json\n"
      "{\"op\":\"submit\",\"client\":\"alice\",\"circuit\":\"vco\","
      "\"mode\":\"conventional\"}\n"
      "{\"op\":\"submit\",\"client\":\"alice\",\"circuit\":\"warp_core\"}\n"
      "{\"op\":\"stats\"}\n"
      "{\"op\":\"drain\"}\n");
  std::ostringstream out;
  LayoutService svc(t(), small_options());
  svc.serve(in, out);
  const std::string log = out.str();
  EXPECT_NE(log.find("\"event\":\"pong\""), std::string::npos);
  EXPECT_NE(log.find("\"reason\":\"parse_error\""), std::string::npos);
  EXPECT_NE(log.find("\"event\":\"accepted\""), std::string::npos);
  EXPECT_NE(log.find("\"event\":\"done\""), std::string::npos);
  EXPECT_NE(log.find("\"status\":\"succeeded\""), std::string::npos);
  EXPECT_NE(log.find("\"reason\":\"unknown_circuit\""), std::string::npos);
  EXPECT_NE(log.find("\"event\":\"stats\""), std::string::npos);
  EXPECT_NE(log.find("\"event\":\"drained\""), std::string::npos);
  // Every response line is itself one complete JSON object per line.
  std::istringstream lines(log);
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    ++count;
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
  }
  EXPECT_GE(count, 7);
  EXPECT_TRUE(svc.draining());
}

TEST(Serve, EofDrainsGracefully) {
  std::istringstream in(
      "{\"op\":\"submit\",\"client\":\"a\",\"circuit\":\"vco\","
      "\"mode\":\"conventional\"}\n");
  std::ostringstream out;
  LayoutService svc(t(), small_options());
  svc.serve(in, out);  // EOF after one submit: job still completes
  EXPECT_NE(out.str().find("\"event\":\"done\""), std::string::npos);
  EXPECT_EQ(svc.stats().completed, 1);
}

TEST(Serve, MetricsOpRoundTripsFullTelemetry) {
  // With observability on, the metrics verb must return one well-formed
  // JSON line carrying the service gauges, the bounded latency histogram,
  // the shed breakdown, and the live obs families (pool queue depth /
  // busy-idle, lock-wait sites appear once contended).
  ServiceOptions options = small_options();
  options.workers = 2;
  options.pool_threads = 2;
  options.observability = true;
  LayoutService svc(t(), options);
  svc.start();
  // Run one optimize-mode job to completion first — optimize is the mode
  // whose inner stages go through the shared TaskPool, so the dump reflects
  // real pool telemetry — then ask for metrics over the wire.
  {
    std::promise<RequestOutcome> done;
    auto fut = done.get_future();
    ServiceRequest request = vco_request("m0", "a");
    request.mode = circuits::FlowMode::kOptimize;
    ASSERT_EQ(svc.submit(request,
                         [&done](const RequestOutcome& o) {
                           done.set_value(o);
                         }),
              RejectReason::kNone);
    fut.wait();
  }
  std::istringstream in("{\"op\":\"metrics\"}\n{\"op\":\"drain\"}\n");
  std::ostringstream out;
  svc.serve(in, out);

  std::string metrics_line;
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("\"event\":\"metrics\"") != std::string::npos) {
      metrics_line = line;
    }
  }
  ASSERT_FALSE(metrics_line.empty()) << out.str();
  std::string err;
  EXPECT_TRUE(obs::json_well_formed(metrics_line, &err)) << err;
  for (const char* key :
       {"\"queue_depth\"", "\"completed\"", "\"latency_ms\"", "\"buckets\"",
        "\"p999\"", "\"shed\"", "\"queue_full\"", "\"client_quota\"",
        "\"counters\"", "\"histograms\"", "\"obs_enabled\":true"}) {
    EXPECT_NE(metrics_line.find(key), std::string::npos) << key;
  }
  // The inner pool ran parallel stages with obs on: its queue-depth
  // histogram must have made it into the dump. (Busy/idle counters are not
  // asserted — on a single-core host the submitting thread may legally run
  // every task itself before a pool worker wakes.)
  EXPECT_NE(metrics_line.find("obs.pool.queue_depth"), std::string::npos);
  obs::Registry::global().disable();
}

TEST(Service, PeriodicMetricsFileIsAppendOnlyJsonl) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "olp_metrics_test.jsonl")
          .string();
  std::remove(path.c_str());
  {
    ServiceOptions options = small_options();
    options.observability = true;
    options.metrics_path = path;
    options.metrics_every = 1;  // one line per completion, plus drain
    LayoutService svc(t(), options);
    svc.start();
    for (int i = 0; i < 3; ++i) {
      std::promise<RequestOutcome> done;
      auto fut = done.get_future();
      ASSERT_EQ(svc.submit(vco_request("m" + std::to_string(i), "a"),
                           [&done](const RequestOutcome& o) {
                             done.set_value(o);
                           }),
                RejectReason::kNone);
      fut.wait();
    }
    svc.drain();
  }
  obs::Registry::global().disable();

  std::ifstream file(path);
  ASSERT_TRUE(file.is_open()) << path;
  std::string line;
  int lines = 0;
  while (std::getline(file, line)) {
    ++lines;
    std::string err;
    EXPECT_TRUE(obs::json_well_formed(line, &err)) << err << "\n" << line;
    EXPECT_NE(line.find("\"completed\""), std::string::npos);
    EXPECT_NE(line.find("\"latency_ms\""), std::string::npos);
  }
  // 3 periodic lines (every completion) + the forced line at drain.
  EXPECT_GE(lines, 3);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace olp::service

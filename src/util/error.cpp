#include "util/error.hpp"

namespace olp::detail {

void throw_check_failure(const char* cond, const char* file, int line,
                         const std::string& msg) {
  throw InvalidArgumentError(msg + " [" + cond + " failed at " + file + ":" +
                             std::to_string(line) + "]");
}

}  // namespace olp::detail

#include "util/task_pool.hpp"

#include <algorithm>
#include <chrono>
#include <memory>

#include "util/env.hpp"
#include "util/faults.hpp"

namespace olp {

namespace {

/// Deterministic per-index delay for a fired kPoolTaskDelay draw: a
/// Knuth-hash scramble of the index spreads sleeps over ~[0.1, 2.4] ms so
/// neighboring indices finish in thoroughly shuffled order.
void chaos_delay(std::size_t index) {
  if (!FaultInjector::global().enabled()) return;
  if (!FaultInjector::global().should_fail(FaultSite::kPoolTaskDelay)) return;
  const std::uint64_t h = (index * 2654435761ULL) % 24ULL;
  std::this_thread::sleep_for(std::chrono::microseconds(100 + 100 * h));
}

/// The pool mutex's contention attribution (obs::timed_lock).
constexpr obs::LockSite kPoolLock{"obs.contention.pool.contended",
                                  "obs.contention.pool.wait_us"};

std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int resolve_num_threads(int requested) {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int threads_from_env(int base) {
  return resolve_num_threads(
      static_cast<int>(env::integer("OLP_THREADS", base)));
}

TaskPool::TaskPool(int threads) {
  const int total = threads < 1 ? 1 : threads;
  workers_.reserve(static_cast<std::size_t>(total - 1));
  for (int i = 1; i < total; ++i) {
    workers_.emplace_back([this, i] {
      obs::set_thread_name("pool/worker-" + std::to_string(i - 1));
      worker_loop();
    });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

TaskPool::Batch* TaskPool::front_claimable() {
  for (Batch* batch : queue_) {
    if (batch->claimable()) return batch;
  }
  return nullptr;
}

void TaskPool::parallel_for(std::size_t n,
                            const std::function<bool(std::size_t)>& task) {
  if (n == 0) return;
  obs::counter_add("pool.batches");
  if (workers_.empty()) {
    // Inline path: the seed-serial loop (ordered, break on false).
    long ran = 0;
    bool stopped = false;
    for (std::size_t i = 0; i < n; ++i) {
      chaos_delay(i);
      ++ran;
      if (!task(i)) {
        stopped = true;
        break;
      }
    }
    obs::counter_add("pool.tasks", ran);
    if (stopped) obs::counter_add("pool.stopped_batches");
    return;
  }

  Batch batch;
  batch.task = &task;
  batch.n = n;
  batch.context = obs::capture_thread_context();

  std::unique_lock<std::mutex> lock = obs::timed_lock(mu_, kPoolLock);
  queue_.push_back(&batch);
  obs::histogram("obs.pool.queue_depth",
                 static_cast<double>(queue_.size()));
  lock.unlock();
  work_cv_.notify_all();
  obs::timed_relock(lock, kPoolLock);

  // The submitter works its own batch first (so progress never depends on a
  // free worker — nested submission cannot deadlock), then waits for
  // stragglers claimed by workers.
  while (batch.claimable()) run_one(lock, batch, /*is_worker=*/false);
  done_cv_.wait(lock, [&batch] { return batch.done(); });
  queue_.erase(std::find(queue_.begin(), queue_.end(), &batch));
  const bool stopped = batch.stop;
  std::exception_ptr error = batch.error;
  lock.unlock();
  if (stopped) obs::counter_add("pool.stopped_batches");
  if (error != nullptr) std::rethrow_exception(error);
}

void TaskPool::worker_loop() {
  std::unique_lock<std::mutex> lock = obs::timed_lock(mu_, kPoolLock);
  for (;;) {
    // Idle time = waiting for claimable work; the clock is only read while
    // the registry is enabled, so disabled runs pay nothing here.
    const std::int64_t idle_t0 = obs::enabled() ? now_us() : 0;
    work_cv_.wait(lock,
                  [this] { return shutdown_ || front_claimable() != nullptr; });
    if (idle_t0 != 0) {
      obs::counter_add("obs.pool.idle_us", now_us() - idle_t0);
    }
    if (shutdown_) return;
    Batch* batch = front_claimable();
    if (batch != nullptr) run_one(lock, *batch, /*is_worker=*/true);
  }
}

void TaskPool::run_one(std::unique_lock<std::mutex>& lock, Batch& batch,
                       bool is_worker) {
  const std::size_t index = batch.next++;
  ++batch.in_flight;
  const std::function<bool(std::size_t)>* const task = batch.task;
  const obs::ThreadContext context = batch.context;
  lock.unlock();

  bool keep_going = false;
  std::exception_ptr thrown;
  const std::int64_t busy_t0 = obs::enabled() ? now_us() : 0;
  {
    // Workers adopt the submitting thread's span position so their spans
    // (and any diagnostics' span paths) nest inside the submitting span.
    // The submitter already is that position. Applied per task because a
    // worker may interleave claims from different batches.
    std::unique_ptr<obs::ThreadContextScope> scope;
    if (is_worker) scope = std::make_unique<obs::ThreadContextScope>(context);
    chaos_delay(index);
    try {
      keep_going = (*task)(index);
    } catch (...) {
      thrown = std::current_exception();
    }
  }
  obs::counter_add("pool.tasks");
  if (busy_t0 != 0 && is_worker) {
    obs::counter_add("obs.pool.busy_us", now_us() - busy_t0);
  }

  obs::timed_relock(lock, kPoolLock);
  --batch.in_flight;
  if (thrown != nullptr) {
    if (batch.error == nullptr || index < batch.error_index) {
      batch.error = thrown;
      batch.error_index = index;
    }
    batch.stop = true;
  } else if (!keep_going) {
    batch.stop = true;
  }
  if (batch.done()) done_cv_.notify_all();
}

void run_indexed(TaskPool* pool, std::size_t n,
                 const std::function<bool(std::size_t)>& task) {
  if (pool != nullptr) {
    pool->parallel_for(n, task);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!task(i)) break;
  }
}

}  // namespace olp

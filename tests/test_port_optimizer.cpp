// Tests for Algorithm 2: interval extraction, route RC conversion, constraint
// generation and reconciliation.

#include <gtest/gtest.h>

#include "circuits/common.hpp"
#include "core/optimizer.hpp"
#include "core/port_optimizer.hpp"

namespace olp::core {
namespace {

const tech::Technology& t() {
  static const tech::Technology tech = tech::make_default_finfet_tech();
  return tech;
}

route::NetRoute m3_route(double length) {
  route::NetRoute nr;
  nr.net = "r";
  nr.routed = true;
  nr.vias = 2;
  nr.segments.push_back(route::RouteSegment{
      tech::Layer::kM3, geom::Point{0, 0},
      geom::Point{geom::to_nm(length), 0}});
  return nr;
}

// --- interval extraction -------------------------------------------------------

TEST(IntervalFromCurve, PaperTableIVDpShape) {
  // DP costs from the paper: plateau [3,5] around the minimum at 4.
  const std::vector<double> costs = {5.17, 4.40, 4.23, 4.21, 4.25, 4.33, 4.42};
  const WireInterval iv = interval_from_curve(costs, 0.015);
  EXPECT_EQ(iv.lo, 3);
  ASSERT_TRUE(iv.hi.has_value());
  EXPECT_EQ(*iv.hi, 5);
}

TEST(IntervalFromCurve, MonotoneCurveIsUnbounded) {
  // CM costs from the paper: still improving at the end of the sweep.
  const std::vector<double> costs = {4.54, 3.36, 3.00, 2.85, 2.77, 2.74, 2.74};
  const WireInterval iv = interval_from_curve(costs, 0.015);
  EXPECT_FALSE(iv.hi.has_value());
  EXPECT_GE(iv.lo, 4);
}

TEST(IntervalFromCurve, FlatCurveCoversEverything) {
  const WireInterval iv = interval_from_curve({2.0, 2.0, 2.0, 2.0}, 0.015);
  EXPECT_EQ(iv.lo, 1);
  EXPECT_FALSE(iv.hi.has_value());
}

TEST(IntervalFromCurve, SharpMinimum) {
  const WireInterval iv =
      interval_from_curve({10.0, 1.0, 10.0, 10.0}, 0.015);
  EXPECT_EQ(iv.lo, 2);
  ASSERT_TRUE(iv.hi.has_value());
  EXPECT_EQ(*iv.hi, 2);
}

TEST(IntervalFromCurve, EmptyThrows) {
  EXPECT_THROW(interval_from_curve({}, 0.015), InvalidArgumentError);
}

// --- route RC ------------------------------------------------------------------

TEST(RouteWireRc, ParallelRoutesScaleRandC) {
  const route::NetRoute nr = m3_route(2e-6);
  const extract::WireRc w1 = route_wire_rc(t(), nr, 1);
  const extract::WireRc w4 = route_wire_rc(t(), nr, 4);
  EXPECT_LT(w4.resistance, w1.resistance / 3.0);
  EXPECT_GT(w4.capacitance, w1.capacitance);
  // Vias participate: R includes via term that also divides by 4.
  EXPECT_GT(w1.resistance, t().wire_res(tech::Layer::kM3, 2e-6));
}

TEST(RouteWireRc, RejectsZeroParallel) {
  EXPECT_THROW(route_wire_rc(t(), m3_route(2e-6), 0), InvalidArgumentError);
}

// --- constraint generation on a real primitive ----------------------------------

struct DpFixture {
  pcell::PrimitiveGenerator gen{t()};
  PrimitiveEvaluator eval;
  pcell::PrimitiveLayout layout;

  DpFixture()
      : eval(t(), circuits::default_nmos(), circuits::default_pmos(),
             [] {
               BiasContext b;
               b.vdd = t().vdd;
               b.bias_current = 500e-6;
               b.port_voltage = {{"ga", 0.5},
                                 {"gb", 0.5},
                                 {"da", 0.5},
                                 {"db", 0.5},
                                 {"s", 0.2}};
               b.port_load_cap = {{"da", 20e-15}, {"db", 20e-15}};
               return b;
             }()) {
    pcell::LayoutConfig c;
    c.nfin = 8;
    c.nf = 20;
    c.m = 6;
    layout = gen.generate(pcell::make_diff_pair(), c);
  }

  PortOptPrimitive primitive() {
    PortOptPrimitive p;
    p.instance = "dp";
    p.evaluator = &eval;
    p.layout = &layout;
    p.routes.push_back(PortRoute{"da", "net_d1", m3_route(2e-6)});
    p.routes.push_back(PortRoute{"db", "net_out", m3_route(2e-6)});
    return p;
  }
};

TEST(PortOptimizer, GeneratesConstraintPerNet) {
  DpFixture fx;
  PortOptimizerOptions opt;
  opt.max_wires = 6;
  PortOptimizer po(t(), opt);
  const std::vector<PortConstraint> pcs =
      po.generate_constraints(fx.primitive());
  ASSERT_EQ(pcs.size(), 2u);
  for (const PortConstraint& pc : pcs) {
    EXPECT_EQ(pc.cost_curve.size(), 6u);
    EXPECT_GE(pc.interval.lo, 1);
    for (double cost : pc.cost_curve) EXPECT_GE(cost, 0.0);
  }
}

TEST(PortOptimizer, SymmetricDrainSweepsDoNotExplode) {
  // The drain sweep widens both sides together; cost must stay bounded (no
  // phantom offset from an asymmetric testbench).
  DpFixture fx;
  PortOptimizerOptions opt;
  opt.max_wires = 5;
  PortOptimizer po(t(), opt);
  const std::vector<PortConstraint> pcs =
      po.generate_constraints(fx.primitive());
  for (const PortConstraint& pc : pcs) {
    for (double cost : pc.cost_curve) {
      EXPECT_LT(cost, 100.0) << pc.circuit_net;
    }
  }
}

TEST(PortOptimizer, ReconcileOverlapUsesMaxLowerBound) {
  DpFixture fx;
  PortOptimizer po(t(), {});
  std::vector<PortConstraint> pcs;
  PortConstraint a;
  a.instance = "p1";
  a.circuit_net = "n";
  a.interval = WireInterval{2, 6};
  PortConstraint b;
  b.instance = "p2";
  b.circuit_net = "n";
  b.interval = WireInterval{4, std::nullopt};
  pcs.push_back(a);
  pcs.push_back(b);
  const std::vector<NetWireDecision> d = po.reconcile({}, pcs);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_TRUE(d[0].from_overlap);
  EXPECT_EQ(d[0].parallel_routes, 4);
}

TEST(PortOptimizer, ReconcileGapRunsJointSimulation) {
  DpFixture fx;
  PortOptimizerOptions opt;
  opt.max_wires = 6;
  PortOptimizer po(t(), opt);
  PortOptPrimitive prim = fx.primitive();
  std::vector<PortConstraint> pcs;
  PortConstraint a;
  a.instance = "dp";
  a.circuit_net = "net_d1";
  a.interval = WireInterval{1, 2};
  PortConstraint b;
  b.instance = "other";
  b.circuit_net = "net_d1";
  b.interval = WireInterval{5, 6};
  pcs.push_back(a);
  pcs.push_back(b);
  const std::vector<NetWireDecision> d = po.reconcile({prim}, pcs);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_FALSE(d[0].from_overlap);
  EXPECT_GE(d[0].parallel_routes, 2);
  EXPECT_LE(d[0].parallel_routes, 5);
}

TEST(PortOptimizer, EndToEndOptimizeProducesDecisions) {
  DpFixture fx;
  PortOptimizerOptions opt;
  opt.max_wires = 5;
  PortOptimizer po(t(), opt);
  const std::vector<NetWireDecision> d = po.optimize({fx.primitive()});
  ASSERT_EQ(d.size(), 2u);
  for (const NetWireDecision& dec : d) {
    EXPECT_GE(dec.parallel_routes, 1);
    EXPECT_LE(dec.parallel_routes, 5);
  }
}

TEST(PortOptimizer, IncompletePrimitiveThrows) {
  PortOptimizer po(t(), {});
  PortOptPrimitive bad;
  bad.instance = "x";
  bad.routes.push_back(PortRoute{"da", "n", m3_route(1e-6)});
  EXPECT_THROW(po.generate_constraints(bad), InvalidArgumentError);
}

}  // namespace
}  // namespace olp::core

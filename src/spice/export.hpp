#pragma once
// CSV export of analysis results, for plotting transient waveforms and AC
// responses with external tools.

#include <string>
#include <vector>

#include "spice/measure.hpp"
#include "spice/simulator.hpp"

namespace olp::spice {

/// Renders selected node waveforms of a transient result as CSV text with a
/// header row ("time,<node>,..."). Node names must exist in the circuit.
std::string tran_to_csv(const Simulator& sim, const TranResult& result,
                        const std::vector<std::string>& nodes);

/// Renders an AC result as CSV ("freq,<node>_mag_db,<node>_phase_deg,...").
std::string ac_to_csv(const Simulator& sim, const AcResult& result,
                      const std::vector<std::string>& nodes);

/// Writes text to a file; throws on I/O failure.
void write_text_file(const std::string& path, const std::string& text);

}  // namespace olp::spice

#pragma once
// Shared JSONL (one JSON document per line) plumbing.
//
// Every machine-readable line the library emits (batch reports, service
// responses, telemetry) and every line it ingests (service requests) goes
// through these helpers, so escaping is hardened in ONE place:
//
//   escape()        string body -> JSON string escaping (quotes, backslashes,
//                   \n/\r/\t, \u00XX control codes; non-ASCII UTF-8 bytes
//                   pass through verbatim — they are valid JSON).
//   unescape()      exact inverse, including \uXXXX (with UTF-16 surrogate
//                   pairs) decoded to UTF-8. escape/unescape round-trip any
//                   byte string (tests/test_util.cpp proves it).
//   parse_object()  strict parser for one FLAT JSON object — string, number,
//                   boolean and null members only, no nesting — which is
//                   exactly the shape of a service request line. Numbers
//                   follow the strict JSON grammar (no inf/nan/hex, no
//                   leading zeros, no bare trailing dot). Malformed input
//                   yields false plus a position-bearing error message,
//                   never an exception or a partial result.
//   LineFramer      byte-stream -> newline-delimited frames with a hard
//                   per-frame size bound. Tolerates torn frames (a partial
//                   line is held until its newline arrives or the stream
//                   ends) and sheds oversized ones: input past the bound is
//                   discarded until the next newline, then surfaced as one
//                   oversized marker frame so the transport can reject with
//                   a reason instead of buffering without limit.
//
// The deliberately tiny value model keeps the service protocol honest: a
// request is a flat bag of scalars, so misuse (nested payloads, duplicate
// keys) is rejected at the door instead of half-understood.

#include <cstddef>
#include <deque>
#include <map>
#include <string>

namespace olp::jsonl {

/// JSON string escaping of an arbitrary byte string (see file comment).
std::string escape(const std::string& raw);

/// Inverse of escape(): decodes every JSON escape, including \uXXXX and
/// surrogate pairs, to UTF-8 bytes. Returns false (and sets *error when
/// non-null) on any invalid escape; *out is untouched on failure.
bool unescape(const std::string& escaped, std::string* out,
              std::string* error = nullptr);

/// One scalar member of a flat JSON object.
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;

  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_bool() const { return kind == Kind::kBool; }
};

using Object = std::map<std::string, Value>;

/// Parses one complete flat JSON object from `line` (surrounding whitespace
/// allowed, nothing else before or after). Duplicate keys and nested
/// objects/arrays are errors. On failure returns false, sets *error (when
/// non-null) and leaves *out empty.
bool parse_object(const std::string& line, Object* out,
                  std::string* error = nullptr);

/// Incremental newline framing over an arbitrary byte stream (see file
/// comment). Not thread-safe; one framer per connection.
class LineFramer {
 public:
  /// One extracted frame. `oversized` frames carry no content: the line
  /// exceeded the bound and its bytes were discarded (the stream itself
  /// stays in sync — framing resumes after the offending newline).
  struct Frame {
    std::string line;
    bool oversized = false;
  };

  /// `max_line_bytes` bounds one frame, newline excluded (0 = unbounded).
  explicit LineFramer(std::size_t max_line_bytes = 0)
      : max_line_bytes_(max_line_bytes) {}

  /// Appends raw bytes; complete frames become available via next().
  /// A trailing '\r' (CRLF clients) is stripped from each frame.
  void feed(const char* data, std::size_t n);

  /// Pops the next complete frame; false when none is pending.
  bool next(Frame* out);

  /// Bytes of the current incomplete (torn) frame — nonzero exactly when a
  /// line has started but its newline has not arrived. The transport uses
  /// this for slow-loris deadlines and for discarding torn frames on
  /// disconnect.
  std::size_t partial_bytes() const { return partial_.size(); }

  /// Drops the current partial frame (mid-frame disconnect).
  void discard_partial();

 private:
  std::size_t max_line_bytes_;
  std::string partial_;
  bool skipping_oversized_ = false;
  std::deque<Frame> ready_;
};

}  // namespace olp::jsonl

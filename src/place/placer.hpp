#pragma once
// Block placement: sequence-pair simulated annealing with symmetry
// constraints (in the spirit of Ma et al., TCAD'11 — reference [18] of the
// paper, which the paper's placer is based on).
//
// Blocks are primitive-layout abstracts. The annealer explores sequence
// pairs (plus per-block mirroring), evaluates packed coordinates by the
// standard longest-path computation, and scores area + wirelength + symmetry
// deviation. Symmetry pairs are finally snapped exactly (equal y, mirrored
// about the group axis), with a legality check on the snapped result.

#include <cstdint>
#include <string>
#include <vector>

#include "geom/layout.hpp"
#include "util/rng.hpp"

namespace olp {
class Budget;
class TaskPool;
}

namespace olp::place {

/// A block to place (a primitive layout abstract).
struct Block {
  std::string name;
  double width = 0.0;   ///< [m]
  double height = 0.0;  ///< [m]
};

/// A net connecting block pins; for global placement each connection is a
/// (block index, relative pin offset) pair.
struct PlacementNet {
  std::string name;
  struct PinRef {
    int block = 0;
    double dx = 0.0;  ///< pin offset from block origin [m]
    double dy = 0.0;
  };
  std::vector<PinRef> pins;
};

/// Two blocks required to be symmetric about a common vertical axis.
struct SymmetryPair {
  int a = 0;
  int b = 0;
};

struct PlacedBlock {
  double x = 0.0;  ///< lower-left corner [m]
  double y = 0.0;
  bool mirrored = false;  ///< mirrored about its own vertical centerline
};

struct PlacementResult {
  std::vector<PlacedBlock> blocks;
  double width = 0.0;
  double height = 0.0;
  double hpwl = 0.0;
  double cost = 0.0;
  bool legal = false;  ///< no overlaps after symmetry snapping
};

struct PlacerOptions {
  int iterations = 20000;
  double initial_temp = 1.0;
  double cooling = 0.995;    ///< geometric cooling per accepted batch
  double area_weight = 1.0;
  double hpwl_weight = 0.5;
  double symmetry_weight = 4.0;
  std::uint64_t seed = 1;
  /// Optional execution budget (not owned, may be null). Exhaustion stops
  /// the annealing loop early; the best placement found so far (at least the
  /// initial packing, evaluated before the loop) is returned.
  Budget* budget = nullptr;
  /// Parallel-moves annealing: <= 1 keeps the classic serial trajectory
  /// (one candidate move per temperature step — the default-mode golden).
  /// K >= 2 draws K independent moves per step from the single RNG stream,
  /// evaluates them concurrently on `pool`, and accepts deterministically
  /// by (cost, move-index) order. The trajectory is a pure function of
  /// (seed, K): bit-identical at every thread count, including pool ==
  /// null, but intentionally DIFFERENT from the serial trajectory — which
  /// is why the parallel mode carries its own golden
  /// (tests/test_stage_parallel.cpp). Total move evaluations stay ~=
  /// `iterations` (ceil(iterations / K) steps of K moves); cooling applies
  /// per step, so K also acts as a coarser cooling schedule.
  int parallel_moves = 0;
  /// Worker pool for parallel-moves candidate evaluation (not owned, may be
  /// null = evaluate the K candidates inline). Unused when parallel_moves
  /// <= 1.
  TaskPool* pool = nullptr;
};

/// Sequence-pair placer.
class AnnealingPlacer {
 public:
  explicit AnnealingPlacer(PlacerOptions options = {}) : options_(options) {}

  PlacementResult place(const std::vector<Block>& blocks,
                        const std::vector<PlacementNet>& nets,
                        const std::vector<SymmetryPair>& symmetry) const;

 private:
  PlacerOptions options_;
};

/// Packs a sequence pair into coordinates (exposed for testing).
/// `pos`/`neg` are permutations of 0..n-1; returns lower-left corners such
/// that no two blocks overlap and the packing is compacted to the origin.
std::vector<PlacedBlock> pack_sequence_pair(const std::vector<Block>& blocks,
                                            const std::vector<int>& pos,
                                            const std::vector<int>& neg);

}  // namespace olp::place

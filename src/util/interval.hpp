#pragma once
// Integer intervals over "number of parallel wires".
//
// Primitive port optimization (paper Sec. III-B) produces, per primitive and
// per net, an interval [w_min, w_max] of acceptable parallel-route counts.
// w_max may be unbounded ("cost increases are not seen over the explored
// range"). Reconciliation intersects these intervals across primitives.

#include <algorithm>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace olp {

/// A closed integer interval [lo, hi]; hi may be unbounded.
struct WireInterval {
  int lo = 1;
  /// Empty optional means "no upper bound observed" (paper: w_max unbounded).
  std::optional<int> hi;

  bool contains(int w) const { return w >= lo && (!hi || w <= *hi); }
  bool bounded() const { return hi.has_value(); }

  std::string to_string() const {
    return "[" + std::to_string(lo) + ", " +
           (hi ? std::to_string(*hi) : std::string("inf")) + "]";
  }
};

/// Result of reconciling the intervals of all primitives sharing a net.
struct IntervalReconciliation {
  /// True when all intervals share at least one common wire count.
  bool overlap = false;
  /// When overlap: the chosen count max_i(w_min,i) — the smallest count in the
  /// common region (lowest routing congestion, paper Sec. III-B2).
  int chosen = 1;
  /// When no overlap: the gap range [min_i(w_max,i), max_i(w_min,i)] that must
  /// be re-simulated to pick the joint-cost minimizer.
  int gap_lo = 0;
  int gap_hi = 0;
};

/// Intersects the given intervals per the paper's reconciliation rule.
///
/// Overlapping intervals yield `chosen = max(w_min,i)`. Non-overlapping
/// intervals yield the simulation range [min(w_max,i), max(w_min,i)]
/// (the gap between the most constrained upper and lower bounds).
inline IntervalReconciliation reconcile(const std::vector<WireInterval>& ivs) {
  OLP_CHECK(!ivs.empty(), "reconcile requires at least one interval");
  int max_lo = 0;
  std::optional<int> min_hi;
  for (const WireInterval& iv : ivs) {
    OLP_CHECK(iv.lo >= 1, "wire counts start at 1");
    OLP_CHECK(!iv.hi || *iv.hi >= iv.lo, "interval upper bound below lower");
    max_lo = std::max(max_lo, iv.lo);
    if (iv.hi) min_hi = min_hi ? std::min(*min_hi, *iv.hi) : *iv.hi;
  }
  IntervalReconciliation r;
  if (!min_hi || max_lo <= *min_hi) {
    r.overlap = true;
    r.chosen = max_lo;
  } else {
    r.overlap = false;
    r.gap_lo = *min_hi;
    r.gap_hi = max_lo;
  }
  return r;
}

}  // namespace olp

#include "util/obs.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "util/budget.hpp"

namespace olp::obs {

namespace {

std::int64_t steady_now_us() {
  // Span timestamps share the flow's one monotonic source (util/budget).
  return std::chrono::duration_cast<std::chrono::microseconds>(
             BudgetClock::now().time_since_epoch())
      .count();
}

/// Nearest-rank percentile of an ascending-sorted sample vector:
/// the smallest element with at least ceil(q * n) samples at or below it.
double percentile(const std::vector<double>& sorted, double q) {
  const std::size_t n = sorted.size();
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(n)));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  return sorted[std::min(idx, n - 1)];
}

}  // namespace

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Registry::Tls& Registry::tls() {
  static thread_local Tls state;
  return state;
}

void Registry::enable() {
  std::lock_guard<std::mutex> lock(mu_);
  epoch_.fetch_add(1, std::memory_order_relaxed);
  t0_us_ = steady_now_us();
  spans_.clear();
  counters_.clear();
  samples_.clear();
  enabled_.store(true, std::memory_order_relaxed);
}

void Registry::rebase() {
  if (!enabled()) return;
  enable();
}

std::int64_t Registry::open_span(const char* name, std::string detail) {
  if (!enabled()) return -1;
  std::lock_guard<std::mutex> lock(mu_);
  Tls& t = tls();
  const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  if (t.epoch != epoch) {
    // This thread's stack refers to a previous epoch's records; drop it.
    t.stack.clear();
    t.epoch = epoch;
  }
  SpanRecord rec;
  rec.id = static_cast<std::uint64_t>(spans_.size()) + 1;
  if (!t.stack.empty()) {
    const SpanRecord& parent = spans_[t.stack.back()];
    rec.parent = parent.id;
    rec.depth = parent.depth + 1;
  } else if (t.ambient.epoch == epoch) {
    // Worker-thread root: parent under the submitting thread's span.
    rec.parent = t.ambient.parent_id;
    rec.depth = t.ambient.depth;
  }
  rec.name = name;
  rec.detail = std::move(detail);
  rec.start_us = steady_now_us() - t0_us_;
  rec.open = true;
  const std::int64_t token = static_cast<std::int64_t>(spans_.size());
  spans_.push_back(std::move(rec));
  t.stack.push_back(static_cast<std::size_t>(token));
  return token;
}

void Registry::close_span(std::int64_t token, std::uint64_t epoch) {
  // The epoch guard orphans spans that straddle an enable()/rebase(): their
  // record vector entry no longer exists (or belongs to another span), so
  // closing must be a no-op rather than a write through a stale index.
  if (token < 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch != epoch_.load(std::memory_order_relaxed)) return;
  const std::size_t idx = static_cast<std::size_t>(token);
  if (idx >= spans_.size() || !spans_[idx].open) return;
  SpanRecord& rec = spans_[idx];
  rec.dur_us = steady_now_us() - t0_us_ - rec.start_us;
  rec.open = false;
  // RAII spans close in LIFO order; erase from the top of this thread's
  // open stack (a cross-thread close just marks the record closed).
  Tls& t = tls();
  if (t.epoch == epoch) {
    while (!t.stack.empty() && !spans_[t.stack.back()].open) {
      t.stack.pop_back();
    }
  }
}

void Registry::add(const char* name, long delta) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

void Registry::record(const char* name, double value) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  samples_[name].push_back(value);
}

long Registry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::string Registry::span_path() const {
  std::lock_guard<std::mutex> lock(mu_);
  const Tls& t = tls();
  const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  std::string path;
  if (t.ambient.epoch == epoch) path = t.ambient.path;
  if (t.epoch != epoch) return path;
  for (const std::size_t idx : t.stack) {
    if (!spans_[idx].open) continue;
    if (!path.empty()) path += '/';
    path += spans_[idx].name;
  }
  return path;
}

ThreadContext Registry::capture_thread_context() const {
  std::lock_guard<std::mutex> lock(mu_);
  const Tls& t = tls();
  const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  ThreadContext ctx;
  if (!enabled()) return ctx;
  if (t.epoch == epoch && !t.stack.empty()) {
    const SpanRecord& top = spans_[t.stack.back()];
    ctx.epoch = epoch;
    ctx.parent_id = top.id;
    ctx.depth = top.depth + 1;
  } else if (t.ambient.epoch == epoch) {
    // No local spans open (nested pools): forward the inherited context.
    return t.ambient;
  } else {
    return ctx;
  }
  // Rebuild the path inline (span_path() would re-lock).
  std::string path;
  if (t.ambient.epoch == epoch) path = t.ambient.path;
  for (const std::size_t idx : t.stack) {
    if (!spans_[idx].open) continue;
    if (!path.empty()) path += '/';
    path += spans_[idx].name;
  }
  ctx.path = std::move(path);
  return ctx;
}

void Registry::set_thread_context(const ThreadContext& context) {
  tls().ambient = context;
}

void Registry::clear_thread_context() { tls().ambient = ThreadContext{}; }

ThreadContext Registry::ambient_thread_context() const {
  return tls().ambient;
}

ThreadContext ThreadContextScope::capture_ambient() {
  // The raw ambient slot (not the stack top): restoring it on destruction
  // must round-trip exactly, including "no context".
  return Registry::global().ambient_thread_context();
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.spans = spans_;
  const std::int64_t now_us = steady_now_us() - t0_us_;
  for (SpanRecord& rec : snap.spans) {
    if (rec.open) rec.dur_us = now_us - rec.start_us;
  }
  snap.counters = counters_;
  for (const auto& [name, samples] : samples_) {
    if (samples.empty()) continue;
    std::vector<double> sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    DistributionStats d;
    d.count = static_cast<long>(sorted.size());
    d.min = sorted.front();
    d.max = sorted.back();
    double sum = 0.0;
    for (const double v : sorted) sum += v;
    d.mean = sum / static_cast<double>(sorted.size());
    d.p50 = percentile(sorted, 0.50);
    d.p95 = percentile(sorted, 0.95);
    snap.distributions[name] = d;
  }
  return snap;
}

}  // namespace olp::obs

// Extension experiment (not a paper table): process-corner robustness of the
// optimized layouts. The paper's methodology optimizes at the typical corner;
// this sweep verifies the optimized realization keeps its advantage over the
// conventional one across corners — i.e. the wire-sizing decisions are not
// corner-specific.

#include <iostream>

#include "circuits/flow.hpp"
#include "circuits/ota5t.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

int main() {
  using namespace olp;
  set_log_level(log_level_from_env("OLP_LOG_LEVEL", LogLevel::kError));
  const tech::Technology t = tech::make_default_finfet_tech();

  circuits::Ota5T ota(t);
  if (!ota.prepare()) {
    std::cerr << "preparation failed\n";
    return 1;
  }
  circuits::FlowEngine engine(t, {});
  circuits::Realization optimized =
      engine.run(circuits::FlowMode::kOptimize, ota.instances(), ota.routed_nets());
  circuits::Realization conventional =
      engine.run(circuits::FlowMode::kConventional, ota.instances(), ota.routed_nets());
  circuits::Realization schematic =
      circuits::schematic_realization(ota.instances(), t);

  TextTable table(
      "5T OTA across process corners: UGF (GHz) / current (uA)\n"
      "(optimized at TT; the advantage over the conventional layout must\n"
      " hold at every corner)");
  table.set_header(
      {"corner", "schematic", "conventional", "this work"});
  for (circuits::Corner c :
       {circuits::Corner::kTT, circuits::Corner::kSS, circuits::Corner::kFF,
        circuits::Corner::kSF, circuits::Corner::kFS}) {
    schematic.corner = c;
    conventional.corner = c;
    optimized.corner = c;
    auto cell = [&](const circuits::Realization& real) {
      const auto m = ota.measure(real);
      if (!m.count("ugf_ghz")) return std::string("-");
      return fixed(m.at("ugf_ghz"), 2) + " / " + fixed(m.at("current_ua"), 0);
    };
    table.add_row({circuits::corner_name(c), cell(schematic),
                   cell(conventional), cell(optimized)});
  }
  std::cout << table;
  return 0;
}

// Reproduces Table VII: eight-stage differential RO-VCO, schematic vs
// conventional automated layout vs this work.
//
// Expected shape (paper): the conventional layout loses roughly half the
// maximum frequency AND the bottom of the control range (it only oscillates
// from 0.1 V up); this work recovers a large part of the frequency loss and
// restores the full 0 - 0.5 V range.

#include <iostream>

#include "circuits/experiments.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

int main() {
  using namespace olp;
  set_log_level(log_level_from_env("OLP_LOG_LEVEL", LogLevel::kError));
  const tech::Technology t = tech::make_default_finfet_tech();
  circuits::FlowOptions options;

  const circuits::CircuitExperiment ex = circuits::run_vco(t, options);

  TextTable table(
      "Table VII: Eight-stage differential RO-VCO\n"
      "(paper: fmax 7.5/3.8/5.5 GHz, fmin 0.20/0.26/0.25 GHz, range\n"
      " 0-0.5 / 0.1-0.5 / 0-0.5 V for schematic/conventional/this work)");
  table.set_header({"specification", "schematic", "conventional",
                    "this work"});
  auto row = [&](const std::string& label, const std::string& key,
                 int decimals) {
    std::vector<std::string> cells = {label};
    for (const char* flavor : {"schematic", "conventional", "this_work"}) {
      const auto fit = ex.results.find(flavor);
      if (fit == ex.results.end() || !fit->second.count(key)) {
        cells.push_back("-");
      } else {
        cells.push_back(fixed(fit->second.at(key), decimals));
      }
    }
    table.add_row(cells);
  };
  row("Max. frequency (GHz)", "fmax_ghz", 2);
  row("Min. frequency (GHz)", "fmin_ghz", 2);
  row("Voltage range low (V)", "vrange_lo", 1);
  row("Voltage range high (V)", "vrange_hi", 1);
  std::cout << table;
  std::cout << "\nFlow runtime (feeds Table VIII): "
            << fixed(ex.optimized_report.runtime_s, 2) << " s\n";
  return 0;
}

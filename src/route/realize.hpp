#pragma once
// Route realization: converts global routes plus the port optimizer's
// parallel-route decisions into actual wire geometry.
//
// The paper's flow hands the [w_min, w_max] constraints to a detailed router;
// this realization step plays that role for visualization and geometric
// verification: each global-route segment becomes `wires` parallel
// minimum-width tracks at the layer pitch, and every layer change becomes a
// via array of the same multiplicity (the gridded effective-width trick).

#include <map>
#include <string>

#include "geom/layout.hpp"
#include "route/global_router.hpp"

namespace olp::route {

/// Emits the geometry of one routed net into `out`.
/// `wires` is the parallel-route count chosen by port optimization.
void realize_net(const tech::Technology& t, const NetRoute& route, int wires,
                 geom::Layout& out);

/// Realizes a set of routes; `wire_counts` defaults absent nets to 1.
geom::Layout realize_routes(const tech::Technology& t,
                            const std::map<std::string, NetRoute>& routes,
                            const std::map<std::string, int>& wire_counts);

}  // namespace olp::route

#include "spice/simulator.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/lu.hpp"
#include "util/budget.hpp"
#include "util/diag.hpp"
#include "util/faults.hpp"
#include "util/logging.hpp"
#include "util/obs.hpp"

namespace olp::spice {

SimStats& SimStats::global() {
  static SimStats stats;
  return stats;
}

Simulator::Simulator(const Circuit& circuit, DiagnosticsSink* diagnostics,
                     Budget* budget)
    : circuit_(circuit), diag_(diagnostics), budget_(budget) {
  caps_ = gather_caps();
}

double Simulator::voltage(const std::vector<double>& x, NodeId node) const {
  if (node == kGround) return 0.0;
  OLP_CHECK(node > 0 && node < circuit_.node_count(), "node out of range");
  OLP_CHECK(static_cast<int>(x.size()) == circuit_.unknown_count(),
            "solution vector size mismatch (non-converged sweep point?)");
  return x[static_cast<std::size_t>(node - 1)];
}

double Simulator::vsource_current(const std::vector<double>& x,
                                  const std::string& name) const {
  const int idx = circuit_.vsource_branch_index(circuit_.find_vsource(name));
  OLP_CHECK(static_cast<int>(x.size()) == circuit_.unknown_count(),
            "solution vector size mismatch (non-converged sweep point?)");
  return x[static_cast<std::size_t>(idx)];
}

std::complex<double> Simulator::ac_voltage(
    const std::vector<std::complex<double>>& x, NodeId node) const {
  if (node == kGround) return {0.0, 0.0};
  OLP_CHECK(node > 0 && node < circuit_.node_count(), "node out of range");
  OLP_CHECK(static_cast<int>(x.size()) == circuit_.unknown_count(),
            "solution vector size mismatch (non-converged sweep point?)");
  return x[static_cast<std::size_t>(node - 1)];
}

std::complex<double> Simulator::ac_vsource_current(
    const std::vector<std::complex<double>>& x, const std::string& name) const {
  const int idx = circuit_.vsource_branch_index(circuit_.find_vsource(name));
  OLP_CHECK(static_cast<int>(x.size()) == circuit_.unknown_count(),
            "solution vector size mismatch (non-converged sweep point?)");
  return x[static_cast<std::size_t>(idx)];
}

std::vector<Simulator::LinearCap> Simulator::gather_caps() const {
  std::vector<LinearCap> caps;
  for (const Capacitor& c : circuit_.capacitors()) {
    caps.push_back(LinearCap{c.a, c.b, c.c, c.ic, c.use_ic});
  }
  for (const Mosfet& m : circuit_.mosfets()) {
    const MosModel& model = circuit_.model(m.model);
    const double cgg = model.cox * m.w * m.l;
    const double cov = model.cov * m.w;
    // Saturation-flavored Meyer partition with constant (linear) caps: the
    // flow only needs capacitances that scale correctly with geometry and
    // diffusion sharing, not bias-dependent charge conservation.
    const double cgs = (2.0 / 3.0) * cgg + cov;
    const double cgd = cov;
    const double cdb = model.cj * m.ad + model.cjsw * m.pd;
    const double csb = model.cj * m.as + model.cjsw * m.ps;
    if (cgs > 0) caps.push_back(LinearCap{m.g, m.s, cgs, 0.0, false});
    if (cgd > 0) caps.push_back(LinearCap{m.g, m.d, cgd, 0.0, false});
    if (cdb > 0) caps.push_back(LinearCap{m.d, m.b, cdb, 0.0, false});
    if (csb > 0) caps.push_back(LinearCap{m.s, m.b, csb, 0.0, false});
  }
  return caps;
}

namespace {

/// Adds a conductance g between nodes a and b of a real MNA matrix.
void add_g(linalg::RealMatrix& m, NodeId a, NodeId b, double g) {
  if (a > 0) m(static_cast<std::size_t>(a - 1), static_cast<std::size_t>(a - 1)) += g;
  if (b > 0) m(static_cast<std::size_t>(b - 1), static_cast<std::size_t>(b - 1)) += g;
  if (a > 0 && b > 0) {
    m(static_cast<std::size_t>(a - 1), static_cast<std::size_t>(b - 1)) -= g;
    m(static_cast<std::size_t>(b - 1), static_cast<std::size_t>(a - 1)) -= g;
  }
}

void add_entry(linalg::RealMatrix& m, int row, int col, double v) {
  if (row >= 0 && col >= 0) {
    m(static_cast<std::size_t>(row), static_cast<std::size_t>(col)) += v;
  }
}

void add_rhs(std::vector<double>& b, int row, double v) {
  if (row >= 0) b[static_cast<std::size_t>(row)] += v;
}

}  // namespace

void Simulator::stamp_linear(linalg::RealMatrix& a) const {
  for (const Resistor& r : circuit_.resistors()) {
    add_g(a, r.a, r.b, 1.0 / r.r);
  }
  for (const Vccs& g : circuit_.vccs()) {
    const int p = g.p - 1, n = g.n - 1, cp = g.cp - 1, cn = g.cn - 1;
    // Current gm * v(cp,cn) flows p -> n through the source.
    add_entry(a, p, cp, g.gm);
    add_entry(a, p, cn, -g.gm);
    add_entry(a, n, cp, -g.gm);
    add_entry(a, n, cn, g.gm);
  }
  const int nn = circuit_.node_count() - 1;
  const int nvs = static_cast<int>(circuit_.vsources().size());
  for (std::size_t k = 0; k < circuit_.vcvs().size(); ++k) {
    const Vcvs& e = circuit_.vcvs()[k];
    const int br = nn + nvs + static_cast<int>(k);
    const int p = e.p - 1, n = e.n - 1, cp = e.cp - 1, cn = e.cn - 1;
    // Branch current unknown flows p -> n.
    add_entry(a, p, br, 1.0);
    add_entry(a, n, br, -1.0);
    // Branch equation: v(p) - v(n) - gain * (v(cp) - v(cn)) = 0.
    add_entry(a, br, p, 1.0);
    add_entry(a, br, n, -1.0);
    add_entry(a, br, cp, -e.gain);
    add_entry(a, br, cn, e.gain);
  }
}

void Simulator::stamp_sources(linalg::RealMatrix& a, std::vector<double>& b,
                              double t, double scale) const {
  const int nn = circuit_.node_count() - 1;
  for (std::size_t k = 0; k < circuit_.vsources().size(); ++k) {
    const VSource& v = circuit_.vsources()[k];
    const int br = nn + static_cast<int>(k);
    const int p = v.p - 1, n = v.n - 1;
    add_entry(a, p, br, 1.0);
    add_entry(a, n, br, -1.0);
    add_entry(a, br, p, 1.0);
    add_entry(a, br, n, -1.0);
    add_rhs(b, br, scale * v.wave.value(t));
  }
  for (const ISource& i : circuit_.isources()) {
    const double val = scale * i.wave.value(t);
    // Positive current flows p -> n through the source: out of p, into n.
    add_rhs(b, i.p - 1, -val);
    add_rhs(b, i.n - 1, val);
  }
}

MosOperatingPoint Simulator::eval_mosfet(const Mosfet& m,
                                         const std::vector<double>& x) const {
  const MosModel& model = circuit_.model(m.model);
  auto v = [&](NodeId n) { return voltage(x, n); };
  const double vgs = v(m.g) - v(m.s);
  const double vds = v(m.d) - v(m.s);
  const double sigma = model.type == MosType::kNmos ? 1.0 : -1.0;
  const MosEval e = mos_eval(model, sigma * vgs, sigma * vds, m.w, m.l,
                             m.delta_vth, m.mobility_mult);
  MosOperatingPoint op;
  // Under the sign mapping the small-signal conductances are unchanged while
  // the physical current into the drain picks up the sign.
  op.id = sigma * e.id;
  op.gm = e.gm;
  op.gds = e.gds;
  op.vgs = vgs;
  op.vds = vds;
  return op;
}

void Simulator::stamp_mosfets(linalg::RealMatrix& a, std::vector<double>& b,
                              const std::vector<double>& x) const {
  for (const Mosfet& m : circuit_.mosfets()) {
    const MosOperatingPoint op = eval_mosfet(m, x);
    const int d = m.d - 1, g = m.g - 1, s = m.s - 1;
    // Linearized drain current into the drain node:
    //   Id(v) = Id0 + gm (vgs - vgs0) + gds (vds - vds0)
    add_entry(a, d, g, op.gm);
    add_entry(a, d, d, op.gds);
    add_entry(a, d, s, -(op.gm + op.gds));
    add_entry(a, s, g, -op.gm);
    add_entry(a, s, d, -op.gds);
    add_entry(a, s, s, op.gm + op.gds);
    const double ieq = op.id - op.gm * op.vgs - op.gds * op.vds;
    add_rhs(b, d, -ieq);
    add_rhs(b, s, ieq);
  }
}

OpResult Simulator::newton_dc(const OpOptions& options, double gmin,
                              double source_scale,
                              const std::vector<double>& guess) const {
  const int n = n_unknowns();
  const int nn = circuit_.node_count() - 1;
  std::vector<double> x = guess;
  if (x.empty()) x.assign(static_cast<std::size_t>(n), 0.0);
  OLP_CHECK(static_cast<int>(x.size()) == n, "bad initial guess size");

  linalg::RealMatrix a(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  std::vector<double> b(static_cast<std::size_t>(n), 0.0);

  OpResult result;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // Budget-bounded Newton: unwind with the current (non-converged) state.
    if (budget_ != nullptr && budget_->check()) break;
    a.set_zero();
    std::fill(b.begin(), b.end(), 0.0);
    stamp_linear(a);
    stamp_sources(a, b, 0.0, source_scale);
    stamp_mosfets(a, b, x);
    for (int k = 0; k < nn; ++k) {
      add_entry(a, k, k, gmin + options.gmin_floor);
    }

    std::vector<double> x_new;
    if (!linalg::solve(a, b, x_new)) {
      result.converged = false;
      result.iterations = iter + 1;
      result.x = std::move(x);
      return result;
    }

    // Damped update on node voltages; branch currents move freely.
    double max_dv = 0.0;
    bool within_tol = true;
    for (int k = 0; k < n; ++k) {
      const std::size_t ks = static_cast<std::size_t>(k);
      double delta = x_new[ks] - x[ks];
      if (k < nn) {
        delta = std::clamp(delta, -options.damping, options.damping);
        max_dv = std::max(max_dv, std::fabs(delta));
        if (std::fabs(delta) >
            options.vtol_abs + options.vtol_rel * std::fabs(x[ks])) {
          within_tol = false;
        }
      }
      x[ks] += delta;
    }
    if (within_tol && iter > 0) {
      result.converged = true;
      result.iterations = iter + 1;
      result.x = std::move(x);
      return result;
    }
    (void)max_dv;
  }
  result.converged = false;
  result.iterations = options.max_iterations;
  result.x = std::move(x);
  return result;
}

OpResult Simulator::op(const OpOptions& options) const {
  obs::Span span("sim.op");
  obs::counter_add("sim.op");
  SimStats::global().op_count++;
  OpResult result = op_impl(options);
  obs::record("sim.op.newton_iterations", result.iterations);
  if (!result.converged) obs::counter_add("sim.op.nonconverged");
  return result;
}

OpResult Simulator::op_impl(const OpOptions& options) const {
  if (FaultInjector::global().should_fail(FaultSite::kOpNonConvergence)) {
    if (diag_) {
      diag_->report(DiagSeverity::kWarning, "chaos",
                    fault_site_name(FaultSite::kOpNonConvergence),
                    "injected operating-point non-convergence");
    }
    OpResult injected;
    injected.converged = false;
    injected.x.assign(static_cast<std::size_t>(n_unknowns()), 0.0);
    return injected;
  }

  // Stage 1: plain Newton from the provided guess.
  OpResult r = newton_dc(options, 0.0, 1.0, options.initial_guess);
  if (r.converged) return r;
  // Budget exhausted: skip the continuation ladder, return what we have.
  if (budget_ != nullptr && budget_->check()) return r;

  // Stage 2: gmin stepping — solve with a large conductance to ground, then
  // relax it while warm-starting each solve from the previous one.
  std::vector<double> warm = options.initial_guess;
  bool chain_ok = true;
  for (double gmin = 1e-3; gmin >= 1e-12; gmin *= 1e-2) {
    OpResult stage = newton_dc(options, gmin, 1.0, warm);
    if (!stage.converged) {
      chain_ok = false;
      break;
    }
    warm = stage.x;
  }
  if (chain_ok) {
    OpResult final_stage = newton_dc(options, 0.0, 1.0, warm);
    if (final_stage.converged) return final_stage;
    r = final_stage;
  }
  if (budget_ != nullptr && budget_->check()) return r;

  // Stage 3: source stepping — ramp all independent sources from zero.
  warm.assign(static_cast<std::size_t>(n_unknowns()), 0.0);
  for (double scale = 0.1; scale <= 1.0 + 1e-12; scale += 0.1) {
    OpResult stage = newton_dc(options, 1e-9, scale, warm);
    if (!stage.converged) {
      OLP_WARN << "source stepping failed at scale " << scale;
      return stage;
    }
    warm = stage.x;
  }
  OpResult final_stage = newton_dc(options, 0.0, 1.0, warm);
  return final_stage;
}

std::vector<std::vector<double>> Simulator::dc_sweep(
    const std::string& vsource, const std::vector<double>& values,
    const OpOptions& options) const {
  const int vs_index = circuit_.find_vsource(vsource);
  // The sweep mutates the source value; restore it afterwards so the
  // circuit's owner sees no change.
  VSource& src = const_cast<Circuit&>(circuit_)
                     .vsources()[static_cast<std::size_t>(vs_index)];
  const Waveform saved = src.wave;

  std::vector<std::vector<double>> solutions;
  solutions.reserve(values.size());
  OpOptions opts = options;
  for (double v : values) {
    // Budget-bounded sweep: remaining points degrade to "non-converged"
    // (empty) so the result keeps its one-entry-per-value contract.
    if (budget_ != nullptr && budget_->check()) {
      solutions.emplace_back();
      continue;
    }
    src.wave = Waveform::dc(v);
    const OpResult op = this->op(opts);
    if (op.converged) {
      solutions.push_back(op.x);
      opts.initial_guess = op.x;  // continuation
    } else {
      solutions.emplace_back();
      opts.initial_guess.clear();
    }
  }
  src.wave = saved;
  return solutions;
}

std::vector<MosOperatingPoint> Simulator::mos_operating_points(
    const std::vector<double>& x) const {
  std::vector<MosOperatingPoint> ops;
  ops.reserve(circuit_.mosfets().size());
  for (const Mosfet& m : circuit_.mosfets()) {
    ops.push_back(eval_mosfet(m, x));
  }
  return ops;
}

AcResult Simulator::ac(const std::vector<double>& op_x,
                       const AcOptions& options) const {
  obs::Span span("sim.ac");
  obs::counter_add("sim.ac");
  obs::record("sim.ac.frequencies",
              static_cast<double>(options.frequencies.size()));
  SimStats::global().ac_count++;
  const int n = n_unknowns();
  const int nn = circuit_.node_count() - 1;
  OLP_CHECK(static_cast<int>(op_x.size()) == n, "ac needs an OP solution");

  using C = std::complex<double>;
  auto addc = [&](linalg::ComplexMatrix& m, int row, int col, C v) {
    if (row >= 0 && col >= 0) {
      m(static_cast<std::size_t>(row), static_cast<std::size_t>(col)) += v;
    }
  };
  auto addc_g = [&](linalg::ComplexMatrix& m, NodeId a, NodeId b, C g) {
    addc(m, a - 1, a - 1, g);
    addc(m, b - 1, b - 1, g);
    addc(m, a - 1, b - 1, -g);
    addc(m, b - 1, a - 1, -g);
  };

  // Small-signal MOS parameters are bias-only; compute them once.
  const std::vector<MosOperatingPoint> mos_ops = mos_operating_points(op_x);

  AcResult result;
  result.frequencies = options.frequencies;
  result.solutions.reserve(options.frequencies.size());

  linalg::ComplexMatrix a(static_cast<std::size_t>(n),
                          static_cast<std::size_t>(n));
  for (double freq : options.frequencies) {
    OLP_CHECK(freq > 0.0, "AC frequency must be positive");
    const double omega = 2.0 * M_PI * freq;
    a.set_zero();
    std::vector<C> b(static_cast<std::size_t>(n), C{});

    for (const Resistor& r : circuit_.resistors()) {
      addc_g(a, r.a, r.b, C{1.0 / r.r, 0.0});
    }
    for (const LinearCap& c : caps_) {
      addc_g(a, c.a, c.b, C{0.0, omega * c.c});
    }
    for (const Vccs& g : circuit_.vccs()) {
      addc(a, g.p - 1, g.cp - 1, C{g.gm, 0});
      addc(a, g.p - 1, g.cn - 1, C{-g.gm, 0});
      addc(a, g.n - 1, g.cp - 1, C{-g.gm, 0});
      addc(a, g.n - 1, g.cn - 1, C{g.gm, 0});
    }
    for (std::size_t k = 0; k < circuit_.mosfets().size(); ++k) {
      const Mosfet& m = circuit_.mosfets()[k];
      const MosOperatingPoint& op = mos_ops[k];
      addc(a, m.d - 1, m.g - 1, C{op.gm, 0});
      addc(a, m.d - 1, m.d - 1, C{op.gds, 0});
      addc(a, m.d - 1, m.s - 1, C{-(op.gm + op.gds), 0});
      addc(a, m.s - 1, m.g - 1, C{-op.gm, 0});
      addc(a, m.s - 1, m.d - 1, C{-op.gds, 0});
      addc(a, m.s - 1, m.s - 1, C{op.gm + op.gds, 0});
    }
    for (std::size_t k = 0; k < circuit_.vsources().size(); ++k) {
      const VSource& v = circuit_.vsources()[k];
      const int br = nn + static_cast<int>(k);
      addc(a, v.p - 1, br, C{1, 0});
      addc(a, v.n - 1, br, C{-1, 0});
      addc(a, br, v.p - 1, C{1, 0});
      addc(a, br, v.n - 1, C{-1, 0});
      if (v.ac_mag != 0.0) {
        b[static_cast<std::size_t>(br)] =
            std::polar(v.ac_mag, v.ac_phase);
      }
    }
    for (const ISource& i : circuit_.isources()) {
      if (i.ac_mag == 0.0) continue;
      const C val = std::polar(i.ac_mag, i.ac_phase);
      if (i.p > 0) b[static_cast<std::size_t>(i.p - 1)] -= val;
      if (i.n > 0) b[static_cast<std::size_t>(i.n - 1)] += val;
    }
    const int nvs = static_cast<int>(circuit_.vsources().size());
    for (std::size_t k = 0; k < circuit_.vcvs().size(); ++k) {
      const Vcvs& e = circuit_.vcvs()[k];
      const int br = nn + nvs + static_cast<int>(k);
      addc(a, e.p - 1, br, C{1, 0});
      addc(a, e.n - 1, br, C{-1, 0});
      addc(a, br, e.p - 1, C{1, 0});
      addc(a, br, e.n - 1, C{-1, 0});
      addc(a, br, e.cp - 1, C{-e.gain, 0});
      addc(a, br, e.cn - 1, C{e.gain, 0});
    }
    // Tiny conductance to ground keeps isolated internal nodes solvable.
    for (int k = 0; k < nn; ++k) addc(a, k, k, C{1e-12, 0});

    std::vector<C> x;
    if (!linalg::solve(a, b, x)) {
      // Recoverable: report and emit a zero solution at this frequency so
      // callers see a degraded (not aborted) sweep.
      OLP_WARN << "AC system singular at f=" << freq;
      if (diag_) {
        diag_->report(DiagSeverity::kError, "simulator", "ac",
                      "AC system singular at f=" + std::to_string(freq) +
                          "; emitting zero solution");
      }
      x.assign(static_cast<std::size_t>(n), C{});
    }
    result.solutions.push_back(std::move(x));
  }
  return result;
}

TranResult Simulator::tran(const TranOptions& options) const {
  obs::Span span("sim.tran");
  obs::counter_add("sim.tran");
  TranResult r = tran_attempt(options);
  if (r.ok) return r;

  // Retry ladder: backward Euler (maximum damping) with a halved timestep on
  // each attempt. Engages only when an attempt reports ok=false, so flows
  // whose transients converge first try are unaffected.
  TranOptions retry = options;
  for (int attempt = 1; attempt <= options.max_retries && !r.ok &&
                        !(budget_ != nullptr && budget_->check());
       ++attempt) {
    retry.backward_euler = true;
    retry.dt *= 0.5;
    obs::counter_add("sim.tran.retries");
    if (diag_) {
      diag_->report(DiagSeverity::kWarning, "simulator", "tran",
                    "transient attempt " + std::to_string(attempt) +
                        " failed; retrying with backward Euler, dt=" +
                        std::to_string(retry.dt));
    }
    r = tran_attempt(retry);
  }
  if (!r.ok) {
    obs::counter_add("sim.tran.failed");
    if (diag_) {
      diag_->report(DiagSeverity::kError, "simulator", "tran",
                    "transient failed after " +
                        std::to_string(options.max_retries) + " retries");
    }
  }
  return r;
}

TranResult Simulator::tran_attempt(const TranOptions& options) const {
  obs::counter_add("sim.tran.attempts");
  SimStats::global().tran_count++;
  OLP_CHECK(options.dt > 0 && options.tstop > options.dt,
            "transient needs dt > 0 and tstop > dt");
  if (FaultInjector::global().should_fail(FaultSite::kTranNonConvergence)) {
    if (diag_) {
      diag_->report(DiagSeverity::kWarning, "chaos",
                    fault_site_name(FaultSite::kTranNonConvergence),
                    "injected transient non-convergence");
    }
    TranResult injected;
    injected.ok = false;
    injected.times.push_back(0.0);
    injected.samples.emplace_back(static_cast<std::size_t>(n_unknowns()), 0.0);
    return injected;
  }
  const int n = n_unknowns();
  const int nn = circuit_.node_count() - 1;

  // Initial state.
  std::vector<double> x;
  if (options.start_from_op) {
    OpResult op0 = op();
    if (!op0.converged) {
      OLP_WARN << "transient: t=0 operating point failed to converge";
    }
    x = std::move(op0.x);
  } else {
    x.assign(static_cast<std::size_t>(n), 0.0);
  }
  // Node initial conditions override the OP (ring-symmetry kick).
  for (const auto& [node, value] : circuit_.initial_conditions()) {
    x[static_cast<std::size_t>(node - 1)] = value;
  }
  for (const LinearCap& c : caps_) {
    if (!c.use_ic) continue;
    // Force v(a) - v(b) = ic by shifting node a when possible.
    if (c.a > 0) {
      const double vb = c.b > 0 ? x[static_cast<std::size_t>(c.b - 1)] : 0.0;
      x[static_cast<std::size_t>(c.a - 1)] = vb + c.ic;
    }
  }

  TranResult result;
  result.times.push_back(0.0);
  result.samples.push_back(x);

  // Per-capacitor branch current state (for trapezoidal integration).
  std::vector<double> icap(caps_.size(), 0.0);
  auto cap_voltage = [&](const LinearCap& c, const std::vector<double>& v) {
    const double va = c.a > 0 ? v[static_cast<std::size_t>(c.a - 1)] : 0.0;
    const double vb = c.b > 0 ? v[static_cast<std::size_t>(c.b - 1)] : 0.0;
    return va - vb;
  };

  linalg::RealMatrix a(static_cast<std::size_t>(n),
                       static_cast<std::size_t>(n));
  std::vector<double> b(static_cast<std::size_t>(n), 0.0);

  const double h = options.dt;
  const long steps = static_cast<long>(std::ceil(options.tstop / h));

  // One Newton solve of the companion system at time `t_at` with step
  // `h_at`, integrating from `x_prev` (+ cap currents icap for trapezoidal).
  auto newton_solve = [&](double t_at, double h_at, bool trapezoidal,
                          const std::vector<double>& x_prev,
                          std::vector<double>& x_out) -> bool {
    x_out = x_prev;  // warm start
    for (int iter = 0; iter < options.max_newton; ++iter) {
      a.set_zero();
      std::fill(b.begin(), b.end(), 0.0);
      stamp_linear(a);
      stamp_sources(a, b, t_at, 1.0);
      stamp_mosfets(a, b, x_out);
      for (std::size_t k = 0; k < caps_.size(); ++k) {
        const LinearCap& c = caps_[k];
        if (c.c <= 0) continue;
        const double v_prev = cap_voltage(c, x_prev);
        double geq, ieq_into_a;
        if (trapezoidal) {
          geq = 2.0 * c.c / h_at;
          ieq_into_a = geq * v_prev + icap[k];
        } else {
          geq = c.c / h_at;
          ieq_into_a = geq * v_prev;
        }
        add_g(a, c.a, c.b, geq);
        add_rhs(b, c.a - 1, ieq_into_a);
        add_rhs(b, c.b - 1, -ieq_into_a);
      }
      for (int k = 0; k < nn; ++k) add_entry(a, k, k, 1e-12);

      std::vector<double> x_next;
      if (!linalg::solve(a, b, x_next)) return false;

      bool within_tol = true;
      for (int k = 0; k < n; ++k) {
        const std::size_t ks = static_cast<std::size_t>(k);
        double delta = x_next[ks] - x_out[ks];
        if (k < nn) {
          delta = std::clamp(delta, -0.5, 0.5);
          if (std::fabs(delta) > 1e-7 + 1e-5 * std::fabs(x_out[ks])) {
            within_tol = false;
          }
        }
        x_out[ks] += delta;
      }
      if (within_tol && iter > 0) return true;
    }
    return false;
  };

  auto update_icap = [&](bool trapezoidal, double h_at,
                         const std::vector<double>& x_prev,
                         const std::vector<double>& x_next) {
    for (std::size_t k = 0; k < caps_.size(); ++k) {
      const LinearCap& c = caps_[k];
      if (c.c <= 0) continue;
      const double dv = cap_voltage(c, x_next) - cap_voltage(c, x_prev);
      if (trapezoidal) {
        icap[k] = 2.0 * c.c / h_at * dv - icap[k];
      } else {
        icap[k] = c.c / h_at * dv;
      }
    }
  };

  long recorded = 0;
  for (long step = 1; step <= steps; ++step) {
    // Budget-bounded timestepping: a truncated transient is reported as
    // ok=false so callers degrade instead of trusting partial waveforms.
    if (budget_ != nullptr && budget_->check()) {
      result.ok = false;
      return result;
    }
    const double t = static_cast<double>(step) * h;
    // First step uses backward Euler (no valid cap-current history yet).
    const bool trapezoidal = !options.backward_euler && step > 1;

    std::vector<double> x_new;
    if (newton_solve(t, h, trapezoidal, x, x_new)) {
      update_icap(trapezoidal, h, x, x_new);
    } else if (newton_solve(t, h, false, x, x_new)) {
      // Trapezoidal ringing: fall back to (damped) backward Euler.
      update_icap(false, h, x, x_new);
    } else {
      // Stiff corner: subdivide the step with backward Euler.
      constexpr int kSubsteps = 4;
      const double hs = h / kSubsteps;
      std::vector<double> x_sub = x;
      bool ok = true;
      for (int j = 1; j <= kSubsteps; ++j) {
        const double tj = t - h + j * hs;
        std::vector<double> x_tmp;
        if (!newton_solve(tj, hs, false, x_sub, x_tmp)) {
          ok = false;
          break;
        }
        update_icap(false, hs, x_sub, x_tmp);
        x_sub = std::move(x_tmp);
      }
      if (!ok) {
        OLP_WARN << "transient Newton failed at t=" << t;
        if (diag_) {
          diag_->report(DiagSeverity::kWarning, "simulator", "tran",
                        "transient Newton failed at t=" + std::to_string(t));
        }
        result.ok = false;
        return result;
      }
      x_new = std::move(x_sub);
    }

    x = std::move(x_new);
    ++recorded;
    if (recorded % options.record_stride == 0 || step == steps) {
      result.times.push_back(t);
      result.samples.push_back(x);
    }
  }
  result.ok = true;
  return result;
}

}  // namespace olp::spice

// Tests for the g-cell global router.

#include <gtest/gtest.h>

#include "route/global_router.hpp"
#include "util/rng.hpp"

namespace olp::route {
namespace {

const tech::Technology& t() {
  static const tech::Technology tech = tech::make_default_finfet_tech();
  return tech;
}

geom::Rect region(double microns) {
  return geom::Rect{0, 0, geom::to_nm(microns * 1e-6),
                    geom::to_nm(microns * 1e-6)};
}

TEST(Router, TwoPinRouteSucceeds) {
  GlobalRouter router(t(), region(10), {});
  const NetRoute nr = router.route(
      "n", {geom::Point{0, 0}, geom::Point{geom::to_nm(5e-6), 0}});
  ASSERT_TRUE(nr.routed);
  EXPECT_FALSE(nr.segments.empty());
  EXPECT_GT(nr.vias, 0);  // pin via stacks
}

TEST(Router, RouteLengthAtLeastManhattan) {
  GlobalRouter router(t(), region(10), {});
  const geom::Point a{0, 0};
  const geom::Point b{geom::to_nm(4e-6), geom::to_nm(3e-6)};
  const NetRoute nr = router.route("n", {a, b});
  ASSERT_TRUE(nr.routed);
  EXPECT_GE(nr.total_length(), geom::to_meters(geom::manhattan(a, b)) - 1e-9);
  // And not wildly longer on an empty grid.
  EXPECT_LE(nr.total_length(),
            2.0 * geom::to_meters(geom::manhattan(a, b)) + 1e-6);
}

TEST(Router, StraightRouteUsesPreferredDirection) {
  RouterOptions opt;
  opt.min_layer = 2;  // M3 horizontal, M4 vertical
  GlobalRouter router(t(), region(10), opt);
  const NetRoute nr = router.route(
      "n", {geom::Point{0, 0}, geom::Point{geom::to_nm(5e-6), 0}});
  ASSERT_TRUE(nr.routed);
  // A purely horizontal connection stays on the horizontal layer.
  EXPECT_GT(nr.length_on(tech::Layer::kM3), 4e-6);
  EXPECT_NEAR(nr.length_on(tech::Layer::kM4), 0.0, 1e-9);
}

TEST(Router, LShapeUsesBothDirections) {
  RouterOptions opt;
  opt.min_layer = 2;
  GlobalRouter router(t(), region(10), opt);
  const NetRoute nr = router.route(
      "n", {geom::Point{0, 0},
            geom::Point{geom::to_nm(4e-6), geom::to_nm(4e-6)}});
  ASSERT_TRUE(nr.routed);
  EXPECT_GT(nr.length_on(tech::Layer::kM3), 3e-6);
  EXPECT_GT(nr.length_on(tech::Layer::kM4), 3e-6);
  EXPECT_GE(nr.vias, 3);  // at least one layer change plus pin stacks
}

TEST(Router, MultiPinBuildsSteinerTree) {
  GlobalRouter router(t(), region(10), {});
  // Three pins in an L: a shared trunk should keep total length below the
  // sum of the two independent two-pin routes.
  const geom::Point a{0, 0};
  const geom::Point b{geom::to_nm(6e-6), 0};
  const geom::Point c{geom::to_nm(6e-6), geom::to_nm(6e-6)};
  const NetRoute nr = router.route("n", {a, b, c});
  ASSERT_TRUE(nr.routed);
  EXPECT_LT(nr.total_length(), 13e-6);
  EXPECT_GE(nr.total_length(), 11.9e-6);
}

TEST(Router, SteinerSharingBeatsStar) {
  GlobalRouter router(t(), region(20), {});
  // Pins on a line: the tree should be ~ the line length, not 2x.
  const NetRoute nr = router.route(
      "n", {geom::Point{0, 0}, geom::Point{geom::to_nm(10e-6), 0},
            geom::Point{geom::to_nm(5e-6), 0}});
  ASSERT_TRUE(nr.routed);
  EXPECT_LT(nr.total_length(), 11e-6);
}

TEST(Router, CongestionPushesSecondNetAside) {
  RouterOptions opt;
  opt.edge_capacity = 1;
  opt.congestion_cost = 50.0;
  GlobalRouter router(t(), region(10), opt);
  const geom::Point a{0, geom::to_nm(5e-6)};
  const geom::Point b{geom::to_nm(9e-6), geom::to_nm(5e-6)};
  const NetRoute first = router.route("n1", {a, b});
  const NetRoute second = router.route("n2", {a, b});
  ASSERT_TRUE(first.routed);
  ASSERT_TRUE(second.routed);
  // The second net detours (or changes layer): strictly more wire+via cost.
  EXPECT_GT(second.total_length() + 0.2e-6 * second.vias,
            first.total_length() + 0.2e-6 * first.vias - 1e-9);
  EXPECT_GT(router.congestion_ratio(), 0.0);
}

TEST(Router, PinsOutsideRegionAreClamped) {
  GlobalRouter router(t(), region(5), {});
  const NetRoute nr = router.route(
      "n", {geom::Point{-geom::to_nm(1e-6), 0},
            geom::Point{geom::to_nm(20e-6), geom::to_nm(20e-6)}});
  EXPECT_TRUE(nr.routed);
}

TEST(Router, SinglePinThrows) {
  GlobalRouter router(t(), region(5), {});
  EXPECT_THROW(router.route("n", {geom::Point{0, 0}}), InvalidArgumentError);
}

TEST(Router, BadLayerRangeThrows) {
  RouterOptions opt;
  opt.min_layer = 4;
  opt.max_layer = 2;
  EXPECT_THROW(GlobalRouter(t(), region(5), opt), InvalidArgumentError);
}

TEST(NetRoute, DominantLayerAndLengths) {
  NetRoute nr;
  nr.segments.push_back(
      {tech::Layer::kM3, {0, 0}, {geom::to_nm(3e-6), 0}});
  nr.segments.push_back(
      {tech::Layer::kM4, {0, 0}, {0, geom::to_nm(1e-6)}});
  EXPECT_NEAR(nr.length_on(tech::Layer::kM3), 3e-6, 1e-12);
  EXPECT_NEAR(nr.total_length(), 4e-6, 1e-12);
  EXPECT_EQ(nr.dominant_layer(), tech::Layer::kM3);
}

// Property: random pin sets always route on an empty grid, and the segments
// plus pin stacks form a connected tree (every segment endpoint appears at
// least twice or is a pin gcell).
class RouterRandom : public ::testing::TestWithParam<int> {};

TEST_P(RouterRandom, RandomPinsRoute) {
  Rng rng(static_cast<std::uint64_t>(50 + GetParam()));
  GlobalRouter router(t(), region(15), {});
  const int pins = 2 + GetParam() % 4;
  std::vector<geom::Point> pts;
  for (int p = 0; p < pins; ++p) {
    pts.push_back(geom::Point{geom::to_nm(rng.uniform(0, 15e-6)),
                              geom::to_nm(rng.uniform(0, 15e-6))});
  }
  const NetRoute nr = router.route("n", pts);
  EXPECT_TRUE(nr.routed);
  EXPECT_GT(nr.total_length() + 1e-9, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouterRandom, ::testing::Range(1, 17));

}  // namespace
}  // namespace olp::route

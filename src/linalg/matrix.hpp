#pragma once
// Dense matrix/vector types for modified nodal analysis.
//
// Analog primitives and the circuits built from them are small (tens to a few
// hundred unknowns), so dense storage with LU factorization is both simpler
// and faster than a sparse solver at this scale.

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstddef>
#include <vector>

#include "util/error.hpp"

namespace olp::linalg {

using Complex = std::complex<double>;

/// A dense row-major matrix of element type T (double or Complex).
template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, T init = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return data_.empty(); }

  T& operator()(std::size_t r, std::size_t c) {
    OLP_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const {
    OLP_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }

  /// Resets every element to zero without reallocating.
  void set_zero() { data_.assign(data_.size(), T{}); }

  /// Resizes to rows x cols and zero-fills.
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, T{});
  }

  /// Matrix-vector product.
  std::vector<T> mul(const std::vector<T>& x) const {
    OLP_CHECK(x.size() == cols_, "dimension mismatch in matrix-vector product");
    std::vector<T> y(rows_, T{});
    for (std::size_t r = 0; r < rows_; ++r) {
      T acc{};
      const T* row = &data_[r * cols_];
      for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
      y[r] = acc;
    }
    return y;
  }

  Matrix mul(const Matrix& b) const {
    OLP_CHECK(cols_ == b.rows_, "dimension mismatch in matrix product");
    Matrix out(rows_, b.cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
      for (std::size_t k = 0; k < cols_; ++k) {
        const T aik = (*this)(i, k);
        if (aik == T{}) continue;
        for (std::size_t j = 0; j < b.cols_; ++j) {
          out(i, j) += aik * b(k, j);
        }
      }
    }
    return out;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using RealMatrix = Matrix<double>;
using ComplexMatrix = Matrix<Complex>;
using RealVector = std::vector<double>;
using ComplexVector = std::vector<Complex>;

/// Infinity norm of a vector.
template <typename T>
double inf_norm(const std::vector<T>& v) {
  double best = 0.0;
  for (const T& x : v) best = std::max(best, std::abs(x));
  return best;
}

}  // namespace olp::linalg

// Tests for the metric library (Table II) and the cost function (Eqs. 5-6).

#include <gtest/gtest.h>

#include "core/cost.hpp"
#include "core/metrics.hpp"

namespace olp::core {
namespace {

TEST(MetricLibrary, DiffPairEntryMatchesTableII) {
  const MetricLibraryEntry e = metric_library(pcell::PrimitiveType::kDiffPair);
  ASSERT_EQ(e.metrics.size(), 3u);
  EXPECT_EQ(e.metrics[0].kind, MetricKind::kGm);
  EXPECT_DOUBLE_EQ(e.metrics[0].weight, kWeightMedium);
  EXPECT_EQ(e.metrics[1].kind, MetricKind::kGmOverCtotal);
  EXPECT_DOUBLE_EQ(e.metrics[1].weight, kWeightMedium);
  EXPECT_EQ(e.metrics[2].kind, MetricKind::kInputOffset);
  EXPECT_DOUBLE_EQ(e.metrics[2].weight, kWeightHigh);
  EXPECT_TRUE(e.metrics[2].spec_is_offset_fraction);
  EXPECT_FALSE(e.terminals_correlated);
  ASSERT_EQ(e.tuning_terminals.size(), 1u);
  EXPECT_EQ(e.tuning_terminals[0], "s");
}

TEST(MetricLibrary, MirrorWeightsDifferByKind) {
  // Passive CM: Cout low; active CM: Cout medium (paper Sec. II-B).
  const MetricLibraryEntry passive =
      metric_library(pcell::PrimitiveType::kCurrentMirror);
  const MetricLibraryEntry active =
      metric_library(pcell::PrimitiveType::kActiveCurrentMirror);
  EXPECT_DOUBLE_EQ(passive.metrics[1].weight, kWeightLow);
  EXPECT_DOUBLE_EQ(active.metrics[1].weight, kWeightMedium);
}

TEST(MetricLibrary, StarvedInverterIsCorrelated) {
  const MetricLibraryEntry e =
      metric_library(pcell::PrimitiveType::kCurrentStarvedInverter);
  EXPECT_TRUE(e.terminals_correlated);
  EXPECT_EQ(e.tuning_terminals.size(), 2u);
  EXPECT_EQ(e.metrics.size(), 3u);
}

TEST(MetricLibrary, EveryTypeHasMetrics) {
  using pcell::PrimitiveType;
  for (PrimitiveType t :
       {PrimitiveType::kDiffPair, PrimitiveType::kCurrentMirror,
        PrimitiveType::kActiveCurrentMirror, PrimitiveType::kCurrentSource,
        PrimitiveType::kCommonSource, PrimitiveType::kCurrentStarvedInverter,
        PrimitiveType::kCrossCoupledPair, PrimitiveType::kSwitch,
        PrimitiveType::kCapacitor}) {
    const MetricLibraryEntry e = metric_library(t);
    EXPECT_FALSE(e.metrics.empty());
    for (const MetricSpec& spec : e.metrics) {
      EXPECT_GT(spec.weight, 0.0);
      EXPECT_LE(spec.weight, 1.0);
    }
  }
}

TEST(MetricName, AllNamed) {
  EXPECT_STREQ(metric_name(MetricKind::kGm), "Gm");
  EXPECT_STREQ(metric_name(MetricKind::kGmOverCtotal), "Gm/Ctotal");
  EXPECT_STREQ(metric_name(MetricKind::kInputOffset), "offset");
  EXPECT_STREQ(metric_name(MetricKind::kDelay), "delay");
}

// --- Eq. 6 -------------------------------------------------------------------

TEST(Deviation, RelativeToSchematic) {
  EXPECT_NEAR(metric_deviation(2.0, 1.9, 0.0), 0.05, 1e-12);
  EXPECT_NEAR(metric_deviation(2.0, 2.1, 0.0), 0.05, 1e-12);
  EXPECT_NEAR(metric_deviation(-2.0, -1.0, 0.0), 0.5, 1e-12);
}

TEST(Deviation, ZeroSchematicUsesSpec) {
  // Below spec: no penalty (the max[0, .] clamp).
  EXPECT_DOUBLE_EQ(metric_deviation(0.0, 0.5e-3, 1e-3), 0.0);
  // Above spec: fractional excess.
  EXPECT_NEAR(metric_deviation(0.0, 2e-3, 1e-3), 1.0, 1e-12);
  EXPECT_NEAR(metric_deviation(0.0, -2e-3, 1e-3), 1.0, 1e-12);
}

TEST(Deviation, ZeroSchematicNeedsSpec) {
  EXPECT_THROW(metric_deviation(0.0, 1.0, 0.0), InvalidArgumentError);
}

// --- Eq. 5 -------------------------------------------------------------------

TEST(Cost, WeightedSumInPercent) {
  const std::vector<MetricSpec> specs = {
      {MetricKind::kGm, 0.5, false},
      {MetricKind::kGmOverCtotal, 0.5, false},
  };
  MetricValues sch = {{MetricKind::kGm, 1.0}, {MetricKind::kGmOverCtotal, 10.0}};
  MetricValues lay = {{MetricKind::kGm, 0.99},
                      {MetricKind::kGmOverCtotal, 9.0}};
  const CostBreakdown cb = compute_cost(specs, sch, lay, 1.0);
  // 0.5 * 1% + 0.5 * 10% = 5.5 in percent units.
  EXPECT_NEAR(cb.total, 5.5, 1e-9);
  ASSERT_EQ(cb.terms.size(), 2u);
  EXPECT_NEAR(cb.terms[0].deviation, 0.01, 1e-12);
  EXPECT_NEAR(cb.terms[1].deviation, 0.10, 1e-12);
}

TEST(Cost, OffsetMetricRoutesThroughSpec) {
  const std::vector<MetricSpec> specs = {
      {MetricKind::kInputOffset, 1.0, true}};
  MetricValues sch = {{MetricKind::kInputOffset, 0.0}};
  MetricValues lay = {{MetricKind::kInputOffset, 3e-4}};
  // Spec = 1e-4: deviation = (3e-4 - 1e-4)/1e-4 = 200%.
  const CostBreakdown cb = compute_cost(specs, sch, lay, 1e-4);
  EXPECT_NEAR(cb.total, 200.0, 1e-6);
}

TEST(Cost, OffsetBelowSpecIsFree) {
  const std::vector<MetricSpec> specs = {
      {MetricKind::kInputOffset, 1.0, true}};
  MetricValues sch = {{MetricKind::kInputOffset, 0.0}};
  MetricValues lay = {{MetricKind::kInputOffset, 0.5e-4}};
  const CostBreakdown cb = compute_cost(specs, sch, lay, 1e-4);
  EXPECT_DOUBLE_EQ(cb.total, 0.0);
}

TEST(Cost, MissingMetricThrows) {
  const std::vector<MetricSpec> specs = {{MetricKind::kGm, 1.0, false}};
  MetricValues sch = {{MetricKind::kGm, 1.0}};
  MetricValues lay;  // missing Gm
  EXPECT_THROW(compute_cost(specs, sch, lay, 1.0), InvalidArgumentError);
}

TEST(Cost, PerfectLayoutCostsNothing) {
  const std::vector<MetricSpec> specs = {
      {MetricKind::kGm, 1.0, false}, {MetricKind::kRout, 0.5, false}};
  MetricValues vals = {{MetricKind::kGm, 2e-3}, {MetricKind::kRout, 1e4}};
  const CostBreakdown cb = compute_cost(specs, vals, vals, 1.0);
  EXPECT_DOUBLE_EQ(cb.total, 0.0);
}

// Property: cost is non-negative and monotone in the layout deviation.
class CostMonotone : public ::testing::TestWithParam<double> {};

TEST_P(CostMonotone, GrowsWithDeviation) {
  const double scale = GetParam();
  const std::vector<MetricSpec> specs = {{MetricKind::kGm, 1.0, false}};
  MetricValues sch = {{MetricKind::kGm, 1.0}};
  MetricValues near_lay = {{MetricKind::kGm, 1.0 - 0.01 * scale}};
  MetricValues far_lay = {{MetricKind::kGm, 1.0 - 0.02 * scale}};
  const double c_near = compute_cost(specs, sch, near_lay, 1.0).total;
  const double c_far = compute_cost(specs, sch, far_lay, 1.0).total;
  EXPECT_GE(c_near, 0.0);
  EXPECT_GT(c_far, c_near);
}

INSTANTIATE_TEST_SUITE_P(Scales, CostMonotone,
                         ::testing::Values(0.1, 0.5, 1.0, 2.0, 5.0));

}  // namespace
}  // namespace olp::core
